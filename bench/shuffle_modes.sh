#!/usr/bin/env bash
# Flat-vs-optimized shuffle comparison on the all-vs-all similarity-graph
# workload (the EXPERIMENTS.md "communication-efficient shuffle" table).
#
# Usage: bench/shuffle_modes.sh [path-to-mrgraph_build] [nseq] [ranks]
#
# Every row must print the same edge checksum; the wire-bytes column is
# the modeled nominal traffic of collate()'s exchange.
set -euo pipefail

BIN=${1:-build/tools/mrgraph_build}
NSEQ=${2:-192}
RANKS=${3:-8}
COMMON=(--nseq "$NSEQ" --family 8 --seqlen 200 --block 12 --ranks "$RANKS" --backend sim)

run_mode() {
  local name=$1
  shift
  local out
  out=$("$BIN" "${COMMON[@]}" "$@")
  local checksum wire saved stages elapsed
  checksum=$(sed -n 's/.*checksum \([0-9a-f]*\).*/\1/p' <<<"$out")
  wire=$(sed -n 's/.*wire \([0-9]*\) nominal.*/\1/p' <<<"$out")
  saved=$(sed -n 's/.*combiner saved \([0-9]*\).*/\1/p' <<<"$out")
  stages=$(sed -n 's/.*, \([0-9]*\) stages.*/\1/p' <<<"$out")
  elapsed=$(sed -n 's/elapsed \([0-9.e-]*\) .*/\1/p' <<<"$out")
  printf '| %-24s | %10s | %10s | %6s | %12s | %s |\n' \
    "$name" "$wire" "$saved" "$stages" "$elapsed" "$checksum"
}

echo "shuffle modes: nseq=$NSEQ ranks=$RANKS (sim backend)"
printf '| %-24s | %10s | %10s | %6s | %12s | %s |\n' \
  "mode" "wire bytes" "saved" "stages" "virtual s" "edge checksum"
printf '|--------------------------|------------|------------|--------|--------------|------------------|\n'
run_mode "flat"
run_mode "combiner" --combiner
run_mode "tree r=2" --exchange tree --radix 2
run_mode "tree r=4" --exchange tree --radix 4
run_mode "compressed" --compress
run_mode "combiner+tree+compress" --combiner --compress --exchange tree --radix 4 --overlap-spill
