// Ablation: query-block size vs core count (Section IV-A's tuning
// discussion). Larger blocks amortize DB partition reloads per query and
// win at small core counts; smaller blocks create more work units and win
// at large core counts through better load balancing.
#include <cstdio>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "mrblast/mrblast.hpp"

using namespace mrbio;

int main(int argc, char** argv) {
  Options opts("ablation_block_size: wall minutes for 80K queries at several block sizes");
  opts.add("max-cores", "1024", "largest simulated core count");
  if (!opts.parse(argc, argv)) return 0;
  const auto max_cores = opts.integer("max-cores");

  const std::vector<std::uint64_t> block_sizes{500, 1'000, 2'000, 4'000};

  std::printf("=== Ablation: query block size (80K queries; wall minutes) ===\n");
  std::vector<std::string> header{"cores"};
  for (const auto b : block_sizes) header.push_back(std::to_string(b) + "/blk");
  bench::print_row(header);

  for (const int cores : {32, 128, 512, 1024}) {
    if (cores > max_cores) break;
    std::vector<std::string> row{std::to_string(cores)};
    for (const auto b : block_sizes) {
      mrblast::SimRunConfig config;
      config.workload.total_queries = 80'000;
      config.workload.queries_per_block = b;
      const double t = bench::run_cluster(
          cores, [&](mpi::Comm& comm) { mrblast::run_blast_sim(comm, config); },
          bench::paper_net());
      row.push_back(bench::fmt(bench::seconds_to_minutes(t)));
    }
    bench::print_row(row);
  }
  std::printf(
      "\nShape checks (paper): larger blocks win at 32 cores (fewer DB reloads per\n"
      "query); smaller blocks win at 1024 cores (more units to balance).\n");
  return 0;
}
