// Ablation: the Section V dynamic query chunking ("progressively smaller
// query chunks toward the end ... a more uniform filling of the cores").
// Uniform block schedules are compared against tapered ones at high core
// counts, where end-of-stage idling dominates.
#include <cstdio>

#include "bench_util.hpp"
#include "blast/fasta_index.hpp"
#include "common/options.hpp"
#include "mrblast/mrblast.hpp"

using namespace mrbio;

namespace {

double run_schedule(int cores, std::vector<std::uint64_t> blocks) {
  mrblast::SimRunConfig config;
  config.workload.total_queries = 80'000;
  config.workload.block_sizes = std::move(blocks);
  // Dynamic chunking targets the granularity tail (cores idling while the
  // last few large units finish). Pathological outlier units are a
  // different tail the schedule cannot fix, so they are disabled here to
  // isolate the effect under study.
  config.workload.outlier_prob = 0.0;
  return bench::seconds_to_minutes(bench::run_cluster(
      cores, [&](mpi::Comm& comm) { mrblast::run_blast_sim(comm, config); },
      bench::paper_net()));
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("ablation_tapered_blocks: uniform vs tapered query-block schedules");
  opts.add("max-cores", "1024", "largest simulated core count");
  if (!opts.parse(argc, argv)) return 0;
  const auto max_cores = opts.integer("max-cores");

  std::printf("=== Ablation: tapered query blocks (80K queries, wall minutes) ===\n");
  bench::print_row({"cores", "uniform 2000", "uniform 1000", "tapered 2000->125"}, 18);
  for (const int cores : {128, 256, 512, 1024}) {
    if (cores > max_cores) break;
    const double u2000 = run_schedule(cores, std::vector<std::uint64_t>(40, 2'000));
    const double u1000 = run_schedule(cores, std::vector<std::uint64_t>(80, 1'000));
    const double taper =
        run_schedule(cores, blast::tapered_block_sizes(80'000, 2'000, 125, 0.3));
    bench::print_row({std::to_string(cores), bench::fmt(u2000), bench::fmt(u1000),
                      bench::fmt(taper)},
                     18);
  }
  std::printf(
      "\nShape checks: at high core counts the tapered schedule beats the uniform\n"
      "2000-block schedule (its large early blocks amortize DB loads, its small\n"
      "final blocks fill the cores uniformly at the end of the stage).\n");
  return 0;
}
