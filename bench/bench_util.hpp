// Shared helpers for the figure-reproduction benchmark drivers.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "obs/analysis.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace mrbio::bench {

/// Core counts used across the paper's scaling charts (multiples of the
/// 16-core Ranger nodes, 16..1024).
inline std::vector<int> paper_core_counts() { return {16, 32, 64, 128, 256, 512, 1024}; }

/// Network model approximating Ranger's Infiniband fabric: ~2.3 us
/// latency, ~1.5 GB/s point-to-point bandwidth.
inline sim::NetworkModel paper_net() {
  sim::NetworkModel net;
  net.latency = 2.3e-6;
  net.byte_time = 6.7e-10;
  return net;
}

/// Runs `body` on a simulated cluster of `cores` ranks and returns the
/// virtual elapsed wall-clock in seconds. Pass a trace::Recorder to capture
/// per-rank phase spans for post-hoc metrics (fig5 derives utilization this
/// way); null keeps tracing disabled.
inline double run_cluster(int cores, const std::function<void(mpi::Comm&)>& body,
                          sim::NetworkModel net = sim::NetworkModel{},
                          trace::Recorder* recorder = nullptr) {
  sim::EngineConfig config;
  config.nprocs = cores;
  config.net = net;
  config.stack_bytes = 256 * 1024;
  config.recorder = recorder;
  sim::Engine engine(config);
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    body(comm);
  });
  return engine.elapsed();
}

inline double seconds_to_minutes(double s) { return s / 60.0; }

/// Prints one header + rows of a fixed-width table.
inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Efficiency-loss breakdown table (printed next to the timing tables):
/// each obs::analyze category as a percentage of total rank-seconds, so a
/// reader can see where the non-ideal speedup went at each core count.
inline void print_loss_header(int width = 9) {
  print_row({"cores", "useful%", "db_io%", "spill%", "obusy%", "cskew%", "mwait%",
             "comm%", "idle%"},
            width);
}

inline void print_loss_row(int cores, const obs::Report& report, int width = 9) {
  const double total = report.total.final_time;
  const auto pct = [&](double v) { return fmt(total > 0.0 ? 100.0 * v / total : 0.0, 1); };
  print_row({std::to_string(cores), pct(report.total.useful), pct(report.total.db_io),
             pct(report.total.spill_io), pct(report.total.other_busy),
             pct(report.total.collective_skew), pct(report.total.master_wait),
             pct(report.total.comm_overhead), pct(report.total.idle_other)},
            width);
}

}  // namespace mrbio::bench
