// Shared helpers for the figure-reproduction benchmark drivers.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace mrbio::bench {

/// Core counts used across the paper's scaling charts (multiples of the
/// 16-core Ranger nodes, 16..1024).
inline std::vector<int> paper_core_counts() { return {16, 32, 64, 128, 256, 512, 1024}; }

/// Network model approximating Ranger's Infiniband fabric: ~2.3 us
/// latency, ~1.5 GB/s point-to-point bandwidth.
inline sim::NetworkModel paper_net() {
  sim::NetworkModel net;
  net.latency = 2.3e-6;
  net.byte_time = 6.7e-10;
  return net;
}

/// Runs `body` on a simulated cluster of `cores` ranks and returns the
/// virtual elapsed wall-clock in seconds. Pass a trace::Recorder to capture
/// per-rank phase spans for post-hoc metrics (fig5 derives utilization this
/// way); null keeps tracing disabled.
inline double run_cluster(int cores, const std::function<void(mpi::Comm&)>& body,
                          sim::NetworkModel net = sim::NetworkModel{},
                          trace::Recorder* recorder = nullptr) {
  sim::EngineConfig config;
  config.nprocs = cores;
  config.net = net;
  config.stack_bytes = 256 * 1024;
  config.recorder = recorder;
  sim::Engine engine(config);
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    body(comm);
  });
  return engine.elapsed();
}

inline double seconds_to_minutes(double s) { return s / 60.0; }

/// Prints one header + rows of a fixed-width table.
inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace mrbio::bench
