#!/usr/bin/env bash
# Perf-regression gate: run the canonical mrbio_bench workload matrix and
# compare against the committed baseline. The sim backend is deterministic,
# so a drift outside tolerance is a real (intentional or not) model change.
#
#   bench/regress.sh [--smoke|--full] [--update-baseline] [--build-dir DIR]
#
# Produces BENCH_<schema>.json in the current directory. Exits nonzero when
# any metric drifts outside its tolerance (see tools/mrbio_bench.cpp).
# --update-baseline rewrites the committed baseline instead of comparing;
# commit the result together with the change that moved the numbers.
set -euo pipefail

repo_dir="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_dir/build"
suite=smoke
update=0

while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) suite=smoke ;;
    --full) suite=full ;;
    --update-baseline) update=1 ;;
    --build-dir) build_dir="$2"; shift ;;
    *) echo "usage: bench/regress.sh [--smoke|--full] [--update-baseline] [--build-dir DIR]" >&2
       exit 1 ;;
  esac
  shift
done

bench="$build_dir/tools/mrbio_bench"
if [ ! -x "$bench" ]; then
  echo "regress.sh: $bench not built (cmake --build $build_dir --target mrbio_bench)" >&2
  exit 1
fi

if [ "$suite" = smoke ]; then
  baseline="$repo_dir/bench/baseline.json"
else
  baseline="$repo_dir/bench/baseline-full.json"
fi

# The series number bumps whenever the workload matrix itself changes
# (which also requires a fresh baseline); the JSON carries schema_version
# separately.
series=9
out="BENCH_${series}.json"
"$bench" run --suite "$suite" --out "$out"

if [ "$update" = 1 ]; then
  cp "$out" "$baseline"
  echo "baseline updated: $baseline"
  exit 0
fi

exec "$bench" compare --baseline "$baseline" --candidate "$out"
