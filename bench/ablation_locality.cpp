// Ablation: the Section V location-aware work-unit scheduler. The paper's
// plan: "distribute the work unit tuples to those ranks that have already
// been processing the same DB partitions ... Improving the DB locality
// will in turn allow us to improve the load balancing by using smaller
// query blocks." This bench quantifies both halves: partition reloads and
// wall clock, for the plain vs locality-aware master-worker, at large and
// small block sizes.
#include <cstdio>
#include <mutex>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "mrblast/mrblast.hpp"

using namespace mrbio;

namespace {

struct Outcome {
  double minutes = 0.0;
  std::uint64_t db_loads = 0;
};

Outcome run(int cores, std::uint64_t block, bool locality) {
  mrblast::SimRunConfig config;
  config.workload.total_queries = 80'000;
  config.workload.queries_per_block = block;
  config.locality_aware = locality;
  std::mutex mu;
  Outcome out;
  out.minutes = bench::seconds_to_minutes(bench::run_cluster(
      cores,
      [&](mpi::Comm& comm) {
        const auto stats = mrblast::run_blast_sim(comm, config);
        // db_loads is globally reduced inside the driver; capture it once.
        std::lock_guard<std::mutex> lock(mu);
        out.db_loads = stats.db_loads;
      },
      bench::paper_net()));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("ablation_locality: location-aware scheduling vs plain master-worker");
  opts.add("max-cores", "512", "largest simulated core count");
  if (!opts.parse(argc, argv)) return 0;
  const auto max_cores = opts.integer("max-cores");

  std::printf("=== Ablation: location-aware scheduler (80K queries, wall min / DB loads) ===\n");
  bench::print_row({"cores", "block", "plain", "loads", "locality", "loads", "speedup"}, 12);
  for (const int cores : {32, 128, 512}) {
    if (cores > max_cores) break;
    for (const std::uint64_t block : {1'000ull, 250ull}) {
      const Outcome plain = run(cores, block, false);
      const Outcome local = run(cores, block, true);
      bench::print_row({std::to_string(cores), std::to_string(block),
                        bench::fmt(plain.minutes), std::to_string(plain.db_loads),
                        bench::fmt(local.minutes), std::to_string(local.db_loads),
                        bench::fmt(plain.minutes / local.minutes, 2) + "x"},
                       12);
    }
  }
  std::printf(
      "\nShape checks: locality slashes partition loads; the win is largest at\n"
      "small core counts (cold cluster cache) and for small blocks, enabling the\n"
      "finer-grained balancing the paper is after.\n");
  return 0;
}
