// Figure 4: average wall-clock core-minutes per query sequence vs core
// count for the 80,000-query dataset split into 40 blocks (2000/blk) and
// 80 blocks (1000/blk).
//
// Paper shape targets: a pronounced efficiency *improvement* around 128
// cores (the combined cluster RAM begins to hold all 109 DB partitions:
// the paper reports 167% relative efficiency for the 80-block series),
// then degradation toward 1024 cores as end-of-stage idling and the
// longest work units dominate -- more pronounced for the 40-block series,
// which has fewer units to balance.
#include <cstdio>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "mrblast/mrblast.hpp"

using namespace mrbio;

namespace {

double core_minutes_per_query(std::uint64_t per_block, int cores, double* minutes_out) {
  mrblast::SimRunConfig config;
  config.workload.total_queries = 80'000;
  config.workload.queries_per_block = per_block;
  const double elapsed = bench::run_cluster(
      cores, [&](mpi::Comm& comm) { mrblast::run_blast_sim(comm, config); },
      bench::paper_net());
  if (minutes_out != nullptr) *minutes_out = bench::seconds_to_minutes(elapsed);
  return bench::seconds_to_minutes(elapsed) * static_cast<double>(cores) / 80'000.0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("fig4_core_minutes: reproduces Fig. 4, core-minutes per query vs cores");
  opts.add("max-cores", "1024", "largest simulated core count");
  if (!opts.parse(argc, argv)) return 0;
  const auto max_cores = opts.integer("max-cores");

  std::printf("=== Fig. 4: core-minutes per query, 80K queries ===\n");
  bench::print_row({"cores", "40 blocks", "80 blocks", "eff40 vs 32", "eff80 vs 32"}, 14);

  double base40 = 0.0;
  double base80 = 0.0;
  for (const int cores : bench::paper_core_counts()) {
    if (cores > max_cores) break;
    const double cm40 = core_minutes_per_query(2'000, cores, nullptr);
    const double cm80 = core_minutes_per_query(1'000, cores, nullptr);
    if (cores == 32) {
      base40 = cm40;
      base80 = cm80;
    }
    const std::string eff40 =
        base40 > 0.0 ? bench::fmt(100.0 * base40 / cm40, 1) + "%" : "-";
    const std::string eff80 =
        base80 > 0.0 ? bench::fmt(100.0 * base80 / cm80, 1) + "%" : "-";
    bench::print_row({std::to_string(cores), bench::fmt(cm40, 4), bench::fmt(cm80, 4),
                      eff40, eff80},
                     14);
  }
  std::printf(
      "\nShape checks (paper): superlinear bump (eff > 100%%) around 128 cores when\n"
      "the DB fits in combined RAM; decline by 1024 cores (paper: 95%% for 80\n"
      "blocks), with the 40-block series degrading more.\n");
  return 0;
}
