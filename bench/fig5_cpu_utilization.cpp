// Figure 5: "useful" CPU utilization per core over the course of a protein
// MR-MPI BLAST run on 1024 cores, plus the Section IV-A protein scaling
// claims (1024-core run spends only ~6% more core-minutes per query than
// the 512-core run).
//
// Useful utilization is the fraction of cores inside search compute at a
// given moment -- I/O and MapReduce bookkeeping excluded -- exactly the
// getrusage()-based metric of the paper. Shape targets: a long plateau
// near 1.0 and a taper at the end as the last work units straggle.
//
// The series is now derived from the trace layer: a trace::Recorder
// captures App/"search" spans during the run and utilization_series()
// buckets them. The legacy UtilizationTracker is kept as a cross-check;
// both series are computed and the max divergence is printed (the spans
// cover exactly the tracker's intervals, so it must be ~0).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "mrblast/mrblast.hpp"
#include "trace/trace.hpp"

using namespace mrbio;

namespace {

struct ProteinRun {
  double wall_minutes = 0.0;
  double core_min_per_query = 0.0;
  std::vector<double> utilization;         ///< trace-derived (the new path)
  std::vector<double> legacy_utilization;  ///< IntervalTracker cross-check
  trace::Summary summary;
  obs::Report report;  ///< efficiency-loss attribution of the same trace
};

ProteinRun run_protein(int cores, std::size_t buckets) {
  mrblast::SimRunConfig config;
  config.workload = workload::protein_workload_config();
  workload::UtilizationTracker tracker;
  config.tracker = &tracker;
  trace::Recorder recorder(cores);
  const double elapsed = bench::run_cluster(
      cores, [&](mpi::Comm& comm) { mrblast::run_blast_sim(comm, config); },
      bench::paper_net(), &recorder);
  ProteinRun out;
  out.wall_minutes = bench::seconds_to_minutes(elapsed);
  out.core_min_per_query = out.wall_minutes * static_cast<double>(cores) /
                           static_cast<double>(config.workload.total_queries);
  const double bucket = elapsed / static_cast<double>(buckets);
  out.utilization =
      trace::utilization_series(recorder, trace::Category::App, "search", bucket, cores);
  out.legacy_utilization = tracker.series(bucket, cores);
  out.summary = trace::summarize(recorder);
  out.report = obs::analyze(recorder);
  return out;
}

double max_divergence(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) worst = std::max(worst, std::abs(a[i] - b[i]));
  if (a.size() != b.size()) worst = 1.0;  // length mismatch is a failure
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("fig5_cpu_utilization: reproduces Fig. 5 and the protein scaling text");
  opts.add("buckets", "32", "number of time buckets in the utilization series");
  if (!opts.parse(argc, argv)) return 0;
  const auto buckets = static_cast<std::size_t>(opts.integer("buckets"));

  std::printf("=== Fig. 5: protein BLAST, useful CPU utilization on 1024 cores ===\n");
  const ProteinRun run1024 = run_protein(1024, buckets);
  std::printf("time%%    utilization\n");
  for (std::size_t b = 0; b < run1024.utilization.size(); ++b) {
    const double pct = 100.0 * static_cast<double>(b + 1) /
                       static_cast<double>(run1024.utilization.size());
    std::printf("%5.1f    %.3f  ", pct, run1024.utilization[b]);
    const int bar = static_cast<int>(run1024.utilization[b] * 50.0);
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("\n");
  }
  const double diverge =
      max_divergence(run1024.utilization, run1024.legacy_utilization);
  std::printf("\nmax |trace - legacy tracker| utilization: %.6f (%s, tolerance 0.01)\n",
              diverge, diverge < 0.01 ? "OK" : "MISMATCH");

  std::printf("\n=== Per-phase virtual-time breakdown (1024 cores) ===\n");
  trace::print_summary(stdout, run1024.summary, 8);

  std::printf("\n=== Section IV-A: protein scaling 512 vs 1024 cores ===\n");
  const ProteinRun run512 = run_protein(512, buckets);
  std::printf("\n=== Efficiency-loss breakdown (%% of rank-seconds) ===\n");
  bench::print_loss_header();
  bench::print_loss_row(512, run512.report);
  bench::print_loss_row(1024, run1024.report);
  std::printf("stragglers at 1024 cores (busy > 1.5 x median): %zu\n",
              run1024.report.stragglers.size());
  bench::print_row({"cores", "wall (min)", "core-min/query"}, 16);
  bench::print_row({"512", bench::fmt(run512.wall_minutes, 1),
                    bench::fmt(run512.core_min_per_query, 4)},
                   16);
  bench::print_row({"1024", bench::fmt(run1024.wall_minutes, 1),
                    bench::fmt(run1024.core_min_per_query, 4)},
                   16);
  const double penalty =
      100.0 * (run1024.core_min_per_query / run512.core_min_per_query - 1.0);
  std::printf("1024-core core-min/query penalty vs 512: %.1f%% (paper: ~6%%)\n", penalty);
  std::printf("1024-core wall clock: %.0f min (paper: 294 min absolute on Ranger)\n",
              run1024.wall_minutes);
  return diverge < 0.01 ? 0 : 1;
}
