// Kernel micro-benchmarks (google-benchmark): the inner loops whose
// throughput determines the constants of the cost models used by the
// figure reproductions.
#include <benchmark/benchmark.h>

#include "blast/extend.hpp"
#include "blast/filter.hpp"
#include "blast/lookup.hpp"
#include "blast/sequence.hpp"
#include "blast/translate.hpp"
#include "mrmpi/keyvalue.hpp"
#include "som/som.hpp"

using namespace mrbio;

namespace {

std::vector<std::uint8_t> random_dna(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return blast::random_sequence(rng, "s", n, blast::SeqType::Dna).data;
}

std::vector<std::uint8_t> random_protein(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return blast::random_sequence(rng, "s", n, blast::SeqType::Protein).data;
}

void BM_NucLookupBuild(benchmark::State& state) {
  const auto query = random_dna(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    blast::NucLookup lut(query, 11);
    benchmark::DoNotOptimize(lut.total_positions());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NucLookupBuild)->Arg(10'000)->Arg(100'000);

void BM_NucScan(benchmark::State& state) {
  const auto query = random_dna(10'000, 2);
  const auto subject = random_dna(static_cast<std::size_t>(state.range(0)), 3);
  const blast::NucLookup lut(query, 11);
  for (auto _ : state) {
    std::uint64_t hits = 0;
    std::uint32_t word = 0;
    std::size_t run = 0;
    const std::uint32_t mask = (1u << 22) - 1;
    for (const std::uint8_t c : subject) {
      word = ((word << 2) | c) & mask;
      if (++run >= 11) hits += lut.hits(word).size();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NucScan)->Arg(100'000)->Arg(1'000'000);

void BM_ProtLookupBuildNeighbourhood(benchmark::State& state) {
  const auto query = random_protein(static_cast<std::size_t>(state.range(0)), 4);
  const blast::Scorer scorer = blast::Scorer::blosum62();
  for (auto _ : state) {
    blast::ProtLookup lut(query, 11, scorer);
    benchmark::DoNotOptimize(lut.total_positions());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProtLookupBuildNeighbourhood)->Arg(300)->Arg(3'000);

void BM_UngappedExtension(benchmark::State& state) {
  Rng rng(5);
  const auto parent = blast::random_sequence(rng, "p", 2'000, blast::SeqType::Dna);
  const auto homolog = blast::mutate(rng, parent, "h", 0.05, blast::SeqType::Dna);
  const blast::Scorer scorer = blast::Scorer::dna();
  for (auto _ : state) {
    const auto seg =
        blast::extend_ungapped(parent.data, homolog.data, 1'000, 1'000, 11, scorer, 20);
    benchmark::DoNotOptimize(seg.score);
  }
}
BENCHMARK(BM_UngappedExtension);

void BM_GappedExtension(benchmark::State& state) {
  Rng rng(6);
  const auto parent = blast::random_sequence(rng, "p", 2'000, blast::SeqType::Dna);
  const auto homolog = blast::mutate(rng, parent, "h", 0.05, blast::SeqType::Dna);
  const blast::Scorer scorer = blast::Scorer::dna();
  for (auto _ : state) {
    const auto aln =
        blast::extend_gapped(parent.data, homolog.data, 1'000, 1'000, scorer, 30);
    benchmark::DoNotOptimize(aln.score);
  }
}
BENCHMARK(BM_GappedExtension);

void BM_DustFilter(benchmark::State& state) {
  const auto seq = random_dna(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blast::dust_mask(seq));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DustFilter)->Arg(100'000);

void BM_BmuSearch(benchmark::State& state) {
  const auto cells = static_cast<std::size_t>(state.range(0));
  som::Codebook cb(som::SomGrid{cells, cells}, 256);
  Rng rng(8);
  cb.init_random(rng);
  std::vector<float> x(256);
  for (float& v : x) v = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(som::find_bmu(cb, x));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(cells * cells) * 256);
}
BENCHMARK(BM_BmuSearch)->Arg(10)->Arg(50);

void BM_BatchAccumulate(benchmark::State& state) {
  som::Codebook cb(som::SomGrid{50, 50}, 256);
  Rng rng(9);
  cb.init_random(rng);
  std::vector<float> x(256);
  for (float& v : x) v = static_cast<float>(rng.uniform());
  som::BatchAccumulator acc(cb.grid(), 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.add(cb, x, 5.0));
  }
  state.SetItemsProcessed(state.iterations() * 2'500 * 256);
}
BENCHMARK(BM_BatchAccumulate);

void BM_KeyValueAdd(benchmark::State& state) {
  const std::string key = "query_00012345";
  const std::string value(120, 'x');
  for (auto _ : state) {
    mrmpi::KeyValue kv;
    for (int i = 0; i < 1'000; ++i) kv.add(key, value);
    benchmark::DoNotOptimize(kv.size());
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_KeyValueAdd);

void BM_Translate6Frames(benchmark::State& state) {
  const auto dna = random_dna(static_cast<std::size_t>(state.range(0)), 10);
  for (auto _ : state) {
    for (int f = 0; f < 6; ++f) {
      benchmark::DoNotOptimize(blast::translate(dna, f));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 6);
}
BENCHMARK(BM_Translate6Frames)->Arg(10'000);

void BM_KeyValueSpillRoundTrip(benchmark::State& state) {
  mrmpi::SpillPolicy policy;
  policy.page_bytes = 64 * 1024;
  policy.max_resident_pages = 4;
  policy.dir = "/tmp";
  const std::string value(200, 'v');
  for (auto _ : state) {
    mrmpi::KeyValue kv(policy);
    for (int i = 0; i < 5'000; ++i) kv.add("key" + std::to_string(i), value);
    std::size_t n = 0;
    kv.for_each([&](const mrmpi::KvPair&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
  state.SetBytesProcessed(state.iterations() * 5'000 * 210);
}
BENCHMARK(BM_KeyValueSpillRoundTrip);

void BM_KeyHash(benchmark::State& state) {
  const std::string key = "query_00012345";
  const auto bytes = std::as_bytes(std::span(key.data(), key.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mrmpi::key_hash(bytes));
  }
}
BENCHMARK(BM_KeyHash);

}  // namespace

BENCHMARK_MAIN();
