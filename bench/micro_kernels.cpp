// Kernel micro-benchmarks (google-benchmark): the inner loops whose
// throughput determines the constants of the cost models used by the
// figure reproductions. Every SIMD kernel is registered once per ISA
// level this machine can run (BM_Simd*/scalar, /sse4.1, /avx2), and a
// side-by-side speedup table versus the scalar oracle is printed before
// the benchmark run.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "blast/extend.hpp"
#include "blast/filter.hpp"
#include "blast/lookup.hpp"
#include "blast/sequence.hpp"
#include "blast/translate.hpp"
#include "mrmpi/keyvalue.hpp"
#include "simd/simd.hpp"
#include "som/som.hpp"

using namespace mrbio;

namespace {

std::vector<std::uint8_t> random_dna(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return blast::random_sequence(rng, "s", n, blast::SeqType::Dna).data;
}

std::vector<std::uint8_t> random_protein(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return blast::random_sequence(rng, "s", n, blast::SeqType::Protein).data;
}

void BM_NucLookupBuild(benchmark::State& state) {
  const auto query = random_dna(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    blast::NucLookup lut(query, 11);
    benchmark::DoNotOptimize(lut.total_positions());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NucLookupBuild)->Arg(10'000)->Arg(100'000);

void BM_NucScan(benchmark::State& state) {
  const auto query = random_dna(10'000, 2);
  const auto subject = random_dna(static_cast<std::size_t>(state.range(0)), 3);
  const blast::NucLookup lut(query, 11);
  for (auto _ : state) {
    std::uint64_t hits = 0;
    std::uint32_t word = 0;
    std::size_t run = 0;
    const std::uint32_t mask = (1u << 22) - 1;
    for (const std::uint8_t c : subject) {
      word = ((word << 2) | c) & mask;
      if (++run >= 11) hits += lut.hits(word).size();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NucScan)->Arg(100'000)->Arg(1'000'000);

void BM_ProtLookupBuildNeighbourhood(benchmark::State& state) {
  const auto query = random_protein(static_cast<std::size_t>(state.range(0)), 4);
  const blast::Scorer scorer = blast::Scorer::blosum62();
  for (auto _ : state) {
    blast::ProtLookup lut(query, 11, scorer);
    benchmark::DoNotOptimize(lut.total_positions());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProtLookupBuildNeighbourhood)->Arg(300)->Arg(3'000);

void BM_UngappedExtension(benchmark::State& state) {
  Rng rng(5);
  const auto parent = blast::random_sequence(rng, "p", 2'000, blast::SeqType::Dna);
  const auto homolog = blast::mutate(rng, parent, "h", 0.05, blast::SeqType::Dna);
  const blast::Scorer scorer = blast::Scorer::dna();
  for (auto _ : state) {
    const auto seg =
        blast::extend_ungapped(parent.data, homolog.data, 1'000, 1'000, 11, scorer, 20);
    benchmark::DoNotOptimize(seg.score);
  }
}
BENCHMARK(BM_UngappedExtension);

void BM_GappedExtension(benchmark::State& state) {
  Rng rng(6);
  const auto parent = blast::random_sequence(rng, "p", 2'000, blast::SeqType::Dna);
  const auto homolog = blast::mutate(rng, parent, "h", 0.05, blast::SeqType::Dna);
  const blast::Scorer scorer = blast::Scorer::dna();
  for (auto _ : state) {
    const auto aln =
        blast::extend_gapped(parent.data, homolog.data, 1'000, 1'000, scorer, 30);
    benchmark::DoNotOptimize(aln.score);
  }
}
BENCHMARK(BM_GappedExtension);

void BM_DustFilter(benchmark::State& state) {
  const auto seq = random_dna(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blast::dust_mask(seq));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DustFilter)->Arg(100'000);

void BM_BmuSearch(benchmark::State& state) {
  const auto cells = static_cast<std::size_t>(state.range(0));
  som::Codebook cb(som::SomGrid{cells, cells}, 256);
  Rng rng(8);
  cb.init_random(rng);
  std::vector<float> x(256);
  for (float& v : x) v = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(som::find_bmu(cb, x));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(cells * cells) * 256);
}
BENCHMARK(BM_BmuSearch)->Arg(10)->Arg(50);

void BM_BatchAccumulate(benchmark::State& state) {
  som::Codebook cb(som::SomGrid{50, 50}, 256);
  Rng rng(9);
  cb.init_random(rng);
  std::vector<float> x(256);
  for (float& v : x) v = static_cast<float>(rng.uniform());
  som::BatchAccumulator acc(cb.grid(), 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.add(cb, x, 5.0));
  }
  state.SetItemsProcessed(state.iterations() * 2'500 * 256);
}
BENCHMARK(BM_BatchAccumulate);

void BM_KeyValueAdd(benchmark::State& state) {
  const std::string key = "query_00012345";
  const std::string value(120, 'x');
  for (auto _ : state) {
    mrmpi::KeyValue kv;
    for (int i = 0; i < 1'000; ++i) kv.add(key, value);
    benchmark::DoNotOptimize(kv.size());
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_KeyValueAdd);

void BM_Translate6Frames(benchmark::State& state) {
  const auto dna = random_dna(static_cast<std::size_t>(state.range(0)), 10);
  for (auto _ : state) {
    for (int f = 0; f < 6; ++f) {
      benchmark::DoNotOptimize(blast::translate(dna, f));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 6);
}
BENCHMARK(BM_Translate6Frames)->Arg(10'000);

void BM_KeyValueSpillRoundTrip(benchmark::State& state) {
  mrmpi::SpillPolicy policy;
  policy.page_bytes = 64 * 1024;
  policy.max_resident_pages = 4;
  policy.dir = "/tmp";
  const std::string value(200, 'v');
  for (auto _ : state) {
    mrmpi::KeyValue kv(policy);
    for (int i = 0; i < 5'000; ++i) kv.add("key" + std::to_string(i), value);
    std::size_t n = 0;
    kv.for_each([&](const mrmpi::KvPair&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
  state.SetBytesProcessed(state.iterations() * 5'000 * 210);
}
BENCHMARK(BM_KeyValueSpillRoundTrip);

void BM_KeyHash(benchmark::State& state) {
  const std::string key = "query_00012345";
  const auto bytes = std::as_bytes(std::span(key.data(), key.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mrmpi::key_hash(bytes));
  }
}
BENCHMARK(BM_KeyHash);

// ---------------------------------------------------------------------------
// SIMD kernel variants, one registration per runnable ISA level

/// Shared inputs of the per-ISA kernel benchmarks.
struct SimdBenchData {
  static const SimdBenchData& get() {
    static const SimdBenchData d;
    return d;
  }

  // diag_scan: identical sequences + match-favouring table, so the scan
  // always consumes all n pairs (the calibration workload's shape).
  std::vector<std::uint8_t> seq = random_dna(4'096, 21);
  std::vector<int> table = [] {
    std::vector<int> t(32 * 32, -2);
    for (int a = 0; a < 32; ++a) t[static_cast<std::size_t>(a) * 32 + a] = 1;
    return t;
  }();

  // gapped_row_prep: a 256-column window.
  std::vector<int> h_prev = [] {
    Rng rng(22);
    std::vector<int> v(256);
    for (int& x : v) x = static_cast<int>(rng.below(200)) - 60;
    return v;
  }();
  std::vector<int> f_prev = h_prev;
  std::vector<std::uint8_t> b_lo = random_dna(257, 23);
  std::vector<int> score_row = std::vector<int>(32, -3);

  // word scans over 100k residues.
  std::vector<std::uint8_t> dna = random_dna(100'000, 24);
  std::vector<std::uint8_t> prot = [] {
    auto v = random_protein(100'000, 25);
    v.resize(v.size() + 2, 31);  // prot_words reads s[m+1]
    return v;
  }();

  // SOM vectors, dim 256.
  std::vector<float> xa = [] {
    Rng rng(26);
    std::vector<float> v(256);
    for (float& f : v) f = static_cast<float>(rng.uniform());
    return v;
  }();
  std::vector<float> xb = [] {
    Rng rng(27);
    std::vector<float> v(256);
    for (float& f : v) f = static_cast<float>(rng.uniform());
    return v;
  }();
};

void BM_SimdDiagScan(benchmark::State& state, simd::Isa isa) {
  const SimdBenchData& d = SimdBenchData::get();
  const simd::Kernels& k = simd::kernels(isa);
  for (auto _ : state) {
    const simd::DiagScanResult r = k.diag_scan(d.seq.data(), d.seq.data(), d.seq.size(),
                                               false, d.table.data(), 0, 0, 1 << 28);
    benchmark::DoNotOptimize(r.best);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(d.seq.size()));
}

void BM_SimdGappedRowPrep(benchmark::State& state, simd::Isa isa) {
  const SimdBenchData& d = SimdBenchData::get();
  const simd::Kernels& k = simd::kernels(isa);
  std::vector<int> d_out(257), f_out(257);
  std::vector<std::uint8_t> flags(257);
  for (auto _ : state) {
    k.gapped_row_prep(d.h_prev.data(), d.f_prev.data(), d.h_prev.size(), d.b_lo.data(),
                      d.score_row.data(), 7, 2, 257, d_out.data(), f_out.data(),
                      flags.data());
    benchmark::DoNotOptimize(d_out[1]);
  }
  state.SetItemsProcessed(state.iterations() * 257);
}

void BM_SimdDnaWords(benchmark::State& state, simd::Isa isa) {
  const SimdBenchData& d = SimdBenchData::get();
  const simd::Kernels& k = simd::kernels(isa);
  const std::uint32_t mask = (1u << 22) - 1;
  std::uint32_t codes[48];
  for (auto _ : state) {
    std::uint32_t word = 0;
    std::uint64_t hist = 0;
    std::uint64_t valid = 0;
    std::uint64_t sum = 0;
    for (std::size_t base = 0; base < d.dna.size(); base += 48) {
      const std::size_t m = std::min<std::size_t>(48, d.dna.size() - base);
      k.dna_words(d.dna.data() + base, m, 11, mask, &word, &hist, codes, &valid);
      sum += valid;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(d.dna.size()));
}

void BM_SimdProtWords(benchmark::State& state, simd::Isa isa) {
  const SimdBenchData& d = SimdBenchData::get();
  const simd::Kernels& k = simd::kernels(isa);
  const std::size_t last = d.prot.size() - 2 - 3;  // keep s[m+1] readable
  std::uint16_t codes[64];
  for (auto _ : state) {
    std::uint64_t valid = 0;
    std::uint64_t sum = 0;
    for (std::size_t base = 0; base <= last; base += 64) {
      const std::size_t m = std::min<std::size_t>(64, last - base + 1);
      k.prot_words(d.prot.data() + base, m, codes, &valid);
      sum += valid;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(last));
}

void BM_SimdDist2(benchmark::State& state, simd::Isa isa) {
  const SimdBenchData& d = SimdBenchData::get();
  const simd::Kernels& k = simd::kernels(isa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.dist2_f32(d.xa.data(), d.xb.data(), d.xa.size()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(d.xa.size()));
}

void BM_SimdOnlineUpdate(benchmark::State& state, simd::Isa isa) {
  const SimdBenchData& d = SimdBenchData::get();
  const simd::Kernels& k = simd::kernels(isa);
  std::vector<float> w = d.xa;
  for (auto _ : state) {
    k.online_update_f32(w.data(), d.xb.data(), w.size(), 1e-4);
    benchmark::DoNotOptimize(w[0]);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(d.xa.size()));
}

void register_simd_benchmarks() {
  using Fn = void (*)(benchmark::State&, simd::Isa);
  constexpr std::pair<const char*, Fn> kKernels[] = {
      {"BM_SimdDiagScan", BM_SimdDiagScan},
      {"BM_SimdGappedRowPrep", BM_SimdGappedRowPrep},
      {"BM_SimdDnaWords", BM_SimdDnaWords},
      {"BM_SimdProtWords", BM_SimdProtWords},
      {"BM_SimdDist2", BM_SimdDist2},
      {"BM_SimdOnlineUpdate", BM_SimdOnlineUpdate},
  };
  for (const auto& [name, fn] : kKernels) {
    for (const simd::Isa isa : simd::runnable_isas()) {
      benchmark::RegisterBenchmark(
          (std::string(name) + "/" + simd::isa_name(isa)).c_str(), fn, isa);
    }
  }
}

/// Quick self-timed side-by-side table: items/s per level and speedup vs
/// scalar, independent of the google-benchmark output format.
void print_simd_speedups() {
  const auto time_loop = [](const auto& body, double items_per_call) {
    using clock = std::chrono::steady_clock;
    // Warm up, then run for ~40 ms.
    body();
    const clock::time_point t0 = clock::now();
    std::size_t calls = 0;
    while (std::chrono::duration<double>(clock::now() - t0).count() < 0.04) {
      for (int i = 0; i < 8; ++i) body();
      calls += 8;
    }
    const double secs = std::chrono::duration<double>(clock::now() - t0).count();
    return items_per_call * static_cast<double>(calls) / secs;
  };

  const std::vector<simd::Isa> isas = simd::runnable_isas();
  std::printf("\n-- SIMD kernel speedups vs scalar (items/s; higher is better) --\n");
  std::printf("%-22s", "kernel");
  for (const simd::Isa isa : isas) std::printf(" %14s", simd::isa_name(isa));
  std::printf("  best speedup\n");

  const auto report = [&](const char* name, const auto& make_body,
                          double items_per_call) {
    std::printf("%-22s", name);
    double scalar_rate = 0.0;
    double best = 0.0;
    for (const simd::Isa isa : isas) {
      const auto body = make_body(isa);
      const double rate = time_loop(body, items_per_call);
      if (isa == simd::Isa::Scalar) scalar_rate = rate;
      best = std::max(best, scalar_rate > 0.0 ? rate / scalar_rate : 0.0);
      std::printf(" %14.4g", rate);
    }
    std::printf("  %.2fx\n", best);
  };

  const SimdBenchData& d = SimdBenchData::get();
  report(
      "diag_scan",
      [&](simd::Isa isa) {
        const simd::Kernels* k = &simd::kernels(isa);
        return [&d, k] {
          benchmark::DoNotOptimize(k->diag_scan(d.seq.data(), d.seq.data(), d.seq.size(),
                                               false, d.table.data(), 0, 0, 1 << 28));
        };
      },
      static_cast<double>(d.seq.size()));
  report(
      "gapped_row_prep",
      [&](simd::Isa isa) {
        const simd::Kernels* k = &simd::kernels(isa);
        return [&d, k] {
          int d_out[257], f_out[257];
          std::uint8_t flags[257];
          k->gapped_row_prep(d.h_prev.data(), d.f_prev.data(), d.h_prev.size(),
                            d.b_lo.data(), d.score_row.data(), 7, 2, 257, d_out, f_out,
                            flags);
          benchmark::DoNotOptimize(d_out[1]);
        };
      },
      257.0);
  report(
      "dna_words",
      [&](simd::Isa isa) {
        const simd::Kernels* k = &simd::kernels(isa);
        return [&d, k] {
          const std::uint32_t mask = (1u << 22) - 1;
          std::uint32_t codes[48];
          std::uint32_t word = 0;
          std::uint64_t hist = 0, valid = 0, sum = 0;
          for (std::size_t base = 0; base < d.dna.size(); base += 48) {
            const std::size_t m = std::min<std::size_t>(48, d.dna.size() - base);
            k->dna_words(d.dna.data() + base, m, 11, mask, &word, &hist, codes, &valid);
            sum += valid;
          }
          benchmark::DoNotOptimize(sum);
        };
      },
      static_cast<double>(d.dna.size()));
  report(
      "prot_words",
      [&](simd::Isa isa) {
        const simd::Kernels* k = &simd::kernels(isa);
        return [&d, k] {
          const std::size_t last = d.prot.size() - 2 - 3;
          std::uint16_t codes[64];
          std::uint64_t valid = 0, sum = 0;
          for (std::size_t base = 0; base <= last; base += 64) {
            const std::size_t m = std::min<std::size_t>(64, last - base + 1);
            k->prot_words(d.prot.data() + base, m, codes, &valid);
            sum += valid;
          }
          benchmark::DoNotOptimize(sum);
        };
      },
      static_cast<double>(d.prot.size()));
  report(
      "dist2_f32",
      [&](simd::Isa isa) {
        const simd::Kernels* k = &simd::kernels(isa);
        return [&d, k] {
          benchmark::DoNotOptimize(k->dist2_f32(d.xa.data(), d.xb.data(), d.xa.size()));
        };
      },
      static_cast<double>(d.xa.size()));
  report(
      "online_update_f32",
      [&](simd::Isa isa) {
        const simd::Kernels* k = &simd::kernels(isa);
        return [&d, k] {
          static std::vector<float> w = d.xa;
          k->online_update_f32(w.data(), d.xb.data(), w.size(), 1e-4);
          benchmark::DoNotOptimize(w[0]);
        };
      },
      static_cast<double>(d.xa.size()));

  std::printf("calibrated seconds/cell:");
  for (const simd::Isa isa : isas) {
    std::printf(" %s=%.3g", simd::isa_name(isa),
                simd::calibrated_seconds_per_cell(isa));
  }
  std::printf("\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  register_simd_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  print_simd_speedups();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
