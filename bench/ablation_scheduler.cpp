// Ablation: the MapReduce-MPI scheduling policies on the BLAST workload.
// The paper uses the master-worker mode because BLAST unit costs are
// "highly non-uniform and unpredictable"; this quantifies what the static
// modes would have cost, profiles the master's grant service times, and
// sweeps rank counts until the centralized master saturates and the
// decentralized work-stealing scheduler overtakes it.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "mrblast/mrblast.hpp"
#include "obs/metrics.hpp"
#include "sched/sched.hpp"

using namespace mrbio;

namespace {

struct PolicyRun {
  double elapsed = 0.0;
  std::uint64_t grants = 0;       ///< master grant-service events
  double service_mean = 0.0;      ///< rank-0 per-grant service time (s)
  double service_p99 = 0.0;
  std::uint64_t steals_attempted = 0;
  std::uint64_t steals_succeeded = 0;
  std::uint64_t tasks_stolen = 0;

  double grants_per_second() const {
    return elapsed > 0.0 ? static_cast<double>(grants) / elapsed : 0.0;
  }
  double steals_per_second() const {
    return elapsed > 0.0 ? static_cast<double>(steals_succeeded) / elapsed : 0.0;
  }
};

PolicyRun run_policy(sched::Policy policy, int cores,
                     const workload::BlastWorkloadConfig& wl) {
  mrblast::SimRunConfig config;
  config.workload = wl;
  config.scheduler = policy;

  obs::Registry registry;
  sim::EngineConfig ec;
  ec.nprocs = cores;
  ec.net = bench::paper_net();
  ec.stack_bytes = 256 * 1024;
  ec.metrics = &registry;
  sim::Engine engine(ec);
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    mrblast::run_blast_sim(comm, config);
  });

  PolicyRun out;
  out.elapsed = engine.elapsed();
  if (const obs::Histogram* h = registry.find_histogram("mrmpi.master_service_seconds")) {
    out.grants = h->count();
    out.service_mean = h->mean();
    out.service_p99 = h->quantile(0.99);
  }
  if (const obs::Counter* c = registry.find_counter("sched.steals_attempted")) {
    out.steals_attempted = c->value();
  }
  if (const obs::Counter* c = registry.find_counter("sched.steals_succeeded")) {
    out.steals_succeeded = c->value();
  }
  if (const obs::Counter* c = registry.find_counter("sched.tasks_stolen")) {
    out.tasks_stolen = c->value();
  }
  return out;
}

/// Fig. 3-scale workload: 40K queries in 1000-query blocks against 109
/// partitions — 4360 coarse units of ~12 s mean compute.
workload::BlastWorkloadConfig paper_workload(double sigma) {
  workload::BlastWorkloadConfig wl;
  wl.total_queries = 40'000;
  wl.lognormal_sigma = sigma;
  return wl;
}

/// Fine-grained stress workload for the crossover sweep: one query per
/// block and a RAM-resident database, so every grant round-trip matters
/// and the master's serial service rate becomes the limit.
workload::BlastWorkloadConfig fine_workload(std::uint64_t queries, double unit_cost) {
  workload::BlastWorkloadConfig wl;
  wl.total_queries = queries;
  wl.queries_per_block = 1;
  wl.mean_seconds_per_query = unit_cost;
  wl.lognormal_sigma = 1.0;
  wl.cold_load_seconds = 0.0;
  wl.warm_load_seconds = 0.0;
  return wl;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(
      "ablation_scheduler: scheduling policies (chunk/stride/master-worker/steal) "
      "on MR-MPI BLAST");
  opts.add("max-cores", "512", "largest core count for the paper-scale tables");
  opts.add("max-ranks", "4096", "largest core count for the crossover sweep");
  opts.add("xover-queries", "4000", "queries in the fine-grained sweep workload");
  opts.add("xover-cost", "0.001", "mean unit compute seconds in the sweep");
  if (!opts.parse(argc, argv)) return 0;
  const auto max_cores = opts.integer("max-cores");
  const auto max_ranks = opts.integer("max-ranks");
  const auto xover_queries = static_cast<std::uint64_t>(opts.integer("xover-queries"));
  const double xover_cost = opts.real("xover-cost");

  for (const double sigma : {0.35, 1.0}) {
    std::printf(
        "=== Ablation: policy, 40K queries x 109 partitions, unit-cost sigma %.2f "
        "(wall min) ===\n",
        sigma);
    bench::print_row({"cores", "chunk", "stride", "master", "steal", "dyn gain"});
    const auto wl = paper_workload(sigma);
    for (const int cores : {32, 128, 512}) {
      if (cores > max_cores) break;
      const double tc = run_policy(sched::Policy::Chunk, cores, wl).elapsed;
      const double ts = run_policy(sched::Policy::Stride, cores, wl).elapsed;
      const double tm = run_policy(sched::Policy::Master, cores, wl).elapsed;
      const double tw = run_policy(sched::Policy::Steal, cores, wl).elapsed;
      bench::print_row({std::to_string(cores), bench::fmt(bench::seconds_to_minutes(tc)),
                        bench::fmt(bench::seconds_to_minutes(ts)),
                        bench::fmt(bench::seconds_to_minutes(tm)),
                        bench::fmt(bench::seconds_to_minutes(tw)),
                        bench::fmt(100.0 * (std::min(tc, ts) / std::min(tm, tw) - 1.0), 1) +
                            "%"});
    }
    std::printf("\n");
  }

  std::printf(
      "=== Master grant service (rank 0), 40K queries, sigma 1.00 ===\n");
  bench::print_row({"cores", "grants", "mean us", "p99 us", "grants/s"});
  for (const int cores : {32, 128, 512}) {
    if (cores > max_cores) break;
    const PolicyRun m = run_policy(sched::Policy::Master, cores, paper_workload(1.0));
    bench::print_row({std::to_string(cores), std::to_string(m.grants),
                      bench::fmt(m.service_mean * 1e6, 2), bench::fmt(m.service_p99 * 1e6, 2),
                      bench::fmt(m.grants_per_second(), 1)});
  }
  std::printf(
      "\nAt paper granularity (~12 s units) the master serves a few grants per\n"
      "second and is nowhere near its ~1/service ceiling, which is why the\n"
      "paper's centralized scheduler scales to 1024 cores.\n\n");

  std::printf(
      "=== Crossover: master vs steal, %llu 1-query blocks x 109 partitions, "
      "%.0f ms units, RAM-resident DB (wall s) ===\n",
      static_cast<unsigned long long>(xover_queries), xover_cost * 1e3);
  bench::print_row({"ranks", "master", "steal", "grants/s", "p99 us", "steals/s",
                    "stolen", "winner"},
                   11);
  const auto fine = fine_workload(xover_queries, xover_cost);
  int crossover = 0;
  for (const int ranks : {256, 512, 1024, 2048, 4096}) {
    if (ranks > max_ranks) break;
    const PolicyRun m = run_policy(sched::Policy::Master, ranks, fine);
    const PolicyRun w = run_policy(sched::Policy::Steal, ranks, fine);
    const bool steal_wins = w.elapsed < m.elapsed;
    if (steal_wins && crossover == 0) crossover = ranks;
    bench::print_row({std::to_string(ranks), bench::fmt(m.elapsed, 3),
                      bench::fmt(w.elapsed, 3), bench::fmt(m.grants_per_second(), 0),
                      bench::fmt(m.service_p99 * 1e6, 1), bench::fmt(w.steals_per_second(), 0),
                      std::to_string(w.tasks_stolen), steal_wins ? "steal" : "master"},
                     11);
  }
  if (crossover > 0) {
    std::printf(
        "\nCrossover at %d ranks: past the point where rank 0 must grant a unit\n"
        "every ~unit_cost/p seconds, the centralized master serializes the map\n"
        "while the work-stealing ranks keep scheduling among themselves.\n",
        crossover);
  } else {
    std::printf(
        "\nNo crossover up to the swept rank count: the master's grant rate still\n"
        "exceeds the aggregate task completion rate at this granularity.\n");
  }
  return 0;
}
