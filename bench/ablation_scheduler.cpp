// Ablation: the MapReduce-MPI task-distribution styles on the BLAST
// workload. The paper uses the master-worker mode because BLAST unit costs
// are "highly non-uniform and unpredictable"; this quantifies what the
// static modes would have cost.
#include <cstdio>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "mrblast/mrblast.hpp"

using namespace mrbio;

namespace {

double run_style(mrmpi::MapStyle style, int cores, double sigma) {
  mrblast::SimRunConfig config;
  config.workload.total_queries = 40'000;
  config.workload.lognormal_sigma = sigma;
  config.map_style = style;
  return bench::run_cluster(
      cores, [&](mpi::Comm& comm) { mrblast::run_blast_sim(comm, config); },
      bench::paper_net());
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("ablation_scheduler: map styles (chunk/stride/master-worker) on MR-MPI BLAST");
  opts.add("max-cores", "512", "largest simulated core count");
  if (!opts.parse(argc, argv)) return 0;
  const auto max_cores = opts.integer("max-cores");

  for (const double sigma : {0.35, 1.0}) {
    std::printf("=== Ablation: map style, 40K queries, unit-cost sigma %.2f (wall min) ===\n",
                sigma);
    bench::print_row({"cores", "chunk", "stride", "master-worker", "mw gain"});
    for (const int cores : {32, 128, 512}) {
      if (cores > max_cores) break;
      const double tc = run_style(mrmpi::MapStyle::Chunk, cores, sigma);
      const double ts = run_style(mrmpi::MapStyle::Stride, cores, sigma);
      const double tm = run_style(mrmpi::MapStyle::MasterWorker, cores, sigma);
      bench::print_row({std::to_string(cores), bench::fmt(bench::seconds_to_minutes(tc)),
                        bench::fmt(bench::seconds_to_minutes(ts)),
                        bench::fmt(bench::seconds_to_minutes(tm)),
                        bench::fmt(100.0 * (std::min(tc, ts) / tm - 1.0), 1) + "%"});
    }
    std::printf("\n");
  }
  std::printf(
      "Shape checks: master-worker wins whenever unit costs vary; its advantage\n"
      "grows with the cost heterogeneity (sigma) and the core count.\n");
  return 0;
}
