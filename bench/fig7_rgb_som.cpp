// Figure 7: clustering of 100 random RGB feature vectors on a 50x50 SOM --
// the classic visual correctness check -- rendered as a PPM codebook image
// and a PGM U-matrix, with numeric quality metrics so the "visual" result
// is assertable.
//
// The parallel (MR-MPI) implementation trains the map; the serial batch
// implementation trains an identical map for comparison, demonstrating
// that parallelization does not change the algorithm's output.
#include <cstdio>

#include "bench_util.hpp"
#include "common/image.hpp"
#include "common/options.hpp"
#include "mrsom/mrsom.hpp"

using namespace mrbio;

int main(int argc, char** argv) {
  Options opts("fig7_rgb_som: reproduces Fig. 7, RGB clustering on a 50x50 SOM");
  opts.add("vectors", "100", "number of random RGB training vectors");
  opts.add("epochs", "20", "training epochs");
  opts.add("grid", "50", "SOM grid side");
  opts.add("out-prefix", "fig7", "output file prefix for .ppm/.pgm images");
  if (!opts.parse(argc, argv)) return 0;

  const auto n = static_cast<std::size_t>(opts.integer("vectors"));
  const auto side = static_cast<std::size_t>(opts.integer("grid"));
  const auto epochs = static_cast<std::size_t>(opts.integer("epochs"));

  Rng rng(2011);
  Matrix data(n, 3);
  for (std::size_t r = 0; r < n; ++r) {
    for (float& v : data.row(r)) v = static_cast<float>(rng.uniform());
  }

  som::Codebook initial(som::SomGrid{side, side}, 3);
  Rng init_rng(7);
  initial.init_random(init_rng);

  mrsom::ParallelSomConfig config;
  config.params.epochs = epochs;
  config.block_vectors = 10;

  som::Codebook parallel_cb;
  bench::run_cluster(8, [&](mpi::Comm& comm) {
    som::Codebook cb = mrsom::train_som_mr(comm, data.view(), initial, config);
    if (comm.rank() == 0) parallel_cb = std::move(cb);
  });

  som::Codebook serial_cb = initial;
  som::train_batch(serial_cb, data.view(), config.params);

  const std::string prefix = opts.str("out-prefix");
  write_ppm(prefix + "_codebook.ppm", som::codebook_rgb(parallel_cb).view(), side);
  write_pgm(prefix + "_umatrix.pgm", som::u_matrix(parallel_cb).view());

  std::printf("=== Fig. 7: 50x50 SOM trained with %zu RGB vectors ===\n", n);
  std::printf("wrote %s_codebook.ppm and %s_umatrix.pgm\n", prefix.c_str(), prefix.c_str());
  bench::print_row({"", "quantization err", "topographic err"}, 20);
  bench::print_row({"parallel (8 ranks)",
                    bench::fmt(som::quantization_error(parallel_cb, data.view()), 4),
                    bench::fmt(som::topographic_error(parallel_cb, data.view()), 4)},
                   20);
  bench::print_row({"serial batch",
                    bench::fmt(som::quantization_error(serial_cb, data.view()), 4),
                    bench::fmt(som::topographic_error(serial_cb, data.view()), 4)},
                   20);

  // Visual-correctness surrogate: neighbouring map cells carry similar
  // colors (smooth gradient), i.e. mean neighbour distance is far below
  // the mean distance of random cell pairs.
  const Matrix u = som::u_matrix(parallel_cb);
  double mean_u = 0.0;
  for (std::size_t r = 0; r < u.rows(); ++r) {
    for (std::size_t c = 0; c < u.cols(); ++c) mean_u += u(r, c);
  }
  mean_u /= static_cast<double>(u.rows() * u.cols());
  Rng pair_rng(99);
  double mean_rand = 0.0;
  const int pairs = 2000;
  for (int i = 0; i < pairs; ++i) {
    const auto a = static_cast<std::size_t>(pair_rng.below(side * side));
    const auto b = static_cast<std::size_t>(pair_rng.below(side * side));
    mean_rand += std::sqrt(som::dist2(parallel_cb.vector(a), parallel_cb.vector(b)));
  }
  mean_rand /= pairs;
  std::printf("smoothness: mean neighbour distance %.4f vs random-pair %.4f (ratio %.2f)\n",
              mean_u, mean_rand, mean_rand / mean_u);
  std::printf("Shape check (paper): trained map shows smooth color clusters (ratio >> 1).\n");
  return 0;
}
