// Figure 6: MR-MPI batch SOM wall-clock time vs core count for 81,920
// random 256-dimensional input vectors on a 50x50 map, with 40-vector work
// units (the caption notes 80-vector units produced identical timings).
//
// Shape targets: essentially linear scaling over the whole range with
// ~96% efficiency at 1024 cores relative to 32, and no measurable
// difference between the 40- and 80-vector block sizes.
//
// The paper's dataset size is an exact multiple of every core count, so
// the map work divides evenly across ranks; the static (chunk) task
// distribution reproduces that property (the paper notes master-worker
// "is not as critical" for the SOM).
#include <cstdio>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "mrsom/mrsom.hpp"

using namespace mrbio;

namespace {

double run_som(int cores, std::size_t block_vectors, std::size_t epochs,
               trace::Recorder* rec = nullptr) {
  mrsom::SimSomConfig config;
  config.block_vectors = block_vectors;
  config.epochs = epochs;
  config.map_style = mrmpi::MapStyle::Chunk;
  return bench::run_cluster(
      cores, [&](mpi::Comm& comm) { mrsom::run_som_sim(comm, config); },
      bench::paper_net(), rec);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(
      "fig6_som_scaling: reproduces Fig. 6, batch SOM wall clock vs cores "
      "(81,920 x 256-D vectors, 50x50 map; minutes)");
  opts.add("epochs", "10", "training epochs");
  opts.add("max-cores", "1024", "largest simulated core count");
  if (!opts.parse(argc, argv)) return 0;
  const auto epochs = static_cast<std::size_t>(opts.integer("epochs"));
  const auto max_cores = opts.integer("max-cores");

  std::printf("=== Fig. 6: MR-MPI batch SOM scaling (wall clock minutes) ===\n");
  bench::print_row({"cores", "40/blk", "80/blk", "eff vs 32"}, 14);
  double base = 0.0;
  // The 40/blk runs carry a Phases-level recorder so the efficiency loss
  // (here: almost entirely collective skew) can be attributed below.
  std::vector<std::pair<int, obs::Report>> reports;
  for (const int cores : bench::paper_core_counts()) {
    if (cores > max_cores) break;
    trace::Recorder rec(cores);
    const double t40 = run_som(cores, 40, epochs, &rec);
    const double t80 = run_som(cores, 80, epochs);
    reports.emplace_back(cores, obs::analyze(rec));
    if (cores == 32) base = t40 * 32.0;
    const std::string eff =
        base > 0.0 ? bench::fmt(100.0 * base / (t40 * cores), 1) + "%" : "-";
    bench::print_row({std::to_string(cores), bench::fmt(bench::seconds_to_minutes(t40)),
                      bench::fmt(bench::seconds_to_minutes(t80)), eff},
                     14);
  }

  std::printf("\n=== Efficiency-loss breakdown (40/blk, %% of rank-seconds) ===\n");
  bench::print_loss_header();
  for (const auto& [cores, report] : reports) bench::print_loss_row(cores, report);

  std::printf(
      "\nShape checks (paper): linear scaling across all core counts; ~96%%\n"
      "efficiency at 1024 vs 32 cores; 40- and 80-vector blocks identical.\n");
  return 0;
}
