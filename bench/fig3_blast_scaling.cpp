// Figure 3: MR-MPI BLAST wall-clock time vs core count (log-log), for
// query sets of 12K / 40K / 80K sequences in 1000-sequence blocks plus the
// 80K set in 2000-sequence blocks, against 109 one-gigabyte nucleotide DB
// partitions.
//
// Paper shape targets: near-straight lines in log-log; large core counts
// only pay off for the large inputs (the 12K series flattens early); the
// 2000-block series is faster at small core counts (fewer DB reloads per
// query) but loses at large counts (fewer units to balance).
#include <cstdio>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "mrblast/mrblast.hpp"

using namespace mrbio;

namespace {

struct Series {
  std::string label;
  std::uint64_t queries;
  std::uint64_t per_block;
};

double run_series(const Series& s, int cores, trace::Recorder* rec = nullptr) {
  mrblast::SimRunConfig config;
  config.workload.total_queries = s.queries;
  config.workload.queries_per_block = s.per_block;
  return bench::run_cluster(
      cores, [&](mpi::Comm& comm) { mrblast::run_blast_sim(comm, config); },
      bench::paper_net(), rec);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(
      "fig3_blast_scaling: reproduces Fig. 3, nucleotide MR-MPI BLAST wall clock vs "
      "cores (values in minutes)");
  opts.add("max-cores", "1024", "largest simulated core count");
  if (!opts.parse(argc, argv)) return 0;
  const auto max_cores = opts.integer("max-cores");

  const std::vector<Series> series = {
      {"12K x 1000/blk", 12'000, 1'000},
      {"40K x 1000/blk", 40'000, 1'000},
      {"80K x 1000/blk", 80'000, 1'000},
      {"80K x 2000/blk", 80'000, 2'000},
  };

  std::printf("=== Fig. 3: MR-MPI BLAST scaling (wall clock minutes) ===\n");
  std::vector<std::string> header{"cores"};
  for (const auto& s : series) header.push_back(s.label);
  bench::print_row(header, 16);

  // The 80K x 1000/blk runs double as the source of the efficiency-loss
  // breakdown: a Phases-level recorder rides along (zero perturbation) and
  // obs::analyze attributes every rank-second to a category.
  std::vector<std::pair<int, obs::Report>> reports;
  for (const int cores : bench::paper_core_counts()) {
    if (cores > max_cores) break;
    std::vector<std::string> row{std::to_string(cores)};
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (i == 2) {
        trace::Recorder rec(cores);
        row.push_back(bench::fmt(bench::seconds_to_minutes(
            run_series(series[i], cores, &rec))));
        reports.emplace_back(cores, obs::analyze(rec));
      } else {
        row.push_back(bench::fmt(bench::seconds_to_minutes(run_series(series[i], cores))));
      }
    }
    bench::print_row(row, 16);
  }

  std::printf("\n=== Efficiency-loss breakdown (80K x 1000/blk, %% of rank-seconds) ===\n");
  bench::print_loss_header();
  for (const auto& [cores, report] : reports) bench::print_loss_row(cores, report);

  std::printf(
      "\nShape checks (paper): log-log near-linear for large inputs; small input\n"
      "flattens at high core counts; 2000-seq blocks win at low core counts and\n"
      "lose at 1024 cores.\n");
  return 0;
}
