#!/usr/bin/env bash
# Chaos soak: seeded randomized fault schedules swept across
# scheduler x backend x checkpoint legs, each gated on byte-identity
# against the fault-free run and on a recovery-cost budget (see
# tools/mrbio_chaos.cpp for the per-seed protocol).
#
#   bench/chaos_soak.sh [--smoke|--full] [--build-dir DIR] [--work-dir DIR]
#
# --smoke (the CI default) runs a bounded seed set per leg; --full widens
# the sweep for overnight soaks. Exits nonzero when any leg fails; failing
# seeds keep their artifacts (fault plan, per-attempt logs, both output
# trees, checkpoint dir) under the work dir for inspection.
set -uo pipefail

repo_dir="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_dir/build"
work_dir=""
suite=smoke

while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) suite=smoke ;;
    --full) suite=full ;;
    --build-dir) build_dir="$2"; shift ;;
    --work-dir) work_dir="$2"; shift ;;
    *) echo "usage: bench/chaos_soak.sh [--smoke|--full] [--build-dir DIR] [--work-dir DIR]" >&2
       exit 1 ;;
  esac
  shift
done

chaos="$build_dir/tools/mrbio_chaos"
if [ ! -x "$chaos" ]; then
  echo "chaos_soak.sh: $chaos not built (cmake --build $build_dir --target mrbio_chaos mrgraph_build)" >&2
  exit 1
fi
if [ -z "$work_dir" ]; then
  work_dir="${TMPDIR:-/tmp}/mrbio_chaos_soak.$$"
fi
mkdir -p "$work_dir"

if [ "$suite" = smoke ]; then
  seeds=4; nseq=32; ranks=4
else
  seeds=16; nseq=64; ranks=6
fi

failed=0
run_leg() {
  local name="$1"; shift
  echo "== chaos leg: $name =="
  if ! "$chaos" --seeds "$seeds" --nseq "$nseq" --ranks "$ranks" \
       --work-dir "$work_dir/$name" "$@"; then
    failed=$((failed + 1))
    echo "== chaos leg FAILED: $name =="
  fi
}

# The full fault menu (crashes incl. rank 0, kills, shard corruption,
# shaping) only exists under the sharded steal ledger with a checkpoint
# dir; the remaining legs exercise the subsets their stacks support.
run_leg steal-ckpt          --scheduler steal --ckpt --seed0 1
run_leg steal-ckpt-sharded  --scheduler steal --ckpt --ledger-ranks 2 \
                            --heartbeat interval=0.2,phi=6 --seed0 101
run_leg steal-nockpt        --scheduler steal --seed0 201
run_leg master              --scheduler master --style master --seed0 301
run_leg native-shaping      --scheduler chunk --backend native --no-crash --seed0 401

if [ "$failed" -gt 0 ]; then
  echo "chaos_soak: $failed leg(s) failed; artifacts under $work_dir"
  exit 1
fi
echo "chaos_soak: all legs passed"
rmdir "$work_dir" 2>/dev/null || true
