// Figure 8: U-matrix of a 50x50 SOM trained with 10,000 random feature
// vectors of 500 dimensions. For uniform random high-dimensional data the
// paper's figure shows a well-defined (structured but ridge-free) U-matrix;
// we render the image and report distribution statistics of the U-matrix
// values as the assertable equivalent.
//
// Defaults are reduced (2,000 vectors, 4 epochs) to keep the binary quick
// on one host; pass --paper for the full Fig. 8 setting.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/image.hpp"
#include "common/options.hpp"
#include "common/stats.hpp"
#include "mrsom/mrsom.hpp"

using namespace mrbio;

int main(int argc, char** argv) {
  Options opts("fig8_umatrix_500d: reproduces Fig. 8, U-matrix of a 50x50 SOM on 500-D data");
  opts.add("vectors", "2000", "number of random 500-D vectors");
  opts.add("epochs", "4", "training epochs");
  opts.add_flag("paper", "use the paper's full setting (10,000 vectors)");
  opts.add("out-prefix", "fig8", "output file prefix");
  if (!opts.parse(argc, argv)) return 0;

  const std::size_t n =
      opts.flag("paper") ? 10'000 : static_cast<std::size_t>(opts.integer("vectors"));
  const auto epochs = opts.flag("paper") ? 8 : static_cast<std::size_t>(opts.integer("epochs"));
  const std::size_t dim = 500;
  const std::size_t side = 50;

  Rng rng(500);
  Matrix data(n, dim);
  for (std::size_t r = 0; r < n; ++r) {
    for (float& v : data.row(r)) v = static_cast<float>(rng.uniform());
  }

  som::Codebook initial(som::SomGrid{side, side}, dim);
  Rng init_rng(501);
  initial.init_random(init_rng);

  mrsom::ParallelSomConfig config;
  config.params.epochs = epochs;
  config.block_vectors = 64;
  som::Codebook cb;
  bench::run_cluster(8, [&](mpi::Comm& comm) {
    som::Codebook trained = mrsom::train_som_mr(comm, data.view(), initial, config);
    if (comm.rank() == 0) cb = std::move(trained);
  });

  const Matrix u = som::u_matrix(cb);
  const std::string path = opts.str("out-prefix") + "_umatrix.pgm";
  write_pgm(path, u.view());

  RunningStats stats;
  std::vector<double> values;
  for (std::size_t r = 0; r < u.rows(); ++r) {
    for (std::size_t c = 0; c < u.cols(); ++c) {
      stats.add(u(r, c));
      values.push_back(u(r, c));
    }
  }
  std::printf("=== Fig. 8: U-matrix of 50x50 SOM, %zu x %zu-D random vectors ===\n", n, dim);
  std::printf("wrote %s\n", path.c_str());
  std::printf("U-matrix values: mean %.4f  sd %.4f  min %.4f  p50 %.4f  max %.4f\n",
              stats.mean(), stats.stddev(), stats.min(), percentile(values, 0.5),
              stats.max());
  std::printf("relative spread (sd/mean): %.3f\n", stats.stddev() / stats.mean());
  std::printf("quantization error: %.4f   topographic error: %.4f\n",
              som::quantization_error(cb, data.view()),
              som::topographic_error(cb, data.view()));
  std::printf(
      "Shape check (paper): a well-defined U-matrix -- organized map, moderate\n"
      "relative spread, no degenerate (constant or exploding) cells.\n");
  return 0;
}
