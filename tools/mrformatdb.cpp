// mrformatdb: the formatdb equivalent. Formats a FASTA file into
// fixed-size two-bit-encoded database volumes plus an alias file, the
// input the MR-MPI BLAST matrix split consumes.
//
//   mrformatdb --in sequences.fa --out mydb [--type nucl|prot]
//              [--volume-residues N]
#include <cstdio>

#include "blast/dbformat.hpp"
#include "common/log.hpp"
#include "common/options.hpp"

using namespace mrbio;

int main(int argc, char** argv) {
  Options opts("mrformatdb: format FASTA into partitioned BLAST database volumes");
  opts.add("in", "", "input FASTA file (required)");
  opts.add("out", "", "output base path (required); writes <out>.NNN.vol and <out>.mal");
  opts.add("type", "nucl", "sequence type: nucl or prot");
  opts.add("volume-residues", "10000000", "target residues per volume");
  try {
    if (!opts.parse(argc, argv)) return 0;
    MRBIO_REQUIRE(!opts.str("in").empty() && !opts.str("out").empty(),
                  "--in and --out are required\n", opts.usage());
    const std::string type_name = opts.str("type");
    MRBIO_REQUIRE(type_name == "nucl" || type_name == "prot",
                  "--type must be nucl or prot");
    const blast::SeqType type =
        type_name == "nucl" ? blast::SeqType::Dna : blast::SeqType::Protein;

    blast::DbBuilder builder(opts.str("out"), type,
                             static_cast<std::uint64_t>(opts.integer("volume-residues")));
    const auto seqs = blast::read_fasta_file(opts.str("in"), type);
    for (const auto& s : seqs) builder.add(s);
    const blast::DbInfo info = builder.finish();

    std::printf("formatted %llu sequences (%llu residues) into %zu volume(s)\n",
                static_cast<unsigned long long>(info.total_seqs),
                static_cast<unsigned long long>(info.total_residues),
                info.volume_paths.size());
    for (const auto& v : info.volume_paths) std::printf("  %s\n", v.c_str());
    std::printf("alias: %s.mal\n", opts.str("out").c_str());
    return 0;
  } catch (const std::exception& e) {
    MRBIO_LOG(ErrorLevel, "mrformatdb: ", e.what());
    return 1;
  }
}
