// mrbio_chaos: randomized fault-schedule soak harness for the
// fault-tolerance stack (sharded commit ledger, failover, checkpoint
// restart). For each seed it
//
//   1. runs the similarity-graph driver fault-free to capture the
//      baseline output bytes, edge checksum, elapsed time and task count,
//   2. derives a deterministic randomized fault plan from the seed
//      (crashes — including rank 0 under steal — job kills, shard
//      corruption, slow ranks, message drop/dup/delay), scaled to the
//      measured baseline duration,
//   3. replays the same workload under that plan, restarting with
//      --resume while the driver reports a job kill (exit 3),
//   4. gates on byte-identity of every per-rank edge file against the
//      baseline and on a recovery-cost budget (total map tasks executed
//      across every attempt, as a multiple of the fault-free count).
//
//   mrbio_chaos --seeds 8 --scheduler steal --ckpt
//   mrbio_chaos --seeds 3 --scheduler master --style master --no-crash
//
// Exit codes: 0 every seed passed; 1 usage/infrastructure error;
// 2 at least one seed diverged or blew the recovery budget.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"

using namespace mrbio;

namespace {

namespace fs = std::filesystem;

struct RunOutcome {
  int exit_code = 0;
  std::string stdout_text;
};

// Runs `cmd`, capturing stdout+stderr to `log_path` and returning the
// decoded exit status plus the captured text.
RunOutcome run_command(const std::string& cmd, const std::string& log_path) {
  const std::string full = cmd + " > " + log_path + " 2>&1";
  const int raw = std::system(full.c_str());
  RunOutcome out;
#if defined(WIFEXITED)
  out.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : 128;
#else
  out.exit_code = raw;
#endif
  std::ifstream in(log_path);
  std::ostringstream text;
  text << in.rdbuf();
  out.stdout_text = text.str();
  return out;
}

// Extracts the first number following `key` in `text` (e.g. key
// "checksum " or "\"mrmpi.map_tasks\":"). Returns `fallback` if absent.
std::string token_after(const std::string& text, const std::string& key) {
  const auto at = text.find(key);
  if (at == std::string::npos) return "";
  auto begin = at + key.size();
  while (begin < text.size() && (text[begin] == ' ' || text[begin] == ':')) ++begin;
  auto end = begin;
  while (end < text.size() && text[end] != ' ' && text[end] != '\n' &&
         text[end] != ',' && text[end] != '}') {
    ++end;
  }
  return text.substr(begin, end - begin);
}

double number_after(const std::string& text, const std::string& key, double fallback) {
  const std::string tok = token_after(text, key);
  if (tok.empty()) return fallback;
  try {
    return std::stod(tok);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct ChaosConfig {
  std::string driver;      ///< path to mrgraph_build
  std::string work_dir;
  std::string scheduler;
  std::string style;
  std::string backend;
  std::string heartbeat;
  int ledger_ranks = 0;
  int ranks = 4;
  int nseq = 32;
  int block = 4;
  double compute_cell = 1e-7;
  bool ckpt = false;
  bool allow_crash = true;
  double budget = 6.0;
  bool verbose = false;
};

std::string workload_flags(const ChaosConfig& cfg) {
  std::ostringstream os;
  os << " --nseq " << cfg.nseq << " --family 8 --block " << cfg.block
     << " --ranks " << cfg.ranks << " --backend " << cfg.backend
     << " --style " << cfg.style << " --scheduler " << cfg.scheduler
     << " --compute-cell " << cfg.compute_cell;
  return os.str();
}

// Derives a deterministic fault plan from the seed, scaled to the
// fault-free elapsed time so triggers land mid-map regardless of the
// workload shape. Fault classes respect the sweep leg's capabilities:
// crashes need a remote scheduler, kills/corruption need a checkpoint
// dir, rank-0 crashes need the steal scheduler's sharded ledger.
std::string make_plan(const ChaosConfig& cfg, std::uint64_t seed, double elapsed) {
  Rng rng(mix64(seed ^ 0xc8a05f1ULL));
  std::ostringstream plan;
  const char* sep = "";
  auto emit = [&](const std::string& s) {
    plan << sep << s;
    sep = "; ";
  };
  auto at = [&](double lo, double hi) {
    return elapsed * (lo + (hi - lo) * rng.uniform());
  };
  const bool steal = cfg.scheduler == "steal";
  const bool remote = steal || cfg.scheduler == "master" ||
                      cfg.scheduler == "master-ft" || cfg.style == "master";

  const int nfaults = 1 + static_cast<int>(rng.uniform() * 2.0);  // 1..2
  for (int i = 0; i < nfaults; ++i) {
    const double pick = rng.uniform();
    if (cfg.allow_crash && remote && pick < 0.35) {
      // Crash a worker; rank 0 only where the sharded ledger can elect a
      // successor for its shard.
      const int lo = steal ? 0 : 1;
      const int rank = lo + static_cast<int>(rng.uniform() * (cfg.ranks - lo));
      std::ostringstream f;
      f << "crash:rank=" << rank << ",t=" << at(0.05, 0.6);
      if (rng.uniform() < 0.5) f << ",mode=permanent";
      emit(f.str());
    } else if (cfg.ckpt && pick < 0.55) {
      std::ostringstream f;
      f << "kill:t=" << at(0.2, 0.7);
      emit(f.str());
    } else if (cfg.ckpt && steal && pick < 0.65) {
      emit("corrupt:target=shard,count=1");
    } else if (pick < 0.8) {
      const int rank = static_cast<int>(rng.uniform() * cfg.ranks);
      std::ostringstream f;
      f << "slow:rank=" << rank << ",factor=" << (2 + static_cast<int>(rng.uniform() * 14));
      emit(f.str());
    } else if (remote && rng.uniform() < 0.5) {
      emit("drop:src=-1,dst=-1,count=1");
    } else {
      emit("delay:src=-1,dst=-1,by=0.05,count=3");
    }
  }
  return plan.str();
}

struct SeedResult {
  bool passed = false;
  std::string reason;
};

SeedResult run_seed(const ChaosConfig& cfg, std::uint64_t seed) {
  const fs::path dir = fs::path(cfg.work_dir) / ("seed." + std::to_string(seed));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string base_out = (dir / "base").string();
  const std::string chaos_out = (dir / "chaos").string();

  // 1. Fault-free baseline.
  const std::string base_cmd = cfg.driver + workload_flags(cfg) + " --out-dir " +
                               base_out + " --metrics-out " +
                               (dir / "base.metrics.json").string();
  const RunOutcome base = run_command(base_cmd, (dir / "base.log").string());
  if (base.exit_code != 0) {
    return {false, "baseline failed with exit " + std::to_string(base.exit_code)};
  }
  const double elapsed = number_after(base.stdout_text, "elapsed", 0.0);
  const std::string base_sum = token_after(base.stdout_text, "checksum");
  const double base_tasks = number_after(slurp(dir / "base.metrics.json"),
                                         "\"mrmpi.map_tasks\"", 0.0);
  if (elapsed <= 0.0 || base_sum.empty() || base_tasks <= 0.0) {
    return {false, "could not parse the baseline run"};
  }

  // 2. Seeded fault schedule.
  const std::string plan = make_plan(cfg, seed, elapsed);
  std::ofstream(dir / "plan.txt") << plan << '\n';
  if (cfg.verbose) std::printf("  seed %llu plan: %s\n",
                               static_cast<unsigned long long>(seed), plan.c_str());

  // 3. Chaos run; --resume after every job kill (exit 3).
  double chaos_tasks = 0.0;
  std::string last_text;
  const int max_attempts = 6;
  int attempt = 0;
  for (; attempt < max_attempts; ++attempt) {
    std::ostringstream cmd;
    cmd << cfg.driver << workload_flags(cfg) << " --out-dir " << chaos_out
        << " --metrics-out " << (dir / "chaos.metrics.json").string();
    if (cfg.scheduler == "steal") {
      cmd << " --ledger-ranks " << cfg.ledger_ranks;
      if (!cfg.heartbeat.empty()) cmd << " --heartbeat " << cfg.heartbeat;
    }
    if (cfg.ckpt) {
      cmd << " --checkpoint-dir " << (dir / "ckpt").string()
          << " --checkpoint-interval 0";
      if (attempt > 0) cmd << " --resume";
    }
    if (attempt == 0) cmd << " --faults \"" << plan << '"';
    const RunOutcome run = run_command(
        cmd.str(), (dir / ("chaos." + std::to_string(attempt) + ".log")).string());
    last_text = run.stdout_text;
    chaos_tasks += number_after(slurp(dir / "chaos.metrics.json"),
                                "\"mrmpi.map_tasks\"", 0.0);
    if (run.exit_code == 0) break;
    if (run.exit_code != 3 || !cfg.ckpt) {
      return {false, "chaos run failed with exit " + std::to_string(run.exit_code) +
                         " (attempt " + std::to_string(attempt) + ")"};
    }
  }
  if (attempt == max_attempts) {
    return {false, "job still killed after " + std::to_string(max_attempts) + " attempts"};
  }

  // 4a. Byte-identity of the printed checksum and every edge file.
  const std::string chaos_sum = token_after(last_text, "checksum");
  if (chaos_sum != base_sum) {
    return {false, "edge checksum diverged: " + base_sum + " vs " + chaos_sum};
  }
  for (int r = 0; r < cfg.ranks; ++r) {
    const fs::path b = fs::path(base_out) / ("edges." + std::to_string(r) + ".tsv");
    const fs::path c = fs::path(chaos_out) / ("edges." + std::to_string(r) + ".tsv");
    if (fs::exists(b) != fs::exists(c)) {
      return {false, "edge file presence diverged for rank " + std::to_string(r)};
    }
    if (fs::exists(b) && slurp(b) != slurp(c)) {
      return {false, "edge bytes diverged for rank " + std::to_string(r)};
    }
  }

  // 4b. Recovery-cost budget: total work executed across every attempt.
  const double ratio = chaos_tasks / base_tasks;
  if (ratio > cfg.budget) {
    std::ostringstream os;
    os << "recovery cost " << ratio << "x exceeds budget " << cfg.budget << "x";
    return {false, os.str()};
  }
  return {true, ""};
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("mrbio_chaos: randomized fault-schedule soak for the FT stack");
  opts.add("driver", "", "path to mrgraph_build (default: beside this binary)");
  opts.add("seeds", "4", "number of seeds to sweep");
  opts.add("seed0", "1", "first seed");
  opts.add("scheduler", "steal", "driver scheduler: chunk|stride|master|master-ft|steal");
  opts.add("style", "chunk", "driver map style: chunk or master");
  opts.add("backend", "sim", "driver backend: sim or native");
  opts.add_flag("ckpt", "give every chaos run a checkpoint dir; enables "
                        "kill/corrupt faults in the schedules");
  opts.add_flag("no-crash", "exclude crash faults (for legs without a "
                            "fault-tolerant scheduler)");
  opts.add("ledger-ranks", "0", "steal only: forwarded to the driver");
  opts.add("heartbeat", "", "steal only: forwarded to the driver");
  opts.add("ranks", "4", "ranks per run");
  opts.add("nseq", "32", "synthetic sequences per run");
  opts.add("block", "4", "sequences per block");
  opts.add("compute-cell", "1e-7", "virtual seconds per alignment cell");
  opts.add("budget", "6",
           "max total executed map tasks across attempts, as a multiple of "
           "the fault-free count");
  opts.add("work-dir", "", "artifact directory (default /tmp/mrbio_chaos.<pid>)");
  opts.add_flag("keep", "keep artifacts of passing seeds too");
  opts.add_flag("verbose", "print fault plans as they run");
  try {
    if (!opts.parse(argc, argv)) return 0;
    ChaosConfig cfg;
    cfg.driver = opts.str("driver");
    if (cfg.driver.empty()) {
      cfg.driver = (fs::path(argv[0]).parent_path() / "mrgraph_build").string();
    }
    MRBIO_REQUIRE(fs::exists(cfg.driver), "driver not found: ", cfg.driver,
                  " (pass --driver)");
    cfg.scheduler = opts.str("scheduler");
    cfg.style = opts.str("style");
    cfg.backend = opts.str("backend");
    cfg.ckpt = opts.flag("ckpt");
    cfg.allow_crash = !opts.flag("no-crash");
    cfg.ledger_ranks = static_cast<int>(opts.integer("ledger-ranks"));
    cfg.heartbeat = opts.str("heartbeat");
    cfg.ranks = static_cast<int>(opts.integer("ranks"));
    cfg.nseq = static_cast<int>(opts.integer("nseq"));
    cfg.block = static_cast<int>(opts.integer("block"));
    cfg.compute_cell = opts.real("compute-cell");
    cfg.budget = opts.real("budget");
    cfg.verbose = opts.flag("verbose");
    cfg.work_dir = opts.str("work-dir");
    if (cfg.work_dir.empty()) {
      cfg.work_dir = "/tmp/mrbio_chaos." + std::to_string(::getpid());
    }
    fs::create_directories(cfg.work_dir);

    const auto nseeds = opts.integer("seeds");
    const auto seed0 = static_cast<std::uint64_t>(opts.integer("seed0"));
    int failed = 0;
    for (std::int64_t i = 0; i < nseeds; ++i) {
      const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(i);
      const SeedResult res = run_seed(cfg, seed);
      std::printf("seed %llu [%s/%s/%s%s]: %s%s%s\n",
                  static_cast<unsigned long long>(seed), cfg.scheduler.c_str(),
                  cfg.style.c_str(), cfg.backend.c_str(),
                  cfg.ckpt ? "/ckpt" : "", res.passed ? "PASS" : "FAIL",
                  res.passed ? "" : " — ", res.reason.c_str());
      if (res.passed && !opts.flag("keep")) {
        fs::remove_all(fs::path(cfg.work_dir) / ("seed." + std::to_string(seed)));
      }
      if (!res.passed) ++failed;
    }
    if (failed > 0) {
      std::printf("%d/%lld seeds FAILED; artifacts kept under %s\n", failed,
                  static_cast<long long>(nseeds), cfg.work_dir.c_str());
      return 2;
    }
    std::printf("all %lld seeds passed\n", static_cast<long long>(nseeds));
    if (!opts.flag("keep")) {
      std::error_code ec;
      fs::remove(cfg.work_dir, ec);  // only if now empty
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "mrbio_chaos: %s\n", e.what());
    return 1;
  }
}
