// mrbio_bench: canonical perf-regression workload matrix. Runs the three
// simulated applications (mrblast, mrsom, mrgraph) at fixed seeds and
// rank counts on the deterministic DES backend and emits one
// schema-versioned JSON file of headline metrics per workload:
//
//   makespan       virtual seconds of the whole run
//   throughput     work items per virtual second (queries, vector-epochs,
//                  sequence pairs)
//   wire_bytes     nominal bytes on the simulated wire, all ranks
//   shuffle_ratio  share of wire bytes moved by the KV shuffle
//                  (mrmpi.aggregate_bytes / wire_bytes)
//   peak_skew      busiest rank's busy seconds / mean rank busy seconds
//
// Because the sim backend is deterministic, identical code produces
// bit-identical metrics; `compare` therefore gates CI without flakiness,
// and the per-metric tolerances only absorb intentional model changes.
//
//   mrbio_bench run [--suite smoke|full] [--out BENCH.json]
//   mrbio_bench compare --baseline bench/baseline.json --candidate BENCH.json
//                       [--tol-scale 1.0]
//
// Exit codes: 0 pass, 1 regression or error, 2 baseline/candidate
// incompatible (schema, suite, or rank count mismatch).
#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "blast/sequence.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "mrblast/mrblast.hpp"
#include "mrgraph/mrgraph.hpp"
#include "mrsom/mrsom.hpp"
#include "obs/analysis.hpp"
#include "obs/metrics.hpp"
#include "rt/backend.hpp"
#include "sched/sched.hpp"
#include "trace/trace.hpp"

using namespace mrbio;

namespace {

constexpr int kSchemaVersion = 1;
constexpr int kRanks = 8;

struct WorkloadMetrics {
  double makespan = 0.0;
  double throughput = 0.0;
  double wire_bytes = 0.0;  ///< integral, but compared like the others
  double shuffle_ratio = 0.0;
  double peak_skew = 0.0;
};

struct BenchFile {
  int schema_version = 0;
  std::string suite;
  int ranks = 0;
  // Ordered so run/compare output and the JSON files are stable.
  std::map<std::string, WorkloadMetrics> workloads;
};

// ---------------------------------------------------------------------------
// Minimal JSON reader, just enough for BENCH files (objects, numbers,
// strings; arrays/bools/null parsed but unused). The trace layer's reader
// is line-oriented and can't parse nested objects, hence this one.

struct JsonValue {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    MRBIO_REQUIRE(pos_ == text_.size(), "trailing bytes after JSON value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    MRBIO_REQUIRE(pos_ < text_.size(), "unexpected end of JSON");
    return text_[pos_];
  }
  void expect(char c) {
    MRBIO_REQUIRE(peek() == c, "expected '", std::string(1, c), "' in JSON");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  JsonValue value() {
    JsonValue v;
    switch (peek()) {
      case '{': {
        v.kind = JsonValue::Kind::Object;
        ++pos_;
        if (!consume('}')) {
          do {
            const std::string key = string_body();
            expect(':');
            v.object.emplace(key, value());
          } while (consume(','));
          expect('}');
        }
        return v;
      }
      case '[': {
        v.kind = JsonValue::Kind::Array;
        ++pos_;
        if (!consume(']')) {
          do {
            v.array.push_back(value());
          } while (consume(','));
          expect(']');
        }
        return v;
      }
      case '"':
        v.kind = JsonValue::Kind::String;
        v.string = string_body();
        return v;
      case 't':
      case 'f':
        v.kind = JsonValue::Kind::Bool;
        v.boolean = consume_word("true");
        if (!v.boolean) MRBIO_REQUIRE(consume_word("false"), "bad JSON literal");
        return v;
      case 'n':
        MRBIO_REQUIRE(consume_word("null"), "bad JSON literal");
        return v;
      default: {
        v.kind = JsonValue::Kind::Number;
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E')) {
          ++pos_;
        }
        MRBIO_REQUIRE(pos_ > start, "bad JSON number");
        v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
        return v;
      }
    }
  }

  /// Parses a double-quoted string (cursor on the opening quote). BENCH
  /// keys are plain identifiers, so only the \" and \\ escapes matter.
  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      MRBIO_REQUIRE(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        MRBIO_REQUIRE(pos_ < text_.size(), "unterminated JSON escape");
        out.push_back(text_[pos_++]);
      } else {
        out.push_back(c);
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  MRBIO_REQUIRE(f != nullptr, "cannot open ", path);
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// ---------------------------------------------------------------------------
// Run mode.

/// Paper-scale Infiniband-ish network so wire time is nonzero but small.
sim::NetworkModel bench_net() {
  sim::NetworkModel net;
  net.latency = 2.3e-6;
  net.byte_time = 6.7e-10;
  return net;
}

/// Runs one workload body on the sim backend and fills the generic
/// metrics; `items` is the workload's throughput numerator.
WorkloadMetrics run_workload(const std::function<void(mpi::Comm&)>& body,
                             const std::function<double()>& items) {
  trace::Recorder recorder(kRanks, trace::Level::Full);
  obs::Registry registry;
  rt::LaunchConfig lc;
  lc.backend = rt::Backend::Sim;
  lc.nranks = kRanks;
  lc.net = bench_net();
  lc.recorder = &recorder;
  lc.metrics = &registry;
  const rt::LaunchResult run = rt::launch(lc, [&](rt::Rank& rank) {
    mpi::Comm comm(rank);
    body(comm);
  });

  WorkloadMetrics m;
  m.makespan = run.elapsed;
  m.throughput = run.elapsed > 0.0 ? items() / run.elapsed : 0.0;
  m.wire_bytes = static_cast<double>(run.nominal_bytes);
  const obs::Counter* agg = registry.find_counter("mrmpi.aggregate_bytes");
  m.shuffle_ratio = (agg != nullptr && run.nominal_bytes > 0)
                        ? static_cast<double>(agg->value()) / m.wire_bytes
                        : 0.0;
  const obs::Report report = obs::analyze(recorder);
  double max_busy = 0.0;
  double sum_busy = 0.0;
  for (const obs::RankBreakdown& r : report.ranks) {
    max_busy = std::max(max_busy, r.busy_total());
    sum_busy += r.busy_total();
  }
  const double mean_busy = sum_busy / static_cast<double>(kRanks);
  m.peak_skew = mean_busy > 0.0 ? max_busy / mean_busy : 1.0;
  return m;
}

BenchFile run_suite(const std::string& suite) {
  MRBIO_REQUIRE(suite == "smoke" || suite == "full", "--suite must be smoke or full");
  const bool smoke = suite == "smoke";
  BenchFile out;
  out.schema_version = kSchemaVersion;
  out.suite = suite;
  out.ranks = kRanks;

  {  // mrblast: master-worker matrix search over the synthetic workload.
    mrblast::SimRunConfig config;
    config.workload.total_queries = smoke ? 4'000 : 20'000;
    config.workload.queries_per_block = 500;
    config.workload.db_partitions = smoke ? 8 : 16;
    config.workload.seed = 1234;
    config.map_style = mrmpi::MapStyle::MasterWorker;
    out.workloads["blast"] = run_workload(
        [&](mpi::Comm& comm) { mrblast::run_blast_sim(comm, config); },
        [&] { return static_cast<double>(config.workload.total_queries); });
  }
  {  // mrblast under decentralized work stealing: identical inputs to
    // "blast", so the pair gates the steal scheduler's overhead against
    // the centralized master on every run.
    mrblast::SimRunConfig config;
    config.workload.total_queries = smoke ? 4'000 : 20'000;
    config.workload.queries_per_block = 500;
    config.workload.db_partitions = smoke ? 8 : 16;
    config.workload.seed = 1234;
    config.scheduler = sched::Policy::Steal;
    out.workloads["blast_steal"] = run_workload(
        [&](mpi::Comm& comm) { mrblast::run_blast_sim(comm, config); },
        [&] { return static_cast<double>(config.workload.total_queries); });
  }
  {  // blast_simd: the *real* search pipeline (lookup, SIMD-dispatched
    // extension kernels, E-values) end-to-end through run_blast_mr, with
    // the virtual timeline charged at the measured per-cell kernel rate.
    // Deterministic like the rest of the matrix; gates the real code
    // path the synthetic "blast" workload models.
    namespace fs = std::filesystem;
    const fs::path work = fs::temp_directory_path() / "mrbio_bench_blast_simd";
    fs::remove_all(work);
    fs::create_directories(work);
    Rng rng(1234);
    std::vector<blast::Sequence> genomes;
    for (int g = 0; g < 4; ++g) {
      genomes.push_back(blast::random_sequence(rng, "genome" + std::to_string(g),
                                               smoke ? 2'000 : 8'000,
                                               blast::SeqType::Dna));
    }
    const blast::DbInfo db = blast::build_db(genomes, (work / "db").string(),
                                             blast::SeqType::Dna, smoke ? 3'000 : 12'000);
    std::vector<blast::Sequence> queries;
    for (const auto& frag :
         blast::shred({genomes[0], genomes[2]}, 300, smoke ? 100 : 250)) {
      queries.push_back(blast::mutate(rng, frag, frag.id, 0.03, blast::SeqType::Dna));
    }
    mrblast::RealRunConfig config;
    for (std::size_t i = 0; i < queries.size(); i += 8) {
      config.query_blocks.emplace_back(
          queries.begin() + static_cast<std::ptrdiff_t>(i),
          queries.begin() + static_cast<std::ptrdiff_t>(std::min(i + 8, queries.size())));
    }
    config.partition_paths = db.volume_paths;
    config.options.evalue_cutoff = 1e-6;
    config.options.filter_low_complexity = false;
    config.output_dir = (work / "out").string();
    out.workloads["blast_simd"] = run_workload(
        [&](mpi::Comm& comm) { mrblast::run_blast_mr(comm, config); },
        [&] { return static_cast<double>(queries.size()); });
    fs::remove_all(work);
  }
  {  // mrsom: chunk-scheduled batch training (the paper's Fig. 6 shape).
    mrsom::SimSomConfig config;
    config.num_vectors = smoke ? 8'192 : 40'960;
    config.dim = smoke ? 64 : 256;
    config.grid = som::SomGrid{smoke ? 20u : 50u, smoke ? 20u : 50u};
    config.epochs = smoke ? 3 : 10;
    config.map_style = mrmpi::MapStyle::Chunk;
    out.workloads["som"] = run_workload(
        [&](mpi::Comm& comm) { mrsom::run_som_sim(comm, config); },
        [&] {
          return static_cast<double>(config.num_vectors) *
                 static_cast<double>(config.epochs);
        });
  }
  {  // mrgraph: all-pairs similarity graph; exercises the KV shuffle
    // (combiner + compression), so shuffle_ratio is meaningful here.
    mrgraph::GraphConfig config;
    Rng rng(42);
    const std::size_t nseq = smoke ? 48 : 128;
    blast::Sequence ancestor;
    for (std::size_t i = 0; i < nseq; ++i) {
      if (i % 8 == 0) {
        ancestor = blast::random_sequence(rng, "f" + std::to_string(i), 200,
                                          blast::SeqType::Dna);
      }
      config.sequences.push_back(blast::mutate(rng, ancestor, "s" + std::to_string(i),
                                               0.05, blast::SeqType::Dna));
    }
    config.shuffle.combiner = true;
    config.shuffle.compress = true;
    config.virtual_seconds_per_cell = 1e-8;
    double pairs = 0.0;
    out.workloads["graph"] = run_workload(
        [&](mpi::Comm& comm) {
          const mrgraph::GraphStats stats = mrgraph::build_graph_mr(comm, config);
          if (comm.rank() == 0) pairs = static_cast<double>(stats.pairs_compared);
        },
        [&] { return pairs; });
  }
  return out;
}

void write_bench_json(std::FILE* f, const BenchFile& b) {
  std::fprintf(f, "{\"schema_version\":%d,\"suite\":\"%s\",\"ranks\":%d,\"workloads\":{",
               b.schema_version, b.suite.c_str(), b.ranks);
  bool first = true;
  for (const auto& [name, m] : b.workloads) {
    std::fprintf(f,
                 "%s\"%s\":{\"makespan\":%.17g,\"throughput\":%.17g,"
                 "\"wire_bytes\":%.17g,\"shuffle_ratio\":%.17g,\"peak_skew\":%.17g}",
                 first ? "" : ",", name.c_str(), m.makespan, m.throughput,
                 m.wire_bytes, m.shuffle_ratio, m.peak_skew);
    first = false;
  }
  std::fprintf(f, "}}\n");
}

// ---------------------------------------------------------------------------
// Compare mode.

double require_number(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  MRBIO_REQUIRE(v != nullptr && v->kind == JsonValue::Kind::Number,
                "missing numeric field '", key, "'");
  return v->number;
}

BenchFile parse_bench_file(const std::string& path) {
  const JsonValue root = JsonParser(read_file(path)).parse();
  MRBIO_REQUIRE(root.kind == JsonValue::Kind::Object, path, ": not a JSON object");
  BenchFile b;
  b.schema_version = static_cast<int>(require_number(root, "schema_version"));
  const JsonValue* suite = root.find("suite");
  MRBIO_REQUIRE(suite != nullptr && suite->kind == JsonValue::Kind::String,
                path, ": missing suite");
  b.suite = suite->string;
  b.ranks = static_cast<int>(require_number(root, "ranks"));
  const JsonValue* workloads = root.find("workloads");
  MRBIO_REQUIRE(workloads != nullptr && workloads->kind == JsonValue::Kind::Object,
                path, ": missing workloads");
  for (const auto& [name, obj] : workloads->object) {
    WorkloadMetrics m;
    m.makespan = require_number(obj, "makespan");
    m.throughput = require_number(obj, "throughput");
    m.wire_bytes = require_number(obj, "wire_bytes");
    m.shuffle_ratio = require_number(obj, "shuffle_ratio");
    m.peak_skew = require_number(obj, "peak_skew");
    b.workloads.emplace(name, m);
  }
  return b;
}

struct MetricSpec {
  const char* name;
  double WorkloadMetrics::* field;
  double tolerance;  ///< max relative drift vs baseline
};

/// Per-metric relative tolerances. The sim metrics are deterministic, so
/// these bound *intentional* drift: time-like metrics get 5%, traffic is
/// nearly exact, skew is the noisiest model output.
constexpr MetricSpec kMetrics[] = {
    {"makespan", &WorkloadMetrics::makespan, 0.05},
    {"throughput", &WorkloadMetrics::throughput, 0.05},
    {"wire_bytes", &WorkloadMetrics::wire_bytes, 0.01},
    {"shuffle_ratio", &WorkloadMetrics::shuffle_ratio, 0.02},
    {"peak_skew", &WorkloadMetrics::peak_skew, 0.10},
};

int compare(const BenchFile& base, const BenchFile& cand, double tol_scale) {
  if (base.schema_version != cand.schema_version || base.suite != cand.suite ||
      base.ranks != cand.ranks) {
    std::fprintf(stderr,
                 "incompatible BENCH files: schema %d/%d suite %s/%s ranks %d/%d\n",
                 base.schema_version, cand.schema_version, base.suite.c_str(),
                 cand.suite.c_str(), base.ranks, cand.ranks);
    return 2;
  }
  int failures = 0;
  std::printf("%-8s %-14s %14s %14s %9s %7s  %s\n", "workload", "metric", "baseline",
              "candidate", "drift", "tol", "status");
  for (const auto& [name, b] : base.workloads) {
    const auto it = cand.workloads.find(name);
    if (it == cand.workloads.end()) {
      std::printf("%-8s missing from candidate\n", name.c_str());
      ++failures;
      continue;
    }
    for (const MetricSpec& spec : kMetrics) {
      const double bv = b.*spec.field;
      const double cv = it->second.*spec.field;
      const double drift = std::fabs(cv - bv) / std::max(std::fabs(bv), 1e-12);
      const double tol = spec.tolerance * tol_scale;
      const bool ok = drift <= tol;
      if (!ok) ++failures;
      std::printf("%-8s %-14s %14.6g %14.6g %8.2f%% %6.1f%%  %s\n", name.c_str(),
                  spec.name, bv, cv, 100.0 * drift, 100.0 * tol,
                  ok ? "ok" : "REGRESSION");
    }
  }
  for (const auto& [name, m] : cand.workloads) {
    (void)m;
    if (base.workloads.find(name) == base.workloads.end()) {
      std::printf("%-8s new in candidate (not gated)\n", name.c_str());
    }
  }
  if (failures > 0) {
    std::printf("%d metric(s) outside tolerance\n", failures);
    return 1;
  }
  std::printf("all metrics within tolerance\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(
      "mrbio_bench: deterministic perf-regression matrix (run | compare)\n"
      "  mrbio_bench run --suite smoke --out BENCH.json\n"
      "  mrbio_bench compare --baseline bench/baseline.json --candidate BENCH.json");
  opts.add("suite", "smoke", "run: workload scale, smoke or full");
  opts.add("out", "", "run: write the BENCH JSON here (default stdout)");
  opts.add("baseline", "", "compare: committed baseline BENCH JSON (required)");
  opts.add("candidate", "", "compare: freshly produced BENCH JSON (required)");
  opts.add("tol-scale", "1",
           "compare: multiplier on every per-metric tolerance (e.g. 2 relaxes "
           "all gates 2x)");
  opts.add("log", "", "log level: debug/info/warn/error/off");
  try {
    if (!opts.parse(argc, argv)) return 0;
    if (!opts.str("log").empty()) set_log_level(parse_log_level(opts.str("log")));
    MRBIO_REQUIRE(opts.positional().size() == 1,
                  "expected one mode argument: run or compare\n", opts.usage());
    const std::string& mode = opts.positional().front();
    if (mode == "run") {
      const BenchFile b = run_suite(opts.str("suite"));
      if (opts.str("out").empty()) {
        write_bench_json(stdout, b);
      } else {
        std::FILE* f = std::fopen(opts.str("out").c_str(), "w");
        MRBIO_REQUIRE(f != nullptr, "cannot open ", opts.str("out"));
        write_bench_json(f, b);
        std::fclose(f);
        std::printf("bench: %s (suite %s, %d ranks)\n", opts.str("out").c_str(),
                    b.suite.c_str(), b.ranks);
      }
      return 0;
    }
    if (mode == "compare") {
      MRBIO_REQUIRE(!opts.str("baseline").empty() && !opts.str("candidate").empty(),
                    "compare needs --baseline and --candidate");
      return compare(parse_bench_file(opts.str("baseline")),
                     parse_bench_file(opts.str("candidate")),
                     opts.real("tol-scale"));
    }
    MRBIO_REQUIRE(false, "unknown mode '", mode, "' (expected run or compare)");
  } catch (const std::exception& e) {
    MRBIO_LOG(ErrorLevel, "mrbio_bench: ", e.what());
    return 1;
  }
  return 1;
}
