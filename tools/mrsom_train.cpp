// mrsom_train: the MR-MPI batch SOM command-line driver. Trains a map on
// a raw float matrix (memory-mapped, the paper's input format) or on the
// tetranucleotide composition of a FASTA file, on a simulated cluster.
//
//   mrsom_train --matrix data.raw --dim 256 [--rows 50 --cols 50] ...
//   mrsom_train --fasta frags.fa --tetra ...
//
// Outputs: <out>.cb (codebook), <out>_umatrix.pgm, and quality metrics.
#include <cstdio>
#include <memory>

#include "blast/composition.hpp"
#include "blast/sequence.hpp"
#include "common/image.hpp"
#include "common/mmap_file.hpp"
#include "common/options.hpp"
#include "mrsom/mrsom.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

using namespace mrbio;

int main(int argc, char** argv) {
  Options opts("mrsom_train: parallel batch SOM training");
  opts.add("matrix", "", "raw float32 row-major matrix file (use with --dim)");
  opts.add("dim", "0", "columns of the raw matrix");
  opts.add("fasta", "", "alternative input: FASTA file, one vector per sequence");
  opts.add_flag("tetra", "with --fasta: use tetranucleotide (256-D) composition");
  opts.add("rows", "50", "SOM grid rows");
  opts.add("cols", "50", "SOM grid columns");
  opts.add("epochs", "10", "training epochs");
  opts.add("block", "40", "input vectors per work unit");
  opts.add("ranks", "8", "simulated MPI ranks");
  opts.add("init", "pca", "codebook initialization: pca or random");
  opts.add("seed", "2011", "random seed");
  opts.add("out", "mrsom", "output prefix");
  opts.add("planes", "0", "write the first N component planes as PGM images");
  opts.add("trace", "", "write a Chrome-tracing JSON timeline to this path");
  opts.add_flag("trace-full", "with --trace: also record per-message/compute events");
  try {
    if (!opts.parse(argc, argv)) return 0;
    MRBIO_REQUIRE(opts.str("matrix").empty() != opts.str("fasta").empty(),
                  "provide exactly one of --matrix or --fasta\n", opts.usage());

    Matrix data;
    MmapFile mapped;
    MatrixView view;
    if (!opts.str("matrix").empty()) {
      const auto dim = static_cast<std::size_t>(opts.integer("dim"));
      MRBIO_REQUIRE(dim > 0, "--dim is required with --matrix");
      mapped = MmapFile(opts.str("matrix"));
      view = mapped.as_matrix(dim);
    } else {
      MRBIO_REQUIRE(opts.flag("tetra"), "--fasta currently requires --tetra");
      const auto seqs = blast::read_fasta_file(opts.str("fasta"), blast::SeqType::Dna);
      MRBIO_REQUIRE(!seqs.empty(), "no sequences in ", opts.str("fasta"));
      data = Matrix(seqs.size(), blast::kmer_dims(4));
      for (std::size_t i = 0; i < seqs.size(); ++i) {
        const auto freqs = blast::tetranucleotide_frequencies(seqs[i].data);
        std::copy(freqs.begin(), freqs.end(), data.row(i).begin());
      }
      view = data.view();
    }
    std::printf("training on %zu vectors of dimension %zu\n", view.rows(), view.cols());

    som::Codebook initial(
        som::SomGrid{static_cast<std::size_t>(opts.integer("rows")),
                     static_cast<std::size_t>(opts.integer("cols"))},
        view.cols());
    if (opts.str("init") == "pca") {
      initial.init_pca(view);
    } else {
      Rng rng(static_cast<std::uint64_t>(opts.integer("seed")));
      initial.init_random(rng);
    }

    mrsom::ParallelSomConfig config;
    config.params.epochs = static_cast<std::size_t>(opts.integer("epochs"));
    config.block_vectors = static_cast<std::size_t>(opts.integer("block"));
    config.on_epoch = [](std::size_t epoch, double sigma, double qerr) {
      std::printf("epoch %3zu  sigma %7.3f  qerr %.6f\n", epoch, sigma, qerr);
    };

    sim::EngineConfig ec;
    ec.nprocs = static_cast<int>(opts.integer("ranks"));
    std::unique_ptr<trace::Recorder> recorder;
    if (!opts.str("trace").empty()) {
      recorder = std::make_unique<trace::Recorder>(
          ec.nprocs, opts.flag("trace-full") ? trace::Level::Full : trace::Level::Phases);
      ec.recorder = recorder.get();
    }
    sim::Engine engine(ec);
    som::Codebook cb;
    engine.run([&](sim::Process& p) {
      mpi::Comm comm(p);
      som::Codebook trained = mrsom::train_som_mr(comm, view, initial, config);
      if (p.rank() == 0) cb = std::move(trained);
    });

    const std::string prefix = opts.str("out");
    som::save_codebook(prefix + ".cb", cb);
    write_pgm(prefix + "_umatrix.pgm", som::u_matrix(cb).view());
    const auto planes = std::min<std::size_t>(
        static_cast<std::size_t>(opts.integer("planes")), cb.dim());
    for (std::size_t d = 0; d < planes; ++d) {
      write_pgm(prefix + "_plane" + std::to_string(d) + ".pgm",
                som::component_plane(cb, d).view());
    }
    std::printf("codebook: %s.cb   u-matrix: %s_umatrix.pgm\n", prefix.c_str(),
                prefix.c_str());
    std::printf("quantization error %.6f   topographic error %.4f\n",
                som::quantization_error(cb, view), som::topographic_error(cb, view));
    if (recorder) {
      trace::write_chrome_trace(opts.str("trace"), *recorder);
      trace::print_summary(stdout, trace::summarize(*recorder));
      std::printf("trace: %s (load in chrome://tracing or Perfetto)\n",
                  opts.str("trace").c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mrsom_train: %s\n", e.what());
    return 1;
  }
}
