// mrsom_train: the MR-MPI batch SOM command-line driver. Trains a map on
// a raw float matrix (memory-mapped, the paper's input format) or on the
// tetranucleotide composition of a FASTA file, on either the simulated
// cluster (--backend sim) or real threads (--backend native). The default
// Chunk map style assigns blocks to ranks deterministically, so the
// trained codebook is byte-identical across backends.
//
//   mrsom_train --matrix data.raw --dim 256 [--rows 50 --cols 50] ...
//   mrsom_train --fasta frags.fa --tetra [--backend sim|native] ...
//
// Outputs: <out>.cb (codebook), <out>_umatrix.pgm, and quality metrics.
// Exit codes: 0 success, 1 error, 3 job killed by a kill: fault (restart
// with --resume to continue from the last checkpointed epoch).
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>

#include "blast/composition.hpp"
#include "ckpt/ckpt.hpp"
#include "blast/sequence.hpp"
#include "common/image.hpp"
#include "common/log.hpp"
#include "common/mmap_file.hpp"
#include "common/options.hpp"
#include "fault/detector.hpp"
#include "fault/fault.hpp"
#include "mrsom/mrsom.hpp"
#include "obs/analysis.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "rt/backend.hpp"
#include "simd/simd.hpp"
#include "trace/trace.hpp"

using namespace mrbio;

int main(int argc, char** argv) {
  Options opts("mrsom_train: parallel batch SOM training");
  opts.add("matrix", "", "raw float32 row-major matrix file (use with --dim)");
  opts.add("dim", "0", "columns of the raw matrix");
  opts.add("fasta", "", "alternative input: FASTA file, one vector per sequence");
  opts.add_flag("tetra", "with --fasta: use tetranucleotide (256-D) composition");
  opts.add("rows", "50", "SOM grid rows");
  opts.add("cols", "50", "SOM grid columns");
  opts.add("epochs", "10", "training epochs");
  opts.add("block", "40", "input vectors per work unit");
  opts.add("backend", "sim", "runtime backend: sim (discrete-event) or native (threads)");
  opts.add("ranks", "0", "MPI ranks; 0 = backend default (sim: 8, native: hardware threads)");
  opts.add("style", "chunk", "map style: chunk (deterministic) or master (load-balanced)");
  opts.add("scheduler", "auto",
           "map scheduler: auto|chunk|stride|master|master-ft|steal "
           "(auto follows --style)");
  opts.add_flag("deterministic",
                "with a dynamic scheduler: schedule-independent reduction, so "
                "the codebook bytes match a fault-tolerant (--faults) run");
  opts.add("init", "pca", "codebook initialization: pca or random");
  opts.add("seed", "2011", "random seed");
  opts.add("out", "mrsom", "output prefix");
  opts.add("planes", "0", "write the first N component planes as PGM images");
  opts.add("trace", "", "write a Chrome-tracing JSON timeline to this path");
  opts.add_flag("trace-full", "with --trace: also record per-message/compute events");
  opts.add_flag("report", "print a critical-path / idle-time performance report");
  opts.add("report-json", "", "write the performance report as JSON to this path");
  opts.add("timeseries-out", "",
           "write sampled per-rank counter time series as JSONL to this path");
  opts.add("metrics-out", "", "write the raw metrics registry as JSON to this path");
  opts.add("log-json", "",
           "also write every log line as a structured JSONL event to this path");
  opts.add("faults", "", "fault plan: spec/JSON string, or a path to a plan file; "
                         "requires --style master, enables the fault-tolerant scheduler");
  opts.add("ft-timeout", "auto",
           "with --faults: seconds before an outstanding task is retried; "
           "auto adapts to ~4x the p99 of observed task cost (5 s until "
           "enough tasks have completed)");
  opts.add("ft-retries", "3", "with --faults: retries per task before it is abandoned");
  opts.add("ledger-ranks", "0",
           "with --scheduler steal faults: ranks owning a commit-ledger "
           "shard (0 = every rank owns its seeded range; 1 = single "
           "coordinator)");
  opts.add("heartbeat", "",
           "phi-accrual failure detection piggybacked on scheduler traffic, "
           "e.g. \"interval=0.5,phi=6,samples=4\" or \"on\" (empty = off)");
  opts.add("checkpoint-dir", "", "durable checkpoint directory; enables checkpoint/restart");
  opts.add("checkpoint-interval", "5",
           "min virtual seconds between map-log flushes (0 = flush every task)");
  opts.add_flag("resume", "continue from the last checkpointed epoch in --checkpoint-dir");
  opts.add("simd", "auto",
           "SIMD level for the BMU/accumulator kernels: scalar|sse|avx2|auto "
           "(auto = best this CPU supports; results are bit-identical "
           "across levels)");
  opts.add("log", "", "log level: debug/info/warn/error/off (default $MRBIO_LOG or warn)");
  std::unique_ptr<fault::Injector> injector;
  try {
    if (!opts.parse(argc, argv)) return 0;
    if (!opts.str("log").empty()) set_log_level(parse_log_level(opts.str("log")));
    simd::set_isa(simd::parse_isa(opts.str("simd")));
    MRBIO_LOG(Info, "simd level: ", simd::isa_name(simd::active_isa()));
    // Install the event-log sink before anything that can emit MRBIO_LOG
    // lines (checkpoint open, fault-plan parsing), so --log-json captures
    // the whole run, not just the launch.
    std::unique_ptr<obs::EventLog> eventlog;
    if (!opts.str("log-json").empty()) {
      eventlog = std::make_unique<obs::EventLog>(opts.str("log-json"));
      set_log_sink(&obs::EventLog::log_sink, eventlog.get());
    }
    // Uninstall the sink before `eventlog` is destroyed, on every exit path.
    const auto sink_guard = std::unique_ptr<void, void (*)(void*)>(
        eventlog.get(), [](void* p) {
          if (p != nullptr) set_log_sink(nullptr, nullptr);
        });
    MRBIO_REQUIRE(opts.str("matrix").empty() != opts.str("fasta").empty(),
                  "provide exactly one of --matrix or --fasta\n", opts.usage());

    Matrix data;
    MmapFile mapped;
    MatrixView view;
    if (!opts.str("matrix").empty()) {
      const auto dim = static_cast<std::size_t>(opts.integer("dim"));
      MRBIO_REQUIRE(dim > 0, "--dim is required with --matrix");
      mapped = MmapFile(opts.str("matrix"));
      view = mapped.as_matrix(dim);
    } else {
      MRBIO_REQUIRE(opts.flag("tetra"), "--fasta currently requires --tetra");
      const auto seqs = blast::read_fasta_file(opts.str("fasta"), blast::SeqType::Dna);
      MRBIO_REQUIRE(!seqs.empty(), "no sequences in ", opts.str("fasta"));
      data = Matrix(seqs.size(), blast::kmer_dims(4));
      for (std::size_t i = 0; i < seqs.size(); ++i) {
        const auto freqs = blast::tetranucleotide_frequencies(seqs[i].data);
        std::copy(freqs.begin(), freqs.end(), data.row(i).begin());
      }
      view = data.view();
    }
    std::printf("training on %zu vectors of dimension %zu\n", view.rows(), view.cols());

    som::Codebook initial(
        som::SomGrid{static_cast<std::size_t>(opts.integer("rows")),
                     static_cast<std::size_t>(opts.integer("cols"))},
        view.cols());
    if (opts.str("init") == "pca") {
      initial.init_pca(view);
    } else {
      Rng rng(static_cast<std::uint64_t>(opts.integer("seed")));
      initial.init_random(rng);
    }

    mrsom::ParallelSomConfig config;
    config.params.epochs = static_cast<std::size_t>(opts.integer("epochs"));
    config.block_vectors = static_cast<std::size_t>(opts.integer("block"));
    config.on_epoch = [](std::size_t epoch, double sigma, double qerr) {
      std::printf("epoch %3zu  sigma %7.3f  qerr %.6f\n", epoch, sigma, qerr);
    };
    // Chunk assigns blocks to ranks by index, making the floating-point
    // accumulation order — and therefore the codebook bytes — a pure
    // function of the input, identical on both backends. MasterWorker
    // load-balances but lets native thread timing pick the partition.
    MRBIO_REQUIRE(opts.str("style") == "chunk" || opts.str("style") == "master",
                  "--style must be chunk or master");
    config.map_style = opts.str("style") == "chunk" ? mrmpi::MapStyle::Chunk
                                                    : mrmpi::MapStyle::MasterWorker;
    config.scheduler = sched::parse_policy(opts.str("scheduler"));
    config.deterministic_reduce = opts.flag("deterministic");
    // The policy the run will actually use, for fault gating below.
    const bool remote_sched =
        sched::is_remote(config.scheduler) ||
        (config.scheduler == sched::Policy::Auto &&
         config.map_style == mrmpi::MapStyle::MasterWorker);

    rt::LaunchConfig lc;
    lc.backend = rt::backend_from_name(opts.str("backend"));
    lc.nranks = opts.integer("ranks") > 0 ? static_cast<int>(opts.integer("ranks"))
                                          : rt::default_ranks(lc.backend);
    if (!opts.str("faults").empty()) {
      const std::string& spec = opts.str("faults");
      fault::FaultPlan plan = std::filesystem::exists(spec)
                                  ? fault::FaultPlan::from_file(spec)
                                  : fault::FaultPlan::parse(spec);
      // Crash/message faults need a fault-tolerant scheduling protocol
      // (the master ledger, or steal backed by it); kill/corrupt-only
      // plans exercise checkpoint/restart and run on whichever scheduler
      // --style/--scheduler selects.
      const bool needs_ft = plan.requires_ft();
      MRBIO_REQUIRE(!needs_ft || remote_sched,
                    "crash/message faults require --style master or "
                    "--scheduler master/master-ft/steal (recovery needs a "
                    "remote scheduling protocol)");
      injector = std::make_unique<fault::Injector>(std::move(plan));
      lc.injector = injector.get();
      if (needs_ft) {
        config.ft.enabled = true;  // forces the deterministic KV reduce path
        // "auto" (task_timeout <= 0) tracks ~4x the p99 of observed
        // grant-to-commit service times instead of a fixed guess.
        config.ft.task_timeout =
            opts.str("ft-timeout") == "auto" ? 0.0 : opts.real("ft-timeout");
        config.ft.max_retries = static_cast<int>(opts.integer("ft-retries"));
        config.ft.ledger_ranks = static_cast<int>(opts.integer("ledger-ranks"));
        if (!opts.str("heartbeat").empty()) {
          config.ft.heartbeat = fault::HeartbeatConfig::parse(opts.str("heartbeat"));
        }
        // The sharded steal ledger elects a deterministic successor for a
        // dead shard owner, so rank-0 crash plans are legal under it.
        lc.master_failover = config.scheduler == sched::Policy::Steal;
      }
    }
    // Fingerprint: a checkpoint dir is bound to one training configuration;
    // resuming with different inputs or hyper-parameters is rejected.
    ckpt::CheckpointConfig ckpt_config;
    ckpt_config.dir = opts.str("checkpoint-dir");
    ckpt_config.interval = opts.real("checkpoint-interval");
    ckpt_config.resume = opts.flag("resume");
    MRBIO_REQUIRE(!ckpt_config.resume || !ckpt_config.dir.empty(),
                  "--resume requires --checkpoint-dir");
    ckpt::Checkpointer checkpointer(ckpt_config, injector.get());
    if (checkpointer.enabled()) {
      std::ostringstream fp;
      fp << "mrsom input=" << (opts.str("matrix").empty() ? opts.str("fasta")
                                                          : opts.str("matrix"))
         << " rows=" << view.rows() << " dim=" << view.cols()
         << " grid=" << opts.integer("rows") << 'x' << opts.integer("cols")
         << " epochs=" << opts.integer("epochs") << " block=" << opts.integer("block")
         << " ranks=" << lc.nranks << " style=" << opts.str("style")
         << " scheduler=" << sched::policy_name(config.scheduler)
         << " deterministic=" << config.deterministic_reduce
         << " init=" << opts.str("init") << " seed=" << opts.integer("seed");
      checkpointer.open(fp.str());
      config.checkpointer = &checkpointer;
      lc.checkpointing = true;
    }
    // --report implies a Full-level recorder and a metrics registry; both
    // only read the active backend's clock, so measured times are unchanged.
    const bool want_report = opts.flag("report") || !opts.str("report-json").empty();
    std::unique_ptr<trace::Recorder> recorder;
    if (!opts.str("trace").empty() || want_report) {
      const bool full = opts.flag("trace-full") || want_report;
      recorder = std::make_unique<trace::Recorder>(
          lc.nranks, full ? trace::Level::Full : trace::Level::Phases);
      lc.recorder = recorder.get();
    }
    obs::Registry registry;
    if (want_report || !opts.str("metrics-out").empty()) lc.metrics = &registry;
    std::unique_ptr<obs::TimeSeries> timeseries;
    if (!opts.str("timeseries-out").empty() || want_report) {
      timeseries = std::make_unique<obs::TimeSeries>(lc.nranks);
      lc.timeseries = timeseries.get();
    }
    lc.eventlog = eventlog.get();
    som::Codebook cb;
    const rt::LaunchResult run = rt::launch(lc, [&](rt::Rank& rank) {
      mpi::Comm comm(rank);
      som::Codebook trained = mrsom::train_som_mr(comm, view, initial, config);
      if (rank.rank() == 0) cb = std::move(trained);
    });
    std::printf("trained on %d %s ranks in %.3f %s seconds\n", lc.nranks,
                rt::backend_name(lc.backend), run.elapsed,
                lc.backend == rt::Backend::Sim ? "virtual" : "wall-clock");
    if (injector) {
      const fault::InjectorStats fs = injector->stats();
      std::printf("faults fired: %llu crashes, %llu drops, %llu duplicates, "
                  "%llu delays, %llu kills, %llu corruptions\n",
                  static_cast<unsigned long long>(fs.crashes_fired),
                  static_cast<unsigned long long>(fs.messages_dropped),
                  static_cast<unsigned long long>(fs.messages_duplicated),
                  static_cast<unsigned long long>(fs.messages_delayed),
                  static_cast<unsigned long long>(fs.kills_fired),
                  static_cast<unsigned long long>(fs.checkpoints_corrupted));
    }
    if (checkpointer.enabled()) {
      const ckpt::CheckpointStats cs = checkpointer.stats();
      std::printf("checkpoint: %llu records (%llu bytes) written, "
                  "%llu records (%llu bytes) replayed, %llu corrupt dropped, "
                  "%llu snapshots\n",
                  static_cast<unsigned long long>(cs.records_written),
                  static_cast<unsigned long long>(cs.bytes_written),
                  static_cast<unsigned long long>(cs.records_replayed),
                  static_cast<unsigned long long>(cs.bytes_replayed),
                  static_cast<unsigned long long>(cs.corrupt_records),
                  static_cast<unsigned long long>(cs.snapshots_saved));
      checkpointer.cleanup_on_success();
    }

    const std::string prefix = opts.str("out");
    som::save_codebook(prefix + ".cb", cb);
    write_pgm(prefix + "_umatrix.pgm", som::u_matrix(cb).view());
    const auto planes = std::min<std::size_t>(
        static_cast<std::size_t>(opts.integer("planes")), cb.dim());
    for (std::size_t d = 0; d < planes; ++d) {
      write_pgm(prefix + "_plane" + std::to_string(d) + ".pgm",
                som::component_plane(cb, d).view());
    }
    std::printf("codebook: %s.cb   u-matrix: %s_umatrix.pgm\n", prefix.c_str(),
                prefix.c_str());
    std::printf("quantization error %.6f   topographic error %.4f\n",
                som::quantization_error(cb, view), som::topographic_error(cb, view));
    if (recorder && !opts.str("trace").empty()) {
      trace::write_chrome_trace(opts.str("trace"), *recorder);
      trace::print_summary(stdout, trace::summarize(*recorder));
      std::printf("trace: %s (load in chrome://tracing or Perfetto)\n",
                  opts.str("trace").c_str());
    }
    if (want_report) {
      const obs::Report report = obs::analyze(*recorder);
      if (opts.flag("report")) {
        obs::print_report(stdout, report);
        std::printf("\n-- metrics --\n");
        registry.print(stdout);
      }
      if (!opts.str("report-json").empty()) {
        std::FILE* f = std::fopen(opts.str("report-json").c_str(), "w");
        MRBIO_REQUIRE(f != nullptr, "cannot open ", opts.str("report-json"));
        obs::write_report_json(f, report, &registry, timeseries.get());
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("report: %s\n", opts.str("report-json").c_str());
      }
    }
    if (!opts.str("timeseries-out").empty()) {
      std::FILE* f = std::fopen(opts.str("timeseries-out").c_str(), "w");
      MRBIO_REQUIRE(f != nullptr, "cannot open ", opts.str("timeseries-out"));
      timeseries->write_jsonl(f);
      std::fclose(f);
      std::printf("timeseries: %s\n", opts.str("timeseries-out").c_str());
    }
    if (!opts.str("metrics-out").empty()) {
      std::FILE* f = std::fopen(opts.str("metrics-out").c_str(), "w");
      MRBIO_REQUIRE(f != nullptr, "cannot open ", opts.str("metrics-out"));
      registry.write_json(f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("metrics: %s\n", opts.str("metrics-out").c_str());
    }
    return 0;
  } catch (const fault::JobKillSignal& e) {
    MRBIO_LOG(Warn, "mrsom_train: job killed: ", e.what());
    return 3;
  } catch (const std::exception& e) {
    // A kill can surface as a secondary error (e.g. the sim engine reports
    // the surviving ranks' deadlock before the kill signal itself).
    if (injector != nullptr && injector->stats().kills_fired > 0) {
      MRBIO_LOG(Warn, "mrsom_train: job killed: ", e.what(),
                " (restart with --resume to continue)");
      return 3;
    }
    MRBIO_LOG(ErrorLevel, "mrsom_train: ", e.what());
    return 1;
  }
}
