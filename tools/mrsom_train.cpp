// mrsom_train: the MR-MPI batch SOM command-line driver. Trains a map on
// a raw float matrix (memory-mapped, the paper's input format) or on the
// tetranucleotide composition of a FASTA file, on a simulated cluster.
//
//   mrsom_train --matrix data.raw --dim 256 [--rows 50 --cols 50] ...
//   mrsom_train --fasta frags.fa --tetra ...
//
// Outputs: <out>.cb (codebook), <out>_umatrix.pgm, and quality metrics.
#include <cstdio>
#include <memory>

#include "blast/composition.hpp"
#include "blast/sequence.hpp"
#include "common/image.hpp"
#include "common/log.hpp"
#include "common/mmap_file.hpp"
#include "common/options.hpp"
#include "mrsom/mrsom.hpp"
#include "obs/analysis.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

using namespace mrbio;

int main(int argc, char** argv) {
  Options opts("mrsom_train: parallel batch SOM training");
  opts.add("matrix", "", "raw float32 row-major matrix file (use with --dim)");
  opts.add("dim", "0", "columns of the raw matrix");
  opts.add("fasta", "", "alternative input: FASTA file, one vector per sequence");
  opts.add_flag("tetra", "with --fasta: use tetranucleotide (256-D) composition");
  opts.add("rows", "50", "SOM grid rows");
  opts.add("cols", "50", "SOM grid columns");
  opts.add("epochs", "10", "training epochs");
  opts.add("block", "40", "input vectors per work unit");
  opts.add("ranks", "8", "simulated MPI ranks");
  opts.add("init", "pca", "codebook initialization: pca or random");
  opts.add("seed", "2011", "random seed");
  opts.add("out", "mrsom", "output prefix");
  opts.add("planes", "0", "write the first N component planes as PGM images");
  opts.add("trace", "", "write a Chrome-tracing JSON timeline to this path");
  opts.add_flag("trace-full", "with --trace: also record per-message/compute events");
  opts.add_flag("report", "print a critical-path / idle-time performance report");
  opts.add("report-json", "", "write the performance report as JSON to this path");
  opts.add("log", "", "log level: debug/info/warn/error/off (default $MRBIO_LOG or warn)");
  try {
    if (!opts.parse(argc, argv)) return 0;
    if (!opts.str("log").empty()) set_log_level(parse_log_level(opts.str("log")));
    MRBIO_REQUIRE(opts.str("matrix").empty() != opts.str("fasta").empty(),
                  "provide exactly one of --matrix or --fasta\n", opts.usage());

    Matrix data;
    MmapFile mapped;
    MatrixView view;
    if (!opts.str("matrix").empty()) {
      const auto dim = static_cast<std::size_t>(opts.integer("dim"));
      MRBIO_REQUIRE(dim > 0, "--dim is required with --matrix");
      mapped = MmapFile(opts.str("matrix"));
      view = mapped.as_matrix(dim);
    } else {
      MRBIO_REQUIRE(opts.flag("tetra"), "--fasta currently requires --tetra");
      const auto seqs = blast::read_fasta_file(opts.str("fasta"), blast::SeqType::Dna);
      MRBIO_REQUIRE(!seqs.empty(), "no sequences in ", opts.str("fasta"));
      data = Matrix(seqs.size(), blast::kmer_dims(4));
      for (std::size_t i = 0; i < seqs.size(); ++i) {
        const auto freqs = blast::tetranucleotide_frequencies(seqs[i].data);
        std::copy(freqs.begin(), freqs.end(), data.row(i).begin());
      }
      view = data.view();
    }
    std::printf("training on %zu vectors of dimension %zu\n", view.rows(), view.cols());

    som::Codebook initial(
        som::SomGrid{static_cast<std::size_t>(opts.integer("rows")),
                     static_cast<std::size_t>(opts.integer("cols"))},
        view.cols());
    if (opts.str("init") == "pca") {
      initial.init_pca(view);
    } else {
      Rng rng(static_cast<std::uint64_t>(opts.integer("seed")));
      initial.init_random(rng);
    }

    mrsom::ParallelSomConfig config;
    config.params.epochs = static_cast<std::size_t>(opts.integer("epochs"));
    config.block_vectors = static_cast<std::size_t>(opts.integer("block"));
    config.on_epoch = [](std::size_t epoch, double sigma, double qerr) {
      std::printf("epoch %3zu  sigma %7.3f  qerr %.6f\n", epoch, sigma, qerr);
    };

    sim::EngineConfig ec;
    ec.nprocs = static_cast<int>(opts.integer("ranks"));
    // --report implies a Full-level recorder and a metrics registry; both
    // only read virtual clocks, so simulated times are unchanged.
    const bool want_report = opts.flag("report") || !opts.str("report-json").empty();
    std::unique_ptr<trace::Recorder> recorder;
    if (!opts.str("trace").empty() || want_report) {
      const bool full = opts.flag("trace-full") || want_report;
      recorder = std::make_unique<trace::Recorder>(
          ec.nprocs, full ? trace::Level::Full : trace::Level::Phases);
      ec.recorder = recorder.get();
    }
    obs::Registry registry;
    if (want_report) ec.metrics = &registry;
    sim::Engine engine(ec);
    som::Codebook cb;
    engine.run([&](sim::Process& p) {
      mpi::Comm comm(p);
      som::Codebook trained = mrsom::train_som_mr(comm, view, initial, config);
      if (p.rank() == 0) cb = std::move(trained);
    });

    const std::string prefix = opts.str("out");
    som::save_codebook(prefix + ".cb", cb);
    write_pgm(prefix + "_umatrix.pgm", som::u_matrix(cb).view());
    const auto planes = std::min<std::size_t>(
        static_cast<std::size_t>(opts.integer("planes")), cb.dim());
    for (std::size_t d = 0; d < planes; ++d) {
      write_pgm(prefix + "_plane" + std::to_string(d) + ".pgm",
                som::component_plane(cb, d).view());
    }
    std::printf("codebook: %s.cb   u-matrix: %s_umatrix.pgm\n", prefix.c_str(),
                prefix.c_str());
    std::printf("quantization error %.6f   topographic error %.4f\n",
                som::quantization_error(cb, view), som::topographic_error(cb, view));
    if (recorder && !opts.str("trace").empty()) {
      trace::write_chrome_trace(opts.str("trace"), *recorder);
      trace::print_summary(stdout, trace::summarize(*recorder));
      std::printf("trace: %s (load in chrome://tracing or Perfetto)\n",
                  opts.str("trace").c_str());
    }
    if (want_report) {
      const obs::Report report = obs::analyze(*recorder);
      if (opts.flag("report")) {
        obs::print_report(stdout, report);
        std::printf("\n-- metrics --\n");
        registry.print(stdout);
      }
      if (!opts.str("report-json").empty()) {
        std::FILE* f = std::fopen(opts.str("report-json").c_str(), "w");
        MRBIO_REQUIRE(f != nullptr, "cannot open ", opts.str("report-json"));
        obs::write_report_json(f, report, &registry);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("report: %s\n", opts.str("report-json").c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    MRBIO_LOG(ErrorLevel, "mrsom_train: ", e.what());
    return 1;
  }
}
