// mrbio_report: offline performance-report generator. Reads a Chrome-
// tracing JSON produced by the simulators (mrblast_search / mrsom_train /
// the bench drivers with --trace), reconstructs the span stream plus its
// happens-before edges, and prints the critical-path and idle-time
// analysis from src/obs. The same analysis runs in-process via --report
// on the drivers; this tool exists so saved traces can be re-analyzed.
//
//   mrbio_report --trace run.json [--json report.json]
//                [--straggler-k 1.5] [--rank-rows 16]
#include <cstdio>

#include "common/log.hpp"
#include "common/options.hpp"
#include "obs/analysis.hpp"
#include "trace/trace.hpp"

using namespace mrbio;

int main(int argc, char** argv) {
  Options opts("mrbio_report: critical-path / idle-time report from a trace JSON");
  opts.add("trace", "", "Chrome-tracing JSON written by the simulators (required)");
  opts.add("json", "", "also write the report as machine-readable JSON to this path");
  opts.add("straggler-k", "1.5", "flag ranks with busy time > k x median");
  opts.add("skew-top-k", "3", "slowest ranks listed per phase in the skew table");
  opts.add("rank-rows", "16", "per-rank table rows to print");
  opts.add("log", "", "log level: debug/info/warn/error/off (default $MRBIO_LOG or warn)");
  try {
    if (!opts.parse(argc, argv)) return 0;
    if (!opts.str("log").empty()) set_log_level(parse_log_level(opts.str("log")));
    MRBIO_REQUIRE(!opts.str("trace").empty(), "--trace is required\n", opts.usage());

    const trace::LoadedTrace loaded = trace::read_chrome_trace(opts.str("trace"));
    obs::AnalyzeOptions aopts;
    aopts.straggler_k = opts.real("straggler-k");
    aopts.skew_top_k = static_cast<std::size_t>(opts.integer("skew-top-k"));
    const obs::Report report = obs::analyze(loaded.recorder, aopts);
    obs::print_report(stdout, report,
                      static_cast<std::size_t>(opts.integer("rank-rows")));
    if (!opts.str("json").empty()) {
      std::FILE* f = std::fopen(opts.str("json").c_str(), "w");
      MRBIO_REQUIRE(f != nullptr, "cannot open ", opts.str("json"));
      obs::write_report_json(f, report);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("report: %s\n", opts.str("json").c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    MRBIO_LOG(ErrorLevel, "mrbio_report: ", e.what());
    return 1;
  }
}
