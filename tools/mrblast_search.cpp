// mrblast_search: the MR-MPI BLAST command-line driver. Searches a query
// FASTA against a formatted database on a cluster of MPI ranks — either
// the discrete-event simulator (--backend sim, virtual time) or real
// preemptive threads (--backend native, wall-clock time) — writing
// per-rank tabular hit files exactly as the paper's application does.
// The hit files are byte-identical across backends.
//
//   mrblast_search --query q.fa --db mydb.mal --out results/
//                  [--backend sim|native] [--ranks N]
//                  [--type nucl|prot] [--evalue 10]
//                  [--max-hits 500] [--block 1000] [--tapered]
//                  [--locality] [--no-filter] [--exclude-self]
//                  [--trace out.json] [--trace-full]
//                  [--report] [--report-json report.json]
//                  [--timeseries-out ts.jsonl] [--metrics-out metrics.json]
//                  [--log-json events.jsonl]
//                  [--faults "crash:rank=3@t=0.4"] [--ft-timeout 5] [--ft-retries 3]
//                  [--checkpoint-dir ckpt/] [--checkpoint-interval 5] [--resume]
//                  [--virtual-rate auto] [--simd scalar|sse|avx2|auto]
//
// Exit codes: 0 success, 1 error, 3 job killed by a kill: fault (restart
// with --resume to continue from the last checkpoint).
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>

#include "ckpt/ckpt.hpp"
#include "common/log.hpp"
#include "common/options.hpp"
#include "fault/detector.hpp"
#include "fault/fault.hpp"
#include "mrblast/mrblast.hpp"
#include "obs/analysis.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "rt/backend.hpp"
#include "simd/simd.hpp"
#include "trace/trace.hpp"

using namespace mrbio;

int main(int argc, char** argv) {
  Options opts("mrblast_search: parallel BLAST over a simulated MPI cluster");
  opts.add("query", "", "query FASTA file (required)");
  opts.add("db", "", "database alias file from mrformatdb, <base>.mal (required)");
  opts.add("out", "mrblast_out", "output directory for per-rank hit files");
  opts.add("type", "nucl", "search type: nucl or prot");
  opts.add("backend", "sim", "runtime backend: sim (discrete-event) or native (threads)");
  opts.add("ranks", "0", "MPI ranks; 0 = backend default (sim: 8, native: hardware threads)");
  opts.add("evalue", "10", "E-value cutoff");
  opts.add("max-hits", "500", "max hits kept per query (0 = unlimited)");
  opts.add("block", "1000", "queries per block");
  opts.add("blocks-per-iter", "0",
           "query blocks per MapReduce iteration (0 = all in one); each "
           "iteration is one checkpoint cycle, so smaller values commit "
           "progress more often");
  opts.add_flag("tapered", "use a tapered block schedule (Section V dynamic chunking)");
  opts.add("scheduler", "auto",
           "map scheduler: auto|chunk|stride|master|master-ft|steal "
           "(auto follows the default master-worker style)");
  opts.add_flag("locality", "use the location-aware scheduler");
  opts.add_flag("no-filter", "disable low-complexity filtering");
  opts.add_flag("exclude-self", "drop hits of shredded fragments on their parent");
  opts.add("trace", "", "write a Chrome-tracing JSON timeline to this path");
  opts.add_flag("trace-full", "with --trace: also record per-message/compute events");
  opts.add_flag("report", "print a critical-path / idle-time performance report");
  opts.add("report-json", "", "write the performance report as JSON to this path");
  opts.add("timeseries-out", "",
           "write sampled per-rank counter time series as JSONL to this path");
  opts.add("metrics-out", "", "write the raw metrics registry as JSON to this path");
  opts.add("log-json", "",
           "also write every log line as a structured JSONL event to this path");
  opts.add("faults", "", "fault plan: spec/JSON string, or a path to a plan file; "
                         "enables the fault-tolerant scheduler");
  opts.add("ft-timeout", "auto",
           "with --faults: seconds before an outstanding task is retried; "
           "auto adapts to ~4x the p99 of observed task cost (5 s until "
           "enough tasks have completed)");
  opts.add("ft-retries", "3", "with --faults: retries per task before it is abandoned");
  opts.add("ledger-ranks", "0",
           "with --scheduler steal faults: ranks owning a commit-ledger "
           "shard (0 = every rank owns its seeded range; 1 = single "
           "coordinator)");
  opts.add("heartbeat", "",
           "phi-accrual failure detection piggybacked on scheduler traffic, "
           "e.g. \"interval=0.5,phi=6,samples=4\" or \"on\" (empty = off)");
  opts.add("checkpoint-dir", "", "durable checkpoint directory; enables checkpoint/restart");
  opts.add("checkpoint-interval", "5",
           "min virtual seconds between map-log flushes (0 = flush every task)");
  opts.add_flag("resume", "continue from the checkpoint in --checkpoint-dir, "
                          "truncating hit files to the last committed cycle");
  opts.add("virtual-rate", "auto",
           "sim backend: virtual seconds charged per alignment cell "
           "(query x partition residues), so the virtual timeline reflects "
           "search work and time-triggered faults can fire; 0 disables, "
           "auto = the measured per-cell kernel constant");
  opts.add("simd", "auto",
           "SIMD level for the alignment kernels: scalar|sse|avx2|auto "
           "(auto = best this CPU supports; results are bit-identical "
           "across levels)");
  opts.add("log", "", "log level: debug/info/warn/error/off (default $MRBIO_LOG or warn)");
  std::unique_ptr<fault::Injector> injector;
  try {
    if (!opts.parse(argc, argv)) return 0;
    if (!opts.str("log").empty()) set_log_level(parse_log_level(opts.str("log")));
    // Install the event-log sink before anything that can emit MRBIO_LOG
    // lines (checkpoint open, fault-plan parsing), so --log-json captures
    // the whole run, not just the launch.
    std::unique_ptr<obs::EventLog> eventlog;
    if (!opts.str("log-json").empty()) {
      eventlog = std::make_unique<obs::EventLog>(opts.str("log-json"));
      set_log_sink(&obs::EventLog::log_sink, eventlog.get());
    }
    // Uninstall the sink before `eventlog` is destroyed, on every exit path.
    const auto sink_guard = std::unique_ptr<void, void (*)(void*)>(
        eventlog.get(), [](void* p) {
          if (p != nullptr) set_log_sink(nullptr, nullptr);
        });
    MRBIO_REQUIRE(!opts.str("query").empty() && !opts.str("db").empty(),
                  "--query and --db are required\n", opts.usage());

    const blast::DbInfo db = blast::read_db_info(opts.str("db"));
    const bool prot_requested = opts.str("type") == "prot";
    MRBIO_REQUIRE((db.type == blast::SeqType::Protein) == prot_requested,
                  "database type does not match --type");

    mrblast::RealRunConfig config;
    config.options = prot_requested ? blast::make_protein_options() : blast::SearchOptions{};
    config.options.evalue_cutoff = opts.real("evalue");
    config.options.max_hits_per_query = static_cast<std::size_t>(opts.integer("max-hits"));
    config.options.filter_low_complexity = !opts.flag("no-filter");
    config.options.exclude_self_hits = opts.flag("exclude-self");
    config.partition_paths = db.volume_paths;
    config.output_dir = opts.str("out");
    config.locality_aware = opts.flag("locality");
    config.scheduler = sched::parse_policy(opts.str("scheduler"));

    // Indexed-FASTA input: count records, derive the block schedule.
    const blast::FastaIndex index(opts.str("query"),
                                  prot_requested ? blast::SeqType::Protein
                                                 : blast::SeqType::Dna);
    const auto block = static_cast<std::uint64_t>(opts.integer("block"));
    config.query_fasta = opts.str("query");
    if (opts.flag("tapered")) {
      config.query_block_sizes = blast::tapered_block_sizes(
          index.num_records(), block, std::max<std::uint64_t>(1, block / 16));
    } else {
      for (std::size_t done = 0; done < index.num_records(); done += block) {
        config.query_block_sizes.push_back(
            std::min<std::uint64_t>(block, index.num_records() - done));
      }
    }

    config.blocks_per_iteration =
        static_cast<std::size_t>(opts.integer("blocks-per-iter"));
    if (opts.str("virtual-rate") != "auto") {
      config.virtual_seconds_per_cell = opts.real("virtual-rate");
    }
    // Not part of the checkpoint fingerprint: every level computes the
    // same bits, so a resume may legitimately switch levels.
    simd::set_isa(simd::parse_isa(opts.str("simd")));
    MRBIO_LOG(Info, "simd level: ", simd::isa_name(simd::active_isa()));
    rt::LaunchConfig lc;
    lc.backend = rt::backend_from_name(opts.str("backend"));
    lc.nranks = opts.integer("ranks") > 0 ? static_cast<int>(opts.integer("ranks"))
                                          : rt::default_ranks(lc.backend);
    const int ranks = lc.nranks;
    if (!opts.str("faults").empty()) {
      const std::string& spec = opts.str("faults");
      fault::FaultPlan plan = std::filesystem::exists(spec)
                                  ? fault::FaultPlan::from_file(spec)
                                  : fault::FaultPlan::parse(spec);
      // Crash/message faults need a fault-tolerant scheduling protocol
      // (master ledger, or steal backed by the ledger) to make progress;
      // kill/corrupt-only plans exercise checkpoint/restart and run on
      // whichever scheduler the other flags select.
      const bool needs_ft = plan.requires_ft();
      MRBIO_REQUIRE(!needs_ft || config.scheduler == sched::Policy::Auto ||
                        sched::is_remote(config.scheduler),
                    "crash/message faults require --scheduler "
                    "auto/master/master-ft/steal (recovery needs a remote "
                    "scheduling protocol)");
      injector = std::make_unique<fault::Injector>(std::move(plan));
      lc.injector = injector.get();
      if (needs_ft) {
        config.ft.enabled = true;
        // "auto" (task_timeout <= 0) tracks ~4x the p99 of observed
        // grant-to-commit service times instead of a fixed guess.
        config.ft.task_timeout =
            opts.str("ft-timeout") == "auto" ? 0.0 : opts.real("ft-timeout");
        config.ft.max_retries = static_cast<int>(opts.integer("ft-retries"));
        config.ft.ledger_ranks = static_cast<int>(opts.integer("ledger-ranks"));
        if (!opts.str("heartbeat").empty()) {
          config.ft.heartbeat = fault::HeartbeatConfig::parse(opts.str("heartbeat"));
        }
        // The sharded steal ledger elects a deterministic successor for a
        // dead shard owner, so rank-0 crash plans are legal under it.
        lc.master_failover = config.scheduler == sched::Policy::Steal;
      }
    }
    // The fingerprint ties a checkpoint dir to one run configuration:
    // resuming after changing the inputs or the block schedule would
    // splice incompatible partial outputs, so open() rejects a mismatch.
    ckpt::CheckpointConfig ckpt_config;
    ckpt_config.dir = opts.str("checkpoint-dir");
    ckpt_config.interval = opts.real("checkpoint-interval");
    ckpt_config.resume = opts.flag("resume");
    MRBIO_REQUIRE(!ckpt_config.resume || !ckpt_config.dir.empty(),
                  "--resume requires --checkpoint-dir");
    ckpt::Checkpointer checkpointer(ckpt_config, injector.get());
    if (checkpointer.enabled()) {
      std::ostringstream fp;
      fp << "mrblast query=" << opts.str("query") << " db=" << opts.str("db")
         << " ranks=" << ranks << " evalue=" << opts.real("evalue")
         << " max-hits=" << opts.integer("max-hits")
         << " filter=" << config.options.filter_low_complexity
         << " exclude-self=" << config.options.exclude_self_hits
         << " locality=" << config.locality_aware
         << " scheduler=" << sched::policy_name(config.scheduler)
         << " blocks-per-iter=" << config.blocks_per_iteration << " blocks=";
      for (const auto b : config.query_block_sizes) fp << b << ',';
      checkpointer.open(fp.str());
      config.checkpointer = &checkpointer;
      lc.checkpointing = true;
    }
    if (!checkpointer.resuming()) std::filesystem::remove_all(config.output_dir);
    // --report implies a Full-level recorder (the critical-path walk needs
    // per-message events) and a metrics registry; both only read the active
    // backend's clock, so they never change the measured times.
    const bool want_report = opts.flag("report") || !opts.str("report-json").empty();
    std::unique_ptr<trace::Recorder> recorder;
    if (!opts.str("trace").empty() || want_report) {
      const bool full = opts.flag("trace-full") || want_report;
      recorder = std::make_unique<trace::Recorder>(
          ranks, full ? trace::Level::Full : trace::Level::Phases);
      lc.recorder = recorder.get();
    }
    obs::Registry registry;
    if (want_report || !opts.str("metrics-out").empty()) lc.metrics = &registry;
    std::unique_ptr<obs::TimeSeries> timeseries;
    if (!opts.str("timeseries-out").empty() || want_report) {
      timeseries = std::make_unique<obs::TimeSeries>(ranks);
      lc.timeseries = timeseries.get();
    }
    lc.eventlog = eventlog.get();
    std::uint64_t total = 0;
    std::uint64_t failed = 0;
    std::vector<std::string> files(static_cast<std::size_t>(ranks));
    const rt::LaunchResult run = rt::launch(lc, [&](rt::Rank& rank) {
      mpi::Comm comm(rank);
      const auto result = mrblast::run_blast_mr(comm, config);
      files[static_cast<std::size_t>(rank.rank())] = result.output_file;
      if (rank.rank() == 0) {
        total = result.total_hsps;
        failed = result.failed_tasks;
      }
    });

    std::printf("searched %zu queries (%zu blocks) x %zu partitions on %d %s ranks\n",
                index.num_records(), config.query_block_sizes.size(),
                db.volume_paths.size(), ranks, rt::backend_name(lc.backend));
    std::printf("%llu HSPs in %.3f %s seconds; output files:\n",
                static_cast<unsigned long long>(total), run.elapsed,
                lc.backend == rt::Backend::Sim ? "virtual" : "wall-clock");
    for (const auto& f : files) {
      if (!f.empty()) std::printf("  %s\n", f.c_str());
    }
    if (injector) {
      const fault::InjectorStats fs = injector->stats();
      std::printf("faults fired: %llu crashes, %llu drops, %llu duplicates, "
                  "%llu delays, %llu kills, %llu corruptions\n",
                  static_cast<unsigned long long>(fs.crashes_fired),
                  static_cast<unsigned long long>(fs.messages_dropped),
                  static_cast<unsigned long long>(fs.messages_duplicated),
                  static_cast<unsigned long long>(fs.messages_delayed),
                  static_cast<unsigned long long>(fs.kills_fired),
                  static_cast<unsigned long long>(fs.checkpoints_corrupted));
      if (failed > 0) {
        std::printf("WARNING: %llu work units abandoned after %d retries; "
                    "the hit files are PARTIAL\n",
                    static_cast<unsigned long long>(failed),
                    config.ft.max_retries);
      }
    }
    if (checkpointer.enabled()) {
      const ckpt::CheckpointStats cs = checkpointer.stats();
      std::printf("checkpoint: %llu records (%llu bytes) written, "
                  "%llu records (%llu bytes) replayed, %llu corrupt dropped\n",
                  static_cast<unsigned long long>(cs.records_written),
                  static_cast<unsigned long long>(cs.bytes_written),
                  static_cast<unsigned long long>(cs.records_replayed),
                  static_cast<unsigned long long>(cs.bytes_replayed),
                  static_cast<unsigned long long>(cs.corrupt_records));
      checkpointer.cleanup_on_success();
    }
    if (recorder && !opts.str("trace").empty()) {
      trace::write_chrome_trace(opts.str("trace"), *recorder);
      trace::print_summary(stdout, trace::summarize(*recorder));
      std::printf("trace: %s (load in chrome://tracing or Perfetto)\n",
                  opts.str("trace").c_str());
    }
    if (want_report) {
      const obs::Report report = obs::analyze(*recorder);
      if (opts.flag("report")) {
        obs::print_report(stdout, report);
        std::printf("\n-- metrics --\n");
        registry.print(stdout);
      }
      if (!opts.str("report-json").empty()) {
        std::FILE* f = std::fopen(opts.str("report-json").c_str(), "w");
        MRBIO_REQUIRE(f != nullptr, "cannot open ", opts.str("report-json"));
        obs::write_report_json(f, report, &registry, timeseries.get());
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("report: %s\n", opts.str("report-json").c_str());
      }
    }
    if (!opts.str("timeseries-out").empty()) {
      std::FILE* f = std::fopen(opts.str("timeseries-out").c_str(), "w");
      MRBIO_REQUIRE(f != nullptr, "cannot open ", opts.str("timeseries-out"));
      timeseries->write_jsonl(f);
      std::fclose(f);
      std::printf("timeseries: %s\n", opts.str("timeseries-out").c_str());
    }
    if (!opts.str("metrics-out").empty()) {
      std::FILE* f = std::fopen(opts.str("metrics-out").c_str(), "w");
      MRBIO_REQUIRE(f != nullptr, "cannot open ", opts.str("metrics-out"));
      registry.write_json(f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("metrics: %s\n", opts.str("metrics-out").c_str());
    }
    return 0;
  } catch (const fault::JobKillSignal& e) {
    MRBIO_LOG(Warn, "mrblast_search: job killed: ", e.what());
    return 3;
  } catch (const std::exception& e) {
    // A kill can surface as a secondary error (e.g. the sim engine reports
    // the surviving ranks' deadlock before the kill signal itself).
    if (injector != nullptr && injector->stats().kills_fired > 0) {
      MRBIO_LOG(Warn, "mrblast_search: job killed: ", e.what(),
                " (restart with --resume to continue)");
      return 3;
    }
    MRBIO_LOG(ErrorLevel, "mrblast_search: ", e.what());
    return 1;
  }
}
