// shred_fasta: the paper's query-preparation step -- shreds sequences into
// overlapping fragments simulating sequencing reads ("shredded them into
// 400 bp fragments overlapping by 200 bp").
//
//   shred_fasta --in genomes.fa --out reads.fa [--length 400]
//               [--overlap 200] [--min-length 1]
#include <cstdio>

#include "blast/sequence.hpp"
#include "common/log.hpp"
#include "common/options.hpp"

using namespace mrbio;

int main(int argc, char** argv) {
  Options opts("shred_fasta: shred sequences into overlapping read-like fragments");
  opts.add("in", "", "input FASTA (required)");
  opts.add("out", "", "output FASTA (required)");
  opts.add("length", "400", "fragment length (bp)");
  opts.add("overlap", "200", "overlap between consecutive fragments (bp)");
  opts.add("min-length", "1", "drop tail fragments shorter than this");
  opts.add("type", "nucl", "sequence type: nucl or prot");
  try {
    if (!opts.parse(argc, argv)) return 0;
    MRBIO_REQUIRE(!opts.str("in").empty() && !opts.str("out").empty(),
                  "--in and --out are required\n", opts.usage());
    const blast::SeqType type =
        opts.str("type") == "prot" ? blast::SeqType::Protein : blast::SeqType::Dna;
    const auto seqs = blast::read_fasta_file(opts.str("in"), type);
    const auto frags = blast::shred(seqs, static_cast<std::size_t>(opts.integer("length")),
                                    static_cast<std::size_t>(opts.integer("overlap")),
                                    static_cast<std::size_t>(opts.integer("min-length")));
    blast::write_fasta_file(opts.str("out"), frags, type);
    std::printf("shredded %zu sequence(s) into %zu fragment(s) -> %s\n", seqs.size(),
                frags.size(), opts.str("out").c_str());
    return 0;
  } catch (const std::exception& e) {
    MRBIO_LOG(ErrorLevel, "shred_fasta: ", e.what());
    return 1;
  }
}
