// mrgraph_build: all-vs-all similarity-graph driver and the acceptance
// benchmark for the communication-efficient shuffle. Compares every
// sequence against every other (seed-and-extend, ungapped) and builds the
// edge list with one MapReduce cycle whose collate() can run in any of
// the shuffle modes:
//
//   mrgraph_build --nseq 96 --family 8 --backend sim --report
//   mrgraph_build --fasta frags.fa --combiner --exchange tree --radix 4
//
// The printed edge checksum is identical across backends, rank counts and
// shuffle modes; the shuffle counters (wire bytes, combiner savings,
// stages, compression ratio) quantify what each mode changes.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>

#include "blast/sequence.hpp"
#include "ckpt/ckpt.hpp"
#include "common/log.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "fault/detector.hpp"
#include "fault/fault.hpp"
#include "mrgraph/mrgraph.hpp"
#include "obs/analysis.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "rt/backend.hpp"
#include "simd/simd.hpp"
#include "trace/trace.hpp"

using namespace mrbio;

int main(int argc, char** argv) {
  Options opts("mrgraph_build: all-vs-all similarity graph over MapReduce");
  opts.add("fasta", "", "input FASTA file (DNA); omit for a synthetic family set");
  opts.add("nseq", "96", "synthetic input: total sequences");
  opts.add("family", "8", "synthetic input: sequences per homologous family");
  opts.add("seqlen", "200", "synthetic input: residues per sequence");
  opts.add("mutate", "0.05", "synthetic input: per-residue substitution rate");
  opts.add("seed", "42", "synthetic input: random seed");
  opts.add("block", "16", "sequences per block (one task = one block pair)");
  opts.add("word", "8", "seed word length (exact match)");
  opts.add("min-score", "24", "minimum ungapped score for an edge");
  opts.add("xdrop", "20", "X-drop cutoff of the extension");
  opts.add("backend", "sim", "runtime backend: sim or native");
  opts.add("ranks", "0", "ranks; 0 = backend default");
  opts.add("style", "chunk", "map style: chunk or master");
  opts.add("scheduler", "auto",
           "map scheduler: auto|chunk|stride|master|master-ft|steal "
           "(auto follows --style)");
  opts.add_flag("combiner", "pre-aggregate same-key pairs per destination");
  opts.add("exchange", "flat", "exchange algorithm: flat or tree");
  opts.add("radix", "2", "tree exchange radix (>= 2)");
  opts.add_flag("compress", "varint/RLE-compress shuffle payloads and spill pages");
  opts.add_flag("overlap-spill", "overlap post-exchange spill I/O with the exchange");
  opts.add("compute-cell", "0", "virtual seconds per alignment cell (sim timeline)");
  opts.add("memsize", "0", "KV memory budget in bytes (0 = default)");
  opts.add_flag("page-to-disk", "page KV stores to spill files");
  opts.add("out-dir", "", "write per-rank edge files here (empty = none)");
  opts.add("trace", "", "write a Chrome-tracing JSON timeline to this path");
  opts.add_flag("report", "print a critical-path / idle-time performance report");
  opts.add("report-json", "", "write the performance report as JSON to this path");
  opts.add("timeseries-out", "",
           "write sampled per-rank counter time series as JSONL to this path");
  opts.add("metrics-out", "", "write the raw metrics registry as JSON to this path");
  opts.add("log-json", "",
           "also write every log line as a structured JSONL event to this path");
  opts.add("faults", "", "fault plan: spec/JSON string, or a path to a plan file; "
                         "crash/drop plans enable the fault-tolerant scheduler");
  opts.add("ft-timeout", "auto",
           "with --faults: seconds before an outstanding task is retried; "
           "auto adapts to ~4x the p99 of observed task cost (5 s until "
           "enough tasks have completed)");
  opts.add("ft-retries", "3", "with --faults: retries per task before it is abandoned");
  opts.add("ledger-ranks", "0",
           "with --scheduler steal faults: ranks owning a commit-ledger "
           "shard (0 = every rank owns its seeded range; 1 = single "
           "coordinator)");
  opts.add("heartbeat", "",
           "phi-accrual failure detection piggybacked on scheduler traffic, "
           "e.g. \"interval=0.5,phi=6,samples=4\" or \"on\" (empty = off)");
  opts.add("checkpoint-dir", "", "durable checkpoint directory; enables checkpoint/restart");
  opts.add("checkpoint-interval", "5",
           "min virtual seconds between map-log flushes (0 = flush every task)");
  opts.add_flag("resume", "continue from the checkpoint in --checkpoint-dir");
  opts.add("simd", "auto",
           "SIMD level for the extension kernels: scalar|sse|avx2|auto "
           "(auto = best this CPU supports; results are bit-identical "
           "across levels)");
  opts.add("log", "", "log level: debug/info/warn/error/off");
  std::unique_ptr<fault::Injector> injector;
  try {
    if (!opts.parse(argc, argv)) return 0;
    if (!opts.str("log").empty()) set_log_level(parse_log_level(opts.str("log")));
    simd::set_isa(simd::parse_isa(opts.str("simd")));
    MRBIO_LOG(Info, "simd level: ", simd::isa_name(simd::active_isa()));
    // Install the event-log sink before anything that can emit MRBIO_LOG
    // lines (fault-plan parsing), so --log-json captures the whole run,
    // not just the launch.
    std::unique_ptr<obs::EventLog> eventlog;
    if (!opts.str("log-json").empty()) {
      eventlog = std::make_unique<obs::EventLog>(opts.str("log-json"));
      set_log_sink(&obs::EventLog::log_sink, eventlog.get());
    }
    // Uninstall the sink before `eventlog` is destroyed, on every exit path.
    const auto sink_guard = std::unique_ptr<void, void (*)(void*)>(
        eventlog.get(), [](void* p) {
          if (p != nullptr) set_log_sink(nullptr, nullptr);
        });

    mrgraph::GraphConfig config;
    if (!opts.str("fasta").empty()) {
      config.sequences = blast::read_fasta_file(opts.str("fasta"), blast::SeqType::Dna);
    } else {
      // Families of mutated copies of a common ancestor: guaranteed edge
      // structure (dense within a family, none across), deterministic in
      // the seed.
      Rng rng(static_cast<std::uint64_t>(opts.integer("seed")));
      const auto nseq = static_cast<std::size_t>(opts.integer("nseq"));
      const auto family = static_cast<std::size_t>(opts.integer("family"));
      const auto seqlen = static_cast<std::size_t>(opts.integer("seqlen"));
      blast::Sequence ancestor;
      for (std::size_t i = 0; i < nseq; ++i) {
        if (family == 0 || i % family == 0) {
          ancestor = blast::random_sequence(rng, "f" + std::to_string(i), seqlen,
                                            blast::SeqType::Dna);
        }
        config.sequences.push_back(blast::mutate(rng, ancestor,
                                                 "s" + std::to_string(i),
                                                 opts.real("mutate"),
                                                 blast::SeqType::Dna));
      }
    }
    config.block_size = static_cast<std::size_t>(opts.integer("block"));
    config.word_len = static_cast<std::size_t>(opts.integer("word"));
    config.min_score = static_cast<int>(opts.integer("min-score"));
    config.xdrop = static_cast<int>(opts.integer("xdrop"));
    config.output_dir = opts.str("out-dir");
    config.virtual_seconds_per_cell = opts.real("compute-cell");
    config.memsize_bytes = static_cast<std::uint64_t>(opts.integer("memsize"));
    config.page_to_disk = opts.flag("page-to-disk");
    MRBIO_REQUIRE(opts.str("style") == "chunk" || opts.str("style") == "master",
                  "--style must be chunk or master");
    config.map_style = opts.str("style") == "chunk" ? mrmpi::MapStyle::Chunk
                                                    : mrmpi::MapStyle::MasterWorker;
    config.scheduler = sched::parse_policy(opts.str("scheduler"));
    config.shuffle.combiner = opts.flag("combiner");
    MRBIO_REQUIRE(opts.str("exchange") == "flat" || opts.str("exchange") == "tree",
                  "--exchange must be flat or tree");
    config.shuffle.exchange = opts.str("exchange") == "tree"
                                  ? mrmpi::ExchangeMode::Tree
                                  : mrmpi::ExchangeMode::Flat;
    config.shuffle.tree_radix = static_cast<int>(opts.integer("radix"));
    config.shuffle.compress = opts.flag("compress");
    config.shuffle.overlap_spill = opts.flag("overlap-spill");

    rt::LaunchConfig lc;
    lc.backend = rt::backend_from_name(opts.str("backend"));
    lc.nranks = opts.integer("ranks") > 0 ? static_cast<int>(opts.integer("ranks"))
                                          : rt::default_ranks(lc.backend);
    if (!opts.str("faults").empty()) {
      const std::string& spec = opts.str("faults");
      fault::FaultPlan plan = std::filesystem::exists(spec)
                                  ? fault::FaultPlan::from_file(spec)
                                  : fault::FaultPlan::parse(spec);
      // Crash/drop faults need a fault-tolerant scheduling protocol (the
      // master ledger, or steal backed by the sharded commit ledger) to
      // make progress; dup/delay/slow plans only shape the timeline and
      // run on any scheduler — except dup under plain steal, where the
      // ledger is what absorbs the duplicated claims. kill/corrupt plans
      // exercise checkpoint/restart and need --checkpoint-dir (validated
      // at launch).
      bool needs_ft = !plan.crashes.empty();
      for (const fault::MessageFault& m : plan.messages) {
        needs_ft = needs_ft || m.kind == fault::MessageFault::Kind::Drop ||
                   (config.scheduler == sched::Policy::Steal &&
                    m.kind == fault::MessageFault::Kind::Duplicate);
      }
      const bool remote_sched =
          sched::is_remote(config.scheduler) ||
          (config.scheduler == sched::Policy::Auto &&
           config.map_style == mrmpi::MapStyle::MasterWorker);
      MRBIO_REQUIRE(!needs_ft || remote_sched,
                    "crash/drop faults require --style master or --scheduler "
                    "master/master-ft/steal (recovery needs a remote "
                    "scheduling protocol)");
      injector = std::make_unique<fault::Injector>(std::move(plan));
      lc.injector = injector.get();
      if (needs_ft) {
        config.ft.enabled = true;
        // "auto" (task_timeout <= 0) tracks ~4x the p99 of observed
        // grant-to-commit service times instead of a fixed guess.
        config.ft.task_timeout =
            opts.str("ft-timeout") == "auto" ? 0.0 : opts.real("ft-timeout");
        config.ft.max_retries = static_cast<int>(opts.integer("ft-retries"));
        config.ft.ledger_ranks = static_cast<int>(opts.integer("ledger-ranks"));
        if (!opts.str("heartbeat").empty()) {
          config.ft.heartbeat = fault::HeartbeatConfig::parse(opts.str("heartbeat"));
        }
        // The sharded steal ledger elects a deterministic successor for a
        // dead shard owner, so rank-0 crash plans are legal under it.
        lc.master_failover = config.scheduler == sched::Policy::Steal;
      }
    }
    // Fingerprint: a checkpoint dir is bound to one graph configuration;
    // resuming with different inputs or cut-offs is rejected.
    ckpt::CheckpointConfig ckpt_config;
    ckpt_config.dir = opts.str("checkpoint-dir");
    ckpt_config.interval = opts.real("checkpoint-interval");
    ckpt_config.resume = opts.flag("resume");
    MRBIO_REQUIRE(!ckpt_config.resume || !ckpt_config.dir.empty(),
                  "--resume requires --checkpoint-dir");
    ckpt::Checkpointer checkpointer(ckpt_config, injector.get());
    if (checkpointer.enabled()) {
      std::ostringstream fp;
      fp << "mrgraph input=" << (opts.str("fasta").empty() ? "synthetic" : opts.str("fasta"))
         << " nseq=" << config.sequences.size() << " seed=" << opts.integer("seed")
         << " mutate=" << opts.real("mutate") << " block=" << config.block_size
         << " word=" << config.word_len << " min-score=" << config.min_score
         << " xdrop=" << config.xdrop << " ranks=" << lc.nranks
         << " style=" << opts.str("style")
         << " scheduler=" << sched::policy_name(config.scheduler);
      checkpointer.open(fp.str());
      config.checkpointer = &checkpointer;
      lc.checkpointing = true;
    }
    const bool want_report = opts.flag("report") || !opts.str("report-json").empty();
    std::unique_ptr<trace::Recorder> recorder;
    if (!opts.str("trace").empty() || want_report) {
      const bool full = want_report;
      recorder = std::make_unique<trace::Recorder>(
          lc.nranks, full ? trace::Level::Full : trace::Level::Phases);
      lc.recorder = recorder.get();
    }
    obs::Registry registry;
    if (want_report || !opts.str("metrics-out").empty()) lc.metrics = &registry;
    std::unique_ptr<obs::TimeSeries> timeseries;
    if (!opts.str("timeseries-out").empty() || want_report) {
      timeseries = std::make_unique<obs::TimeSeries>(lc.nranks);
      lc.timeseries = timeseries.get();
    }
    lc.eventlog = eventlog.get();

    mrgraph::GraphStats stats;
    const rt::LaunchResult run = rt::launch(lc, [&](rt::Rank& rank) {
      mpi::Comm comm(rank);
      mrgraph::GraphStats local = mrgraph::build_graph_mr(comm, config);
      if (rank.rank() == 0) stats = std::move(local);
    });

    std::printf("sequences %zu  blocks of %zu  ranks %d (%s)\n",
                config.sequences.size(), config.block_size, lc.nranks,
                rt::backend_name(lc.backend));
    std::printf("pairs %llu  vertices %llu  edges %llu  checksum %016llx\n",
                static_cast<unsigned long long>(stats.pairs_compared),
                static_cast<unsigned long long>(stats.vertices),
                static_cast<unsigned long long>(stats.edges),
                static_cast<unsigned long long>(stats.edge_checksum));
    std::printf("shuffle: wire %llu nominal bytes, combiner saved %llu, %llu stages\n",
                static_cast<unsigned long long>(stats.aggregate_bytes_sent),
                static_cast<unsigned long long>(stats.shuffle_combined_bytes),
                static_cast<unsigned long long>(stats.shuffle_stages));
    std::printf("elapsed %.6f %s seconds\n", run.elapsed,
                lc.backend == rt::Backend::Sim ? "virtual" : "wall-clock");

    if (recorder) {
      if (!opts.str("trace").empty()) {
        trace::write_chrome_trace(opts.str("trace"), *recorder);
        std::printf("trace written to %s\n", opts.str("trace").c_str());
      }
      if (want_report) {
        const obs::Report report = obs::analyze(*recorder);
        if (opts.flag("report")) obs::print_report(stdout, report);
        if (!opts.str("report-json").empty()) {
          std::FILE* f = std::fopen(opts.str("report-json").c_str(), "w");
          MRBIO_REQUIRE(f != nullptr, "cannot open ", opts.str("report-json"));
          obs::write_report_json(f, report, &registry, timeseries.get());
          std::fclose(f);
          std::printf("report JSON written to %s\n", opts.str("report-json").c_str());
        }
      }
    }
    if (!opts.str("timeseries-out").empty()) {
      std::FILE* f = std::fopen(opts.str("timeseries-out").c_str(), "w");
      MRBIO_REQUIRE(f != nullptr, "cannot open ", opts.str("timeseries-out"));
      timeseries->write_jsonl(f);
      std::fclose(f);
      std::printf("timeseries written to %s\n", opts.str("timeseries-out").c_str());
    }
    if (!opts.str("metrics-out").empty()) {
      std::FILE* f = std::fopen(opts.str("metrics-out").c_str(), "w");
      MRBIO_REQUIRE(f != nullptr, "cannot open ", opts.str("metrics-out"));
      registry.write_json(f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("metrics written to %s\n", opts.str("metrics-out").c_str());
    }
    return 0;
  } catch (const fault::JobKillSignal& e) {
    MRBIO_LOG(Warn, "mrgraph_build: job killed: ", e.what());
    return 3;
  } catch (const Error& e) {
    // A kill can surface as a secondary error (e.g. the sim engine reports
    // the surviving ranks' deadlock before the kill signal itself).
    if (injector != nullptr && injector->stats().kills_fired > 0) {
      MRBIO_LOG(Warn, "mrgraph_build: job killed: ", e.what(),
                " (restart with --resume to continue)");
      return 3;
    }
    std::fprintf(stderr, "mrgraph_build: %s\n", e.what());
    return 1;
  }
}
