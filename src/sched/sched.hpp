// Pluggable task-scheduling subsystem for mrmpi's map() phase.
//
// mapreduce.cpp used to hard-wire three schedulers (static chunk/stride,
// the master-worker loop, and the fault-tolerant master-worker protocol)
// into one 1.4k-line file. This subsystem extracts them behind one
// interface — task acquisition, completion/commit, termination — and adds
// a fourth, decentralized policy: randomized work stealing with
// Dijkstra/Safra token termination detection.
//
// The host (mrmpi::MapReduce) stays in charge of everything KV- and
// checkpoint-shaped through the Executor callback: schedulers decide
// *which rank runs which task when*; the executor decides what running,
// staging and committing a task means. The exactly-once guarantees of the
// fault-tolerant paths are therefore scheduler-independent: steals are
// claims, commits still go through the ledger on rank 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fault/detector.hpp"
#include "mpi/comm.hpp"

namespace mrbio::trace {
class Recorder;
}

namespace mrbio::sched {

/// Which scheduler runs a map phase. `Auto` defers to the host's legacy
/// MapStyle so existing configs keep their exact behaviour.
enum class Policy {
  Auto,      ///< derive from MapReduceConfig::map_style
  Chunk,     ///< contiguous static blocks (Sandia mapstyle 0)
  Stride,    ///< task i -> rank i % P (Sandia mapstyle 1)
  Master,    ///< rank 0 grants tasks to idle workers (mapstyle 2)
  MasterFt,  ///< master-worker with the exactly-once fault-tolerant ledger
  Steal,     ///< decentralized work stealing (+ ledger commits when ft.enabled)
};

/// Parses "auto|chunk|stride|master|master-ft|steal" (as accepted by the
/// drivers' --scheduler flag). Throws InputError on anything else.
Policy parse_policy(const std::string& name);

/// Canonical CLI spelling of `policy`.
const char* policy_name(Policy policy);

/// Fault tolerance of the remote protocols (master-worker and steal).
///
/// When enabled, scheduling runs through a failure-aware protocol: every
/// grant carries a sequence number and a commit decision, workers buffer
/// each task's emissions in a staging store that is absorbed only after
/// rank 0 commits the task (the exactly-once work ledger), lost protocol
/// messages are resent, tasks owned by crashed or timed-out workers are
/// reassigned with exponential backoff, and a task that exhausts its
/// retry budget is recorded as failed instead of wedging the run
/// (graceful degradation to partial results).
///
/// Timeouts are in the backend's time base: virtual seconds on the DES,
/// wall-clock seconds on the native backend.
struct FtConfig {
  bool enabled = false;
  /// Base service deadline for one task (grant to completion report).
  /// <= 0 selects the adaptive default: 4x the p99 of the observed
  /// grant-to-commit service times (with a floor of the worker poll and a
  /// 5 s bootstrap until enough tasks have completed).
  double task_timeout = 5.0;
  /// Deadline multiplier per extra attempt of the same task.
  double backoff = 2.0;
  /// Extra attempts per task beyond the first; a task failing
  /// 1 + max_retries times is declared failed.
  int max_retries = 3;
  /// Worker-side poll interval: retry-later naps and request resends.
  double worker_poll = 0.05;
  /// Consecutive unanswered request resends before a worker gives up and
  /// fails the run (the master is gone for good).
  int max_resends = 20;
  /// Sharded steal-ft ledger: how many ranks own a slice of the commit
  /// ledger. 0 = every rank owns its seeded task range (fully
  /// decentralized); 1 reproduces the single-coordinator shape.
  int ledger_ranks = 0;
  /// Optional phi-accrual failure detection piggybacked on protocol
  /// traffic; drives early worker eviction and shard failover. Defaults
  /// off: drivers enable it via --heartbeat.
  fault::HeartbeatConfig heartbeat;
};

/// Tuning of the work-stealing policy.
struct StealConfig {
  /// Maximum tasks transferred per successful steal (the victim never
  /// gives away more than half of its deque).
  int batch = 4;
  /// Idle nap after an empty steal attempt, growing exponentially up to
  /// backoff_max so an idle endgame does not flood the network.
  double backoff_init = 0.002;
  double backoff_max = 0.05;
  /// Fault-tolerant mode only: unanswered resends of one steal request
  /// before the thief gives up on that victim (a victim busy inside a
  /// long task serves requests only between tasks). Abandoned requests
  /// lose nothing — un-delivered stolen tasks stay Pending in the ledger.
  int max_resends = 3;
  /// Victim-selection RNG seed (mixed with rank and map epoch).
  std::uint64_t seed = 0x5eed5eedULL;
};

/// One task whose output was restored from a checkpoint by `owner`: the
/// scheduler must not run it again. The fault-tolerant ledger records it
/// as committed by `owner` at incarnation `owner_inc`, so a later crash
/// of the owner reverts it exactly like any freshly committed task.
struct DoneTask {
  std::uint64_t task;
  int owner;
  std::uint32_t owner_inc;
};

/// Per-map scheduler statistics, merged into MapReduceStats by the host.
/// The fault counters are signed because a task can un-fail within one
/// map (a presumed-lost attempt commits after all); the per-map net is
/// never negative.
struct SchedStats {
  std::int64_t tasks_retried = 0;
  std::int64_t worker_deaths = 0;
  std::int64_t tasks_failed = 0;
  std::uint64_t steals_attempted = 0;  ///< steal requests sent by this rank
  std::uint64_t steals_succeeded = 0;  ///< requests that returned >= 1 task
  std::uint64_t tasks_stolen = 0;      ///< tasks this rank acquired by stealing
  std::uint64_t evictions = 0;   ///< workers evicted on phi-accrual suspicion
  std::uint64_t failovers = 0;   ///< ledger shards adopted from a dead owner
};

/// How the host runs and commits tasks. Schedulers never touch KV or
/// checkpoint state directly; they call these hooks.
class Executor {
 public:
  virtual ~Executor() = default;
  /// Runs one task straight into the final output (journaling it and
  /// skipping checkpoint-restored tasks). For paths without a commit
  /// protocol: static partitions, the plain master-worker, non-FT steal,
  /// and the ledger's rank-0 endgame.
  virtual void run_direct(std::uint64_t task, bool retry) = 0;
  /// Runs one task into the (single) staging buffer; its emissions stay
  /// invisible until commit_staged().
  virtual void run_staged(std::uint64_t task, bool retry) = 0;
  /// Journals and absorbs the staged task into the final output.
  virtual void commit_staged(std::uint64_t task) = 0;
  /// Drops the staged emissions (another attempt won the commit race).
  virtual void discard_staged() = 0;
  /// Simulated process death: every in-memory result this rank holds —
  /// staged and committed — is gone.
  virtual void on_crash() = 0;

  // Sharded-ledger journal hooks. A shard owner journals every commit
  // decision to its own CRC32-framed log BEFORE granting it (write-ahead),
  // so a successor replaying the log after the owner's death never
  // re-grants a committed task. All three default to "no durable journal"
  // so executors without checkpointing need not care.
  /// True when shard journals are durable (a checkpoint dir is active).
  virtual bool shard_journal_enabled() const { return false; }
  /// Replays the existing journal of `shard`, invoking `fn(payload)` per
  /// intact record, and positions the journal for appending after the
  /// last intact record (torn/corrupt tails are truncated).
  virtual void shard_journal_replay(
      int shard, const std::function<void(const std::vector<std::byte>&)>& fn) {
    (void)shard;
    (void)fn;
  }
  /// Appends one framed record to `shard`'s journal and syncs it.
  virtual void shard_journal_append(int shard, const std::vector<std::byte>& payload) {
    (void)shard;
    (void)payload;
  }
};

/// Master-side view of one worker in the fault-tolerant protocol.
struct FtWorkerView {
  std::uint32_t incarnation = 0;
  std::uint32_t last_seq = 0;  ///< newest request seq answered (0 = none)
  std::vector<std::byte> cached_grant;  ///< replay buffer for last_seq
  bool stopped = false;  ///< told to leave; may return with a new incarnation
  bool dead = false;     ///< announced a permanent crash
};

/// Victim-side replay state for one thief (fault-tolerant steal): a
/// resent steal request is answered with the cached response so a lost
/// response never loses the tasks it carried.
struct StealPeerView {
  std::uint32_t last_seq = 0;
  std::vector<std::byte> cached_resp;
};

/// Protocol state that must outlive a single map() call. Sequence numbers
/// are monotone for the life of the host object so a delayed message from
/// map N can never alias a fresh exchange in map N+1; the epoch stamps
/// every steal-layer message so stragglers from an earlier map are
/// recognized and dropped.
struct ProtocolState {
  std::vector<FtWorkerView> workers;  ///< rank 0: per-worker ledger transport
  std::uint32_t seq = 0;              ///< worker: last ledger request seq sent
  std::uint32_t incarnation = 0;      ///< worker: respawn count
  std::uint32_t steal_seq = 0;        ///< thief: last steal request seq sent
  std::uint32_t epoch = 0;            ///< map phases started on this rank
  std::map<int, StealPeerView> steal_peers;  ///< victim: replay cache per thief

  // Sharded steal-ft ledger state. Client sequence numbers and the shard
  // owners' replay caches model supervisor-restored transport state (like
  // steal_peers); death knowledge and shard adoption must survive across
  // maps so a rank that died in map N stays dead — and its shard stays
  // with the successor — in map N+1.
  std::map<int, std::uint32_t> owner_seq;    ///< client: last req seq per owner
  std::map<int, FtWorkerView> shard_clients; ///< owner: replay cache per client
  std::vector<std::uint8_t> peers_dead;      ///< acked permanent deaths, by rank
};

/// Affinity: task -> locality key (same signature as mrmpi::AffinityFn).
using AffinityFn = std::function<std::uint64_t(std::uint64_t itask)>;

/// Everything a scheduler needs for one collective map phase.
struct MapContext {
  mpi::Comm& comm;
  std::uint64_t ntasks = 0;
  /// Optional locality function; honoured by the master policies, ignored
  /// by static partitions and steal.
  const AffinityFn* affinity = nullptr;
  FtConfig ft;
  StealConfig steal;
  /// Null disables the scheduler's phase spans (mw_service, steal_wait...).
  trace::Recorder* rec = nullptr;
  Executor* exec = nullptr;
  ProtocolState* proto = nullptr;
  /// Checkpoint-restored tasks (global set on every rank when the host
  /// ran the shared replay; never hand these out again).
  const std::vector<DoneTask>* restored = nullptr;
  SchedStats* stats = nullptr;
  /// Rank 0, fault-tolerant paths: tasks that exhausted their retries.
  std::vector<std::uint64_t>* failed = nullptr;
};

/// One scheduling strategy. execute() is collective over ctx.comm: every
/// rank calls it once per map phase and it returns only when this rank is
/// released (all tasks settled or this rank told to stop).
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual const char* name() const = 0;
  virtual void execute(MapContext& ctx) = 0;
};

/// Creates the strategy for `policy`. `policy` must be concrete
/// (not Auto — the host resolves Auto against its MapStyle first).
/// Master upgrades itself to the fault-tolerant protocol when
/// ctx.ft.enabled; MasterFt forces it regardless; Steal picks the token
/// variant or the ledger-backed variant from ctx.ft.enabled.
std::unique_ptr<Scheduler> make_scheduler(Policy policy);

/// True for policies that schedule remotely (and therefore need the
/// shared checkpoint-claim exchange when more than one rank runs).
constexpr bool is_remote(Policy policy) {
  return policy == Policy::Master || policy == Policy::MasterFt ||
         policy == Policy::Steal;
}

/// Resolved shard count of the sharded steal-ft ledger: ft.ledger_ranks
/// clamped to [1, nranks], with the 0 default meaning "one shard per
/// rank". Public because the host's resume merge enumerates the shard
/// journals with it.
inline int shard_count(const FtConfig& ft, int nranks) {
  const int l = ft.ledger_ranks <= 0 ? nranks : ft.ledger_ranks;
  return l < 1 ? 1 : (l > nranks ? nranks : l);
}

/// Applies one shard-journal record to the cumulative task -> committer
/// map: a commit record inserts or overwrites its task's entry, a revert
/// record (written when an owner learns a rank's incarnation bumped or
/// died) removes every entry that rank had committed. Records are applied
/// in journal order, so "remove all by that rank" is exact — commits by
/// the rank's next incarnation only appear after the revert. Malformed
/// payloads are ignored. Shared by the sharded scheduler's failover
/// replay and the host's kill->resume merge.
void apply_shard_record(std::span<const std::byte> payload,
                        std::map<std::uint64_t, DoneTask>& commits);

}  // namespace mrbio::sched
