// Reserved message-tag allocation for the scheduling subsystem.
//
// Every scheduler speaks over ordinary user-range tags, so injected
// message faults (drop/dup/delay) apply to protocol traffic exactly like
// application traffic — that is what the fault-tolerant protocols'
// sequence numbers and resends absorb. To keep the reservation honest,
// all scheduler tags are allocated from one contiguous block through
// reserved_tag(), which range-checks at compile time: a new tag cannot
// silently collide with application tags, another scheduler's tags, or
// the transport-internal tags above fault::kUserTagLimit.
//
// Applications must not send on tags inside
// [kReservedTagBase, kReservedTagLimit).
#pragma once

#include "fault/fault.hpp"

namespace mrbio::sched {

/// First tag of the scheduler-reserved block.
inline constexpr int kReservedTagBase = 990000;
/// One past the last reservable tag; the block holds 100 slots.
inline constexpr int kReservedTagLimit = 990100;

static_assert(kReservedTagBase > 0, "reserved block must be in the user range");
static_assert(kReservedTagLimit <= fault::kUserTagLimit,
              "reserved scheduler tags must stay below the transport-internal "
              "tag range so collectives and sleep timers never alias them");

/// True for tags the scheduling subsystem has reserved for itself.
constexpr bool is_reserved_tag(int tag) {
  return tag >= kReservedTagBase && tag < kReservedTagLimit;
}

/// Allocates slot `slot` of the reserved block. Out-of-range slots fail to
/// compile when used in a constexpr context (all uses below are).
constexpr int reserved_tag(int slot) {
  return (slot >= 0 && kReservedTagBase + slot < kReservedTagLimit)
             ? kReservedTagBase + slot
             : throw "scheduler tag outside the reserved block";
}

// --- master-worker protocols (plain and fault-tolerant) ---
constexpr int kTagTask = reserved_tag(1);  ///< master -> worker: grant / task id
constexpr int kTagDone = reserved_tag(2);  ///< worker -> master: request / report

// --- work-stealing protocol ---
constexpr int kTagSteal = reserved_tag(3);      ///< thief -> victim: steal request
constexpr int kTagStealResp = reserved_tag(4);  ///< victim -> thief: stolen batch
constexpr int kTagToken = reserved_tag(5);      ///< termination token (ring)
constexpr int kTagStop = reserved_tag(6);       ///< rank 0 -> all: leave the map

// --- sharded-ledger protocol (steal-ft) ---
constexpr int kTagObit = reserved_tag(7);      ///< dying rank -> all: death notice
constexpr int kTagObitAck = reserved_tag(8);   ///< peer -> dying rank: obit ack
constexpr int kTagExit = reserved_tag(9);      ///< worker -> owners: done mapping
constexpr int kTagExitAck = reserved_tag(10);  ///< owner -> worker: exit ack
constexpr int kTagShardImage = reserved_tag(11);  ///< dying owner -> successor

static_assert(is_reserved_tag(kTagTask) && is_reserved_tag(kTagShardImage));

}  // namespace mrbio::sched
