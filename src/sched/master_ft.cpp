// The fault-tolerant exactly-once protocol: a work ledger on rank 0 and
// staging workers. Serves two strategies — master-worker (rank 0 is the
// only task source) and steal (the ledger is a backstop behind the
// workers' own deques; see steal.cpp). The wire protocol and its
// invariants are documented in internal.hpp.
#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "fault/detector.hpp"
#include "obs/timeseries.hpp"
#include "sched/internal.hpp"

namespace mrbio::sched {

namespace {

/// Master-side lifecycle of one task in the exactly-once work ledger.
enum class TaskState : std::uint8_t { Pending, Outstanding, Done, Failed };

struct TaskEntry {
  TaskState state = TaskState::Pending;
  int owner = -1;               ///< worker the newest attempt was granted to
  std::uint32_t owner_inc = 0;  ///< that worker's incarnation at grant time
  std::uint32_t attempt = 0;    ///< attempts granted so far
  double granted = 0.0;         ///< grant time of the newest attempt
  double deadline = 0.0;        ///< service deadline of the newest attempt
};

}  // namespace

void run_ledger_master(MapContext& ctx) {
  mpi::Comm& comm = ctx.comm;
  trace::Recorder* rec = ctx.rec;
  obs::Registry* reg = comm.metrics();
  const FtConfig& ft = ctx.ft;
  const std::uint64_t ntasks = ctx.ntasks;
  const AffinityFn* affinity = ctx.affinity;
  const int nworkers = comm.size() - 1;
  fault::Injector* inj = comm.runtime().faults();
  SchedStats& sstats = *ctx.stats;

  // The exactly-once work ledger, plus pending-task buckets keyed by
  // locality (one bucket, key 0, in plain FIFO mode). Buckets may hold
  // stale ids — a task can transition away from Pending while queued — so
  // every pop re-checks the ledger; the state counters below are the
  // authoritative progress measure.
  std::vector<TaskEntry> ledger(ntasks);
  std::map<std::uint64_t, std::deque<std::uint64_t>> pending;
  auto task_key = [&](std::uint64_t t) {
    return affinity != nullptr ? (*affinity)(t) : std::uint64_t{0};
  };
  for (std::uint64_t t = 0; t < ntasks; ++t) pending[task_key(t)].push_back(t);
  std::uint64_t npending = ntasks;
  std::uint64_t noutstanding = 0;
  std::uint64_t ndone = 0;
  std::uint64_t nfailed = 0;

  // Tasks restored from a checkpoint enter the ledger as already committed
  // by their restoring rank, at that rank's CURRENT incarnation: if the
  // keeper crashes later, revert_worker() puts exactly these tasks back in
  // play, the same as freshly committed ones (the replayed data died with
  // the process). The pending buckets keep their stale ids; pop_bucket
  // re-checks the ledger and discards them.
  if (ctx.restored != nullptr) {
    for (const DoneTask& d : *ctx.restored) {
      TaskEntry& e = ledger[d.task];
      if (e.state != TaskState::Pending) continue;
      e.state = TaskState::Done;
      e.owner = d.owner;
      e.owner_inc = d.owner_inc;
      --npending;
      ++ndone;
    }
  }

  // Outstanding-attempt deadlines, lazily invalidated: an entry counts
  // only if the ledger still shows that exact deadline outstanding.
  std::multimap<double, std::uint64_t> expiry;

  // Per-worker transport state persists across map() calls (see the
  // ProtocolState comment in sched.hpp); only the per-map stop flag
  // resets. Workers that announced a permanent death in an earlier map
  // are accounted up front — they may re-announce, but the master must
  // not depend on that announcement arriving (it can be dropped).
  ctx.proto->workers.resize(static_cast<std::size_t>(comm.size()));
  std::vector<FtWorkerView>& workers = ctx.proto->workers;
  std::map<int, std::uint64_t> worker_key;  ///< last locality key per worker
  int accounted = 0;  ///< workers currently stopped or dead
  for (FtWorkerView& w : workers) {
    w.stopped = false;
    if (w.dead) ++accounted;
  }

  // Crash notifications can still be in flight when the last worker is
  // stopped, so with an injector present the master lingers for a quiet
  // window before leaving (see DESIGN.md for the delay-bound assumption).
  const double quiet_window =
      inj != nullptr ? std::max(4.0 * ft.worker_poll, 0.2) : 0.0;
  double quiet_since = comm.now();

  auto settled = [&] { return ndone + nfailed == ntasks; };

  // Adaptive timeout: grant-to-commit service times feed the estimator,
  // so --ft-timeout 0 tracks ~4 x p99 of the observed task cost instead
  // of a fixed guess. The phi-accrual detector scores the gap since each
  // worker's last protocol message (its requests double as heartbeats).
  TimeoutEstimator est;
  fault::PhiAccrualDetector det(ft.heartbeat);

  auto attempt_timeout = [&](std::uint32_t attempt) {
    return effective_timeout(ft, est) *
           std::pow(ft.backoff, static_cast<double>(attempt - 1));
  };

  // Pops the next genuinely Pending task from `it`'s bucket, discarding
  // stale entries; erases emptied buckets. Returns -1 if none.
  auto pop_bucket = [&](auto it) -> std::int64_t {
    while (!it->second.empty()) {
      const std::uint64_t t = it->second.front();
      it->second.pop_front();
      if (ledger[t].state == TaskState::Pending) {
        if (it->second.empty()) pending.erase(it);
        return static_cast<std::int64_t>(t);
      }
    }
    pending.erase(it);
    return -1;
  };

  // Locality-aware choice, same policy as the plain locality master:
  // prefer the worker's current key, else drain the largest bucket.
  auto pick_task = [&](int src) -> std::int64_t {
    if (npending == 0) return -1;
    if (affinity != nullptr) {
      const auto known = worker_key.find(src);
      if (known != worker_key.end()) {
        const auto it = pending.find(known->second);
        if (it != pending.end()) {
          const std::int64_t t = pop_bucket(it);
          if (t >= 0) return t;
        }
      }
    }
    while (!pending.empty()) {
      auto it = pending.begin();
      if (affinity != nullptr) {
        for (auto cand = pending.begin(); cand != pending.end(); ++cand) {
          if (cand->second.size() > it->second.size()) it = cand;
        }
      }
      const std::int64_t t = pop_bucket(it);
      if (t >= 0) return t;
    }
    return -1;
  };

  auto grant_task = [&](int src, std::uint64_t task) {
    TaskEntry& e = ledger[task];
    e.state = TaskState::Outstanding;
    e.owner = src;
    e.owner_inc = workers[static_cast<std::size_t>(src)].incarnation;
    ++e.attempt;
    e.granted = comm.now();
    e.deadline = e.granted + attempt_timeout(e.attempt);
    expiry.emplace(e.deadline, task);
    --npending;
    ++noutstanding;
    if (affinity != nullptr) worker_key[src] = task_key(task);
  };

  // Reverts every task owned by `w` at an incarnation older than
  // `live_inc` back to Pending: the data those attempts produced lived in
  // the crashed process and is gone, whether or not it was committed.
  auto revert_worker = [&](int w, std::uint32_t live_inc) {
    for (std::uint64_t t = 0; t < ntasks; ++t) {
      TaskEntry& e = ledger[t];
      if (e.owner != w || e.owner_inc >= live_inc) continue;
      if (e.state != TaskState::Outstanding && e.state != TaskState::Done) continue;
      if (e.state == TaskState::Outstanding) {
        --noutstanding;
      } else {
        --ndone;
      }
      e.state = TaskState::Pending;
      e.owner = -1;
      pending[task_key(t)].push_back(t);
      ++npending;
    }
  };

  // Expires overdue outstanding attempts: retry with a longer deadline
  // later, or declare the task failed once the budget is spent. Returns
  // true if anything expired (the wait that noticed it was recovery time).
  auto handle_expiries = [&] {
    const double now = comm.now();
    bool any = false;
    while (!expiry.empty() && expiry.begin()->first <= now) {
      const std::uint64_t t = expiry.begin()->second;
      const double dl = expiry.begin()->first;
      expiry.erase(expiry.begin());
      TaskEntry& e = ledger[t];
      if (e.state != TaskState::Outstanding || e.deadline != dl) continue;  // stale
      any = true;
      --noutstanding;
      if (reg != nullptr) {
        reg->histogram("ft.retry_latency_seconds").observe(now - e.granted);
      }
      if (obs::EventLog* el = comm.runtime().eventlog(); el != nullptr) {
        el->log(LogLevel::Warn, comm.rank(), "mrmpi",
                format_msg("task ", t, " attempt ", e.attempt, " timed out on worker ",
                           e.owner));
      }
      if (e.attempt >= static_cast<std::uint32_t>(1 + ft.max_retries)) {
        e.state = TaskState::Failed;
        ++nfailed;
        ++sstats.tasks_failed;
        if (reg != nullptr) reg->counter("ft.tasks_failed").inc();
      } else {
        e.state = TaskState::Pending;
        e.owner = -1;
        pending[task_key(t)].push_back(t);
        ++npending;
        ++sstats.tasks_retried;
        if (reg != nullptr) reg->counter("ft.tasks_retried").inc();
      }
    }
    return any;
  };

  // Evicts workers the phi-accrual detector suspects: their outstanding
  // attempts expire immediately instead of waiting out the full task
  // timeout. Off unless --heartbeat enables the detector.
  auto evict_suspects = [&] {
    if (!det.config().enabled) return;
    const double now = comm.now();
    for (int r = 1; r < comm.size(); ++r) {
      FtWorkerView& w = workers[static_cast<std::size_t>(r)];
      if (w.dead || w.stopped || !det.suspect(r, now)) continue;
      bool any = false;
      for (std::uint64_t t = 0; t < ntasks; ++t) {
        TaskEntry& e = ledger[t];
        if (e.state != TaskState::Outstanding || e.owner != r) continue;
        // Pull the deadline forward: the shared expiry path does the
        // retry-or-fail accounting on the next handle_expiries().
        expiry.emplace(now, t);
        e.deadline = now;
        any = true;
      }
      if (any) {
        ++sstats.evictions;
        if (reg != nullptr) reg->counter("ft.evictions").inc();
        if (rec != nullptr) {
          rec->add(comm.rank(), trace::Category::Fault, "phi_evict", now, now);
        }
      }
      det.forget(r);  // a recovered worker re-earns trust from a clean window
    }
    if (reg != nullptr) reg->gauge("fault.phi_max").set(det.max_phi(now));
  };

  while (true) {
    evict_suspects();
    handle_expiries();
    if (obs::TimeSeries* ts = comm.runtime().timeseries(); ts != nullptr) {
      ts->sample(comm.rank(), "mrmpi.pending_tasks", comm.now(),
                 static_cast<double>(npending));
    }

    // Endgame: every worker has left (or died) but reverted/never-granted
    // tasks remain — run them on the master so a late crash can never
    // strand work. Graceful degradation beats byte-identity loss.
    if (accounted == nworkers && npending > 0) {
      for (std::int64_t t = pick_task(0); t >= 0; t = pick_task(0)) {
        const std::uint64_t task = static_cast<std::uint64_t>(t);
        TaskEntry& e = ledger[task];
        ++e.attempt;
        ctx.exec->run_direct(task, /*retry=*/e.attempt > 1);
        e.state = TaskState::Done;
        e.owner = 0;
        --npending;
        ++ndone;
      }
      quiet_since = comm.now();  // restart the crash-notification window
    }

    if (accounted == nworkers && settled() &&
        comm.now() >= quiet_since + quiet_window) {
      break;
    }

    double wake = comm.now() + effective_timeout(ft, est);  // heartbeat
    if (det.config().enabled) wake = std::min(wake, comm.now() + det.config().interval);
    if (!expiry.empty()) wake = std::min(wake, expiry.begin()->first);
    if (accounted == nworkers && settled()) {
      wake = std::min(wake, quiet_since + quiet_window);
    }

    rt::Message m;
    const double t_wait = comm.now();
    const rt::RecvStatus st = comm.recv_bytes_deadline(mpi::kAnySource, kTagDone, wake, &m);
    if (st != rt::RecvStatus::Ok) {
      const bool recovered = handle_expiries();
      const bool draining = accounted == nworkers && settled();
      if (rec != nullptr && (recovered || draining)) {
        rec->add(comm.rank(), trace::Category::Fault, "recovery_wait", t_wait,
                 comm.now());
      }
      continue;
    }

    quiet_since = comm.now();
    const WireReq req = unpack_req(m);
    const int src = m.source;
    MRBIO_CHECK(src >= 1 && src < comm.size(), "ft request from bad rank ", src);
    det.heard(src, comm.now());
    FtWorkerView& w = workers[static_cast<std::size_t>(src)];

    if (req.seq < w.last_seq) continue;  // ancient duplicate: drop
    if (req.seq == w.last_seq) {
      // Resend of an answered request: replay the cached grant verbatim.
      comm.send_bytes(src, kTagTask, w.cached_grant);
      continue;
    }

    const double t0 = comm.now();

    if (req.incarnation > w.incarnation) {
      // The worker respawned: everything its older incarnations produced
      // died with them. Put those tasks back in play.
      ++sstats.worker_deaths;
      if (reg != nullptr) reg->counter("ft.worker_deaths").inc();
      revert_worker(src, req.incarnation);
      w.incarnation = req.incarnation;
      worker_key.erase(src);
      if (w.stopped) {
        // It was told to leave but crashed first; it is back in the pool.
        w.stopped = false;
        --accounted;
      }
    }

    WireGrant g;
    g.seq = req.seq;

    if (req.dead != 0) {
      // Permanent death: acknowledge with STOP so the notification loop
      // ends; the incarnation bump above already reverted its tasks.
      if (!w.dead) {
        w.dead = true;
        if (!w.stopped) ++accounted;
      }
      g.commit = 0;
      g.assign = kAssignStop;
    } else {
      if (req.completed_task >= 0) {
        const std::uint64_t task = static_cast<std::uint64_t>(req.completed_task);
        MRBIO_CHECK(task < ntasks, "ft completion for bad task ", task);
        TaskEntry& e = ledger[task];
        if (e.state == TaskState::Done) {
          g.commit = 0;  // another attempt won; discard this copy
        } else {
          // Commit even if the attempt was presumed lost (Pending again
          // after a timeout) or written off (Failed): the work is real
          // and the worker holds the data. Under the steal policy this is
          // also the common case — deque and stolen tasks are Pending in
          // the ledger until their first completion report lands here.
          g.commit = 1;
          if (e.state == TaskState::Pending) --npending;
          if (e.state == TaskState::Outstanding) {
            --noutstanding;
            est.observe(comm.now() - e.granted);
          }
          if (e.state == TaskState::Failed) {
            --nfailed;
            --sstats.tasks_failed;
          }
          e.state = TaskState::Done;
          e.owner = src;
          e.owner_inc = req.incarnation;
          ++ndone;
        }
      }
      // Steal mode: a worker with local work reports wants = 0 and only
      // needs the commit decision; granting it a task here would
      // duplicate work that some deque already holds.
      const std::int64_t task = req.wants != 0 ? pick_task(src) : -1;
      if (task >= 0) {
        grant_task(src, static_cast<std::uint64_t>(task));
        g.assign = task;
        g.attempt = ledger[static_cast<std::uint64_t>(task)].attempt;
      } else if (settled()) {
        g.assign = kAssignStop;
        if (!w.stopped) {
          w.stopped = true;
          ++accounted;
        }
      } else {
        // Work may reappear if an outstanding attempt times out (or, in
        // steal mode, simply still lives in other workers' deques).
        g.assign = kAssignRetryLater;
      }
    }

    w.last_seq = req.seq;
    w.cached_grant = pack_grant(g);
    comm.send_bytes(src, kTagTask, w.cached_grant);

    if (rec != nullptr) {
      rec->add(comm.rank(), trace::Category::Phase, "mw_service", t0, comm.now());
    }
    if (reg != nullptr) {
      reg->histogram("mrmpi.master_service_seconds").observe(comm.now() - t0);
    }
  }

  if (ctx.failed != nullptr) {
    for (std::uint64_t t = 0; t < ntasks; ++t) {
      if (ledger[t].state == TaskState::Failed) ctx.failed->push_back(t);
    }
  }
}

void run_ft_worker(MapContext& ctx) {
  mpi::Comm& comm = ctx.comm;
  trace::Recorder* rec = ctx.rec;
  const FtConfig& ft = ctx.ft;
  fault::Injector* inj = comm.runtime().faults();
  const int me = comm.rank();
  ProtocolState& ps = *ctx.proto;

  // Protocol identity (incarnation, seq) survives both simulated crashes
  // (a supervisor restarting the worker would replay its transport-level
  // counters) and map() boundaries — a delayed grant from an earlier map
  // must never match a fresh request by seq aliasing.
  /// Permanent crash: only announce, take no work. A rank that crashed
  /// permanently in an earlier map() of this run stays out of every later
  /// task protocol too (it still participates in collectives).
  bool dead = inj != nullptr && inj->permanently_crashed(me);

  // Retry-wait pacing: seeded jitter plus a capped exponential ramp, so
  // idle workers' poll storms decohere instead of hammering the master in
  // lockstep, while the timeline stays a pure function of (seed, epoch,
  // rank). The ramp resets whenever the master hands out anything real.
  Rng rng(mix64(ctx.steal.seed ^ (static_cast<std::uint64_t>(ps.epoch) << 24) ^
                static_cast<std::uint64_t>(me) ^ 0x9e3779b97f4a7c15ULL));
  int idle_rounds = 0;

  // State of the current (crashable) incarnation.
  std::int64_t completed = -1;  ///< finished task awaiting its commit
  std::uint32_t completed_attempt = 0;

  while (true) {
    try {
      if (inj != nullptr && !dead) inj->maybe_crash(me, comm.now());

      WireReq req;
      req.incarnation = ps.incarnation;
      req.seq = ++ps.seq;
      req.dead = dead ? 1 : 0;
      req.completed_task = completed;
      req.attempt = completed_attempt;
      const std::vector<std::byte> wire = pack_req(req);
      comm.send_bytes(0, kTagDone, wire);

      WireGrant g;
      int resends = 0;
      while (true) {
        rt::Message m;
        const rt::RecvStatus st = comm.recv_bytes_deadline(
            0, kTagTask, comm.now() + ft.worker_poll, &m);
        MRBIO_CHECK(st != rt::RecvStatus::PeerDead, "rank ", me,
                    ": master (rank 0) died; the run cannot recover");
        if (st == rt::RecvStatus::Timeout) {
          if (inj != nullptr && !dead) inj->maybe_crash(me, comm.now());
          ++resends;
          MRBIO_CHECK(resends <= ft.max_resends, "rank ", me,
                      ": master unresponsive after ", resends,
                      " request resends; giving up");
          comm.send_bytes(0, kTagDone, wire);
          continue;
        }
        g = unpack_grant(m);
        if (g.seq == req.seq) break;
        // Stale grant for an earlier (resent) request: drain and re-wait.
      }

      if (completed >= 0) {
        if (g.commit != 0) {
          // Journal at the commit decision, not at task completion:
          // discarded attempts never reach the map log.
          ctx.exec->commit_staged(static_cast<std::uint64_t>(completed));
        } else {
          ctx.exec->discard_staged();
        }
        completed = -1;
        completed_attempt = 0;
      }
      if (g.assign == kAssignStop) return;
      if (g.assign == kAssignRetryLater) {
        const double t0 = comm.now();
        const double ramp =
            std::min(std::pow(ft.backoff, static_cast<double>(idle_rounds)), 8.0);
        if (idle_rounds < 16) ++idle_rounds;
        comm.sleep_until(comm.now() + jittered(ft.worker_poll * ramp, rng));
        if (rec != nullptr) {
          rec->add(me, trace::Category::Fault, "retry_wait", t0, comm.now());
        }
        continue;
      }
      idle_rounds = 0;
      const std::uint64_t task = static_cast<std::uint64_t>(g.assign);
      ctx.exec->run_staged(task, /*retry=*/g.attempt > 1);
      completed = g.assign;
      completed_attempt = g.attempt;
    } catch (const fault::CrashSignal&) {
      // Simulated process death. Everything the old incarnation held in
      // memory — staged emissions AND previously committed results — is
      // lost; the master learns this from the incarnation bump (or the
      // dead flag) and reverts the affected ledger entries.
      ctx.exec->on_crash();
      completed = -1;
      completed_attempt = 0;
      ++ps.incarnation;
      dead = inj != nullptr && inj->permanently_crashed(me);
      if (rec != nullptr) {
        rec->add(me, trace::Category::Fault,
                 dead ? "worker_died" : "worker_respawn", comm.now(), comm.now());
      }
    }
  }
}

}  // namespace mrbio::sched
