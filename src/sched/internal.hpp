// Shared internals of the scheduler strategies: wire formats and the
// cross-strategy entry points (the fault-tolerant ledger serves both the
// master-worker and the steal policy). Not part of the public surface.
#pragma once

#include <cstdint>
#include <vector>

#include "common/serialize.hpp"
#include "rt/runtime.hpp"
#include "sched/sched.hpp"
#include "sched/tags.hpp"

namespace mrbio::sched {

// ---------------------------------------------------------------------------
// Fault-tolerant master-worker wire protocol.
//
// Each worker request carries a monotonically increasing sequence number
// and the worker's incarnation (respawn count); each grant echoes the
// sequence it answers. Lost messages are handled by resending the request
// and replaying the cached grant; duplicated or stale messages are
// discarded by sequence comparison. A grant both commits (or discards)
// the task the worker just finished and assigns the next one, so the
// exactly-once decision and the scheduling decision travel in one
// message.

/// Grant `assign` sentinels (non-negative values are task ids).
inline constexpr std::int64_t kAssignStop = -1;        ///< leave the protocol
inline constexpr std::int64_t kAssignRetryLater = -2;  ///< nothing now; poll again

struct WireReq {
  std::uint32_t incarnation = 0;  ///< respawn count of this worker
  std::uint32_t seq = 0;          ///< request sequence, never reused
  std::uint8_t dead = 0;          ///< 1 = permanent death notification
  std::int64_t completed_task = -1;  ///< task finished since last grant
  std::uint32_t attempt = 0;         ///< attempt number of completed_task
  /// 1 = the worker is out of local work and asks the ledger for a task.
  /// Under the steal policy the ledger only grants to askers (workers
  /// with live deques report completions with wants = 0); the plain
  /// master-worker protocol always asks.
  std::uint8_t wants = 1;
};

struct WireGrant {
  std::uint32_t seq = 0;     ///< echo of the request this answers
  std::uint8_t commit = 0;   ///< absorb (1) or discard (0) the staged task
  std::int64_t assign = kAssignStop;
  std::uint32_t attempt = 0;  ///< attempt number of the assigned task
};

inline std::vector<std::byte> pack_req(const WireReq& r) {
  ByteWriter w;
  w.put(r.incarnation);
  w.put(r.seq);
  w.put(r.dead);
  w.put(r.completed_task);
  w.put(r.attempt);
  w.put(r.wants);
  return w.take();
}

inline WireReq unpack_req(const rt::Message& m) {
  ByteReader r(m.payload);
  WireReq req;
  req.incarnation = r.get<std::uint32_t>();
  req.seq = r.get<std::uint32_t>();
  req.dead = r.get<std::uint8_t>();
  req.completed_task = r.get<std::int64_t>();
  req.attempt = r.get<std::uint32_t>();
  req.wants = r.get<std::uint8_t>();
  return req;
}

inline std::vector<std::byte> pack_grant(const WireGrant& g) {
  ByteWriter w;
  w.put(g.seq);
  w.put(g.commit);
  w.put(g.assign);
  w.put(g.attempt);
  return w.take();
}

inline WireGrant unpack_grant(const rt::Message& m) {
  ByteReader r(m.payload);
  WireGrant g;
  g.seq = r.get<std::uint32_t>();
  g.commit = r.get<std::uint8_t>();
  g.assign = r.get<std::int64_t>();
  g.attempt = r.get<std::uint32_t>();
  return g;
}

// ---------------------------------------------------------------------------
// Work-stealing wire protocol. Every message is stamped with the sender's
// map epoch; a message whose epoch differs from the receiver's current
// map is a straggler from an earlier phase and is dropped.

struct StealReq {
  std::uint32_t epoch = 0;
  std::uint32_t seq = 0;  ///< thief-side sequence, monotone across victims
  std::uint32_t max = 0;  ///< upper bound on tasks in the response
};

struct StealResp {
  std::uint32_t epoch = 0;
  std::uint32_t seq = 0;  ///< echo of the request
  std::vector<std::uint64_t> tasks;
};

/// Safra-style termination token, circulated rank -> (rank + 1) % P.
struct StealToken {
  std::uint32_t epoch = 0;
  std::uint8_t black = 0;  ///< a counted message was received mid-probe
  std::int64_t count = 0;  ///< accumulated work-message balance
};

inline std::vector<std::byte> pack_steal_req(const StealReq& r) {
  ByteWriter w;
  w.put(r.epoch);
  w.put(r.seq);
  w.put(r.max);
  return w.take();
}

inline StealReq unpack_steal_req(const rt::Message& m) {
  ByteReader r(m.payload);
  StealReq rq;
  rq.epoch = r.get<std::uint32_t>();
  rq.seq = r.get<std::uint32_t>();
  rq.max = r.get<std::uint32_t>();
  return rq;
}

inline std::vector<std::byte> pack_steal_resp(const StealResp& resp) {
  ByteWriter w;
  w.put(resp.epoch);
  w.put(resp.seq);
  w.put(static_cast<std::uint32_t>(resp.tasks.size()));
  for (const std::uint64_t t : resp.tasks) w.put(t);
  return w.take();
}

inline StealResp unpack_steal_resp(const rt::Message& m) {
  ByteReader r(m.payload);
  StealResp resp;
  resp.epoch = r.get<std::uint32_t>();
  resp.seq = r.get<std::uint32_t>();
  const auto n = r.get<std::uint32_t>();
  resp.tasks.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) resp.tasks.push_back(r.get<std::uint64_t>());
  return resp;
}

inline std::vector<std::byte> pack_token(const StealToken& t) {
  ByteWriter w;
  w.put(t.epoch);
  w.put(t.black);
  w.put(t.count);
  return w.take();
}

inline StealToken unpack_token(const rt::Message& m) {
  ByteReader r(m.payload);
  StealToken t;
  t.epoch = r.get<std::uint32_t>();
  t.black = r.get<std::uint8_t>();
  t.count = r.get<std::int64_t>();
  return t;
}

// ---------------------------------------------------------------------------
// Shared helpers and cross-strategy entry points.

/// Static chunk partition: tasks [lo, hi) of rank `idx` among `n` parts.
inline std::uint64_t chunk_lo(std::uint64_t ntasks, int idx, int n) {
  return ntasks * static_cast<std::uint64_t>(idx) / static_cast<std::uint64_t>(n);
}
inline std::uint64_t chunk_hi(std::uint64_t ntasks, int idx, int n) {
  return ntasks * (static_cast<std::uint64_t>(idx) + 1) / static_cast<std::uint64_t>(n);
}

/// Degenerate single-rank map: run every task locally in order.
void run_all_local(MapContext& ctx);

/// The exactly-once ledger on rank 0 (plain-FIFO or locality order via
/// ctx.affinity). The ledger grants Pending tasks only to workers that
/// asked (WireReq::wants); plain fault-tolerant workers always ask, while
/// steal workers ask only once drained — their deque and stolen tasks
/// stay Pending here until the first completion report commits them, and
/// first-commit-wins deduplicates any grant/deque overlap.
void run_ledger_master(MapContext& ctx);

/// Fault-tolerant worker of the master-worker policy.
void run_ft_worker(MapContext& ctx);

/// Strategy factories (one per translation unit).
std::unique_ptr<Scheduler> make_master_scheduler(bool force_ft);
std::unique_ptr<Scheduler> make_steal_scheduler();

}  // namespace mrbio::sched
