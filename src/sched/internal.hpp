// Shared internals of the scheduler strategies: wire formats and the
// cross-strategy entry points (the fault-tolerant ledger serves both the
// master-worker and the steal policy). Not part of the public surface.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "rt/runtime.hpp"
#include "sched/sched.hpp"
#include "sched/tags.hpp"

namespace mrbio::sched {

// ---------------------------------------------------------------------------
// Fault-tolerant master-worker wire protocol.
//
// Each worker request carries a monotonically increasing sequence number
// and the worker's incarnation (respawn count); each grant echoes the
// sequence it answers. Lost messages are handled by resending the request
// and replaying the cached grant; duplicated or stale messages are
// discarded by sequence comparison. A grant both commits (or discards)
// the task the worker just finished and assigns the next one, so the
// exactly-once decision and the scheduling decision travel in one
// message.

/// Grant `assign` sentinels (non-negative values are task ids).
inline constexpr std::int64_t kAssignStop = -1;        ///< leave the protocol
inline constexpr std::int64_t kAssignRetryLater = -2;  ///< nothing now; poll again
/// Sharded ledger only: the receiver no longer owns the shard of the
/// reported task; re-resolve the owner (an obit is or will be in flight)
/// and re-send there. The commit decision in this grant is void.
inline constexpr std::int64_t kAssignNotOwner = -3;

struct WireReq {
  std::uint32_t incarnation = 0;  ///< respawn count of this worker
  std::uint32_t seq = 0;          ///< request sequence, never reused
  std::uint8_t dead = 0;          ///< 1 = permanent death notification
  std::int64_t completed_task = -1;  ///< task finished since last grant
  std::uint32_t attempt = 0;         ///< attempt number of completed_task
  /// 1 = the worker is out of local work and asks the ledger for a task.
  /// Under the steal policy the ledger only grants to askers (workers
  /// with live deques report completions with wants = 0); the plain
  /// master-worker protocol always asks.
  std::uint8_t wants = 1;
  /// Sharded ledger: map epoch of the sender; stale epochs are dropped.
  /// The single-master protocol leaves it 0 (seqs alone disambiguate —
  /// rank 0 never restarts).
  std::uint32_t epoch = 0;
};

struct WireGrant {
  std::uint32_t seq = 0;     ///< echo of the request this answers
  std::uint8_t commit = 0;   ///< absorb (1) or discard (0) the staged task
  std::int64_t assign = kAssignStop;
  std::uint32_t attempt = 0;  ///< attempt number of the assigned task
  /// 0 = the receiver must keep its staged task and re-report: the
  /// answering shard owner could not decide the commit (mid-failover).
  /// Single-master grants always decide (1).
  std::uint8_t decided = 1;
  std::uint32_t epoch = 0;
  /// Sharded ledger: every permanent death the sender knows of. A
  /// protocol-crashed rank stays Active at the transport (its thread
  /// lives on), so this piggyback — together with neighbor probes — is
  /// how a worker stuck on a dead owner's channel learns to re-route.
  /// Single-master grants leave it empty.
  std::vector<std::int32_t> dead_set;
};

inline std::vector<std::byte> pack_req(const WireReq& r) {
  ByteWriter w;
  w.put(r.incarnation);
  w.put(r.seq);
  w.put(r.dead);
  w.put(r.completed_task);
  w.put(r.attempt);
  w.put(r.wants);
  w.put(r.epoch);
  return w.take();
}

inline WireReq unpack_req(const rt::Message& m) {
  ByteReader r(m.payload);
  WireReq req;
  req.incarnation = r.get<std::uint32_t>();
  req.seq = r.get<std::uint32_t>();
  req.dead = r.get<std::uint8_t>();
  req.completed_task = r.get<std::int64_t>();
  req.attempt = r.get<std::uint32_t>();
  req.wants = r.get<std::uint8_t>();
  req.epoch = r.get<std::uint32_t>();
  return req;
}

inline std::vector<std::byte> pack_grant(const WireGrant& g) {
  ByteWriter w;
  w.put(g.seq);
  w.put(g.commit);
  w.put(g.assign);
  w.put(g.attempt);
  w.put(g.decided);
  w.put(g.epoch);
  w.put(static_cast<std::uint32_t>(g.dead_set.size()));
  for (const std::int32_t r : g.dead_set) w.put(r);
  return w.take();
}

inline WireGrant unpack_grant(const rt::Message& m) {
  ByteReader r(m.payload);
  WireGrant g;
  g.seq = r.get<std::uint32_t>();
  g.commit = r.get<std::uint8_t>();
  g.assign = r.get<std::int64_t>();
  g.attempt = r.get<std::uint32_t>();
  g.decided = r.get<std::uint8_t>();
  g.epoch = r.get<std::uint32_t>();
  const auto n = r.get<std::uint32_t>();
  g.dead_set.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) g.dead_set.push_back(r.get<std::int32_t>());
  return g;
}

// ---------------------------------------------------------------------------
// Work-stealing wire protocol. Every message is stamped with the sender's
// map epoch; a message whose epoch differs from the receiver's current
// map is a straggler from an earlier phase and is dropped.

struct StealReq {
  std::uint32_t epoch = 0;
  std::uint32_t seq = 0;  ///< thief-side sequence, monotone across victims
  std::uint32_t max = 0;  ///< upper bound on tasks in the response
};

struct StealResp {
  std::uint32_t epoch = 0;
  std::uint32_t seq = 0;  ///< echo of the request
  std::vector<std::uint64_t> tasks;
};

/// Safra-style termination token, circulated rank -> (rank + 1) % P.
struct StealToken {
  std::uint32_t epoch = 0;
  std::uint8_t black = 0;  ///< a counted message was received mid-probe
  std::int64_t count = 0;  ///< accumulated work-message balance
};

inline std::vector<std::byte> pack_steal_req(const StealReq& r) {
  ByteWriter w;
  w.put(r.epoch);
  w.put(r.seq);
  w.put(r.max);
  return w.take();
}

inline StealReq unpack_steal_req(const rt::Message& m) {
  ByteReader r(m.payload);
  StealReq rq;
  rq.epoch = r.get<std::uint32_t>();
  rq.seq = r.get<std::uint32_t>();
  rq.max = r.get<std::uint32_t>();
  return rq;
}

inline std::vector<std::byte> pack_steal_resp(const StealResp& resp) {
  ByteWriter w;
  w.put(resp.epoch);
  w.put(resp.seq);
  w.put(static_cast<std::uint32_t>(resp.tasks.size()));
  for (const std::uint64_t t : resp.tasks) w.put(t);
  return w.take();
}

inline StealResp unpack_steal_resp(const rt::Message& m) {
  ByteReader r(m.payload);
  StealResp resp;
  resp.epoch = r.get<std::uint32_t>();
  resp.seq = r.get<std::uint32_t>();
  const auto n = r.get<std::uint32_t>();
  resp.tasks.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) resp.tasks.push_back(r.get<std::uint64_t>());
  return resp;
}

inline std::vector<std::byte> pack_token(const StealToken& t) {
  ByteWriter w;
  w.put(t.epoch);
  w.put(t.black);
  w.put(t.count);
  return w.take();
}

inline StealToken unpack_token(const rt::Message& m) {
  ByteReader r(m.payload);
  StealToken t;
  t.epoch = r.get<std::uint32_t>();
  t.black = r.get<std::uint8_t>();
  t.count = r.get<std::int64_t>();
  return t;
}

// ---------------------------------------------------------------------------
// Sharded-ledger wire protocol (steal-ft). A dying rank broadcasts an
// Obit carrying its full dead-set and retransmits it until every live
// peer acked; a dying shard owner additionally hands its in-memory
// ledger image to the deterministic successor. Workers announce the end
// of their map participation with an Exit so shard owners can account
// quiescence without a global collective.

struct Obit {
  std::uint32_t epoch = 0;
  std::int32_t dead_rank = -1;           ///< the rank this obit announces
  std::uint32_t incarnation = 0;         ///< its final incarnation
  std::vector<std::int32_t> dead_set;    ///< every death the sender knows of
  /// Worker-done declarations the dying rank had received as a shard
  /// owner. A successor adopting its shards inherits this set — without
  /// it, a late-adopted owner could wait forever for exits from ranks
  /// that already left the map through the dead owner.
  std::vector<std::int32_t> exited_set;
};

/// One committed entry of a shard ledger, as carried by a ShardImage and
/// journaled (kind = kShardCommit) in the shard's durable log.
struct ShardEntryRecord {
  std::uint64_t task = 0;
  std::int32_t owner = -1;
  std::uint32_t owner_inc = 0;
};

/// In-memory ledger handover from a dying owner to its successor (used
/// when no durable shard journal exists; with a checkpoint dir the
/// successor replays the shard's log from disk instead).
struct ShardImage {
  std::uint32_t epoch = 0;
  std::int32_t shard = -1;
  std::vector<ShardEntryRecord> done;
};

/// Shard-journal record kinds (first byte of each framed payload).
inline constexpr std::uint8_t kShardCommit = 1;  ///< task committed by (owner, inc)
inline constexpr std::uint8_t kShardRevert = 2;  ///< every prior commit by that rank void

struct WireExit {
  std::uint32_t epoch = 0;
  std::uint32_t incarnation = 0;
  std::uint8_t ack = 0;  ///< 1 on the owner -> worker echo
};

inline std::vector<std::byte> pack_obit(const Obit& o) {
  ByteWriter w;
  w.put(o.epoch);
  w.put(o.dead_rank);
  w.put(o.incarnation);
  w.put(static_cast<std::uint32_t>(o.dead_set.size()));
  for (const std::int32_t r : o.dead_set) w.put(r);
  w.put(static_cast<std::uint32_t>(o.exited_set.size()));
  for (const std::int32_t r : o.exited_set) w.put(r);
  return w.take();
}

inline Obit unpack_obit(const rt::Message& m) {
  ByteReader r(m.payload);
  Obit o;
  o.epoch = r.get<std::uint32_t>();
  o.dead_rank = r.get<std::int32_t>();
  o.incarnation = r.get<std::uint32_t>();
  const auto n = r.get<std::uint32_t>();
  o.dead_set.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) o.dead_set.push_back(r.get<std::int32_t>());
  const auto ne = r.get<std::uint32_t>();
  o.exited_set.reserve(ne);
  for (std::uint32_t i = 0; i < ne; ++i) o.exited_set.push_back(r.get<std::int32_t>());
  return o;
}

inline std::vector<std::byte> pack_shard_image(const ShardImage& img) {
  ByteWriter w;
  w.put(img.epoch);
  w.put(img.shard);
  w.put(static_cast<std::uint32_t>(img.done.size()));
  for (const ShardEntryRecord& e : img.done) {
    w.put(e.task);
    w.put(e.owner);
    w.put(e.owner_inc);
  }
  return w.take();
}

inline ShardImage unpack_shard_image(const rt::Message& m) {
  ByteReader r(m.payload);
  ShardImage img;
  img.epoch = r.get<std::uint32_t>();
  img.shard = r.get<std::int32_t>();
  const auto n = r.get<std::uint32_t>();
  img.done.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ShardEntryRecord e;
    e.task = r.get<std::uint64_t>();
    e.owner = r.get<std::int32_t>();
    e.owner_inc = r.get<std::uint32_t>();
    img.done.push_back(e);
  }
  return img;
}

inline std::vector<std::byte> pack_exit(const WireExit& e) {
  ByteWriter w;
  w.put(e.epoch);
  w.put(e.incarnation);
  w.put(e.ack);
  return w.take();
}

inline WireExit unpack_exit(const rt::Message& m) {
  ByteReader r(m.payload);
  WireExit e;
  e.epoch = r.get<std::uint32_t>();
  e.incarnation = r.get<std::uint32_t>();
  e.ack = r.get<std::uint8_t>();
  return e;
}

// ---------------------------------------------------------------------------
// Shared helpers and cross-strategy entry points.

/// Static chunk partition: tasks [lo, hi) of rank `idx` among `n` parts.
inline std::uint64_t chunk_lo(std::uint64_t ntasks, int idx, int n) {
  return ntasks * static_cast<std::uint64_t>(idx) / static_cast<std::uint64_t>(n);
}
inline std::uint64_t chunk_hi(std::uint64_t ntasks, int idx, int n) {
  return ntasks * (static_cast<std::uint64_t>(idx) + 1) / static_cast<std::uint64_t>(n);
}

/// Which shard owns task `t` under the chunk partition of `ntasks` over
/// `nshards` (the inverse of chunk_lo/chunk_hi: shard s owns
/// [chunk_lo(ntasks, s, nshards), chunk_hi(ntasks, s, nshards))).
inline int shard_of(std::uint64_t t, std::uint64_t ntasks, int nshards) {
  if (ntasks == 0) return 0;
  return static_cast<int>(((t + 1) * static_cast<std::uint64_t>(nshards) - 1) / ntasks);
}

/// Deterministic jitter for retry/backoff naps: uniform in [0.5, 1.5) x
/// `nap`, so synchronized retry storms decohere while the sim timeline
/// stays a pure function of (seed, epoch, rank).
inline double jittered(double nap, Rng& rng) { return nap * (0.5 + rng.uniform()); }

/// Adaptive task-timeout estimate from observed grant-to-commit service
/// times: a log2-bucket histogram whose ~p99 feeds timeout = 4 x p99
/// (clamped below by `floor`). Returns `bootstrap` until enough samples
/// arrived. Deterministic and O(1) per sample.
class TimeoutEstimator {
 public:
  void observe(double seconds) {
    ++count_;
    int b = 0;
    double edge = kFirstEdge;
    while (b + 1 < kBuckets && seconds > edge) {
      edge *= 2.0;
      ++b;
    }
    ++buckets_[b];
  }

  /// Current timeout estimate; `bootstrap` until >= 5 samples.
  double timeout(double floor_s, double bootstrap) const {
    if (count_ < 5) return bootstrap;
    const std::uint64_t want =
        (count_ * 99 + 99) / 100;  // ceil(0.99 * n): p99 rank
    std::uint64_t cum = 0;
    double edge = kFirstEdge;
    for (int b = 0; b < kBuckets; ++b, edge *= 2.0) {
      cum += buckets_[b];
      if (cum >= want) break;
    }
    const double t = 4.0 * edge;
    return t < floor_s ? floor_s : t;
  }

  std::uint64_t samples() const { return count_; }

 private:
  static constexpr int kBuckets = 40;          ///< ~1 us .. ~5e5 s
  static constexpr double kFirstEdge = 1e-6;
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
};

/// Effective per-attempt base timeout: the explicit config value, or the
/// adaptive estimate when ft.task_timeout <= 0.
inline double effective_timeout(const FtConfig& ft, const TimeoutEstimator& est) {
  if (ft.task_timeout > 0.0) return ft.task_timeout;
  const double floor_s = ft.worker_poll * 4.0;
  return est.timeout(floor_s < 0.05 ? 0.05 : floor_s, 5.0);
}

/// Degenerate single-rank map: run every task locally in order.
void run_all_local(MapContext& ctx);

/// The exactly-once ledger on rank 0 (plain-FIFO or locality order via
/// ctx.affinity). The ledger grants Pending tasks only to workers that
/// asked (WireReq::wants); plain fault-tolerant workers always ask, while
/// steal workers ask only once drained — their deque and stolen tasks
/// stay Pending here until the first completion report commits them, and
/// first-commit-wins deduplicates any grant/deque overlap.
void run_ledger_master(MapContext& ctx);

/// Fault-tolerant worker of the master-worker policy.
void run_ft_worker(MapContext& ctx);

/// The sharded-ledger steal policy: every rank is simultaneously a
/// worker (deque + stealing) and — for ranks < shard_count — the
/// exactly-once ledger of its task range, with deterministic successor
/// failover when an owner dies. Collective over ctx.comm.
void run_sharded_steal(MapContext& ctx, std::uint32_t epoch);

/// Strategy factories (one per translation unit).
std::unique_ptr<Scheduler> make_master_scheduler(bool force_ft);
std::unique_ptr<Scheduler> make_steal_scheduler();

}  // namespace mrbio::sched
