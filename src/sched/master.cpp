// The master-worker strategy (Sandia mapstyle 2): rank 0 grants task ids
// to idle workers, optionally preferring locality-key affinity. The
// fault-tolerant variant lives in master_ft.cpp; this file holds the
// plain protocol and the strategy object that picks between them.
#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "common/error.hpp"
#include "obs/timeseries.hpp"
#include "sched/internal.hpp"

namespace mrbio::sched {

namespace {

/// Plain master loop: workers announce readiness on kTagDone, the master
/// answers with the next task id or -1 when exhausted.
void run_plain_master(MapContext& ctx) {
  mpi::Comm& comm = ctx.comm;
  trace::Recorder* rec = ctx.rec;
  const int workers = comm.size() - 1;
  const std::uint64_t ntasks = ctx.ntasks;
  // Restored tasks were already replayed on their owners; never hand
  // them out again.
  std::set<std::uint64_t> ckpt_done;
  if (ctx.restored != nullptr) {
    for (const DoneTask& d : *ctx.restored) ckpt_done.insert(d.task);
  }
  std::uint64_t next = 0;
  int stopped = 0;
  auto skip_done = [&] {
    while (next < ntasks && ckpt_done.count(next) != 0) ++next;
  };
  skip_done();
  while (stopped < workers) {
    int src = -1;
    comm.recv_value<std::uint8_t>(mpi::kAnySource, kTagDone, &src);
    const double t0 = comm.now();
    if (next < ntasks) {
      comm.send_value<std::int64_t>(src, kTagTask, static_cast<std::int64_t>(next));
      ++next;
      skip_done();
    } else {
      comm.send_value<std::int64_t>(src, kTagTask, -1);
      ++stopped;
    }
    if (rec != nullptr) {
      // Master service latency: request handled -> reply sent.
      rec->add(comm.rank(), trace::Category::Phase, "mw_service", t0, comm.now());
    }
    if (obs::Registry* reg = comm.metrics(); reg != nullptr) {
      reg->histogram("mrmpi.master_service_seconds").observe(comm.now() - t0);
    }
    if (obs::TimeSeries* ts = comm.runtime().timeseries(); ts != nullptr) {
      ts->sample(comm.rank(), "mrmpi.pending_tasks", comm.now(),
                 static_cast<double>(ntasks - std::min(next, ntasks)));
    }
  }
}

/// Locality-aware master: prefer the worker's current key, else drain the
/// key with the most remaining tasks.
void run_locality_master(MapContext& ctx) {
  mpi::Comm& comm = ctx.comm;
  trace::Recorder* rec = ctx.rec;
  const AffinityFn& affinity = *ctx.affinity;
  // Pending tasks grouped by locality key; within a key, FIFO by task id.
  // Tasks restored from a checkpoint are already accounted for on their
  // owners and never enter the queue.
  std::set<std::uint64_t> ckpt_done;
  if (ctx.restored != nullptr) {
    for (const DoneTask& d : *ctx.restored) ckpt_done.insert(d.task);
  }
  std::map<std::uint64_t, std::deque<std::uint64_t>> pending;
  std::uint64_t remaining = 0;
  for (std::uint64_t t = 0; t < ctx.ntasks; ++t) {
    if (ckpt_done.count(t) != 0) continue;
    pending[affinity(t)].push_back(t);
    ++remaining;
  }

  std::map<int, std::uint64_t> worker_key;  ///< last key each worker ran
  const int workers = comm.size() - 1;
  int stopped = 0;
  while (stopped < workers) {
    int src = -1;
    comm.recv_value<std::uint8_t>(mpi::kAnySource, kTagDone, &src);
    const double t0 = comm.now();
    if (remaining == 0) {
      comm.send_value<std::int64_t>(src, kTagTask, -1);
      ++stopped;
      if (rec != nullptr) {
        rec->add(comm.rank(), trace::Category::Phase, "mw_service", t0, comm.now());
      }
      continue;
    }
    // Prefer the worker's current key; otherwise hand it the key with the
    // most remaining tasks so future requests can stay local to it.
    auto it = pending.end();
    const auto known = worker_key.find(src);
    if (known != worker_key.end()) {
      it = pending.find(known->second);
      if (it != pending.end() && it->second.empty()) it = pending.end();
    }
    if (it == pending.end()) {
      std::size_t best = 0;
      for (auto cand = pending.begin(); cand != pending.end(); ++cand) {
        if (cand->second.size() > best) {
          best = cand->second.size();
          it = cand;
        }
      }
    }
    MRBIO_CHECK(it != pending.end() && !it->second.empty(),
                "locality scheduler lost tasks: worker ", src, " asked with key ",
                known != worker_key.end() ? static_cast<std::int64_t>(known->second)
                                          : std::int64_t{-1},
                ", ", remaining, " tasks still pending across ", pending.size(),
                " keys but no bucket is drainable");
    const std::uint64_t task = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) pending.erase(it);
    worker_key[src] = affinity(task);
    comm.send_value<std::int64_t>(src, kTagTask, static_cast<std::int64_t>(task));
    --remaining;
    if (rec != nullptr) {
      rec->add(comm.rank(), trace::Category::Phase, "mw_service", t0, comm.now());
    }
    if (obs::Registry* reg = comm.metrics(); reg != nullptr) {
      reg->histogram("mrmpi.master_service_seconds").observe(comm.now() - t0);
    }
    if (obs::TimeSeries* ts = comm.runtime().timeseries(); ts != nullptr) {
      ts->sample(comm.rank(), "mrmpi.pending_tasks", comm.now(),
                 static_cast<double>(remaining));
    }
  }
}

void run_plain_worker(MapContext& ctx) {
  mpi::Comm& comm = ctx.comm;
  for (;;) {
    comm.send_value<std::uint8_t>(0, kTagDone, 1);
    const auto task = comm.recv_value<std::int64_t>(0, kTagTask);
    if (task < 0) break;
    ctx.exec->run_direct(static_cast<std::uint64_t>(task), /*retry=*/false);
  }
}

class MasterScheduler final : public Scheduler {
 public:
  explicit MasterScheduler(bool force_ft) : force_ft_(force_ft) {}
  const char* name() const override { return force_ft_ ? "master-ft" : "master"; }

  void execute(MapContext& ctx) override {
    if (ctx.comm.size() == 1) {
      run_all_local(ctx);
      return;
    }
    const bool ft = force_ft_ || ctx.ft.enabled;
    if (ctx.comm.rank() == 0) {
      if (ft) {
        run_ledger_master(ctx);
      } else if (ctx.affinity != nullptr) {
        run_locality_master(ctx);
      } else {
        run_plain_master(ctx);
      }
    } else {
      if (ft) {
        run_ft_worker(ctx);
      } else {
        run_plain_worker(ctx);
      }
    }
  }

 private:
  bool force_ft_;
};

}  // namespace

std::unique_ptr<Scheduler> make_master_scheduler(bool force_ft) {
  return std::make_unique<MasterScheduler>(force_ft);
}

}  // namespace mrbio::sched
