#include "sched/sched.hpp"

#include "common/error.hpp"
#include "sched/internal.hpp"

namespace mrbio::sched {

Policy parse_policy(const std::string& name) {
  if (name == "auto") return Policy::Auto;
  if (name == "chunk") return Policy::Chunk;
  if (name == "stride") return Policy::Stride;
  if (name == "master") return Policy::Master;
  if (name == "master-ft") return Policy::MasterFt;
  if (name == "steal") return Policy::Steal;
  throw InputError(format_msg("unknown scheduler '", name,
                              "' (expected auto|chunk|stride|master|master-ft|steal)"));
}

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::Auto: return "auto";
    case Policy::Chunk: return "chunk";
    case Policy::Stride: return "stride";
    case Policy::Master: return "master";
    case Policy::MasterFt: return "master-ft";
    case Policy::Steal: return "steal";
  }
  return "?";
}

void run_all_local(MapContext& ctx) {
  for (std::uint64_t t = 0; t < ctx.ntasks; ++t) {
    ctx.exec->run_direct(t, /*retry=*/false);
  }
}

namespace {

/// Static partitions: no communication, no termination protocol — every
/// rank runs its slice and leaves. Checkpoint-restored tasks are skipped
/// inside the executor (they were replayed into the output already).
class StaticScheduler final : public Scheduler {
 public:
  explicit StaticScheduler(bool stride) : stride_(stride) {}
  const char* name() const override { return stride_ ? "stride" : "chunk"; }

  void execute(MapContext& ctx) override {
    const int rank = ctx.comm.rank();
    const int p = ctx.comm.size();
    if (stride_) {
      for (std::uint64_t t = static_cast<std::uint64_t>(rank); t < ctx.ntasks;
           t += static_cast<std::uint64_t>(p)) {
        ctx.exec->run_direct(t, /*retry=*/false);
      }
    } else {
      const std::uint64_t hi = chunk_hi(ctx.ntasks, rank, p);
      for (std::uint64_t t = chunk_lo(ctx.ntasks, rank, p); t < hi; ++t) {
        ctx.exec->run_direct(t, /*retry=*/false);
      }
    }
  }

 private:
  bool stride_;
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(Policy policy) {
  switch (policy) {
    case Policy::Chunk: return std::make_unique<StaticScheduler>(false);
    case Policy::Stride: return std::make_unique<StaticScheduler>(true);
    case Policy::Master: return make_master_scheduler(/*force_ft=*/false);
    case Policy::MasterFt: return make_master_scheduler(/*force_ft=*/true);
    case Policy::Steal: return make_steal_scheduler();
    case Policy::Auto: break;
  }
  throw LogicError("make_scheduler: Policy::Auto must be resolved by the host");
}

}  // namespace mrbio::sched
