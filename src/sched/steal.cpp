// Decentralized work stealing.
//
// Every rank seeds a private deque with the static chunk partition of the
// task list (minus checkpoint-restored tasks), pops work from the front,
// and — once drained — steals a bounded batch from the back of a randomly
// chosen victim's deque. There is no central grant loop: with the
// fault-tolerant ledger disabled, no rank is special and the only
// per-task communication is the (rare) steal traffic, which is what lets
// this policy scale past the master-worker protocol's rank-0 wall.
//
// Termination (plain variant) is detected with a Safra-style token over
// the ring 0 -> 1 -> ... -> P-1 -> 0. Only work-bearing steal responses
// count: each rank keeps a balance `counter` (work messages sent minus
// received) and turns black on receiving work; rank 0 circulates a token
// accumulating the balances and declares termination when a white token
// returns with a zero global balance while rank 0 itself stayed white.
// Steal requests, empty responses, and the token itself are control
// messages — they can never activate a passive rank, so they are neither
// counted nor blackening, and an idle rank's re-stealing cannot livelock
// the probe. Every steal-layer message carries the map epoch, so a
// straggler from map N is recognized and dropped in map N+1.
//
// Fault-tolerant variant: the exactly-once commit ledger is sharded by
// task range across the ranks (sharded.cpp) — every rank runs its deque
// AND owns the ledger slice of its seeded range, with deterministic
// successor failover when an owner (including rank 0) dies. Deque and
// stolen tasks are *claims*: they stay Pending in their shard until the
// completion report commits them, and first-commit-wins deduplicates any
// grant/claim overlap.
#include <algorithm>
#include <deque>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sched/internal.hpp"

namespace mrbio::sched {

namespace {

/// How long a working rank listens for thieves between tasks. Must be
/// strictly positive so the receive actually blocks (and, on the sim
/// backend, yields to lower-virtual-time ranks); small enough to vanish
/// next to any real task cost.
constexpr double kServeWindow = 1e-9;

/// Deterministic per-rank victim-selection generator: independent of
/// sibling ranks, stable across runs for a given (seed, epoch, rank).
Rng make_steal_rng(const StealConfig& cfg, std::uint32_t epoch, int rank) {
  return Rng(mix64(cfg.seed ^ (static_cast<std::uint64_t>(epoch) << 24) ^
                   static_cast<std::uint64_t>(rank)));
}

/// Victim side: give away up to half the deque (never more than the
/// thief asked for or the configured batch), from the back — the owner
/// keeps popping the front.
std::vector<std::uint64_t> give_tasks(std::deque<std::uint64_t>& dq,
                                      std::uint32_t want, int batch) {
  const std::size_t cap = std::min<std::size_t>(
      {(dq.size() + 1) / 2, want, static_cast<std::size_t>(batch)});
  std::vector<std::uint64_t> tasks;
  tasks.reserve(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    tasks.push_back(dq.back());
    dq.pop_back();
  }
  return tasks;
}

// ---------------------------------------------------------------------------
// Plain (non-fault-tolerant) steal with token termination.

void run_steal_plain(MapContext& ctx, std::uint32_t epoch) {
  mpi::Comm& comm = ctx.comm;
  trace::Recorder* rec = ctx.rec;
  obs::Registry* reg = comm.metrics();
  SchedStats& sstats = *ctx.stats;
  ProtocolState& ps = *ctx.proto;
  const int me = comm.rank();
  const int p = comm.size();

  std::deque<std::uint64_t> dq;
  {
    std::set<std::uint64_t> restored;
    if (ctx.restored != nullptr) {
      for (const DoneTask& d : *ctx.restored) restored.insert(d.task);
    }
    const std::uint64_t hi = chunk_hi(ctx.ntasks, me, p);
    for (std::uint64_t t = chunk_lo(ctx.ntasks, me, p); t < hi; ++t) {
      if (restored.count(t) == 0) dq.push_back(t);
    }
  }

  Rng rng = make_steal_rng(ctx.steal, epoch, me);
  std::int64_t counter = 0;  ///< work responses sent minus received
  bool black = false;        ///< received work since the token passed
  bool probe_out = false;    ///< rank 0: token currently circulating
  bool terminated = false;

  auto serve_steal = [&](const rt::Message& m) {
    const StealReq rq = unpack_steal_req(m);
    if (rq.epoch != epoch) return;  // straggler from an earlier map
    StealResp resp;
    resp.epoch = epoch;
    resp.seq = rq.seq;
    resp.tasks = give_tasks(dq, rq.max, ctx.steal.batch);
    if (!resp.tasks.empty()) ++counter;
    comm.send_bytes(m.source, kTagStealResp, pack_steal_resp(resp));
  };
  // Serving point between tasks: briefly *block* for thief requests
  // instead of merely probing. Under the conservative sim a compute-bound
  // rank is never preempted, so a non-blocking probe runs ahead of the
  // thieves' clocks and would never observe their requests; yielding for
  // an instant lets lagging ranks catch up, after which every request
  // that has arrived by now (in virtual time) is matched. Costs
  // kServeWindow of virtual time per task when nobody is stealing —
  // negligible against any real task — and on the native backend it
  // degrades to an ordinary short-timeout receive.
  auto drain_steals = [&] {
    rt::Message m;
    while (comm.recv_bytes_deadline(mpi::kAnySource, kTagSteal,
                                    comm.now() + kServeWindow,
                                    &m) == rt::RecvStatus::Ok) {
      serve_steal(m);
    }
  };
  auto handle_token = [&](const rt::Message& m) {
    const StealToken tk = unpack_token(m);
    if (tk.epoch != epoch) return;
    if (me == 0) {
      probe_out = false;
      if (tk.black == 0 && !black && tk.count + counter == 0) terminated = true;
    } else {
      StealToken fwd;
      fwd.epoch = epoch;
      fwd.black = (tk.black != 0 || black) ? 1 : 0;
      fwd.count = tk.count + counter;
      comm.send_bytes((me + 1) % p, kTagToken, pack_token(fwd));
      black = false;
    }
  };
  // Passive-side state. Everything a rank without work can receive —
  // thief requests, its own steal response, the termination token, stop —
  // funnels through ONE any-source/any-tag receive, so each of them wakes
  // the blocked rank the moment it arrives. This matters for scale: if
  // the token instead waited behind a fixed nap at every hop, one
  // circulation would cost p * nap of serial virtual time, and the
  // termination tail alone would dwarf the map at thousands of ranks.
  double nap = ctx.steal.backoff_init;
  bool awaiting = false;     ///< a steal request is outstanding
  int victim = -1;
  std::uint32_t seq = 0;
  double next_attempt = 0.0;  ///< earliest time for the next steal attempt
  double t_idle = -1.0;       ///< start of the open steal_wait span, if any
  double next_probe = 0.0;    ///< rank 0: earliest next token launch

  auto close_idle = [&] {
    if (t_idle >= 0.0 && rec != nullptr) {
      rec->add(me, trace::Category::Fault, "steal_wait", t_idle, comm.now());
    }
    t_idle = -1.0;
  };

  while (true) {
    if (!awaiting) {
      drain_steals();
      if (!dq.empty()) {
        close_idle();
        const std::uint64_t t = dq.front();
        dq.pop_front();
        ctx.exec->run_direct(t, /*retry=*/false);
        nap = ctx.steal.backoff_init;
        continue;
      }
    }
    if (t_idle < 0.0) t_idle = comm.now();

    if (me == 0) {
      if (terminated) {
        close_idle();
        ByteWriter w;
        w.put(epoch);
        const std::vector<std::byte> stop = w.take();
        for (int r = 1; r < p; ++r) comm.send_bytes(r, kTagStop, stop);
        return;
      }
      // Pace token launches: an unthrottled token round-trips in
      // microseconds of virtual time and would flood the cluster with
      // probe traffic while ranks still work.
      if (!probe_out && comm.now() >= next_probe) {
        StealToken tk;
        tk.epoch = epoch;
        comm.send_bytes(1, kTagToken, pack_token(tk));
        black = false;
        probe_out = true;
        next_probe = comm.now() + ctx.ft.worker_poll;
        continue;
      }
    }

    // Out of work: keep one randomized steal request outstanding, with an
    // exponential pause between empty-handed attempts. The response is
    // never abandoned — without an injector the transport is reliable, so
    // it arrives once the victim next serves requests (between its tasks
    // at the latest).
    if (!awaiting && comm.now() >= next_attempt) {
      victim = static_cast<int>(rng.below(static_cast<std::uint64_t>(p - 1)));
      if (victim >= me) ++victim;
      seq = ++ps.steal_seq;
      StealReq rq;
      rq.epoch = epoch;
      rq.seq = seq;
      rq.max = static_cast<std::uint32_t>(ctx.steal.batch);
      comm.send_bytes(victim, kTagSteal, pack_steal_req(rq));
      ++sstats.steals_attempted;
      if (reg != nullptr) reg->counter("sched.steals_attempted").inc();
      awaiting = true;
    }

    // Single dispatcher wait. The deadline only bounds how often we poll
    // the victim's liveness (awaiting) or re-attempt after a backoff
    // pause — every message of interest interrupts the wait on arrival.
    const double deadline = awaiting ? comm.now() + ctx.ft.worker_poll
                                     : std::max(next_attempt, comm.now() + kServeWindow);
    rt::Message m;
    const rt::RecvStatus st =
        comm.recv_bytes_deadline(mpi::kAnySource, mpi::kAnyUserTag, deadline, &m);
    if (st != rt::RecvStatus::Ok) {
      // An any-source wait cannot report PeerDead, so a crashed victim
      // must be caught here: without the ledger the token can never
      // complete, and the timed waits keep every survivor spinning past
      // the engine's deadlock detector. Fail fast instead.
      MRBIO_CHECK(!awaiting || comm.peer_state(victim) != mpi::PeerState::Failed,
                  "rank ", me, ": rank ", victim,
                  " died during a map without fault tolerance; enable ft (or use "
                  "--scheduler master-ft) to survive worker crashes");
      continue;
    }
    if (m.tag == kTagSteal) {
      serve_steal(m);
      continue;
    }
    if (m.tag == kTagToken) {
      handle_token(m);
      continue;
    }
    if (m.tag == kTagStop && me != 0) {
      // Termination was declared while we waited: any pending response is
      // necessarily empty; abandon it (the next map drops it by epoch).
      ByteReader r(m.payload);
      if (r.get<std::uint32_t>() == epoch) {
        close_idle();
        return;
      }
      continue;
    }
    if (m.tag == kTagStealResp) {
      const StealResp resp = unpack_steal_resp(m);
      if (!awaiting || resp.epoch != epoch || resp.seq != seq) continue;  // straggler
      awaiting = false;
      if (!resp.tasks.empty()) {
        for (const std::uint64_t t : resp.tasks) dq.push_back(t);
        --counter;
        black = true;
        ++sstats.steals_succeeded;
        sstats.tasks_stolen += resp.tasks.size();
        if (reg != nullptr) {
          reg->counter("sched.steals_succeeded").inc();
          reg->counter("sched.tasks_stolen").inc(resp.tasks.size());
        }
        nap = ctx.steal.backoff_init;
        next_attempt = comm.now();
      } else {
        next_attempt = comm.now() + jittered(nap, rng);
        nap = std::min(nap * 2.0, ctx.steal.backoff_max);
      }
      continue;
    }
    MRBIO_CHECK(false, "rank ", me, ": unexpected tag ", m.tag,
                " from rank ", m.source, " in the steal map loop");
  }
}

class StealScheduler final : public Scheduler {
 public:
  const char* name() const override { return "steal"; }

  void execute(MapContext& ctx) override {
    // The epoch advances on every steal map so stragglers from the
    // previous map are recognized; it must move in lockstep on all ranks
    // (execute() is collective, so it does).
    const std::uint32_t epoch = ++ctx.proto->epoch;
    if (ctx.comm.size() == 1) {
      run_all_local(ctx);
      return;
    }
    if (ctx.ft.enabled) {
      run_sharded_steal(ctx, epoch);
    } else {
      run_steal_plain(ctx, epoch);
    }
  }
};

}  // namespace

std::unique_ptr<Scheduler> make_steal_scheduler() {
  return std::make_unique<StealScheduler>();
}

}  // namespace mrbio::sched
