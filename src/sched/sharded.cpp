// Sharded exactly-once ledger for the fault-tolerant steal policy.
//
// Instead of funnelling every claim and commit through rank 0, the task
// range [0, ntasks) is chunk-partitioned into shard_count(ft, P) ledger
// shards and shard s is owned by rank s — every rank is simultaneously a
// worker (deque + stealing, as in steal.cpp) and, for the shards it owns,
// the exactly-once commit authority of its own task range. Commits and
// grant requests go to the owning shard, so the rank-0 protocol wall of
// the single-master ledger disappears and — more importantly — rank 0
// stops being a single point of failure.
//
// Ownership is a pure function of the acked death set: the owner of shard
// s is the first non-dead rank on the ring s, s+1, ..., so every rank
// that knows the same deaths derives the same owner and no adoption map
// has to be replicated. A dying rank (the fault injector crashes the
// protocol, not the thread, so a dead rank lingers as a *ghost* able to
// send and receive) broadcasts an Obit to the owner set, hands each of
// its shards to the deterministic successor — by ShardImage when no
// durable journal exists, implicitly via the on-disk journal otherwise —
// and retransmits until every successor acked. Because the transport
// reports a peer as Failed only when its whole process exits, death
// discovery rides the protocol itself: obits, the dead-set piggybacked on
// every grant, and neighbor probes for workers stuck on a dead owner's
// channel.
//
// Durability: a shard owner journals every commit decision to its own
// CRC32-framed log BEFORE answering (write-ahead), and journals a revert
// record when a committer's incarnation bumps or the committer dies. A
// successor replays the journal and continues granting; corrupting one
// shard's log therefore re-executes only that shard's task range on
// resume (the host's merge in mapreduce.cpp uses the same records via
// apply_shard_record).
//
// Exactly-once: deque and stolen tasks are *claims* — they stay Pending
// (claimed) in their shard's ledger until the completion report commits
// them, and first-commit-wins deduplicates any overlap. Claims lost to a
// death or an incarnation bump are unclaimed and become grantable;
// without a fault injector nothing is ever unclaimed, so fault-free runs
// execute every task exactly once by construction.
//
// Quiescence: a worker leaves the protocol once every owner told it to
// stop; it then announces a WireExit to every owner and waits for the
// acks. An owner acks exits only after its own worker role passed its
// final fault poll — after acking, it can never die — which guarantees
// that any rank a death could appoint as successor is still in the map.
#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sched/internal.hpp"

namespace mrbio::sched {

void apply_shard_record(std::span<const std::byte> payload,
                        std::map<std::uint64_t, DoneTask>& commits) {
  try {
    ByteReader r(payload);
    const auto kind = r.get<std::uint8_t>();
    if (kind == kShardCommit) {
      DoneTask d;
      d.task = r.get<std::uint64_t>();
      d.owner = r.get<std::int32_t>();
      d.owner_inc = r.get<std::uint32_t>();
      commits[d.task] = d;
    } else if (kind == kShardRevert) {
      const std::int32_t rank = r.get<std::int32_t>();
      (void)r.get<std::uint32_t>();  // incarnation bound, informational
      for (auto it = commits.begin(); it != commits.end();) {
        it = it->second.owner == rank ? commits.erase(it) : std::next(it);
      }
    }
  } catch (const Error&) {
    // Malformed record: skip it (the CRC framing makes this unlikely, but
    // a journal is external input and must never crash the scheduler).
  }
}

namespace {

constexpr double kServeWindow = 1e-9;  ///< see steal.cpp
/// Unanswered resend rounds on one channel before probing a neighbor for
/// the target's liveness (cheap: a false probe costs one round trip).
constexpr int kProbeEvery = 4;
constexpr double kInf = std::numeric_limits<double>::infinity();

Rng make_rng(const StealConfig& cfg, std::uint32_t epoch, int rank) {
  return Rng(mix64(cfg.seed ^ (static_cast<std::uint64_t>(epoch) << 24) ^
                   static_cast<std::uint64_t>(rank)));
}

std::vector<std::uint64_t> give_tasks(std::deque<std::uint64_t>& dq,
                                      std::uint32_t want, int batch) {
  const std::size_t cap = std::min<std::size_t>(
      {(dq.size() + 1) / 2, want, static_cast<std::size_t>(batch)});
  std::vector<std::uint64_t> tasks;
  tasks.reserve(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    tasks.push_back(dq.back());
    dq.pop_back();
  }
  return tasks;
}

enum class TState : std::uint8_t { Pending, Outstanding, Done, Failed };

struct SEntry {
  TState state = TState::Pending;
  std::int32_t owner = -1;
  std::uint32_t owner_inc = 0;
  std::uint32_t attempt = 0;
  double granted = 0.0;
  double deadline = 0.0;
  /// A Pending task some rank holds in its deque (or stole). Claimed
  /// tasks are not grantable; they are unclaimed when their holder dies,
  /// bumps its incarnation, or the grace deadline expires — and only when
  /// a fault injector exists, so fault-free runs never double-execute.
  bool claimed = false;
};

struct Shard {
  int id = -1;
  std::uint64_t lo = 0, hi = 0;
  std::vector<SEntry> entries;
  std::deque<std::uint64_t> free_q;  ///< grant candidates (lazily invalidated)
  std::uint64_t nfree = 0, nclaimed = 0, nout = 0, ndone = 0, nfail = 0;
  /// Adopted without a durable journal: granting and commit decisions are
  /// deferred until the dying owner's ShardImage arrives.
  bool awaiting_image = false;

  SEntry& at(std::uint64_t t) { return entries[t - lo]; }
  std::uint64_t size() const { return hi - lo; }
  bool settled() const { return ndone + nfail == size(); }
};

/// One map phase of the sharded steal-ft protocol on one rank.
struct ShardedRun {
  MapContext& ctx;
  mpi::Comm& comm;
  obs::Registry* reg;
  trace::Recorder* rec;
  const FtConfig& ft;
  SchedStats& sstats;
  ProtocolState& ps;
  fault::Injector* inj;
  const std::uint32_t epoch;
  const int me, p, nshards;
  const std::uint64_t ntasks;
  Rng rng;

  bool polling = true;      ///< fault polls active (worker phase only)
  bool worker_done = false; ///< this rank's worker role has ended
  bool i_died = false;      ///< permanent death: ghost until handoff acked

  std::deque<std::uint64_t> dq;
  std::int64_t staged = -1;
  std::uint32_t staged_attempt = 0;
  /// Tasks this incarnation has already committed. A task can be handed
  /// to the same rank twice (a stale steal response absorbed after a
  /// ledger re-grant of the same range): the duplicate is re-reported
  /// without re-running, never re-emitted.
  std::set<std::uint64_t> self_done;

  // Owner role.
  std::map<int, Shard> shards;
  std::multimap<double, std::pair<int, std::uint64_t>> expiry;
  double grace = kInf;
  TimeoutEstimator est;
  fault::PhiAccrualDetector det;
  std::set<int> exited;         ///< worker-done declarations (incl. inherited)
  std::set<int> my_exit_acked;  ///< owners that acked this rank's exit
  std::set<int> my_obit_acked;  ///< successors that acked this rank's obit
  std::set<int> pending_exit_acks;  ///< exits to ack once worker_done
  std::vector<std::pair<int, std::int32_t>> pending_obit_acks;  ///< (src, dead)

  ShardedRun(MapContext& c, std::uint32_t ep)
      : ctx(c),
        comm(c.comm),
        reg(c.comm.metrics()),
        rec(c.rec),
        ft(c.ft),
        sstats(*c.stats),
        ps(*c.proto),
        inj(c.comm.runtime().faults()),
        epoch(ep),
        me(c.comm.rank()),
        p(c.comm.size()),
        nshards(shard_count(c.ft, c.comm.size())),
        ntasks(c.ntasks),
        rng(make_rng(c.steal, ep, c.comm.rank())),
        det(c.ft.heartbeat) {}

  bool alive(int r) const { return ps.peers_dead[r] == 0; }

  /// Pure function of the acked death set: first non-dead rank on the
  /// ring s, s+1, ... owns shard s.
  int owner_of(int s) const {
    for (int k = 0; k < p; ++k) {
      const int r = (s + k) % p;
      if (alive(r)) return r;
    }
    return s;  // everyone dead: unreachable in any completable run
  }

  std::vector<std::int32_t> dead_list() const {
    std::vector<std::int32_t> out;
    for (int r = 0; r < p; ++r) {
      if (!alive(r)) out.push_back(r);
    }
    return out;
  }

  std::vector<int> owner_ranks() const {
    std::vector<int> out;
    for (int s = 0; s < nshards; ++s) {
      const int o = owner_of(s);
      if (std::find(out.begin(), out.end(), o) == out.end()) out.push_back(o);
    }
    return out;
  }

  void poll_crash() {
    if (polling && !i_died && inj != nullptr) inj->maybe_crash(me, comm.now());
  }

  // -- Shard journal ---------------------------------------------------------

  static std::vector<std::byte> enc_commit(std::uint64_t task, std::int32_t owner,
                                           std::uint32_t inc) {
    ByteWriter w;
    w.put(kShardCommit);
    w.put(task);
    w.put(owner);
    w.put(inc);
    return w.take();
  }

  static std::vector<std::byte> enc_revert(std::int32_t rank, std::uint32_t inc) {
    ByteWriter w;
    w.put(kShardRevert);
    w.put(rank);
    w.put(inc);
    return w.take();
  }

  bool journaling() const { return ctx.exec->shard_journal_enabled(); }

  void journal_commit(int shard, std::uint64_t task, std::int32_t owner,
                      std::uint32_t inc) {
    if (journaling()) ctx.exec->shard_journal_append(shard, enc_commit(task, owner, inc));
  }

  void journal_revert(int shard, std::int32_t rank, std::uint32_t inc) {
    if (journaling()) ctx.exec->shard_journal_append(shard, enc_revert(rank, inc));
  }

  // -- Ledger ----------------------------------------------------------------

  double attempt_timeout(std::uint32_t attempt) const {
    double t = effective_timeout(ft, est);
    for (std::uint32_t a = 1; a < attempt; ++a) t *= ft.backoff;
    return t;
  }

  std::uint64_t total_claimed() const {
    std::uint64_t n = 0;
    for (const auto& [sid, sh] : shards) n += sh.nclaimed;
    return n;
  }

  bool any_awaiting() const {
    for (const auto& [sid, sh] : shards) {
      if (sh.awaiting_image) return true;
    }
    return false;
  }

  bool all_settled() const {
    for (const auto& [sid, sh] : shards) {
      if (sh.awaiting_image || !sh.settled()) return false;
    }
    return true;
  }

  void unclaim_all() {
    // Injector-gated: without faults a claim is always eventually
    // committed by its holder, and unclaiming would double-execute.
    if (inj == nullptr) return;
    for (auto& [sid, sh] : shards) {
      if (sh.nclaimed == 0) continue;
      for (std::uint64_t t = sh.lo; t < sh.hi; ++t) {
        SEntry& e = sh.at(t);
        if (e.state == TState::Pending && e.claimed) {
          e.claimed = false;
          --sh.nclaimed;
          ++sh.nfree;
          sh.free_q.push_back(t);
        }
      }
    }
  }

  /// Voids every commit and grant `rank` holds at an incarnation below
  /// `inc_limit` (UINT32_MAX = all: the rank died).
  void revert_by(std::int32_t rank, std::uint32_t inc_limit) {
    for (auto& [sid, sh] : shards) {
      bool any = false;
      for (std::uint64_t t = sh.lo; t < sh.hi; ++t) {
        const SEntry& e = sh.at(t);
        if (e.owner == rank && e.owner_inc < inc_limit &&
            (e.state == TState::Outstanding || e.state == TState::Done)) {
          any = true;
          break;
        }
      }
      if (!any) continue;
      journal_revert(sid, rank, inc_limit);
      for (std::uint64_t t = sh.lo; t < sh.hi; ++t) {
        SEntry& e = sh.at(t);
        if (e.owner != rank || e.owner_inc >= inc_limit) continue;
        if (e.state == TState::Outstanding) {
          --sh.nout;
        } else if (e.state == TState::Done) {
          --sh.ndone;
        } else {
          continue;
        }
        e.state = TState::Pending;
        e.owner = -1;
        e.claimed = false;
        ++sh.nfree;
        sh.free_q.push_back(t);
      }
    }
  }

  void expire_entry(Shard& sh, std::uint64_t t, SEntry& e) {
    --sh.nout;
    if (e.attempt >= 1 + static_cast<std::uint32_t>(ft.max_retries)) {
      e.state = TState::Failed;
      ++sh.nfail;
      ++sstats.tasks_failed;
      if (reg != nullptr) reg->counter("ft.tasks_failed").inc();
    } else {
      e.state = TState::Pending;
      e.owner = -1;
      e.claimed = false;
      ++sh.nfree;
      sh.free_q.push_back(t);
      ++sstats.tasks_retried;
      if (reg != nullptr) reg->counter("ft.tasks_retried").inc();
    }
  }

  void handle_expiries() {
    const double now = comm.now();
    while (!expiry.empty() && expiry.begin()->first <= now) {
      const auto [dl, key] = *expiry.begin();
      expiry.erase(expiry.begin());
      const auto it = shards.find(key.first);
      if (it == shards.end()) continue;
      Shard& sh = it->second;
      if (key.second < sh.lo || key.second >= sh.hi) continue;
      SEntry& e = sh.at(key.second);
      if (e.state != TState::Outstanding || e.deadline != dl) continue;  // stale
      expire_entry(sh, key.second, e);
    }
  }

  void evict_suspects() {
    if (!det.config().enabled || shards.empty() || i_died) return;
    const double now = comm.now();
    for (int r = 0; r < p; ++r) {
      if (r == me || !alive(r) || !det.suspect(r, now)) continue;
      bool any = false;
      for (auto& [sid, sh] : shards) {
        for (std::uint64_t t = sh.lo; t < sh.hi; ++t) {
          SEntry& e = sh.at(t);
          if (e.state == TState::Outstanding && e.owner == r) {
            expire_entry(sh, t, e);
            any = true;
          }
        }
      }
      if (any) {
        ++sstats.evictions;
        if (reg != nullptr) reg->counter("ft.evictions").inc();
        if (rec != nullptr) {
          rec->add(me, trace::Category::Fault, "phi_evict", now, now);
        }
      }
      det.forget(r);  // a recovered peer re-earns trust from a clean window
    }
    if (reg != nullptr) reg->gauge("fault.phi_max").set(det.max_phi(now));
  }

  void arm_grace() {
    if (inj == nullptr || grace < kInf || total_claimed() == 0) return;
    grace = comm.now() + effective_timeout(ft, est);
  }

  void upkeep() {
    if (!shards.empty() && !i_died) {
      handle_expiries();
      if (comm.now() >= grace) {
        // Claims outlived the grace deadline with askers waiting: their
        // holders are presumed lost (dead ghosts, or thieves that
        // abandoned a steal response). Unclaim and re-grant.
        unclaim_all();
        grace = kInf;
      }
      evict_suspects();
    }
    if (worker_done && !pending_exit_acks.empty()) {
      for (const int r : pending_exit_acks) send_exit_ack(r, 1);
      pending_exit_acks.clear();
    }
    if (!pending_obit_acks.empty() && !any_awaiting()) {
      for (const auto& [src, dead] : pending_obit_acks) send_obit_ack(src, dead);
      pending_obit_acks.clear();
    }
  }

  /// 1 = absorb the staged task, 0 = discard (another attempt won).
  std::uint8_t ledger_commit(Shard& sh, std::uint64_t t, std::int32_t src,
                             std::uint32_t inc) {
    SEntry& e = sh.at(t);
    if (e.state == TState::Done) {
      return (e.owner == src && e.owner_inc == inc) ? 1 : 0;
    }
    journal_commit(sh.id, t, src, inc);  // write-ahead: journal, then decide
    if (e.state == TState::Pending) {
      if (e.claimed) {
        --sh.nclaimed;
      } else {
        --sh.nfree;
      }
    } else if (e.state == TState::Outstanding) {
      --sh.nout;
      est.observe(comm.now() - e.granted);
    } else {  // Failed: a presumed-lost attempt committed after all
      --sh.nfail;
      --sstats.tasks_failed;
    }
    e.state = TState::Done;
    e.owner = src;
    e.owner_inc = inc;
    ++sh.ndone;
    return 1;
  }

  /// The commit + grant decision shared by the wire path and the local
  /// fast path. decided=0 means "could not decide, keep staged and retry".
  WireGrant decide(std::int32_t src, std::uint32_t inc, std::int64_t completed,
                   bool wants) {
    WireGrant g;
    g.epoch = epoch;
    g.assign = kAssignRetryLater;
    g.dead_set = dead_list();
    if (completed >= 0) {
      const int s = shard_of(static_cast<std::uint64_t>(completed), ntasks, nshards);
      const auto it = shards.find(s);
      if (it == shards.end() || owner_of(s) != me) {
        g.assign = kAssignNotOwner;
        g.decided = 0;
        return g;
      }
      if (it->second.awaiting_image) {
        g.decided = 0;
        return g;
      }
      g.commit = ledger_commit(it->second, static_cast<std::uint64_t>(completed),
                               src, inc);
    }
    if (!wants) return g;
    for (auto& [sid, sh] : shards) {
      if (sh.awaiting_image) continue;
      while (!sh.free_q.empty()) {
        const std::uint64_t t = sh.free_q.front();
        sh.free_q.pop_front();
        SEntry& e = sh.at(t);
        if (e.state != TState::Pending || e.claimed) continue;  // stale
        e.state = TState::Outstanding;
        e.owner = src;
        e.owner_inc = inc;
        ++e.attempt;
        e.granted = comm.now();
        e.deadline = comm.now() + attempt_timeout(e.attempt);
        --sh.nfree;
        ++sh.nout;
        expiry.emplace(e.deadline, std::make_pair(sh.id, t));
        g.assign = static_cast<std::int64_t>(t);
        g.attempt = e.attempt;
        return g;
      }
    }
    if (all_settled()) {
      g.assign = kAssignStop;
    } else {
      arm_grace();  // claimed or outstanding work remains; asker must wait
    }
    return g;
  }

  // -- Failover --------------------------------------------------------------

  void adopt(int s) {
    ++sstats.failovers;
    if (reg != nullptr) reg->counter("ft.failovers").inc();
    if (rec != nullptr) {
      rec->add(me, trace::Category::Fault, "shard_adopt", comm.now(), comm.now());
    }
    Shard sh;
    sh.id = s;
    sh.lo = chunk_lo(ntasks, s, nshards);
    sh.hi = chunk_hi(ntasks, s, nshards);
    sh.entries.resize(sh.size());
    if (journaling()) {
      std::map<std::uint64_t, DoneTask> commits;
      ctx.exec->shard_journal_replay(s, [&](const std::vector<std::byte>& rec_bytes) {
        apply_shard_record(rec_bytes, commits);
      });
      std::set<std::int32_t> dead_committers;
      for (const auto& [t, d] : commits) {
        if (t < sh.lo || t >= sh.hi) continue;
        if (d.owner >= 0 && d.owner < p && !alive(d.owner)) {
          dead_committers.insert(d.owner);
          continue;  // its results died with it: re-run
        }
        SEntry& e = sh.at(t);
        e.state = TState::Done;
        e.owner = d.owner;
        e.owner_inc = d.owner_inc;
        ++sh.ndone;
      }
      for (const std::int32_t r : dead_committers) {
        ctx.exec->shard_journal_append(s, enc_revert(r, std::numeric_limits<std::uint32_t>::max()));
      }
    } else {
      sh.awaiting_image = true;
    }
    if (!sh.awaiting_image) seed_free(sh);
    shards.emplace(s, std::move(sh));
  }

  /// Adopted tasks are seeded unclaimed: any surviving claim on them
  /// commits through first-commit-wins, and a duplicate grant is absorbed
  /// the same way.
  void seed_free(Shard& sh) {
    for (std::uint64_t t = sh.lo; t < sh.hi; ++t) {
      if (sh.at(t).state == TState::Pending) {
        ++sh.nfree;
        sh.free_q.push_back(t);
      }
    }
  }

  void mark_dead(int r) {
    if (r < 0 || r >= p || r == me || !alive(r)) return;
    ps.peers_dead[r] = 1;
    det.forget(r);
    if (i_died) return;  // a ghost records the fact but adopts nothing
    revert_by(r, std::numeric_limits<std::uint32_t>::max());
    unclaim_all();
    for (int s = 0; s < nshards; ++s) {
      if (owner_of(s) == me && shards.find(s) == shards.end()) adopt(s);
    }
  }

  void apply_image(const ShardImage& img) {
    const auto it = shards.find(img.shard);
    if (it == shards.end() || !it->second.awaiting_image) return;
    Shard& sh = it->second;
    for (const ShardEntryRecord& d : img.done) {
      if (d.task < sh.lo || d.task >= sh.hi) continue;
      if (d.owner < 0 || d.owner >= p || !alive(d.owner)) continue;
      SEntry& e = sh.at(d.task);
      if (e.state == TState::Done) continue;
      e.state = TState::Done;
      e.owner = d.owner;
      e.owner_inc = d.owner_inc;
      ++sh.ndone;
    }
    sh.awaiting_image = false;
    seed_free(sh);
  }

  // -- Message handlers ------------------------------------------------------

  void send_obit_ack(int dst, std::int32_t dead_rank) {
    Obit a;
    a.epoch = epoch;
    a.dead_rank = dead_rank;
    a.dead_set = dead_list();  // a ghost's ack reveals its own death
    comm.send_bytes(dst, kTagObitAck, pack_obit(a));
  }

  void send_exit_ack(int dst, std::uint8_t ack) {
    WireExit e;
    e.epoch = epoch;
    e.ack = ack;
    comm.send_bytes(dst, kTagExitAck, pack_exit(e));
  }

  void owner_serve(const rt::Message& m) {
    const WireReq req = unpack_req(m);
    if (req.epoch != epoch) return;
    const int src = m.source;
    if (i_died) {
      // Ghost: bounce with the death news so the sender re-resolves.
      WireGrant g;
      g.seq = req.seq;
      g.epoch = epoch;
      g.decided = 0;
      g.assign = kAssignNotOwner;
      g.dead_set = dead_list();
      comm.send_bytes(src, kTagTask, pack_grant(g));
      return;
    }
    FtWorkerView& w = ps.shard_clients[src];
    if (req.seq == w.last_seq) {  // resend: replay the cached decision
      comm.send_bytes(src, kTagTask, w.cached_grant);
      return;
    }
    if (req.seq < w.last_seq) return;  // ancient duplicate
    if (req.incarnation > w.incarnation) {
      // The client respawned: everything its old incarnations held —
      // commits (results lost with its memory) and claims — is void.
      w.incarnation = req.incarnation;
      revert_by(src, req.incarnation);
      unclaim_all();
    }
    WireGrant g = decide(src, req.incarnation, req.completed_task, req.wants != 0);
    g.seq = req.seq;
    w.last_seq = req.seq;
    w.cached_grant = pack_grant(g);
    comm.send_bytes(src, kTagTask, w.cached_grant);
  }

  void serve_steal(const rt::Message& m) {
    const StealReq rq = unpack_steal_req(m);
    if (rq.epoch != epoch) return;
    StealPeerView& peer = ps.steal_peers[m.source];
    if (rq.seq == peer.last_seq) {
      comm.send_bytes(m.source, kTagStealResp, peer.cached_resp);
      return;
    }
    if (rq.seq < peer.last_seq) return;
    StealResp resp;
    resp.epoch = epoch;
    resp.seq = rq.seq;
    resp.tasks = give_tasks(dq, rq.max, ctx.steal.batch);
    peer.last_seq = rq.seq;
    peer.cached_resp = pack_steal_resp(resp);
    comm.send_bytes(m.source, kTagStealResp, peer.cached_resp);
  }

  void handle_obit(const rt::Message& m) {
    const Obit o = unpack_obit(m);
    if (o.epoch != epoch) return;
    for (const std::int32_t r : o.dead_set) mark_dead(r);
    mark_dead(o.dead_rank);
    for (const std::int32_t r : o.exited_set) exited.insert(r);
    if (any_awaiting()) {
      // This death made us successor of journal-less shards: ack only
      // once the images applied, so the dying owner keeps custody (and
      // keeps retransmitting) until the handover really happened.
      pending_obit_acks.emplace_back(m.source, o.dead_rank);
    } else {
      send_obit_ack(m.source, o.dead_rank);
    }
  }

  void handle_exit(const rt::Message& m) {
    const WireExit e = unpack_exit(m);
    if (e.epoch != epoch) return;
    if (m.tag == kTagExitAck) {
      if (e.ack == 2) {
        mark_dead(m.source);  // the "owner" is a ghost: re-resolve
      } else {
        my_exit_acked.insert(m.source);
      }
      return;
    }
    if (i_died) {
      send_exit_ack(m.source, 2);
      return;
    }
    exited.insert(m.source);
    if (worker_done) {
      send_exit_ack(m.source, 1);
    } else {
      // Acking promises this rank will never die; that promise is only
      // true after the worker role's final fault poll. Defer.
      pending_exit_acks.insert(m.source);
    }
  }

  void dispatch(const rt::Message& m) {
    det.heard(m.source, comm.now());
    switch (m.tag) {
      case kTagDone:
        owner_serve(m);
        return;
      case kTagSteal:
        serve_steal(m);
        return;
      case kTagStealResp: {
        // Answer to an abandoned steal request: the victim gave the
        // claims away, so keep them if this worker still runs (otherwise
        // the owner's grace deadline recovers them).
        if (worker_done || i_died) return;
        const StealResp resp = unpack_steal_resp(m);
        if (resp.epoch != epoch) return;
        for (const std::uint64_t t : resp.tasks) dq.push_back(t);
        return;
      }
      case kTagTask: {
        // Stray grant — a probe reply or a stale resend. Its dead-set is
        // the payload we probed for.
        const WireGrant g = unpack_grant(m);
        if (g.epoch != epoch) return;
        for (const std::int32_t r : g.dead_set) mark_dead(r);
        return;
      }
      case kTagObit:
        handle_obit(m);
        return;
      case kTagShardImage: {
        const ShardImage img = unpack_shard_image(m);
        if (img.epoch == epoch) apply_image(img);
        return;
      }
      case kTagObitAck: {
        const Obit a = unpack_obit(m);
        if (a.epoch != epoch) return;
        for (const std::int32_t r : a.dead_set) mark_dead(r);
        if (a.dead_rank == me) my_obit_acked.insert(m.source);
        return;
      }
      case kTagExit:
      case kTagExitAck:
        handle_exit(m);
        return;
      default:
        return;  // stale plain-steal traffic (token/stop) from an old map
    }
  }

  /// The single wait point: serves every protocol duty while waiting.
  /// With want_tag >= 0, returns Ok and fills *out when a message with
  /// that tag (and source, if want_src >= 0) arrives; everything else is
  /// dispatched. Returns Timeout at `deadline`.
  rt::RecvStatus serve_until(double deadline, int want_src, int want_tag,
                             rt::Message* out) {
    while (true) {
      upkeep();
      rt::Message m;
      const rt::RecvStatus st =
          comm.recv_bytes_deadline(mpi::kAnySource, mpi::kAnyUserTag, deadline, &m);
      if (st != rt::RecvStatus::Ok) return st;
      if (want_tag >= 0 && m.tag == want_tag &&
          (want_src < 0 || m.source == want_src)) {
        *out = m;
        return rt::RecvStatus::Ok;
      }
      dispatch(m);
    }
  }

  void drain() { (void)serve_until(comm.now() + kServeWindow, -1, -1, nullptr); }

  /// Fire-and-forget liveness probe at a neighbor of `anchor`: any rank
  /// answers a WireReq, and the grant's dead-set tells us whether the
  /// silent anchor is dead. The reply lands in dispatch().
  void probe(int anchor, int walk) {
    for (int k = 0; k < p; ++k) {
      const int c = (anchor + 1 + walk + k) % p;
      // Never probe the anchor itself: a probe consumes a sequence number
      // on its channel and would shadow an in-flight exchange there.
      if (c == me || c == anchor || !alive(c)) continue;
      WireReq ping;
      ping.incarnation = ps.incarnation;
      ping.epoch = epoch;
      ping.seq = ++ps.owner_seq[c];
      ping.completed_task = -1;
      ping.wants = 0;
      comm.send_bytes(c, kTagDone, pack_req(ping));
      return;
    }
  }

  // -- Client side -----------------------------------------------------------

  struct Decision {
    WireGrant grant;
    int responder = -1;
  };

  /// Patient exactly-once exchange with the owner of `target_shard`:
  /// unbounded jittered resends (a busy owner answers between tasks),
  /// neighbor probes and grant dead-sets for death discovery, re-routing
  /// to the successor on NotOwner or learned death, and a fresh sequence
  /// number per undecided retry. Returns only a decided grant.
  Decision transact(WireReq base, int target_shard) {
    while (true) {
      poll_crash();
      const int o = owner_of(target_shard);
      if (o == me) {
        const auto it = shards.find(target_shard);
        if (it != shards.end() && !it->second.awaiting_image) {
          WireGrant g = decide(me, ps.incarnation, base.completed_task,
                               base.wants != 0);
          if (g.decided != 0) return {g, me};
        }
        (void)serve_until(comm.now() + jittered(ft.worker_poll, rng), -1, -1,
                          nullptr);
        continue;
      }
      WireReq req = base;
      req.incarnation = ps.incarnation;
      req.epoch = epoch;
      req.seq = ++ps.owner_seq[o];
      const std::vector<std::byte> wire = pack_req(req);
      comm.send_bytes(o, kTagDone, wire);
      int timeouts = 0;
      int walk = 0;
      bool rerouted = false;
      while (true) {
        poll_crash();
        rt::Message m;
        const rt::RecvStatus st = serve_until(
            comm.now() + jittered(ft.worker_poll, rng), o, kTagTask, &m);
        if (!alive(o)) {
          rerouted = true;  // learned the owner died: re-resolve
          break;
        }
        if (st != rt::RecvStatus::Ok) {
          ++timeouts;
          comm.send_bytes(o, kTagDone, wire);
          if (timeouts % kProbeEvery == 0) probe(o, walk++);
          continue;
        }
        const WireGrant g = unpack_grant(m);
        if (g.epoch != epoch || g.seq != req.seq) continue;  // stale
        for (const std::int32_t r : g.dead_set) mark_dead(r);
        if (g.decided != 0 && g.assign != kAssignNotOwner) return {g, o};
        rerouted = true;  // NotOwner or undecided: nap, new seq, re-resolve
        break;
      }
      if (rerouted) {
        (void)serve_until(comm.now() + jittered(ft.worker_poll, rng), -1, -1,
                          nullptr);
      }
    }
  }

  void run_one(std::uint64_t t, std::uint32_t attempt) {
    if (self_done.count(t) == 0) {
      const double t0 = comm.now();
      ctx.exec->run_staged(t, /*retry=*/attempt > 1);
      est.observe(comm.now() - t0);
    }
    staged = static_cast<std::int64_t>(t);
    staged_attempt = attempt;
  }

  void report_staged() {
    const std::uint64_t t = static_cast<std::uint64_t>(staged);
    WireReq rep;
    rep.completed_task = staged;
    rep.attempt = staged_attempt;
    rep.wants = 0;
    const Decision d = transact(rep, shard_of(t, ntasks, nshards));
    if (d.grant.commit != 0 && self_done.insert(t).second) {
      ctx.exec->commit_staged(t);
    } else {
      // Either another attempt won, or this rank already emitted the task
      // on a previous grant: the (empty) staging is dropped either way.
      ctx.exec->discard_staged();
    }
    staged = -1;
    staged_attempt = 0;
  }

  void steal_sweep() {
    if (p < 2) return;
    const double t0 = comm.now();
    std::vector<int> order;
    for (int r = 0; r < p; ++r) {
      if (r != me && alive(r)) order.push_back(r);
    }
    if (order.empty()) return;
    for (std::size_t i = order.size() - 1; i > 0; --i) {
      std::swap(order[i], order[rng.below(i + 1)]);
    }
    for (const int victim : order) {
      if (!alive(victim)) continue;
      const std::uint32_t seq = ++ps.steal_seq;
      StealReq rq;
      rq.epoch = epoch;
      rq.seq = seq;
      rq.max = static_cast<std::uint32_t>(ctx.steal.batch);
      const std::vector<std::byte> wire = pack_steal_req(rq);
      comm.send_bytes(victim, kTagSteal, wire);
      ++sstats.steals_attempted;
      if (reg != nullptr) reg->counter("sched.steals_attempted").inc();
      int resends = 0;
      while (true) {
        poll_crash();
        rt::Message m;
        const rt::RecvStatus st = serve_until(
            comm.now() + jittered(ft.worker_poll, rng), victim, kTagStealResp, &m);
        if (st != rt::RecvStatus::Ok) {
          if (++resends > ctx.steal.max_resends) break;  // give up on victim
          comm.send_bytes(victim, kTagSteal, wire);
          continue;
        }
        const StealResp resp = unpack_steal_resp(m);
        if (resp.epoch != epoch) continue;
        if (resp.seq != seq) {
          for (const std::uint64_t t : resp.tasks) dq.push_back(t);
          continue;  // answer to an earlier abandoned request
        }
        if (!resp.tasks.empty()) {
          for (const std::uint64_t t : resp.tasks) dq.push_back(t);
          ++sstats.steals_succeeded;
          sstats.tasks_stolen += resp.tasks.size();
          if (reg != nullptr) {
            reg->counter("sched.steals_succeeded").inc();
            reg->counter("sched.tasks_stolen").inc(resp.tasks.size());
          }
        }
        break;
      }
      if (!dq.empty()) break;
    }
    if (rec != nullptr) {
      rec->add(me, trace::Category::Fault, "steal_wait", t0, comm.now());
    }
  }

  // -- Lifecycle -------------------------------------------------------------

  void setup_owner() {
    std::map<std::uint64_t, const DoneTask*> restored;
    if (ctx.restored != nullptr) {
      for (const DoneTask& d : *ctx.restored) restored[d.task] = &d;
    }
    for (int s = 0; s < nshards; ++s) {
      if (owner_of(s) != me) continue;
      Shard sh;
      sh.id = s;
      sh.lo = chunk_lo(ntasks, s, nshards);
      sh.hi = chunk_hi(ntasks, s, nshards);
      sh.entries.resize(sh.size());
      for (std::uint64_t t = sh.lo; t < sh.hi; ++t) {
        const auto it = restored.find(t);
        if (it != restored.end()) {
          SEntry& e = sh.at(t);
          e.state = TState::Done;
          e.owner = it->second->owner;
          e.owner_inc = it->second->owner_inc;
          ++sh.ndone;
        }
      }
      if (journaling()) {
        // Re-align the journal with the restored truth: a pre-kill commit
        // whose map-log payload was lost did NOT survive the host's merge
        // and must not resurrect at the next failover. Replay what the
        // journal claims, void every committer it names, then re-commit
        // exactly the restored set. Net replay state == restored.
        std::map<std::uint64_t, DoneTask> old;
        ctx.exec->shard_journal_replay(s, [&](const std::vector<std::byte>& rec_bytes) {
          apply_shard_record(rec_bytes, old);
        });
        std::set<std::int32_t> committers;
        for (const auto& [t, d] : old) committers.insert(d.owner);
        for (const std::int32_t r : committers) {
          ctx.exec->shard_journal_append(s, enc_revert(r, std::numeric_limits<std::uint32_t>::max()));
        }
        for (std::uint64_t t = sh.lo; t < sh.hi; ++t) {
          const SEntry& e = sh.at(t);
          if (e.state == TState::Done) {
            ctx.exec->shard_journal_append(s, enc_commit(t, e.owner, e.owner_inc));
          }
        }
      }
      // Claim the chunk slice of every live rank (their seeded deques);
      // a dead rank's slice starts out grantable.
      for (std::uint64_t t = sh.lo; t < sh.hi; ++t) {
        SEntry& e = sh.at(t);
        if (e.state != TState::Pending) continue;
        const int chunk_rank = shard_of(t, ntasks, p);
        if (alive(chunk_rank)) {
          e.claimed = true;
          ++sh.nclaimed;
        } else {
          ++sh.nfree;
          sh.free_q.push_back(t);
        }
      }
      shards.emplace(s, std::move(sh));
    }
  }

  void seed_deque() {
    std::set<std::uint64_t> restored;
    if (ctx.restored != nullptr) {
      for (const DoneTask& d : *ctx.restored) restored.insert(d.task);
    }
    const std::uint64_t hi = chunk_hi(ntasks, me, p);
    for (std::uint64_t t = chunk_lo(ntasks, me, p); t < hi; ++t) {
      if (restored.count(t) == 0) dq.push_back(t);
    }
  }

  /// CrashSignal landed: simulated process death. Returns after restoring
  /// the transient-crash state; i_died tells the caller it was permanent.
  void on_signal(std::set<int>& stopped_by) {
    ctx.exec->on_crash();
    dq.clear();
    staged = -1;
    staged_attempt = 0;
    self_done.clear();  // the emissions died with the old incarnation
    ++ps.incarnation;
    ++sstats.worker_deaths;
    if (reg != nullptr) reg->counter("ft.worker_deaths").inc();
    stopped_by.clear();
    i_died = inj != nullptr && inj->permanently_crashed(me);
    if (rec != nullptr) {
      rec->add(me, trace::Category::Fault, i_died ? "worker_died" : "worker_respawn",
               comm.now(), comm.now());
    }
    if (!i_died) {
      // The shard ledgers survive a transient crash (supervisor-restored
      // protocol state, like the grant caches) — but this rank's own
      // commits name results that died with its memory.
      revert_by(me, ps.incarnation);
      unclaim_all();
    }
  }

  /// Permanent death: linger as a ghost until every successor took
  /// custody of the shards (and the owner set acked the obit), then leave.
  void die() {
    ps.peers_dead[me] = 1;
    polling = false;
    Obit ob;
    ob.epoch = epoch;
    ob.dead_rank = me;
    ob.incarnation = ps.incarnation;
    while (true) {
      std::vector<int> targets = owner_ranks();  // me excluded: I'm dead
      bool done = true;
      ob.dead_set = dead_list();
      ob.exited_set.assign(exited.begin(), exited.end());
      const std::vector<std::byte> wire = pack_obit(ob);
      for (const int t : targets) {
        if (my_obit_acked.count(t) != 0) continue;
        done = false;
        comm.send_bytes(t, kTagObit, wire);
        if (!journaling()) {
          for (const auto& [sid, sh] : shards) {
            if (owner_of(sid) != t) continue;
            ShardImage img;
            img.epoch = epoch;
            img.shard = sid;
            for (std::uint64_t task = sh.lo; task < sh.hi; ++task) {
              const SEntry& e = sh.entries[task - sh.lo];
              if (e.state == TState::Done) img.done.push_back({task, e.owner, e.owner_inc});
            }
            comm.send_bytes(t, kTagShardImage, pack_shard_image(img));
          }
        }
      }
      if (done) break;
      (void)serve_until(comm.now() + jittered(ft.worker_poll, rng), -1, -1, nullptr);
    }
    shards.clear();
  }

  /// Worker role: run own claims, report, steal, then ask the owners.
  /// Returns false when this rank died permanently.
  bool run_worker() {
    std::set<int> stopped_by;
    std::size_t ask_rr = 0;
    std::size_t known_dead = 0;
    while (true) {
      try {
        poll_crash();
        drain();
        // A death moves shard ownership: an owner that released us may
        // have adopted fresh work, so past Stop answers are void.
        const std::size_t nd = dead_list().size();
        if (nd != known_dead) {
          known_dead = nd;
          stopped_by.clear();
        }
        if (staged < 0 && !dq.empty()) {
          const std::uint64_t t = dq.front();
          dq.pop_front();
          run_one(t, 1);
          continue;  // report before the next task runs
        }
        if (staged >= 0) {
          report_staged();
          continue;
        }
        steal_sweep();
        if (!dq.empty()) continue;
        // Drained and nothing stealable: ask the shard owners round-robin.
        const std::vector<int> owners = owner_ranks();
        int target = -1;
        for (std::size_t i = 0; i < owners.size(); ++i) {
          const int o = owners[(ask_rr + i) % owners.size()];
          if (stopped_by.count(o) == 0) {
            target = o;
            ask_rr = (ask_rr + i + 1) % owners.size();
            break;
          }
        }
        if (target < 0) return true;  // every owner released this worker
        int tshard = -1;
        for (int s = 0; s < nshards; ++s) {
          if (owner_of(s) == target) {
            tshard = s;
            break;
          }
        }
        if (tshard < 0) continue;  // the target died under us; re-resolve
        WireReq ask;
        ask.completed_task = -1;
        ask.wants = 1;
        const Decision d = transact(ask, tshard);
        if (d.grant.assign >= 0) {
          run_one(static_cast<std::uint64_t>(d.grant.assign), d.grant.attempt);
          continue;
        }
        if (d.grant.assign == kAssignStop) {
          stopped_by.insert(d.responder);
          continue;
        }
        // RetryLater: claimed or outstanding work elsewhere; nap but keep
        // serving duties so a thief or an obit never waits on us.
        (void)serve_until(comm.now() + jittered(ft.worker_poll, rng), -1, -1,
                          nullptr);
      } catch (const fault::CrashSignal&) {
        on_signal(stopped_by);
        if (i_died) {
          die();
          return false;
        }
      }
    }
  }

  /// One last chance for the planned faults, then this rank promises the
  /// protocol it will never die (exit acks depend on that promise).
  /// Returns false on a transient crash (re-enter the worker role).
  bool final_poll() {
    try {
      poll_crash();
    } catch (const fault::CrashSignal&) {
      std::set<int> none;
      on_signal(none);
      if (i_died) {
        die();
      }
      return false;
    }
    polling = false;
    return true;
  }

  /// Announce worker-done to every owner and wait for the acks (with
  /// death discovery, since a target owner may silently be a ghost).
  void announce_exit() {
    worker_done = true;
    exited.insert(me);
    int rounds = 0;
    int walk = 0;
    while (true) {
      const std::vector<int> targets = owner_ranks();
      WireExit ex;
      ex.epoch = epoch;
      ex.incarnation = ps.incarnation;
      int first_unacked = -1;
      for (const int t : targets) {
        if (t == me || my_exit_acked.count(t) != 0) continue;
        if (first_unacked < 0) first_unacked = t;
        comm.send_bytes(t, kTagExit, pack_exit(ex));
      }
      if (first_unacked < 0) return;
      if (++rounds % kProbeEvery == 0) probe(first_unacked, walk++);
      (void)serve_until(comm.now() + jittered(ft.worker_poll, rng), -1, -1,
                        nullptr);
    }
  }

  /// Everyone else exited or died and grants can no longer flow: run the
  /// leftovers of this rank's shards directly.
  void endgame() {
    for (auto& [sid, sh] : shards) {
      for (std::uint64_t t = sh.lo; t < sh.hi; ++t) {
        SEntry& e = sh.at(t);
        if (e.state != TState::Pending) continue;
        int tries = 0;
        bool ran = false;
        while (true) {
          try {
            ctx.exec->run_direct(t, /*retry=*/e.attempt > 0);
            ran = true;
            break;
          } catch (const fault::CrashSignal&) {
            // The protocol forbids deaths after the final poll, but a
            // task-indexed fault can still fire inside the injector here.
            // Model the supervisor respawning this rank with its committed
            // state intact: retry the task, bounded by the retry budget.
            if (++tries > ft.max_retries) break;
          }
        }
        if (e.claimed) {
          --sh.nclaimed;
        } else {
          --sh.nfree;
        }
        if (ran) {
          journal_commit(sid, t, me, ps.incarnation);
          e.state = TState::Done;
          e.owner = me;
          e.owner_inc = ps.incarnation;
          ++sh.ndone;
        } else {
          e.state = TState::Failed;
          ++sh.nfail;
          ++sstats.tasks_failed;
          if (reg != nullptr) reg->counter("ft.tasks_failed").inc();
        }
      }
      sh.free_q.clear();
    }
  }

  /// Owner role tail: serve commits/grants until every shard settled and
  /// every other rank exited or died.
  void run_owner() {
    while (!shards.empty()) {
      bool all_gone = true;
      for (int r = 0; r < p; ++r) {
        if (r != me && alive(r) && exited.count(r) == 0) {
          all_gone = false;
          break;
        }
      }
      if (all_gone && !any_awaiting()) {
        if (!all_settled()) endgame();
        if (all_settled()) break;
      }
      (void)serve_until(comm.now() + jittered(ft.worker_poll, rng), -1, -1,
                        nullptr);
    }
    if (ctx.failed != nullptr) {
      for (const auto& [sid, sh] : shards) {
        for (std::uint64_t t = sh.lo; t < sh.hi; ++t) {
          if (sh.entries[t - sh.lo].state == TState::Failed) {
            ctx.failed->push_back(t);
          }
        }
      }
    }
  }

  void run() {
    if (static_cast<int>(ps.peers_dead.size()) < p) ps.peers_dead.resize(p, 0);
    if (!alive(me)) return;  // died (and was fully acked) in an earlier map
    setup_owner();
    if (inj != nullptr && inj->permanently_crashed(me)) {
      // Entered the map already dead (crashed under another scheduler or
      // between maps): hand the seeded shards off immediately.
      i_died = true;
      die();
      return;
    }
    seed_deque();
    while (true) {
      if (!run_worker()) return;  // permanent death, handoff complete
      if (final_poll()) break;    // the point of no return: never dies now
      if (i_died) return;
      // Transient crash at the final poll: back to the worker role (the
      // incarnation bump reverted this rank's commits; re-earn them).
    }
    announce_exit();
    run_owner();
  }
};

}  // namespace

void run_sharded_steal(MapContext& ctx, std::uint32_t epoch) {
  ShardedRun run(ctx, epoch);
  run.run();
}

}  // namespace mrbio::sched
