// MR-MPI BLAST: the paper's first application (Section III-A, Fig. 1).
//
// A work item pairs a block of query sequences with one database
// partition. map() runs the unmodified search engine on that pair and
// emits (query id -> HSP) pairs; collate() groups every query's hits from
// all partitions onto one rank; reduce() sorts them by E-value, applies
// the top-K cut and appends to the rank's own output file. Arbitrarily
// large query sets are processed by looping the whole MapReduce cycle
// over consecutive block subsets to bound the in-memory KV working set.
//
// Two drivers share this control flow:
//   run_blast_mr  -- functional: real sequences, real engine, real output
//                    files. Used by tests and examples.
//   run_blast_sim -- paper-scale: costs come from the workload oracle and
//                    KV payloads are nominal-sized tokens. Used by the
//                    scaling benchmarks (Figs. 3-5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blast/fasta_index.hpp"
#include "blast/translate.hpp"
#include "blast/search.hpp"
#include "mpi/comm.hpp"
#include "mrmpi/mapreduce.hpp"
#include "workload/blast_model.hpp"

namespace mrbio::mrblast {

/// Default for RealRunConfig::virtual_seconds_per_cell: the measured
/// wall-clock cost per alignment cell of the ungapped diag-scan kernel
/// (~1 ns/cell on a current x86-64 core; see
/// simd::calibrated_seconds_per_cell, which measures the live value).
/// Hard-coded rather than calibrated at startup so sim timelines — and
/// everything diffed against them in CI — stay byte-identical across
/// machines and runs. Pass --virtual-rate to override.
inline constexpr double kDefaultVirtualSecondsPerCell = 1e-9;

struct RealRunConfig {
  /// Query blocks (the pre-split FASTA files of the paper's pipeline).
  /// Leave empty to use the indexed-FASTA input below instead.
  std::vector<std::vector<blast::Sequence>> query_blocks;

  /// Dynamic-chunking input (the paper's Section V improvement): a single
  /// FASTA file accessed through an offset index, split into
  /// `query_block_sizes` records per block at run time -- no
  /// pre-partitioning of the query set.
  std::string query_fasta;
  std::vector<std::uint64_t> query_block_sizes;

  /// Database partition volume files (formatdb output).
  std::vector<std::string> partition_paths;
  blast::SearchOptions options;
  /// Directory for per-rank result files ("hits.<rank>.tsv").
  std::string output_dir;
  mrmpi::MapStyle map_style = mrmpi::MapStyle::MasterWorker;
  /// Scheduling policy override; Auto derives from map_style (see
  /// mrmpi::MapReduceConfig::scheduler). sched::Policy::Steal selects
  /// decentralized work stealing.
  sched::Policy scheduler = sched::Policy::Auto;
  /// Use the location-aware scheduler (applies under a master policy).
  bool locality_aware = false;
  /// Blocks per MapReduce iteration; 0 = all blocks in one cycle.
  std::size_t blocks_per_iteration = 0;
  /// Fault tolerance of the master-worker map (see mrmpi::FaultToleranceConfig).
  mrmpi::FaultToleranceConfig ft;
  /// Virtual seconds charged per alignment-matrix cell (query residues x
  /// partition residues) of each work unit. The real searches cost ~zero
  /// virtual time, so on the sim backend the timeline would otherwise be
  /// pure communication: without a charge, time-triggered fault plans
  /// ("crash:rank=3@t=0.4") never fire and the report shows no useful
  /// compute. Deterministic (derived from input sizes, never from wall
  /// time); a no-op on the native backend. 0 disables. The default is the
  /// measured per-cell cost of the SIMD diag-scan kernel (see
  /// kDefaultVirtualSecondsPerCell) so virtual timelines track the real
  /// engine speed out of the box.
  double virtual_seconds_per_cell = kDefaultVirtualSecondsPerCell;
  /// Overrides of the MapReduce paging policy (0 / false keep the library
  /// defaults). Tests use these to force tiny resident budgets so the
  /// out-of-core path runs under checkpointing.
  std::uint64_t memsize_bytes = 0;
  bool page_to_disk = false;
  std::uint64_t page_bytes = 0;
  /// Checkpoint/restart manager (non-owning); null disables. The driver
  /// must open() it before launching ranks. One checkpoint cycle = one
  /// MapReduce iteration (blocks_per_iteration blocks); per-cycle records
  /// hold each rank's committed hit-file size and HSP count, so --resume
  /// truncates the hit files to the committed prefix and re-runs only the
  /// uncommitted tail.
  ckpt::Checkpointer* checkpointer = nullptr;
};

struct RealRunResult {
  std::uint64_t total_hsps = 0;        ///< across all ranks
  std::string output_file;             ///< this rank's file (empty if none written)
  std::uint64_t local_map_tasks = 0;   ///< work units executed on this rank
  std::uint64_t db_loads = 0;          ///< partition (re)initializations here
  /// Work units abandoned after max_retries (all ranks; 0 unless faults were
  /// injected and recovery gave up — the hit files are then partial).
  std::uint64_t failed_tasks = 0;
};

/// Collective: every rank of `comm` must call with identical config.
RealRunResult run_blast_mr(mpi::Comm& comm, const RealRunConfig& config);

// ---- translated (blastx) driver ----

struct BlastxRunConfig {
  /// DNA read blocks searched in all six frames.
  std::vector<std::vector<blast::Sequence>> query_blocks;
  /// Protein database partition volumes.
  std::vector<std::string> partition_paths;
  /// Protein search options (make_protein_options()).
  blast::SearchOptions options;
  std::string output_dir;
  mrmpi::MapStyle map_style = mrmpi::MapStyle::MasterWorker;
  /// Scheduling policy override; Auto derives from map_style (see
  /// mrmpi::MapReduceConfig::scheduler). sched::Policy::Steal selects
  /// decentralized work stealing.
  sched::Policy scheduler = sched::Policy::Auto;
  /// Fault tolerance of the remote schedulers.
  mrmpi::FaultToleranceConfig ft;
};

struct BlastxRunResult {
  std::uint64_t total_hsps = 0;
  std::string output_file;
  /// Work units abandoned after max_retries (all ranks).
  std::uint64_t failed_tasks = 0;
};

/// Collective: the Fig. 1 control flow with blastx in map() -- the
/// searched object per work unit is (DNA read block x protein partition),
/// keys are read ids, values are frame-annotated HSPs. Output lines are
/// "<qid> <frame> <dna_start> <dna_end> <protein tabular fields...>".
BlastxRunResult run_blastx_mr(mpi::Comm& comm, const BlastxRunConfig& config);

struct SimRunConfig {
  workload::BlastWorkloadConfig workload;
  mrmpi::MapStyle map_style = mrmpi::MapStyle::MasterWorker;
  /// Scheduling policy override; Auto derives from map_style (see
  /// mrmpi::MapReduceConfig::scheduler). sched::Policy::Steal selects
  /// decentralized work stealing.
  sched::Policy scheduler = sched::Policy::Auto;
  /// Use the location-aware scheduler keyed on the DB partition (applies
  /// under a master policy).
  bool locality_aware = false;
  /// Blocks per MapReduce iteration; 0 = all blocks in one cycle.
  std::size_t blocks_per_iteration = 0;
  /// Virtual seconds to process one hit in reduce() (sort + output).
  double reduce_seconds_per_hit = 5e-6;
  /// Optional collector of per-rank useful-compute intervals (Fig. 5).
  workload::UtilizationTracker* tracker = nullptr;
  /// Fault tolerance of the master-worker map.
  mrmpi::FaultToleranceConfig ft;
};

/// All fields are globally reduced before run_blast_sim returns, so every
/// rank sees job-wide numbers (the sums) plus the busiest single rank (the
/// max_rank_* fields) for load-imbalance analysis.
struct SimRunStats {
  std::uint64_t total_hits = 0;           ///< hits across all ranks
  std::uint64_t db_loads = 0;             ///< partition switches, all ranks
  double compute_seconds = 0.0;           ///< useful BLAST seconds, all ranks
  double load_seconds = 0.0;              ///< partition I/O seconds, all ranks
  double max_rank_compute_seconds = 0.0;  ///< busiest rank's useful seconds
  double max_rank_load_seconds = 0.0;     ///< heaviest rank's I/O seconds
  std::uint64_t failed_tasks = 0;         ///< units abandoned after max_retries
};

/// Collective. Virtual elapsed time is read from the engine by the caller.
SimRunStats run_blast_sim(mpi::Comm& comm, const SimRunConfig& config);

}  // namespace mrbio::mrblast
