#include "mrblast/mrblast.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>

#include "ckpt/ckpt.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace mrbio::mrblast {

namespace {

/// Rank-local cache of the most recently used DB partition, reproducing
/// the paper's "DB object is cached between map() invocations on a given
/// rank, and only re-initialized if the different DB partition is
/// required".
struct PartitionCache {
  std::int64_t current = -1;
  std::shared_ptr<const blast::DbVolume> volume;
  std::uint64_t loads = 0;

  const blast::DbVolume& get(const std::vector<std::string>& paths, std::uint64_t p) {
    if (current != static_cast<std::int64_t>(p)) {
      volume = std::make_shared<blast::DbVolume>(
          blast::DbVolume::load(paths.at(static_cast<std::size_t>(p))));
      current = static_cast<std::int64_t>(p);
      ++loads;
    }
    return *volume;
  }
};

/// Bytewise-sorted copy of a group's value spans. Grouping preserves
/// emission order, which on the native backend depends on task-assignment
/// timing; reduces that must produce backend-identical output iterate
/// values in this canonical order instead.
std::vector<std::span<const std::byte>> canonicalize_values(const mrmpi::KmvGroup& group) {
  std::vector<std::span<const std::byte>> values(group.values.begin(), group.values.end());
  std::sort(values.begin(), values.end(),
            [](std::span<const std::byte> a, std::span<const std::byte> b) {
              return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                                  b.end());
            });
  return values;
}

}  // namespace

RealRunResult run_blast_mr(mpi::Comm& comm, const RealRunConfig& config) {
  MRBIO_REQUIRE(!config.partition_paths.empty(), "no database partitions");
  const bool indexed_input = !config.query_fasta.empty();
  MRBIO_REQUIRE(config.query_blocks.empty() || !indexed_input,
                "provide either query_blocks or query_fasta, not both");

  // In indexed mode each rank builds its own offset index (the paper's
  // "index of sequence offsets in the input FASTA file") and fetches only
  // the block a work unit names.
  std::unique_ptr<blast::FastaIndex> index;
  std::vector<std::size_t> block_starts;   // first record of each block
  std::vector<std::size_t> block_counts;   // records in each block, clamped
  if (indexed_input) {
    MRBIO_REQUIRE(!config.query_block_sizes.empty(),
                  "indexed-FASTA input needs query_block_sizes");
    index = std::make_unique<blast::FastaIndex>(config.query_fasta, config.options.type);
    // The schedule must start every block inside the index and cover every
    // record; only the final block may nominally over-run, and its count is
    // clamped so read_range never walks past the end.
    std::size_t cursor = 0;
    for (const std::uint64_t b : config.query_block_sizes) {
      MRBIO_REQUIRE(cursor < index->num_records(), "block schedule overruns the index: a block starts at record ",
                    cursor, " but the FASTA has only ", index->num_records(), " records");
      block_starts.push_back(cursor);
      block_counts.push_back(static_cast<std::size_t>(
          std::min<std::uint64_t>(b, index->num_records() - cursor)));
      cursor += static_cast<std::size_t>(b);
    }
    MRBIO_REQUIRE(cursor >= index->num_records(), "block schedule covers only ", cursor,
                  " of ", index->num_records(), " records");
  }
  const std::uint64_t nblocks =
      indexed_input ? config.query_block_sizes.size() : config.query_blocks.size();
  const std::uint64_t nparts = config.partition_paths.size();

  auto load_block = [&](std::uint64_t block) -> std::vector<blast::Sequence> {
    if (indexed_input) {
      return index->read_range(block_starts[static_cast<std::size_t>(block)],
                               block_counts[static_cast<std::size_t>(block)]);
    }
    return config.query_blocks[static_cast<std::size_t>(block)];
  };

  // Whole-database statistics for the partition searches, as in the paper.
  blast::SearchOptions options = config.options;
  if (options.effective_db_length == 0) {
    std::uint64_t total_len = 0;
    std::uint64_t total_seqs = 0;
    for (const auto& path : config.partition_paths) {
      const auto vol = blast::DbVolume::load(path);
      total_len += vol.residues();
      total_seqs += vol.num_seqs();
    }
    options.effective_db_length = total_len;
    options.effective_db_seqs = total_seqs;
  }

  RealRunResult result;
  PartitionCache cache;
  std::ofstream out;

  mrmpi::MapReduceConfig mr_config;
  mr_config.map_style = config.map_style;
  mr_config.scheduler = config.scheduler;
  mr_config.ft = config.ft;
  if (config.memsize_bytes != 0) mr_config.memsize_bytes = config.memsize_bytes;
  if (config.page_bytes != 0) mr_config.page_bytes = config.page_bytes;
  mr_config.page_to_disk = config.page_to_disk;
  ckpt::Checkpointer* cp = config.checkpointer;
  const bool ckpt_on = cp != nullptr && cp->enabled();
  mr_config.checkpointer = ckpt_on ? cp : nullptr;
  mrmpi::MapReduce mr(comm, mr_config);

  const std::size_t blocks_per_iter =
      config.blocks_per_iteration == 0 ? nblocks : config.blocks_per_iteration;

  // ---- resume handshake ----
  // The newest intact ledger record holds, per rank, the committed
  // hit-file size and cumulative HSP count at the end of its cycle. Each
  // rank checks its own file against the record and the ranks agree (by
  // all-reduce) whether to continue from the record — truncating each hit
  // file to the committed prefix — or, if anything is off, to degrade to
  // a fresh run with a warning. Uncommitted bytes from the killed run's
  // last open cycle are cut off by the truncation; its tasks re-run.
  const std::string hit_path =
      config.output_dir + "/hits." + std::to_string(comm.rank()) + ".tsv";
  std::uint64_t first_cycle = 0;
  bool append_output = false;
  if (ckpt_on) {
    std::uint64_t rec_cycle = 0;
    std::vector<std::uint64_t> sizes;
    std::vector<std::uint64_t> hsps;
    bool have = false;
    const auto& records = cp->ledger_records();
    if (cp->resuming() && !records.empty()) {
      try {
        ByteReader r(records.back());
        rec_cycle = r.get<std::uint64_t>();
        const auto np = r.get<std::uint64_t>();
        if (np == static_cast<std::uint64_t>(comm.size())) {
          for (std::uint64_t i = 0; i < np; ++i) {
            sizes.push_back(r.get<std::uint64_t>());
            hsps.push_back(r.get<std::uint64_t>());
          }
          have = r.done();
        }
      } catch (const Error&) {
        have = false;
      }
    }
    std::uint64_t ok = have ? 1 : 0;
    const auto rank_idx = static_cast<std::size_t>(comm.rank());
    if (have && sizes[rank_idx] > 0) {
      std::error_code ec;
      const auto sz = std::filesystem::file_size(hit_path, ec);
      if (ec || sz < sizes[rank_idx]) ok = 0;
    }
    ok = comm.allreduce_scalar(ok, mpi::ReduceOp::Min);
    if (ok == 1) {
      first_cycle = rec_cycle + 1;
      result.total_hsps = hsps[rank_idx];  // rank-local; summed at the end
      if (sizes[rank_idx] > 0) {
        std::filesystem::resize_file(hit_path, sizes[rank_idx]);
        append_output = true;
        result.output_file = hit_path;
      }
      if (comm.rank() == 0) {
        MRBIO_LOG(Info, "checkpoint: resuming after cycle ", rec_cycle, " (",
                  first_cycle * blocks_per_iter, " of ", nblocks,
                  " query blocks already committed)");
      }
    } else {
      std::error_code ec;
      std::filesystem::remove(hit_path, ec);
      if (comm.rank() == 0 && cp->resuming()) {
        if (records.empty()) {
          MRBIO_LOG(Info,
                    "checkpoint: no committed cycle yet; starting from the "
                    "first block (map-log replay still skips finished tasks)");
        } else {
          MRBIO_LOG(Warn,
                    "checkpoint: unusable cycle record (corrupt ledger or "
                    "missing hit files); re-running from the first block");
        }
      }
    }
  }

  std::uint64_t cycle_idx = 0;
  for (std::uint64_t first_block = 0; first_block < nblocks;
       first_block += blocks_per_iter, ++cycle_idx) {
    if (ckpt_on && cycle_idx < first_cycle) continue;  // committed in a prior run
    if (ckpt_on) cp->begin_cycle(comm.rank(), cycle_idx);
    const std::uint64_t iter_blocks = std::min<std::uint64_t>(blocks_per_iter,
                                                              nblocks - first_block);
    const std::uint64_t units = iter_blocks * nparts;

    const auto map_fn = [&](std::uint64_t unit, mrmpi::KeyValue& kv) {
      const std::uint64_t block = first_block + unit / nparts;
      const std::uint64_t part = unit % nparts;
      trace::Recorder* rec = comm.tracer();
      const bool fresh_load = cache.current != static_cast<std::int64_t>(part);
      const double t_load = comm.now();
      const blast::DbVolume& vol = cache.get(config.partition_paths, part);
      if (rec != nullptr && fresh_load) {
        rec->add(comm.rank(), trace::Category::Io, "db_load", t_load, comm.now(), 0,
                 vol.residues());
      }
      obs::Registry* reg = comm.metrics();
      if (reg != nullptr && fresh_load) {
        reg->counter("blast.db_loads").inc();
        reg->histogram("blast.db_load_seconds").observe(comm.now() - t_load);
      }
      // The searcher is lightweight relative to the volume; constructing it
      // per unit mirrors re-initializing the query object per map() call.
      auto shared_vol = cache.volume;
      blast::BlastSearcher searcher(shared_vol, options);
      const double t_search = comm.now();
      const auto& block_queries = load_block(block);
      const auto results = searcher.search(block_queries);
      if (config.virtual_seconds_per_cell > 0.0) {
        std::uint64_t query_residues = 0;
        for (const auto& q : block_queries) query_residues += q.length();
        comm.compute(config.virtual_seconds_per_cell *
                     static_cast<double>(query_residues) *
                     static_cast<double>(vol.residues()));
      }
      if (rec != nullptr) {
        rec->add(comm.rank(), trace::Category::App, "search", t_search, comm.now());
      }
      if (reg != nullptr) {
        reg->histogram("blast.search_seconds").observe(comm.now() - t_search);
      }
      for (const auto& qr : results) {
        for (const auto& hsp : qr.hsps) {
          ByteWriter w;
          hsp.serialize(w);
          const auto payload = w.take();
          kv.add(std::as_bytes(std::span(qr.query_id.data(), qr.query_id.size())),
                 payload);
        }
      }
      (void)vol;
    };
    const bool master_sched =
        config.scheduler == sched::Policy::Master ||
        config.scheduler == sched::Policy::MasterFt ||
        (config.scheduler == sched::Policy::Auto &&
         config.map_style == mrmpi::MapStyle::MasterWorker);
    if (config.locality_aware && master_sched) {
      mr.map_locality(units, [&](std::uint64_t unit) { return unit % nparts; }, map_fn);
    } else {
      mr.map(units, map_fn);
    }
    if (comm.rank() == 0) result.failed_tasks += mr.failed_tasks().size();

    // collate(), with a key sort in between: master-worker scheduling on the
    // native backend assigns tasks in arrival order, so aggregated pairs
    // land in backend-dependent order. Sorting keys before grouping makes
    // group order — and therefore output-file line order — identical on
    // every backend; canonicalize_values does the same within a group.
    mr.aggregate();
    mr.sort_keys();
    mr.convert();

    mr.reduce([&](const mrmpi::KmvGroup& group, mrmpi::KeyValue&) {
      const std::string query_id(reinterpret_cast<const char*>(group.key.data()),
                                 group.key.size());
      std::vector<blast::Hsp> hsps;
      hsps.reserve(group.values.size());
      for (const auto& value : canonicalize_values(group)) {
        ByteReader r(value);
        hsps.push_back(blast::Hsp::deserialize(r));
      }
      blast::sort_and_truncate(hsps, options.max_hits_per_query);
      if (!out.is_open()) {
        std::filesystem::create_directories(config.output_dir);
        result.output_file = hit_path;
        // Truncate on the first open of this run: appending would silently
        // concatenate stale hits from a previous run into the same dir.
        // Exception: a resumed run continues the committed prefix the
        // handshake above truncated the file back to.
        out.open(result.output_file, append_output ? std::ios::app : std::ios::trunc);
        MRBIO_REQUIRE(out.good(), "cannot open output file ", result.output_file);
      }
      for (const auto& hsp : hsps) {
        out << blast::to_tabular(query_id, hsp) << "\n";
      }
      result.total_hsps += hsps.size();
    });

    // ---- cycle commit ----
    // Flush the hit files, gather each rank's (file size, cumulative HSPs)
    // to rank 0 and append one ledger record. Only after the record is
    // durable is the cycle's map log disposable: a kill between these
    // steps re-runs the cycle on resume, and the handshake's truncation
    // discards whatever the killed cycle had already written to the files.
    if (ckpt_on) {
      if (out.is_open()) out.flush();
      std::uint64_t my_size = 0;
      {
        std::error_code ec;
        const auto sz = std::filesystem::file_size(hit_path, ec);
        if (!ec) my_size = sz;
      }
      ByteWriter w;
      w.put<std::uint64_t>(my_size);
      w.put<std::uint64_t>(result.total_hsps);
      const auto all = comm.gather_bytes(w.take(), 0);
      if (comm.rank() == 0) {
        const double t0 = comm.now();
        ByteWriter lw;
        lw.put<std::uint64_t>(cycle_idx);
        lw.put<std::uint64_t>(static_cast<std::uint64_t>(comm.size()));
        for (const auto& buf : all) {
          ByteReader r(buf);
          lw.put<std::uint64_t>(r.get<std::uint64_t>());
          lw.put<std::uint64_t>(r.get<std::uint64_t>());
        }
        const auto payload = lw.take();
        cp->append_cycle_record(payload);
        comm.compute(static_cast<double>(payload.size()) * cp->config().byte_seconds);
        if (trace::Recorder* rec = comm.tracer(); rec != nullptr) {
          rec->add(comm.rank(), trace::Category::Io, "ckpt_write", t0, comm.now(), 1,
                   payload.size());
        }
      }
      cp->remove_map_log(comm.rank(), cycle_idx);
    }
  }
  if (out.is_open()) out.flush();

  result.total_hsps = comm.allreduce_scalar(result.total_hsps, mpi::ReduceOp::Sum);
  result.failed_tasks = comm.allreduce_scalar(result.failed_tasks, mpi::ReduceOp::Sum);
  result.local_map_tasks = mr.stats().map_tasks_run;
  result.db_loads = cache.loads;
  return result;
}

BlastxRunResult run_blastx_mr(mpi::Comm& comm, const BlastxRunConfig& config) {
  MRBIO_REQUIRE(!config.partition_paths.empty(), "no database partitions");
  MRBIO_REQUIRE(config.options.type == blast::SeqType::Protein,
                "blastx needs protein search options");
  const std::uint64_t nblocks = config.query_blocks.size();
  const std::uint64_t nparts = config.partition_paths.size();

  // Whole-database statistics, as in the nucleotide driver.
  blast::SearchOptions options = config.options;
  if (options.effective_db_length == 0) {
    std::uint64_t total_len = 0;
    std::uint64_t total_seqs = 0;
    for (const auto& path : config.partition_paths) {
      const auto vol = blast::DbVolume::load(path);
      total_len += vol.residues();
      total_seqs += vol.num_seqs();
    }
    options.effective_db_length = total_len;
    options.effective_db_seqs = total_seqs;
  }

  BlastxRunResult result;
  PartitionCache cache;
  std::ofstream out;

  mrmpi::MapReduceConfig mr_config;
  mr_config.map_style = config.map_style;
  mr_config.scheduler = config.scheduler;
  mr_config.ft = config.ft;
  mrmpi::MapReduce mr(comm, mr_config);

  mr.map(nblocks * nparts, [&](std::uint64_t unit, mrmpi::KeyValue& kv) {
    const std::uint64_t block = unit / nparts;
    const std::uint64_t part = unit % nparts;
    trace::Recorder* rec = comm.tracer();
    const bool fresh_load = cache.current != static_cast<std::int64_t>(part);
    const double t_load = comm.now();
    cache.get(config.partition_paths, part);
    if (rec != nullptr && fresh_load) {
      rec->add(comm.rank(), trace::Category::Io, "db_load", t_load, comm.now(), 0,
               cache.volume->residues());
    }
    obs::Registry* reg = comm.metrics();
    if (reg != nullptr && fresh_load) {
      reg->counter("blast.db_loads").inc();
      reg->histogram("blast.db_load_seconds").observe(comm.now() - t_load);
    }
    const double t_search = comm.now();
    const auto results = blast::blastx_search(
        cache.volume, config.query_blocks[static_cast<std::size_t>(block)], options);
    if (rec != nullptr) {
      rec->add(comm.rank(), trace::Category::App, "search", t_search, comm.now());
    }
    if (reg != nullptr) {
      reg->histogram("blast.search_seconds").observe(comm.now() - t_search);
    }
    for (const auto& qr : results) {
      for (const auto& bx : qr.hsps) {
        ByteWriter w;
        w.put<std::int32_t>(bx.frame);
        w.put(bx.q_dna_start);
        w.put(bx.q_dna_end);
        bx.protein.serialize(w);
        const auto payload = w.take();
        kv.add(std::as_bytes(std::span(qr.query_id.data(), qr.query_id.size())), payload);
      }
    }
  });

  if (comm.rank() == 0) result.failed_tasks = mr.failed_tasks().size();

  // As in run_blast_mr: sorted keys + canonical value order make the
  // output independent of the backend's task-assignment order.
  mr.aggregate();
  mr.sort_keys();
  mr.convert();

  mr.reduce([&](const mrmpi::KmvGroup& group, mrmpi::KeyValue&) {
    const std::string query_id(reinterpret_cast<const char*>(group.key.data()),
                               group.key.size());
    std::vector<blast::BlastxHsp> hsps;
    hsps.reserve(group.values.size());
    for (const auto& value : canonicalize_values(group)) {
      ByteReader r(value);
      blast::BlastxHsp bx;
      bx.frame = r.get<std::int32_t>();
      bx.q_dna_start = r.get<std::uint64_t>();
      bx.q_dna_end = r.get<std::uint64_t>();
      bx.protein = blast::Hsp::deserialize(r);
      hsps.push_back(std::move(bx));
    }
    std::sort(hsps.begin(), hsps.end(), [](const auto& a, const auto& b) {
      return blast::hsp_better(a.protein, b.protein);
    });
    if (options.max_hits_per_query > 0 && hsps.size() > options.max_hits_per_query) {
      hsps.resize(options.max_hits_per_query);
    }
    if (!out.is_open()) {
      std::filesystem::create_directories(config.output_dir);
      result.output_file =
          config.output_dir + "/blastx." + std::to_string(comm.rank()) + ".tsv";
      // Truncate on the first open of this run (see run_blast_mr).
      out.open(result.output_file, std::ios::trunc);
      MRBIO_REQUIRE(out.good(), "cannot open output file ", result.output_file);
    }
    for (const auto& bx : hsps) {
      out << query_id << '\t' << bx.frame << '\t' << bx.q_dna_start << '\t' << bx.q_dna_end
          << '\t' << blast::to_tabular(query_id, bx.protein) << "\n";
    }
    result.total_hsps += hsps.size();
  });
  if (out.is_open()) out.flush();

  result.total_hsps = comm.allreduce_scalar(result.total_hsps, mpi::ReduceOp::Sum);
  result.failed_tasks = comm.allreduce_scalar(result.failed_tasks, mpi::ReduceOp::Sum);
  return result;
}

SimRunStats run_blast_sim(mpi::Comm& comm, const SimRunConfig& config) {
  const workload::BlastWorkload wl(config.workload);
  const std::uint64_t nblocks = wl.num_blocks();
  const std::uint64_t nparts = config.workload.db_partitions;

  SimRunStats stats;
  std::int64_t current_partition = -1;

  mrmpi::MapReduceConfig mr_config;
  mr_config.map_style = config.map_style;
  mr_config.scheduler = config.scheduler;
  mr_config.ft = config.ft;
  mrmpi::MapReduce mr(comm, mr_config);

  const std::size_t blocks_per_iter =
      config.blocks_per_iteration == 0 ? nblocks : config.blocks_per_iteration;

  for (std::uint64_t first_block = 0; first_block < nblocks;
       first_block += blocks_per_iter) {
    const std::uint64_t iter_blocks = std::min<std::uint64_t>(blocks_per_iter,
                                                              nblocks - first_block);
    const std::uint64_t units = iter_blocks * nparts;

    const auto map_fn = [&](std::uint64_t iter_unit, mrmpi::KeyValue& kv) {
      const std::uint64_t unit = first_block * nparts + iter_unit;
      const std::uint64_t part = wl.partition_of(unit);
      trace::Recorder* rec = comm.tracer();
      // Partition switch: pay the (cold or warm) load, which is I/O, not
      // useful compute.
      obs::Registry* reg = comm.metrics();
      if (current_partition != static_cast<std::int64_t>(part)) {
        const double t_load = comm.now();
        const double load = wl.load_seconds(unit, comm.rank(), comm.size());
        comm.compute(load);
        stats.load_seconds += load;
        current_partition = static_cast<std::int64_t>(part);
        ++stats.db_loads;
        if (rec != nullptr) {
          rec->add(comm.rank(), trace::Category::Io, "db_load", t_load, comm.now());
        }
        if (reg != nullptr) {
          reg->counter("blast.db_loads").inc();
          reg->histogram("blast.db_load_seconds").observe(comm.now() - t_load);
        }
      }
      const double cost = wl.unit_compute_seconds(unit);
      const double t0 = comm.now();
      comm.compute(cost);
      stats.compute_seconds += cost;
      if (config.tracker != nullptr) config.tracker->add(comm.rank(), t0, comm.now());
      // The App span covers exactly the tracker's interval, so trace-based
      // utilization reproduces the legacy Fig. 5 numbers.
      if (rec != nullptr) {
        rec->add(comm.rank(), trace::Category::App, "search", t0, comm.now());
      }
      if (reg != nullptr) {
        reg->histogram("blast.search_seconds").observe(comm.now() - t0);
      }

      // One token KV per work unit keyed by query block; its nominal size
      // is the real hit payload the unit would have produced.
      const std::string key = "block" + std::to_string(wl.block_of(unit));
      kv.add(std::as_bytes(std::span(key.data(), key.size())), {},
             wl.unit_hit_bytes(unit));
    };
    const bool master_sched =
        config.scheduler == sched::Policy::Master ||
        config.scheduler == sched::Policy::MasterFt ||
        (config.scheduler == sched::Policy::Auto &&
         config.map_style == mrmpi::MapStyle::MasterWorker);
    if (config.locality_aware && master_sched) {
      mr.map_locality(
          units, [&](std::uint64_t iter_unit) { return iter_unit % nparts; }, map_fn);
    } else {
      mr.map(units, map_fn);
    }
    if (comm.rank() == 0) stats.failed_tasks += mr.failed_tasks().size();

    mr.collate();

    mr.reduce([&](const mrmpi::KmvGroup& group, mrmpi::KeyValue&) {
      const std::uint64_t hits = group.nominal_bytes / config.workload.bytes_per_hit;
      stats.total_hits += hits;
      comm.compute(static_cast<double>(hits) * config.reduce_seconds_per_hit);
    });
  }

  // Reduce every field so all ranks return job-wide statistics; before this
  // the per-rank seconds/loads were rank-local and benches reported one
  // rank's I/O as if it were the whole job's. All fields ride one combined
  // allreduce whose nominal message sizes match the original hit-count
  // allreduce_scalar (16-byte reduce / 8-byte bcast messages), so the
  // richer statistics do not perturb the modeled virtual times.
  stats.max_rank_compute_seconds = stats.compute_seconds;
  stats.max_rank_load_seconds = stats.load_seconds;
  comm.allreduce_custom(
      stats,
      [](SimRunStats& a, const SimRunStats& b) {
        a.total_hits += b.total_hits;
        a.db_loads += b.db_loads;
        a.compute_seconds += b.compute_seconds;
        a.load_seconds += b.load_seconds;
        a.failed_tasks += b.failed_tasks;
        a.max_rank_compute_seconds =
            std::max(a.max_rank_compute_seconds, b.max_rank_compute_seconds);
        a.max_rank_load_seconds =
            std::max(a.max_rank_load_seconds, b.max_rank_load_seconds);
      },
      /*nominal_reduce_bytes=*/16, /*nominal_bcast_bytes=*/8);
  return stats;
}

}  // namespace mrbio::mrblast
