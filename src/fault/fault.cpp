#include "fault/fault.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace mrbio::fault {

namespace {

std::string trim(const std::string& s) {
  std::size_t a = 0;
  std::size_t b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a])) != 0) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])) != 0) --b;
  return s.substr(a, b - a);
}

double to_real(const std::string& field, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  MRBIO_REQUIRE(end != nullptr && *end == '\0' && !value.empty(),
                "fault plan: bad number for '", field, "': '", value, "'");
  return v;
}

std::int64_t to_int(const std::string& field, const std::string& value) {
  const double v = to_real(field, value);
  const auto i = static_cast<std::int64_t>(v);
  MRBIO_REQUIRE(static_cast<double>(i) == v, "fault plan: '", field,
                "' must be an integer, got '", value, "'");
  return i;
}

/// key=value fields of one clause; '@' and ',' both separate fields, so
/// the paper-style shorthand crash:rank=3@t=0.4 parses naturally.
std::map<std::string, std::string> parse_fields(const std::string& kind,
                                                const std::string& body) {
  std::map<std::string, std::string> fields;
  std::string token;
  auto flush = [&] {
    token = trim(token);
    if (token.empty()) return;
    const std::size_t eq = token.find('=');
    MRBIO_REQUIRE(eq != std::string::npos && eq > 0, "fault plan: expected key=value in '",
                  kind, "' clause, got '", token, "'");
    const std::string key = trim(token.substr(0, eq));
    MRBIO_REQUIRE(fields.emplace(key, trim(token.substr(eq + 1))).second,
                  "fault plan: duplicate field '", key, "' in '", kind, "' clause");
    token.clear();
  };
  for (const char c : body) {
    if (c == ',' || c == '@') {
      flush();
    } else {
      token.push_back(c);
    }
  }
  flush();
  return fields;
}

void check_known(const std::string& kind, const std::map<std::string, std::string>& fields,
                 std::initializer_list<const char*> known) {
  for (const auto& [key, value] : fields) {
    (void)value;
    const bool ok = std::any_of(known.begin(), known.end(),
                                [&](const char* k) { return key == k; });
    MRBIO_REQUIRE(ok, "fault plan: unknown field '", key, "' in '", kind, "' clause");
  }
}

void add_clause(FaultPlan& plan, const std::string& kind,
                const std::map<std::string, std::string>& fields) {
  auto get = [&](const char* key) -> const std::string* {
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  };
  auto require = [&](const char* key) -> const std::string& {
    const std::string* v = get(key);
    MRBIO_REQUIRE(v != nullptr, "fault plan: '", kind, "' clause needs ", key, "=");
    return *v;
  };

  if (kind == "crash") {
    check_known(kind, fields, {"rank", "t", "task", "mode"});
    CrashFault c;
    c.rank = static_cast<int>(to_int("rank", require("rank")));
    if (const std::string* t = get("t")) c.t = to_real("t", *t);
    if (const std::string* task = get("task")) c.task = to_int("task", *task);
    MRBIO_REQUIRE((c.t >= 0.0) != (c.task >= 0), "fault plan: crash needs exactly one of ",
                  "t= or task=");
    if (const std::string* mode = get("mode")) {
      MRBIO_REQUIRE(*mode == "transient" || *mode == "permanent",
                    "fault plan: crash mode must be transient or permanent, got '", *mode,
                    "'");
      c.permanent = *mode == "permanent";
    }
    plan.crashes.push_back(c);
  } else if (kind == "drop" || kind == "dup" || kind == "delay") {
    check_known(kind, fields, {"src", "dst", "count", "by", "t"});
    MessageFault m;
    m.kind = kind == "drop"  ? MessageFault::Kind::Drop
             : kind == "dup" ? MessageFault::Kind::Duplicate
                             : MessageFault::Kind::Delay;
    if (const std::string* src = get("src")) m.src = static_cast<int>(to_int("src", *src));
    if (const std::string* dst = get("dst")) m.dst = static_cast<int>(to_int("dst", *dst));
    if (const std::string* count = get("count")) {
      m.count = static_cast<int>(to_int("count", *count));
      MRBIO_REQUIRE(m.count > 0, "fault plan: count must be positive");
    }
    if (m.kind == MessageFault::Kind::Delay) {
      // "by" is canonical; "t" is accepted as a shorthand for the delay.
      const std::string* by = get("by") != nullptr ? get("by") : get("t");
      MRBIO_REQUIRE(by != nullptr, "fault plan: delay needs by=<seconds>");
      m.by = to_real("by", *by);
      MRBIO_REQUIRE(m.by > 0.0, "fault plan: delay must be positive");
    } else {
      MRBIO_REQUIRE(get("by") == nullptr && get("t") == nullptr, "fault plan: '", kind,
                    "' does not take by=/t=");
    }
    plan.messages.push_back(m);
  } else if (kind == "slow") {
    check_known(kind, fields, {"rank", "factor"});
    SlowFault s;
    s.rank = static_cast<int>(to_int("rank", require("rank")));
    s.factor = to_real("factor", require("factor"));
    MRBIO_REQUIRE(s.factor >= 1.0, "fault plan: slow factor must be >= 1");
    plan.slows.push_back(s);
  } else if (kind == "kill") {
    check_known(kind, fields, {"t"});
    KillFault k;
    k.t = to_real("t", require("t"));
    MRBIO_REQUIRE(k.t >= 0.0, "fault plan: kill time must be >= 0");
    plan.kills.push_back(k);
  } else if (kind == "corrupt") {
    check_known(kind, fields, {"target", "byte", "count"});
    CorruptFault c;
    if (const std::string* target = get("target")) {
      if (*target == "ledger") {
        c.target = CorruptTarget::Ledger;
      } else if (*target == "map") {
        c.target = CorruptTarget::MapLog;
      } else if (*target == "snapshot") {
        c.target = CorruptTarget::Snapshot;
      } else if (*target == "shard") {
        c.target = CorruptTarget::Shard;
      } else if (*target == "any") {
        c.target = CorruptTarget::Any;
      } else {
        throw InputError(format_msg("fault plan: corrupt target must be ",
                                    "ledger/map/snapshot/shard/any, got '", *target, "'"));
      }
    }
    if (const std::string* byte = get("byte")) {
      c.byte = to_int("byte", *byte);
      MRBIO_REQUIRE(c.byte >= 0, "fault plan: corrupt byte offset must be >= 0");
    }
    if (const std::string* count = get("count")) {
      c.count = static_cast<int>(to_int("count", *count));
      MRBIO_REQUIRE(c.count > 0, "fault plan: count must be positive");
    }
    plan.corrupts.push_back(c);
  } else {
    throw InputError(format_msg("fault plan: unknown fault kind '", kind,
                                "' (expected crash/drop/dup/delay/slow/kill/corrupt)"));
  }
}

// ---------------------------------------------------------------------------
// Minimal JSON reader: objects, arrays, strings, numbers, true/false/null.
// Enough for {"faults":[{...},...]} documents; rejects anything malformed.

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  /// Parses one document into the plan and requires trailing whitespace only.
  void read_plan(FaultPlan& plan) {
    skip_ws();
    expect('{');
    bool saw_faults = false;
    if (!try_consume('}')) {
      do {
        const std::string key = read_string();
        skip_ws();
        expect(':');
        if (key == "faults") {
          saw_faults = true;
          read_fault_array(plan);
        } else {
          skip_value();
        }
      } while (try_consume(','));
      expect('}');
    }
    skip_ws();
    MRBIO_REQUIRE(pos_ == text_.size(), "fault plan JSON: trailing garbage at offset ",
                  pos_);
    MRBIO_REQUIRE(saw_faults, "fault plan JSON: missing \"faults\" array");
  }

 private:
  void read_fault_array(FaultPlan& plan) {
    skip_ws();
    expect('[');
    if (try_consume(']')) return;
    do {
      skip_ws();
      expect('{');
      std::map<std::string, std::string> fields;
      std::string kind;
      if (!try_consume('}')) {
        do {
          const std::string key = read_string();
          skip_ws();
          expect(':');
          const std::string value = read_scalar_as_string();
          if (key == "kind") {
            kind = value;
          } else if (key == "mode") {
            fields["mode"] = value;
          } else {
            fields[key] = value;
          }
        } while (try_consume(','));
        expect('}');
      }
      MRBIO_REQUIRE(!kind.empty(), "fault plan JSON: fault object needs \"kind\"");
      add_clause(plan, kind, fields);
    } while (try_consume(','));
    expect(']');
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  void expect(char c) {
    skip_ws();
    MRBIO_REQUIRE(pos_ < text_.size() && text_[pos_] == c, "fault plan JSON: expected '", c,
                  "' at offset ", pos_);
    ++pos_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string read_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        MRBIO_REQUIRE(pos_ < text_.size(), "fault plan JSON: bad escape");
        c = text_[pos_++];
        MRBIO_REQUIRE(c == '"' || c == '\\' || c == '/', "fault plan JSON: unsupported ",
                      "escape '\\", c, "'");
      }
      out.push_back(c);
    }
    expect('"');
    return out;
  }

  std::string read_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    MRBIO_REQUIRE(pos_ > start, "fault plan JSON: expected a value at offset ", pos_);
    return text_.substr(start, pos_ - start);
  }

  /// String, number, or literal — returned in the spec string form so the
  /// clause builder treats both input syntaxes identically.
  std::string read_scalar_as_string() {
    skip_ws();
    MRBIO_REQUIRE(pos_ < text_.size(), "fault plan JSON: truncated document");
    const char c = text_[pos_];
    if (c == '"') return read_string();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return "true";
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return "false";
    }
    return read_number();
  }

  void skip_value() {
    skip_ws();
    MRBIO_REQUIRE(pos_ < text_.size(), "fault plan JSON: truncated document");
    const char c = text_[pos_];
    if (c == '{') {
      expect('{');
      if (try_consume('}')) return;
      do {
        read_string();
        skip_ws();
        expect(':');
        skip_value();
      } while (try_consume(','));
      expect('}');
    } else if (c == '[') {
      expect('[');
      if (try_consume(']')) return;
      do {
        skip_value();
      } while (try_consume(','));
      expect(']');
    } else if (c == '"') {
      read_string();
    } else if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
    } else {
      read_scalar_as_string();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

void FaultPlan::validate(int nranks, bool checkpointing, bool master_failover) const {
  for (const CrashFault& c : crashes) {
    MRBIO_REQUIRE(c.rank >= 0 && c.rank < nranks, "fault plan: crash rank ", c.rank,
                  " outside [0, ", nranks, ")");
    MRBIO_REQUIRE(c.rank != 0 || master_failover,
                  "fault plan: rank 0 is the master-worker scheduler and cannot ",
                  "crash (use --scheduler steal, whose sharded ledger elects a ",
                  "successor)");
  }
  for (const MessageFault& m : messages) {
    MRBIO_REQUIRE(m.src >= -1 && m.src < nranks, "fault plan: message src ", m.src,
                  " outside [-1, ", nranks, ")");
    MRBIO_REQUIRE(m.dst >= -1 && m.dst < nranks, "fault plan: message dst ", m.dst,
                  " outside [-1, ", nranks, ")");
  }
  for (const SlowFault& s : slows) {
    MRBIO_REQUIRE(s.rank >= 0 && s.rank < nranks, "fault plan: slow rank ", s.rank,
                  " outside [0, ", nranks, ")");
  }
  for (const KillFault& k : kills) {
    MRBIO_REQUIRE(k.t >= 0.0, "fault plan: kill time must be >= 0");
  }
  MRBIO_REQUIRE(corrupts.empty() || checkpointing,
                "fault plan: corrupt faults need a checkpoint to target; "
                "configure --checkpoint-dir");
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  bool first = true;
  auto sep = [&]() -> std::ostringstream& {
    if (!first) os << "; ";
    first = false;
    return os;
  };
  for (const CrashFault& c : crashes) {
    sep() << "crash:rank=" << c.rank;
    if (c.t >= 0.0) os << "@t=" << c.t;
    if (c.task >= 0) os << "@task=" << c.task;
    if (c.permanent) os << ",mode=permanent";
  }
  for (const MessageFault& m : messages) {
    const char* kind = m.kind == MessageFault::Kind::Drop        ? "drop"
                       : m.kind == MessageFault::Kind::Duplicate ? "dup"
                                                                 : "delay";
    sep() << kind << ":src=" << m.src << ",dst=" << m.dst;
    if (m.kind == MessageFault::Kind::Delay) os << ",by=" << m.by;
    os << ",count=" << m.count;
  }
  for (const SlowFault& s : slows) {
    sep() << "slow:rank=" << s.rank << ",factor=" << s.factor;
  }
  for (const KillFault& k : kills) {
    sep() << "kill:t=" << k.t;
  }
  for (const CorruptFault& c : corrupts) {
    const char* target = c.target == CorruptTarget::Ledger     ? "ledger"
                         : c.target == CorruptTarget::MapLog   ? "map"
                         : c.target == CorruptTarget::Snapshot ? "snapshot"
                         : c.target == CorruptTarget::Shard    ? "shard"
                                                               : "any";
    sep() << "corrupt:target=" << target;
    if (c.byte >= 0) os << ",byte=" << c.byte;
    if (c.count != 1) os << ",count=" << c.count;
  }
  return os.str();
}

FaultPlan FaultPlan::parse(const std::string& text) {
  const std::string trimmed = trim(text);
  if (!trimmed.empty() && trimmed.front() == '{') return parse_json(trimmed);
  return parse_spec(trimmed);
}

FaultPlan FaultPlan::parse_spec(const std::string& spec) {
  FaultPlan plan;
  std::string clause;
  std::istringstream in(spec);
  while (std::getline(in, clause, ';')) {
    clause = trim(clause);
    if (clause.empty()) continue;
    const std::size_t colon = clause.find(':');
    MRBIO_REQUIRE(colon != std::string::npos, "fault plan: expected kind:fields, got '",
                  clause, "'");
    const std::string kind = trim(clause.substr(0, colon));
    add_clause(plan, kind, parse_fields(kind, clause.substr(colon + 1)));
  }
  return plan;
}

FaultPlan FaultPlan::parse_json(const std::string& json) {
  FaultPlan plan;
  JsonReader(json).read_plan(plan);
  return plan;
}

FaultPlan FaultPlan::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MRBIO_REQUIRE(in.good(), "cannot open fault plan file ", path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

// ---------------------------------------------------------------------------
// Injector

Injector::Injector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const CrashFault& c : plan_.crashes) crashes_.push_back({c, false});
  for (const MessageFault& m : plan_.messages) messages_.push_back({m, m.count});
  for (const KillFault& k : plan_.kills) kills_.push_back({k, false});
  for (const CorruptFault& c : plan_.corrupts) corrupts_.push_back({c, c.count});
}

void Injector::poll_locked(int rank, double now, std::unique_lock<std::mutex>& lock) {
  // Job kills outrank everything: once due, EVERY poll on EVERY rank
  // throws, so no rank keeps computing past the kill point. `fired` only
  // de-duplicates the stats counter.
  for (KillState& k : kills_) {
    if (now < k.fault.t) continue;
    if (!k.fired) {
      k.fired = true;
      ++stats_.kills_fired;
    }
    const std::string what =
        format_msg("injected job kill at t=", now, " (planned t=", k.fault.t,
                   ") on rank ", rank, " — restart with --resume to continue");
    lock.unlock();
    throw JobKillSignal(rank, what);
  }
  for (CrashState& c : crashes_) {
    if (c.fired || c.fault.rank != rank) continue;
    const bool time_due = c.fault.t >= 0.0 && now >= c.fault.t;
    const bool task_due =
        c.fault.task >= 0 && rank < static_cast<int>(tasks_started_.size()) &&
        tasks_started_[static_cast<std::size_t>(rank)] > c.fault.task;
    if (!time_due && !task_due) continue;
    c.fired = true;
    ++stats_.crashes_fired;
    const std::size_t r = static_cast<std::size_t>(rank);
    if (crashed_.size() <= r) crashed_.resize(r + 1, false);
    crashed_[r] = true;
    if (c.fault.permanent) {
      if (permanently_crashed_.size() <= r) permanently_crashed_.resize(r + 1, false);
      permanently_crashed_[r] = true;
    }
    const std::string what = format_msg(
        "injected crash on rank ", rank, c.fault.permanent ? " (permanent)" : "", " at t=",
        now, " — enable fault tolerance (MapReduceConfig.ft) to recover");
    lock.unlock();
    throw CrashSignal(rank, what);
  }
}

void Injector::maybe_crash(int rank, double now) {
  std::unique_lock<std::mutex> lock(mutex_);
  poll_locked(rank, now, lock);
}

void Injector::task_started(int rank, double now) {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::size_t r = static_cast<std::size_t>(rank);
  if (tasks_started_.size() <= r) tasks_started_.resize(r + 1, 0);
  ++tasks_started_[r];
  poll_locked(rank, now, lock);
}

bool Injector::crashed(int rank) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::size_t r = static_cast<std::size_t>(rank);
  return r < crashed_.size() && crashed_[r];
}

bool Injector::permanently_crashed(int rank) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::size_t r = static_cast<std::size_t>(rank);
  return r < permanently_crashed_.size() && permanently_crashed_[r];
}

SendAction Injector::on_send(int src, int dst, int tag, int user_tag_limit) {
  SendAction action;
  if (tag < 0 || tag >= user_tag_limit) return action;  // collectives are immune
  std::unique_lock<std::mutex> lock(mutex_);
  for (MessageState& m : messages_) {
    if (m.remaining <= 0) continue;
    if (m.fault.src != -1 && m.fault.src != src) continue;
    if (m.fault.dst != -1 && m.fault.dst != dst) continue;
    --m.remaining;
    switch (m.fault.kind) {
      case MessageFault::Kind::Drop:
        ++stats_.messages_dropped;
        action.kind = SendAction::Kind::Drop;
        return action;
      case MessageFault::Kind::Duplicate:
        ++stats_.messages_duplicated;
        action.kind = SendAction::Kind::Duplicate;
        return action;
      case MessageFault::Kind::Delay:
        ++stats_.messages_delayed;
        action.delay = m.fault.by;
        return action;
    }
  }
  return action;
}

bool Injector::take_corrupt(CorruptTarget target, CorruptFault& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (CorruptState& c : corrupts_) {
    if (c.remaining <= 0) continue;
    const bool match = c.fault.target == CorruptTarget::Any ||
                       target == CorruptTarget::Any || c.fault.target == target;
    if (!match) continue;
    --c.remaining;
    ++stats_.checkpoints_corrupted;
    out = c.fault;
    return true;
  }
  return false;
}

double Injector::slow_factor(int rank) const {
  double factor = 1.0;
  for (const SlowFault& s : plan_.slows) {
    if (s.rank == rank) factor *= s.factor;
  }
  return factor;
}

InjectorStats Injector::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace mrbio::fault
