// Deterministic fault injection for the runtime backends.
//
// A FaultPlan is a declarative list of failures to inject into one run:
// rank crashes (fired at a virtual/steady time or at a task index),
// message drops / duplications / delays on user-tag traffic, and
// slow-rank compute multipliers. Both engines consult a shared, thread-
// safe Injector built from the plan:
//
//   * sim::Engine and rt::NativeEngine call Injector::on_send() for every
//     point-to-point message and apply the returned action, and scale
//     compute() charges by slow_factor();
//   * the fault-tolerant master-worker scheduler in mrmpi polls
//     maybe_crash()/task_started() at protocol points, which throw
//     CrashSignal when a crash trigger fires. The worker harness catches
//     the signal, discards all volatile map-phase state (the crash-
//     during-emit model) and rejoins with a bumped incarnation number —
//     or, for `mode=permanent`, leaves the task protocol for good.
//
// Message faults apply only to application tags (below the user-tag
// limit), never to collective traffic, and every fault has a finite
// count, so a plan can delay progress but cannot livelock a run.
//
// Two whole-job fault kinds exercise the checkpoint/restart layer:
//
//   * kill:t=0.5 throws JobKillSignal (NOT CrashSignal — the fault-
//     tolerant worker loop must not swallow it) from every crash poll at
//     or after the trigger time, modeling the scheduler killing the whole
//     job; the CLI tools map it to exit code 3 so a wrapper can restart
//     with --resume.
//   * corrupt:target=ledger|map|snapshot|any flips a byte in the matching
//     checkpoint file right after a durable write (the ckpt layer calls
//     Injector::take_corrupt from its post-write hooks), which the next
//     read must catch via CRC and degrade to recomputation.
//
// Plans parse from a compact spec string
//
//   crash:rank=3@t=0.4; drop:src=1,dst=0,count=2; slow:rank=2,factor=4
//
// or from a JSON document {"faults":[{"kind":"crash","rank":3,...},...]}.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace mrbio::fault {

/// Tags at or above this value are runtime-internal (collective plumbing)
/// and immune to message faults. Mirrors mpi::Comm::kUserTagLimit, which
/// static_asserts against this value — the fault layer sits below mpi and
/// cannot include it.
inline constexpr int kUserTagLimit = 1 << 20;

/// Thrown out of Injector crash polls when a crash trigger fires. The
/// fault-tolerant worker loop catches it and respawns the worker with
/// empty state; if no layer catches it (fault tolerance disabled) the
/// run fails with this error.
class CrashSignal : public Error {
 public:
  CrashSignal(int rank, const std::string& what) : Error(what), rank_(rank) {}
  int rank() const { return rank_; }

 private:
  int rank_;
};

/// Thrown out of crash polls when a job-kill trigger fires. Deliberately
/// NOT a CrashSignal: the fault-tolerant worker loop only catches
/// CrashSignal, so a kill always unwinds the whole run — the in-memory
/// state is gone and only checkpointed state survives for --resume.
class JobKillSignal : public Error {
 public:
  explicit JobKillSignal(int rank, const std::string& what) : Error(what), rank_(rank) {}
  int rank() const { return rank_; }

 private:
  int rank_;
};

/// One injected rank crash. Exactly one trigger is set: `t` (fires at the
/// first poll at or after that time) or `task` (fires when the rank starts
/// its task-index-th map task, 0-based, counted per rank per run).
struct CrashFault {
  int rank = -1;
  double t = -1.0;            ///< time trigger; < 0 = unset
  std::int64_t task = -1;     ///< task-count trigger; < 0 = unset
  bool permanent = false;     ///< never rejoins the task protocol
};

/// One message-level fault on the (src, dst) channel. Wildcard -1 matches
/// any rank. Applies to the next `count` matching user-tag sends.
struct MessageFault {
  enum class Kind : std::uint8_t { Drop, Duplicate, Delay };
  Kind kind = Kind::Drop;
  int src = -1;
  int dst = -1;
  int count = 1;
  double by = 0.0;  ///< Delay only: added seconds
};

/// Multiplies every compute() charge on `rank` by `factor` (sim) or adds
/// (factor - 1) x modeled seconds of real sleep (native).
struct SlowFault {
  int rank = -1;
  double factor = 1.0;
};

/// Kills the whole job at virtual/steady time `t`: every rank's next
/// crash poll at or after `t` throws JobKillSignal.
struct KillFault {
  double t = 0.0;
};

/// Which checkpoint file class a corrupt fault targets. Shard is the
/// per-shard commit journal of the sharded exactly-once ledger.
enum class CorruptTarget : std::uint8_t { Ledger, MapLog, Snapshot, Shard, Any };

/// Flips one byte of a freshly written checkpoint file. Applies to the
/// next `count` matching durable writes; `byte` is an absolute offset
/// (clamped to the file), or -1 for the middle of the file.
struct CorruptFault {
  CorruptTarget target = CorruptTarget::Any;
  std::int64_t byte = -1;
  int count = 1;
};

struct FaultPlan {
  std::vector<CrashFault> crashes;
  std::vector<MessageFault> messages;
  std::vector<SlowFault> slows;
  std::vector<KillFault> kills;
  std::vector<CorruptFault> corrupts;

  bool empty() const {
    return crashes.empty() && messages.empty() && slows.empty() && kills.empty() &&
           corrupts.empty();
  }

  /// True when this plan needs a fault-tolerant scheduling protocol to
  /// make progress: crash faults lose work that must be re-granted, and
  /// message faults (drop/dup/delay) hit scheduler traffic, which only the
  /// seq-numbered resend/replay protocols absorb. Slow ranks, job kills
  /// and checkpoint corruption shape timing or durable state and run on
  /// any scheduler. Tools use this to decide whether --faults must force
  /// ft.enabled on the selected scheduler.
  bool requires_ft() const { return !crashes.empty() || !messages.empty(); }

  /// Throws mrbio::InputError when a fault references a rank outside
  /// [0, nranks), a crash targets the master (rank 0) without a scheduler
  /// that supports master failover (`master_failover` true relaxes that —
  /// the sharded steal-ft ledger elects a deterministic successor), or a
  /// corrupt-checkpoint fault is present with no checkpoint dir
  /// configured (`checkpointing` false).
  void validate(int nranks, bool checkpointing = false,
                bool master_failover = false) const;

  /// Canonical spec-string form (parse(describe()) round-trips).
  std::string describe() const;

  /// Auto-detecting entry point: JSON when the text starts with '{',
  /// spec grammar otherwise.
  static FaultPlan parse(const std::string& text);
  static FaultPlan parse_spec(const std::string& spec);
  static FaultPlan parse_json(const std::string& json);
  /// Reads and parses a plan file (JSON or spec, auto-detected).
  static FaultPlan from_file(const std::string& path);
};

/// What the transport should do with one outgoing message.
struct SendAction {
  enum class Kind : std::uint8_t { Deliver, Drop, Duplicate };
  Kind kind = Kind::Deliver;
  double delay = 0.0;  ///< added seconds (Deliver/Duplicate)
};

struct InjectorStats {
  std::uint64_t crashes_fired = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t kills_fired = 0;
  std::uint64_t checkpoints_corrupted = 0;
};

/// Thread-safe run-time state of one FaultPlan. One Injector serves one
/// run; both backends may call it from many rank threads concurrently.
class Injector {
 public:
  explicit Injector(FaultPlan plan);

  /// Crash poll at a protocol point inside a crashable scope (the
  /// fault-tolerant worker loop). Throws CrashSignal when a trigger on
  /// `rank` is due at `now`; otherwise returns.
  void maybe_crash(int rank, double now);

  /// Marks the start of one map task on `rank` (advances the per-rank
  /// task counter for `task=` triggers), then polls like maybe_crash().
  void task_started(int rank, double now);

  /// True once any crash has fired on `rank`.
  bool crashed(int rank) const;

  /// True when a permanent crash has fired on `rank`: the rank must not
  /// rejoin the task protocol (it still participates in collectives).
  bool permanently_crashed(int rank) const;

  /// Resolves message faults for one send. Only tags in [0,
  /// user_tag_limit) are eligible; counts are consumed under the lock, so
  /// concurrent senders never double-apply a fault.
  SendAction on_send(int src, int dst, int tag, int user_tag_limit);

  /// Compute multiplier for `rank`; 1.0 when no slow fault matches.
  double slow_factor(int rank) const;

  /// Consumes one pending corrupt-checkpoint fault matching `target`
  /// (CorruptTarget::Any matches every write class). Returns true and
  /// fills `out` when a fault was consumed; the caller applies the byte
  /// flip to the file it just wrote.
  bool take_corrupt(CorruptTarget target, CorruptFault& out);

  InjectorStats stats() const;
  const FaultPlan& plan() const { return plan_; }

 private:
  struct CrashState {
    CrashFault fault;
    bool fired = false;
  };
  struct MessageState {
    MessageFault fault;
    int remaining = 0;
  };
  struct KillState {
    KillFault fault;
    bool fired = false;  ///< guards the stats counter; the throw repeats
  };
  struct CorruptState {
    CorruptFault fault;
    int remaining = 0;
  };

  void poll_locked(int rank, double now, std::unique_lock<std::mutex>& lock);

  FaultPlan plan_;
  mutable std::mutex mutex_;
  std::vector<CrashState> crashes_;
  std::vector<MessageState> messages_;
  std::vector<KillState> kills_;
  std::vector<CorruptState> corrupts_;
  std::vector<bool> crashed_;              ///< indexed by rank, grown on demand
  std::vector<bool> permanently_crashed_;  ///< indexed by rank, grown on demand
  std::vector<std::int64_t> tasks_started_;  ///< per-rank map-task counter
  InjectorStats stats_;
};

}  // namespace mrbio::fault
