// Lightweight phi-accrual failure detection for the scheduling protocols.
//
// The detector piggybacks on protocol traffic: every message a scheduler
// receives from a peer is a heartbeat (heard()), so no extra wire traffic
// is generated. For each peer it keeps an exponentially weighted mean of
// the inter-arrival gaps and expresses the current silence as a suspicion
// level
//
//   phi(peer, now) = log10(e) * (now - last_heard) / mean_gap
//
// which is the phi-accrual statistic of Hayashibara et al. under an
// exponential inter-arrival model: phi = 1 means the silence is ~10x the
// mean gap, phi = 2 is ~100x, and so on. A peer is suspected once phi
// exceeds the configured threshold — but only after a minimum number of
// samples, so a peer that has simply not spoken yet is never evicted.
//
// Schedulers use suspicion to evict workers early (revert and re-grant
// their outstanding tasks before the full per-attempt timeout) and to
// trigger ledger-shard failover. Eviction is always safe: the exactly-
// once commit ledger discards duplicate completions, so a false positive
// costs duplicated compute, never correctness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace mrbio::fault {

/// Tuning for the heartbeat/phi-accrual detector. Defaults are off: the
/// drivers enable it explicitly (--heartbeat) so library users and tests
/// that construct FtConfig directly keep the pure timeout behavior.
struct HeartbeatConfig {
  bool enabled = false;
  double interval = 0.25;   ///< floor for the learned mean gap (seconds)
  double threshold = 8.0;   ///< suspect when phi exceeds this
  int min_samples = 3;      ///< arrivals required before suspicion is allowed

  /// Parses "interval=0.5,phi=6,samples=4" (any subset; bare "on"/"off"
  /// toggles). Throws InputError on malformed fields, non-positive
  /// intervals, or non-positive thresholds.
  static HeartbeatConfig parse(const std::string& spec);
};

/// Per-peer phi-accrual suspicion state. Not thread-safe: each scheduler
/// loop owns one detector for the peers it watches.
class PhiAccrualDetector {
 public:
  PhiAccrualDetector() = default;
  explicit PhiAccrualDetector(HeartbeatConfig config) : config_(config) {}

  const HeartbeatConfig& config() const { return config_; }

  /// Records one arrival from `peer` at time `now`.
  void heard(int peer, double now);

  /// Current suspicion level for `peer`; 0 before min_samples arrivals.
  double phi(int peer, double now) const;

  /// True when `peer` has been silent long enough that phi exceeds the
  /// threshold (and at least min_samples arrivals were seen).
  bool suspect(int peer, double now) const;

  /// Forgets `peer` (e.g. after an eviction, so a recovered peer starts
  /// with a clean window instead of an inflated mean).
  void forget(int peer);

  /// Largest phi over all tracked peers; feeds the fault.phi_max gauge.
  double max_phi(double now) const;

 private:
  struct PeerState {
    double last = 0.0;      ///< time of the most recent arrival
    double mean_gap = 0.0;  ///< EWMA of inter-arrival gaps
    int samples = 0;
  };

  const PeerState* find(int peer) const;

  HeartbeatConfig config_;
  std::vector<PeerState> peers_;  ///< indexed by rank, grown on demand
  std::vector<bool> known_;
};

}  // namespace mrbio::fault
