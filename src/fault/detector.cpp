#include "fault/detector.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mrbio::fault {

namespace {

// log10(e): converts the normalized silence (gap / mean) into the
// phi-accrual scale under an exponential inter-arrival model.
constexpr double kLog10E = 0.43429448190325176;

// EWMA weight for new inter-arrival samples: recent behavior dominates
// within ~10 arrivals without a sliding-window allocation per peer.
constexpr double kGapAlpha = 0.2;

double to_real(const std::string& field, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    MRBIO_REQUIRE(used == value.size(), "heartbeat config: bad number for ", field,
                  ": '", value, "'");
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw InputError(format_msg("heartbeat config: bad number for ", field, ": '",
                                value, "'"));
  }
}

}  // namespace

HeartbeatConfig HeartbeatConfig::parse(const std::string& spec) {
  HeartbeatConfig config;
  config.enabled = true;
  std::string field;
  std::istringstream in(spec);
  while (std::getline(in, field, ',')) {
    // Trim surrounding whitespace.
    const auto b = field.find_first_not_of(" \t");
    const auto e = field.find_last_not_of(" \t");
    field = b == std::string::npos ? std::string() : field.substr(b, e - b + 1);
    if (field.empty()) continue;
    if (field == "on") {
      config.enabled = true;
      continue;
    }
    if (field == "off") {
      config.enabled = false;
      continue;
    }
    const std::size_t eq = field.find('=');
    MRBIO_REQUIRE(eq != std::string::npos && eq > 0,
                  "heartbeat config: expected key=value, got '", field, "'");
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    MRBIO_REQUIRE(!value.empty(), "heartbeat config: empty value for ", key);
    if (key == "interval") {
      config.interval = to_real(key, value);
      MRBIO_REQUIRE(config.interval > 0.0,
                    "heartbeat config: interval must be positive");
    } else if (key == "phi") {
      config.threshold = to_real(key, value);
      MRBIO_REQUIRE(config.threshold > 0.0,
                    "heartbeat config: phi threshold must be positive");
    } else if (key == "samples") {
      const double v = to_real(key, value);
      // Range-check before the int cast: a fuzzer-sized value like 1e300
      // would make the cast itself undefined behaviour.
      MRBIO_REQUIRE(v >= 1.0 && v <= 1e6 && v == std::floor(v),
                    "heartbeat config: samples must be a positive integer");
      config.min_samples = static_cast<int>(v);
    } else {
      throw InputError(format_msg("heartbeat config: unknown key '", key,
                                  "' (expected interval/phi/samples/on/off)"));
    }
  }
  return config;
}

void PhiAccrualDetector::heard(int peer, double now) {
  if (peer < 0) return;
  const auto i = static_cast<std::size_t>(peer);
  if (i >= peers_.size()) {
    peers_.resize(i + 1);
    known_.resize(i + 1, false);
  }
  PeerState& s = peers_[i];
  if (!known_[i]) {
    known_[i] = true;
    s.last = now;
    s.mean_gap = config_.interval;
    s.samples = 1;
    return;
  }
  const double gap = std::max(0.0, now - s.last);
  s.mean_gap = s.samples == 1 ? std::max(gap, config_.interval)
                              : (1.0 - kGapAlpha) * s.mean_gap + kGapAlpha * gap;
  s.last = now;
  ++s.samples;
}

const PhiAccrualDetector::PeerState* PhiAccrualDetector::find(int peer) const {
  if (peer < 0) return nullptr;
  const auto i = static_cast<std::size_t>(peer);
  if (i >= peers_.size() || !known_[i]) return nullptr;
  return &peers_[i];
}

double PhiAccrualDetector::phi(int peer, double now) const {
  const PeerState* s = find(peer);
  if (s == nullptr || s->samples < config_.min_samples) return 0.0;
  const double mean = std::max(s->mean_gap, config_.interval);
  const double silence = std::max(0.0, now - s->last);
  return kLog10E * silence / mean;
}

bool PhiAccrualDetector::suspect(int peer, double now) const {
  return phi(peer, now) > config_.threshold;
}

void PhiAccrualDetector::forget(int peer) {
  if (peer < 0) return;
  const auto i = static_cast<std::size_t>(peer);
  if (i < peers_.size()) {
    peers_[i] = PeerState{};
    known_[i] = false;
  }
}

double PhiAccrualDetector::max_phi(double now) const {
  double best = 0.0;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (known_[i]) best = std::max(best, phi(static_cast<int>(i), now));
  }
  return best;
}

}  // namespace mrbio::fault
