#include "common/log.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace mrbio {

namespace {
/// Startup level: the MRBIO_LOG environment variable when set and valid
/// ("debug"/"info"/"warn"/"error"/"off"), Warn otherwise. Executables may
/// still override it with set_log_level (e.g. from a --log flag).
int initial_level() {
  const char* env = std::getenv("MRBIO_LOG");
  if (env != nullptr && *env != '\0') {
    try {
      return static_cast<int>(parse_log_level(env));
    } catch (const InputError&) {
      std::fprintf(stderr, "[WARN ] ignoring invalid MRBIO_LOG value '%s'\n", env);
    }
  }
  return static_cast<int>(LogLevel::Warn);
}

std::atomic<int> g_level{initial_level()};
std::mutex g_mutex;
LogSinkFn g_sink = nullptr;  // guarded by g_mutex
void* g_sink_ctx = nullptr;  // guarded by g_mutex

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::ErrorLevel: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) { return std::tolower(c); });
  if (s == "debug") return LogLevel::Debug;
  if (s == "info") return LogLevel::Info;
  if (s == "warn") return LogLevel::Warn;
  if (s == "error") return LogLevel::ErrorLevel;
  if (s == "off") return LogLevel::Off;
  throw InputError("unknown log level: " + name);
}

void set_log_sink(LogSinkFn fn, void* ctx) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = fn;
  g_sink_ctx = fn == nullptr ? nullptr : ctx;
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
  if (g_sink != nullptr) g_sink(g_sink_ctx, level, msg.c_str());
}
}  // namespace detail

}  // namespace mrbio
