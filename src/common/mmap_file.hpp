// Read-only memory-mapped file.
//
// The paper's SOM reads its dense input matrix through mmap so datasets
// larger than RAM can be processed; this wrapper provides that access path
// (and a convenience for writing a raw float matrix file to map later).
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "common/matrix.hpp"

namespace mrbio {

class MmapFile {
 public:
  MmapFile() = default;
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  bool is_open() const { return data_ != nullptr; }
  std::size_t size() const { return size_; }
  std::span<const std::byte> bytes() const;

  /// Interprets the mapping as a row-major float matrix with `cols`
  /// columns. File size must be a multiple of cols*sizeof(float).
  MatrixView as_matrix(std::size_t cols) const;

 private:
  void close() noexcept;
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Writes a matrix as raw platform floats, the format MmapFile::as_matrix
/// and the paper's SOM input loader expect.
void write_raw_matrix(const std::string& path, const MatrixView& m);

}  // namespace mrbio
