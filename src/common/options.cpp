#include "common/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace mrbio {

void Options::add(const std::string& name, const std::string& default_value,
                  const std::string& help) {
  MRBIO_CHECK(specs_.find(name) == specs_.end(), "duplicate option --", name);
  specs_[name] = Spec{default_value, help, /*is_flag=*/false};
  order_.push_back(name);
}

void Options::add_flag(const std::string& name, const std::string& help) {
  MRBIO_CHECK(specs_.find(name) == specs_.end(), "duplicate option --", name);
  specs_[name] = Spec{"false", help, /*is_flag=*/true};
  order_.push_back(name);
}

bool Options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = specs_.find(name);
    MRBIO_REQUIRE(it != specs_.end(), "unknown option --", name, "\n", usage());
    if (it->second.is_flag) {
      MRBIO_REQUIRE(!has_value || value == "true" || value == "false",
                    "flag --", name, " takes no value or true/false");
      values_[name] = has_value ? value : "true";
    } else {
      if (!has_value) {
        MRBIO_REQUIRE(i + 1 < argc, "option --", name, " needs a value");
        value = argv[++i];
      }
      values_[name] = value;
    }
  }
  return true;
}

const Options::Spec& Options::spec(const std::string& name) const {
  const auto it = specs_.find(name);
  MRBIO_CHECK(it != specs_.end(), "undeclared option --", name);
  return it->second;
}

std::string Options::str(const std::string& name) const {
  const auto& s = spec(name);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : s.default_value;
}

std::int64_t Options::integer(const std::string& name) const {
  const std::string v = str(name);
  try {
    std::size_t pos = 0;
    const std::int64_t out = std::stoll(v, &pos);
    MRBIO_REQUIRE(pos == v.size(), "trailing characters");
    return out;
  } catch (const std::exception&) {
    throw InputError(format_msg("option --", name, " expects an integer, got '", v, "'"));
  }
}

double Options::real(const std::string& name) const {
  const std::string v = str(name);
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    MRBIO_REQUIRE(pos == v.size(), "trailing characters");
    return out;
  } catch (const std::exception&) {
    throw InputError(format_msg("option --", name, " expects a number, got '", v, "'"));
  }
}

bool Options::flag(const std::string& name) const { return str(name) == "true"; }

std::string Options::usage() const {
  std::ostringstream os;
  os << summary_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const auto& s = specs_.at(name);
    os << "  --" << name;
    if (!s.is_flag) os << " <value>";
    os << "\n      " << s.help;
    if (!s.is_flag) os << " (default: " << s.default_value << ")";
    os << "\n";
  }
  os << "  --help\n      Show this message\n";
  return os.str();
}

}  // namespace mrbio
