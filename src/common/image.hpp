// Portable anymap (PGM/PPM) writers for SOM visualizations.
//
// The paper's Figs. 7-8 are grayscale U-matrix and RGB codebook images;
// binary PGM/PPM is the simplest lossless interchange with no dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"

namespace mrbio {

/// Writes a grayscale image (values scaled from [min,max] of the matrix
/// to 0..255) as binary PGM (P5).
void write_pgm(const std::string& path, const MatrixView& image);

/// Writes an RGB image as binary PPM (P6). `rgb` must have cols = 3*width;
/// channel values are clamped from [0,1] to 0..255.
void write_ppm(const std::string& path, const MatrixView& rgb, std::size_t width);

}  // namespace mrbio
