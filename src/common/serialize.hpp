// Byte-oriented serialization for messages and key-value payloads.
//
// ByteWriter appends POD values, strings and vectors to a growable buffer;
// ByteReader consumes them in the same order. The format is the machine's
// native layout (this is in-process message passing, not a wire format).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace mrbio {

class ByteWriter {
 public:
  ByteWriter() = default;

  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>, "put() requires a POD type");
    append(&value, sizeof(T));
  }

  void put_bytes(std::span<const std::byte> bytes) {
    put<std::uint64_t>(bytes.size());
    append(bytes.data(), bytes.size());
  }

  void put_string(std::string_view s) {
    put<std::uint64_t>(s.size());
    append(s.data(), s.size());
  }

  template <typename T>
  void put_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>, "put_vector() requires POD elements");
    put<std::uint64_t>(v.size());
    append(v.data(), v.size() * sizeof(T));
  }

  /// Raw append without a length prefix (caller manages framing).
  void append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::span<const std::byte> bytes() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }
  void clear() { buf_.clear(); }

 private:
  std::vector<std::byte> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>, "get() requires a POD type");
    T value;
    take(&value, sizeof(T));
    return value;
  }

  std::vector<std::byte> get_bytes() {
    const auto n = get<std::uint64_t>();
    check_avail(n);  // before allocating: a corrupt length must not OOM
    std::vector<std::byte> out(n);
    take(out.data(), n);
    return out;
  }

  std::string get_string() {
    const auto n = get<std::uint64_t>();
    check_avail(n);
    std::string out(n, '\0');
    take(out.data(), n);
    return out;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>, "get_vector() requires POD elements");
    const auto n = get<std::uint64_t>();
    // Divide instead of multiplying: n * sizeof(T) could wrap for a
    // corrupt length and sneak past the bounds check.
    MRBIO_CHECK(n <= (data_.size() - pos_) / sizeof(T), "ByteReader underflow at offset ",
                pos_, ": need ", n, " elements of ", sizeof(T), " bytes");
    std::vector<T> out(n);
    take(out.data(), n * sizeof(T));
    return out;
  }

  /// Returns a view of the next `n` bytes without copying and advances.
  /// The span references the reader's underlying buffer.
  std::span<const std::byte> raw(std::size_t n) {
    MRBIO_CHECK(pos_ + n <= data_.size(), "ByteReader::raw underflow: need ", n, " have ",
                data_.size() - pos_);
    const std::span<const std::byte> out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  /// Current read offset — error messages name the exact byte position.
  std::size_t position() const { return pos_; }

 private:
  void check_avail(std::size_t n) const {
    MRBIO_CHECK(n <= data_.size() - pos_, "ByteReader underflow at offset ", pos_,
                ": need ", n, " have ", data_.size() - pos_);
  }

  void take(void* out, std::size_t n) {
    check_avail(n);
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace mrbio
