// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in mrbio (workload sampling, SOM init, synthetic
// sequence generation) flows through Rng so that every experiment is
// reproducible from a single seed. The core generator is xoshiro256**,
// seeded via splitmix64, matching the reference implementations by
// Blackman & Vigna (public domain).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace mrbio {

/// splitmix64 step; used for seeding and cheap hash mixing.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes a 64-bit value to a well-distributed hash (stateless splitmix64).
inline std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    MRBIO_CHECK(n > 0, "Rng::below(0)");
    // Lemire's nearly-divisionless bounded sampling with rejection.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (no cached spare: keeps state simple).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Exponential with the given rate (lambda > 0).
  double exponential(double lambda) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -std::log(u) / lambda;
  }

  /// Returns a child generator with a decorrelated stream, for fan-out.
  Rng split() {
    const std::uint64_t seed = (*this)() ^ 0x9e3779b97f4a7c15ULL;
    return Rng(seed);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace mrbio
