// Small statistics helpers used by benchmarks and load-balance reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace mrbio {

/// Welford running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set by linear interpolation; q in [0, 1].
/// Copies and sorts internally; for hot paths sort once and use
/// percentile_sorted.
double percentile(std::vector<double> samples, double q);

/// Percentile over already-sorted samples.
double percentile_sorted(const std::vector<double>& sorted, double q);

}  // namespace mrbio
