#include "common/image.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/error.hpp"

namespace mrbio {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_for_write(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  MRBIO_REQUIRE(f != nullptr, "cannot open for writing: ", path);
  return f;
}

std::uint8_t to_byte(double v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
}
}  // namespace

void write_pgm(const std::string& path, const MatrixView& image) {
  MRBIO_REQUIRE(!image.empty(), "write_pgm: empty image");
  float lo = image(0, 0);
  float hi = image(0, 0);
  for (std::size_t r = 0; r < image.rows(); ++r) {
    for (float v : image.row(r)) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const double scale = (hi > lo) ? 255.0 / (hi - lo) : 0.0;

  auto f = open_for_write(path);
  std::fprintf(f.get(), "P5\n%zu %zu\n255\n", image.cols(), image.rows());
  std::vector<std::uint8_t> row_bytes(image.cols());
  for (std::size_t r = 0; r < image.rows(); ++r) {
    auto row = image.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      row_bytes[c] = to_byte((row[c] - lo) * scale);
    }
    std::fwrite(row_bytes.data(), 1, row_bytes.size(), f.get());
  }
}

void write_ppm(const std::string& path, const MatrixView& rgb, std::size_t width) {
  MRBIO_REQUIRE(!rgb.empty(), "write_ppm: empty image");
  MRBIO_REQUIRE(rgb.cols() == width * 3, "write_ppm: cols must be 3*width");

  auto f = open_for_write(path);
  std::fprintf(f.get(), "P6\n%zu %zu\n255\n", width, rgb.rows());
  std::vector<std::uint8_t> row_bytes(rgb.cols());
  for (std::size_t r = 0; r < rgb.rows(); ++r) {
    auto row = rgb.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      row_bytes[c] = to_byte(row[c] * 255.0);
    }
    std::fwrite(row_bytes.data(), 1, row_bytes.size(), f.get());
  }
}

}  // namespace mrbio
