// Dense row-major matrix of floats plus a non-owning view.
//
// Used for SOM codebooks and input pattern sets. Rows are the natural unit
// (one pattern / one code-vector per row), so row(i) spans are the main
// accessor.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace mrbio {

/// Non-owning view over row-major float data.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(const float* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  std::span<const float> row(std::size_t r) const {
    MRBIO_CHECK(r < rows_, "MatrixView row ", r, " out of ", rows_);
    return {data_ + r * cols_, cols_};
  }

  float operator()(std::size_t r, std::size_t c) const {
    MRBIO_CHECK(r < rows_ && c < cols_, "MatrixView index out of range");
    return data_[r * cols_ + c];
  }

  const float* data() const { return data_; }

  /// Sub-view of consecutive rows [first, first+count).
  MatrixView rows_slice(std::size_t first, std::size_t count) const {
    MRBIO_CHECK(first + count <= rows_, "rows_slice out of range");
    return {data_ + first * cols_, count, cols_};
  }

 private:
  const float* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// Owning row-major float matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  std::span<float> row(std::size_t r) {
    MRBIO_CHECK(r < rows_, "Matrix row ", r, " out of ", rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const {
    MRBIO_CHECK(r < rows_, "Matrix row ", r, " out of ", rows_);
    return {data_.data() + r * cols_, cols_};
  }

  float& operator()(std::size_t r, std::size_t c) {
    MRBIO_CHECK(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    MRBIO_CHECK(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
  }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }

  MatrixView view() const { return {data_.data(), rows_, cols_}; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace mrbio
