// Minimal leveled logger. Thread-safe line-at-a-time output to stderr.
//
// Usage: MRBIO_LOG(Info, "loaded ", n, " sequences");
// The global level defaults to Warn so library code stays quiet in tests;
// executables raise it from the command line.
#pragma once

#include <atomic>
#include <string>

#include "common/error.hpp"

namespace mrbio {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, ErrorLevel = 3, Off = 4 };

/// Process-wide minimum level that will be emitted.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& name);

/// Optional structured sink: when installed, every emitted log line is
/// forwarded to `fn(ctx, level, msg)` *in addition to* stderr — the
/// plain-text stream stays byte-identical whether or not a sink is set.
/// The sink is called under the logger's line mutex, so implementations
/// must not log recursively. Pass fn = nullptr to uninstall (do this
/// before destroying whatever `ctx` points at).
using LogSinkFn = void (*)(void* ctx, LogLevel level, const char* msg);
void set_log_sink(LogSinkFn fn, void* ctx);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

}  // namespace mrbio

#define MRBIO_LOG(level_, ...)                                            \
  do {                                                                    \
    if (static_cast<int>(::mrbio::LogLevel::level_) >=                    \
        static_cast<int>(::mrbio::log_level())) {                         \
      ::mrbio::detail::log_line(::mrbio::LogLevel::level_,                \
                                ::mrbio::format_msg(__VA_ARGS__));        \
    }                                                                     \
  } while (0)
