#include "common/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <utility>

#include "common/error.hpp"

namespace mrbio {

MmapFile::MmapFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  MRBIO_REQUIRE(fd >= 0, "cannot open for mmap: ", path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw InputError("fstat failed: " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    return;  // empty file: valid, no mapping
  }
  void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  MRBIO_REQUIRE(p != MAP_FAILED, "mmap failed: ", path);
  data_ = p;
}

MmapFile::~MmapFile() { close(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    close();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MmapFile::close() noexcept {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

std::span<const std::byte> MmapFile::bytes() const {
  return {static_cast<const std::byte*>(data_), size_};
}

MatrixView MmapFile::as_matrix(std::size_t cols) const {
  MRBIO_REQUIRE(cols > 0, "as_matrix: cols must be positive");
  const std::size_t row_bytes = cols * sizeof(float);
  MRBIO_REQUIRE(size_ % row_bytes == 0, "file size ", size_,
                " is not a multiple of row size ", row_bytes);
  return {static_cast<const float*>(data_), size_ / row_bytes, cols};
}

void write_raw_matrix(const std::string& path, const MatrixView& m) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  MRBIO_REQUIRE(f != nullptr, "cannot open for writing: ", path);
  const std::size_t n = m.rows() * m.cols();
  const std::size_t written = std::fwrite(m.data(), sizeof(float), n, f);
  std::fclose(f);
  MRBIO_REQUIRE(written == n, "short write to ", path);
}

}  // namespace mrbio
