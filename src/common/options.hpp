// Tiny command-line option parser for examples and benchmark drivers.
//
// Supports --name value, --name=value, and boolean --flag forms. Options
// are declared with defaults and help text; --help prints usage and the
// caller exits.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mrbio {

class Options {
 public:
  explicit Options(std::string program_summary) : summary_(std::move(program_summary)) {}

  void add(const std::string& name, const std::string& default_value, const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv; throws InputError on unknown options or missing values.
  /// Returns false if --help was requested (usage already printed).
  bool parse(int argc, const char* const* argv);

  std::string str(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  double real(const std::string& name) const;
  bool flag(const std::string& name) const;

  /// Positional arguments remaining after option parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };
  const Spec& spec(const std::string& name) const;

  std::string summary_;
  std::vector<std::string> order_;
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace mrbio
