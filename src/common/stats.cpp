#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mrbio {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, q);
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  MRBIO_REQUIRE(!sorted.empty(), "percentile of empty sample set");
  MRBIO_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]: ", q);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace mrbio
