// Error handling primitives shared by every mrbio library.
//
// Invariant violations and unrecoverable conditions throw mrbio::Error,
// carrying a formatted message with the failing site. The CHECK macros are
// always on (they guard algorithmic invariants, not debug-only assertions).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mrbio {

/// Base exception for all mrbio failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on malformed external input (files, CLI arguments).
class InputError : public Error {
 public:
  explicit InputError(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated (a bug in this library).
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  format_into(os, rest...);
}
}  // namespace detail

/// Builds a message from stream-formattable parts.
template <typename... Parts>
std::string format_msg(const Parts&... parts) {
  std::ostringstream os;
  detail::format_into(os, parts...);
  return os.str();
}

}  // namespace mrbio

#define MRBIO_CHECK(cond, ...)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      throw ::mrbio::LogicError(::mrbio::format_msg(                        \
          "CHECK failed: ", #cond, " at ", __FILE__, ":", __LINE__, ": ",   \
          ##__VA_ARGS__));                                                  \
    }                                                                       \
  } while (0)

#define MRBIO_REQUIRE(cond, ...)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      throw ::mrbio::InputError(::mrbio::format_msg(                        \
          "requirement failed: ", #cond, ": ", ##__VA_ARGS__));             \
    }                                                                       \
  } while (0)
