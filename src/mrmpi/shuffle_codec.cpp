#include "mrmpi/shuffle_codec.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mrbio::mrmpi {

namespace {

constexpr std::size_t kMaxLiteral = 128;  ///< ctrl 0x00..0x7F -> 1..128 bytes
constexpr std::size_t kMinRepeat = 3;     ///< shorter runs ride as literals
constexpr std::size_t kMaxRepeat = 130;   ///< ctrl 0x80..0xFF -> 3..130 bytes

void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

std::uint64_t get_varint(std::span<const std::byte> in, std::size_t* pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    MRBIO_REQUIRE(*pos < in.size(), "shuffle codec: truncated varint header");
    MRBIO_REQUIRE(shift < 64, "shuffle codec: varint overflow");
    const auto b = static_cast<std::uint64_t>(in[(*pos)++]);
    v |= (b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

}  // namespace

std::vector<std::byte> shuffle_compress(std::span<const std::byte> raw) {
  std::vector<std::byte> out;
  out.reserve(raw.size() / 2 + 16);
  put_varint(out, raw.size());

  std::size_t lit_start = 0;  ///< first byte of the pending literal run
  std::size_t i = 0;
  auto flush_literals = [&](std::size_t end) {
    while (lit_start < end) {
      const std::size_t n = std::min(end - lit_start, kMaxLiteral);
      out.push_back(static_cast<std::byte>(n - 1));
      out.insert(out.end(), raw.begin() + static_cast<std::ptrdiff_t>(lit_start),
                 raw.begin() + static_cast<std::ptrdiff_t>(lit_start + n));
      lit_start += n;
    }
  };

  while (i < raw.size()) {
    std::size_t run = 1;
    while (i + run < raw.size() && raw[i + run] == raw[i] && run < kMaxRepeat) ++run;
    if (run >= kMinRepeat) {
      flush_literals(i);
      out.push_back(static_cast<std::byte>(0x80 + (run - kMinRepeat)));
      out.push_back(raw[i]);
      i += run;
      lit_start = i;
    } else {
      i += run;  // short run travels inside the literal buffer
    }
  }
  flush_literals(raw.size());
  return out;
}

std::uint64_t shuffle_decoded_size(std::span<const std::byte> frame) {
  std::size_t pos = 0;
  return get_varint(frame, &pos);
}

std::vector<std::byte> shuffle_decompress(std::span<const std::byte> frame) {
  std::size_t pos = 0;
  const std::uint64_t raw_len = get_varint(frame, &pos);
  std::vector<std::byte> out;
  out.reserve(raw_len);
  while (pos < frame.size()) {
    const auto ctrl = static_cast<std::size_t>(frame[pos++]);
    if (ctrl < 0x80) {
      const std::size_t n = ctrl + 1;
      MRBIO_REQUIRE(pos + n <= frame.size(), "shuffle codec: truncated literal run");
      out.insert(out.end(), frame.begin() + static_cast<std::ptrdiff_t>(pos),
                 frame.begin() + static_cast<std::ptrdiff_t>(pos + n));
      pos += n;
    } else {
      MRBIO_REQUIRE(pos < frame.size(), "shuffle codec: truncated repeat run");
      const std::size_t n = ctrl - 0x80 + kMinRepeat;
      out.insert(out.end(), n, frame[pos++]);
    }
    MRBIO_REQUIRE(out.size() <= raw_len, "shuffle codec: frame overruns its header");
  }
  MRBIO_REQUIRE(out.size() == raw_len, "shuffle codec: frame shorter than its header");
  return out;
}

}  // namespace mrbio::mrmpi
