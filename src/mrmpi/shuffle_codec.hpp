// Lightweight varint/RLE codec for shuffle buffers and spill pages.
//
// KV exchange buffers and spill pages are dominated by the length-prefixed
// framing ([u64 klen][key][u64 vlen][value][u64 nominal]): the u64 fields
// are mostly zero bytes, and padded or repetitive values compress further.
// A byte-wise run-length scheme with a varint length header captures that
// redundancy at near-memcpy speed with no dependencies — the point is a
// *modeled* bandwidth saving (nominal bytes scale with the real ratio),
// not a state-of-the-art ratio.
//
// Frame: [varint raw_len][tokens...]
//   token 0x00..0x7F: literal run, (ctrl + 1) verbatim bytes follow
//   token 0x80..0xFF: repeat run, next byte repeated (ctrl - 0x80 + 3) times
//
// Runs shorter than 3 are carried as literals (a 2-byte repeat token never
// wins there). decode(encode(x)) == x for every input; decode throws
// mrbio::InputError on truncated or oversized frames, so a corrupt spill
// page or wire buffer fails loudly instead of yielding wrong KV data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mrbio::mrmpi {

std::vector<std::byte> shuffle_compress(std::span<const std::byte> raw);

std::vector<std::byte> shuffle_decompress(std::span<const std::byte> frame);

/// Decoded length of a frame without decoding it (the varint header).
std::uint64_t shuffle_decoded_size(std::span<const std::byte> frame);

}  // namespace mrbio::mrmpi
