#include "mrmpi/mapreduce.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <numeric>
#include <string>
#include <unordered_map>

#include "ckpt/ckpt.hpp"
#include "common/log.hpp"
#include "common/serialize.hpp"
#include "mrmpi/shuffle_codec.hpp"
#include "obs/timeseries.hpp"

namespace mrbio::mrmpi {

namespace {
// ---------------------------------------------------------------------------
// Map-log record payload (one per committed task):
//
//   [u64 task][u64 npairs]([u64 klen][key][u64 vlen][value][u64 nominal])*
//
// The framing CRC already guards against bit rot; this validator guards
// against structural damage that slips past it (a writer bug, a record
// from a foreign file). A record that fails demotes to "re-run that
// task", never a crash.
bool decode_task_id(std::span<const std::byte> payload, std::uint64_t ntasks,
                    std::uint64_t* task_out) {
  try {
    ByteReader r(payload);
    const auto task = r.get<std::uint64_t>();
    const auto npairs = r.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < npairs; ++i) {
      r.raw(r.get<std::uint64_t>());  // key
      r.raw(r.get<std::uint64_t>());  // value
      r.get<std::uint64_t>();         // nominal
    }
    if (!r.done() || task >= ntasks) return false;
    *task_out = task;
    return true;
  } catch (const Error&) {
    return false;
  }
}

/// RAII Phase span on this rank's lane; a null recorder makes it a no-op.
/// KV attributes are attached at scope exit via set_kv().
class PhaseSpan {
 public:
  PhaseSpan(trace::Recorder* rec, mpi::Comm& comm, const char* name)
      : rec_(rec), comm_(comm), name_(name), t0_(rec != nullptr ? comm.now() : 0.0) {}
  ~PhaseSpan() {
    if (rec_ != nullptr) {
      rec_->add(comm_.rank(), trace::Category::Phase, name_, t0_, comm_.now(), pairs_,
                bytes_);
    }
  }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  void set_kv(std::uint64_t pairs, std::uint64_t bytes) {
    pairs_ = pairs;
    bytes_ = bytes;
  }

 private:
  trace::Recorder* rec_;
  mpi::Comm& comm_;
  const char* name_;
  double t0_;
  std::uint64_t pairs_ = 0;
  std::uint64_t bytes_ = 0;
};
}  // namespace

MapReduce::MapReduce(mpi::Comm& comm, MapReduceConfig config)
    : comm_(comm), config_(config) {
  MRBIO_REQUIRE(config_.memsize_bytes > 0, "memsize must be positive");
  kv_ = make_kv();
}

MapReduce::~MapReduce() = default;

KeyValue MapReduce::make_kv() const {
  if (!config_.page_to_disk) return KeyValue{};
  SpillPolicy policy;
  policy.page_bytes = config_.page_bytes;
  policy.compress = config_.shuffle.compress;
  policy.max_resident_pages = std::max<std::size_t>(
      2, static_cast<std::size_t>(config_.memsize_bytes / config_.page_bytes));
  policy.dir = config_.spill_dir;
  if (config_.checkpointer != nullptr && config_.checkpointer->enabled()) {
    // Durable spill files live next to the checkpoint data under stable
    // names; stale files from a killed run are truncated on reuse and the
    // checkpoint layer removes the directory on successful completion.
    policy.dir = config_.checkpointer->spill_dir();
    policy.durable = true;
    policy.file_stem =
        "kv_r" + std::to_string(comm_.rank()) + "_s" + std::to_string(ckpt_kv_serial_++);
  }
  return KeyValue{policy};
}

std::uint64_t MapReduce::map(std::uint64_t ntasks, const MapFn& fn) {
  return run_map(ntasks, fn, /*append=*/false);
}

std::uint64_t MapReduce::map_append(std::uint64_t ntasks, const MapFn& fn) {
  return run_map(ntasks, fn, /*append=*/true);
}

std::uint64_t MapReduce::run_map(std::uint64_t ntasks, const MapFn& fn, bool append) {
  trace::Recorder* rec = phase_recorder();
  PhaseSpan span(rec, comm_, "map");
  failed_tasks_.clear();
  KeyValue out = make_kv();
  const sched::Policy policy = resolve_policy();

  // Replay any checkpointed task outputs for this cycle into `out` before
  // scheduling; remotely scheduled runs (master-worker, steal) share the
  // claims so the scheduler can pre-mark restored tasks as committed.
  const bool shared = sched::is_remote(policy) && comm_.size() > 1;
  const bool sharded = policy == sched::Policy::Steal && config_.ft.enabled;
  const std::vector<CkptDoneTask> ckpt_done =
      ckpt_begin_map(ntasks, out, shared, shared && sharded);

  run_sched(policy, ntasks, nullptr, fn, out, ckpt_done);
  ckpt_end_map();

  if (append) {
    kv_.absorb(std::move(out));
  } else {
    kv_ = std::move(out);
  }
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill(/*fresh_store=*/!append);
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

trace::Recorder* MapReduce::phase_recorder() {
  trace::Recorder* rec = comm_.tracer();
  return (rec != nullptr && config_.trace_phases) ? rec : nullptr;
}

void MapReduce::run_task(const MapFn& fn, std::uint64_t task, KeyValue& out,
                         trace::Recorder* rec, const char* span_name) {
  // Crash poll on every scheduler path. Under the fault-tolerant worker
  // this sits inside its try block; elsewhere the CrashSignal propagates
  // and fails the run with its "enable fault tolerance" message.
  if (fault::Injector* inj = comm_.runtime().faults(); inj != nullptr) {
    inj->task_started(comm_.rank(), comm_.now());
  }
  const double t0 = comm_.now();
  fn(task, out);
  ++stats_.map_tasks_run;
  if (rec != nullptr) {
    rec->add(comm_.rank(), trace::Category::Task, span_name, t0, comm_.now());
  }
  if (obs::Registry* reg = metrics(); reg != nullptr) {
    reg->counter("mrmpi.map_tasks").inc();
    reg->histogram("mrmpi.task_seconds").observe(comm_.now() - t0);
  }
  if (obs::TimeSeries* ts = comm_.runtime().timeseries(); ts != nullptr) {
    ts->sample(comm_.rank(), "mrmpi.tasks_done", comm_.now(),
               static_cast<double>(stats_.map_tasks_run));
  }
}

std::uint64_t MapReduce::map_locality(std::uint64_t ntasks, const AffinityFn& affinity,
                                      const MapFn& fn) {
  MRBIO_REQUIRE(affinity != nullptr, "map_locality needs an affinity function");
  trace::Recorder* rec = phase_recorder();
  PhaseSpan span(rec, comm_, "map");
  failed_tasks_.clear();
  KeyValue out = make_kv();
  // Locality scheduling needs a central grant loop, so static policies
  // upgrade to the master; steal keeps its decentralized path and ignores
  // the affinity function (the ledger backstop still honours it).
  sched::Policy policy = resolve_policy();
  if (policy == sched::Policy::Chunk || policy == sched::Policy::Stride) {
    policy = sched::Policy::Master;
  }
  const bool loc_shared = comm_.size() > 1;
  const std::vector<CkptDoneTask> ckpt_done = ckpt_begin_map(
      ntasks, out, loc_shared,
      loc_shared && policy == sched::Policy::Steal && config_.ft.enabled);
  run_sched(policy, ntasks, &affinity, fn, out, ckpt_done);
  ckpt_end_map();
  kv_ = std::move(out);
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill(/*fresh_store=*/true);
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

/// Maps the scheduler strategies' execution hooks onto this object's KV
/// stores and checkpoint journal. One staging buffer suffices: the
/// fault-tolerant protocols run at most one uncommitted task at a time.
class MapReduce::ExecImpl final : public sched::Executor {
 public:
  ExecImpl(MapReduce& mr, const MapFn& fn, KeyValue& out, trace::Recorder* rec)
      : mr_(mr), fn_(fn), out_(out), rec_(rec), staging_(mr.make_kv()) {}

  void run_direct(std::uint64_t task, bool retry) override {
    mr_.run_task_ckpt(fn_, task, out_, rec_, retry ? "map_task_retry" : "map_task");
  }

  void run_staged(std::uint64_t task, bool retry) override {
    mr_.run_task(fn_, task, staging_, rec_, retry ? "map_task_retry" : "map_task");
  }

  void commit_staged(std::uint64_t task) override {
    // Journal at the commit decision, not at task completion: discarded
    // attempts never reach the map log.
    mr_.ckpt_record_task(task, staging_);
    out_.absorb(std::move(staging_));
    staging_ = mr_.make_kv();
  }

  void discard_staged() override { staging_ = mr_.make_kv(); }

  void on_crash() override {
    // Simulated process death: everything the old incarnation held in
    // memory — staged emissions AND previously committed results — is
    // lost; the ledger learns this from the incarnation bump (or the dead
    // flag) and reverts the affected entries.
    out_.clear();
    staging_ = mr_.make_kv();
  }

  bool shard_journal_enabled() const override { return mr_.ckpt_shard_enabled(); }

  void shard_journal_replay(
      int shard, const std::function<void(const std::vector<std::byte>&)>& fn) override {
    mr_.ckpt_shard_replay(shard, fn);
  }

  void shard_journal_append(int shard, const std::vector<std::byte>& payload) override {
    mr_.ckpt_shard_append(shard, payload);
  }

 private:
  MapReduce& mr_;
  const MapFn& fn_;
  KeyValue& out_;
  trace::Recorder* rec_;
  KeyValue staging_;
};

sched::Policy MapReduce::resolve_policy() const {
  if (config_.scheduler != sched::Policy::Auto) return config_.scheduler;
  switch (config_.map_style) {
    case MapStyle::Chunk: return sched::Policy::Chunk;
    case MapStyle::Stride: return sched::Policy::Stride;
    case MapStyle::MasterWorker: return sched::Policy::Master;
  }
  return sched::Policy::Master;
}

void MapReduce::run_sched(sched::Policy policy, std::uint64_t ntasks,
                          const AffinityFn* affinity, const MapFn& fn, KeyValue& out,
                          const std::vector<CkptDoneTask>& ckpt_done) {
  trace::Recorder* rec = phase_recorder();
  ExecImpl exec(*this, fn, out, rec);
  sched::SchedStats sstats;
  sched::MapContext ctx{comm_,          ntasks,        affinity,   config_.ft,
                        config_.steal,  rec,           &exec,      &sched_state_,
                        &ckpt_done,     &sstats,       &failed_tasks_};
  sched::make_scheduler(policy)->execute(ctx);
  // The fault counters are signed per map (a task can un-fail); the net is
  // non-negative by the time the scheduler returns.
  stats_.tasks_retried += static_cast<std::uint64_t>(sstats.tasks_retried);
  stats_.worker_deaths += static_cast<std::uint64_t>(sstats.worker_deaths);
  stats_.tasks_failed += static_cast<std::uint64_t>(sstats.tasks_failed);
  stats_.steals_attempted += sstats.steals_attempted;
  stats_.steals_succeeded += sstats.steals_succeeded;
  stats_.tasks_stolen += sstats.tasks_stolen;
  stats_.workers_evicted += sstats.evictions;
  stats_.ledger_failovers += sstats.failovers;
}

std::vector<MapReduce::CkptDoneTask> MapReduce::ckpt_begin_map(std::uint64_t ntasks,
                                                              KeyValue& out, bool shared,
                                                              bool sharded) {
  std::vector<CkptDoneTask> done;
  ckpt_ = CkptMapState{};
  ckpt::Checkpointer* cp = config_.checkpointer;
  if (cp == nullptr || !cp->enabled()) return done;
  trace::Recorder* rec = phase_recorder();
  const int rank = comm_.rank();
  ckpt_.active = true;
  ckpt_.cycle = cp->cycle(rank);
  ckpt_.last_flush = comm_.now();
  const double t0 = comm_.now();

  // Replay this rank's journal for the cycle. The first occurrence of a
  // task wins: later duplicates come from committed-then-reverted attempts
  // and carry byte-identical data (map functions are deterministic).
  std::map<std::uint64_t, std::vector<std::byte>> mine;
  const std::uint64_t valid_end =
      cp->read_map_log(rank, ckpt_.cycle, [&](std::span<const std::byte> payload) {
        std::uint64_t task = 0;
        if (!decode_task_id(payload, ntasks, &task)) {
          cp->note_corrupt();
          MRBIO_LOG(Warn, "checkpoint: undecodable map-log record on rank ", rank,
                    " (cycle ", ckpt_.cycle, "); the affected task will re-run");
          return;
        }
        mine.emplace(task, std::vector<std::byte>(payload.begin(), payload.end()));
      });

  std::set<std::uint64_t> keep;
  if (shared) {
    // Under remote master-worker scheduling several ranks may hold the
    // same task (committed, then reverted and re-run elsewhere). The ranks
    // allgather their claims and the lowest rank keeps each task; every
    // claim carries the claimant's current incarnation so the master's
    // ledger reverts it correctly if that rank crashes later.
    ByteWriter w;
    w.put<std::uint32_t>(sched_state_.incarnation);
    w.put<std::uint64_t>(static_cast<std::uint64_t>(mine.size()));
    for (const auto& [t, payload] : mine) w.put<std::uint64_t>(t);
    const std::vector<std::vector<std::byte>> all = comm_.allgather_bytes(w.take());
    std::map<std::uint64_t, std::vector<CkptDoneTask>> claims;  // rank-ascending
    for (std::size_t r = 0; r < all.size(); ++r) {
      ByteReader br(all[r]);
      const auto inc = br.get<std::uint32_t>();
      const auto n = br.get<std::uint64_t>();
      for (std::uint64_t i = 0; i < n; ++i) {
        const auto t = br.get<std::uint64_t>();
        claims[t].push_back(CkptDoneTask{t, static_cast<int>(r), inc});
      }
    }

    // Sharded steal-ft resume: overlay the shard journals, the commit
    // authority of that protocol. A claimed task with no surviving journal
    // decision (the journal's tail was corrupted or never written) is
    // dropped and re-runs — which is how corrupting one shard's journal
    // degrades exactly that shard's task range and nothing else. Every
    // rank reads every journal, so the ranks agree on the overlay without
    // another exchange.
    std::map<std::uint64_t, sched::DoneTask> commits;
    bool use_journal = false;
    if (sharded) {
      const int nshards = sched::shard_count(config_.ft, comm_.size());
      if (cp->any_shard_log(ckpt_.cycle, nshards)) {
        use_journal = true;
        for (int s = 0; s < nshards; ++s) {
          cp->read_shard_log(s, ckpt_.cycle, [&](std::span<const std::byte> payload) {
            sched::apply_shard_record(payload, commits);
          });
        }
      }
    }

    std::uint64_t dropped = 0;
    for (const auto& [t, list] : claims) {
      const CkptDoneTask* pick = &list.front();
      if (use_journal) {
        const auto it = commits.find(t);
        if (it == commits.end()) {
          ++dropped;
          continue;  // journal lost the commit: the task re-runs
        }
        // Prefer the journaled committer's copy; when its map log lost the
        // payload (kill between the journal sync and a map-log flush) any
        // other claimant's copy is byte-identical (deterministic map fn).
        for (const CkptDoneTask& c : list) {
          if (c.owner == it->second.owner) {
            pick = &c;
            break;
          }
        }
      }
      done.push_back(*pick);
      if (pick->owner == rank) keep.insert(t);
    }
    if (dropped > 0 && rank == 0) {
      MRBIO_LOG(Warn, "checkpoint: ", dropped,
                " restored task(s) had no surviving shard-journal commit and will re-run");
    }
  } else {
    for (const auto& [t, payload] : mine) {
      keep.insert(t);
      done.push_back(CkptDoneTask{t, rank, sched_state_.incarnation});
    }
  }

  std::uint64_t restored_pairs = 0;
  for (const std::uint64_t t : keep) {
    ByteReader r(mine.at(t));
    r.get<std::uint64_t>();  // task id, validated during replay
    const auto npairs = r.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < npairs; ++i) {
      const auto klen = r.get<std::uint64_t>();
      const auto kbytes = r.raw(klen);
      const auto vlen = r.get<std::uint64_t>();
      const auto vbytes = r.raw(vlen);
      const auto nom = r.get<std::uint64_t>();
      out.add(kbytes, vbytes, nom);
    }
    ckpt_.restored.insert(t);
    restored_pairs += npairs;
  }

  // Price the journal read; the Io span surfaces as checkpoint_io in the
  // report's busy breakdown.
  comm_.compute(static_cast<double>(valid_end) * cp->config().byte_seconds);
  if (obs::Registry* reg = metrics(); reg != nullptr) {
    reg->counter("ckpt.tasks_restored").inc(ckpt_.restored.size());
    reg->counter("ckpt.pairs_restored").inc(restored_pairs);
    reg->counter("ckpt.bytes_replayed").inc(valid_end);
  }
  if (rec != nullptr && valid_end > 0) {
    rec->add(rank, trace::Category::Io, "ckpt_restore", t0, comm_.now(), restored_pairs,
             valid_end);
  }
  ckpt_.log = cp->open_map_log(rank, ckpt_.cycle, valid_end);
  return done;
}

void MapReduce::ckpt_record_task(std::uint64_t task, const KeyValue& emitted) {
  if (!ckpt_.active) return;
  ByteWriter w;
  w.put<std::uint64_t>(task);
  w.put<std::uint64_t>(static_cast<std::uint64_t>(emitted.size()));
  emitted.for_each([&](const KvPair& pair) {
    w.put<std::uint64_t>(pair.key.size());
    w.append(pair.key.data(), pair.key.size());
    w.put<std::uint64_t>(pair.value.size());
    w.append(pair.value.data(), pair.value.size());
    w.put<std::uint64_t>(pair.nominal_bytes);
  });
  ckpt_.pending_bytes += w.size();
  ckpt_.pending.push_back(w.take());
  if (comm_.now() - ckpt_.last_flush >= config_.checkpointer->config().interval) {
    ckpt_flush();
  }
}

void MapReduce::ckpt_flush() {
  if (!ckpt_.active) return;
  ckpt_.last_flush = comm_.now();
  if (ckpt_.pending.empty()) return;
  ckpt::Checkpointer* cp = config_.checkpointer;
  const double t0 = comm_.now();
  const std::uint64_t before = ckpt_.log->bytes_written();
  for (const std::vector<std::byte>& record : ckpt_.pending) {
    ckpt_.log->append(record);
  }
  ckpt_.log->sync();
  const std::uint64_t bytes = ckpt_.log->bytes_written() - before;
  cp->note_written(ckpt_.pending.size(), bytes);
  // Price the durable write and let a pending corrupt fault strike the
  // freshly synced bytes.
  comm_.compute(static_cast<double>(bytes) * cp->config().byte_seconds);
  if (obs::Registry* reg = metrics(); reg != nullptr) {
    reg->counter("ckpt.records_written").inc(ckpt_.pending.size());
    reg->counter("ckpt.bytes_written").inc(bytes);
  }
  if (trace::Recorder* rec = phase_recorder(); rec != nullptr) {
    rec->add(comm_.rank(), trace::Category::Io, "ckpt_write", t0, comm_.now(),
             ckpt_.pending.size(), bytes);
  }
  ckpt_.pending.clear();
  ckpt_.pending_bytes = 0;
  cp->after_map_log_write(comm_.rank(), ckpt_.cycle);
}

void MapReduce::ckpt_end_map() {
  if (!ckpt_.active) return;
  ckpt_flush();
  ckpt_.log.reset();
  ckpt_.shard_logs.clear();
  ckpt_.active = false;
}

void MapReduce::ckpt_shard_replay(
    int shard, const std::function<void(const std::vector<std::byte>&)>& fn) {
  if (!ckpt_.active) return;
  ckpt::Checkpointer* cp = config_.checkpointer;
  std::vector<std::byte> copy;
  const std::uint64_t valid_end =
      cp->read_shard_log(shard, ckpt_.cycle, [&](std::span<const std::byte> payload) {
        copy.assign(payload.begin(), payload.end());
        fn(copy);
      });
  comm_.compute(static_cast<double>(valid_end) * cp->config().byte_seconds);
  ckpt_.shard_logs[shard] = cp->open_shard_log(shard, ckpt_.cycle, valid_end);
}

void MapReduce::ckpt_shard_append(int shard, const std::vector<std::byte>& payload) {
  if (!ckpt_.active) return;
  ckpt::Checkpointer* cp = config_.checkpointer;
  std::unique_ptr<ckpt::RecordWriter>& log = ckpt_.shard_logs[shard];
  if (log == nullptr) {
    // Adoption without a prior replay call: position after the last intact
    // record so the successor never clobbers the dead owner's journal.
    ckpt_.shard_logs.erase(shard);
    ckpt_shard_replay(shard, [](const std::vector<std::byte>&) {});
    return ckpt_shard_append(shard, payload);
  }
  const std::uint64_t before = log->bytes_written();
  log->append(payload);
  log->sync();  // write-ahead: durable before the grant leaves this rank
  const std::uint64_t bytes = log->bytes_written() - before;
  cp->note_written(1, bytes);
  comm_.compute(static_cast<double>(bytes) * cp->config().byte_seconds);
  cp->after_shard_log_write(shard, ckpt_.cycle);
}

void MapReduce::run_task_ckpt(const MapFn& fn, std::uint64_t task, KeyValue& out,
                              trace::Recorder* rec, const char* span_name) {
  if (!ckpt_.active) {
    run_task(fn, task, out, rec, span_name);
    return;
  }
  if (ckpt_.restored.count(task) != 0) return;  // replayed from the journal
  KeyValue scratch = make_kv();
  run_task(fn, task, scratch, rec, span_name);
  ckpt_record_task(task, scratch);
  out.absorb(std::move(scratch));
}

namespace {

/// Scales a nominal byte count by real_after / real_before using 128-bit
/// intermediate math, so paper-scale nominals shrink by exactly the
/// measured framing/compression ratio without overflow.
std::uint64_t scale_nominal(std::uint64_t nominal, std::uint64_t real_after,
                            std::uint64_t real_before) {
  if (real_before == 0 || nominal == 0) return nominal;
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(nominal) * real_after) / real_before);
}

}  // namespace

std::uint64_t MapReduce::aggregate() {
  PhaseSpan span(phase_recorder(), comm_, "aggregate");
  const int p = comm_.size();
  const int rank = comm_.rank();
  const ShuffleConfig& sc = config_.shuffle;

  // Route every pair to its destination rank. Pairs are referenced by
  // index; rank-local pairs are replayed straight into the merged store
  // later (no serialize/deserialize round trip, no send buffer, no wire
  // charge), which is what makes an all-keys-local aggregate cost only the
  // empty exchange.
  struct DestGroup {
    std::string key;                  ///< only filled when combining
    std::vector<std::size_t> pairs;   ///< kv_ indices, emission order
  };
  struct Dest {
    std::vector<DestGroup> groups;    ///< first-occurrence key order
    std::unordered_map<std::string, std::size_t> group_of;
    std::uint64_t nominal = 0;
    std::uint64_t flat_real = 0;      ///< real bytes of the per-pair framing
  };
  std::vector<Dest> dests(static_cast<std::size_t>(p));
  std::size_t index = 0;
  kv_.for_each([&](const KvPair& pair) {
    Dest& dest = dests[static_cast<std::size_t>(key_rank(pair.key, p))];
    dest.nominal += pair.nominal_bytes;
    dest.flat_real += 3 * sizeof(std::uint64_t) + pair.key.size() + pair.value.size();
    std::string key(reinterpret_cast<const char*>(pair.key.data()), pair.key.size());
    if (sc.combiner) {
      auto [it, fresh] = dest.group_of.try_emplace(std::move(key), dest.groups.size());
      if (fresh) dest.groups.push_back({it->first, {}});
      dest.groups[it->second].pairs.push_back(index);
    } else if (dest.groups.empty()) {
      dest.groups.push_back({{}, {index}});
    } else {
      dest.groups.front().pairs.push_back(index);
    }
    ++index;
  });

  // Serialize the remote destinations. Per-pair framing:
  //   [u64 klen][key][u64 vlen][value][u64 nominal]
  // Combined framing (one record per key, values in emission order):
  //   [u64 klen][key][u64 nvalues]([u64 vlen][value][u64 nominal])*
  // The receive side expands combined records back to pairs in the same
  // order, so the merged KV — and the post-convert() KMV — is identical
  // in either mode.
  std::vector<std::vector<std::byte>> sendbufs(static_cast<std::size_t>(p));
  std::vector<std::uint64_t> nominal(static_cast<std::size_t>(p), 0);
  std::uint64_t sent = 0;
  std::uint64_t combined_saved = 0;
  std::uint64_t wire_real = 0;
  std::uint64_t precompress_real = 0;
  for (int d = 0; d < p; ++d) {
    if (d == rank) continue;
    Dest& dest = dests[static_cast<std::size_t>(d)];
    ByteWriter w;
    for (const DestGroup& g : dest.groups) {
      if (sc.combiner) {
        w.put<std::uint64_t>(g.key.size());
        w.append(g.key.data(), g.key.size());
        w.put<std::uint64_t>(g.pairs.size());
      }
      for (const std::size_t i : g.pairs) {
        const KvPair pair = kv_.pair(i);
        if (!sc.combiner) {
          w.put<std::uint64_t>(pair.key.size());
          w.append(pair.key.data(), pair.key.size());
        }
        w.put<std::uint64_t>(pair.value.size());
        w.append(pair.value.data(), pair.value.size());
        w.put<std::uint64_t>(pair.nominal_bytes);
      }
    }
    std::vector<std::byte> buf = w.take();
    std::uint64_t dest_nominal = dest.nominal;
    if (sc.combiner) {
      const std::uint64_t scaled = scale_nominal(dest_nominal, buf.size(), dest.flat_real);
      combined_saved += dest_nominal - scaled;
      dest_nominal = scaled;
    }
    precompress_real += buf.size();
    if (sc.compress && !buf.empty()) {
      std::vector<std::byte> packed = shuffle_compress(buf);
      dest_nominal = scale_nominal(dest_nominal, packed.size(), buf.size());
      buf = std::move(packed);
    }
    wire_real += buf.size();
    nominal[static_cast<std::size_t>(d)] = dest_nominal;
    sent += dest_nominal;
    sendbufs[static_cast<std::size_t>(d)] = std::move(buf);
  }

  stats_.aggregate_bytes_sent += sent;
  stats_.shuffle_combined_bytes += combined_saved;
  if (obs::Registry* reg = metrics(); reg != nullptr) {
    reg->counter("mrmpi.aggregate_bytes").inc(sent);
    if (sc.combiner) reg->counter("shuffle.combined_bytes").inc(combined_saved);
    if (sc.compress) {
      // An empty exchange compresses nothing; report the identity ratio
      // instead of leaving a 0/0 artifact in the gauge.
      reg->gauge("shuffle.compress_ratio")
          .set(wire_real > 0
                   ? static_cast<double>(precompress_real) / static_cast<double>(wire_real)
                   : 1.0);
    }
  }

  const double t_exchange = comm_.now();
  std::vector<std::vector<std::byte>> recvbufs;
  if (sc.exchange == ExchangeMode::Tree) {
    int stages = 0;
    recvbufs = comm_.alltoallv_staged(std::move(sendbufs), nominal, sc.tree_radix, &stages);
    stats_.shuffle_stages += static_cast<std::uint64_t>(stages);
    if (obs::Registry* reg = metrics(); reg != nullptr) {
      reg->counter("shuffle.stages").inc(static_cast<std::uint64_t>(stages));
    }
  } else {
    recvbufs = comm_.alltoallv_nominal(std::move(sendbufs), nominal);
  }
  const double exchange_seconds = comm_.now() - t_exchange;

  KeyValue merged = make_kv();
  for (int src = 0; src < p; ++src) {
    if (src == rank) {
      // Replay rank-local pairs in the exact order the wire path would
      // have delivered them (grouped when combining).
      for (const DestGroup& g : dests[static_cast<std::size_t>(rank)].groups) {
        for (const std::size_t i : g.pairs) {
          const KvPair pair = kv_.pair(i);
          merged.add(pair.key, pair.value, pair.nominal_bytes);
        }
      }
      continue;
    }
    const auto& raw = recvbufs[static_cast<std::size_t>(src)];
    std::vector<std::byte> unpacked;
    if (sc.compress && !raw.empty()) unpacked = shuffle_decompress(raw);
    ByteReader r(sc.compress && !raw.empty() ? std::span<const std::byte>(unpacked)
                                             : std::span<const std::byte>(raw));
    while (!r.done()) {
      const auto klen = r.get<std::uint64_t>();
      const auto kbytes = r.raw(klen);
      if (sc.combiner) {
        const auto nvalues = r.get<std::uint64_t>();
        for (std::uint64_t v = 0; v < nvalues; ++v) {
          const auto vlen = r.get<std::uint64_t>();
          const auto vbytes = r.raw(vlen);
          const auto nom = r.get<std::uint64_t>();
          merged.add(kbytes, vbytes, nom);
        }
      } else {
        const auto vlen = r.get<std::uint64_t>();
        const auto vbytes = r.raw(vlen);
        const auto nom = r.get<std::uint64_t>();
        merged.add(kbytes, vbytes, nom);
      }
    }
  }
  kv_ = std::move(merged);
  have_kmv_ = false;
  charge_spill(/*fresh_store=*/true,
               sc.overlap_spill ? exchange_seconds : 0.0, "shuffle_spill");
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

std::uint64_t MapReduce::convert() {
  PhaseSpan span(phase_recorder(), comm_, "convert");
  // Charge the local group-by: one hash+compare pass over the data.
  kmv_ = KeyMultiValue::from_keyvalue(kv_);
  have_kmv_ = true;
  // The grouped view materializes a second copy of the pair data. Offsets
  // are 64-bit throughout, so a single group larger than the memory budget
  // is represented exactly — never truncated — but the overflow is backed
  // by disk and must be charged like any other spill write.
  const std::uint64_t nominal = kv_.nominal_bytes();
  if (nominal > config_.memsize_bytes) {
    const std::uint64_t over = nominal - config_.memsize_bytes;
    const double t0 = comm_.now();
    comm_.compute(static_cast<double>(over) * config_.spill_byte_seconds);
    if (obs::Registry* reg = metrics(); reg != nullptr) {
      reg->counter("mrmpi.spill_bytes").inc(over);
    }
    if (trace::Recorder* rec = phase_recorder(); rec != nullptr) {
      rec->add(comm_.rank(), trace::Category::Io, "kmv_spill", t0, comm_.now(), 0, over);
    }
    stats_.spilled_bytes += over;
  }
  span.set_kv(kmv_.size(), kv_.nominal_bytes());
  return global_count(kmv_.size());
}

std::uint64_t MapReduce::collate() {
  aggregate();
  return convert();
}

std::uint64_t MapReduce::reduce(const ReduceFn& fn) {
  MRBIO_REQUIRE(have_kmv_, "reduce() requires a prior convert()/collate()");
  PhaseSpan span(phase_recorder(), comm_, "reduce");
  KeyValue out = make_kv();
  for (std::size_t i = 0; i < kmv_.size(); ++i) {
    const KmvGroup g = kmv_.group(i);
    fn(g, out);
  }
  kv_ = std::move(out);
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill(/*fresh_store=*/true);
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

std::uint64_t MapReduce::compress(const ReduceFn& fn) {
  PhaseSpan span(phase_recorder(), comm_, "compress");
  const KeyMultiValue groups = KeyMultiValue::from_keyvalue(kv_);
  KeyValue out = make_kv();
  for (std::size_t i = 0; i < groups.size(); ++i) {
    fn(groups.group(i), out);
  }
  kv_ = std::move(out);
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill(/*fresh_store=*/true);
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

std::uint64_t MapReduce::map_kv(const MapKvFn& fn) {
  PhaseSpan span(phase_recorder(), comm_, "map_kv");
  KeyValue out = make_kv();
  kv_.for_each([&](const KvPair& pair) { fn(pair, out); });
  kv_ = std::move(out);
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill(/*fresh_store=*/true);
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

std::uint64_t MapReduce::gather() {
  PhaseSpan span(phase_recorder(), comm_, "gather");
  ByteWriter w;
  kv_.for_each([&](const KvPair& pair) {
    w.put<std::uint64_t>(pair.key.size());
    w.append(pair.key.data(), pair.key.size());
    w.put<std::uint64_t>(pair.value.size());
    w.append(pair.value.data(), pair.value.size());
    w.put<std::uint64_t>(pair.nominal_bytes);
  });
  auto all = comm_.gather_bytes(w.take(), 0);
  if (comm_.rank() == 0) {
    KeyValue merged = make_kv();
    for (const auto& buf : all) {
      ByteReader r(buf);
      while (!r.done()) {
        const auto klen = r.get<std::uint64_t>();
        const auto kbytes = r.raw(klen);
        const auto vlen = r.get<std::uint64_t>();
        const auto vbytes = r.raw(vlen);
        const auto nom = r.get<std::uint64_t>();
        merged.add(kbytes, vbytes, nom);
      }
    }
    kv_ = std::move(merged);
  } else {
    kv_.clear();
  }
  have_kmv_ = false;
  charge_spill(/*fresh_store=*/true);
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

void MapReduce::sort_keys() {
  kv_.sort_by_key();
  have_kmv_ = false;
}

void MapReduce::charge_spill(bool fresh_store, double credit_seconds,
                             const char* span_name) {
  // A store-replacing op (aggregate, reduce, compress, map_kv, gather, a
  // non-append map) discards the old pages and writes new ones, so the old
  // high-water mark must not mask the new store's spill I/O. Without this
  // reset a collate() whose output shrank below a previous peak was never
  // charged for respilling — the grow-then-shrink undercharge.
  if (fresh_store) charged_spill_ = 0;
  const std::uint64_t nominal = kv_.nominal_bytes();
  if (nominal > config_.memsize_bytes) {
    const std::uint64_t spilled = nominal - config_.memsize_bytes;
    if (spilled > charged_spill_) {
      const std::uint64_t fresh = spilled - charged_spill_;
      const double t0 = comm_.now();
      double seconds = static_cast<double>(fresh) * config_.spill_byte_seconds;
      if (credit_seconds > 0.0) {
        // Spill writes overlapped with the exchange: only the tail that
        // outlives the communication costs wall-clock time.
        const double saved = std::min(seconds, credit_seconds);
        stats_.shuffle_overlap_saved_seconds += saved;
        seconds -= saved;
      }
      comm_.compute(seconds);
      if (obs::Registry* reg = metrics(); reg != nullptr) {
        reg->counter("mrmpi.spill_bytes").inc(fresh);
      }
      if (trace::Recorder* rec = phase_recorder(); rec != nullptr) {
        rec->add(comm_.rank(), trace::Category::Io, span_name, t0, comm_.now(), 0, fresh);
      }
      stats_.spilled_bytes += fresh;
      charged_spill_ = spilled;
    }
  } else {
    charged_spill_ = 0;
  }
}

std::uint64_t MapReduce::global_count(std::uint64_t local) {
  return comm_.allreduce_scalar(local, mpi::ReduceOp::Sum);
}

}  // namespace mrbio::mrmpi
