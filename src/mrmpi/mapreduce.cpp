#include "mrmpi/mapreduce.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>

#include "common/serialize.hpp"

namespace mrbio::mrmpi {

namespace {
// Tags inside the user range, reserved by convention for this library.
constexpr int kTagTask = 990001;   ///< master -> worker: task id or -1 stop
constexpr int kTagDone = 990002;   ///< worker -> master: ready for work
}  // namespace

MapReduce::MapReduce(mpi::Comm& comm, MapReduceConfig config)
    : comm_(comm), config_(config) {
  MRBIO_REQUIRE(config_.memsize_bytes > 0, "memsize must be positive");
  kv_ = make_kv();
}

KeyValue MapReduce::make_kv() const {
  if (!config_.page_to_disk) return KeyValue{};
  SpillPolicy policy;
  policy.page_bytes = config_.page_bytes;
  policy.max_resident_pages = std::max<std::size_t>(
      2, static_cast<std::size_t>(config_.memsize_bytes / config_.page_bytes));
  policy.dir = config_.spill_dir;
  return KeyValue{policy};
}

std::uint64_t MapReduce::map(std::uint64_t ntasks, const MapFn& fn) {
  return run_map(ntasks, fn, /*append=*/false);
}

std::uint64_t MapReduce::map_append(std::uint64_t ntasks, const MapFn& fn) {
  return run_map(ntasks, fn, /*append=*/true);
}

std::uint64_t MapReduce::run_map(std::uint64_t ntasks, const MapFn& fn, bool append) {
  KeyValue out = make_kv();
  const int rank = comm_.rank();
  const int p = comm_.size();

  switch (config_.map_style) {
    case MapStyle::Chunk: {
      const std::uint64_t lo = ntasks * static_cast<std::uint64_t>(rank) /
                               static_cast<std::uint64_t>(p);
      const std::uint64_t hi = ntasks * (static_cast<std::uint64_t>(rank) + 1) /
                               static_cast<std::uint64_t>(p);
      for (std::uint64_t t = lo; t < hi; ++t) {
        fn(t, out);
        ++stats_.map_tasks_run;
      }
      break;
    }
    case MapStyle::Stride: {
      for (std::uint64_t t = static_cast<std::uint64_t>(rank); t < ntasks;
           t += static_cast<std::uint64_t>(p)) {
        fn(t, out);
        ++stats_.map_tasks_run;
      }
      break;
    }
    case MapStyle::MasterWorker: {
      if (p == 1) {
        for (std::uint64_t t = 0; t < ntasks; ++t) {
          fn(t, out);
          ++stats_.map_tasks_run;
        }
      } else if (rank == 0) {
        run_master(ntasks);
      } else {
        run_worker(fn, out);
      }
      break;
    }
  }

  if (append) {
    kv_.absorb(std::move(out));
  } else {
    kv_ = std::move(out);
  }
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill();
  return global_count(kv_.size());
}

void MapReduce::run_master(std::uint64_t ntasks) {
  const int workers = comm_.size() - 1;
  std::uint64_t next = 0;
  int stopped = 0;
  // Each worker announces readiness (initially and after each task); the
  // master answers with the next task id, or -1 when exhausted.
  while (stopped < workers) {
    int src = -1;
    comm_.recv_value<std::uint8_t>(mpi::kAnySource, kTagDone, &src);
    if (next < ntasks) {
      comm_.send_value<std::int64_t>(src, kTagTask, static_cast<std::int64_t>(next));
      ++next;
    } else {
      comm_.send_value<std::int64_t>(src, kTagTask, -1);
      ++stopped;
    }
  }
}

void MapReduce::run_worker(const MapFn& fn, KeyValue& out) {
  for (;;) {
    comm_.send_value<std::uint8_t>(0, kTagDone, 1);
    const auto task = comm_.recv_value<std::int64_t>(0, kTagTask);
    if (task < 0) break;
    fn(static_cast<std::uint64_t>(task), out);
    ++stats_.map_tasks_run;
  }
}

std::uint64_t MapReduce::map_locality(std::uint64_t ntasks, const AffinityFn& affinity,
                                      const MapFn& fn) {
  MRBIO_REQUIRE(affinity != nullptr, "map_locality needs an affinity function");
  KeyValue out = make_kv();
  if (comm_.size() == 1) {
    for (std::uint64_t t = 0; t < ntasks; ++t) {
      fn(t, out);
      ++stats_.map_tasks_run;
    }
  } else if (comm_.rank() == 0) {
    run_master_locality(ntasks, affinity);
  } else {
    run_worker(fn, out);
  }
  kv_ = std::move(out);
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill();
  return global_count(kv_.size());
}

void MapReduce::run_master_locality(std::uint64_t ntasks, const AffinityFn& affinity) {
  // Pending tasks grouped by locality key; within a key, FIFO by task id.
  std::map<std::uint64_t, std::deque<std::uint64_t>> pending;
  for (std::uint64_t t = 0; t < ntasks; ++t) pending[affinity(t)].push_back(t);

  std::map<int, std::uint64_t> worker_key;  ///< last key each worker ran
  const int workers = comm_.size() - 1;
  std::uint64_t remaining = ntasks;
  int stopped = 0;
  while (stopped < workers) {
    int src = -1;
    comm_.recv_value<std::uint8_t>(mpi::kAnySource, kTagDone, &src);
    if (remaining == 0) {
      comm_.send_value<std::int64_t>(src, kTagTask, -1);
      ++stopped;
      continue;
    }
    // Prefer the worker's current key; otherwise hand it the key with the
    // most remaining tasks so future requests can stay local to it.
    auto it = pending.end();
    const auto known = worker_key.find(src);
    if (known != worker_key.end()) {
      it = pending.find(known->second);
      if (it != pending.end() && it->second.empty()) it = pending.end();
    }
    if (it == pending.end()) {
      std::size_t best = 0;
      for (auto cand = pending.begin(); cand != pending.end(); ++cand) {
        if (cand->second.size() > best) {
          best = cand->second.size();
          it = cand;
        }
      }
    }
    MRBIO_CHECK(it != pending.end() && !it->second.empty(), "scheduler lost tasks");
    const std::uint64_t task = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) pending.erase(it);
    worker_key[src] = affinity(task);
    comm_.send_value<std::int64_t>(src, kTagTask, static_cast<std::int64_t>(task));
    --remaining;
  }
}

std::uint64_t MapReduce::aggregate() {
  const int p = comm_.size();
  const int rank = comm_.rank();

  // Serialize each pair toward its destination rank; track nominal bytes so
  // the network charge reflects paper-scale payloads.
  std::vector<ByteWriter> writers(static_cast<std::size_t>(p));
  std::vector<std::uint64_t> nominal(static_cast<std::size_t>(p), 0);
  kv_.for_each([&](const KvPair& pair) {
    const auto dst = static_cast<std::size_t>(key_hash(pair.key) %
                                              static_cast<std::uint64_t>(p));
    ByteWriter& w = writers[dst];
    w.put<std::uint64_t>(pair.key.size());
    w.append(pair.key.data(), pair.key.size());
    w.put<std::uint64_t>(pair.value.size());
    w.append(pair.value.data(), pair.value.size());
    w.put<std::uint64_t>(pair.nominal_bytes);
    nominal[dst] += pair.nominal_bytes;
  });

  std::vector<std::vector<std::byte>> sendbufs(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    sendbufs[static_cast<std::size_t>(d)] = writers[static_cast<std::size_t>(d)].take();
    if (d != rank) stats_.aggregate_bytes_sent += nominal[static_cast<std::size_t>(d)];
  }
  auto recvbufs = comm_.alltoallv_nominal(std::move(sendbufs), nominal);

  KeyValue merged = make_kv();
  for (const auto& buf : recvbufs) {
    ByteReader r(buf);
    while (!r.done()) {
      const auto klen = r.get<std::uint64_t>();
      const auto kbytes = r.raw(klen);
      const auto vlen = r.get<std::uint64_t>();
      const auto vbytes = r.raw(vlen);
      const auto nom = r.get<std::uint64_t>();
      merged.add(kbytes, vbytes, nom);
    }
  }
  kv_ = std::move(merged);
  have_kmv_ = false;
  charge_spill();
  return global_count(kv_.size());
}

std::uint64_t MapReduce::convert() {
  // Charge the local group-by: one hash+compare pass over the data.
  kmv_ = KeyMultiValue::from_keyvalue(kv_);
  have_kmv_ = true;
  return global_count(kmv_.size());
}

std::uint64_t MapReduce::collate() {
  aggregate();
  return convert();
}

std::uint64_t MapReduce::reduce(const ReduceFn& fn) {
  MRBIO_REQUIRE(have_kmv_, "reduce() requires a prior convert()/collate()");
  KeyValue out = make_kv();
  for (std::size_t i = 0; i < kmv_.size(); ++i) {
    const KmvGroup g = kmv_.group(i);
    fn(g, out);
  }
  kv_ = std::move(out);
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill();
  return global_count(kv_.size());
}

std::uint64_t MapReduce::compress(const ReduceFn& fn) {
  const KeyMultiValue groups = KeyMultiValue::from_keyvalue(kv_);
  KeyValue out = make_kv();
  for (std::size_t i = 0; i < groups.size(); ++i) {
    fn(groups.group(i), out);
  }
  kv_ = std::move(out);
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill();
  return global_count(kv_.size());
}

std::uint64_t MapReduce::map_kv(const MapKvFn& fn) {
  KeyValue out = make_kv();
  kv_.for_each([&](const KvPair& pair) { fn(pair, out); });
  kv_ = std::move(out);
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill();
  return global_count(kv_.size());
}

std::uint64_t MapReduce::gather() {
  ByteWriter w;
  kv_.for_each([&](const KvPair& pair) {
    w.put<std::uint64_t>(pair.key.size());
    w.append(pair.key.data(), pair.key.size());
    w.put<std::uint64_t>(pair.value.size());
    w.append(pair.value.data(), pair.value.size());
    w.put<std::uint64_t>(pair.nominal_bytes);
  });
  auto all = comm_.gather_bytes(w.take(), 0);
  if (comm_.rank() == 0) {
    KeyValue merged = make_kv();
    for (const auto& buf : all) {
      ByteReader r(buf);
      while (!r.done()) {
        const auto klen = r.get<std::uint64_t>();
        const auto kbytes = r.raw(klen);
        const auto vlen = r.get<std::uint64_t>();
        const auto vbytes = r.raw(vlen);
        const auto nom = r.get<std::uint64_t>();
        merged.add(kbytes, vbytes, nom);
      }
    }
    kv_ = std::move(merged);
  } else {
    kv_.clear();
  }
  have_kmv_ = false;
  charge_spill();
  return global_count(kv_.size());
}

void MapReduce::sort_keys() {
  kv_.sort_by_key();
  have_kmv_ = false;
}

void MapReduce::charge_spill() {
  const std::uint64_t nominal = kv_.nominal_bytes();
  if (nominal > config_.memsize_bytes) {
    const std::uint64_t spilled = nominal - config_.memsize_bytes;
    if (spilled > charged_spill_) {
      const std::uint64_t fresh = spilled - charged_spill_;
      comm_.compute(static_cast<double>(fresh) * config_.spill_byte_seconds);
      stats_.spilled_bytes += fresh;
      charged_spill_ = spilled;
    }
  } else {
    charged_spill_ = 0;
  }
}

std::uint64_t MapReduce::global_count(std::uint64_t local) {
  return comm_.allreduce_scalar(local, mpi::ReduceOp::Sum);
}

}  // namespace mrbio::mrmpi
