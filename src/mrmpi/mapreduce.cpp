#include "mrmpi/mapreduce.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>

#include "common/serialize.hpp"

namespace mrbio::mrmpi {

namespace {
// Tags inside the user range, reserved by convention for this library.
constexpr int kTagTask = 990001;   ///< master -> worker: task id or -1 stop
constexpr int kTagDone = 990002;   ///< worker -> master: ready for work

/// RAII Phase span on this rank's lane; a null recorder makes it a no-op.
/// KV attributes are attached at scope exit via set_kv().
class PhaseSpan {
 public:
  PhaseSpan(trace::Recorder* rec, mpi::Comm& comm, const char* name)
      : rec_(rec), comm_(comm), name_(name), t0_(rec != nullptr ? comm.now() : 0.0) {}
  ~PhaseSpan() {
    if (rec_ != nullptr) {
      rec_->add(comm_.rank(), trace::Category::Phase, name_, t0_, comm_.now(), pairs_,
                bytes_);
    }
  }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  void set_kv(std::uint64_t pairs, std::uint64_t bytes) {
    pairs_ = pairs;
    bytes_ = bytes;
  }

 private:
  trace::Recorder* rec_;
  mpi::Comm& comm_;
  const char* name_;
  double t0_;
  std::uint64_t pairs_ = 0;
  std::uint64_t bytes_ = 0;
};
}  // namespace

MapReduce::MapReduce(mpi::Comm& comm, MapReduceConfig config)
    : comm_(comm), config_(config) {
  MRBIO_REQUIRE(config_.memsize_bytes > 0, "memsize must be positive");
  kv_ = make_kv();
}

KeyValue MapReduce::make_kv() const {
  if (!config_.page_to_disk) return KeyValue{};
  SpillPolicy policy;
  policy.page_bytes = config_.page_bytes;
  policy.max_resident_pages = std::max<std::size_t>(
      2, static_cast<std::size_t>(config_.memsize_bytes / config_.page_bytes));
  policy.dir = config_.spill_dir;
  return KeyValue{policy};
}

std::uint64_t MapReduce::map(std::uint64_t ntasks, const MapFn& fn) {
  return run_map(ntasks, fn, /*append=*/false);
}

std::uint64_t MapReduce::map_append(std::uint64_t ntasks, const MapFn& fn) {
  return run_map(ntasks, fn, /*append=*/true);
}

std::uint64_t MapReduce::run_map(std::uint64_t ntasks, const MapFn& fn, bool append) {
  trace::Recorder* rec = phase_recorder();
  PhaseSpan span(rec, comm_, "map");
  KeyValue out = make_kv();
  const int rank = comm_.rank();
  const int p = comm_.size();

  switch (config_.map_style) {
    case MapStyle::Chunk: {
      const std::uint64_t lo = ntasks * static_cast<std::uint64_t>(rank) /
                               static_cast<std::uint64_t>(p);
      const std::uint64_t hi = ntasks * (static_cast<std::uint64_t>(rank) + 1) /
                               static_cast<std::uint64_t>(p);
      for (std::uint64_t t = lo; t < hi; ++t) {
        run_task(fn, t, out, rec);
      }
      break;
    }
    case MapStyle::Stride: {
      for (std::uint64_t t = static_cast<std::uint64_t>(rank); t < ntasks;
           t += static_cast<std::uint64_t>(p)) {
        run_task(fn, t, out, rec);
      }
      break;
    }
    case MapStyle::MasterWorker: {
      if (p == 1) {
        for (std::uint64_t t = 0; t < ntasks; ++t) {
          run_task(fn, t, out, rec);
        }
      } else if (rank == 0) {
        run_master(ntasks);
      } else {
        run_worker(fn, out);
      }
      break;
    }
  }

  if (append) {
    kv_.absorb(std::move(out));
  } else {
    kv_ = std::move(out);
  }
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill();
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

trace::Recorder* MapReduce::phase_recorder() {
  trace::Recorder* rec = comm_.tracer();
  return (rec != nullptr && config_.trace_phases) ? rec : nullptr;
}

void MapReduce::run_task(const MapFn& fn, std::uint64_t task, KeyValue& out,
                         trace::Recorder* rec) {
  const double t0 = comm_.now();
  fn(task, out);
  ++stats_.map_tasks_run;
  if (rec != nullptr) {
    rec->add(comm_.rank(), trace::Category::Task, "map_task", t0, comm_.now());
  }
  if (obs::Registry* reg = metrics(); reg != nullptr) {
    reg->counter("mrmpi.map_tasks").inc();
    reg->histogram("mrmpi.task_seconds").observe(comm_.now() - t0);
  }
}

void MapReduce::run_master(std::uint64_t ntasks) {
  trace::Recorder* rec = phase_recorder();
  const int workers = comm_.size() - 1;
  std::uint64_t next = 0;
  int stopped = 0;
  // Each worker announces readiness (initially and after each task); the
  // master answers with the next task id, or -1 when exhausted.
  while (stopped < workers) {
    int src = -1;
    comm_.recv_value<std::uint8_t>(mpi::kAnySource, kTagDone, &src);
    const double t0 = comm_.now();
    if (next < ntasks) {
      comm_.send_value<std::int64_t>(src, kTagTask, static_cast<std::int64_t>(next));
      ++next;
    } else {
      comm_.send_value<std::int64_t>(src, kTagTask, -1);
      ++stopped;
    }
    if (rec != nullptr) {
      // Master service latency: request handled -> reply sent.
      rec->add(comm_.rank(), trace::Category::Phase, "mw_service", t0, comm_.now());
    }
    if (obs::Registry* reg = metrics(); reg != nullptr) {
      reg->histogram("mrmpi.master_service_seconds").observe(comm_.now() - t0);
    }
  }
}

void MapReduce::run_worker(const MapFn& fn, KeyValue& out) {
  trace::Recorder* rec = phase_recorder();
  for (;;) {
    comm_.send_value<std::uint8_t>(0, kTagDone, 1);
    const auto task = comm_.recv_value<std::int64_t>(0, kTagTask);
    if (task < 0) break;
    run_task(fn, static_cast<std::uint64_t>(task), out, rec);
  }
}

std::uint64_t MapReduce::map_locality(std::uint64_t ntasks, const AffinityFn& affinity,
                                      const MapFn& fn) {
  MRBIO_REQUIRE(affinity != nullptr, "map_locality needs an affinity function");
  trace::Recorder* rec = phase_recorder();
  PhaseSpan span(rec, comm_, "map");
  KeyValue out = make_kv();
  if (comm_.size() == 1) {
    for (std::uint64_t t = 0; t < ntasks; ++t) {
      run_task(fn, t, out, rec);
    }
  } else if (comm_.rank() == 0) {
    run_master_locality(ntasks, affinity);
  } else {
    run_worker(fn, out);
  }
  kv_ = std::move(out);
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill();
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

void MapReduce::run_master_locality(std::uint64_t ntasks, const AffinityFn& affinity) {
  trace::Recorder* rec = phase_recorder();
  // Pending tasks grouped by locality key; within a key, FIFO by task id.
  std::map<std::uint64_t, std::deque<std::uint64_t>> pending;
  for (std::uint64_t t = 0; t < ntasks; ++t) pending[affinity(t)].push_back(t);

  std::map<int, std::uint64_t> worker_key;  ///< last key each worker ran
  const int workers = comm_.size() - 1;
  std::uint64_t remaining = ntasks;
  int stopped = 0;
  while (stopped < workers) {
    int src = -1;
    comm_.recv_value<std::uint8_t>(mpi::kAnySource, kTagDone, &src);
    const double t0 = comm_.now();
    if (remaining == 0) {
      comm_.send_value<std::int64_t>(src, kTagTask, -1);
      ++stopped;
      if (rec != nullptr) {
        rec->add(comm_.rank(), trace::Category::Phase, "mw_service", t0, comm_.now());
      }
      continue;
    }
    // Prefer the worker's current key; otherwise hand it the key with the
    // most remaining tasks so future requests can stay local to it.
    auto it = pending.end();
    const auto known = worker_key.find(src);
    if (known != worker_key.end()) {
      it = pending.find(known->second);
      if (it != pending.end() && it->second.empty()) it = pending.end();
    }
    if (it == pending.end()) {
      std::size_t best = 0;
      for (auto cand = pending.begin(); cand != pending.end(); ++cand) {
        if (cand->second.size() > best) {
          best = cand->second.size();
          it = cand;
        }
      }
    }
    MRBIO_CHECK(it != pending.end() && !it->second.empty(), "scheduler lost tasks");
    const std::uint64_t task = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) pending.erase(it);
    worker_key[src] = affinity(task);
    comm_.send_value<std::int64_t>(src, kTagTask, static_cast<std::int64_t>(task));
    --remaining;
    if (rec != nullptr) {
      rec->add(comm_.rank(), trace::Category::Phase, "mw_service", t0, comm_.now());
    }
    if (obs::Registry* reg = metrics(); reg != nullptr) {
      reg->histogram("mrmpi.master_service_seconds").observe(comm_.now() - t0);
    }
  }
}

std::uint64_t MapReduce::aggregate() {
  PhaseSpan span(phase_recorder(), comm_, "aggregate");
  const int p = comm_.size();
  const int rank = comm_.rank();

  // Serialize each pair toward its destination rank; track nominal bytes so
  // the network charge reflects paper-scale payloads.
  std::vector<ByteWriter> writers(static_cast<std::size_t>(p));
  std::vector<std::uint64_t> nominal(static_cast<std::size_t>(p), 0);
  kv_.for_each([&](const KvPair& pair) {
    const auto dst = static_cast<std::size_t>(key_hash(pair.key) %
                                              static_cast<std::uint64_t>(p));
    ByteWriter& w = writers[dst];
    w.put<std::uint64_t>(pair.key.size());
    w.append(pair.key.data(), pair.key.size());
    w.put<std::uint64_t>(pair.value.size());
    w.append(pair.value.data(), pair.value.size());
    w.put<std::uint64_t>(pair.nominal_bytes);
    nominal[dst] += pair.nominal_bytes;
  });

  std::vector<std::vector<std::byte>> sendbufs(static_cast<std::size_t>(p));
  std::uint64_t sent = 0;
  for (int d = 0; d < p; ++d) {
    sendbufs[static_cast<std::size_t>(d)] = writers[static_cast<std::size_t>(d)].take();
    if (d != rank) sent += nominal[static_cast<std::size_t>(d)];
  }
  stats_.aggregate_bytes_sent += sent;
  if (obs::Registry* reg = metrics(); reg != nullptr) {
    reg->counter("mrmpi.aggregate_bytes").inc(sent);
  }
  auto recvbufs = comm_.alltoallv_nominal(std::move(sendbufs), nominal);

  KeyValue merged = make_kv();
  for (const auto& buf : recvbufs) {
    ByteReader r(buf);
    while (!r.done()) {
      const auto klen = r.get<std::uint64_t>();
      const auto kbytes = r.raw(klen);
      const auto vlen = r.get<std::uint64_t>();
      const auto vbytes = r.raw(vlen);
      const auto nom = r.get<std::uint64_t>();
      merged.add(kbytes, vbytes, nom);
    }
  }
  kv_ = std::move(merged);
  have_kmv_ = false;
  charge_spill();
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

std::uint64_t MapReduce::convert() {
  PhaseSpan span(phase_recorder(), comm_, "convert");
  // Charge the local group-by: one hash+compare pass over the data.
  kmv_ = KeyMultiValue::from_keyvalue(kv_);
  have_kmv_ = true;
  span.set_kv(kmv_.size(), kv_.nominal_bytes());
  return global_count(kmv_.size());
}

std::uint64_t MapReduce::collate() {
  aggregate();
  return convert();
}

std::uint64_t MapReduce::reduce(const ReduceFn& fn) {
  MRBIO_REQUIRE(have_kmv_, "reduce() requires a prior convert()/collate()");
  PhaseSpan span(phase_recorder(), comm_, "reduce");
  KeyValue out = make_kv();
  for (std::size_t i = 0; i < kmv_.size(); ++i) {
    const KmvGroup g = kmv_.group(i);
    fn(g, out);
  }
  kv_ = std::move(out);
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill();
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

std::uint64_t MapReduce::compress(const ReduceFn& fn) {
  PhaseSpan span(phase_recorder(), comm_, "compress");
  const KeyMultiValue groups = KeyMultiValue::from_keyvalue(kv_);
  KeyValue out = make_kv();
  for (std::size_t i = 0; i < groups.size(); ++i) {
    fn(groups.group(i), out);
  }
  kv_ = std::move(out);
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill();
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

std::uint64_t MapReduce::map_kv(const MapKvFn& fn) {
  PhaseSpan span(phase_recorder(), comm_, "map_kv");
  KeyValue out = make_kv();
  kv_.for_each([&](const KvPair& pair) { fn(pair, out); });
  kv_ = std::move(out);
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill();
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

std::uint64_t MapReduce::gather() {
  PhaseSpan span(phase_recorder(), comm_, "gather");
  ByteWriter w;
  kv_.for_each([&](const KvPair& pair) {
    w.put<std::uint64_t>(pair.key.size());
    w.append(pair.key.data(), pair.key.size());
    w.put<std::uint64_t>(pair.value.size());
    w.append(pair.value.data(), pair.value.size());
    w.put<std::uint64_t>(pair.nominal_bytes);
  });
  auto all = comm_.gather_bytes(w.take(), 0);
  if (comm_.rank() == 0) {
    KeyValue merged = make_kv();
    for (const auto& buf : all) {
      ByteReader r(buf);
      while (!r.done()) {
        const auto klen = r.get<std::uint64_t>();
        const auto kbytes = r.raw(klen);
        const auto vlen = r.get<std::uint64_t>();
        const auto vbytes = r.raw(vlen);
        const auto nom = r.get<std::uint64_t>();
        merged.add(kbytes, vbytes, nom);
      }
    }
    kv_ = std::move(merged);
  } else {
    kv_.clear();
  }
  have_kmv_ = false;
  charge_spill();
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

void MapReduce::sort_keys() {
  kv_.sort_by_key();
  have_kmv_ = false;
}

void MapReduce::charge_spill() {
  const std::uint64_t nominal = kv_.nominal_bytes();
  if (nominal > config_.memsize_bytes) {
    const std::uint64_t spilled = nominal - config_.memsize_bytes;
    if (spilled > charged_spill_) {
      const std::uint64_t fresh = spilled - charged_spill_;
      const double t0 = comm_.now();
      comm_.compute(static_cast<double>(fresh) * config_.spill_byte_seconds);
      if (obs::Registry* reg = metrics(); reg != nullptr) {
        reg->counter("mrmpi.spill_bytes").inc(fresh);
      }
      if (trace::Recorder* rec = phase_recorder(); rec != nullptr) {
        rec->add(comm_.rank(), trace::Category::Io, "spill", t0, comm_.now(), 0, fresh);
      }
      stats_.spilled_bytes += fresh;
      charged_spill_ = spilled;
    }
  } else {
    charged_spill_ = 0;
  }
}

std::uint64_t MapReduce::global_count(std::uint64_t local) {
  return comm_.allreduce_scalar(local, mpi::ReduceOp::Sum);
}

}  // namespace mrbio::mrmpi
