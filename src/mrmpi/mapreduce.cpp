#include "mrmpi/mapreduce.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <numeric>
#include <string>
#include <unordered_map>

#include "ckpt/ckpt.hpp"
#include "common/log.hpp"
#include "common/serialize.hpp"
#include "mrmpi/shuffle_codec.hpp"
#include "obs/timeseries.hpp"

namespace mrbio::mrmpi {

namespace {
// Tags inside the user range, reserved by convention for this library.
// Being user tags, they are subject to injected message faults, which is
// what the fault-tolerant protocol's sequence numbers and resends absorb.
constexpr int kTagTask = 990001;   ///< master -> worker: task id or -1 stop
constexpr int kTagDone = 990002;   ///< worker -> master: ready for work

// ---------------------------------------------------------------------------
// Fault-tolerant master-worker wire protocol.
//
// Each worker request carries a monotonically increasing sequence number
// and the worker's incarnation (respawn count); each grant echoes the
// sequence it answers. Lost messages are handled by resending the request
// and replaying the cached grant; duplicated or stale messages are
// discarded by sequence comparison. A grant both commits (or discards)
// the task the worker just finished and assigns the next one, so the
// exactly-once decision and the scheduling decision travel in one
// message.

/// Grant `assign` sentinels (non-negative values are task ids).
constexpr std::int64_t kAssignStop = -1;        ///< leave the protocol
constexpr std::int64_t kAssignRetryLater = -2;  ///< nothing now; poll again

struct WireReq {
  std::uint32_t incarnation = 0;  ///< respawn count of this worker
  std::uint32_t seq = 0;          ///< request sequence, never reused
  std::uint8_t dead = 0;          ///< 1 = permanent death notification
  std::int64_t completed_task = -1;  ///< task finished since last grant
  std::uint32_t attempt = 0;         ///< attempt number of completed_task
};

struct WireGrant {
  std::uint32_t seq = 0;     ///< echo of the request this answers
  std::uint8_t commit = 0;   ///< absorb (1) or discard (0) the staged task
  std::int64_t assign = kAssignStop;
  std::uint32_t attempt = 0;  ///< attempt number of the assigned task
};

std::vector<std::byte> pack_req(const WireReq& r) {
  ByteWriter w;
  w.put(r.incarnation);
  w.put(r.seq);
  w.put(r.dead);
  w.put(r.completed_task);
  w.put(r.attempt);
  return w.take();
}

WireReq unpack_req(const rt::Message& m) {
  ByteReader r(m.payload);
  WireReq req;
  req.incarnation = r.get<std::uint32_t>();
  req.seq = r.get<std::uint32_t>();
  req.dead = r.get<std::uint8_t>();
  req.completed_task = r.get<std::int64_t>();
  req.attempt = r.get<std::uint32_t>();
  return req;
}

std::vector<std::byte> pack_grant(const WireGrant& g) {
  ByteWriter w;
  w.put(g.seq);
  w.put(g.commit);
  w.put(g.assign);
  w.put(g.attempt);
  return w.take();
}

WireGrant unpack_grant(const rt::Message& m) {
  ByteReader r(m.payload);
  WireGrant g;
  g.seq = r.get<std::uint32_t>();
  g.commit = r.get<std::uint8_t>();
  g.assign = r.get<std::int64_t>();
  g.attempt = r.get<std::uint32_t>();
  return g;
}

/// Master-side lifecycle of one task in the exactly-once work ledger.
enum class TaskState : std::uint8_t { Pending, Outstanding, Done, Failed };

struct TaskEntry {
  TaskState state = TaskState::Pending;
  int owner = -1;               ///< worker the newest attempt was granted to
  std::uint32_t owner_inc = 0;  ///< that worker's incarnation at grant time
  std::uint32_t attempt = 0;    ///< attempts granted so far
  double granted = 0.0;         ///< grant time of the newest attempt
  double deadline = 0.0;        ///< service deadline of the newest attempt
};

/// RAII Phase span on this rank's lane; a null recorder makes it a no-op.
/// KV attributes are attached at scope exit via set_kv().
// ---------------------------------------------------------------------------
// Map-log record payload (one per committed task):
//
//   [u64 task][u64 npairs]([u64 klen][key][u64 vlen][value][u64 nominal])*
//
// The framing CRC already guards against bit rot; this validator guards
// against structural damage that slips past it (a writer bug, a record
// from a foreign file). A record that fails demotes to "re-run that
// task", never a crash.
bool decode_task_id(std::span<const std::byte> payload, std::uint64_t ntasks,
                    std::uint64_t* task_out) {
  try {
    ByteReader r(payload);
    const auto task = r.get<std::uint64_t>();
    const auto npairs = r.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < npairs; ++i) {
      r.raw(r.get<std::uint64_t>());  // key
      r.raw(r.get<std::uint64_t>());  // value
      r.get<std::uint64_t>();         // nominal
    }
    if (!r.done() || task >= ntasks) return false;
    *task_out = task;
    return true;
  } catch (const Error&) {
    return false;
  }
}

class PhaseSpan {
 public:
  PhaseSpan(trace::Recorder* rec, mpi::Comm& comm, const char* name)
      : rec_(rec), comm_(comm), name_(name), t0_(rec != nullptr ? comm.now() : 0.0) {}
  ~PhaseSpan() {
    if (rec_ != nullptr) {
      rec_->add(comm_.rank(), trace::Category::Phase, name_, t0_, comm_.now(), pairs_,
                bytes_);
    }
  }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  void set_kv(std::uint64_t pairs, std::uint64_t bytes) {
    pairs_ = pairs;
    bytes_ = bytes;
  }

 private:
  trace::Recorder* rec_;
  mpi::Comm& comm_;
  const char* name_;
  double t0_;
  std::uint64_t pairs_ = 0;
  std::uint64_t bytes_ = 0;
};
}  // namespace

MapReduce::MapReduce(mpi::Comm& comm, MapReduceConfig config)
    : comm_(comm), config_(config) {
  MRBIO_REQUIRE(config_.memsize_bytes > 0, "memsize must be positive");
  kv_ = make_kv();
}

MapReduce::~MapReduce() = default;

KeyValue MapReduce::make_kv() const {
  if (!config_.page_to_disk) return KeyValue{};
  SpillPolicy policy;
  policy.page_bytes = config_.page_bytes;
  policy.compress = config_.shuffle.compress;
  policy.max_resident_pages = std::max<std::size_t>(
      2, static_cast<std::size_t>(config_.memsize_bytes / config_.page_bytes));
  policy.dir = config_.spill_dir;
  if (config_.checkpointer != nullptr && config_.checkpointer->enabled()) {
    // Durable spill files live next to the checkpoint data under stable
    // names; stale files from a killed run are truncated on reuse and the
    // checkpoint layer removes the directory on successful completion.
    policy.dir = config_.checkpointer->spill_dir();
    policy.durable = true;
    policy.file_stem =
        "kv_r" + std::to_string(comm_.rank()) + "_s" + std::to_string(ckpt_kv_serial_++);
  }
  return KeyValue{policy};
}

std::uint64_t MapReduce::map(std::uint64_t ntasks, const MapFn& fn) {
  return run_map(ntasks, fn, /*append=*/false);
}

std::uint64_t MapReduce::map_append(std::uint64_t ntasks, const MapFn& fn) {
  return run_map(ntasks, fn, /*append=*/true);
}

std::uint64_t MapReduce::run_map(std::uint64_t ntasks, const MapFn& fn, bool append) {
  trace::Recorder* rec = phase_recorder();
  PhaseSpan span(rec, comm_, "map");
  failed_tasks_.clear();
  KeyValue out = make_kv();
  const int rank = comm_.rank();
  const int p = comm_.size();

  // Replay any checkpointed task outputs for this cycle into `out` before
  // scheduling; remote master-worker runs share the claims so the master
  // can pre-mark restored tasks as committed.
  const bool shared = config_.map_style == MapStyle::MasterWorker && p > 1;
  const std::vector<CkptDoneTask> ckpt_done = ckpt_begin_map(ntasks, out, shared);

  switch (config_.map_style) {
    case MapStyle::Chunk: {
      const std::uint64_t lo = ntasks * static_cast<std::uint64_t>(rank) /
                               static_cast<std::uint64_t>(p);
      const std::uint64_t hi = ntasks * (static_cast<std::uint64_t>(rank) + 1) /
                               static_cast<std::uint64_t>(p);
      for (std::uint64_t t = lo; t < hi; ++t) {
        run_task_ckpt(fn, t, out, rec);
      }
      break;
    }
    case MapStyle::Stride: {
      for (std::uint64_t t = static_cast<std::uint64_t>(rank); t < ntasks;
           t += static_cast<std::uint64_t>(p)) {
        run_task_ckpt(fn, t, out, rec);
      }
      break;
    }
    case MapStyle::MasterWorker: {
      if (p == 1) {
        for (std::uint64_t t = 0; t < ntasks; ++t) {
          run_task_ckpt(fn, t, out, rec);
        }
      } else if (rank == 0) {
        if (config_.ft.enabled) {
          run_master_ft(ntasks, nullptr, fn, out, ckpt_done);
        } else {
          std::set<std::uint64_t> done_ids;
          for (const CkptDoneTask& d : ckpt_done) done_ids.insert(d.task);
          run_master(ntasks, done_ids);
        }
      } else {
        if (config_.ft.enabled) {
          run_worker_ft(fn, out);
        } else {
          run_worker(fn, out);
        }
      }
      break;
    }
  }
  ckpt_end_map();

  if (append) {
    kv_.absorb(std::move(out));
  } else {
    kv_ = std::move(out);
  }
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill(/*fresh_store=*/!append);
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

trace::Recorder* MapReduce::phase_recorder() {
  trace::Recorder* rec = comm_.tracer();
  return (rec != nullptr && config_.trace_phases) ? rec : nullptr;
}

void MapReduce::run_task(const MapFn& fn, std::uint64_t task, KeyValue& out,
                         trace::Recorder* rec, const char* span_name) {
  // Crash poll on every scheduler path. Under the fault-tolerant worker
  // this sits inside its try block; elsewhere the CrashSignal propagates
  // and fails the run with its "enable fault tolerance" message.
  if (fault::Injector* inj = comm_.runtime().faults(); inj != nullptr) {
    inj->task_started(comm_.rank(), comm_.now());
  }
  const double t0 = comm_.now();
  fn(task, out);
  ++stats_.map_tasks_run;
  if (rec != nullptr) {
    rec->add(comm_.rank(), trace::Category::Task, span_name, t0, comm_.now());
  }
  if (obs::Registry* reg = metrics(); reg != nullptr) {
    reg->counter("mrmpi.map_tasks").inc();
    reg->histogram("mrmpi.task_seconds").observe(comm_.now() - t0);
  }
  if (obs::TimeSeries* ts = comm_.runtime().timeseries(); ts != nullptr) {
    ts->sample(comm_.rank(), "mrmpi.tasks_done", comm_.now(),
               static_cast<double>(stats_.map_tasks_run));
  }
}

void MapReduce::run_master(std::uint64_t ntasks,
                           const std::set<std::uint64_t>& ckpt_done) {
  trace::Recorder* rec = phase_recorder();
  const int workers = comm_.size() - 1;
  std::uint64_t next = 0;
  int stopped = 0;
  // Restored tasks were already replayed on their owners; never hand
  // them out again.
  auto skip_done = [&] {
    while (next < ntasks && ckpt_done.count(next) != 0) ++next;
  };
  skip_done();
  // Each worker announces readiness (initially and after each task); the
  // master answers with the next task id, or -1 when exhausted.
  while (stopped < workers) {
    int src = -1;
    comm_.recv_value<std::uint8_t>(mpi::kAnySource, kTagDone, &src);
    const double t0 = comm_.now();
    if (next < ntasks) {
      comm_.send_value<std::int64_t>(src, kTagTask, static_cast<std::int64_t>(next));
      ++next;
      skip_done();
    } else {
      comm_.send_value<std::int64_t>(src, kTagTask, -1);
      ++stopped;
    }
    if (rec != nullptr) {
      // Master service latency: request handled -> reply sent.
      rec->add(comm_.rank(), trace::Category::Phase, "mw_service", t0, comm_.now());
    }
    if (obs::Registry* reg = metrics(); reg != nullptr) {
      reg->histogram("mrmpi.master_service_seconds").observe(comm_.now() - t0);
    }
    if (obs::TimeSeries* ts = comm_.runtime().timeseries(); ts != nullptr) {
      ts->sample(comm_.rank(), "mrmpi.pending_tasks", comm_.now(),
                 static_cast<double>(ntasks - std::min(next, ntasks)));
    }
  }
}

void MapReduce::run_worker(const MapFn& fn, KeyValue& out) {
  trace::Recorder* rec = phase_recorder();
  for (;;) {
    comm_.send_value<std::uint8_t>(0, kTagDone, 1);
    const auto task = comm_.recv_value<std::int64_t>(0, kTagTask);
    if (task < 0) break;
    run_task_ckpt(fn, static_cast<std::uint64_t>(task), out, rec);
  }
}

std::uint64_t MapReduce::map_locality(std::uint64_t ntasks, const AffinityFn& affinity,
                                      const MapFn& fn) {
  MRBIO_REQUIRE(affinity != nullptr, "map_locality needs an affinity function");
  trace::Recorder* rec = phase_recorder();
  PhaseSpan span(rec, comm_, "map");
  failed_tasks_.clear();
  KeyValue out = make_kv();
  const std::vector<CkptDoneTask> ckpt_done =
      ckpt_begin_map(ntasks, out, /*shared=*/comm_.size() > 1);
  if (comm_.size() == 1) {
    for (std::uint64_t t = 0; t < ntasks; ++t) {
      run_task_ckpt(fn, t, out, rec);
    }
  } else if (comm_.rank() == 0) {
    if (config_.ft.enabled) {
      run_master_ft(ntasks, &affinity, fn, out, ckpt_done);
    } else {
      std::set<std::uint64_t> done_ids;
      for (const CkptDoneTask& d : ckpt_done) done_ids.insert(d.task);
      run_master_locality(ntasks, affinity, done_ids);
    }
  } else {
    if (config_.ft.enabled) {
      run_worker_ft(fn, out);
    } else {
      run_worker(fn, out);
    }
  }
  ckpt_end_map();
  kv_ = std::move(out);
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill(/*fresh_store=*/true);
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

void MapReduce::run_master_locality(std::uint64_t ntasks, const AffinityFn& affinity,
                                    const std::set<std::uint64_t>& ckpt_done) {
  trace::Recorder* rec = phase_recorder();
  // Pending tasks grouped by locality key; within a key, FIFO by task id.
  // Tasks restored from a checkpoint are already accounted for on their
  // owners and never enter the queue.
  std::map<std::uint64_t, std::deque<std::uint64_t>> pending;
  std::uint64_t remaining = 0;
  for (std::uint64_t t = 0; t < ntasks; ++t) {
    if (ckpt_done.count(t) != 0) continue;
    pending[affinity(t)].push_back(t);
    ++remaining;
  }

  std::map<int, std::uint64_t> worker_key;  ///< last key each worker ran
  const int workers = comm_.size() - 1;
  int stopped = 0;
  while (stopped < workers) {
    int src = -1;
    comm_.recv_value<std::uint8_t>(mpi::kAnySource, kTagDone, &src);
    const double t0 = comm_.now();
    if (remaining == 0) {
      comm_.send_value<std::int64_t>(src, kTagTask, -1);
      ++stopped;
      if (rec != nullptr) {
        rec->add(comm_.rank(), trace::Category::Phase, "mw_service", t0, comm_.now());
      }
      continue;
    }
    // Prefer the worker's current key; otherwise hand it the key with the
    // most remaining tasks so future requests can stay local to it.
    auto it = pending.end();
    const auto known = worker_key.find(src);
    if (known != worker_key.end()) {
      it = pending.find(known->second);
      if (it != pending.end() && it->second.empty()) it = pending.end();
    }
    if (it == pending.end()) {
      std::size_t best = 0;
      for (auto cand = pending.begin(); cand != pending.end(); ++cand) {
        if (cand->second.size() > best) {
          best = cand->second.size();
          it = cand;
        }
      }
    }
    MRBIO_CHECK(it != pending.end() && !it->second.empty(), "scheduler lost tasks");
    const std::uint64_t task = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) pending.erase(it);
    worker_key[src] = affinity(task);
    comm_.send_value<std::int64_t>(src, kTagTask, static_cast<std::int64_t>(task));
    --remaining;
    if (rec != nullptr) {
      rec->add(comm_.rank(), trace::Category::Phase, "mw_service", t0, comm_.now());
    }
    if (obs::Registry* reg = metrics(); reg != nullptr) {
      reg->histogram("mrmpi.master_service_seconds").observe(comm_.now() - t0);
    }
    if (obs::TimeSeries* ts = comm_.runtime().timeseries(); ts != nullptr) {
      ts->sample(comm_.rank(), "mrmpi.pending_tasks", comm_.now(),
                 static_cast<double>(remaining));
    }
  }
}

void MapReduce::run_master_ft(std::uint64_t ntasks, const AffinityFn* affinity,
                              const MapFn& fn, KeyValue& out,
                              const std::vector<CkptDoneTask>& ckpt_done) {
  trace::Recorder* rec = phase_recorder();
  obs::Registry* reg = metrics();
  const FaultToleranceConfig& ft = config_.ft;
  const int nworkers = comm_.size() - 1;
  fault::Injector* inj = comm_.runtime().faults();

  failed_tasks_.clear();

  // The exactly-once work ledger, plus pending-task buckets keyed by
  // locality (one bucket, key 0, in plain FIFO mode). Buckets may hold
  // stale ids — a task can transition away from Pending while queued — so
  // every pop re-checks the ledger; the state counters below are the
  // authoritative progress measure.
  std::vector<TaskEntry> ledger(ntasks);
  std::map<std::uint64_t, std::deque<std::uint64_t>> pending;
  auto task_key = [&](std::uint64_t t) {
    return affinity != nullptr ? (*affinity)(t) : std::uint64_t{0};
  };
  for (std::uint64_t t = 0; t < ntasks; ++t) pending[task_key(t)].push_back(t);
  std::uint64_t npending = ntasks;
  std::uint64_t noutstanding = 0;
  std::uint64_t ndone = 0;
  std::uint64_t nfailed = 0;

  // Tasks restored from a checkpoint enter the ledger as already committed
  // by their restoring rank, at that rank's CURRENT incarnation: if the
  // keeper crashes later, revert_worker() puts exactly these tasks back in
  // play, the same as freshly committed ones (the replayed data died with
  // the process). The pending buckets keep their stale ids; pop_bucket
  // re-checks the ledger and discards them.
  for (const CkptDoneTask& d : ckpt_done) {
    TaskEntry& e = ledger[d.task];
    if (e.state != TaskState::Pending) continue;
    e.state = TaskState::Done;
    e.owner = d.owner;
    e.owner_inc = d.owner_inc;
    --npending;
    ++ndone;
  }

  // Outstanding-attempt deadlines, lazily invalidated: an entry counts
  // only if the ledger still shows that exact deadline outstanding.
  std::multimap<double, std::uint64_t> expiry;

  // Per-worker transport state persists across map() calls (see the
  // ft_workers_ comment in the header); only the per-map stop flag resets.
  // Workers that announced a permanent death in an earlier map are
  // accounted up front — they may re-announce, but the master must not
  // depend on that announcement arriving (it can be dropped).
  ft_workers_.resize(static_cast<std::size_t>(comm_.size()));
  std::vector<FtWorkerView>& workers = ft_workers_;
  std::map<int, std::uint64_t> worker_key;  ///< last locality key per worker
  int accounted = 0;  ///< workers currently stopped or dead
  for (FtWorkerView& w : workers) {
    w.stopped = false;
    if (w.dead) ++accounted;
  }

  // Crash notifications can still be in flight when the last worker is
  // stopped, so with an injector present the master lingers for a quiet
  // window before leaving (see DESIGN.md for the delay-bound assumption).
  const double quiet_window =
      inj != nullptr ? std::max(4.0 * ft.worker_poll, 0.2) : 0.0;
  double quiet_since = comm_.now();

  auto settled = [&] { return ndone + nfailed == ntasks; };

  auto attempt_timeout = [&](std::uint32_t attempt) {
    return ft.task_timeout * std::pow(ft.backoff, static_cast<double>(attempt - 1));
  };

  // Pops the next genuinely Pending task from `it`'s bucket, discarding
  // stale entries; erases emptied buckets. Returns -1 if none.
  auto pop_bucket = [&](auto it) -> std::int64_t {
    while (!it->second.empty()) {
      const std::uint64_t t = it->second.front();
      it->second.pop_front();
      if (ledger[t].state == TaskState::Pending) {
        if (it->second.empty()) pending.erase(it);
        return static_cast<std::int64_t>(t);
      }
    }
    pending.erase(it);
    return -1;
  };

  // Locality-aware choice, same policy as run_master_locality: prefer the
  // worker's current key, else drain the largest bucket.
  auto pick_task = [&](int src) -> std::int64_t {
    if (npending == 0) return -1;
    if (affinity != nullptr) {
      const auto known = worker_key.find(src);
      if (known != worker_key.end()) {
        const auto it = pending.find(known->second);
        if (it != pending.end()) {
          const std::int64_t t = pop_bucket(it);
          if (t >= 0) return t;
        }
      }
    }
    while (!pending.empty()) {
      auto it = pending.begin();
      if (affinity != nullptr) {
        for (auto cand = pending.begin(); cand != pending.end(); ++cand) {
          if (cand->second.size() > it->second.size()) it = cand;
        }
      }
      const std::int64_t t = pop_bucket(it);
      if (t >= 0) return t;
    }
    return -1;
  };

  auto grant_task = [&](int src, std::uint64_t task) {
    TaskEntry& e = ledger[task];
    e.state = TaskState::Outstanding;
    e.owner = src;
    e.owner_inc = workers[static_cast<std::size_t>(src)].incarnation;
    ++e.attempt;
    e.granted = comm_.now();
    e.deadline = e.granted + attempt_timeout(e.attempt);
    expiry.emplace(e.deadline, task);
    --npending;
    ++noutstanding;
    if (affinity != nullptr) worker_key[src] = task_key(task);
  };

  // Reverts every task owned by `w` at an incarnation older than
  // `live_inc` back to Pending: the data those attempts produced lived in
  // the crashed process and is gone, whether or not it was committed.
  auto revert_worker = [&](int w, std::uint32_t live_inc) {
    for (std::uint64_t t = 0; t < ntasks; ++t) {
      TaskEntry& e = ledger[t];
      if (e.owner != w || e.owner_inc >= live_inc) continue;
      if (e.state != TaskState::Outstanding && e.state != TaskState::Done) continue;
      if (e.state == TaskState::Outstanding) {
        --noutstanding;
      } else {
        --ndone;
      }
      e.state = TaskState::Pending;
      e.owner = -1;
      pending[task_key(t)].push_back(t);
      ++npending;
    }
  };

  // Expires overdue outstanding attempts: retry with a longer deadline
  // later, or declare the task failed once the budget is spent. Returns
  // true if anything expired (the wait that noticed it was recovery time).
  auto handle_expiries = [&] {
    const double now = comm_.now();
    bool any = false;
    while (!expiry.empty() && expiry.begin()->first <= now) {
      const std::uint64_t t = expiry.begin()->second;
      const double dl = expiry.begin()->first;
      expiry.erase(expiry.begin());
      TaskEntry& e = ledger[t];
      if (e.state != TaskState::Outstanding || e.deadline != dl) continue;  // stale
      any = true;
      --noutstanding;
      if (reg != nullptr) {
        reg->histogram("ft.retry_latency_seconds").observe(now - e.granted);
      }
      if (obs::EventLog* el = comm_.runtime().eventlog(); el != nullptr) {
        el->log(LogLevel::Warn, comm_.rank(), "mrmpi",
                format_msg("task ", t, " attempt ", e.attempt, " timed out on worker ",
                           e.owner));
      }
      if (e.attempt >= static_cast<std::uint32_t>(1 + ft.max_retries)) {
        e.state = TaskState::Failed;
        ++nfailed;
        ++stats_.tasks_failed;
        if (reg != nullptr) reg->counter("ft.tasks_failed").inc();
      } else {
        e.state = TaskState::Pending;
        e.owner = -1;
        pending[task_key(t)].push_back(t);
        ++npending;
        ++stats_.tasks_retried;
        if (reg != nullptr) reg->counter("ft.tasks_retried").inc();
      }
    }
    return any;
  };

  while (true) {
    handle_expiries();
    if (obs::TimeSeries* ts = comm_.runtime().timeseries(); ts != nullptr) {
      ts->sample(comm_.rank(), "mrmpi.pending_tasks", comm_.now(),
                 static_cast<double>(npending));
    }

    // Endgame: every worker has left (or died) but reverted/never-granted
    // tasks remain — run them on the master so a late crash can never
    // strand work. Graceful degradation beats byte-identity loss.
    if (accounted == nworkers && npending > 0) {
      for (std::int64_t t = pick_task(0); t >= 0; t = pick_task(0)) {
        const std::uint64_t task = static_cast<std::uint64_t>(t);
        TaskEntry& e = ledger[task];
        ++e.attempt;
        run_task_ckpt(fn, task, out, rec,
                      e.attempt > 1 ? "map_task_retry" : "map_task");
        e.state = TaskState::Done;
        e.owner = 0;
        --npending;
        ++ndone;
      }
      quiet_since = comm_.now();  // restart the crash-notification window
    }

    if (accounted == nworkers && settled() &&
        comm_.now() >= quiet_since + quiet_window) {
      break;
    }

    double wake = comm_.now() + ft.task_timeout;  // heartbeat
    if (!expiry.empty()) wake = std::min(wake, expiry.begin()->first);
    if (accounted == nworkers && settled()) {
      wake = std::min(wake, quiet_since + quiet_window);
    }

    rt::Message m;
    const double t_wait = comm_.now();
    const rt::RecvStatus st = comm_.recv_bytes_deadline(mpi::kAnySource, kTagDone, wake, &m);
    if (st != rt::RecvStatus::Ok) {
      const bool recovered = handle_expiries();
      const bool draining = accounted == nworkers && settled();
      if (rec != nullptr && (recovered || draining)) {
        rec->add(comm_.rank(), trace::Category::Fault, "recovery_wait", t_wait,
                 comm_.now());
      }
      continue;
    }

    quiet_since = comm_.now();
    const WireReq req = unpack_req(m);
    const int src = m.source;
    MRBIO_CHECK(src >= 1 && src < comm_.size(), "ft request from bad rank ", src);
    FtWorkerView& w = workers[static_cast<std::size_t>(src)];

    if (req.seq < w.last_seq) continue;  // ancient duplicate: drop
    if (req.seq == w.last_seq) {
      // Resend of an answered request: replay the cached grant verbatim.
      comm_.send_bytes(src, kTagTask, w.cached_grant);
      continue;
    }

    const double t0 = comm_.now();

    if (req.incarnation > w.incarnation) {
      // The worker respawned: everything its older incarnations produced
      // died with them. Put those tasks back in play.
      ++stats_.worker_deaths;
      if (reg != nullptr) reg->counter("ft.worker_deaths").inc();
      revert_worker(src, req.incarnation);
      w.incarnation = req.incarnation;
      worker_key.erase(src);
      if (w.stopped) {
        // It was told to leave but crashed first; it is back in the pool.
        w.stopped = false;
        --accounted;
      }
    }

    WireGrant g;
    g.seq = req.seq;

    if (req.dead != 0) {
      // Permanent death: acknowledge with STOP so the notification loop
      // ends; the incarnation bump above already reverted its tasks.
      if (!w.dead) {
        w.dead = true;
        if (!w.stopped) ++accounted;
      }
      g.commit = 0;
      g.assign = kAssignStop;
    } else {
      if (req.completed_task >= 0) {
        const std::uint64_t task = static_cast<std::uint64_t>(req.completed_task);
        MRBIO_CHECK(task < ntasks, "ft completion for bad task ", task);
        TaskEntry& e = ledger[task];
        if (e.state == TaskState::Done) {
          g.commit = 0;  // another attempt won; discard this copy
        } else {
          // Commit even if the attempt was presumed lost (Pending again
          // after a timeout) or written off (Failed): the work is real
          // and the worker holds the data.
          g.commit = 1;
          if (e.state == TaskState::Pending) --npending;
          if (e.state == TaskState::Outstanding) --noutstanding;
          if (e.state == TaskState::Failed) {
            --nfailed;
            --stats_.tasks_failed;
          }
          e.state = TaskState::Done;
          e.owner = src;
          e.owner_inc = req.incarnation;
          ++ndone;
        }
      }
      const std::int64_t task = pick_task(src);
      if (task >= 0) {
        grant_task(src, static_cast<std::uint64_t>(task));
        g.assign = task;
        g.attempt = ledger[static_cast<std::uint64_t>(task)].attempt;
      } else if (settled()) {
        g.assign = kAssignStop;
        if (!w.stopped) {
          w.stopped = true;
          ++accounted;
        }
      } else {
        // Work may reappear if an outstanding attempt times out.
        g.assign = kAssignRetryLater;
      }
    }

    w.last_seq = req.seq;
    w.cached_grant = pack_grant(g);
    comm_.send_bytes(src, kTagTask, w.cached_grant);

    if (rec != nullptr) {
      rec->add(comm_.rank(), trace::Category::Phase, "mw_service", t0, comm_.now());
    }
    if (reg != nullptr) {
      reg->histogram("mrmpi.master_service_seconds").observe(comm_.now() - t0);
    }
  }

  for (std::uint64_t t = 0; t < ntasks; ++t) {
    if (ledger[t].state == TaskState::Failed) failed_tasks_.push_back(t);
  }
}

void MapReduce::run_worker_ft(const MapFn& fn, KeyValue& out) {
  trace::Recorder* rec = phase_recorder();
  const FaultToleranceConfig& ft = config_.ft;
  fault::Injector* inj = comm_.runtime().faults();
  const int me = comm_.rank();

  // Protocol identity (ft_incarnation_, ft_seq_) survives both simulated
  // crashes (a supervisor restarting the worker would replay its
  // transport-level counters) and map() boundaries — a delayed grant from
  // an earlier map must never match a fresh request by seq aliasing.
  /// Permanent crash: only announce, take no work. A rank that crashed
  /// permanently in an earlier map() of this run stays out of every later
  /// task protocol too (it still participates in collectives).
  bool dead = inj != nullptr && inj->permanently_crashed(me);

  // State of the current (crashable) incarnation.
  std::int64_t completed = -1;  ///< finished task awaiting its commit
  std::uint32_t completed_attempt = 0;
  KeyValue staging = make_kv();  ///< emissions of `completed`

  while (true) {
    try {
      if (inj != nullptr && !dead) inj->maybe_crash(me, comm_.now());

      WireReq req;
      req.incarnation = ft_incarnation_;
      req.seq = ++ft_seq_;
      req.dead = dead ? 1 : 0;
      req.completed_task = completed;
      req.attempt = completed_attempt;
      const std::vector<std::byte> wire = pack_req(req);
      comm_.send_bytes(0, kTagDone, wire);

      WireGrant g;
      int resends = 0;
      while (true) {
        rt::Message m;
        const rt::RecvStatus st = comm_.recv_bytes_deadline(
            0, kTagTask, comm_.now() + ft.worker_poll, &m);
        MRBIO_CHECK(st != rt::RecvStatus::PeerDead, "rank ", me,
                    ": master (rank 0) died; the run cannot recover");
        if (st == rt::RecvStatus::Timeout) {
          if (inj != nullptr && !dead) inj->maybe_crash(me, comm_.now());
          ++resends;
          MRBIO_CHECK(resends <= ft.max_resends, "rank ", me,
                      ": master unresponsive after ", resends,
                      " request resends; giving up");
          comm_.send_bytes(0, kTagDone, wire);
          continue;
        }
        g = unpack_grant(m);
        if (g.seq == req.seq) break;
        // Stale grant for an earlier (resent) request: drain and re-wait.
      }

      if (completed >= 0) {
        if (g.commit != 0) {
          // Journal at the commit decision, not at task completion:
          // discarded attempts never reach the map log.
          ckpt_record_task(static_cast<std::uint64_t>(completed), staging);
          out.absorb(std::move(staging));
        }
        staging = make_kv();
        completed = -1;
        completed_attempt = 0;
      }
      if (g.assign == kAssignStop) return;
      if (g.assign == kAssignRetryLater) {
        const double t0 = comm_.now();
        comm_.sleep_until(comm_.now() + ft.worker_poll);
        if (rec != nullptr) {
          rec->add(me, trace::Category::Fault, "retry_wait", t0, comm_.now());
        }
        continue;
      }
      const std::uint64_t task = static_cast<std::uint64_t>(g.assign);
      run_task(fn, task, staging, rec,
               g.attempt > 1 ? "map_task_retry" : "map_task");
      completed = g.assign;
      completed_attempt = g.attempt;
    } catch (const fault::CrashSignal&) {
      // Simulated process death. Everything the old incarnation held in
      // memory — staged emissions AND previously committed results — is
      // lost; the master learns this from the incarnation bump (or the
      // dead flag) and reverts the affected ledger entries.
      out.clear();
      staging = make_kv();
      completed = -1;
      completed_attempt = 0;
      ++ft_incarnation_;
      dead = inj != nullptr && inj->permanently_crashed(me);
      if (rec != nullptr) {
        rec->add(me, trace::Category::Fault,
                 dead ? "worker_died" : "worker_respawn", comm_.now(), comm_.now());
      }
    }
  }
}

std::vector<MapReduce::CkptDoneTask> MapReduce::ckpt_begin_map(std::uint64_t ntasks,
                                                              KeyValue& out, bool shared) {
  std::vector<CkptDoneTask> done;
  ckpt_ = CkptMapState{};
  ckpt::Checkpointer* cp = config_.checkpointer;
  if (cp == nullptr || !cp->enabled()) return done;
  trace::Recorder* rec = phase_recorder();
  const int rank = comm_.rank();
  ckpt_.active = true;
  ckpt_.cycle = cp->cycle(rank);
  ckpt_.last_flush = comm_.now();
  const double t0 = comm_.now();

  // Replay this rank's journal for the cycle. The first occurrence of a
  // task wins: later duplicates come from committed-then-reverted attempts
  // and carry byte-identical data (map functions are deterministic).
  std::map<std::uint64_t, std::vector<std::byte>> mine;
  const std::uint64_t valid_end =
      cp->read_map_log(rank, ckpt_.cycle, [&](std::span<const std::byte> payload) {
        std::uint64_t task = 0;
        if (!decode_task_id(payload, ntasks, &task)) {
          cp->note_corrupt();
          MRBIO_LOG(Warn, "checkpoint: undecodable map-log record on rank ", rank,
                    " (cycle ", ckpt_.cycle, "); the affected task will re-run");
          return;
        }
        mine.emplace(task, std::vector<std::byte>(payload.begin(), payload.end()));
      });

  std::set<std::uint64_t> keep;
  if (shared) {
    // Under remote master-worker scheduling several ranks may hold the
    // same task (committed, then reverted and re-run elsewhere). The ranks
    // allgather their claims and the lowest rank keeps each task; every
    // claim carries the claimant's current incarnation so the master's
    // ledger reverts it correctly if that rank crashes later.
    ByteWriter w;
    w.put<std::uint32_t>(ft_incarnation_);
    w.put<std::uint64_t>(static_cast<std::uint64_t>(mine.size()));
    for (const auto& [t, payload] : mine) w.put<std::uint64_t>(t);
    const std::vector<std::vector<std::byte>> all = comm_.allgather_bytes(w.take());
    std::map<std::uint64_t, CkptDoneTask> claims;
    for (std::size_t r = 0; r < all.size(); ++r) {
      ByteReader br(all[r]);
      const auto inc = br.get<std::uint32_t>();
      const auto n = br.get<std::uint64_t>();
      for (std::uint64_t i = 0; i < n; ++i) {
        const auto t = br.get<std::uint64_t>();
        claims.emplace(t, CkptDoneTask{t, static_cast<int>(r), inc});
      }
    }
    for (const auto& [t, claim] : claims) {
      done.push_back(claim);
      if (claim.owner == rank) keep.insert(t);
    }
  } else {
    for (const auto& [t, payload] : mine) {
      keep.insert(t);
      done.push_back(CkptDoneTask{t, rank, ft_incarnation_});
    }
  }

  std::uint64_t restored_pairs = 0;
  for (const std::uint64_t t : keep) {
    ByteReader r(mine.at(t));
    r.get<std::uint64_t>();  // task id, validated during replay
    const auto npairs = r.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < npairs; ++i) {
      const auto klen = r.get<std::uint64_t>();
      const auto kbytes = r.raw(klen);
      const auto vlen = r.get<std::uint64_t>();
      const auto vbytes = r.raw(vlen);
      const auto nom = r.get<std::uint64_t>();
      out.add(kbytes, vbytes, nom);
    }
    ckpt_.restored.insert(t);
    restored_pairs += npairs;
  }

  // Price the journal read; the Io span surfaces as checkpoint_io in the
  // report's busy breakdown.
  comm_.compute(static_cast<double>(valid_end) * cp->config().byte_seconds);
  if (obs::Registry* reg = metrics(); reg != nullptr) {
    reg->counter("ckpt.tasks_restored").inc(ckpt_.restored.size());
    reg->counter("ckpt.pairs_restored").inc(restored_pairs);
    reg->counter("ckpt.bytes_replayed").inc(valid_end);
  }
  if (rec != nullptr && valid_end > 0) {
    rec->add(rank, trace::Category::Io, "ckpt_restore", t0, comm_.now(), restored_pairs,
             valid_end);
  }
  ckpt_.log = cp->open_map_log(rank, ckpt_.cycle, valid_end);
  return done;
}

void MapReduce::ckpt_record_task(std::uint64_t task, const KeyValue& emitted) {
  if (!ckpt_.active) return;
  ByteWriter w;
  w.put<std::uint64_t>(task);
  w.put<std::uint64_t>(static_cast<std::uint64_t>(emitted.size()));
  emitted.for_each([&](const KvPair& pair) {
    w.put<std::uint64_t>(pair.key.size());
    w.append(pair.key.data(), pair.key.size());
    w.put<std::uint64_t>(pair.value.size());
    w.append(pair.value.data(), pair.value.size());
    w.put<std::uint64_t>(pair.nominal_bytes);
  });
  ckpt_.pending_bytes += w.size();
  ckpt_.pending.push_back(w.take());
  if (comm_.now() - ckpt_.last_flush >= config_.checkpointer->config().interval) {
    ckpt_flush();
  }
}

void MapReduce::ckpt_flush() {
  if (!ckpt_.active) return;
  ckpt_.last_flush = comm_.now();
  if (ckpt_.pending.empty()) return;
  ckpt::Checkpointer* cp = config_.checkpointer;
  const double t0 = comm_.now();
  const std::uint64_t before = ckpt_.log->bytes_written();
  for (const std::vector<std::byte>& record : ckpt_.pending) {
    ckpt_.log->append(record);
  }
  ckpt_.log->sync();
  const std::uint64_t bytes = ckpt_.log->bytes_written() - before;
  cp->note_written(ckpt_.pending.size(), bytes);
  // Price the durable write and let a pending corrupt fault strike the
  // freshly synced bytes.
  comm_.compute(static_cast<double>(bytes) * cp->config().byte_seconds);
  if (obs::Registry* reg = metrics(); reg != nullptr) {
    reg->counter("ckpt.records_written").inc(ckpt_.pending.size());
    reg->counter("ckpt.bytes_written").inc(bytes);
  }
  if (trace::Recorder* rec = phase_recorder(); rec != nullptr) {
    rec->add(comm_.rank(), trace::Category::Io, "ckpt_write", t0, comm_.now(),
             ckpt_.pending.size(), bytes);
  }
  ckpt_.pending.clear();
  ckpt_.pending_bytes = 0;
  cp->after_map_log_write(comm_.rank(), ckpt_.cycle);
}

void MapReduce::ckpt_end_map() {
  if (!ckpt_.active) return;
  ckpt_flush();
  ckpt_.log.reset();
  ckpt_.active = false;
}

void MapReduce::run_task_ckpt(const MapFn& fn, std::uint64_t task, KeyValue& out,
                              trace::Recorder* rec, const char* span_name) {
  if (!ckpt_.active) {
    run_task(fn, task, out, rec, span_name);
    return;
  }
  if (ckpt_.restored.count(task) != 0) return;  // replayed from the journal
  KeyValue scratch = make_kv();
  run_task(fn, task, scratch, rec, span_name);
  ckpt_record_task(task, scratch);
  out.absorb(std::move(scratch));
}

namespace {

/// Scales a nominal byte count by real_after / real_before using 128-bit
/// intermediate math, so paper-scale nominals shrink by exactly the
/// measured framing/compression ratio without overflow.
std::uint64_t scale_nominal(std::uint64_t nominal, std::uint64_t real_after,
                            std::uint64_t real_before) {
  if (real_before == 0 || nominal == 0) return nominal;
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(nominal) * real_after) / real_before);
}

}  // namespace

std::uint64_t MapReduce::aggregate() {
  PhaseSpan span(phase_recorder(), comm_, "aggregate");
  const int p = comm_.size();
  const int rank = comm_.rank();
  const ShuffleConfig& sc = config_.shuffle;

  // Route every pair to its destination rank. Pairs are referenced by
  // index; rank-local pairs are replayed straight into the merged store
  // later (no serialize/deserialize round trip, no send buffer, no wire
  // charge), which is what makes an all-keys-local aggregate cost only the
  // empty exchange.
  struct DestGroup {
    std::string key;                  ///< only filled when combining
    std::vector<std::size_t> pairs;   ///< kv_ indices, emission order
  };
  struct Dest {
    std::vector<DestGroup> groups;    ///< first-occurrence key order
    std::unordered_map<std::string, std::size_t> group_of;
    std::uint64_t nominal = 0;
    std::uint64_t flat_real = 0;      ///< real bytes of the per-pair framing
  };
  std::vector<Dest> dests(static_cast<std::size_t>(p));
  std::size_t index = 0;
  kv_.for_each([&](const KvPair& pair) {
    Dest& dest = dests[static_cast<std::size_t>(key_rank(pair.key, p))];
    dest.nominal += pair.nominal_bytes;
    dest.flat_real += 3 * sizeof(std::uint64_t) + pair.key.size() + pair.value.size();
    std::string key(reinterpret_cast<const char*>(pair.key.data()), pair.key.size());
    if (sc.combiner) {
      auto [it, fresh] = dest.group_of.try_emplace(std::move(key), dest.groups.size());
      if (fresh) dest.groups.push_back({it->first, {}});
      dest.groups[it->second].pairs.push_back(index);
    } else if (dest.groups.empty()) {
      dest.groups.push_back({{}, {index}});
    } else {
      dest.groups.front().pairs.push_back(index);
    }
    ++index;
  });

  // Serialize the remote destinations. Per-pair framing:
  //   [u64 klen][key][u64 vlen][value][u64 nominal]
  // Combined framing (one record per key, values in emission order):
  //   [u64 klen][key][u64 nvalues]([u64 vlen][value][u64 nominal])*
  // The receive side expands combined records back to pairs in the same
  // order, so the merged KV — and the post-convert() KMV — is identical
  // in either mode.
  std::vector<std::vector<std::byte>> sendbufs(static_cast<std::size_t>(p));
  std::vector<std::uint64_t> nominal(static_cast<std::size_t>(p), 0);
  std::uint64_t sent = 0;
  std::uint64_t combined_saved = 0;
  std::uint64_t wire_real = 0;
  std::uint64_t precompress_real = 0;
  for (int d = 0; d < p; ++d) {
    if (d == rank) continue;
    Dest& dest = dests[static_cast<std::size_t>(d)];
    ByteWriter w;
    for (const DestGroup& g : dest.groups) {
      if (sc.combiner) {
        w.put<std::uint64_t>(g.key.size());
        w.append(g.key.data(), g.key.size());
        w.put<std::uint64_t>(g.pairs.size());
      }
      for (const std::size_t i : g.pairs) {
        const KvPair pair = kv_.pair(i);
        if (!sc.combiner) {
          w.put<std::uint64_t>(pair.key.size());
          w.append(pair.key.data(), pair.key.size());
        }
        w.put<std::uint64_t>(pair.value.size());
        w.append(pair.value.data(), pair.value.size());
        w.put<std::uint64_t>(pair.nominal_bytes);
      }
    }
    std::vector<std::byte> buf = w.take();
    std::uint64_t dest_nominal = dest.nominal;
    if (sc.combiner) {
      const std::uint64_t scaled = scale_nominal(dest_nominal, buf.size(), dest.flat_real);
      combined_saved += dest_nominal - scaled;
      dest_nominal = scaled;
    }
    precompress_real += buf.size();
    if (sc.compress && !buf.empty()) {
      std::vector<std::byte> packed = shuffle_compress(buf);
      dest_nominal = scale_nominal(dest_nominal, packed.size(), buf.size());
      buf = std::move(packed);
    }
    wire_real += buf.size();
    nominal[static_cast<std::size_t>(d)] = dest_nominal;
    sent += dest_nominal;
    sendbufs[static_cast<std::size_t>(d)] = std::move(buf);
  }

  stats_.aggregate_bytes_sent += sent;
  stats_.shuffle_combined_bytes += combined_saved;
  if (obs::Registry* reg = metrics(); reg != nullptr) {
    reg->counter("mrmpi.aggregate_bytes").inc(sent);
    if (sc.combiner) reg->counter("shuffle.combined_bytes").inc(combined_saved);
    if (sc.compress) {
      // An empty exchange compresses nothing; report the identity ratio
      // instead of leaving a 0/0 artifact in the gauge.
      reg->gauge("shuffle.compress_ratio")
          .set(wire_real > 0
                   ? static_cast<double>(precompress_real) / static_cast<double>(wire_real)
                   : 1.0);
    }
  }

  const double t_exchange = comm_.now();
  std::vector<std::vector<std::byte>> recvbufs;
  if (sc.exchange == ExchangeMode::Tree) {
    int stages = 0;
    recvbufs = comm_.alltoallv_staged(std::move(sendbufs), nominal, sc.tree_radix, &stages);
    stats_.shuffle_stages += static_cast<std::uint64_t>(stages);
    if (obs::Registry* reg = metrics(); reg != nullptr) {
      reg->counter("shuffle.stages").inc(static_cast<std::uint64_t>(stages));
    }
  } else {
    recvbufs = comm_.alltoallv_nominal(std::move(sendbufs), nominal);
  }
  const double exchange_seconds = comm_.now() - t_exchange;

  KeyValue merged = make_kv();
  for (int src = 0; src < p; ++src) {
    if (src == rank) {
      // Replay rank-local pairs in the exact order the wire path would
      // have delivered them (grouped when combining).
      for (const DestGroup& g : dests[static_cast<std::size_t>(rank)].groups) {
        for (const std::size_t i : g.pairs) {
          const KvPair pair = kv_.pair(i);
          merged.add(pair.key, pair.value, pair.nominal_bytes);
        }
      }
      continue;
    }
    const auto& raw = recvbufs[static_cast<std::size_t>(src)];
    std::vector<std::byte> unpacked;
    if (sc.compress && !raw.empty()) unpacked = shuffle_decompress(raw);
    ByteReader r(sc.compress && !raw.empty() ? std::span<const std::byte>(unpacked)
                                             : std::span<const std::byte>(raw));
    while (!r.done()) {
      const auto klen = r.get<std::uint64_t>();
      const auto kbytes = r.raw(klen);
      if (sc.combiner) {
        const auto nvalues = r.get<std::uint64_t>();
        for (std::uint64_t v = 0; v < nvalues; ++v) {
          const auto vlen = r.get<std::uint64_t>();
          const auto vbytes = r.raw(vlen);
          const auto nom = r.get<std::uint64_t>();
          merged.add(kbytes, vbytes, nom);
        }
      } else {
        const auto vlen = r.get<std::uint64_t>();
        const auto vbytes = r.raw(vlen);
        const auto nom = r.get<std::uint64_t>();
        merged.add(kbytes, vbytes, nom);
      }
    }
  }
  kv_ = std::move(merged);
  have_kmv_ = false;
  charge_spill(/*fresh_store=*/true,
               sc.overlap_spill ? exchange_seconds : 0.0, "shuffle_spill");
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

std::uint64_t MapReduce::convert() {
  PhaseSpan span(phase_recorder(), comm_, "convert");
  // Charge the local group-by: one hash+compare pass over the data.
  kmv_ = KeyMultiValue::from_keyvalue(kv_);
  have_kmv_ = true;
  // The grouped view materializes a second copy of the pair data. Offsets
  // are 64-bit throughout, so a single group larger than the memory budget
  // is represented exactly — never truncated — but the overflow is backed
  // by disk and must be charged like any other spill write.
  const std::uint64_t nominal = kv_.nominal_bytes();
  if (nominal > config_.memsize_bytes) {
    const std::uint64_t over = nominal - config_.memsize_bytes;
    const double t0 = comm_.now();
    comm_.compute(static_cast<double>(over) * config_.spill_byte_seconds);
    if (obs::Registry* reg = metrics(); reg != nullptr) {
      reg->counter("mrmpi.spill_bytes").inc(over);
    }
    if (trace::Recorder* rec = phase_recorder(); rec != nullptr) {
      rec->add(comm_.rank(), trace::Category::Io, "kmv_spill", t0, comm_.now(), 0, over);
    }
    stats_.spilled_bytes += over;
  }
  span.set_kv(kmv_.size(), kv_.nominal_bytes());
  return global_count(kmv_.size());
}

std::uint64_t MapReduce::collate() {
  aggregate();
  return convert();
}

std::uint64_t MapReduce::reduce(const ReduceFn& fn) {
  MRBIO_REQUIRE(have_kmv_, "reduce() requires a prior convert()/collate()");
  PhaseSpan span(phase_recorder(), comm_, "reduce");
  KeyValue out = make_kv();
  for (std::size_t i = 0; i < kmv_.size(); ++i) {
    const KmvGroup g = kmv_.group(i);
    fn(g, out);
  }
  kv_ = std::move(out);
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill(/*fresh_store=*/true);
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

std::uint64_t MapReduce::compress(const ReduceFn& fn) {
  PhaseSpan span(phase_recorder(), comm_, "compress");
  const KeyMultiValue groups = KeyMultiValue::from_keyvalue(kv_);
  KeyValue out = make_kv();
  for (std::size_t i = 0; i < groups.size(); ++i) {
    fn(groups.group(i), out);
  }
  kv_ = std::move(out);
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill(/*fresh_store=*/true);
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

std::uint64_t MapReduce::map_kv(const MapKvFn& fn) {
  PhaseSpan span(phase_recorder(), comm_, "map_kv");
  KeyValue out = make_kv();
  kv_.for_each([&](const KvPair& pair) { fn(pair, out); });
  kv_ = std::move(out);
  have_kmv_ = false;
  stats_.kv_pairs_emitted += kv_.size();
  charge_spill(/*fresh_store=*/true);
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

std::uint64_t MapReduce::gather() {
  PhaseSpan span(phase_recorder(), comm_, "gather");
  ByteWriter w;
  kv_.for_each([&](const KvPair& pair) {
    w.put<std::uint64_t>(pair.key.size());
    w.append(pair.key.data(), pair.key.size());
    w.put<std::uint64_t>(pair.value.size());
    w.append(pair.value.data(), pair.value.size());
    w.put<std::uint64_t>(pair.nominal_bytes);
  });
  auto all = comm_.gather_bytes(w.take(), 0);
  if (comm_.rank() == 0) {
    KeyValue merged = make_kv();
    for (const auto& buf : all) {
      ByteReader r(buf);
      while (!r.done()) {
        const auto klen = r.get<std::uint64_t>();
        const auto kbytes = r.raw(klen);
        const auto vlen = r.get<std::uint64_t>();
        const auto vbytes = r.raw(vlen);
        const auto nom = r.get<std::uint64_t>();
        merged.add(kbytes, vbytes, nom);
      }
    }
    kv_ = std::move(merged);
  } else {
    kv_.clear();
  }
  have_kmv_ = false;
  charge_spill(/*fresh_store=*/true);
  span.set_kv(kv_.size(), kv_.nominal_bytes());
  return global_count(kv_.size());
}

void MapReduce::sort_keys() {
  kv_.sort_by_key();
  have_kmv_ = false;
}

void MapReduce::charge_spill(bool fresh_store, double credit_seconds,
                             const char* span_name) {
  // A store-replacing op (aggregate, reduce, compress, map_kv, gather, a
  // non-append map) discards the old pages and writes new ones, so the old
  // high-water mark must not mask the new store's spill I/O. Without this
  // reset a collate() whose output shrank below a previous peak was never
  // charged for respilling — the grow-then-shrink undercharge.
  if (fresh_store) charged_spill_ = 0;
  const std::uint64_t nominal = kv_.nominal_bytes();
  if (nominal > config_.memsize_bytes) {
    const std::uint64_t spilled = nominal - config_.memsize_bytes;
    if (spilled > charged_spill_) {
      const std::uint64_t fresh = spilled - charged_spill_;
      const double t0 = comm_.now();
      double seconds = static_cast<double>(fresh) * config_.spill_byte_seconds;
      if (credit_seconds > 0.0) {
        // Spill writes overlapped with the exchange: only the tail that
        // outlives the communication costs wall-clock time.
        const double saved = std::min(seconds, credit_seconds);
        stats_.shuffle_overlap_saved_seconds += saved;
        seconds -= saved;
      }
      comm_.compute(seconds);
      if (obs::Registry* reg = metrics(); reg != nullptr) {
        reg->counter("mrmpi.spill_bytes").inc(fresh);
      }
      if (trace::Recorder* rec = phase_recorder(); rec != nullptr) {
        rec->add(comm_.rank(), trace::Category::Io, span_name, t0, comm_.now(), 0, fresh);
      }
      stats_.spilled_bytes += fresh;
      charged_spill_ = spilled;
    }
  } else {
    charged_spill_ = 0;
  }
}

std::uint64_t MapReduce::global_count(std::uint64_t local) {
  return comm_.allreduce_scalar(local, mpi::ReduceOp::Sum);
}

}  // namespace mrbio::mrmpi
