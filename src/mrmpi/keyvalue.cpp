#include "mrmpi/keyvalue.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <numeric>
#include <unordered_map>

#include "mrmpi/shuffle_codec.hpp"

namespace mrbio::mrmpi {

namespace {
std::atomic<std::uint64_t> g_store_counter{0};

/// On-disk frame header of a compressed spill page. Stable across runs so
/// durable (checkpoint-mode) spill files written by a killed run stay
/// decodable on resume.
constexpr std::uint32_t kSpillPageMagic = 0x4D525350;  // "MRSP"

struct SpillPageHeader {
  std::uint32_t magic;
  std::uint32_t reserved;
  std::uint64_t raw_len;   ///< page.byte_size after decompression
  std::uint64_t disk_len;  ///< compressed payload bytes that follow
};

/// "" resolves to $TMPDIR (the scheduler-provided scratch dir on batch
/// systems), falling back to /tmp.
std::string resolved_spill_dir(const std::string& dir) {
  if (!dir.empty()) return dir;
  const char* tmpdir = std::getenv("TMPDIR");
  return tmpdir != nullptr && *tmpdir != '\0' ? std::string(tmpdir) : std::string("/tmp");
}

/// Drops a page buffer; in debug mode poison it first so any span still
/// pointing in reads 0xDD (and, after shrink_to_fit frees the
/// allocation, faults under AddressSanitizer).
void release_page_buf(std::vector<std::byte>& buf) {
#ifdef MRBIO_KV_DEBUG
  std::fill(buf.begin(), buf.end(), std::byte{0xDD});
#endif
  buf.clear();
  buf.shrink_to_fit();
}
}

// One fixed-capacity page of entries. A page is either resident (buf
// holds the bytes) or spilled (buf empty, bytes live at `file_offset` in
// the store's spill file).
struct KeyValue::Page {
  std::vector<std::byte> buf;
  std::vector<Entry> entries;
  std::size_t first_entry = 0;   ///< global index of entries.front()
  std::size_t byte_size = 0;     ///< logical size (valid also when spilled)
  bool spilled = false;
  std::uint64_t file_offset = 0;
  /// Bytes this page occupies in the spill file: byte_size for raw pages,
  /// header + compressed payload under SpillPolicy::compress.
  std::uint64_t disk_size = 0;
};

struct KeyValue::Impl {
  std::vector<Page> pages;
  std::FILE* spill_file = nullptr;
  std::string spill_path;
  std::uint64_t spill_end = 0;  ///< bytes written to the spill file
  /// Recently loaded spilled pages (indices into `pages`), LRU order,
  /// front = most recent. Loaded copies live in the page's buf.
  std::list<std::size_t> lru;

  ~Impl() {
    // Anonymous spill files were unlinked right after creation; closing
    // the descriptor releases the last reference and the kernel reclaims
    // the space. Durable (checkpoint-mode) files stay on disk — the
    // checkpoint layer removes them on successful completion, and a
    // killed run must leave them for --resume.
    if (spill_file != nullptr) std::fclose(spill_file);
  }
};

KeyValue::KeyValue(SpillPolicy policy) : policy_(std::move(policy)) {
  MRBIO_REQUIRE(policy_.page_bytes >= 1024, "spill pages must be >= 1 KiB");
  MRBIO_REQUIRE(policy_.max_resident_pages >= 2,
                "need at least 2 resident pages (writer + reader)");
}

KeyValue::KeyValue() = default;
KeyValue::~KeyValue() = default;
KeyValue::KeyValue(KeyValue&&) noexcept = default;
KeyValue& KeyValue::operator=(KeyValue&&) noexcept = default;

KeyValue::Page& KeyValue::writable_page(std::size_t need_bytes) {
  if (!impl_) impl_ = std::make_unique<Impl>();
  auto& pages = impl_->pages;
  const bool need_new =
      pages.empty() || pages.back().spilled ||
      pages.back().byte_size + need_bytes > policy_.page_bytes;
  if (need_new) {
    maybe_spill();
    Page page;
    page.first_entry = num_entries_;
    page.buf.reserve(std::min<std::uint64_t>(policy_.page_bytes, 1ull << 20));
    pages.push_back(std::move(page));
  }
  return pages.back();
}

void KeyValue::maybe_spill() {
  if (policy_.max_resident_pages == SIZE_MAX || !impl_) return;
  auto& pages = impl_->pages;
  std::size_t resident = 0;
  for (const Page& p : pages) resident += p.spilled ? 0 : 1;
  // Spill oldest non-LRU-pinned resident pages until under budget,
  // leaving room for the new page about to be created.
  for (std::size_t i = 0; i < pages.size() && resident + 1 > policy_.max_resident_pages;
       ++i) {
    Page& p = pages[i];
    if (p.spilled || p.buf.empty()) continue;
    if (impl_->spill_file == nullptr) {
      if (policy_.durable) {
        MRBIO_REQUIRE(!policy_.file_stem.empty(),
                      "durable spill mode needs a file_stem");
        impl_->spill_path =
            resolved_spill_dir(policy_.dir) + "/" + policy_.file_stem + ".spill";
      } else {
        impl_->spill_path = resolved_spill_dir(policy_.dir) + "/mrbio_kv_" +
                            std::to_string(::getpid()) + "_" +
                            std::to_string(g_store_counter.fetch_add(1)) + ".spill";
      }
      impl_->spill_file = std::fopen(impl_->spill_path.c_str(), "w+b");
      MRBIO_REQUIRE(impl_->spill_file != nullptr, "cannot create spill file ",
                    impl_->spill_path);
      // Anonymous mode unlinks immediately: the open descriptor keeps the
      // data alive, and a crashed run can no longer leak spill files in
      // the scratch dir. Durable mode keeps the stable name on disk.
      if (!policy_.durable) std::remove(impl_->spill_path.c_str());
    }
    std::fseek(impl_->spill_file, static_cast<long>(impl_->spill_end), SEEK_SET);
    if (policy_.compress) {
      const std::vector<std::byte> packed =
          shuffle_compress({p.buf.data(), p.byte_size});
      SpillPageHeader hdr;
      hdr.magic = kSpillPageMagic;
      hdr.reserved = 0;
      hdr.raw_len = p.byte_size;
      hdr.disk_len = packed.size();
      MRBIO_REQUIRE(std::fwrite(&hdr, 1, sizeof(hdr), impl_->spill_file) == sizeof(hdr) &&
                        std::fwrite(packed.data(), 1, packed.size(), impl_->spill_file) ==
                            packed.size(),
                    "short write to spill file");
      p.disk_size = sizeof(hdr) + packed.size();
    } else {
      const std::size_t written =
          std::fwrite(p.buf.data(), 1, p.byte_size, impl_->spill_file);
      MRBIO_REQUIRE(written == p.byte_size, "short write to spill file");
      p.disk_size = p.byte_size;
    }
    if (policy_.durable) {
      MRBIO_REQUIRE(std::fflush(impl_->spill_file) == 0 &&
                        ::fsync(fileno(impl_->spill_file)) == 0,
                    "cannot sync spill file ", impl_->spill_path);
    }
    p.file_offset = impl_->spill_end;
    impl_->spill_end += p.disk_size;
    spilled_bytes_ += p.disk_size;
    release_page_buf(p.buf);
    p.spilled = true;
    ++generation_;
    --resident;
    impl_->lru.remove(i);
  }
}

const KeyValue::Page& KeyValue::load_page(std::size_t page_index) const {
  MRBIO_CHECK(impl_ && page_index < impl_->pages.size(), "page index out of range");
  Page& p = impl_->pages[page_index];
  if (!p.spilled || !p.buf.empty()) {
    return p;  // resident, or a spilled page already cached
  }
  // Re-read from the spill file into the page's buffer.
  MRBIO_CHECK(impl_->spill_file != nullptr, "spilled page without a spill file");
  std::fseek(impl_->spill_file, static_cast<long>(p.file_offset), SEEK_SET);
  if (policy_.compress) {
    SpillPageHeader hdr;
    MRBIO_REQUIRE(std::fread(&hdr, 1, sizeof(hdr), impl_->spill_file) == sizeof(hdr),
                  "short read from spill file");
    MRBIO_REQUIRE(hdr.magic == kSpillPageMagic && hdr.raw_len == p.byte_size &&
                      sizeof(hdr) + hdr.disk_len == p.disk_size,
                  "corrupt compressed spill page in ", impl_->spill_path);
    std::vector<std::byte> packed(hdr.disk_len);
    MRBIO_REQUIRE(
        std::fread(packed.data(), 1, packed.size(), impl_->spill_file) == packed.size(),
        "short read from spill file");
    p.buf = shuffle_decompress(packed);
    MRBIO_CHECK(p.buf.size() == p.byte_size, "compressed spill page size mismatch");
  } else {
    p.buf.resize(p.byte_size);
    const std::size_t got = std::fread(p.buf.data(), 1, p.byte_size, impl_->spill_file);
    MRBIO_REQUIRE(got == p.byte_size, "short read from spill file");
  }
  // Track in the LRU; evict cached copies beyond the budget (the page
  // stays spilled, its buffer is just dropped).
  impl_->lru.push_front(page_index);
#ifdef MRBIO_KV_DEBUG
  // Debug mode caches only the page being accessed, so a span held across
  // the next pair() access to a different spilled page is invalidated (and
  // poisoned) immediately — the documented hazard crashes loudly instead
  // of working by coincidence.
  const std::size_t cache_cap = 1;
#else
  const std::size_t cache_cap = std::max<std::size_t>(policy_.max_resident_pages / 2, 2);
#endif
  while (impl_->lru.size() > cache_cap) {
    const std::size_t victim = impl_->lru.back();
    impl_->lru.pop_back();
    if (victim != page_index) {
      release_page_buf(impl_->pages[victim].buf);
      ++generation_;
    }
  }
  return p;
}

void KeyValue::add(std::span<const std::byte> key, std::span<const std::byte> value) {
  add(key, value, key.size() + value.size());
}

void KeyValue::add(std::span<const std::byte> key, std::span<const std::byte> value,
                   std::uint64_t nominal_bytes) {
  const std::size_t need = key.size() + value.size();
  MRBIO_REQUIRE(need <= policy_.page_bytes || policy_.max_resident_pages == SIZE_MAX,
                "entry of ", need, " bytes exceeds the page size ", policy_.page_bytes);
  Page& page = writable_page(need);
  Entry e;
  e.key_off = static_cast<std::uint32_t>(page.byte_size);
  e.key_len = static_cast<std::uint32_t>(key.size());
  page.buf.insert(page.buf.end(), key.begin(), key.end());
  e.val_off = static_cast<std::uint32_t>(page.byte_size + key.size());
  e.val_len = static_cast<std::uint32_t>(value.size());
  page.buf.insert(page.buf.end(), value.begin(), value.end());
  e.nominal = nominal_bytes;
  page.byte_size += need;
  page.entries.push_back(e);
  ++generation_;  // the insert may have reallocated the page buffer
  ++num_entries_;
  total_bytes_ += need;
  nominal_total_ += nominal_bytes;
}

void KeyValue::add(std::string_view key, std::string_view value) {
  add(std::as_bytes(std::span(key.data(), key.size())),
      std::as_bytes(std::span(value.data(), value.size())));
}

KvPair KeyValue::pair(std::size_t i) const {
  MRBIO_CHECK(i < num_entries_, "KeyValue::pair index ", i, " out of ", num_entries_);
  // Locate the page by first_entry (pages are ordered).
  const auto& pages = impl_->pages;
  std::size_t lo = 0;
  std::size_t hi = pages.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (pages[mid].first_entry <= i) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const Page& page = load_page(lo);
  const Entry& e = page.entries[i - page.first_entry];
  // A stale or evicted page would fail these consistency checks before the
  // caller can dereference a dangling span.
  MRBIO_CHECK(page.buf.size() == page.byte_size, "KeyValue::pair on an evicted page");
  MRBIO_CHECK(e.key_off + e.key_len <= page.buf.size() &&
                  e.val_off + e.val_len <= page.buf.size(),
              "KeyValue::pair entry spans outside its page");
  return KvPair{{page.buf.data() + e.key_off, e.key_len},
                {page.buf.data() + e.val_off, e.val_len},
                e.nominal};
}

void KeyValue::for_each(const std::function<void(const KvPair&)>& fn) const {
  if (!impl_) return;
  for (std::size_t pi = 0; pi < impl_->pages.size(); ++pi) {
    const Page& page = load_page(pi);
    for (const Entry& e : page.entries) {
      fn(KvPair{{page.buf.data() + e.key_off, e.key_len},
                {page.buf.data() + e.val_off, e.val_len},
                e.nominal});
    }
  }
}

void KeyValue::clear() {
  impl_.reset();
  ++generation_;
  num_entries_ = 0;
  total_bytes_ = 0;
  nominal_total_ = 0;
  spilled_bytes_ = 0;
}

void KeyValue::absorb(KeyValue&& other) {
  if (other.empty()) {
    other.clear();
    return;
  }
  if (empty()) {
    const SpillPolicy policy = policy_;  // keep this store's policy
    const std::uint64_t generation = generation_;
    *this = std::move(other);
    policy_ = policy;
    generation_ = generation + 1;
    return;
  }
  other.for_each([&](const KvPair& p) { add(p.key, p.value, p.nominal_bytes); });
  other.clear();
}

void KeyValue::sort_by_key() {
  if (num_entries_ < 2) return;
  // Extract keys once (sequentially, spill-friendly), argsort, rebuild.
  std::vector<std::string> keys;
  keys.reserve(num_entries_);
  for_each([&](const KvPair& p) {
    keys.emplace_back(reinterpret_cast<const char*>(p.key.data()), p.key.size());
  });
  std::vector<std::size_t> order(num_entries_);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });

  KeyValue sorted(policy_);
  for (const std::size_t i : order) {
    const KvPair p = pair(i);  // random access through the page cache
    sorted.add(p.key, p.value, p.nominal_bytes);
  }
  const std::uint64_t generation = generation_;
  *this = std::move(sorted);
  generation_ = generation + 1;
}

namespace {
struct SpanHash {
  std::size_t operator()(const std::string_view& s) const {
    return std::hash<std::string_view>{}(s);
  }
};
}  // namespace

KeyMultiValue KeyMultiValue::from_keyvalue(const KeyValue& kv) {
  KeyMultiValue out;
  std::unordered_map<std::string, std::size_t> index;
  index.reserve(kv.size());
  out.buf_.reserve(kv.bytes());
  kv.for_each([&](const KvPair& p) {
    const std::string key_copy(reinterpret_cast<const char*>(p.key.data()), p.key.size());
    auto it = index.find(key_copy);
    std::size_t gi;
    if (it == index.end()) {
      Group g;
      g.key_off = out.buf_.size();
      g.key_len = p.key.size();
      out.buf_.insert(out.buf_.end(), p.key.begin(), p.key.end());
      g.nominal = 0;
      gi = out.groups_.size();
      out.groups_.push_back(std::move(g));
      index.emplace(key_copy, gi);
    } else {
      gi = it->second;
    }
    Group& g = out.groups_[gi];
    ValueRef v;
    v.off = out.buf_.size();
    v.len = p.value.size();
    out.buf_.insert(out.buf_.end(), p.value.begin(), p.value.end());
    g.values.push_back(v);
    g.nominal += p.nominal_bytes;
    out.nominal_total_ += p.nominal_bytes;
  });
  return out;
}

KmvGroup KeyMultiValue::group(std::size_t i) const {
  MRBIO_CHECK(i < groups_.size(), "KeyMultiValue::group index ", i, " out of ",
              groups_.size());
  const Group& g = groups_[i];
  MRBIO_CHECK(g.key_off + g.key_len <= buf_.size(),
              "KeyMultiValue::group key outside the value buffer");
  KmvGroup out;
  out.key = {buf_.data() + g.key_off, g.key_len};
  out.values.reserve(g.values.size());
  for (const ValueRef& v : g.values) {
    MRBIO_CHECK(v.off + v.len <= buf_.size(),
                "KeyMultiValue::group value outside the value buffer");
    out.values.push_back({buf_.data() + v.off, v.len});
  }
  out.nominal_bytes = g.nominal;
  return out;
}

std::uint64_t key_hash(std::span<const std::byte> key) {
  // FNV-1a 64-bit: deterministic, order-free, adequate key spread.
  std::uint64_t h = 1469598103934665603ULL;
  for (std::byte b : key) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer (Steele, Lea & Flood); every input bit affects
  // every output bit, so `mix64(h) % p` stays balanced even when h itself
  // has structured low bits (short or sequential keys under FNV-1a).
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

int key_rank(std::span<const std::byte> key, int nranks) {
  MRBIO_CHECK(nranks > 0, "key_rank needs a positive rank count");
  return static_cast<int>(mix64(key_hash(key)) % static_cast<std::uint64_t>(nranks));
}

}  // namespace mrbio::mrmpi
