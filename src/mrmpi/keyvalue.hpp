// Key-value and key-multivalue stores, the data containers of the
// MapReduce-MPI programming model.
//
// Layout mirrors the Sandia library: a KeyValue is an append-only log of
// (key, value) byte pairs owned by one rank; a KeyMultiValue groups the
// values of identical keys. Keys and values are opaque byte strings.
//
// Out-of-core paging: like the Sandia library, a KeyValue can operate
// under a resident-memory budget. Data is stored in fixed-size pages;
// when the number of resident pages exceeds the budget, the oldest full
// pages are written to a per-store spill file and dropped from RAM, and
// are transparently re-read on access (sequential scans load one page at
// a time; random access goes through a small LRU of resident pages).
// The default policy is fully resident (no I/O).
//
// Span validity: views returned by pair(i) / group(i) reference page
// memory and are invalidated by ANY subsequent non-const call or by
// another pair(i) access (which may evict the page). Copy out what you
// keep; for whole-store scans prefer for_each(), whose spans are valid
// for the duration of the callback only.
//
// Each entry carries a nominal byte count for the timing model, defaulting
// to its real size. Paper-scale drivers emit token payloads with
// paper-sized nominals; everything downstream (aggregate's alltoallv,
// spill-time accounting) times against nominal bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace mrbio::mrmpi {

/// One key-value pair viewed in place (no ownership; see span validity
/// rules in the file comment).
struct KvPair {
  std::span<const std::byte> key;
  std::span<const std::byte> value;
  std::uint64_t nominal_bytes = 0;
};

/// Out-of-core policy for a KeyValue.
struct SpillPolicy {
  std::uint64_t page_bytes = 1ull << 20;
  /// Pages kept in RAM before spilling; max() disables spilling entirely.
  std::size_t max_resident_pages = SIZE_MAX;
  /// Directory for spill files (created lazily). In the default
  /// anonymous mode the file is unlinked immediately after creation so
  /// crashed runs never leak scratch files. "" (the default) resolves to
  /// $TMPDIR, falling back to /tmp.
  std::string dir;
  /// Durable mode, used when a checkpoint dir is configured: the spill
  /// file gets the stable name `<dir>/<file_stem>.spill`, stays linked,
  /// and every page write is fsynced, so the file is consistent with the
  /// checkpoint state a killed run leaves behind. The checkpoint layer
  /// removes the files on successful completion.
  bool durable = false;
  std::string file_stem;
  /// Compress pages on their way to the spill file (varint/RLE, see
  /// shuffle_codec.hpp). Compressed pages are written with a stable
  /// self-describing frame ([magic][raw_len][disk_len][payload]) so a
  /// durable spill file remains decodable after a crash; spilled_bytes()
  /// then reports the on-disk (compressed) size.
  bool compress = false;
};

class KeyValue {
 public:
  KeyValue();
  explicit KeyValue(SpillPolicy policy);
  ~KeyValue();

  KeyValue(KeyValue&&) noexcept;
  KeyValue& operator=(KeyValue&&) noexcept;
  KeyValue(const KeyValue&) = delete;
  KeyValue& operator=(const KeyValue&) = delete;

  /// Appends a pair; nominal_bytes defaults to the real entry size.
  void add(std::span<const std::byte> key, std::span<const std::byte> value);
  void add(std::span<const std::byte> key, std::span<const std::byte> value,
           std::uint64_t nominal_bytes);

  /// Convenience for string keys / values.
  void add(std::string_view key, std::string_view value);

  std::size_t size() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }

  /// Random access; may perform I/O if the entry's page is spilled.
  KvPair pair(std::size_t i) const;

  /// Sequential scan over all pairs in insertion order; loads spilled
  /// pages one at a time. Spans are valid only inside the callback.
  void for_each(const std::function<void(const KvPair&)>& fn) const;

  /// Total real payload bytes stored (resident + spilled).
  std::uint64_t bytes() const { return total_bytes_; }

  /// Total nominal (timing-model) bytes stored.
  std::uint64_t nominal_bytes() const { return nominal_total_; }

  /// Real bytes currently in the spill file.
  std::uint64_t spilled_bytes() const { return spilled_bytes_; }

  void clear();

  /// Moves all pairs of `other` into this store (sequential copy; the
  /// source is cleared).
  void absorb(KeyValue&& other);

  /// Stable lexicographic sort by key bytes (Sandia's sortkeys). Works on
  /// spilled stores via the page cache.
  void sort_by_key();

  /// Span-invalidation generation: incremented by every operation that may
  /// invalidate previously returned pair() spans (appends, clears, sorts,
  /// absorbs, and page evictions — including those triggered by pair()
  /// itself on a spilled store). Callers holding spans across calls can
  /// assert the generation is unchanged; under MRBIO_KV_DEBUG evicted
  /// buffers are additionally poisoned and freed so stale spans crash
  /// under AddressSanitizer instead of reading recycled memory.
  std::uint64_t generation() const { return generation_; }

 private:
  struct Entry {
    std::uint32_t key_off;
    std::uint32_t key_len;
    std::uint32_t val_off;
    std::uint32_t val_len;
    std::uint64_t nominal;
  };
  struct Page;
  struct Impl;

  Page& writable_page(std::size_t need_bytes);
  const Page& load_page(std::size_t page_index) const;
  void maybe_spill();

  SpillPolicy policy_;
  std::unique_ptr<Impl> impl_;
  /// Mutable: const accessors (pair/for_each) can evict cached pages.
  mutable std::uint64_t generation_ = 0;
  std::size_t num_entries_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t nominal_total_ = 0;
  std::uint64_t spilled_bytes_ = 0;
};

/// A key with all its grouped values, viewed in place.
struct KmvGroup {
  std::span<const std::byte> key;
  /// Values in first-emission order (stable across runs).
  std::vector<std::span<const std::byte>> values;
  std::uint64_t nominal_bytes = 0;  ///< sum over grouped entries
};

class KeyMultiValue {
 public:
  /// Builds groups from a KeyValue, preserving first-occurrence key order.
  static KeyMultiValue from_keyvalue(const KeyValue& kv);

  std::size_t size() const { return groups_.size(); }
  bool empty() const { return groups_.empty(); }

  /// Group i; spans reference internal storage valid for this object's
  /// lifetime.
  KmvGroup group(std::size_t i) const;

  std::uint64_t nominal_bytes() const { return nominal_total_; }

 private:
  struct ValueRef {
    std::uint64_t off;
    std::uint64_t len;
  };
  struct Group {
    std::uint64_t key_off;
    std::uint64_t key_len;
    std::vector<ValueRef> values;
    std::uint64_t nominal;
  };
  std::vector<std::byte> buf_;
  std::vector<Group> groups_;
  std::uint64_t nominal_total_ = 0;
};

/// Deterministic hash of a key used to assign keys to ranks in aggregate().
std::uint64_t key_hash(std::span<const std::byte> key);

/// splitmix64 finalizer: a full-avalanche bit mixer over a 64-bit value.
std::uint64_t mix64(std::uint64_t x);

/// Destination rank of a key in aggregate(): mix64(key_hash(key)) % nranks.
/// The mixing step matters — a raw `hash % nranks` inherits whatever
/// structure the low bits carry (small-cardinality or sequential integer
/// keys skew badly); the finalizer spreads every input bit over the
/// modulus.
int key_rank(std::span<const std::byte> key, int nranks);

}  // namespace mrbio::mrmpi
