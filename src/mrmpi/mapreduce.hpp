// MapReduce over MPI, reimplementing the Sandia MapReduce-MPI library's
// programming model (Plimpton & Devine) that the paper builds both of its
// applications on.
//
// Lifecycle of one MapReduce cycle, as in the paper's Fig. 1:
//
//   MapReduce mr(comm, config);
//   mr.map(n_work_units, map_fn);   // map_fn emits KV pairs per work unit
//   mr.collate();                   // = aggregate() + convert()
//   mr.reduce(reduce_fn);           // called once per unique key
//
// All methods are collective: every rank of the communicator must call
// them in the same order. The map() call supports the library's three
// task-distribution styles; the paper's BLAST uses MasterWorker ("a
// run-time option ... that instructs it to use the process with rank 0 as
// a master that distributes work units to the remaining ranks in a
// load-balanced way").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "mpi/comm.hpp"
#include "mrmpi/keyvalue.hpp"
#include "sched/sched.hpp"

namespace mrbio::ckpt {
class Checkpointer;
class RecordWriter;
}  // namespace mrbio::ckpt

namespace mrbio::mrmpi {

/// How map() assigns task indices to ranks.
enum class MapStyle {
  Chunk,         ///< contiguous blocks of tasks per rank (Sandia mapstyle 0)
  Stride,        ///< task i -> rank i % P (Sandia mapstyle 1)
  MasterWorker,  ///< rank 0 schedules tasks to idle workers (mapstyle 2)
};

/// Fault tolerance for the remote schedulers (MasterWorker / Steal).
///
/// When enabled, the scheduling protocol is replaced by a failure-aware
/// one: every grant carries a sequence number and a commit decision,
/// workers buffer each task's emissions in a staging store that is
/// absorbed only after the master commits the task (the exactly-once
/// work ledger), lost protocol messages are resent, tasks owned by crashed
/// or timed-out workers are reassigned with exponential backoff, and a
/// task that exhausts its retry budget is recorded as failed instead of
/// wedging the run (graceful degradation to partial results; see
/// MapReduce::failed_tasks()). The knobs live in sched::FtConfig.
///
/// Timeouts are in the backend's time base: virtual seconds on the DES,
/// wall-clock seconds on the native backend.
using FaultToleranceConfig = sched::FtConfig;

/// How aggregate() moves KV pairs between ranks.
enum class ExchangeMode {
  Flat,  ///< rotation-scheduled alltoallv, p-1 direct messages per rank
  Tree,  ///< Bruck-style radix-r staged exchange, (r-1)*ceil(log_r p) messages
};

/// Communication-efficiency options of the aggregate()/collate() shuffle.
/// All ranks must use identical settings (the exchange framing depends on
/// them). Every combination produces byte-identical post-collate() KMV
/// contents — the combiner is structural (same key sent once per
/// destination with its value list, orders preserved), the staged exchange
/// re-orders by origin rank, and the codec round-trips exactly — so modes
/// differ only in modeled cost, never in results.
struct ShuffleConfig {
  /// Pre-aggregate same-key pairs per destination before the exchange:
  /// each key crosses the wire once per destination, followed by its value
  /// list. Nominal (timing-model) bytes shrink proportionally to the real
  /// framing saving, so paper-scale runs see the reduction too.
  bool combiner = false;
  ExchangeMode exchange = ExchangeMode::Flat;
  /// Fan-out of the staged exchange (>= 2); used when exchange == Tree.
  int tree_radix = 2;
  /// Varint/RLE-compress exchange buffers on the wire and KV pages in the
  /// spill files (see shuffle_codec.hpp); nominal bytes scale with the
  /// real compression ratio.
  bool compress = false;
  /// Overlap spill-file I/O with the exchange: virtual seconds spent
  /// blocked in the exchange are credited against the post-exchange spill
  /// charge (a rank can drain pages to disk while waiting for the wire).
  bool overlap_spill = false;
};

struct MapReduceConfig {
  MapStyle map_style = MapStyle::MasterWorker;
  /// Scheduling policy of map()/map_locality(). Auto (the default) derives
  /// the policy from map_style — Chunk/Stride map to their static
  /// schedulers, MasterWorker to the master policy (upgraded to the
  /// fault-tolerant ledger when ft.enabled) — so existing configurations
  /// behave exactly as before. Any other value overrides map_style:
  /// sched::Policy::Steal selects decentralized work stealing (per-rank
  /// deques seeded with the chunk partition, randomized victim selection,
  /// token termination; with ft.enabled rank 0 additionally runs the
  /// exactly-once ledger and every commit goes through it).
  sched::Policy scheduler = sched::Policy::Auto;
  /// Work-stealing knobs (batch size, victim-selection seed, idle backoff).
  sched::StealConfig steal;
  /// Shuffle strategy of aggregate()/collate(); defaults reproduce the
  /// classic flat exchange.
  ShuffleConfig shuffle;
  /// Fault tolerance of the MasterWorker protocol; off by default.
  FaultToleranceConfig ft;
  /// Per-rank resident budget for KV data, mirroring Sandia's `memsize`.
  /// Nominal bytes beyond this are charged virtual I/O time; the paper
  /// notes clusters like Ranger have no local scratch, making this
  /// expensive.
  std::uint64_t memsize_bytes = 64ull << 20;
  /// Virtual seconds per spilled byte (write + later read back).
  double spill_byte_seconds = 2.0e-9;
  /// Actually page KV data to disk under the memsize budget (the Sandia
  /// library's out-of-core mode), in addition to the virtual-time charge.
  bool page_to_disk = false;
  /// Directory for spill files; "" (the default) resolves to $TMPDIR,
  /// falling back to /tmp.
  std::string spill_dir;
  std::uint64_t page_bytes = 1ull << 20;
  /// When the engine has a trace::Recorder attached, wrap each phase
  /// (map/aggregate/convert/reduce/compress/gather), every map task, the
  /// master's per-request service and spill charges in named spans. Off
  /// silences this library's spans without disabling tracing elsewhere.
  bool trace_phases = true;
  /// Non-owning; when set, map() journals every committed task's emissions
  /// to the per-rank per-cycle map log and, on a resumed run, replays the
  /// journal instead of re-executing the logged tasks. Spill files also
  /// switch to durable mode inside the checkpoint directory. The caller
  /// must advance the checkpoint cycle (Checkpointer::begin_cycle) before
  /// each checkpointed map; at most one map per rank per cycle.
  ckpt::Checkpointer* checkpointer = nullptr;
};

/// Statistics of one MapReduce object's lifetime, for benchmarks.
struct MapReduceStats {
  std::uint64_t map_tasks_run = 0;       ///< tasks executed on this rank
  std::uint64_t kv_pairs_emitted = 0;    ///< local emissions in map/reduce
  std::uint64_t spilled_bytes = 0;       ///< nominal bytes over the budget
  std::uint64_t aggregate_bytes_sent = 0;///< nominal bytes shipped by aggregate()
  /// Nominal bytes the combiner kept off the wire (flat framing minus
  /// combined framing, scaled to nominal sizes).
  std::uint64_t shuffle_combined_bytes = 0;
  std::uint64_t shuffle_stages = 0;      ///< staged-exchange rounds executed
  /// Virtual spill seconds saved by overlapping spill I/O with the
  /// exchange (shuffle.overlap_spill).
  double shuffle_overlap_saved_seconds = 0.0;
  // Fault-tolerance counters (master side, meaningful on rank 0).
  std::uint64_t tasks_retried = 0;       ///< reassignments after timeout/crash
  std::uint64_t worker_deaths = 0;       ///< crash notifications observed
  std::uint64_t tasks_failed = 0;        ///< tasks that exhausted max_retries
  // Work-stealing counters (per rank; steal policy only).
  std::uint64_t steals_attempted = 0;    ///< steal requests this rank sent
  std::uint64_t steals_succeeded = 0;    ///< requests answered with work
  std::uint64_t tasks_stolen = 0;        ///< tasks gained via stealing
  // Failure-detection counters (fault-tolerant paths only).
  std::uint64_t workers_evicted = 0;     ///< phi-accrual early expirations
  std::uint64_t ledger_failovers = 0;    ///< shards adopted from dead owners
};

class MapReduce {
 public:
  /// Map callback: receives the global task index and the rank-local
  /// KeyValue to emit into.
  using MapFn = std::function<void(std::uint64_t itask, KeyValue& kv)>;

  /// Reduce callback: one unique key with all its values, plus a KeyValue
  /// for (optional) re-emission.
  using ReduceFn = std::function<void(const KmvGroup& group, KeyValue& kv)>;

  MapReduce(mpi::Comm& comm, MapReduceConfig config = {});
  ~MapReduce();  // out-of-line: ckpt::RecordWriter is incomplete here

  /// Runs `fn` once per task in [0, ntasks) distributed per the map style,
  /// replacing this object's KV data with the emissions. Returns the global
  /// number of KV pairs. In MasterWorker style with more than one rank,
  /// rank 0 only schedules and executes no tasks.
  std::uint64_t map(std::uint64_t ntasks, const MapFn& fn);

  /// Like map() but keeps existing KV pairs (Sandia's addflag).
  std::uint64_t map_append(std::uint64_t ntasks, const MapFn& fn);

  /// Task -> locality key (e.g. the DB partition a task needs).
  using AffinityFn = std::function<std::uint64_t(std::uint64_t itask)>;

  /// Master-worker map with a location-aware scheduler: when a worker asks
  /// for work, the master prefers a task whose locality key matches the
  /// last task that worker ran, falling back to the key with the most
  /// remaining tasks. This is the paper's first planned improvement
  /// ("improving the location-aware work unit scheduler in order to
  /// distribute the work unit tuples to those ranks that have already been
  /// processing the same DB partitions"). Requires >= 2 ranks to schedule
  /// remotely; with 1 rank it degenerates to a local loop.
  std::uint64_t map_locality(std::uint64_t ntasks, const AffinityFn& affinity,
                             const MapFn& fn);

  /// Redistributes KV pairs so all copies of a key land on the rank
  /// hash(key) % P. Returns the global pair count.
  std::uint64_t aggregate();

  /// Locally groups KV pairs into key-multivalue groups. Returns the global
  /// number of unique keys (per-rank unique; globally unique after
  /// aggregate()).
  std::uint64_t convert();

  /// aggregate() followed by convert(), as in the Sandia library.
  std::uint64_t collate();

  /// Calls `fn` once per local KMV group; emissions replace the KV data.
  /// Returns the global number of emitted pairs. Requires a prior convert().
  std::uint64_t reduce(const ReduceFn& fn);

  /// Locally groups this rank's pairs by key and calls `fn` once per local
  /// group, with no communication (Sandia's compress()). The classic use
  /// is a combiner that shrinks data before the aggregate() exchange.
  /// Returns the global number of emitted pairs.
  std::uint64_t compress(const ReduceFn& fn);

  /// Calls `fn` once per existing KV pair; emissions replace the store
  /// (a map over the MR object's own data, as in the Sandia API).
  using MapKvFn = std::function<void(const KvPair& pair, KeyValue& kv)>;
  std::uint64_t map_kv(const MapKvFn& fn);

  /// Read-only visit of every local pair (Sandia's scan()); purely local,
  /// no communication, the store is unchanged.
  void scan(const std::function<void(const KvPair&)>& fn) const { kv_.for_each(fn); }

  /// Moves all KV pairs to rank 0 (Sandia's gather(1)). Returns global count.
  std::uint64_t gather();

  /// Sorts this rank's KV pairs by key bytes (lexicographic).
  void sort_keys();

  /// Read access to this rank's current KV pairs.
  const KeyValue& kv() const { return kv_; }
  /// Read access to the grouped data (valid after convert()).
  const KeyMultiValue& kmv() const { return kmv_; }

  const MapReduceStats& stats() const { return stats_; }
  mpi::Comm& comm() { return comm_; }

  /// Task ids that exhausted their retry budget in master-worker maps run
  /// with fault tolerance, in increasing order (meaningful on rank 0).
  /// Empty on fully successful runs; non-empty means the KV data is a
  /// partial result.
  const std::vector<std::uint64_t>& failed_tasks() const { return failed_tasks_; }

 private:
  /// One task restored from the map log on resume: its output is already
  /// absorbed on `owner`, so the scheduler must not hand it out again. The
  /// fault-tolerant master records it as committed by `owner` at that
  /// worker's current incarnation, so a later crash of the owner reverts
  /// it exactly like any other committed task.
  using CkptDoneTask = sched::DoneTask;

  /// The sched::Executor this object hands to the scheduler strategies:
  /// maps task execution, staging, commit/discard and crash-reset onto
  /// this object's KeyValue stores and checkpoint journal.
  class ExecImpl;

  std::uint64_t run_map(std::uint64_t ntasks, const MapFn& fn, bool append);
  /// config_.scheduler with Auto resolved from map_style (and ft.enabled).
  sched::Policy resolve_policy() const;
  /// Builds the sched::MapContext (executor, protocol state, restored
  /// tasks) and runs the selected strategy, merging its stats into stats_.
  void run_sched(sched::Policy policy, std::uint64_t ntasks, const AffinityFn* affinity,
                 const MapFn& fn, KeyValue& out, const std::vector<CkptDoneTask>& ckpt_done);
  /// A KeyValue configured with this object's paging policy.
  KeyValue make_kv() const;
  /// The engine recorder, or null when tracing is off (either globally or
  /// via config_.trace_phases).
  trace::Recorder* phase_recorder();
  obs::Registry* metrics() { return comm_.metrics(); }
  /// Runs one map task, wrapped in a Task span when tracing. `span_name`
  /// distinguishes first attempts ("map_task") from retries
  /// ("map_task_retry") so the report can price recovery re-execution.
  void run_task(const MapFn& fn, std::uint64_t task, KeyValue& out, trace::Recorder* rec,
                const char* span_name = "map_task");
  /// Applies the spill cost model after KV growth. `fresh_store` marks a
  /// kv_ that was replaced by a newly built store: its whole over-budget
  /// portion is new I/O, so the high-water mark resets instead of only
  /// charging growth beyond the previous store's peak. `credit_seconds`
  /// is deducted from the charge (spill I/O overlapped with the shuffle
  /// exchange); the charged remainder is traced under `span_name`.
  void charge_spill(bool fresh_store = false, double credit_seconds = 0.0,
                    const char* span_name = "spill");
  std::uint64_t global_count(std::uint64_t local) ;

  // --- checkpoint/restart hooks (all no-ops when no checkpointer) ---
  /// True when this map journals task outputs.
  bool ckpt_active() const { return ckpt_.active; }
  /// Replays this rank's map log for the current cycle into `out` and
  /// reopens the log for appending. With `shared` (remote master-worker
  /// scheduling) the ranks allgather their replayed task ids and the
  /// lowest rank keeps each task; the returned list is the global set of
  /// restored tasks for the master's ledger. Without sharing the returned
  /// list covers only this rank's tasks. With `sharded` (the sharded
  /// steal-ft ledger) and existing shard journals, the journals are the
  /// commit authority: a map-log record only counts when the journal's
  /// surviving decision for that task exists, so corrupting one shard's
  /// journal re-runs only that shard's range.
  std::vector<CkptDoneTask> ckpt_begin_map(std::uint64_t ntasks, KeyValue& out, bool shared,
                                           bool sharded);
  /// Journals one committed task's emissions; flushes when the checkpoint
  /// interval has elapsed.
  void ckpt_record_task(std::uint64_t task, const KeyValue& emitted);
  /// Appends buffered records to the map log and fsyncs it.
  void ckpt_flush();
  /// Final flush + close of the map log for this cycle.
  void ckpt_end_map();
  /// run_task() with journaling: restored tasks are skipped, fresh tasks
  /// run into a scratch store that is journaled and then absorbed.
  void run_task_ckpt(const MapFn& fn, std::uint64_t task, KeyValue& out, trace::Recorder* rec,
                     const char* span_name = "map_task");
  // Sharded-ledger journal passthrough for sched::Executor: replay
  // positions the shard's writer after the last intact record; append is
  // write-ahead (synced before the scheduler sends the matching grant).
  bool ckpt_shard_enabled() const { return ckpt_.active; }
  void ckpt_shard_replay(int shard,
                         const std::function<void(const std::vector<std::byte>&)>& fn);
  void ckpt_shard_append(int shard, const std::vector<std::byte>& payload);

  mpi::Comm& comm_;
  MapReduceConfig config_;
  KeyValue kv_;
  KeyMultiValue kmv_;
  bool have_kmv_ = false;
  std::uint64_t charged_spill_ = 0;  ///< spilled bytes already charged
  MapReduceStats stats_;
  std::vector<std::uint64_t> failed_tasks_;

  // Scheduler transport state (sequence numbers, incarnations, grant and
  // steal replay caches, the steal epoch). This lives on the MapReduce
  // object, not inside one map() call, because delayed or duplicated
  // protocol messages can outlive the map that sent them: sequence numbers
  // must be monotone for the whole life of this object or a stale grant
  // from map N could alias (and answer) a fresh request in map N+1.
  sched::ProtocolState sched_state_;

  /// Per-map journaling state; reset by ckpt_begin_map.
  struct CkptMapState {
    bool active = false;
    std::uint64_t cycle = 0;
    std::unique_ptr<ckpt::RecordWriter> log;
    /// Records encoded but not yet flushed to the log.
    std::vector<std::vector<std::byte>> pending;
    std::uint64_t pending_bytes = 0;
    double last_flush = 0.0;
    /// Tasks whose output was replayed from the log (skip on re-execution).
    std::set<std::uint64_t> restored;
    /// Shard-journal writers owned by this rank's shard ledgers (sharded
    /// steal-ft only), keyed by shard id; opened lazily at replay.
    std::map<int, std::unique_ptr<ckpt::RecordWriter>> shard_logs;
  };
  CkptMapState ckpt_;
  /// Distinguishes durable spill files of the KeyValue stores this object
  /// creates; monotone per rank, so names never collide within a run and
  /// stale files from a killed run are truncated on reuse.
  mutable std::uint64_t ckpt_kv_serial_ = 0;
};

}  // namespace mrbio::mrmpi
