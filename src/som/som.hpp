// Self-Organizing Map: serial reference implementation of the paper's
// Section II-D, both the classic "online" formulation (Eqs. 1-4) and the
// "batch" formulation (Eq. 5) that the parallel implementation builds on.
//
// A map is a rows x cols grid of neurons, each carrying an n-dimensional
// weight vector ("code-vector"); the full weight matrix is the codebook.
// Batch training accumulates, for every neuron j, the numerator
// sum_t h_{b(t) j} x(t) and denominator sum_t h_{b(t) j} over an epoch
// (b(t) = BMU of input t) and replaces the codebook at the epoch end --
// exactly the two arrays the paper's map() tasks accumulate and
// MPI_Reduce() sums.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace mrbio::som {

/// Grid layouts: rectangular lattice or hexagonal (odd rows shifted half a
/// cell, unit spacing between adjacent cells).
enum class GridTopology { Rectangular, Hexagonal };

/// Map geometry. `toroidal` wraps both axes (no map border), a common
/// option for avoiding edge effects on large maps.
struct SomGrid {
  std::size_t rows = 0;
  std::size_t cols = 0;
  GridTopology topology = GridTopology::Rectangular;
  bool toroidal = false;

  std::size_t cells() const { return rows * cols; }
  std::size_t row_of(std::size_t cell) const { return cell / cols; }
  std::size_t col_of(std::size_t cell) const { return cell % cols; }
  /// Squared Euclidean distance between two cells in map coordinates
  /// (topology- and wrap-aware).
  double grid_dist2(std::size_t a, std::size_t b) const;
  /// True if the two cells are lattice neighbours (4-neighbourhood on the
  /// rectangular grid, 6-neighbourhood on the hexagonal one).
  bool adjacent(std::size_t a, std::size_t b) const;
};

/// Neighbourhood kernels: the paper's Gaussian (Eq. 4) and the classic
/// bubble (1 within sigma, 0 outside).
enum class Kernel { Gaussian, Bubble };

/// The codebook: one weight vector per grid cell, row-major by cell index.
class Codebook {
 public:
  Codebook() = default;
  Codebook(SomGrid grid, std::size_t dim);

  const SomGrid& grid() const { return grid_; }
  std::size_t dim() const { return dim_; }
  std::span<float> vector(std::size_t cell) { return weights_.row(cell); }
  std::span<const float> vector(std::size_t cell) const { return weights_.row(cell); }
  Matrix& weights() { return weights_; }
  const Matrix& weights() const { return weights_; }

  /// Uniform random initialization in [lo, hi).
  void init_random(Rng& rng, float lo = 0.0f, float hi = 1.0f);

  /// Linear initialization spanning the plane of the data's two principal
  /// components (the paper's "linearly generated from the first two PCA
  /// eigen-vectors").
  void init_pca(const MatrixView& data);

 private:
  SomGrid grid_;
  std::size_t dim_ = 0;
  Matrix weights_;
};

/// Squared Euclidean distance between an input and a code vector (Eq. 1).
/// Accumulates in the canonical striped order of the SIMD kernel layer
/// (4 double partials over i % 4, combined as (p0+p2)+(p1+p3)), so the
/// result is bit-identical across scalar/SSE4.1/AVX2 dispatch.
double dist2(std::span<const float> a, std::span<const float> b);

/// Best Matching Unit (Eq. 2). Ties break to the lowest cell index so runs
/// are reproducible (the paper breaks ties randomly).
std::size_t find_bmu(const Codebook& cb, std::span<const float> x);

/// BMU plus the runner-up, for the topographic error metric.
std::pair<std::size_t, std::size_t> find_bmu2(const Codebook& cb, std::span<const float> x);

/// Neighbourhood h_{bj} of width sigma (Eq. 4 for the Gaussian kernel).
double neighborhood(const SomGrid& grid, std::size_t bmu, std::size_t j, double sigma,
                    Kernel kernel = Kernel::Gaussian);

/// Training schedule shared by batch and online training.
struct SomParams {
  std::size_t epochs = 10;
  double sigma_start = 0.0;  ///< 0 = max(rows, cols) / 2, the paper's start
  double sigma_end = 1.0;    ///< "width of a single cell"
  double alpha_start = 0.5;  ///< online learning rate, decays linearly
  double alpha_end = 0.01;
  Kernel kernel = Kernel::Gaussian;
};

/// sigma(t) for epoch t of `epochs` (exponential decay start -> end).
double sigma_at(const SomParams& params, const SomGrid& grid, std::size_t epoch);

/// Per-neuron accumulators of Eq. 5 for one epoch. add() may be called
/// from disjoint data shards and merged, which is exactly the parallel
/// decomposition of the paper's Fig. 2.
class BatchAccumulator {
 public:
  BatchAccumulator(SomGrid grid, std::size_t dim);

  /// Accumulates one input vector with the given neighbourhood width.
  /// Returns the BMU's squared distance (for quantization-error tracking).
  double add(const Codebook& cb, std::span<const float> x, double sigma,
             Kernel kernel = Kernel::Gaussian);

  /// Element-wise merge of another shard's accumulators.
  void merge(const BatchAccumulator& other);

  /// Applies Eq. 5, writing new weights into `cb`. Neurons with zero
  /// denominator keep their previous weights.
  void apply(Codebook& cb) const;

  std::span<const float> numerator() const { return {num_.data(), num_.size()}; }
  std::span<const float> denominator() const { return denom_; }
  std::span<float> numerator() { return {num_.data(), num_.size()}; }
  std::span<float> denominator() { return denom_; }

 private:
  SomGrid grid_;
  std::size_t dim_;
  Matrix num_;                ///< cells x dim
  std::vector<float> denom_;  ///< cells
};

/// Progress callback: (epoch, sigma, mean quantization error).
using EpochCallback = std::function<void(std::size_t, double, double)>;

/// Serial batch training (the reference the parallel version must match).
void train_batch(Codebook& cb, const MatrixView& data, const SomParams& params,
                 const EpochCallback& on_epoch = nullptr);

/// Serial online training (Eqs. 1-4), the classic baseline.
void train_online(Codebook& cb, const MatrixView& data, const SomParams& params, Rng& rng);

/// U-matrix: per-cell mean distance to grid neighbours; ridge structure
/// visualizes cluster boundaries (Figs. 7-8).
Matrix u_matrix(const Codebook& cb);

/// Mean distance of each input to its BMU.
double quantization_error(const Codebook& cb, const MatrixView& data);

/// Fraction of inputs whose first and second BMU are not grid neighbours.
double topographic_error(const Codebook& cb, const MatrixView& data);

/// Renders a 3-D codebook as an RGB image (cols = 3 * grid cols), clamping
/// weights to [0,1]; the paper's Fig. 7 visual check.
Matrix codebook_rgb(const Codebook& cb);

/// Component plane: the value of one weight dimension across the map, the
/// classic per-feature SOM visualization (render with write_pgm).
Matrix component_plane(const Codebook& cb, std::size_t dimension);

/// Binary codebook persistence (magic + grid dims + topology + weights).
void save_codebook(const std::string& path, const Codebook& cb);
Codebook load_codebook(const std::string& path);

}  // namespace mrbio::som
