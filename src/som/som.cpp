#include "som/som.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "simd/simd.hpp"

namespace mrbio::som {

namespace {
/// Signed wrap-around delta on a circular axis of length n.
double wrap_delta(double d, double n) {
  if (d > n / 2.0) return d - n;
  if (d < -n / 2.0) return d + n;
  return d;
}
}  // namespace

double SomGrid::grid_dist2(std::size_t a, std::size_t b) const {
  double dr = static_cast<double>(row_of(a)) - static_cast<double>(row_of(b));
  double dc = static_cast<double>(col_of(a)) - static_cast<double>(col_of(b));
  if (topology == GridTopology::Hexagonal) {
    // Odd-row offset layout with unit spacing between adjacent cells.
    dc += 0.5 * (static_cast<double>(row_of(a) % 2) - static_cast<double>(row_of(b) % 2));
    dr *= 0.8660254037844386;  // sqrt(3)/2
    if (toroidal) {
      dr = wrap_delta(dr, static_cast<double>(rows) * 0.8660254037844386);
      dc = wrap_delta(dc, static_cast<double>(cols));
    }
  } else if (toroidal) {
    dr = wrap_delta(dr, static_cast<double>(rows));
    dc = wrap_delta(dc, static_cast<double>(cols));
  }
  return dr * dr + dc * dc;
}

bool SomGrid::adjacent(std::size_t a, std::size_t b) const {
  if (a == b) return false;
  // Unit spacing in both layouts: lattice neighbours sit at distance 1
  // (rectangular 4-neighbourhood; hexagonal 6-neighbourhood).
  return grid_dist2(a, b) <= 1.0001;
}

Codebook::Codebook(SomGrid grid, std::size_t dim)
    : grid_(grid), dim_(dim), weights_(grid.cells(), dim) {
  MRBIO_REQUIRE(grid.rows > 0 && grid.cols > 0, "SOM grid must be non-empty");
  MRBIO_REQUIRE(dim > 0, "SOM dimension must be positive");
}

void Codebook::init_random(Rng& rng, float lo, float hi) {
  for (std::size_t c = 0; c < grid_.cells(); ++c) {
    for (float& w : weights_.row(c)) {
      w = static_cast<float>(rng.uniform(lo, hi));
    }
  }
}

namespace {

/// Column means of a data matrix.
std::vector<double> column_means(const MatrixView& data) {
  std::vector<double> mean(data.cols(), 0.0);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const auto row = data.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) mean[c] += row[c];
  }
  for (double& m : mean) m /= static_cast<double>(data.rows());
  return mean;
}

/// Leading eigenvector of the data covariance via power iteration,
/// deflating `deflate` (may be empty). Returns the scaled eigenvector
/// (unit vector times sqrt(eigenvalue)).
std::vector<double> principal_component(const MatrixView& data,
                                        const std::vector<double>& mean,
                                        const std::vector<double>& deflate) {
  const std::size_t d = data.cols();
  std::vector<double> v(d);
  // Deterministic start: spread of signs to avoid orthogonal-start stalls.
  for (std::size_t i = 0; i < d; ++i) v[i] = (i % 2 == 0) ? 1.0 : -0.5;
  std::vector<double> next(d);
  double eigen = 0.0;
  for (int iter = 0; iter < 50; ++iter) {
    // Project out the deflated direction.
    if (!deflate.empty()) {
      double dot = 0.0;
      double norm2 = 0.0;
      for (std::size_t i = 0; i < d; ++i) {
        dot += v[i] * deflate[i];
        norm2 += deflate[i] * deflate[i];
      }
      if (norm2 > 0.0) {
        for (std::size_t i = 0; i < d; ++i) v[i] -= dot / norm2 * deflate[i];
      }
    }
    // next = Cov * v computed as sum_r (x_r - mean) ((x_r - mean) . v)
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t r = 0; r < data.rows(); ++r) {
      const auto row = data.row(r);
      double dot = 0.0;
      for (std::size_t i = 0; i < d; ++i) dot += (row[i] - mean[i]) * v[i];
      for (std::size_t i = 0; i < d; ++i) next[i] += (row[i] - mean[i]) * dot;
    }
    double norm = 0.0;
    for (const double x : next) norm += x * x;
    norm = std::sqrt(norm);
    if (norm == 0.0) break;
    eigen = norm / static_cast<double>(data.rows());
    for (std::size_t i = 0; i < d; ++i) v[i] = next[i] / norm;
  }
  const double scale = std::sqrt(std::max(eigen, 0.0));
  for (double& x : v) x *= scale;
  return v;
}

}  // namespace

void Codebook::init_pca(const MatrixView& data) {
  MRBIO_REQUIRE(data.cols() == dim_, "data dimension ", data.cols(),
                " does not match codebook dimension ", dim_);
  MRBIO_REQUIRE(data.rows() >= 2, "PCA initialization needs at least 2 inputs");
  const auto mean = column_means(data);
  const auto pc1 = principal_component(data, mean, {});
  const auto pc2 = principal_component(data, mean, pc1);

  // Span [-2, 2] standard deviations across the grid in each direction.
  for (std::size_t cell = 0; cell < grid_.cells(); ++cell) {
    const double u =
        grid_.rows > 1
            ? 4.0 * (static_cast<double>(grid_.row_of(cell)) / (grid_.rows - 1) - 0.5)
            : 0.0;
    const double v =
        grid_.cols > 1
            ? 4.0 * (static_cast<double>(grid_.col_of(cell)) / (grid_.cols - 1) - 0.5)
            : 0.0;
    auto w = weights_.row(cell);
    for (std::size_t i = 0; i < dim_; ++i) {
      w[i] = static_cast<float>(mean[i] + u * pc1[i] + v * pc2[i]);
    }
  }
}

double dist2(std::span<const float> a, std::span<const float> b) {
  MRBIO_CHECK(a.size() == b.size(), "dist2 dimension mismatch");
  // Canonical striped reduction (4 double partials over i % 4, combined
  // as (p0+p2)+(p1+p3)): every dispatched ISA variant accumulates in this
  // exact order, so distances are bit-identical across --simd levels.
  return simd::kernels().dist2_f32(a.data(), b.data(), a.size());
}

std::size_t find_bmu(const Codebook& cb, std::span<const float> x) {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < cb.grid().cells(); ++c) {
    const double d = dist2(x, cb.vector(c));
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

std::pair<std::size_t, std::size_t> find_bmu2(const Codebook& cb, std::span<const float> x) {
  std::size_t b1 = 0;
  std::size_t b2 = 0;
  double d1 = std::numeric_limits<double>::infinity();
  double d2 = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < cb.grid().cells(); ++c) {
    const double d = dist2(x, cb.vector(c));
    if (d < d1) {
      d2 = d1;
      b2 = b1;
      d1 = d;
      b1 = c;
    } else if (d < d2) {
      d2 = d;
      b2 = c;
    }
  }
  return {b1, b2};
}

double neighborhood(const SomGrid& grid, std::size_t bmu, std::size_t j, double sigma,
                    Kernel kernel) {
  MRBIO_CHECK(sigma > 0.0, "neighborhood width must be positive");
  const double d2 = grid.grid_dist2(bmu, j);
  if (kernel == Kernel::Bubble) return d2 <= sigma * sigma ? 1.0 : 0.0;
  return std::exp(-d2 / (2.0 * sigma * sigma));
}

double sigma_at(const SomParams& params, const SomGrid& grid, std::size_t epoch) {
  const double start = params.sigma_start > 0.0
                           ? params.sigma_start
                           : std::max(grid.rows, grid.cols) / 2.0;
  const double end = std::max(params.sigma_end, 1e-3);
  if (params.epochs <= 1) return start;
  const double frac = static_cast<double>(epoch) / static_cast<double>(params.epochs - 1);
  return start * std::pow(end / start, frac);
}

BatchAccumulator::BatchAccumulator(SomGrid grid, std::size_t dim)
    : grid_(grid), dim_(dim), num_(grid.cells(), dim), denom_(grid.cells(), 0.0f) {}

double BatchAccumulator::add(const Codebook& cb, std::span<const float> x, double sigma,
                             Kernel kernel) {
  const std::size_t bmu = find_bmu(cb, x);
  const double qerr = dist2(x, cb.vector(bmu));
  const simd::Kernels& kern = simd::kernels();
  for (std::size_t j = 0; j < grid_.cells(); ++j) {
    const double h = neighborhood(grid_, bmu, j, sigma, kernel);
    kern.scaled_accum_f32(num_.row(j).data(), x.data(), dim_, h);
    denom_[j] += static_cast<float>(h);
  }
  return qerr;
}

void BatchAccumulator::merge(const BatchAccumulator& other) {
  MRBIO_CHECK(num_.size() == other.num_.size() && denom_.size() == other.denom_.size(),
              "BatchAccumulator shape mismatch");
  const simd::Kernels& kern = simd::kernels();
  kern.add_f32(num_.data(), other.num_.data(), num_.size());
  kern.add_f32(denom_.data(), other.denom_.data(), denom_.size());
}

void BatchAccumulator::apply(Codebook& cb) const {
  const simd::Kernels& kern = simd::kernels();
  for (std::size_t j = 0; j < grid_.cells(); ++j) {
    if (denom_[j] <= 0.0f) continue;
    kern.scale_assign_f32(cb.vector(j).data(), num_.row(j).data(), dim_, denom_[j]);
  }
}

void train_batch(Codebook& cb, const MatrixView& data, const SomParams& params,
                 const EpochCallback& on_epoch) {
  MRBIO_REQUIRE(data.cols() == cb.dim(), "data dimension mismatch");
  for (std::size_t epoch = 0; epoch < params.epochs; ++epoch) {
    const double sigma = sigma_at(params, cb.grid(), epoch);
    BatchAccumulator acc(cb.grid(), cb.dim());
    double qerr = 0.0;
    for (std::size_t r = 0; r < data.rows(); ++r) {
      qerr += acc.add(cb, data.row(r), sigma, params.kernel);
    }
    acc.apply(cb);
    if (on_epoch) {
      on_epoch(epoch, sigma, data.rows() > 0 ? qerr / static_cast<double>(data.rows()) : 0.0);
    }
  }
}

void train_online(Codebook& cb, const MatrixView& data, const SomParams& params, Rng& rng) {
  MRBIO_REQUIRE(data.cols() == cb.dim(), "data dimension mismatch");
  const std::size_t total_steps = params.epochs * data.rows();
  std::size_t step = 0;
  for (std::size_t epoch = 0; epoch < params.epochs; ++epoch) {
    const double sigma = sigma_at(params, cb.grid(), epoch);
    for (std::size_t r = 0; r < data.rows(); ++r, ++step) {
      // Present inputs in random order, the classic online schedule.
      const auto pick = static_cast<std::size_t>(rng.below(data.rows()));
      const auto x = data.row(pick);
      const std::size_t bmu = find_bmu(cb, x);
      const double alpha =
          params.alpha_start +
          (params.alpha_end - params.alpha_start) *
              (total_steps > 1 ? static_cast<double>(step) / (total_steps - 1) : 0.0);
      const simd::Kernels& kern = simd::kernels();
      for (std::size_t j = 0; j < cb.grid().cells(); ++j) {
        const double h = neighborhood(cb.grid(), bmu, j, sigma, params.kernel);
        if (h < 1e-6) continue;
        kern.online_update_f32(cb.vector(j).data(), x.data(), cb.dim(), alpha * h);
      }
    }
  }
}

Matrix u_matrix(const Codebook& cb) {
  const SomGrid& g = cb.grid();
  Matrix u(g.rows, g.cols);
  // Topology-aware: averages over the lattice neighbours of each cell
  // (4 on the rectangular grid, 6 on the hexagonal one, wrapped when
  // toroidal). O(cells^2) adjacency scan; maps are small.
  for (std::size_t cell = 0; cell < g.cells(); ++cell) {
    double sum = 0.0;
    int n = 0;
    for (std::size_t other = 0; other < g.cells(); ++other) {
      if (!g.adjacent(cell, other)) continue;
      sum += std::sqrt(dist2(cb.vector(cell), cb.vector(other)));
      ++n;
    }
    u(g.row_of(cell), g.col_of(cell)) = static_cast<float>(n > 0 ? sum / n : 0.0);
  }
  return u;
}

double quantization_error(const Codebook& cb, const MatrixView& data) {
  MRBIO_REQUIRE(data.rows() > 0, "quantization error of empty data");
  double total = 0.0;
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const auto x = data.row(r);
    total += std::sqrt(dist2(x, cb.vector(find_bmu(cb, x))));
  }
  return total / static_cast<double>(data.rows());
}

double topographic_error(const Codebook& cb, const MatrixView& data) {
  MRBIO_REQUIRE(data.rows() > 0, "topographic error of empty data");
  std::size_t errors = 0;
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const auto [b1, b2] = find_bmu2(cb, data.row(r));
    // For the rectangular grid count diagonal neighbours as adjacent too
    // (the conventional 8-neighbourhood criterion); hexagonal cells have
    // all six lattice neighbours at distance 1.
    const double limit = cb.grid().topology == GridTopology::Rectangular ? 2.0 : 1.0001;
    if (cb.grid().grid_dist2(b1, b2) > limit) ++errors;
  }
  return static_cast<double>(errors) / static_cast<double>(data.rows());
}

Matrix codebook_rgb(const Codebook& cb) {
  MRBIO_REQUIRE(cb.dim() == 3, "codebook_rgb needs a 3-D codebook, got dim ", cb.dim());
  const SomGrid& g = cb.grid();
  Matrix img(g.rows, g.cols * 3);
  for (std::size_t cell = 0; cell < g.cells(); ++cell) {
    const auto w = cb.vector(cell);
    for (std::size_t ch = 0; ch < 3; ++ch) {
      img(g.row_of(cell), g.col_of(cell) * 3 + ch) = std::clamp(w[ch], 0.0f, 1.0f);
    }
  }
  return img;
}

Matrix component_plane(const Codebook& cb, std::size_t dimension) {
  MRBIO_REQUIRE(dimension < cb.dim(), "component plane dimension ", dimension,
                " out of ", cb.dim());
  const SomGrid& g = cb.grid();
  Matrix plane(g.rows, g.cols);
  for (std::size_t cell = 0; cell < g.cells(); ++cell) {
    plane(g.row_of(cell), g.col_of(cell)) = cb.vector(cell)[dimension];
  }
  return plane;
}

namespace {
constexpr std::uint64_t kCodebookMagic = 0x4d52534f4d43420aULL;  // "MRSOMCB\n"
}

void save_codebook(const std::string& path, const Codebook& cb) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  MRBIO_REQUIRE(f != nullptr, "cannot open for writing: ", path);
  const std::uint64_t header[6] = {
      kCodebookMagic,
      cb.grid().rows,
      cb.grid().cols,
      cb.dim(),
      static_cast<std::uint64_t>(cb.grid().topology),
      cb.grid().toroidal ? 1ull : 0ull};
  std::size_t ok = std::fwrite(header, sizeof(std::uint64_t), 6, f);
  ok += std::fwrite(cb.weights().data(), sizeof(float), cb.weights().size(), f);
  std::fclose(f);
  MRBIO_REQUIRE(ok == 6 + cb.weights().size(), "short write to ", path);
}

Codebook load_codebook(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  MRBIO_REQUIRE(f != nullptr, "cannot open: ", path);
  std::uint64_t header[6] = {};
  std::size_t got = std::fread(header, sizeof(std::uint64_t), 6, f);
  if (got != 6 || header[0] != kCodebookMagic) {
    std::fclose(f);
    throw InputError("not a mrbio SOM codebook: " + path);
  }
  SomGrid grid{static_cast<std::size_t>(header[1]), static_cast<std::size_t>(header[2])};
  grid.topology = static_cast<GridTopology>(header[4]);
  grid.toroidal = header[5] != 0;
  Codebook cb(grid, static_cast<std::size_t>(header[3]));
  got = std::fread(cb.weights().data(), sizeof(float), cb.weights().size(), f);
  std::fclose(f);
  MRBIO_REQUIRE(got == cb.weights().size(), "truncated codebook file ", path);
  return cb;
}

}  // namespace mrbio::som
