// Per-rank, virtual-time span recorder for the simulated cluster.
//
// Every layer of the stack can attach named spans to the rank that
// executed them: the DES engine records raw compute/send/recv charges,
// mpi::Comm tags collective participation, mrmpi::MapReduce wraps each
// phase, and the BLAST/SOM drivers annotate application-level work.
// Timestamps are seconds read from the active rt::Clock — virtual time
// on the DES backend, steady-clock seconds since run start on the native
// backend — so recording never perturbs the simulation: with a null
// recorder the hooks compile down to a pointer test.
//
// The recorder feeds two consumers: a Chrome `chrome://tracing` JSON
// writer (one lane per rank) and an aggregated per-phase metrics table
// (busy/idle/comm/io seconds, master service latency, per-worker task
// counts) that subsumes the old ad-hoc IntervalTracker numbers.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace mrbio::trace {

enum class Category : std::uint8_t {
  Compute,     ///< raw virtual-time charge from Process::compute (Full level)
  Send,        ///< sender-side overhead of one message (Full level)
  RecvWait,    ///< blocking receive, post to completion (Full level)
  Collective,  ///< participation in an mpi::Comm collective
  Phase,       ///< one mrmpi phase: map/aggregate/convert/reduce/gather/...
  Task,        ///< one map task executed by this rank
  App,         ///< application-level useful work (search, accumulate, ...)
  Io,          ///< virtual I/O time (DB volume load, out-of-core spill)
  Fault,       ///< fault-recovery time: reassignment waits, retry backoff
};

const char* category_name(Category cat);

/// Inverse of category_name; throws mrbio::InputError on unknown names.
Category category_from_name(std::string_view name);

/// How much detail to record. Phases keeps event counts proportional to
/// tasks + phases (safe at thousands of ranks); Full adds one event per
/// message and per compute charge, which is O(ranks^2) per alltoallv.
enum class Level : std::uint8_t { Phases, Full };

struct Event {
  const char* name = "";  ///< static string; never freed
  Category cat = Category::Compute;
  int rank = 0;
  double t0 = 0.0;  ///< virtual seconds
  double t1 = 0.0;
  std::uint64_t kv_pairs = 0;  ///< KV pairs touched (phase spans)
  std::uint64_t bytes = 0;     ///< nominal bytes moved or spilled
  // Happens-before edge data (Send/RecvWait events at Full level). A
  // matching send/recv pair shares `seq`, the engine's global send
  // sequence number; 0 means "no edge". `peer` is the destination rank of
  // a send / matched source rank of a recv. `dep` is the message's
  // arrival time at the receiver, letting the critical-path analyzer tell
  // sender-bound waits (arrival after the post) from receiver-bound ones.
  int peer = -1;
  std::uint64_t seq = 0;
  double dep = 0.0;
};

class Recorder {
 public:
  explicit Recorder(int nranks, Level level = Level::Phases);

  int nranks() const { return static_cast<int>(per_rank_.size()); }
  Level level() const { return level_; }
  bool full() const { return level_ == Level::Full; }

  /// Append a span to `rank`'s lane. Only the thread currently running
  /// that rank may call this; per-rank vectors then need no lock. Both
  /// backends satisfy it: the DES schedules one rank at a time and hands
  /// over through a mutex, and the native backend dedicates one thread to
  /// each rank for the whole run (lanes are disjoint, so concurrent
  /// appends never touch the same vector).
  void add(int rank, Category cat, const char* name, double t0, double t1,
           std::uint64_t kv_pairs = 0, std::uint64_t bytes = 0);

  /// add() plus happens-before edge data (see Event::peer/seq/dep).
  void add_edge(int rank, Category cat, const char* name, double t0, double t1,
                std::uint64_t bytes, int peer, std::uint64_t seq, double dep);

  /// Appends a fully-populated event to its rank's lane (trace loader).
  void add_event(const Event& e);

  const std::vector<Event>& rank_events(int rank) const;
  std::vector<Event> events() const;  ///< all ranks, rank-major order
  std::size_t size() const;

  /// Engine::run stores each rank's final virtual time here so idle
  /// time can be charged up to the end of the run.
  void set_final_time(int rank, double t);
  const std::vector<double>& final_times() const { return final_times_; }

  void clear();

 private:
  Level level_;
  std::vector<std::vector<Event>> per_rank_;
  std::vector<double> final_times_;
};

// ---------------------------------------------------------------------------
// Aggregated metrics

struct RankMetrics {
  double busy_seconds = 0.0;  ///< union of Compute/App/Io/Task spans
  double io_seconds = 0.0;    ///< union of Io spans (subset of busy)
  double comm_seconds = 0.0;  ///< Send/RecvWait/Collective minus busy overlap
  double idle_seconds = 0.0;  ///< final_time - busy - comm
  double final_time = 0.0;
  std::uint64_t tasks = 0;  ///< number of Task spans this rank executed
};

struct PhaseRow {
  std::string name;
  Category cat = Category::Phase;
  std::uint64_t count = 0;
  double seconds = 0.0;       ///< summed span durations across ranks
  double max_seconds = 0.0;   ///< longest single span
  std::uint64_t kv_pairs = 0;
  std::uint64_t bytes = 0;
};

struct Summary {
  std::vector<RankMetrics> ranks;
  std::vector<PhaseRow> phases;  ///< aggregated by (category, name)

  double total_busy() const;
  double total_comm() const;
  double total_idle() const;
  const PhaseRow* phase(Category cat, std::string_view name) const;
};

Summary summarize(const Recorder& rec);

/// Print the per-phase table and per-rank metrics (first `max_rank_rows`
/// ranks plus an "all" aggregate row) in a fixed-width layout.
void print_summary(std::FILE* out, const Summary& summary,
                   std::size_t max_rank_rows = 16);

/// Bucketized cluster utilization from spans matching (cat, name) — the
/// same arithmetic as workload::UtilizationTracker::series, so a trace
/// of App/"search" spans reproduces the legacy Fig. 5 numbers.
std::vector<double> utilization_series(const Recorder& rec, Category cat,
                                       std::string_view name,
                                       double bucket_seconds, int total_cores);

/// Summed duration of all spans matching (cat, name) across ranks.
double total_seconds(const Recorder& rec, Category cat, std::string_view name);

/// Chrome `chrome://tracing` JSON: one pid, one tid (lane) per rank,
/// "X" complete events with kv_pairs/bytes args, microsecond timestamps.
/// Lossless reload data rides along in the args (`t0`/`t1` in full-precision
/// seconds, peer/seq/dep edges) plus one `mrbio_final_time` metadata record
/// per rank, so read_chrome_trace can reconstruct the Recorder exactly.
void write_chrome_trace(const std::string& path, const Recorder& rec);

/// A Recorder reconstructed from write_chrome_trace output. Span names in
/// the JSON are dynamic, so the loader interns them here; the deque keeps
/// the Event name pointers stable across moves.
struct LoadedTrace {
  Recorder recorder{1};
  std::deque<std::string> name_pool;
};

LoadedTrace read_chrome_trace(const std::string& path);

}  // namespace mrbio::trace
