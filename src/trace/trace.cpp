#include "trace/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <utility>

#include "common/error.hpp"

namespace mrbio::trace {

const char* category_name(Category cat) {
  switch (cat) {
    case Category::Compute: return "compute";
    case Category::Send: return "send";
    case Category::RecvWait: return "recv";
    case Category::Collective: return "collective";
    case Category::Phase: return "phase";
    case Category::Task: return "task";
    case Category::App: return "app";
    case Category::Io: return "io";
  }
  return "?";
}

Recorder::Recorder(int nranks, Level level) : level_(level) {
  MRBIO_REQUIRE(nranks > 0, "Recorder needs at least one rank, got ", nranks);
  per_rank_.resize(static_cast<std::size_t>(nranks));
  final_times_.assign(static_cast<std::size_t>(nranks), 0.0);
}

void Recorder::add(int rank, Category cat, const char* name, double t0, double t1,
                   std::uint64_t kv_pairs, std::uint64_t bytes) {
  MRBIO_CHECK(rank >= 0 && rank < nranks(), "Recorder::add rank out of range");
  per_rank_[static_cast<std::size_t>(rank)].push_back(
      Event{name, cat, rank, t0, t1, kv_pairs, bytes});
}

const std::vector<Event>& Recorder::rank_events(int rank) const {
  MRBIO_CHECK(rank >= 0 && rank < nranks(), "Recorder::rank_events rank out of range");
  return per_rank_[static_cast<std::size_t>(rank)];
}

std::vector<Event> Recorder::events() const {
  std::vector<Event> all;
  all.reserve(size());
  for (const auto& lane : per_rank_) all.insert(all.end(), lane.begin(), lane.end());
  return all;
}

std::size_t Recorder::size() const {
  std::size_t n = 0;
  for (const auto& lane : per_rank_) n += lane.size();
  return n;
}

void Recorder::set_final_time(int rank, double t) {
  MRBIO_CHECK(rank >= 0 && rank < nranks(), "Recorder::set_final_time rank out of range");
  final_times_[static_cast<std::size_t>(rank)] = t;
}

void Recorder::clear() {
  for (auto& lane : per_rank_) lane.clear();
  final_times_.assign(final_times_.size(), 0.0);
}

namespace {

using Interval = std::pair<double, double>;

// Merge overlapping intervals in place; input need not be sorted.
void merge_intervals(std::vector<Interval>& iv) {
  if (iv.empty()) return;
  std::sort(iv.begin(), iv.end());
  std::size_t out = 0;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first <= iv[out].second) {
      iv[out].second = std::max(iv[out].second, iv[i].second);
    } else {
      iv[++out] = iv[i];
    }
  }
  iv.resize(out + 1);
}

double measure(const std::vector<Interval>& merged) {
  double total = 0.0;
  for (const auto& [a, b] : merged) total += b - a;
  return total;
}

// Total length of `iv` (merged) not covered by `cover` (merged).
double measure_minus(const std::vector<Interval>& iv, const std::vector<Interval>& cover) {
  double total = 0.0;
  std::size_t c = 0;
  for (const auto& [a, b] : iv) {
    double pos = a;
    while (c < cover.size() && cover[c].second <= pos) ++c;
    std::size_t k = c;
    while (pos < b) {
      if (k >= cover.size() || cover[k].first >= b) {
        total += b - pos;
        break;
      }
      if (cover[k].first > pos) total += cover[k].first - pos;
      pos = std::max(pos, cover[k].second);
      ++k;
    }
  }
  return total;
}

bool is_busy_cat(Category c) {
  return c == Category::Compute || c == Category::App || c == Category::Io ||
         c == Category::Task;
}

bool is_comm_cat(Category c) {
  return c == Category::Send || c == Category::RecvWait || c == Category::Collective;
}

}  // namespace

double Summary::total_busy() const {
  double t = 0.0;
  for (const auto& r : ranks) t += r.busy_seconds;
  return t;
}

double Summary::total_comm() const {
  double t = 0.0;
  for (const auto& r : ranks) t += r.comm_seconds;
  return t;
}

double Summary::total_idle() const {
  double t = 0.0;
  for (const auto& r : ranks) t += r.idle_seconds;
  return t;
}

const PhaseRow* Summary::phase(Category cat, std::string_view name) const {
  for (const auto& row : phases) {
    if (row.cat == cat && row.name == name) return &row;
  }
  return nullptr;
}

Summary summarize(const Recorder& rec) {
  Summary s;
  s.ranks.resize(static_cast<std::size_t>(rec.nranks()));
  // Keyed by (category, name) so e.g. an Io "spill" row never merges
  // with a hypothetical App "spill" row.
  std::map<std::pair<int, std::string>, PhaseRow> rows;

  for (int r = 0; r < rec.nranks(); ++r) {
    std::vector<Interval> busy, io, comm;
    RankMetrics& m = s.ranks[static_cast<std::size_t>(r)];
    for (const Event& e : rec.rank_events(r)) {
      if (is_busy_cat(e.cat)) busy.emplace_back(e.t0, e.t1);
      if (e.cat == Category::Io) io.emplace_back(e.t0, e.t1);
      if (is_comm_cat(e.cat)) comm.emplace_back(e.t0, e.t1);
      if (e.cat == Category::Task) ++m.tasks;
      m.final_time = std::max(m.final_time, e.t1);

      auto& row = rows[{static_cast<int>(e.cat), e.name}];
      if (row.count == 0) {
        row.name = e.name;
        row.cat = e.cat;
      }
      ++row.count;
      row.seconds += e.t1 - e.t0;
      row.max_seconds = std::max(row.max_seconds, e.t1 - e.t0);
      row.kv_pairs += e.kv_pairs;
      row.bytes += e.bytes;
    }
    merge_intervals(busy);
    merge_intervals(io);
    merge_intervals(comm);
    m.busy_seconds = measure(busy);
    m.io_seconds = measure(io);
    m.comm_seconds = measure_minus(comm, busy);
    if (r < static_cast<int>(rec.final_times().size())) {
      m.final_time = std::max(m.final_time, rec.final_times()[static_cast<std::size_t>(r)]);
    }
    m.idle_seconds = std::max(0.0, m.final_time - m.busy_seconds - m.comm_seconds);
  }

  s.phases.reserve(rows.size());
  for (auto& [key, row] : rows) s.phases.push_back(std::move(row));
  std::sort(s.phases.begin(), s.phases.end(),
            [](const PhaseRow& a, const PhaseRow& b) { return a.seconds > b.seconds; });
  return s;
}

void print_summary(std::FILE* out, const Summary& summary, std::size_t max_rank_rows) {
  std::fprintf(out, "%-10s %-16s %8s %12s %12s %12s %14s\n", "category", "span", "count",
               "seconds", "max(s)", "kv_pairs", "bytes");
  for (const auto& row : summary.phases) {
    std::fprintf(out, "%-10s %-16s %8" PRIu64 " %12.6f %12.6f %12" PRIu64 " %14" PRIu64 "\n",
                 category_name(row.cat), row.name.c_str(), row.count, row.seconds,
                 row.max_seconds, row.kv_pairs, row.bytes);
  }
  std::fprintf(out, "\n%-6s %12s %12s %12s %12s %8s\n", "rank", "busy(s)", "io(s)",
               "comm(s)", "idle(s)", "tasks");
  const std::size_t shown = std::min(max_rank_rows, summary.ranks.size());
  for (std::size_t r = 0; r < shown; ++r) {
    const RankMetrics& m = summary.ranks[r];
    std::fprintf(out, "%-6zu %12.6f %12.6f %12.6f %12.6f %8" PRIu64 "\n", r,
                 m.busy_seconds, m.io_seconds, m.comm_seconds, m.idle_seconds, m.tasks);
  }
  if (shown < summary.ranks.size()) {
    std::fprintf(out, "... (%zu more ranks)\n", summary.ranks.size() - shown);
  }
  double io = 0.0;
  std::uint64_t tasks = 0;
  for (const auto& m : summary.ranks) {
    io += m.io_seconds;
    tasks += m.tasks;
  }
  std::fprintf(out, "%-6s %12.6f %12.6f %12.6f %12.6f %8" PRIu64 "\n", "all",
               summary.total_busy(), io, summary.total_comm(), summary.total_idle(), tasks);
}

std::vector<double> utilization_series(const Recorder& rec, Category cat,
                                       std::string_view name, double bucket_seconds,
                                       int total_cores) {
  // Mirrors workload::UtilizationTracker::series bucket arithmetic so a
  // trace of the same intervals yields bit-identical utilization.
  MRBIO_REQUIRE(bucket_seconds > 0.0 && total_cores > 0, "bad utilization series args");
  double horizon = 0.0;
  for (int r = 0; r < rec.nranks(); ++r) {
    for (const Event& e : rec.rank_events(r)) {
      if (e.cat == cat && name == e.name) horizon = std::max(horizon, e.t1);
    }
  }
  if (horizon <= 0.0) return {};
  const auto nbuckets =
      static_cast<std::size_t>(std::ceil(horizon / bucket_seconds));
  std::vector<double> busy(nbuckets, 0.0);
  for (int r = 0; r < rec.nranks(); ++r) {
    for (const Event& e : rec.rank_events(r)) {
      if (e.cat != cat || name != e.name) continue;
      const auto first = static_cast<std::size_t>(e.t0 / bucket_seconds);
      const auto last = static_cast<std::size_t>(e.t1 / bucket_seconds);
      for (std::size_t b = first; b <= last && b < nbuckets; ++b) {
        const double lo = std::max(e.t0, static_cast<double>(b) * bucket_seconds);
        const double hi =
            std::min(e.t1, static_cast<double>(b + 1) * bucket_seconds);
        if (hi > lo) busy[b] += hi - lo;
      }
    }
  }
  const double denom = bucket_seconds * total_cores;
  for (double& v : busy) v /= denom;
  return busy;
}

double total_seconds(const Recorder& rec, Category cat, std::string_view name) {
  double total = 0.0;
  for (int r = 0; r < rec.nranks(); ++r) {
    for (const Event& e : rec.rank_events(r)) {
      if (e.cat == cat && name == e.name) total += e.t1 - e.t0;
    }
  }
  return total;
}

void write_chrome_trace(const std::string& path, const Recorder& rec) {
  std::ofstream out(path, std::ios::trunc);
  MRBIO_REQUIRE(out.good(), "cannot open trace output: ", path);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (int r = 0; r < rec.nranks(); ++r) {
    std::snprintf(buf, sizeof buf,
                  "%s\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
                  "\"args\":{\"name\":\"rank %d\"}}",
                  first ? "" : ",", r, r);
    out << buf;
    first = false;
  }
  for (int r = 0; r < rec.nranks(); ++r) {
    for (const Event& e : rec.rank_events(r)) {
      // Span names are static identifier strings, so no JSON escaping.
      std::snprintf(buf, sizeof buf,
                    ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,"
                    "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"kv_pairs\":%" PRIu64
                    ",\"bytes\":%" PRIu64 "}}",
                    e.name, category_name(e.cat), e.rank, e.t0 * 1e6,
                    (e.t1 - e.t0) * 1e6, e.kv_pairs, e.bytes);
      out << buf;
    }
  }
  out << "\n]}\n";
  MRBIO_REQUIRE(out.good(), "failed writing trace output: ", path);
}

}  // namespace mrbio::trace
