#include "trace/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <utility>

#include "common/error.hpp"

namespace mrbio::trace {

const char* category_name(Category cat) {
  switch (cat) {
    case Category::Compute: return "compute";
    case Category::Send: return "send";
    case Category::RecvWait: return "recv";
    case Category::Collective: return "collective";
    case Category::Phase: return "phase";
    case Category::Task: return "task";
    case Category::App: return "app";
    case Category::Io: return "io";
    case Category::Fault: return "fault";
  }
  return "?";
}

Category category_from_name(std::string_view name) {
  for (const Category cat :
       {Category::Compute, Category::Send, Category::RecvWait, Category::Collective,
        Category::Phase, Category::Task, Category::App, Category::Io, Category::Fault}) {
    if (name == category_name(cat)) return cat;
  }
  throw InputError("unknown trace category: " + std::string(name));
}

Recorder::Recorder(int nranks, Level level) : level_(level) {
  MRBIO_REQUIRE(nranks > 0, "Recorder needs at least one rank, got ", nranks);
  per_rank_.resize(static_cast<std::size_t>(nranks));
  final_times_.assign(static_cast<std::size_t>(nranks), 0.0);
}

void Recorder::add(int rank, Category cat, const char* name, double t0, double t1,
                   std::uint64_t kv_pairs, std::uint64_t bytes) {
  MRBIO_CHECK(rank >= 0 && rank < nranks(), "Recorder::add rank out of range");
  per_rank_[static_cast<std::size_t>(rank)].push_back(
      Event{name, cat, rank, t0, t1, kv_pairs, bytes, -1, 0, 0.0});
}

void Recorder::add_edge(int rank, Category cat, const char* name, double t0, double t1,
                        std::uint64_t bytes, int peer, std::uint64_t seq, double dep) {
  MRBIO_CHECK(rank >= 0 && rank < nranks(), "Recorder::add_edge rank out of range");
  per_rank_[static_cast<std::size_t>(rank)].push_back(
      Event{name, cat, rank, t0, t1, 0, bytes, peer, seq, dep});
}

void Recorder::add_event(const Event& e) {
  MRBIO_CHECK(e.rank >= 0 && e.rank < nranks(), "Recorder::add_event rank out of range");
  per_rank_[static_cast<std::size_t>(e.rank)].push_back(e);
}

const std::vector<Event>& Recorder::rank_events(int rank) const {
  MRBIO_CHECK(rank >= 0 && rank < nranks(), "Recorder::rank_events rank out of range");
  return per_rank_[static_cast<std::size_t>(rank)];
}

std::vector<Event> Recorder::events() const {
  std::vector<Event> all;
  all.reserve(size());
  for (const auto& lane : per_rank_) all.insert(all.end(), lane.begin(), lane.end());
  return all;
}

std::size_t Recorder::size() const {
  std::size_t n = 0;
  for (const auto& lane : per_rank_) n += lane.size();
  return n;
}

void Recorder::set_final_time(int rank, double t) {
  MRBIO_CHECK(rank >= 0 && rank < nranks(), "Recorder::set_final_time rank out of range");
  final_times_[static_cast<std::size_t>(rank)] = t;
}

void Recorder::clear() {
  for (auto& lane : per_rank_) lane.clear();
  final_times_.assign(final_times_.size(), 0.0);
}

namespace {

using Interval = std::pair<double, double>;

// Merge overlapping intervals in place; input need not be sorted.
void merge_intervals(std::vector<Interval>& iv) {
  if (iv.empty()) return;
  std::sort(iv.begin(), iv.end());
  std::size_t out = 0;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first <= iv[out].second) {
      iv[out].second = std::max(iv[out].second, iv[i].second);
    } else {
      iv[++out] = iv[i];
    }
  }
  iv.resize(out + 1);
}

double measure(const std::vector<Interval>& merged) {
  double total = 0.0;
  for (const auto& [a, b] : merged) total += b - a;
  return total;
}

// Total length of `iv` (merged) not covered by `cover` (merged).
double measure_minus(const std::vector<Interval>& iv, const std::vector<Interval>& cover) {
  double total = 0.0;
  std::size_t c = 0;
  for (const auto& [a, b] : iv) {
    double pos = a;
    while (c < cover.size() && cover[c].second <= pos) ++c;
    std::size_t k = c;
    while (pos < b) {
      if (k >= cover.size() || cover[k].first >= b) {
        total += b - pos;
        break;
      }
      if (cover[k].first > pos) total += cover[k].first - pos;
      pos = std::max(pos, cover[k].second);
      ++k;
    }
  }
  return total;
}

bool is_busy_cat(Category c) {
  return c == Category::Compute || c == Category::App || c == Category::Io ||
         c == Category::Task;
}

bool is_comm_cat(Category c) {
  return c == Category::Send || c == Category::RecvWait || c == Category::Collective;
}

}  // namespace

double Summary::total_busy() const {
  double t = 0.0;
  for (const auto& r : ranks) t += r.busy_seconds;
  return t;
}

double Summary::total_comm() const {
  double t = 0.0;
  for (const auto& r : ranks) t += r.comm_seconds;
  return t;
}

double Summary::total_idle() const {
  double t = 0.0;
  for (const auto& r : ranks) t += r.idle_seconds;
  return t;
}

const PhaseRow* Summary::phase(Category cat, std::string_view name) const {
  for (const auto& row : phases) {
    if (row.cat == cat && row.name == name) return &row;
  }
  return nullptr;
}

Summary summarize(const Recorder& rec) {
  Summary s;
  s.ranks.resize(static_cast<std::size_t>(rec.nranks()));
  // Keyed by (category, name) so e.g. an Io "spill" row never merges
  // with a hypothetical App "spill" row.
  std::map<std::pair<int, std::string>, PhaseRow> rows;

  for (int r = 0; r < rec.nranks(); ++r) {
    std::vector<Interval> busy, io, comm;
    RankMetrics& m = s.ranks[static_cast<std::size_t>(r)];
    for (const Event& e : rec.rank_events(r)) {
      if (is_busy_cat(e.cat)) busy.emplace_back(e.t0, e.t1);
      if (e.cat == Category::Io) io.emplace_back(e.t0, e.t1);
      if (is_comm_cat(e.cat)) comm.emplace_back(e.t0, e.t1);
      if (e.cat == Category::Task) ++m.tasks;
      m.final_time = std::max(m.final_time, e.t1);

      auto& row = rows[{static_cast<int>(e.cat), e.name}];
      if (row.count == 0) {
        row.name = e.name;
        row.cat = e.cat;
      }
      ++row.count;
      row.seconds += e.t1 - e.t0;
      row.max_seconds = std::max(row.max_seconds, e.t1 - e.t0);
      row.kv_pairs += e.kv_pairs;
      row.bytes += e.bytes;
    }
    merge_intervals(busy);
    merge_intervals(io);
    merge_intervals(comm);
    m.busy_seconds = measure(busy);
    m.io_seconds = measure(io);
    m.comm_seconds = measure_minus(comm, busy);
    if (r < static_cast<int>(rec.final_times().size())) {
      m.final_time = std::max(m.final_time, rec.final_times()[static_cast<std::size_t>(r)]);
    }
    m.idle_seconds = std::max(0.0, m.final_time - m.busy_seconds - m.comm_seconds);
  }

  s.phases.reserve(rows.size());
  for (auto& [key, row] : rows) s.phases.push_back(std::move(row));
  std::sort(s.phases.begin(), s.phases.end(),
            [](const PhaseRow& a, const PhaseRow& b) { return a.seconds > b.seconds; });
  return s;
}

void print_summary(std::FILE* out, const Summary& summary, std::size_t max_rank_rows) {
  std::fprintf(out, "%-10s %-16s %8s %12s %12s %12s %14s\n", "category", "span", "count",
               "seconds", "max(s)", "kv_pairs", "bytes");
  for (const auto& row : summary.phases) {
    std::fprintf(out, "%-10s %-16s %8" PRIu64 " %12.6f %12.6f %12" PRIu64 " %14" PRIu64 "\n",
                 category_name(row.cat), row.name.c_str(), row.count, row.seconds,
                 row.max_seconds, row.kv_pairs, row.bytes);
  }
  std::fprintf(out, "\n%-6s %12s %12s %12s %12s %8s\n", "rank", "busy(s)", "io(s)",
               "comm(s)", "idle(s)", "tasks");
  const std::size_t shown = std::min(max_rank_rows, summary.ranks.size());
  for (std::size_t r = 0; r < shown; ++r) {
    const RankMetrics& m = summary.ranks[r];
    std::fprintf(out, "%-6zu %12.6f %12.6f %12.6f %12.6f %8" PRIu64 "\n", r,
                 m.busy_seconds, m.io_seconds, m.comm_seconds, m.idle_seconds, m.tasks);
  }
  if (shown < summary.ranks.size()) {
    std::fprintf(out, "... (%zu more ranks)\n", summary.ranks.size() - shown);
  }
  double io = 0.0;
  std::uint64_t tasks = 0;
  for (const auto& m : summary.ranks) {
    io += m.io_seconds;
    tasks += m.tasks;
  }
  std::fprintf(out, "%-6s %12.6f %12.6f %12.6f %12.6f %8" PRIu64 "\n", "all",
               summary.total_busy(), io, summary.total_comm(), summary.total_idle(), tasks);
}

std::vector<double> utilization_series(const Recorder& rec, Category cat,
                                       std::string_view name, double bucket_seconds,
                                       int total_cores) {
  // Mirrors workload::UtilizationTracker::series bucket arithmetic so a
  // trace of the same intervals yields bit-identical utilization.
  MRBIO_REQUIRE(bucket_seconds > 0.0 && total_cores > 0, "bad utilization series args");
  double horizon = 0.0;
  for (int r = 0; r < rec.nranks(); ++r) {
    for (const Event& e : rec.rank_events(r)) {
      if (e.cat == cat && name == e.name) horizon = std::max(horizon, e.t1);
    }
  }
  if (horizon <= 0.0) return {};
  const auto nbuckets =
      static_cast<std::size_t>(std::ceil(horizon / bucket_seconds));
  std::vector<double> busy(nbuckets, 0.0);
  for (int r = 0; r < rec.nranks(); ++r) {
    for (const Event& e : rec.rank_events(r)) {
      if (e.cat != cat || name != e.name) continue;
      const auto first = static_cast<std::size_t>(e.t0 / bucket_seconds);
      const auto last = static_cast<std::size_t>(e.t1 / bucket_seconds);
      for (std::size_t b = first; b <= last && b < nbuckets; ++b) {
        const double lo = std::max(e.t0, static_cast<double>(b) * bucket_seconds);
        const double hi =
            std::min(e.t1, static_cast<double>(b + 1) * bucket_seconds);
        if (hi > lo) busy[b] += hi - lo;
      }
    }
  }
  const double denom = bucket_seconds * total_cores;
  for (double& v : busy) v /= denom;
  return busy;
}

double total_seconds(const Recorder& rec, Category cat, std::string_view name) {
  double total = 0.0;
  for (int r = 0; r < rec.nranks(); ++r) {
    for (const Event& e : rec.rank_events(r)) {
      if (e.cat == cat && name == e.name) total += e.t1 - e.t0;
    }
  }
  return total;
}

void write_chrome_trace(const std::string& path, const Recorder& rec) {
  std::ofstream out(path, std::ios::trunc);
  MRBIO_REQUIRE(out.good(), "cannot open trace output: ", path);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "\n{\"name\":\"mrbio_trace_level\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
                "\"args\":{\"level\":\"%s\"}}",
                rec.full() ? "full" : "phases");
  out << buf;
  bool first = false;
  for (int r = 0; r < rec.nranks(); ++r) {
    std::snprintf(buf, sizeof buf,
                  "%s\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
                  "\"args\":{\"name\":\"rank %d\"}}",
                  first ? "" : ",", r, r);
    out << buf;
    first = false;
  }
  for (int r = 0; r < rec.nranks(); ++r) {
    const double ft = r < static_cast<int>(rec.final_times().size())
                          ? rec.final_times()[static_cast<std::size_t>(r)]
                          : 0.0;
    std::snprintf(buf, sizeof buf,
                  ",\n{\"name\":\"mrbio_final_time\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
                  "\"args\":{\"t\":%.17g}}",
                  r, ft);
    out << buf;
  }
  for (int r = 0; r < rec.nranks(); ++r) {
    for (const Event& e : rec.rank_events(r)) {
      // Span names are static identifier strings, so no JSON escaping.
      // ts/dur are the (rounded) microseconds Chrome renders; t0/t1 carry
      // the exact seconds so a reload reproduces the Recorder bit-for-bit.
      std::snprintf(buf, sizeof buf,
                    ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,"
                    "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"kv_pairs\":%" PRIu64
                    ",\"bytes\":%" PRIu64 ",\"t0\":%.17g,\"t1\":%.17g",
                    e.name, category_name(e.cat), e.rank, e.t0 * 1e6,
                    (e.t1 - e.t0) * 1e6, e.kv_pairs, e.bytes, e.t0, e.t1);
      out << buf;
      if (e.peer >= 0) {
        std::snprintf(buf, sizeof buf, ",\"peer\":%d,\"seq\":%" PRIu64 ",\"dep\":%.17g",
                      e.peer, e.seq, e.dep);
        out << buf;
      }
      out << "}}";
    }
  }
  out << "\n]}\n";
  MRBIO_REQUIRE(out.good(), "failed writing trace output: ", path);
}

namespace {

// Minimal field extraction for the line-oriented JSON write_chrome_trace
// emits (one event object per line). Not a general JSON parser.
bool find_field(const std::string& line, const char* key, std::size_t& value_pos) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  value_pos = pos + needle.size();
  return true;
}

double num_field(const std::string& line, const char* key, double fallback) {
  std::size_t pos = 0;
  if (!find_field(line, key, pos)) return fallback;
  return std::strtod(line.c_str() + pos, nullptr);
}

std::uint64_t u64_field(const std::string& line, const char* key, std::uint64_t fallback) {
  std::size_t pos = 0;
  if (!find_field(line, key, pos)) return fallback;
  return std::strtoull(line.c_str() + pos, nullptr, 10);
}

bool str_field(const std::string& line, const char* key, std::string& out_value) {
  std::size_t pos = 0;
  if (!find_field(line, key, pos)) return false;
  if (pos >= line.size() || line[pos] != '"') return false;
  const std::size_t end = line.find('"', pos + 1);
  if (end == std::string::npos) return false;
  out_value = line.substr(pos + 1, end - pos - 1);
  return true;
}

}  // namespace

LoadedTrace read_chrome_trace(const std::string& path) {
  std::ifstream in(path);
  MRBIO_REQUIRE(in.good(), "cannot open trace input: ", path);

  struct Parsed {
    Event event;
    std::string name;
  };
  std::vector<Parsed> events;
  std::vector<std::pair<int, double>> final_times;
  int max_rank = 0;

  bool saw_level = false;
  bool full = false;

  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"name\":\"mrbio_trace_level\"") != std::string::npos) {
      std::string level;
      if (str_field(line, "level", level)) {
        saw_level = true;
        full = level == "full";
      }
      continue;
    }
    if (line.find("\"name\":\"mrbio_final_time\"") != std::string::npos) {
      const int rank = static_cast<int>(num_field(line, "tid", 0.0));
      final_times.emplace_back(rank, num_field(line, "t", 0.0));
      max_rank = std::max(max_rank, rank);
      continue;
    }
    if (line.find("\"ph\":\"X\"") == std::string::npos) continue;
    Parsed p;
    MRBIO_REQUIRE(str_field(line, "name", p.name), "trace event without a name: ", line);
    std::string cat;
    MRBIO_REQUIRE(str_field(line, "cat", cat), "trace event without a category: ", line);
    p.event.cat = category_from_name(cat);
    p.event.rank = static_cast<int>(num_field(line, "tid", 0.0));
    // Prefer the exact seconds; fall back to ts/dur microseconds for
    // hand-written or foreign traces.
    p.event.t0 = num_field(line, "t0", num_field(line, "ts", 0.0) * 1e-6);
    p.event.t1 = num_field(line, "t1", p.event.t0 + num_field(line, "dur", 0.0) * 1e-6);
    p.event.kv_pairs = u64_field(line, "kv_pairs", 0);
    p.event.bytes = u64_field(line, "bytes", 0);
    p.event.peer = static_cast<int>(num_field(line, "peer", -1.0));
    p.event.seq = u64_field(line, "seq", 0);
    p.event.dep = num_field(line, "dep", 0.0);
    max_rank = std::max(max_rank, p.event.rank);
    events.push_back(std::move(p));
  }
  MRBIO_REQUIRE(!events.empty() || !final_times.empty(),
                "no trace events found in ", path);

  // Foreign traces carry no level record; per-message categories imply Full.
  if (!saw_level) {
    for (const Parsed& p : events) {
      if (p.event.cat == Category::Compute || p.event.cat == Category::Send ||
          p.event.cat == Category::RecvWait) {
        full = true;
        break;
      }
    }
  }

  LoadedTrace loaded;
  loaded.recorder = Recorder(max_rank + 1, full ? Level::Full : Level::Phases);
  std::map<std::string, const char*> interned;
  for (Parsed& p : events) {
    auto it = interned.find(p.name);
    if (it == interned.end()) {
      loaded.name_pool.push_back(p.name);
      it = interned.emplace(p.name, loaded.name_pool.back().c_str()).first;
    }
    p.event.name = it->second;
    loaded.recorder.add_event(p.event);
  }
  for (const auto& [rank, t] : final_times) loaded.recorder.set_final_time(rank, t);
  return loaded;
}

}  // namespace mrbio::trace
