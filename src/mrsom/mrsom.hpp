// MR-MPI batch SOM: the paper's second application (Section III-B, Fig. 2).
//
// Per epoch: the codebook is broadcast from the master to all workers;
// the input-vector set is split into blocks that form the map() work
// units; each map() call accumulates the numerator and denominator of
// Eq. 5 into its rank's accumulator; at the epoch end a direct MPI
// reduction sums the accumulators on the master, which computes the new
// codebook. No MapReduce reduce() stage is used ("a mix of MapReduce-MPI
// and direct MPI calls").
//
// train_som_mr is the functional driver (real data, every rank returns the
// trained codebook); run_som_sim is the paper-scale driver behind the
// Fig. 6 scaling benchmark (analytic compute costs, phantom collectives of
// codebook-sized messages).
#pragma once

#include <cstdint>

#include "common/matrix.hpp"
#include "mpi/comm.hpp"
#include "mrmpi/mapreduce.hpp"
#include "som/som.hpp"

namespace mrbio::mrsom {

struct ParallelSomConfig {
  som::SomParams params;
  std::size_t block_vectors = 40;  ///< input vectors per work unit (Fig. 6)
  mrmpi::MapStyle map_style = mrmpi::MapStyle::MasterWorker;
  /// Scheduling policy override; Auto derives from map_style (see
  /// mrmpi::MapReduceConfig::scheduler). sched::Policy::Steal selects
  /// decentralized work stealing.
  sched::Policy scheduler = sched::Policy::Auto;
  /// Fault tolerance of the remote maps (see mrmpi::FaultToleranceConfig).
  /// Enabling it (or the steal policy) forces deterministic_reduce: the direct-MPI accumulator
  /// reduction cannot survive worker respawns, the KV path can.
  mrmpi::FaultToleranceConfig ft;
  /// Route each block's accumulator through the KV store (key = block id)
  /// and sum on the master in block order instead of the direct MPI_Reduce.
  /// Costs one gather of accumulator-sized values per epoch but makes the
  /// trained codebook bit-identical across schedules, rank counts, and
  /// fault plans (float sums happen in one fixed order).
  bool deterministic_reduce = false;
  /// Modeled seconds per (input-dim x map-cell) multiply-accumulate; used
  /// to charge virtual compute for real runs so timing stays meaningful.
  double flop_seconds = 0.0;
  /// Progress callback on the master rank.
  som::EpochCallback on_epoch = nullptr;
  /// Checkpoint/restart manager (non-owning); null disables. One cycle =
  /// one epoch. Rank 0 snapshots the codebook after every epoch; on the
  /// deterministic path the per-block accumulators are additionally
  /// journaled through the MapReduce map log, so --resume restarts
  /// mid-epoch. The non-deterministic path holds its accumulator outside
  /// the KV store and resumes at epoch granularity only.
  ckpt::Checkpointer* checkpointer = nullptr;
};

/// Collective: trains on `data` (visible to all ranks via shared memory,
/// standing in for the paper's memory-mapped file on a shared filesystem).
/// `initial` is the epoch-0 codebook on the master; other ranks may pass a
/// same-shaped codebook which is overwritten by broadcast. Every rank
/// returns the final codebook.
som::Codebook train_som_mr(mpi::Comm& comm, const MatrixView& data,
                           const som::Codebook& initial, const ParallelSomConfig& config);

struct SimSomConfig {
  std::uint64_t num_vectors = 81'920;  ///< the paper's Fig. 6 dataset
  std::size_t dim = 256;
  som::SomGrid grid{50, 50};
  std::size_t epochs = 10;
  std::size_t block_vectors = 40;
  mrmpi::MapStyle map_style = mrmpi::MapStyle::MasterWorker;
  /// Scheduling policy override; Auto derives from map_style (see
  /// mrmpi::MapReduceConfig::scheduler). sched::Policy::Steal selects
  /// decentralized work stealing.
  sched::Policy scheduler = sched::Policy::Auto;
  /// Fault tolerance of the remote maps.
  mrmpi::FaultToleranceConfig ft;
  /// Seconds per (dim x cell) pair per input vector. The default yields
  /// roughly minutes-per-epoch serial times at the paper's dimensions
  /// (Ranger-era Barcelona cores), matching the magnitudes of Fig. 6.
  double flop_seconds = 4.0e-9;
  /// Seconds to combine one byte in the accumulator reduction.
  double combine_seconds_per_byte = 2.5e-10;
};

struct SimSomStats {
  double compute_seconds = 0.0;  ///< useful accumulate time on this rank
  std::uint64_t blocks_processed = 0;
};

/// Collective; virtual elapsed time is read from the engine by the caller.
SimSomStats run_som_sim(mpi::Comm& comm, const SimSomConfig& config);

}  // namespace mrbio::mrsom
