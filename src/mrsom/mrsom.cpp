#include "mrsom/mrsom.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "ckpt/ckpt.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/serialize.hpp"
#include "obs/metrics.hpp"

namespace mrbio::mrsom {

namespace {

/// Big-endian block id, so a lexicographic key sort is a numeric sort.
std::array<std::byte, 8> block_key(std::uint64_t block) {
  std::array<std::byte, 8> key;
  for (std::size_t i = 0; i < 8; ++i) {
    key[i] = static_cast<std::byte>((block >> (56 - 8 * i)) & 0xff);
  }
  return key;
}

}  // namespace

som::Codebook train_som_mr(mpi::Comm& comm, const MatrixView& data,
                           const som::Codebook& initial, const ParallelSomConfig& config) {
  MRBIO_REQUIRE(data.cols() == initial.dim(), "data dimension mismatch");
  MRBIO_REQUIRE(config.block_vectors > 0, "block_vectors must be positive");

  som::Codebook cb = initial;
  const som::SomGrid grid = cb.grid();
  const std::size_t dim = cb.dim();
  const std::size_t cells = grid.cells();
  const std::uint64_t nblocks =
      (data.rows() + config.block_vectors - 1) / config.block_vectors;

  // Crash recovery replays map blocks on other workers, so every block's
  // contribution must travel the exactly-once KV path, not a shared
  // rank-local accumulator.
  const bool deterministic = config.deterministic_reduce || config.ft.enabled ||
                             config.scheduler == sched::Policy::Steal;

  ckpt::Checkpointer* cp = config.checkpointer;
  const bool ckpt_on = cp != nullptr && cp->enabled();

  mrmpi::MapReduceConfig mr_config;
  mr_config.map_style = config.map_style;
  mr_config.scheduler = config.scheduler;
  mr_config.ft = config.ft;
  // Map-log journaling needs every block's output in the KV store; the
  // non-deterministic path accumulates outside it, so there the map log
  // would persist nothing and resume falls back to epoch granularity.
  mr_config.checkpointer = (ckpt_on && deterministic) ? cp : nullptr;
  mrmpi::MapReduce mr(comm, mr_config);

  const double per_vector_cost =
      config.flop_seconds * static_cast<double>(dim) * static_cast<double>(cells);

  // ---- resume handshake ----
  // The codebook snapshot holds the weights entering epoch `first_epoch`.
  // A missing or corrupt snapshot degrades to epoch 0 with a warning;
  // within the resumed epoch the map log (deterministic path only)
  // restores committed blocks so only the tail re-runs.
  std::size_t first_epoch = 0;
  if (ckpt_on && cp->resuming()) {
    std::uint64_t fe = 0;
    if (comm.rank() == 0) {
      std::vector<std::byte> snap;
      bool ok = false;
      if (cp->load_snapshot("codebook", snap)) {
        try {
          ByteReader r(snap);
          const auto e = r.get<std::uint64_t>();
          const auto sc = r.get<std::uint64_t>();
          const auto sd = r.get<std::uint64_t>();
          if (sc == cells && sd == dim && e <= config.params.epochs) {
            const auto bytes = r.raw(cells * dim * sizeof(float));
            std::memcpy(cb.weights().data(), bytes.data(), bytes.size());
            fe = e;
            ok = r.done();
          }
        } catch (const Error&) {
          ok = false;
        }
      }
      if (ok) {
        MRBIO_LOG(Info, "checkpoint: resuming SOM training at epoch ", fe, " of ",
                  config.params.epochs);
      } else {
        fe = 0;
        MRBIO_LOG(Warn,
                  "checkpoint: no usable codebook snapshot; training from epoch 0");
      }
    }
    comm.bcast_value(fe, 0);
    first_epoch = static_cast<std::size_t>(fe);
  }

  for (std::size_t epoch = first_epoch; epoch < config.params.epochs; ++epoch) {
    if (ckpt_on) cp->begin_cycle(comm.rank(), static_cast<std::uint64_t>(epoch));
    // Fig. 2: "The copy of the codebook is distributed with MPI_Broadcast()
    // from the master to all worker nodes at the start of each epoch."
    std::vector<float> weights(cells * dim);
    if (comm.rank() == 0) {
      std::copy(cb.weights().data(), cb.weights().data() + weights.size(), weights.begin());
    }
    const double t_bcast = comm.now();
    comm.bcast(weights, 0);
    std::copy(weights.begin(), weights.end(), cb.weights().data());
    if (obs::Registry* reg = comm.metrics(); reg != nullptr) {
      reg->histogram("som.epoch_bcast_seconds").observe(comm.now() - t_bcast);
    }

    const double sigma = som::sigma_at(config.params, grid, epoch);
    som::BatchAccumulator total(grid, dim);
    double epoch_qerr = 0.0;

    if (deterministic) {
      // Each block's accumulator rides the KV store keyed by block id; the
      // master sums them in block order after a gather + key sort, so the
      // float arithmetic happens in one schedule-independent order.
      mr.map(nblocks, [&](std::uint64_t block, mrmpi::KeyValue& kv) {
        const std::size_t first = static_cast<std::size_t>(block) * config.block_vectors;
        const std::size_t count = std::min(config.block_vectors, data.rows() - first);
        const double t0 = comm.now();
        som::BatchAccumulator bacc(grid, dim);
        double block_qerr = 0.0;
        for (std::size_t r = first; r < first + count; ++r) {
          block_qerr += bacc.add(cb, data.row(r), sigma, config.params.kernel);
        }
        if (per_vector_cost > 0.0) {
          comm.compute(per_vector_cost * static_cast<double>(count));
        }
        ByteWriter w;
        w.append(bacc.numerator().data(), bacc.numerator().size() * sizeof(float));
        w.append(bacc.denominator().data(), bacc.denominator().size() * sizeof(float));
        w.put(block_qerr);
        const std::array<std::byte, 8> key = block_key(block);
        const std::vector<std::byte> value = w.take();
        kv.add(std::span<const std::byte>(key), std::span<const std::byte>(value));
        if (trace::Recorder* rec = comm.tracer(); rec != nullptr) {
          rec->add(comm.rank(), trace::Category::App, "accumulate", t0, comm.now(), count);
        }
      });
      const double t_reduce = comm.now();
      mr.gather();
      mr.sort_keys();
      if (obs::Registry* reg = comm.metrics(); reg != nullptr) {
        reg->histogram("som.epoch_reduce_seconds").observe(comm.now() - t_reduce);
      }
      if (comm.rank() == 0) {
        const std::size_t nfloats = cells * dim + cells;
        std::vector<float> scratch(nfloats);
        mr.kv().for_each([&](const mrmpi::KvPair& pair) {
          MRBIO_CHECK(pair.value.size() == nfloats * sizeof(float) + sizeof(double),
                      "som accumulator value size mismatch");
          std::memcpy(scratch.data(), pair.value.data(), nfloats * sizeof(float));
          for (std::size_t i = 0; i < cells * dim; ++i) {
            total.numerator()[i] += scratch[i];
          }
          for (std::size_t i = 0; i < cells; ++i) {
            total.denominator()[i] += scratch[cells * dim + i];
          }
          double q = 0.0;
          std::memcpy(&q, pair.value.data() + nfloats * sizeof(float), sizeof(double));
          epoch_qerr += q;
        });
      }
    } else {
      som::BatchAccumulator acc(grid, dim);
      double local_qerr = 0.0;

      mr.map(nblocks, [&](std::uint64_t block, mrmpi::KeyValue&) {
        const std::size_t first = static_cast<std::size_t>(block) * config.block_vectors;
        const std::size_t count = std::min(config.block_vectors, data.rows() - first);
        const double t0 = comm.now();
        for (std::size_t r = first; r < first + count; ++r) {
          local_qerr += acc.add(cb, data.row(r), sigma, config.params.kernel);
        }
        if (per_vector_cost > 0.0) {
          comm.compute(per_vector_cost * static_cast<double>(count));
        }
        if (trace::Recorder* rec = comm.tracer(); rec != nullptr) {
          rec->add(comm.rank(), trace::Category::App, "accumulate", t0, comm.now(), count);
        }
      });

      // Fig. 2: "a collective MPI_Reduce() call is used to sum all newly
      // computed numerators and denominators" -- direct MPI, no reduce().
      std::vector<float> packed(acc.numerator().size() + acc.denominator().size());
      std::copy(acc.numerator().begin(), acc.numerator().end(), packed.begin());
      std::copy(acc.denominator().begin(), acc.denominator().end(),
                packed.begin() + static_cast<std::ptrdiff_t>(acc.numerator().size()));
      const double t_reduce = comm.now();
      comm.reduce(packed, mpi::ReduceOp::Sum, 0);
      std::vector<double> qerr_buf{local_qerr};
      comm.reduce(qerr_buf, mpi::ReduceOp::Sum, 0);
      if (obs::Registry* reg = comm.metrics(); reg != nullptr) {
        reg->histogram("som.epoch_reduce_seconds").observe(comm.now() - t_reduce);
      }
      if (comm.rank() == 0) {
        std::copy(packed.begin(),
                  packed.begin() + static_cast<std::ptrdiff_t>(cells * dim),
                  total.numerator().begin());
        std::copy(packed.begin() + static_cast<std::ptrdiff_t>(cells * dim), packed.end(),
                  total.denominator().begin());
        epoch_qerr = qerr_buf[0];
      }
    }

    if (comm.rank() == 0) {
      const double t_apply = comm.now();
      total.apply(cb);
      if (trace::Recorder* rec = comm.tracer(); rec != nullptr) {
        rec->add(comm.rank(), trace::Category::App, "codebook_update", t_apply, comm.now(),
                 cells);
      }
      if (config.on_epoch) {
        config.on_epoch(epoch, sigma,
                        data.rows() > 0 ? epoch_qerr / static_cast<double>(data.rows())
                                        : 0.0);
      }
    }

    // ---- epoch commit ----
    // Rank 0 snapshots the updated codebook (atomic tmp + rename), making
    // the epoch durable; only then is its map log disposable. A kill in
    // between re-runs the epoch from the previous snapshot, which is
    // byte-identical because the map replays against the same weights.
    if (ckpt_on) {
      if (comm.rank() == 0) {
        const double t0 = comm.now();
        ByteWriter w;
        w.put<std::uint64_t>(static_cast<std::uint64_t>(epoch + 1));
        w.put<std::uint64_t>(static_cast<std::uint64_t>(cells));
        w.put<std::uint64_t>(static_cast<std::uint64_t>(dim));
        w.append(cb.weights().data(), cells * dim * sizeof(float));
        const std::vector<std::byte> payload = w.take();
        cp->save_snapshot("codebook", payload);
        comm.compute(static_cast<double>(payload.size()) * cp->config().byte_seconds);
        if (trace::Recorder* rec = comm.tracer(); rec != nullptr) {
          rec->add(comm.rank(), trace::Category::Io, "ckpt_write", t0, comm.now(), 1,
                   payload.size());
        }
      }
      if (deterministic) {
        cp->remove_map_log(comm.rank(), static_cast<std::uint64_t>(epoch));
      }
    }
  }

  // Leave every rank with the final codebook.
  std::vector<float> weights(cells * dim);
  if (comm.rank() == 0) {
    std::copy(cb.weights().data(), cb.weights().data() + weights.size(), weights.begin());
  }
  comm.bcast(weights, 0);
  std::copy(weights.begin(), weights.end(), cb.weights().data());
  return cb;
}

SimSomStats run_som_sim(mpi::Comm& comm, const SimSomConfig& config) {
  MRBIO_REQUIRE(config.block_vectors > 0, "block_vectors must be positive");
  const std::size_t cells = config.grid.cells();
  const std::uint64_t nblocks =
      (config.num_vectors + config.block_vectors - 1) / config.block_vectors;
  const std::uint64_t codebook_bytes =
      static_cast<std::uint64_t>(cells) * config.dim * sizeof(float);
  // The reduction ships numerator (cells x dim) plus denominator (cells).
  const std::uint64_t accum_bytes =
      codebook_bytes + static_cast<std::uint64_t>(cells) * sizeof(float);
  const double per_vector_cost =
      config.flop_seconds * static_cast<double>(config.dim) * static_cast<double>(cells);

  mrmpi::MapReduceConfig mr_config;
  mr_config.map_style = config.map_style;
  mr_config.scheduler = config.scheduler;
  mr_config.ft = config.ft;
  mrmpi::MapReduce mr(comm, mr_config);

  SimSomStats stats;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Multi-megabyte codebook: pipelined collective model (see comm.hpp).
    const double t_bcast = comm.now();
    comm.bcast_phantom_pipelined(codebook_bytes, 0);
    if (obs::Registry* reg = comm.metrics(); reg != nullptr) {
      reg->histogram("som.epoch_bcast_seconds").observe(comm.now() - t_bcast);
    }
    mr.map(nblocks, [&](std::uint64_t block, mrmpi::KeyValue&) {
      const std::uint64_t first = block * config.block_vectors;
      const std::uint64_t count =
          std::min<std::uint64_t>(config.block_vectors, config.num_vectors - first);
      const double cost = per_vector_cost * static_cast<double>(count);
      const double t0 = comm.now();
      comm.compute(cost);
      stats.compute_seconds += cost;
      ++stats.blocks_processed;
      if (trace::Recorder* rec = comm.tracer(); rec != nullptr) {
        rec->add(comm.rank(), trace::Category::App, "accumulate", t0, comm.now(), count);
      }
    });
    const double t_reduce = comm.now();
    comm.reduce_phantom_pipelined(
        accum_bytes, 0, static_cast<double>(accum_bytes) * config.combine_seconds_per_byte);
    if (obs::Registry* reg = comm.metrics(); reg != nullptr) {
      reg->histogram("som.epoch_reduce_seconds").observe(comm.now() - t_reduce);
    }
    // Master applies Eq. 5 over the full codebook.
    if (comm.rank() == 0) {
      const double t_apply = comm.now();
      comm.compute(static_cast<double>(cells) * static_cast<double>(config.dim) *
                   config.flop_seconds);
      if (trace::Recorder* rec = comm.tracer(); rec != nullptr) {
        rec->add(comm.rank(), trace::Category::App, "codebook_update", t_apply, comm.now(),
                 cells);
      }
    }
  }
  return stats;
}

}  // namespace mrbio::mrsom
