// BLAST database volumes: the `formatdb` equivalent.
//
// The paper's pipeline formats the full FASTA database into fixed-size
// two-bit-encoded partitions ("The database partitions are created by
// running the standard NCBI BLAST tool formatdb ... in a two-bit encoded
// format that is optimized for scanning"). This module reproduces that:
// a DbBuilder splits an input sequence stream into volumes capped at a
// target residue count, nucleotide payloads are stored 2-bit packed with
// an ambiguity-exception list, and an alias file records the volume list
// plus database-wide totals (the numbers the searcher needs to override
// per-partition statistics with whole-database statistics).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "blast/sequence.hpp"

namespace mrbio::blast {

/// Whole-database metadata kept in the alias file ("<base>.mal").
struct DbInfo {
  SeqType type = SeqType::Dna;
  std::vector<std::string> volume_paths;
  std::uint64_t total_residues = 0;
  std::uint64_t total_seqs = 0;
};

/// One loaded database partition.
class DbVolume {
 public:
  static DbVolume load(const std::string& path);

  SeqType type() const { return type_; }
  std::size_t num_seqs() const { return seqs_.size(); }
  std::uint64_t residues() const { return residues_; }
  const Sequence& seq(std::size_t i) const;
  const std::vector<Sequence>& sequences() const { return seqs_; }

 private:
  SeqType type_ = SeqType::Dna;
  std::uint64_t residues_ = 0;
  std::vector<Sequence> seqs_;
};

/// Streaming builder that cuts volumes at `target_volume_residues`.
class DbBuilder {
 public:
  /// Volumes are written as "<base>.<nn>.vol"; the alias as "<base>.mal".
  DbBuilder(std::string base_path, SeqType type, std::uint64_t target_volume_residues);
  ~DbBuilder();

  DbBuilder(const DbBuilder&) = delete;
  DbBuilder& operator=(const DbBuilder&) = delete;

  void add(Sequence seq);

  /// Flushes the last volume and writes the alias file. Must be called
  /// exactly once; add() is invalid afterwards.
  DbInfo finish();

 private:
  void flush_volume();

  std::string base_;
  SeqType type_;
  std::uint64_t target_;
  std::vector<Sequence> pending_;
  std::uint64_t pending_residues_ = 0;
  DbInfo info_;
  bool finished_ = false;
};

/// Convenience: formats a sequence set into volumes in one call.
DbInfo build_db(const std::vector<Sequence>& seqs, const std::string& base_path,
                SeqType type, std::uint64_t target_volume_residues);

/// Reads an alias file written by DbBuilder::finish().
DbInfo read_db_info(const std::string& alias_path);

}  // namespace mrbio::blast
