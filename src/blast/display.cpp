#include "blast/display.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace mrbio::blast {

std::string render_hsp_header(const Hsp& hsp, SeqType type) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                " Score = %.1f bits (%d), Expect = %.2e\n"
                " Identities = %u/%u (%.0f%%), Gaps = %u/%u",
                hsp.bit_score, hsp.raw_score, hsp.evalue, hsp.identities, hsp.align_len,
                100.0 * hsp.identity_fraction(), hsp.gaps, hsp.align_len);
  std::string out = buf;
  if (type == SeqType::Dna) {
    out += hsp.minus_strand ? "\n Strand = Plus/Minus" : "\n Strand = Plus/Plus";
  }
  return out;
}

std::string render_pairwise(const Sequence& query, const Sequence& subject, const Hsp& hsp,
                            const Scorer& scorer, std::size_t width) {
  MRBIO_REQUIRE(width >= 10, "alignment display width too small: ", width);
  const SeqType type = scorer.type();
  const int alphabet = type == SeqType::Dna ? kDnaAlphabet : kProtAlphabet;

  // Work in the frame the alignment was computed in: for minus-strand hits
  // that is the reverse complement of the query.
  std::vector<std::uint8_t> qframe;
  std::size_t q0;
  if (hsp.minus_strand) {
    MRBIO_REQUIRE(type == SeqType::Dna, "minus-strand HSP on a non-DNA search");
    qframe = reverse_complement(query.data);
    q0 = query.length() - hsp.q_end;
  } else {
    qframe = query.data;
    q0 = hsp.q_start;
  }

  // Expand the edit script into three character rows; record, per column,
  // the consumed query/subject offset (-1 for gap columns).
  std::string qrow;
  std::string mrow;
  std::string srow;
  std::vector<std::int64_t> qcol;
  std::vector<std::int64_t> scol;
  std::size_t qi = q0;
  std::size_t si = hsp.s_start;
  for (const EditOp& op : hsp.ops) {
    for (std::uint32_t k = 0; k < op.len; ++k) {
      switch (op.type) {
        case EditOp::Type::Match: {
          const std::uint8_t qc = qframe[qi];
          const std::uint8_t sc = subject.data[si];
          const std::string qch = decode(std::span(&qc, 1), type);
          qrow += qch;
          srow += decode(std::span(&sc, 1), type);
          if (qc == sc && qc < alphabet) {
            mrow += type == SeqType::Dna ? "|" : qch;
          } else if (type == SeqType::Protein && qc < alphabet && sc < alphabet &&
                     scorer.score(qc, sc) > 0) {
            mrow += "+";
          } else {
            mrow += " ";
          }
          qcol.push_back(static_cast<std::int64_t>(qi++));
          scol.push_back(static_cast<std::int64_t>(si++));
          break;
        }
        case EditOp::Type::InsertQ:
          qrow += decode(std::span(&qframe[qi], 1), type);
          mrow += " ";
          srow += "-";
          qcol.push_back(static_cast<std::int64_t>(qi++));
          scol.push_back(-1);
          break;
        case EditOp::Type::InsertS:
          qrow += "-";
          mrow += " ";
          srow += decode(std::span(&subject.data[si], 1), type);
          qcol.push_back(-1);
          scol.push_back(static_cast<std::int64_t>(si++));
          break;
      }
    }
  }

  // 1-based display coordinates; a minus-strand query counts backwards on
  // the plus strand, as in BLAST reports.
  auto q_display = [&](std::int64_t frame_pos) -> std::int64_t {
    if (hsp.minus_strand) return static_cast<std::int64_t>(query.length()) - frame_pos;
    return frame_pos + 1;
  };

  auto bounds = [](const std::vector<std::int64_t>& cols, std::size_t lo, std::size_t hi,
                   std::int64_t* first, std::int64_t* last) {
    *first = -1;
    *last = -1;
    for (std::size_t i = lo; i <= hi; ++i) {
      if (cols[i] < 0) continue;
      if (*first < 0) *first = cols[i];
      *last = cols[i];
    }
  };

  std::ostringstream os;
  for (std::size_t start = 0; start < qrow.size(); start += width) {
    const std::size_t n = std::min(width, qrow.size() - start);
    const std::size_t end = start + n - 1;
    std::int64_t qa = 0;
    std::int64_t qb = 0;
    std::int64_t sa = 0;
    std::int64_t sb = 0;
    bounds(qcol, start, end, &qa, &qb);
    bounds(scol, start, end, &sa, &sb);
    char line[1024];
    std::snprintf(line, sizeof(line), "Query  %-6lld %s  %lld\n",
                  static_cast<long long>(qa >= 0 ? q_display(qa) : 0),
                  qrow.substr(start, n).c_str(),
                  static_cast<long long>(qb >= 0 ? q_display(qb) : 0));
    os << line;
    os << "              " << mrow.substr(start, n) << "\n";
    std::snprintf(line, sizeof(line), "Sbjct  %-6lld %s  %lld\n",
                  static_cast<long long>(sa >= 0 ? sa + 1 : 0),
                  srow.substr(start, n).c_str(),
                  static_cast<long long>(sb >= 0 ? sb + 1 : 0));
    os << line;
    if (start + width < qrow.size()) os << "\n";
  }
  return os.str();
}

}  // namespace mrbio::blast
