#include "blast/hsp.hpp"

#include <algorithm>
#include <cstdio>

namespace mrbio::blast {

void Hsp::serialize(ByteWriter& w) const {
  w.put_string(subject_id);
  w.put(q_start);
  w.put(q_end);
  w.put(s_start);
  w.put(s_end);
  w.put(static_cast<std::uint8_t>(minus_strand ? 1 : 0));
  w.put(raw_score);
  w.put(bit_score);
  w.put(evalue);
  w.put(identities);
  w.put(align_len);
  w.put(gaps);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(ops.size()));
  for (const EditOp& op : ops) {
    w.put(static_cast<std::uint8_t>(op.type));
    w.put(op.len);
  }
}

Hsp Hsp::deserialize(ByteReader& r) {
  Hsp h;
  h.subject_id = r.get_string();
  h.q_start = r.get<std::uint64_t>();
  h.q_end = r.get<std::uint64_t>();
  h.s_start = r.get<std::uint64_t>();
  h.s_end = r.get<std::uint64_t>();
  h.minus_strand = r.get<std::uint8_t>() != 0;
  h.raw_score = r.get<std::int32_t>();
  h.bit_score = r.get<double>();
  h.evalue = r.get<double>();
  h.identities = r.get<std::uint32_t>();
  h.align_len = r.get<std::uint32_t>();
  h.gaps = r.get<std::uint32_t>();
  const auto nops = r.get<std::uint32_t>();
  h.ops.reserve(nops);
  for (std::uint32_t i = 0; i < nops; ++i) {
    EditOp op;
    op.type = static_cast<EditOp::Type>(r.get<std::uint8_t>());
    op.len = r.get<std::uint32_t>();
    h.ops.push_back(op);
  }
  return h;
}

bool hsp_better(const Hsp& a, const Hsp& b) {
  if (a.evalue != b.evalue) return a.evalue < b.evalue;
  if (a.raw_score != b.raw_score) return a.raw_score > b.raw_score;
  if (a.subject_id != b.subject_id) return a.subject_id < b.subject_id;
  if (a.s_start != b.s_start) return a.s_start < b.s_start;
  return a.q_start < b.q_start;
}

void sort_and_truncate(std::vector<Hsp>& hsps, std::size_t max_hits) {
  std::sort(hsps.begin(), hsps.end(), hsp_better);
  if (max_hits > 0 && hsps.size() > max_hits) hsps.resize(max_hits);
}

void cull_contained(std::vector<Hsp>& hsps) {
  std::sort(hsps.begin(), hsps.end(), [](const Hsp& a, const Hsp& b) {
    if (a.raw_score != b.raw_score) return a.raw_score > b.raw_score;
    return hsp_better(a, b);
  });
  std::vector<Hsp> kept;
  for (Hsp& h : hsps) {
    bool contained = false;
    for (const Hsp& k : kept) {
      if (k.subject_id == h.subject_id && k.minus_strand == h.minus_strand &&
          k.q_start <= h.q_start && h.q_end <= k.q_end && k.s_start <= h.s_start &&
          h.s_end <= k.s_end) {
        contained = true;
        break;
      }
    }
    if (!contained) kept.push_back(std::move(h));
  }
  hsps = std::move(kept);
}

std::string to_tabular(const std::string& query_id, const Hsp& h) {
  // Mirrors BLAST outfmt 6: qid sid pident length mismatch gapopen qstart
  // qend sstart send evalue bitscore -- with 1-based inclusive coordinates
  // and subject coordinates swapped on the minus strand.
  char buf[512];
  const double pident = 100.0 * h.identity_fraction();
  const auto mismatches =
      static_cast<std::uint32_t>(h.align_len - h.identities - h.gaps);
  std::uint64_t qs = h.q_start + 1;
  std::uint64_t qe = h.q_end;
  std::uint64_t ss = h.s_start + 1;
  std::uint64_t se = h.s_end;
  if (h.minus_strand) std::swap(ss, se);
  std::snprintf(buf, sizeof(buf),
                "%s\t%s\t%.2f\t%u\t%u\t%u\t%llu\t%llu\t%llu\t%llu\t%.2e\t%.1f",
                query_id.c_str(), h.subject_id.c_str(), pident, h.align_len, mismatches,
                h.gaps, static_cast<unsigned long long>(qs),
                static_cast<unsigned long long>(qe), static_cast<unsigned long long>(ss),
                static_cast<unsigned long long>(se), h.evalue, h.bit_score);
  return buf;
}

}  // namespace mrbio::blast
