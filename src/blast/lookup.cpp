#include "blast/lookup.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"
#include "simd/simd.hpp"

namespace mrbio::blast {

NucLookup::NucLookup(std::span<const std::uint8_t> concat, int word_size)
    : word_size_(word_size) {
  MRBIO_REQUIRE(word_size >= kMinWord && word_size <= kMaxWord,
                "nucleotide word size must be in [", kMinWord, ", ", kMaxWord, "], got ",
                word_size);
  const std::size_t nbuckets = std::size_t{1} << (2 * word_size);
  const std::uint32_t mask = static_cast<std::uint32_t>(nbuckets - 1);
  const simd::Kernels& kern = simd::kernels();

  // Both passes scan the concatenation in 48-byte blocks through the
  // word-scan kernel: codes[i] is the rolling packed word ending at block
  // position i, and a set valid bit means all word_size bases ending
  // there are unambiguous (the kernel carries word/history across
  // blocks). A word is indexable only if it's valid — garbage codes at
  // invalid positions are never read.
  constexpr std::size_t kBlock = 48;
  std::uint32_t codes[kBlock];
  std::uint64_t valid = 0;

  // Pass 1: count words.
  std::vector<std::uint32_t> counts(nbuckets + 1, 0);
  std::uint32_t word = 0;
  std::uint64_t hist = 0;
  for (std::size_t base = 0; base < concat.size(); base += kBlock) {
    const std::size_t m = std::min(kBlock, concat.size() - base);
    kern.dna_words(concat.data() + base, m, word_size, mask, &word, &hist, codes, &valid);
    while (valid != 0) {
      const int i = std::countr_zero(valid);
      valid &= valid - 1;
      ++counts[codes[i]];
    }
  }

  starts_.assign(nbuckets + 1, 0);
  for (std::size_t b = 0; b < nbuckets; ++b) starts_[b + 1] = starts_[b] + counts[b];
  positions_.resize(starts_[nbuckets]);

  // Pass 2: fill. Positions are the offsets of the word's first base;
  // valid bits iterate lowest-first, so positions stay in ascending order.
  std::vector<std::uint32_t> cursor(starts_.begin(), starts_.end() - 1);
  word = 0;
  hist = 0;
  for (std::size_t base = 0; base < concat.size(); base += kBlock) {
    const std::size_t m = std::min(kBlock, concat.size() - base);
    kern.dna_words(concat.data() + base, m, word_size, mask, &word, &hist, codes, &valid);
    while (valid != 0) {
      const int i = std::countr_zero(valid);
      valid &= valid - 1;
      positions_[cursor[codes[i]]++] = static_cast<std::uint32_t>(
          base + static_cast<std::size_t>(i) + 1 - static_cast<std::size_t>(word_size));
    }
  }
}

ProtLookup::ProtLookup(std::span<const std::uint8_t> concat, int threshold,
                       const Scorer& scorer) {
  MRBIO_REQUIRE(scorer.type() == SeqType::Protein, "ProtLookup needs a protein scorer");

  // Per-position row maxima of the score matrix, for pruning the
  // neighbourhood enumeration.
  std::array<int, kProtAlphabet> row_max{};
  for (int a = 0; a < kProtAlphabet; ++a) {
    int mx = kSentinelScore;
    for (int b = 0; b < kProtAlphabet; ++b) {
      mx = std::max(mx, scorer.score(static_cast<std::uint8_t>(a),
                                     static_cast<std::uint8_t>(b)));
    }
    row_max[static_cast<std::size_t>(a)] = mx;
  }

  // Collect (bucket, position) pairs, then bucket-sort into the flat
  // table. The word-scan kernel yields packed codes plus a validity mask
  // per 64-position block (a set bit means all three residues are
  // standard); only the neighbourhood enumeration stays scalar.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
  if (concat.size() >= kWordSize) {
    const simd::Kernels& kern = simd::kernels();
    constexpr std::size_t kBlock = 64;
    std::uint16_t codes[kBlock];
    std::uint64_t valid = 0;
    const std::size_t last = concat.size() - kWordSize;  // last word start
    for (std::size_t base = 0; base <= last; base += kBlock) {
      const std::size_t m = std::min(kBlock, last - base + 1);
      kern.prot_words(concat.data() + base, m, codes, &valid);
      while (valid != 0) {
        const int bi = std::countr_zero(valid);
        valid &= valid - 1;
        const std::size_t i = base + static_cast<std::size_t>(bi);
        const auto pos = static_cast<std::uint32_t>(i);

        if (threshold <= 0) {
          entries.emplace_back(codes[bi], pos);
          continue;
        }

        const std::uint8_t q0 = concat[i];
        const std::uint8_t q1 = concat[i + 1];
        const std::uint8_t q2 = concat[i + 2];
        const int max1 = row_max[q1];
        const int max2 = row_max[q2];
        for (std::uint8_t w0 = 0; w0 < kProtAlphabet; ++w0) {
          const int s0 = scorer.score(q0, w0);
          if (s0 + max1 + max2 < threshold) continue;
          for (std::uint8_t w1 = 0; w1 < kProtAlphabet; ++w1) {
            const int s01 = s0 + scorer.score(q1, w1);
            if (s01 + max2 < threshold) continue;
            for (std::uint8_t w2 = 0; w2 < kProtAlphabet; ++w2) {
              if (s01 + scorer.score(q2, w2) >= threshold) {
                entries.emplace_back(pack(w0, w1, w2), pos);
              }
            }
          }
        }
      }
    }
  }

  std::vector<std::uint32_t> counts(kIndexSize + 1, 0);
  for (const auto& [bucket, pos] : entries) ++counts[bucket];
  starts_.assign(kIndexSize + 1, 0);
  for (std::uint32_t b = 0; b < kIndexSize; ++b) starts_[b + 1] = starts_[b] + counts[b];
  positions_.resize(entries.size());
  std::vector<std::uint32_t> cursor(starts_.begin(), starts_.end() - 1);
  for (const auto& [bucket, pos] : entries) positions_[cursor[bucket]++] = pos;
}

}  // namespace mrbio::blast
