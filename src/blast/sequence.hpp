// Sequence records and FASTA I/O.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blast/alphabet.hpp"
#include "common/rng.hpp"

namespace mrbio::blast {

/// One biological sequence with its FASTA identifiers, residues kept in
/// the encoded byte-per-residue form.
struct Sequence {
  std::string id;           ///< first token of the defline
  std::string description;  ///< remainder of the defline (may be empty)
  std::vector<std::uint8_t> data;

  std::size_t length() const { return data.size(); }
};

/// Parses FASTA text into encoded sequences. Throws InputError on records
/// without a defline or empty ids; messages carry `origin` (the file path,
/// or a placeholder for in-memory text) and the 1-based line number.
std::vector<Sequence> parse_fasta(std::string_view text, SeqType type,
                                  std::string_view origin = "<memory>",
                                  std::size_t first_line = 1);

/// Reads and parses a FASTA file. Throws InputError (with the path) when
/// the file cannot be opened or is not FASTA.
std::vector<Sequence> read_fasta_file(const std::string& path, SeqType type);

/// Renders sequences back to FASTA (wrapping at 70 columns).
std::string to_fasta(const std::vector<Sequence>& seqs, SeqType type);

void write_fasta_file(const std::string& path, const std::vector<Sequence>& seqs,
                      SeqType type);

/// Shreds sequences into overlapping fragments, the paper's procedure for
/// simulating sequencing reads ("shredded them into 400 bp fragments
/// overlapping by 200 bp"). Fragments shorter than min_len are dropped.
/// Fragment ids are "<parent_id>/<start>-<end>" (0-based, half-open).
std::vector<Sequence> shred(const std::vector<Sequence>& seqs, std::size_t fragment_len,
                            std::size_t overlap, std::size_t min_len = 1);

/// Generates a random sequence of the given length.
Sequence random_sequence(Rng& rng, std::string id, std::size_t length, SeqType type);

/// Generates a "mutated copy": point substitutions with the given rate.
/// Used by tests and examples to create homologous pairs that BLAST must
/// find.
Sequence mutate(Rng& rng, const Sequence& src, std::string new_id, double sub_rate,
                SeqType type);

}  // namespace mrbio::blast
