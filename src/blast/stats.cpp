#include "blast/stats.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"

namespace mrbio::blast {

namespace {

/// Probability distribution over pair scores, offset so index 0 holds the
/// probability of `lo`.
struct ScoreDist {
  int lo = 0;
  std::vector<double> p;  ///< p[s - lo]
  double prob(int s) const {
    const int i = s - lo;
    if (i < 0 || i >= static_cast<int>(p.size())) return 0.0;
    return p[static_cast<std::size_t>(i)];
  }
  int hi() const { return lo + static_cast<int>(p.size()) - 1; }
};

ScoreDist pair_score_distribution(const Scorer& scorer) {
  const auto freqs = scorer.background();
  const int alphabet = scorer.type() == SeqType::Dna ? kDnaAlphabet : kProtAlphabet;
  int lo = 0;
  int hi = 0;
  for (int a = 0; a < alphabet; ++a) {
    for (int b = 0; b < alphabet; ++b) {
      lo = std::min(lo, scorer.score(static_cast<std::uint8_t>(a),
                                     static_cast<std::uint8_t>(b)));
      hi = std::max(hi, scorer.score(static_cast<std::uint8_t>(a),
                                     static_cast<std::uint8_t>(b)));
    }
  }
  ScoreDist d;
  d.lo = lo;
  d.p.assign(static_cast<std::size_t>(hi - lo + 1), 0.0);
  for (int a = 0; a < alphabet; ++a) {
    for (int b = 0; b < alphabet; ++b) {
      const int s = scorer.score(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b));
      d.p[static_cast<std::size_t>(s - lo)] +=
          freqs[static_cast<std::size_t>(a)] * freqs[static_cast<std::size_t>(b)];
    }
  }
  // Background frequencies may not sum exactly to 1; renormalize.
  const double total = std::accumulate(d.p.begin(), d.p.end(), 0.0);
  for (double& v : d.p) v /= total;
  return d;
}

double expectation(const ScoreDist& d) {
  double e = 0.0;
  for (std::size_t i = 0; i < d.p.size(); ++i) {
    e += d.p[i] * static_cast<double>(d.lo + static_cast<int>(i));
  }
  return e;
}

/// sum_s p(s) exp(lambda s)
double mgf(const ScoreDist& d, double lambda) {
  double v = 0.0;
  for (std::size_t i = 0; i < d.p.size(); ++i) {
    v += d.p[i] * std::exp(lambda * static_cast<double>(d.lo + static_cast<int>(i)));
  }
  return v;
}

double solve_lambda(const ScoreDist& d) {
  // f(lambda) = mgf - 1 has f(0) = 0, dips negative (E[s] < 0) and then
  // grows without bound (some positive score exists). Bracket the positive
  // root and bisect.
  double hi = 0.5;
  while (mgf(d, hi) < 1.0) {
    hi *= 2.0;
    MRBIO_CHECK(hi < 1e4, "lambda search diverged");
  }
  double lo = hi / 2.0;
  while (lo > 1e-9 && mgf(d, lo) > 1.0) lo /= 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (mgf(d, mid) > 1.0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double entropy_h(const ScoreDist& d, double lambda) {
  double h = 0.0;
  for (std::size_t i = 0; i < d.p.size(); ++i) {
    const double s = static_cast<double>(d.lo + static_cast<int>(i));
    h += d.p[i] * s * std::exp(lambda * s);
  }
  return lambda * h;
}

int score_gcd(const ScoreDist& d) {
  int g = 0;
  for (std::size_t i = 0; i < d.p.size(); ++i) {
    if (d.p[i] > 0.0) {
      g = std::gcd(g, std::abs(d.lo + static_cast<int>(i)));
    }
  }
  return g == 0 ? 1 : g;
}

/// Karlin & Altschul (1990) renewal-series computation of K (lattice case).
double compute_k(const ScoreDist& d1, double lambda, double h) {
  const int gcd = score_gcd(d1);

  // Distribution of S_k via iterated convolution of the pair distribution.
  ScoreDist dk = d1;
  double sigma = 0.0;
  const int kmax = 400;
  for (int k = 1; k <= kmax; ++k) {
    double term = 0.0;
    for (std::size_t i = 0; i < dk.p.size(); ++i) {
      if (dk.p[i] <= 0.0) continue;
      const int s = dk.lo + static_cast<int>(i);
      term += (s >= 0) ? dk.p[i] : dk.p[i] * std::exp(lambda * static_cast<double>(s));
    }
    term /= static_cast<double>(k);
    sigma += term;
    if (term < 1e-12 && k > 8) break;
    if (k == kmax) {
      MRBIO_LOG(Warn, "Karlin K series truncated at ", kmax, " terms (term=", term, ")");
    }
    // dk <- dk * d1 (convolution)
    if (k < kmax) {
      ScoreDist next;
      next.lo = dk.lo + d1.lo;
      next.p.assign(dk.p.size() + d1.p.size() - 1, 0.0);
      for (std::size_t i = 0; i < dk.p.size(); ++i) {
        if (dk.p[i] == 0.0) continue;
        for (std::size_t j = 0; j < d1.p.size(); ++j) {
          next.p[i + j] += dk.p[i] * d1.p[j];
        }
      }
      dk = std::move(next);
    }
  }

  const double delta = static_cast<double>(gcd);
  return delta * lambda * std::exp(-2.0 * sigma) /
         (h * (1.0 - std::exp(-lambda * delta)));
}

}  // namespace

KarlinParams karlin_ungapped(const Scorer& scorer) {
  const ScoreDist d = pair_score_distribution(scorer);
  MRBIO_REQUIRE(expectation(d) < 0.0,
                "scoring system has non-negative expected score; "
                "Karlin-Altschul statistics are undefined");
  MRBIO_REQUIRE(d.hi() > 0, "scoring system has no positive score");
  KarlinParams p;
  p.lambda = solve_lambda(d);
  p.H = entropy_h(d, p.lambda);
  p.K = compute_k(d, p.lambda, p.H);
  return p;
}

KarlinParams karlin_gapped(const Scorer& scorer) {
  if (scorer.type() == SeqType::Protein && scorer.gap_open() == 11 &&
      scorer.gap_extend() == 1) {
    // Published NCBI values for BLOSUM62 11/1 (from the BLAST+ tables).
    return KarlinParams{0.267, 0.041, 0.14};
  }
  // NCBI uses the ungapped parameters for blastn's default gap costs, and
  // we extend the same fallback to untabulated protein costs (with a note).
  if (scorer.type() == SeqType::Protein) {
    MRBIO_LOG(Info, "no gapped K-A table for protein gap costs ", scorer.gap_open(), "/",
              scorer.gap_extend(), "; using ungapped parameters");
  }
  return karlin_ungapped(scorer);
}

double bit_score(int raw_score, const KarlinParams& params) {
  return (params.lambda * static_cast<double>(raw_score) - std::log(params.K)) /
         std::log(2.0);
}

double evalue(int raw_score, double m_eff, double n_eff, const KarlinParams& params) {
  return params.K * m_eff * n_eff *
         std::exp(-params.lambda * static_cast<double>(raw_score));
}

int cutoff_score(double max_evalue, double m_eff, double n_eff, const KarlinParams& params) {
  MRBIO_REQUIRE(max_evalue > 0.0, "E-value cutoff must be positive");
  const double s = std::log(params.K * m_eff * n_eff / max_evalue) / params.lambda;
  return std::max(1, static_cast<int>(std::ceil(s)));
}

std::uint64_t length_adjustment(const KarlinParams& params, std::uint64_t query_len,
                                std::uint64_t db_len, std::uint64_t db_seqs) {
  const double m = static_cast<double>(query_len);
  const double n = static_cast<double>(db_len);
  const double nseq = static_cast<double>(std::max<std::uint64_t>(db_seqs, 1));
  double ell = 0.0;
  for (int iter = 0; iter < 20; ++iter) {
    const double m_eff = std::max(m - ell, 1.0);
    const double n_eff = std::max(n - nseq * ell, nseq);
    const double space = params.K * m_eff * n_eff;
    if (space <= 1.0) break;
    const double next = std::log(space) / params.H;
    if (std::abs(next - ell) < 0.5) {
      ell = next;
      break;
    }
    ell = next;
  }
  ell = std::max(0.0, std::min({ell, m - 1.0, (n - 1.0) / nseq}));
  return static_cast<std::uint64_t>(ell);
}

SearchSpace effective_search_space(const KarlinParams& params, std::uint64_t query_len,
                                   std::uint64_t db_len, std::uint64_t db_seqs) {
  const std::uint64_t ell = length_adjustment(params, query_len, db_len, db_seqs);
  SearchSpace s;
  s.m_eff = std::max<double>(static_cast<double>(query_len) - static_cast<double>(ell), 1.0);
  s.n_eff = std::max<double>(
      static_cast<double>(db_len) -
          static_cast<double>(db_seqs) * static_cast<double>(ell),
      1.0);
  return s;
}

}  // namespace mrbio::blast
