// FASTA offset index: random access to query blocks without pre-splitting.
//
// The paper's second planned improvement: "we are eliminating the need to
// pre-partition the query dataset by building an index of sequence offsets
// in the input FASTA file. This will allow selecting the size of the query
// blocks dynamically after the start of the program". FastaIndex scans a
// FASTA file once, records each record's byte offset, and serves arbitrary
// [first, count) record ranges with pread-style random access -- so any
// rank can fetch exactly the block its work unit names.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blast/sequence.hpp"

namespace mrbio::blast {

class FastaIndex {
 public:
  /// Scans the file and builds the offset table.
  explicit FastaIndex(std::string path, SeqType type);

  std::size_t num_records() const { return offsets_.size(); }
  const std::string& path() const { return path_; }
  SeqType type() const { return type_; }

  /// Reads records [first, first + count), clamped at the end of the file.
  std::vector<Sequence> read_range(std::size_t first, std::size_t count) const;

  /// Byte offset of record i (for tests / tooling).
  std::uint64_t offset(std::size_t i) const;

 private:
  std::string path_;
  SeqType type_;
  std::vector<std::uint64_t> offsets_;  ///< start of each '>' defline
  std::vector<std::size_t> lines_;      ///< 1-based line of each defline
  std::uint64_t file_size_ = 0;
};

/// Block-size schedule for dynamic chunking: `initial`-sized blocks over
/// the bulk of the queries, then geometrically halving block sizes (down
/// to min_block) over the final `taper_fraction` of the data -- the
/// paper's "progressively smaller query chunks toward the end of each
/// iteration [for] a more uniform filling of the cores". Returns per-block
/// query counts summing to total_queries.
std::vector<std::uint64_t> tapered_block_sizes(std::uint64_t total_queries,
                                               std::uint64_t initial_block,
                                               std::uint64_t min_block,
                                               double taper_fraction = 0.25);

}  // namespace mrbio::blast
