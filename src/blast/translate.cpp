#include "blast/translate.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"

namespace mrbio::blast {

namespace {

// The standard genetic code in the conventional TCAG ordering; '*' = stop.
constexpr char kStandardCode[] =
    "FFLLSSSSYY**CC*WLLLLPPPPHHQQRRRRIIIMTTTTNNKKSSRRVVVVAAAADDEEGGGG";

/// Maps this library's base codes (A=0 C=1 G=2 T=3) onto TCAG indices.
constexpr std::array<int, 4> kTcag = {2, 1, 3, 0};

/// Amino-acid code of an unambiguous codon; kProtAmbig for stops.
std::uint8_t translate_codon(std::uint8_t b1, std::uint8_t b2, std::uint8_t b3) {
  const int idx = kTcag[b1] * 16 + kTcag[b2] * 4 + kTcag[b3];
  const char aa = kStandardCode[idx];
  if (aa == '*') return kProtAmbig;
  return encode_protein(std::string_view(&aa, 1))[0];
}

}  // namespace

std::vector<std::uint8_t> translate(std::span<const std::uint8_t> dna, int frame) {
  MRBIO_REQUIRE(frame >= 0 && frame < 6, "frame index must be 0..5, got ", frame);
  std::vector<std::uint8_t> strand;
  std::span<const std::uint8_t> src = dna;
  if (frame >= 3) {
    strand = reverse_complement(dna);
    src = strand;
  }
  const std::size_t offset = static_cast<std::size_t>(frame % 3);
  std::vector<std::uint8_t> out;
  if (src.size() < offset + 3) return out;
  out.reserve((src.size() - offset) / 3);
  for (std::size_t i = offset; i + 3 <= src.size(); i += 3) {
    const std::uint8_t b1 = src[i];
    const std::uint8_t b2 = src[i + 1];
    const std::uint8_t b3 = src[i + 2];
    if (b1 >= kDnaAlphabet || b2 >= kDnaAlphabet || b3 >= kDnaAlphabet) {
      out.push_back(kProtAmbig);
    } else {
      out.push_back(translate_codon(b1, b2, b3));
    }
  }
  return out;
}

int frame_label(int frame_index) {
  MRBIO_REQUIRE(frame_index >= 0 && frame_index < 6, "bad frame index ", frame_index);
  return frame_index < 3 ? frame_index + 1 : -(frame_index - 3 + 1);
}

std::vector<BlastxResult> blastx_search(const std::shared_ptr<const DbVolume>& volume,
                                        const std::vector<Sequence>& dna_queries,
                                        const SearchOptions& options) {
  MRBIO_REQUIRE(options.type == SeqType::Protein,
                "blastx needs protein search options (make_protein_options())");

  // Build the 6N translated queries; remember each entry's source.
  struct FrameEntry {
    std::size_t query_idx;
    int frame_index;
  };
  std::vector<Sequence> translated;
  std::vector<FrameEntry> entries;
  for (std::size_t qi = 0; qi < dna_queries.size(); ++qi) {
    for (int f = 0; f < 6; ++f) {
      Sequence s;
      s.id = dna_queries[qi].id + "|frame" + std::to_string(frame_label(f));
      s.data = translate(dna_queries[qi].data, f);
      translated.push_back(std::move(s));
      entries.push_back({qi, f});
    }
  }

  BlastSearcher searcher(volume, options);
  const auto frame_results = searcher.search(translated);

  std::vector<BlastxResult> out(dna_queries.size());
  for (std::size_t qi = 0; qi < dna_queries.size(); ++qi) {
    out[qi].query_id = dna_queries[qi].id;
  }
  for (std::size_t e = 0; e < frame_results.size(); ++e) {
    const FrameEntry& entry = entries[e];
    const std::size_t dna_len = dna_queries[entry.query_idx].length();
    for (const Hsp& hsp : frame_results[e].hsps) {
      BlastxHsp bx;
      bx.protein = hsp;
      bx.frame = frame_label(entry.frame_index);
      const std::size_t off = static_cast<std::size_t>(entry.frame_index % 3);
      const std::uint64_t a = off + 3 * hsp.q_start;
      const std::uint64_t b = off + 3 * hsp.q_end;
      if (entry.frame_index < 3) {
        bx.q_dna_start = a;
        bx.q_dna_end = b;
      } else {
        bx.q_dna_start = dna_len - b;
        bx.q_dna_end = dna_len - a;
      }
      out[entry.query_idx].hsps.push_back(std::move(bx));
    }
  }
  for (auto& result : out) {
    std::sort(result.hsps.begin(), result.hsps.end(),
              [](const BlastxHsp& a, const BlastxHsp& b) {
                return hsp_better(a.protein, b.protein);
              });
    if (options.max_hits_per_query > 0 && result.hsps.size() > options.max_hits_per_query) {
      result.hsps.resize(options.max_hits_per_query);
    }
  }
  return out;
}

}  // namespace mrbio::blast
