// The high-level BLAST search API, standing in for the NCBI C++ Toolkit
// calls the paper wraps ("the map() function uses high-level NCBI C++
// Toolkit API calls to initialize both the query input and the DB input
// objects and to execute BLAST search").
//
// A BlastSearcher is constructed from one database partition plus options
// and searches a block of queries through the canonical three stages:
//
//   1. word scan      -- lookup table over the concatenated query block,
//                        database streamed past it
//   2. ungapped X-drop extension (two-hit triggered for protein)
//   3. gapped X-drop extension with traceback, for seeds whose ungapped
//      score reaches the gap trigger
//
// with Karlin-Altschul E-values over an effective search space. The
// DB-length override implements the paper's matrix-split convention ("the
// DB length is overridden in the BLAST call to be the entire length of
// the DB instead of the length of the current partition").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "blast/dbformat.hpp"
#include "blast/hsp.hpp"
#include "blast/score.hpp"
#include "blast/sequence.hpp"
#include "blast/stats.hpp"

namespace mrbio::blast {

struct SearchOptions {
  SeqType type = SeqType::Dna;

  // Stage 1.
  int word_size = 11;       ///< nucleotide word length (protein is fixed at 3)
  int threshold = 11;       ///< protein neighbourhood T; <= 0 = exact words only
  bool two_hit = true;      ///< protein two-hit seeding
  int two_hit_window = 40;  ///< max diagonal distance between the two hits
  bool both_strands = true; ///< DNA: search plus and minus query strands

  // Scoring.
  int match = 2;
  int mismatch = -3;
  int gap_open = 5;   ///< protein default is 11 (set via make_protein_options)
  int gap_extend = 2; ///< protein default is 1

  // Stages 2-3.
  int xdrop_ungapped = 20;
  int xdrop_gapped = 30;
  double gap_trigger_bits = 22.0;  ///< ungapped bits needed to run stage 3

  // Reporting.
  double evalue_cutoff = 10.0;
  std::size_t max_hits_per_query = 500;  ///< paper's K limit; 0 = unlimited
  bool filter_low_complexity = true;
  bool exclude_self_hits = false;  ///< drop hits of a shredded fragment on its parent

  // Whole-database statistics for partition searches (0 = use the
  // partition's own totals).
  std::uint64_t effective_db_length = 0;
  std::uint64_t effective_db_seqs = 0;
};

/// Options preset for protein searches (BLOSUM62 11/1, word 3, T=11).
SearchOptions make_protein_options();

/// Hits of one query against the searched partition.
struct QueryResult {
  std::string query_id;
  std::vector<Hsp> hsps;  ///< E-value sorted, truncated to max_hits
};

/// Pipeline counters for tests, tuning and the utilization benchmarks.
struct SearchStats {
  std::uint64_t word_hits = 0;
  std::uint64_t ungapped_extensions = 0;
  std::uint64_t gapped_extensions = 0;
  std::uint64_t hsps_reported = 0;
};

class BlastSearcher {
 public:
  /// The volume is shared so the paper's DB-object caching between map()
  /// invocations is expressible without copying partitions.
  BlastSearcher(std::shared_ptr<const DbVolume> volume, SearchOptions options);

  /// Searches a block of queries; results are returned in query order.
  std::vector<QueryResult> search(const std::vector<Sequence>& queries) const;

  const SearchOptions& options() const { return options_; }
  const DbVolume& volume() const { return *volume_; }
  const SearchStats& last_stats() const { return stats_; }
  const KarlinParams& ungapped_params() const { return params_ungapped_; }
  const KarlinParams& gapped_params() const { return params_gapped_; }

 private:
  std::shared_ptr<const DbVolume> volume_;
  SearchOptions options_;
  Scorer scorer_;
  KarlinParams params_ungapped_;
  KarlinParams params_gapped_;
  mutable SearchStats stats_;
};

}  // namespace mrbio::blast
