// Karlin-Altschul statistics: lambda, K, H, bit scores, E-values and
// effective search-space (length adjustment) computation.
//
// Ungapped parameters are computed numerically from the scoring system and
// background frequencies:
//   lambda: unique positive root of sum_ij p_i p_j exp(lambda * s_ij) = 1
//   H:      lambda * sum_ij p_i p_j s_ij exp(lambda * s_ij)   (nats/pair)
//   K:      Karlin & Altschul (1990) renewal formula
//             K = gcd * lambda * exp(-2 sigma) / (H * (1 - exp(-gcd*lambda)))
//           with sigma = sum_{k>=1} (1/k) [P(S_k >= 0) + E(e^{lambda S_k}; S_k < 0)]
//           evaluated by convolving the pair-score distribution.
// Gapped parameters come from a small table of published NCBI values (the
// reference implementation does the same: gapped K-A parameters are not
// computable analytically and are tabulated from simulation), falling back
// to the ungapped values when a scoring system is not tabulated -- which
// is also NCBI's behaviour for default blastn costs.
#pragma once

#include <cstdint>

#include "blast/score.hpp"

namespace mrbio::blast {

struct KarlinParams {
  double lambda = 0.0;  ///< nats per score unit
  double K = 0.0;       ///< search-space scale factor
  double H = 0.0;       ///< relative entropy, nats per aligned pair
};

/// Computes ungapped Karlin-Altschul parameters for the scoring system.
/// Throws InputError if the score expectation is non-negative or no
/// positive score exists (statistics are undefined there).
KarlinParams karlin_ungapped(const Scorer& scorer);

/// Gapped parameters for the scoring system (see file comment).
KarlinParams karlin_gapped(const Scorer& scorer);

/// Normalized bit score: (lambda * raw - ln K) / ln 2.
double bit_score(int raw_score, const KarlinParams& params);

/// E-value over an effective search space of m_eff * n_eff.
double evalue(int raw_score, double m_eff, double n_eff, const KarlinParams& params);

/// Smallest raw score whose E-value is <= `max_evalue` for the given
/// effective search space.
int cutoff_score(double max_evalue, double m_eff, double n_eff, const KarlinParams& params);

/// NCBI-style iterative length adjustment: the expected HSP length
/// subtracted from query and database lengths to form the effective
/// search space. db_len is the total residue count, db_seqs the number of
/// database sequences.
std::uint64_t length_adjustment(const KarlinParams& params, std::uint64_t query_len,
                                std::uint64_t db_len, std::uint64_t db_seqs);

/// Effective search space helper combining the above.
struct SearchSpace {
  double m_eff = 1.0;
  double n_eff = 1.0;
};
SearchSpace effective_search_space(const KarlinParams& params, std::uint64_t query_len,
                                   std::uint64_t db_len, std::uint64_t db_seqs);

}  // namespace mrbio::blast
