// Stage-1 word lookup tables.
//
// Following the reference implementation, queries of one block are
// concatenated (sentinel-separated) into a single coordinate space and a
// lookup table is built over that space; the database is then streamed
// past the table ("builds a word lookup table out of them, and streams the
// database past this lookup table").
//
// Nucleotide: exact words of length `word_size` (default 11), packed 2 bits
// per base, direct-addressed table of query offsets.
//
// Protein: words of length 3 with BLOSUM62 neighbourhood expansion -- a
// query word's bucket also receives every word scoring >= threshold T
// against it (default T=11), which is what lets protein BLAST reach remote
// homologies. threshold <= 0 selects exact-match seeding only (the mode
// the paper notes the DeCypher FPGA accelerator uses by default).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "blast/score.hpp"

namespace mrbio::blast {

/// Direct-addressed nucleotide word table over a concatenated query block.
class NucLookup {
 public:
  static constexpr int kMinWord = 4;
  static constexpr int kMaxWord = 13;

  NucLookup(std::span<const std::uint8_t> concat_queries, int word_size);

  int word_size() const { return word_size_; }

  /// Query offsets whose word equals `packed` (2-bit packed, most recent
  /// base in the low bits as produced by the scanner's rolling update).
  std::span<const std::uint32_t> hits(std::uint32_t packed) const {
    return {positions_.data() + starts_[packed],
            starts_[packed + 1] - starts_[packed]};
  }

  std::size_t total_positions() const { return positions_.size(); }

 private:
  int word_size_;
  std::vector<std::uint32_t> starts_;     ///< bucket boundaries, size 4^w + 1
  std::vector<std::uint32_t> positions_;  ///< query offsets grouped by word
};

/// Protein 3-mer lookup with scored neighbourhood.
class ProtLookup {
 public:
  static constexpr int kWordSize = 3;
  static constexpr std::uint32_t kIndexSize = 20u * 20u * 20u;

  /// threshold > 0: include neighbourhood words scoring >= threshold.
  /// threshold <= 0: exact words only.
  ProtLookup(std::span<const std::uint8_t> concat_queries, int threshold,
             const Scorer& scorer);

  /// Packs three residue codes (< 20 each) into a table index.
  static std::uint32_t pack(std::uint8_t a, std::uint8_t b, std::uint8_t c) {
    return (static_cast<std::uint32_t>(a) * 20u + b) * 20u + c;
  }

  std::span<const std::uint32_t> hits(std::uint32_t packed) const {
    return {positions_.data() + starts_[packed],
            starts_[packed + 1] - starts_[packed]};
  }

  std::size_t total_positions() const { return positions_.size(); }

 private:
  std::vector<std::uint32_t> starts_;
  std::vector<std::uint32_t> positions_;
};

}  // namespace mrbio::blast
