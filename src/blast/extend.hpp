// Stage-2 ungapped and stage-3 gapped extensions.
//
// Ungapped: classic X-drop extension of a word hit in both directions;
// the result is the maximal-scoring ungapped segment pair through the
// seed, abandoned early once the running score falls more than `xdrop`
// below the best seen.
//
// Gapped: X-drop dynamic programming with affine gaps (Zhang et al. /
// NCBI ALIGN_EX style) from a single seed point, extended independently
// to the right and to the left with full traceback, then spliced. Rows
// maintain an active column window that the X-drop criterion shrinks and
// grows, so cost is proportional to the explored band, not to the full
// DP matrix.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "blast/score.hpp"

namespace mrbio::blast {

/// Result of an ungapped extension; coordinates are half-open offsets into
/// the sequences passed to the call.
struct UngappedSegment {
  std::size_t q_start = 0;
  std::size_t q_end = 0;
  std::size_t s_start = 0;
  std::size_t s_end = 0;
  int score = 0;
  /// Offset pair of the highest-scoring column, the anchor for the gapped
  /// stage.
  std::size_t q_best = 0;
  std::size_t s_best = 0;
};

/// Extends a word match of length `word_len` at (q_pos, s_pos). Sentinel
/// and ambiguity codes stop the extension via their scores.
UngappedSegment extend_ungapped(std::span<const std::uint8_t> query,
                                std::span<const std::uint8_t> subject, std::size_t q_pos,
                                std::size_t s_pos, std::size_t word_len,
                                const Scorer& scorer, int xdrop);

/// One aligned run: `len` columns of the given type.
struct EditOp {
  enum class Type : std::uint8_t { Match, InsertQ, InsertS };
  // Match = both advance; InsertQ = gap in subject (query residue alone);
  // InsertS = gap in query (subject residue alone).
  Type type;
  std::uint32_t len;
};

struct GappedAlignment {
  int score = 0;
  std::size_t q_start = 0;
  std::size_t q_end = 0;
  std::size_t s_start = 0;
  std::size_t s_end = 0;
  std::vector<EditOp> ops;  ///< from (q_start, s_start) to (q_end, s_end)
  std::uint32_t identities = 0;
  std::uint32_t align_len = 0;  ///< alignment columns including gaps
  std::uint32_t gaps = 0;       ///< gapped columns
};

/// Gapped X-drop extension through the seed pair (q_seed, s_seed), which
/// must be a genuine residue match position. The seed column is counted
/// once (in the rightward pass).
GappedAlignment extend_gapped(std::span<const std::uint8_t> query,
                              std::span<const std::uint8_t> subject, std::size_t q_seed,
                              std::size_t s_seed, const Scorer& scorer, int xdrop);

}  // namespace mrbio::blast
