// Sequence alphabets and encodings.
//
// Internally every residue is one byte holding a small code:
//   DNA:     A=0 C=1 G=2 T=3, kDnaAmbig(=4) for IUPAC ambiguity codes/N,
//            kSentinel(=15) separates concatenated sequences.
//   Protein: the 20 standard residues get codes 0..19 (alphabetical by
//            letter), B/Z/X/U/* collapse to kProtAmbig(=20), kSentinel
//            separates sequences.
//
// Words containing ambiguity or sentinel codes never enter lookup tables,
// which both matches NCBI behaviour (N is not seeded) and makes the
// concatenated query trick of the scanning stage safe.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mrbio::blast {

enum class SeqType { Dna, Protein };

inline constexpr std::uint8_t kDnaAmbig = 4;
inline constexpr std::uint8_t kProtAmbig = 20;
inline constexpr std::uint8_t kSentinel = 31;  ///< shared by both alphabets
inline constexpr int kDnaAlphabet = 4;
inline constexpr int kProtAlphabet = 20;

/// Encodes an ASCII nucleotide sequence (case-insensitive); unknown or
/// ambiguous characters map to kDnaAmbig.
std::vector<std::uint8_t> encode_dna(std::string_view seq);

/// Encodes an ASCII protein sequence; nonstandard residues map to
/// kProtAmbig.
std::vector<std::uint8_t> encode_protein(std::string_view seq);

std::vector<std::uint8_t> encode(std::string_view seq, SeqType type);

/// Decodes back to ASCII ('N' / 'X' for ambiguity codes).
std::string decode_dna(std::span<const std::uint8_t> codes);
std::string decode_protein(std::span<const std::uint8_t> codes);
std::string decode(std::span<const std::uint8_t> codes, SeqType type);

/// Reverse complement of encoded DNA (ambiguity maps to itself).
std::vector<std::uint8_t> reverse_complement(std::span<const std::uint8_t> codes);

/// True if the code is a real residue of the alphabet (not ambig/sentinel).
inline bool is_dna_base(std::uint8_t c) { return c < kDnaAlphabet; }
inline bool is_prot_residue(std::uint8_t c) { return c < kProtAlphabet; }

/// 2-bit packing of unambiguous DNA codes, 4 bases per byte, for the
/// database volume format. Ambiguous positions must be handled separately
/// by the caller (the DB format stores an exception list).
std::vector<std::uint8_t> pack_2bit(std::span<const std::uint8_t> codes);
std::vector<std::uint8_t> unpack_2bit(std::span<const std::uint8_t> packed, std::size_t n);

}  // namespace mrbio::blast
