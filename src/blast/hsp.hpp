// High-Scoring Pair records, the unit of BLAST output, plus serialization
// for shipping HSPs as MapReduce values and the culling helpers applied
// before reporting.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "blast/extend.hpp"
#include "common/serialize.hpp"

namespace mrbio::blast {

struct Hsp {
  std::string subject_id;
  /// Coordinates are 0-based half-open on the plus strand of each sequence.
  std::uint64_t q_start = 0;
  std::uint64_t q_end = 0;
  std::uint64_t s_start = 0;
  std::uint64_t s_end = 0;
  bool minus_strand = false;  ///< query matched on its reverse complement
  std::int32_t raw_score = 0;
  double bit_score = 0.0;
  double evalue = 0.0;
  std::uint32_t identities = 0;
  std::uint32_t align_len = 0;
  std::uint32_t gaps = 0;
  /// Edit script of the alignment. For minus-strand hits the script is in
  /// the coordinates of the reverse-complemented query (the frame the
  /// alignment was computed in).
  std::vector<EditOp> ops;

  double identity_fraction() const {
    return align_len == 0 ? 0.0 : static_cast<double>(identities) / align_len;
  }

  void serialize(ByteWriter& w) const;
  static Hsp deserialize(ByteReader& r);
};

/// Orders by E-value ascending, breaking ties by raw score descending then
/// subject id / coordinates, so result files are fully deterministic.
bool hsp_better(const Hsp& a, const Hsp& b);

/// Sorts and truncates a query's HSP list to `max_hits` (0 = unlimited),
/// the reduce-stage behaviour of the paper's Fig. 1 ("sorts each query
/// hits by the E-value, selects the requested number of top hits").
void sort_and_truncate(std::vector<Hsp>& hsps, std::size_t max_hits);

/// Removes HSPs whose query and subject ranges are both contained inside a
/// higher-scoring HSP of the same subject (the basic redundancy cull).
void cull_contained(std::vector<Hsp>& hsps);

/// Tabular rendering (BLAST outfmt-6 style).
std::string to_tabular(const std::string& query_id, const Hsp& hsp);

}  // namespace mrbio::blast
