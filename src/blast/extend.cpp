#include "blast/extend.hpp"

#include <algorithm>
#include <climits>

#include "common/error.hpp"
#include "simd/simd.hpp"

namespace mrbio::blast {

UngappedSegment extend_ungapped(std::span<const std::uint8_t> query,
                                std::span<const std::uint8_t> subject, std::size_t q_pos,
                                std::size_t s_pos, std::size_t word_len,
                                const Scorer& scorer, int xdrop) {
  MRBIO_CHECK(q_pos + word_len <= query.size() && s_pos + word_len <= subject.size(),
              "seed out of range");
  UngappedSegment seg;

  // Score the seed word itself.
  int score = 0;
  int best = 0;
  std::size_t best_q_end = q_pos;
  std::size_t best_point = 0;  // offset of best column within the seed/right scan
  for (std::size_t k = 0; k < word_len; ++k) {
    score += scorer.score(query[q_pos + k], subject[s_pos + k]);
    if (score > best) {
      best = score;
      best_q_end = q_pos + k + 1;
    }
  }

  const simd::Kernels& kern = simd::kernels();

  // Rightward X-drop extension.
  {
    const std::size_t n = std::min(query.size() - (q_pos + word_len),
                                   subject.size() - (s_pos + word_len));
    const simd::DiagScanResult r =
        kern.diag_scan(query.data() + q_pos + word_len, subject.data() + s_pos + word_len, n,
                       false, scorer.table(), score, best, xdrop);
    if (r.best > best) {
      best = r.best;
      best_q_end = q_pos + word_len + r.best_len;
    }
  }
  seg.q_end = best_q_end;
  seg.s_end = s_pos + (best_q_end - q_pos);
  const int right_best = best;

  // Leftward X-drop extension from just before the seed.
  int left_gain = 0;
  {
    const std::size_t n = std::min(q_pos, s_pos);
    const simd::DiagScanResult r =
        kern.diag_scan(query.data() + q_pos, subject.data() + s_pos, n, true, scorer.table(),
                       0, 0, xdrop);
    seg.q_start = q_pos - r.best_len;
    seg.s_start = s_pos - r.best_len;
    left_gain = r.best;
  }

  seg.score = right_best + left_gain;
  // Anchor for the gapped stage: the first column of the best-scoring
  // right-hand point (a guaranteed aligned residue pair).
  best_point = best_q_end > q_pos ? best_q_end - 1 : q_pos;
  seg.q_best = best_point;
  seg.s_best = s_pos + (best_point - q_pos);
  return seg;
}

namespace {

constexpr int kNegInf = simd::kNegInf;  // == INT_MIN / 4, shared with the kernels

// Traceback flags per cell.
constexpr std::uint8_t kHDiag = 0;
constexpr std::uint8_t kHFromE = 1;
constexpr std::uint8_t kHFromF = 2;
constexpr std::uint8_t kHStart = 3;
constexpr std::uint8_t kHMask = 3;
constexpr std::uint8_t kEExtend = 1 << 2;  ///< E came from E (else from H)
constexpr std::uint8_t kFExtend = 1 << 3;  ///< F came from F (else from H)

struct TbRow {
  std::size_t lo = 0;
  std::vector<std::uint8_t> tb;
};

struct DirResult {
  int score = 0;
  std::size_t a_len = 0;  ///< residues of `a` consumed by the best alignment
  std::size_t b_len = 0;
  std::vector<EditOp> ops;  ///< in forward order of (a, b) as passed in
};

void push_op(std::vector<EditOp>& ops, EditOp::Type t) {
  if (!ops.empty() && ops.back().type == t) {
    ++ops.back().len;
  } else {
    ops.push_back(EditOp{t, 1});
  }
}

/// One-directional gapped X-drop DP of `a` against `b` anchored at their
/// starts; returns the best-scoring extension with traceback.
DirResult extend_dir(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
                     const Scorer& scorer, int xdrop) {
  const int open_first = scorer.gap_open() + scorer.gap_extend();  ///< cost of gap length 1
  const int ext = scorer.gap_extend();
  const simd::Kernels& kern = simd::kernels();

  // Per-row F/D candidates, precomputed by the dispatched kernel. The
  // sequential E-chain, pruning and traceback below stay scalar and are
  // shared by every ISA level, which is what keeps gapped alignments
  // bit-identical across --simd settings.
  std::vector<int> d_buf;
  std::vector<int> f_buf;
  std::vector<std::uint8_t> fflag_buf;

  std::vector<TbRow> rows;
  int best = 0;
  std::size_t best_i = 0;
  std::size_t best_j = 0;

  // Row 0: gaps in `a` only.
  std::vector<int> h_prev;
  std::vector<int> e_prev_unused;  // E is an intra-row state; F crosses rows
  std::vector<int> f_prev;
  std::size_t lo_prev = 0;
  {
    TbRow row0;
    row0.lo = 0;
    int h = 0;
    for (std::size_t j = 0;; ++j) {
      if (j > 0) h = -(open_first + static_cast<int>(j - 1) * ext);
      if (j > b.size() || h < best - xdrop) break;
      h_prev.push_back(h);
      f_prev.push_back(kNegInf);
      std::uint8_t tb = (j == 0) ? kHStart : kHFromE;
      if (j > 1) tb |= kEExtend;
      row0.tb.push_back(tb);
    }
    rows.push_back(std::move(row0));
    lo_prev = 0;
  }

  for (std::size_t i = 1; i <= a.size(); ++i) {
    if (h_prev.empty()) break;
    const std::size_t lo = lo_prev;                          // F/diag reach
    const std::size_t hi_prev = lo_prev + h_prev.size() - 1;  // last stored j of prev row
    const std::size_t hi = std::min(hi_prev + 1, b.size());
    if (lo > hi) break;

    TbRow row;
    row.lo = lo;
    std::vector<int> h_cur;
    std::vector<int> f_cur;
    const std::size_t m = hi - lo + 1;
    h_cur.reserve(m);
    f_cur.reserve(m);

    // Vertical (gap in b) and diagonal candidates for the whole row: both
    // read only the previous row, so they vectorize. lo == lo_prev, so
    // window offsets t = j - lo line up with the previous row directly.
    d_buf.resize(m);
    f_buf.resize(m);
    fflag_buf.resize(m);
    const int* score_row = scorer.table() + static_cast<std::size_t>(a[i - 1]) * kScoreDim;
    kern.gapped_row_prep(h_prev.data(), f_prev.data(), h_prev.size(), b.data() + lo,
                         score_row, open_first, ext, m, d_buf.data(), f_buf.data(),
                         fflag_buf.data());

    int e_run = kNegInf;  // E state carried left-to-right within the row
    bool any_alive = false;
    std::size_t first_alive = 0;
    std::size_t last_alive = 0;

    for (std::size_t j = lo; j <= hi; ++j) {
      const std::size_t t = j - lo;
      int f = f_buf[t];
      std::uint8_t tb = fflag_buf[t] ? kFExtend : std::uint8_t{0};

      // Horizontal (gap in a): from current row, previous j.
      int e = kNegInf;
      if (j > lo) {
        const int prev_h = h_cur.back();
        const int from_h = prev_h > kNegInf ? prev_h - open_first : kNegInf;
        const int from_e = e_run > kNegInf ? e_run - ext : kNegInf;
        if (from_e > from_h) {
          e = from_e;
          tb |= kEExtend;
        } else {
          e = from_h;
        }
      }
      e_run = e;

      const int d = d_buf[t];

      int h = std::max({d, e, f});
      if (h == d && d > kNegInf) {
        tb |= kHDiag;
      } else if (h == e && e > kNegInf) {
        tb |= kHFromE;
      } else if (h == f && f > kNegInf) {
        tb |= kHFromF;
      } else {
        tb |= kHStart;
        h = kNegInf;
      }

      if (h < best - xdrop) {
        h = kNegInf;
        tb = (tb & ~kHMask) | kHStart;
      }
      if (f < best - xdrop) f = kNegInf;
      if (e < best - xdrop) e_run = kNegInf;

      h_cur.push_back(h);
      f_cur.push_back(f);
      row.tb.push_back(tb);

      if (h > kNegInf || f > kNegInf || e_run > kNegInf) {
        if (!any_alive) first_alive = j;
        last_alive = j;
        any_alive = true;
      }
      if (h > best) {
        best = h;
        best_i = i;
        best_j = j;
      }
    }

    if (!any_alive) break;

    // Trim the next row's window to the alive region.
    const std::size_t trim = first_alive - lo;
    if (trim > 0) {
      h_cur.erase(h_cur.begin(), h_cur.begin() + static_cast<std::ptrdiff_t>(trim));
      f_cur.erase(f_cur.begin(), f_cur.begin() + static_cast<std::ptrdiff_t>(trim));
    }
    h_cur.resize(last_alive - first_alive + 1, kNegInf);
    f_cur.resize(last_alive - first_alive + 1, kNegInf);
    h_prev = std::move(h_cur);
    f_prev = std::move(f_cur);
    lo_prev = first_alive;
    rows.push_back(std::move(row));
  }

  // Traceback from the best H cell.
  DirResult out;
  out.score = best;
  out.a_len = best_i;
  out.b_len = best_j;
  std::vector<EditOp> rev;
  std::size_t i = best_i;
  std::size_t j = best_j;
  char state = 'H';
  while (i != 0 || j != 0) {
    MRBIO_CHECK(i < rows.size(), "traceback row out of range");
    const TbRow& row = rows[i];
    MRBIO_CHECK(j >= row.lo && j - row.lo < row.tb.size(), "traceback column out of range");
    const std::uint8_t tb = row.tb[j - row.lo];
    if (state == 'H') {
      switch (tb & kHMask) {
        case kHDiag:
          push_op(rev, EditOp::Type::Match);
          --i;
          --j;
          break;
        case kHFromE:
          state = 'E';
          break;
        case kHFromF:
          state = 'F';
          break;
        default:
          MRBIO_CHECK(false, "traceback reached a dead cell");
      }
    } else if (state == 'E') {
      push_op(rev, EditOp::Type::InsertS);
      if ((tb & kEExtend) == 0) state = 'H';
      --j;
    } else {  // 'F'
      push_op(rev, EditOp::Type::InsertQ);
      if ((tb & kFExtend) == 0) state = 'H';
      --i;
    }
  }
  out.ops.assign(rev.rbegin(), rev.rend());
  return out;
}

}  // namespace

GappedAlignment extend_gapped(std::span<const std::uint8_t> query,
                              std::span<const std::uint8_t> subject, std::size_t q_seed,
                              std::size_t s_seed, const Scorer& scorer, int xdrop) {
  MRBIO_CHECK(q_seed < query.size() && s_seed < subject.size(), "gapped seed out of range");

  // Rightward pass includes the seed column.
  const DirResult right = extend_dir(query.subspan(q_seed), subject.subspan(s_seed),
                                     scorer, xdrop);

  // Leftward pass on reversed prefixes (excluding the seed column).
  std::vector<std::uint8_t> qrev(query.begin(),
                                 query.begin() + static_cast<std::ptrdiff_t>(q_seed));
  std::vector<std::uint8_t> srev(subject.begin(),
                                 subject.begin() + static_cast<std::ptrdiff_t>(s_seed));
  std::reverse(qrev.begin(), qrev.end());
  std::reverse(srev.begin(), srev.end());
  const DirResult left = extend_dir(qrev, srev, scorer, xdrop);

  GappedAlignment out;
  out.score = left.score + right.score;
  out.q_start = q_seed - left.a_len;
  out.s_start = s_seed - left.b_len;
  out.q_end = q_seed + right.a_len;
  out.s_end = s_seed + right.b_len;

  // Left ops are in reversed coordinates; flip them back and splice.
  out.ops.assign(left.ops.rbegin(), left.ops.rend());
  for (const EditOp& op : right.ops) {
    if (!out.ops.empty() && out.ops.back().type == op.type) {
      out.ops.back().len += op.len;
    } else {
      out.ops.push_back(op);
    }
  }

  // Walk the ops once for identity/gap accounting.
  std::size_t q = out.q_start;
  std::size_t s = out.s_start;
  for (const EditOp& op : out.ops) {
    out.align_len += op.len;
    switch (op.type) {
      case EditOp::Type::Match:
        for (std::uint32_t k = 0; k < op.len; ++k) {
          if (query[q + k] == subject[s + k] && query[q + k] < kSentinel) ++out.identities;
        }
        q += op.len;
        s += op.len;
        break;
      case EditOp::Type::InsertQ:
        q += op.len;
        out.gaps += op.len;
        break;
      case EditOp::Type::InsertS:
        s += op.len;
        out.gaps += op.len;
        break;
    }
  }
  MRBIO_CHECK(q == out.q_end && s == out.s_end, "edit script does not span the alignment");
  return out;
}

}  // namespace mrbio::blast
