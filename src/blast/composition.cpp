#include "blast/composition.hpp"

#include "common/error.hpp"

namespace mrbio::blast {

std::size_t kmer_dims(int k) {
  MRBIO_REQUIRE(k >= 1 && k <= 8, "k-mer size must be in [1, 8], got ", k);
  return std::size_t{1} << (2 * k);
}

std::vector<float> kmer_frequencies(std::span<const std::uint8_t> seq, int k) {
  const std::size_t dims = kmer_dims(k);
  std::vector<float> out(dims, 0.0f);
  const std::uint32_t mask = static_cast<std::uint32_t>(dims - 1);
  std::uint32_t word = 0;
  int run = 0;
  std::uint64_t total = 0;
  std::vector<std::uint32_t> counts(dims, 0);
  for (const std::uint8_t c : seq) {
    if (c < kDnaAlphabet) {
      word = ((word << 2) | c) & mask;
      if (++run >= k) {
        ++counts[word];
        ++total;
      }
    } else {
      run = 0;
    }
  }
  if (total == 0) return out;
  for (std::size_t i = 0; i < dims; ++i) {
    out[i] = static_cast<float>(counts[i]) / static_cast<float>(total);
  }
  return out;
}

}  // namespace mrbio::blast
