#include "blast/fasta_index.hpp"

#include <fstream>

#include "common/error.hpp"

namespace mrbio::blast {

FastaIndex::FastaIndex(std::string path, SeqType type)
    : path_(std::move(path)), type_(type) {
  std::ifstream in(path_, std::ios::binary);
  MRBIO_REQUIRE(in.good(), "cannot open FASTA file: ", path_);
  std::string line;
  std::uint64_t offset = 0;
  std::size_t lineno = 0;
  bool saw_residues_first = false;
  while (std::getline(in, line)) {
    ++lineno;
    const auto raw_size = static_cast<std::uint64_t>(line.size());
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) {
      if (line[0] == '>') {
        offsets_.push_back(offset);
        lines_.push_back(lineno);
      } else if (offsets_.empty() && !saw_residues_first) {
        // Remember the spot; only an error if no defline ever appears
        // (headers of other text formats would fail record parsing later,
        // with the same file:line context).
        saw_residues_first = true;
      }
    }
    offset += raw_size + 1;  // '\n'
  }
  MRBIO_REQUIRE(in.eof(), "read error on FASTA file: ", path_);
  file_size_ = offset;
  MRBIO_REQUIRE(!saw_residues_first || !offsets_.empty(), path_,
                ":1: content before any '>' defline (not a FASTA file?)");
}

std::uint64_t FastaIndex::offset(std::size_t i) const {
  MRBIO_CHECK(i < offsets_.size(), "FastaIndex::offset out of range");
  return offsets_[i];
}

std::vector<Sequence> FastaIndex::read_range(std::size_t first, std::size_t count) const {
  if (first >= offsets_.size() || count == 0) return {};
  const std::size_t last = std::min(first + count, offsets_.size());
  const std::uint64_t begin = offsets_[first];
  const std::uint64_t end = last < offsets_.size() ? offsets_[last] : file_size_;

  std::ifstream in(path_, std::ios::binary);
  MRBIO_REQUIRE(in.good(), "cannot reopen FASTA file: ", path_);
  in.seekg(static_cast<std::streamoff>(begin));
  std::string chunk(static_cast<std::size_t>(end - begin), '\0');
  in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  const auto got = static_cast<std::size_t>(in.gcount());
  if (got < chunk.size()) {
    // A file whose last line has no trailing '\n' indexes one byte short
    // of file_size_; only the final range may legitimately come up short.
    MRBIO_REQUIRE(in.eof() && last == offsets_.size() && got + 1 == chunk.size(),
                  "short read from ", path_, " at byte offset ", begin, ": wanted ",
                  chunk.size(), " bytes, got ", got,
                  " (file truncated since indexing?)");
    chunk.resize(got);
  }
  return parse_fasta(chunk, type_, path_, lines_[first]);
}

std::vector<std::uint64_t> tapered_block_sizes(std::uint64_t total_queries,
                                               std::uint64_t initial_block,
                                               std::uint64_t min_block,
                                               double taper_fraction) {
  MRBIO_REQUIRE(initial_block > 0 && min_block > 0 && min_block <= initial_block,
                "bad tapered block sizes");
  MRBIO_REQUIRE(taper_fraction >= 0.0 && taper_fraction < 1.0,
                "taper_fraction must be in [0, 1)");
  std::vector<std::uint64_t> blocks;
  const auto bulk =
      static_cast<std::uint64_t>(static_cast<double>(total_queries) * (1.0 - taper_fraction));
  std::uint64_t done = 0;
  while (done + initial_block <= bulk) {
    blocks.push_back(initial_block);
    done += initial_block;
  }
  std::uint64_t size = initial_block;
  while (done < total_queries) {
    size = std::max(min_block, size / 2);
    const std::uint64_t take = std::min<std::uint64_t>(size, total_queries - done);
    blocks.push_back(take);
    done += take;
  }
  return blocks;
}

}  // namespace mrbio::blast
