#include "blast/sequence.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace mrbio::blast {

std::vector<Sequence> parse_fasta(std::string_view text, SeqType type,
                                  std::string_view origin, std::size_t first_line) {
  std::vector<Sequence> out;
  std::string residues;
  bool in_record = false;

  auto flush = [&]() {
    if (in_record) {
      out.back().data = encode(residues, type);
      residues.clear();
    }
  };

  std::size_t pos = 0;
  std::size_t lineno = first_line;
  for (; pos < text.size(); ++lineno) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = eol + 1;

    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      std::string_view defline = line.substr(1);
      const std::size_t sp = defline.find_first_of(" \t");
      Sequence seq;
      seq.id = std::string(defline.substr(0, sp));
      if (sp != std::string_view::npos) {
        const std::size_t rest = defline.find_first_not_of(" \t", sp);
        if (rest != std::string_view::npos) seq.description = std::string(defline.substr(rest));
      }
      MRBIO_REQUIRE(!seq.id.empty(), origin, ":", lineno, ": FASTA record with empty id");
      out.push_back(std::move(seq));
      in_record = true;
    } else {
      MRBIO_REQUIRE(in_record, origin, ":", lineno,
                    ": FASTA residues before any '>' defline (not a FASTA file?)");
      residues.append(line);
    }
  }
  flush();
  return out;
}

std::vector<Sequence> read_fasta_file(const std::string& path, SeqType type) {
  std::ifstream in(path, std::ios::binary);
  MRBIO_REQUIRE(in.good(), "cannot open FASTA file: ", path);
  std::ostringstream ss;
  ss << in.rdbuf();
  MRBIO_REQUIRE(in.good() || in.eof(), "read error on FASTA file: ", path);
  return parse_fasta(ss.str(), type, path);
}

std::string to_fasta(const std::vector<Sequence>& seqs, SeqType type) {
  std::string out;
  for (const Sequence& s : seqs) {
    out.push_back('>');
    out.append(s.id);
    if (!s.description.empty()) {
      out.push_back(' ');
      out.append(s.description);
    }
    out.push_back('\n');
    const std::string ascii = decode(s.data, type);
    for (std::size_t i = 0; i < ascii.size(); i += 70) {
      out.append(ascii.substr(i, 70));
      out.push_back('\n');
    }
  }
  return out;
}

void write_fasta_file(const std::string& path, const std::vector<Sequence>& seqs,
                      SeqType type) {
  std::ofstream out(path, std::ios::binary);
  MRBIO_REQUIRE(out.good(), "cannot open for writing: ", path);
  out << to_fasta(seqs, type);
  MRBIO_REQUIRE(out.good(), "short write to ", path);
}

std::vector<Sequence> shred(const std::vector<Sequence>& seqs, std::size_t fragment_len,
                            std::size_t overlap, std::size_t min_len) {
  MRBIO_REQUIRE(fragment_len > overlap, "fragment length ", fragment_len,
                " must exceed overlap ", overlap);
  const std::size_t step = fragment_len - overlap;
  std::vector<Sequence> out;
  for (const Sequence& s : seqs) {
    for (std::size_t start = 0; start < s.length(); start += step) {
      const std::size_t end = std::min(start + fragment_len, s.length());
      if (end - start < min_len) break;
      Sequence frag;
      frag.id = s.id + "/" + std::to_string(start) + "-" + std::to_string(end);
      frag.data.assign(s.data.begin() + static_cast<std::ptrdiff_t>(start),
                       s.data.begin() + static_cast<std::ptrdiff_t>(end));
      out.push_back(std::move(frag));
      if (end == s.length()) break;
    }
  }
  return out;
}

Sequence random_sequence(Rng& rng, std::string id, std::size_t length, SeqType type) {
  const int alphabet = type == SeqType::Dna ? kDnaAlphabet : kProtAlphabet;
  Sequence s;
  s.id = std::move(id);
  s.data.resize(length);
  for (auto& c : s.data) {
    c = static_cast<std::uint8_t>(rng.below(static_cast<std::uint64_t>(alphabet)));
  }
  return s;
}

Sequence mutate(Rng& rng, const Sequence& src, std::string new_id, double sub_rate,
                SeqType type) {
  const int alphabet = type == SeqType::Dna ? kDnaAlphabet : kProtAlphabet;
  Sequence out;
  out.id = std::move(new_id);
  out.data = src.data;
  for (auto& c : out.data) {
    if (c < alphabet && rng.uniform() < sub_rate) {
      const auto shift = 1 + rng.below(static_cast<std::uint64_t>(alphabet - 1));
      c = static_cast<std::uint8_t>((c + shift) % static_cast<std::uint64_t>(alphabet));
    }
  }
  return out;
}

}  // namespace mrbio::blast
