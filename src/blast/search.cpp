#include "blast/search.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <span>

#include "blast/extend.hpp"
#include "blast/filter.hpp"
#include "blast/lookup.hpp"
#include "common/error.hpp"
#include "simd/simd.hpp"

namespace mrbio::blast {

SearchOptions make_protein_options() {
  SearchOptions o;
  o.type = SeqType::Protein;
  o.word_size = 3;
  o.threshold = 11;
  o.two_hit = true;
  o.gap_open = 11;
  o.gap_extend = 1;
  o.xdrop_ungapped = 16;
  o.xdrop_gapped = 38;
  o.both_strands = false;
  return o;
}

namespace {

/// One strand of one query inside the concatenated block coordinate space.
struct QueryEntry {
  std::uint32_t query_idx;
  bool reverse;
  std::size_t begin;  ///< offset of the first residue in the concat space
  std::size_t len;
};

/// Per-diagonal bookkeeping, stamped per subject so no clearing is needed
/// between subjects.
struct DiagState {
  std::uint32_t stamp = 0;
  std::int64_t last_end = -1;  ///< subject offset up to which we extended
  std::int64_t last_hit = -1;  ///< subject end of the last unextended hit
};

/// True when a shredded query fragment "parent/123-456" hits its own
/// parent record "parent".
bool is_self_hit(const std::string& query_id, const std::string& subject_id) {
  if (query_id == subject_id) return true;
  return query_id.size() > subject_id.size() + 1 &&
         query_id.compare(0, subject_id.size(), subject_id) == 0 &&
         query_id[subject_id.size()] == '/';
}

}  // namespace

BlastSearcher::BlastSearcher(std::shared_ptr<const DbVolume> volume, SearchOptions options)
    : volume_(std::move(volume)), options_(options) {
  MRBIO_REQUIRE(volume_ != nullptr, "BlastSearcher needs a database volume");
  MRBIO_REQUIRE(volume_->type() == options_.type,
                "database type does not match search options");
  scorer_ = options_.type == SeqType::Dna
                ? Scorer::dna(options_.match, options_.mismatch, options_.gap_open,
                              options_.gap_extend)
                : Scorer::blosum62(options_.gap_open, options_.gap_extend);
  params_ungapped_ = karlin_ungapped(scorer_);
  params_gapped_ = karlin_gapped(scorer_);
}

std::vector<QueryResult> BlastSearcher::search(const std::vector<Sequence>& queries) const {
  stats_ = SearchStats{};
  const bool dna = options_.type == SeqType::Dna;

  // ---- build the concatenated query block ----
  std::vector<std::uint8_t> concat_raw;     // real residues, for extension
  std::vector<std::uint8_t> concat_masked;  // filtered residues, for seeding
  std::vector<QueryEntry> entries;
  std::vector<std::size_t> entry_bounds;  // begin offsets, for binary search
  concat_raw.push_back(kSentinel);
  concat_masked.push_back(kSentinel);

  auto add_entry = [&](std::uint32_t qidx, bool reverse,
                       std::span<const std::uint8_t> raw,
                       std::span<const std::uint8_t> masked) {
    QueryEntry e;
    e.query_idx = qidx;
    e.reverse = reverse;
    e.begin = concat_raw.size();
    e.len = raw.size();
    concat_raw.insert(concat_raw.end(), raw.begin(), raw.end());
    concat_raw.push_back(kSentinel);
    concat_masked.insert(concat_masked.end(), masked.begin(), masked.end());
    concat_masked.push_back(kSentinel);
    entry_bounds.push_back(e.begin);
    entries.push_back(e);
  };

  for (std::uint32_t qi = 0; qi < queries.size(); ++qi) {
    const Sequence& q = queries[qi];
    std::vector<std::uint8_t> masked = q.data;
    if (options_.filter_low_complexity) {
      const auto ranges = dna ? dust_mask(q.data) : seg_mask(q.data);
      masked = apply_mask(q.data, ranges, options_.type);
    }
    add_entry(qi, false, q.data, masked);
    if (dna && options_.both_strands) {
      const auto rev_raw = reverse_complement(q.data);
      const auto rev_masked = reverse_complement(masked);
      add_entry(qi, true, rev_raw, rev_masked);
    }
  }

  auto entry_of = [&](std::size_t concat_pos) -> const QueryEntry& {
    const auto it =
        std::upper_bound(entry_bounds.begin(), entry_bounds.end(), concat_pos);
    MRBIO_CHECK(it != entry_bounds.begin(), "concat position before first entry");
    return entries[static_cast<std::size_t>(it - entry_bounds.begin() - 1)];
  };

  // ---- stage 1 tables ----
  std::unique_ptr<NucLookup> nuc_lookup;
  std::unique_ptr<ProtLookup> prot_lookup;
  if (dna) {
    nuc_lookup = std::make_unique<NucLookup>(concat_masked, options_.word_size);
  } else {
    prot_lookup = std::make_unique<ProtLookup>(concat_masked, options_.threshold, scorer_);
  }
  const std::size_t word_len =
      dna ? static_cast<std::size_t>(options_.word_size) : ProtLookup::kWordSize;

  // ---- statistics setup ----
  const std::uint64_t db_len = options_.effective_db_length > 0
                                   ? options_.effective_db_length
                                   : volume_->residues();
  const std::uint64_t db_seqs =
      options_.effective_db_seqs > 0 ? options_.effective_db_seqs : volume_->num_seqs();
  // Raw ungapped score required to trigger the gapped stage.
  const int gap_trigger_raw = static_cast<int>(
      std::ceil((options_.gap_trigger_bits * std::log(2.0) + std::log(params_ungapped_.K)) /
                params_ungapped_.lambda));

  // Per-query effective search spaces (depend only on query length).
  std::vector<SearchSpace> spaces(queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    spaces[qi] =
        effective_search_space(params_gapped_, queries[qi].length(), db_len, db_seqs);
  }

  // ---- scan every subject ----
  std::vector<std::vector<Hsp>> per_query(queries.size());
  std::size_t max_subject = 0;
  for (std::size_t si = 0; si < volume_->num_seqs(); ++si) {
    max_subject = std::max(max_subject, volume_->seq(si).length());
  }
  std::vector<DiagState> diags(concat_raw.size() + max_subject + 1);
  std::uint32_t stamp = 0;

  for (std::size_t si = 0; si < volume_->num_seqs(); ++si) {
    const Sequence& subject = volume_->seq(si);
    if (subject.length() < word_len) continue;
    ++stamp;
    const std::span<const std::uint8_t> sdata(subject.data);
    const std::int64_t diag_off = static_cast<std::int64_t>(subject.length()) - 1;

    auto handle_hit = [&](std::size_t qpos, std::size_t spos) {
      ++stats_.word_hits;
      const std::size_t diag_idx = static_cast<std::size_t>(
          static_cast<std::int64_t>(qpos) - static_cast<std::int64_t>(spos) + diag_off);
      DiagState& d = diags[diag_idx];
      if (d.stamp != stamp) {
        d.stamp = stamp;
        d.last_end = -1;
        d.last_hit = -1;
      }
      const auto s_end_of_hit = static_cast<std::int64_t>(spos + word_len);
      if (static_cast<std::int64_t>(spos) < d.last_end) return;  // inside a prior HSP

      if (!dna && options_.two_hit) {
        // Require a second non-overlapping hit within the window before
        // paying for an extension. A hit overlapping the recorded one is
        // dropped (the recorded hit stays, so a later non-overlapping hit
        // can still pair with it); a hit beyond the window replaces the
        // record and waits for its own partner.
        const std::int64_t prev_end = d.last_hit;
        if (prev_end >= 0 && static_cast<std::int64_t>(spos) < prev_end) {
          return;
        }
        if (prev_end < 0 ||
            static_cast<std::int64_t>(spos) - prev_end > options_.two_hit_window) {
          d.last_hit = s_end_of_hit;
          return;
        }
        // Partner found: fall through to the extension.
      }

      const QueryEntry& entry = entry_of(qpos);
      ++stats_.ungapped_extensions;
      const UngappedSegment seg =
          extend_ungapped(concat_raw, sdata, qpos, spos, word_len, scorer_,
                          options_.xdrop_ungapped);
      d.last_end = static_cast<std::int64_t>(seg.s_end);
      if (seg.score < gap_trigger_raw) return;

      ++stats_.gapped_extensions;
      // Clamp the gapped extension to the seed's own query entry. Sentinel
      // columns score -16384, which stops diagonal moves, but an affine gap
      // consumes query letters at gap cost without scoring them — so when a
      // lucky run of matches follows in the NEXT entry the DP could jump
      // the separator and land its best cell across it.
      const std::span<const std::uint8_t> qspan(concat_raw.data() + entry.begin, entry.len);
      GappedAlignment aln = extend_gapped(qspan, sdata, seg.q_best - entry.begin,
                                          seg.s_best, scorer_, options_.xdrop_gapped);
      aln.q_start += entry.begin;
      aln.q_end += entry.begin;
      const SearchSpace& space = spaces[entry.query_idx];
      const double ev = evalue(aln.score, space.m_eff, space.n_eff, params_gapped_);
      if (ev > options_.evalue_cutoff) return;

      const Sequence& q = queries[entry.query_idx];
      if (options_.exclude_self_hits && is_self_hit(q.id, subject.id)) return;

      Hsp h;
      h.subject_id = subject.id;
      h.raw_score = aln.score;
      h.bit_score = bit_score(aln.score, params_gapped_);
      h.evalue = ev;
      h.identities = aln.identities;
      h.align_len = aln.align_len;
      h.gaps = aln.gaps;
      h.ops = aln.ops;
      h.s_start = aln.s_start;
      h.s_end = aln.s_end;
      // Map concat coordinates back into the query, flipping minus-strand
      // matches onto plus-strand coordinates.
      const std::size_t qa = aln.q_start - entry.begin;
      const std::size_t qb = aln.q_end - entry.begin;
      MRBIO_CHECK(qb <= entry.len, "alignment crossed a sentinel");
      if (entry.reverse) {
        h.minus_strand = true;
        h.q_start = entry.len - qb;
        h.q_end = entry.len - qa;
      } else {
        h.q_start = qa;
        h.q_end = qb;
      }
      per_query[entry.query_idx].push_back(std::move(h));
      // Push the diagonal high-water mark past the gapped alignment too.
      d.last_end = std::max(d.last_end, static_cast<std::int64_t>(aln.s_end));
    };

    // Subject word scans run through the dispatched word kernels in
    // blocks; valid bits iterate lowest-first, so word hits arrive in the
    // same ascending subject order as the scalar scans did.
    const simd::Kernels& kern = simd::kernels();
    if (dna) {
      const auto w = static_cast<std::size_t>(options_.word_size);
      const std::uint32_t mask =
          static_cast<std::uint32_t>((std::uint64_t{1} << (2 * w)) - 1);
      constexpr std::size_t kBlock = 48;
      std::uint32_t codes[kBlock];
      std::uint64_t valid = 0;
      std::uint32_t word = 0;
      std::uint64_t hist = 0;
      for (std::size_t base = 0; base < sdata.size(); base += kBlock) {
        const std::size_t m = std::min(kBlock, sdata.size() - base);
        kern.dna_words(sdata.data() + base, m, options_.word_size, mask, &word, &hist,
                       codes, &valid);
        while (valid != 0) {
          const int bi = std::countr_zero(valid);
          valid &= valid - 1;
          for (const std::uint32_t qpos : nuc_lookup->hits(codes[bi])) {
            handle_hit(qpos, base + static_cast<std::size_t>(bi) + 1 - w);
          }
        }
      }
    } else {
      constexpr std::size_t kBlock = 64;
      std::uint16_t codes[kBlock];
      std::uint64_t valid = 0;
      const std::size_t last = sdata.size() - ProtLookup::kWordSize;  // last word start
      for (std::size_t base = 0; base <= last; base += kBlock) {
        const std::size_t m = std::min(kBlock, last - base + 1);
        kern.prot_words(sdata.data() + base, m, codes, &valid);
        while (valid != 0) {
          const int bi = std::countr_zero(valid);
          valid &= valid - 1;
          for (const std::uint32_t qpos : prot_lookup->hits(codes[bi])) {
            handle_hit(qpos, base + static_cast<std::size_t>(bi));
          }
        }
      }
    }
  }

  // ---- reporting ----
  std::vector<QueryResult> results(queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    results[qi].query_id = queries[qi].id;
    auto& hsps = per_query[qi];
    cull_contained(hsps);
    sort_and_truncate(hsps, options_.max_hits_per_query);
    stats_.hsps_reported += hsps.size();
    results[qi].hsps = std::move(hsps);
  }
  return results;
}

}  // namespace mrbio::blast
