#include "blast/alphabet.hpp"

#include <array>

#include "common/error.hpp"

namespace mrbio::blast {

namespace {

constexpr std::array<std::uint8_t, 256> make_dna_table() {
  std::array<std::uint8_t, 256> t{};
  for (auto& v : t) v = kDnaAmbig;
  t['A'] = t['a'] = 0;
  t['C'] = t['c'] = 1;
  t['G'] = t['g'] = 2;
  t['T'] = t['t'] = 3;
  t['U'] = t['u'] = 3;  // RNA input tolerated
  return t;
}

// The 20 standard amino acids in alphabetical letter order.
constexpr char kProtLetters[kProtAlphabet + 1] = "ACDEFGHIKLMNPQRSTVWY";

constexpr std::array<std::uint8_t, 256> make_prot_table() {
  std::array<std::uint8_t, 256> t{};
  for (auto& v : t) v = kProtAmbig;
  for (std::uint8_t i = 0; i < kProtAlphabet; ++i) {
    const char c = kProtLetters[i];
    t[static_cast<unsigned char>(c)] = i;
    t[static_cast<unsigned char>(c + ('a' - 'A'))] = i;
  }
  return t;
}

const std::array<std::uint8_t, 256> kDnaTable = make_dna_table();
const std::array<std::uint8_t, 256> kProtTable = make_prot_table();
constexpr char kDnaLetters[] = "ACGT";

}  // namespace

std::vector<std::uint8_t> encode_dna(std::string_view seq) {
  std::vector<std::uint8_t> out(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    out[i] = kDnaTable[static_cast<unsigned char>(seq[i])];
  }
  return out;
}

std::vector<std::uint8_t> encode_protein(std::string_view seq) {
  std::vector<std::uint8_t> out(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    out[i] = kProtTable[static_cast<unsigned char>(seq[i])];
  }
  return out;
}

std::vector<std::uint8_t> encode(std::string_view seq, SeqType type) {
  return type == SeqType::Dna ? encode_dna(seq) : encode_protein(seq);
}

std::string decode_dna(std::span<const std::uint8_t> codes) {
  std::string out(codes.size(), 'N');
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] < kDnaAlphabet) out[i] = kDnaLetters[codes[i]];
  }
  return out;
}

std::string decode_protein(std::span<const std::uint8_t> codes) {
  std::string out(codes.size(), 'X');
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] < kProtAlphabet) out[i] = kProtLetters[codes[i]];
  }
  return out;
}

std::string decode(std::span<const std::uint8_t> codes, SeqType type) {
  return type == SeqType::Dna ? decode_dna(codes) : decode_protein(codes);
}

std::vector<std::uint8_t> reverse_complement(std::span<const std::uint8_t> codes) {
  std::vector<std::uint8_t> out(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    const std::uint8_t c = codes[codes.size() - 1 - i];
    out[i] = c < kDnaAlphabet ? static_cast<std::uint8_t>(3 - c) : c;
  }
  return out;
}

std::vector<std::uint8_t> pack_2bit(std::span<const std::uint8_t> codes) {
  std::vector<std::uint8_t> out((codes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    // Ambiguous bases pack as 'A'; the DB format records their true
    // positions in a side table so nothing is lost.
    const std::uint8_t c = codes[i] < kDnaAlphabet ? codes[i] : 0;
    out[i / 4] = static_cast<std::uint8_t>(out[i / 4] | (c << ((i % 4) * 2)));
  }
  return out;
}

std::vector<std::uint8_t> unpack_2bit(std::span<const std::uint8_t> packed, std::size_t n) {
  MRBIO_REQUIRE(packed.size() >= (n + 3) / 4, "packed buffer too small: ", packed.size(),
                " bytes for ", n, " bases");
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (packed[i / 4] >> ((i % 4) * 2)) & 0x3;
  }
  return out;
}

}  // namespace mrbio::blast
