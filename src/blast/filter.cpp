#include "blast/filter.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"

namespace mrbio::blast {

std::vector<MaskRange> merge_ranges(std::vector<MaskRange> ranges) {
  std::sort(ranges.begin(), ranges.end(),
            [](const MaskRange& a, const MaskRange& b) { return a.begin < b.begin; });
  std::vector<MaskRange> out;
  for (const MaskRange& r : ranges) {
    if (r.begin >= r.end) continue;
    if (!out.empty() && r.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, r.end);
    } else {
      out.push_back(r);
    }
  }
  return out;
}

std::vector<MaskRange> dust_mask(std::span<const std::uint8_t> seq, double level,
                                 std::size_t window, std::size_t step) {
  MRBIO_REQUIRE(window >= 8 && step >= 1 && step <= window, "bad dust window/step");
  std::vector<MaskRange> hits;
  if (seq.size() < 3) return hits;

  for (std::size_t start = 0; start < seq.size(); start += step) {
    const std::size_t end = std::min(start + window, seq.size());
    if (end - start < 3) break;
    std::array<std::uint16_t, 64> counts{};
    std::size_t k = 0;
    for (std::size_t i = start; i + 3 <= end; ++i) {
      const std::uint8_t a = seq[i];
      const std::uint8_t b = seq[i + 1];
      const std::uint8_t c = seq[i + 2];
      if (a >= kDnaAlphabet || b >= kDnaAlphabet || c >= kDnaAlphabet) continue;
      ++counts[static_cast<std::size_t>(a) * 16 + b * 4 + c];
      ++k;
    }
    if (k < 2) continue;
    double score = 0.0;
    for (const std::uint16_t c : counts) {
      score += static_cast<double>(c) * static_cast<double>(c - (c > 0 ? 1 : 0)) / 2.0;
    }
    score /= static_cast<double>(k - 1);
    if (score > level) hits.push_back({start, end});
    if (end == seq.size()) break;
  }
  return merge_ranges(std::move(hits));
}

std::vector<MaskRange> seg_mask(std::span<const std::uint8_t> seq, double max_entropy,
                                std::size_t window) {
  MRBIO_REQUIRE(window >= 4, "seg window too small: ", window);
  std::vector<MaskRange> hits;
  if (seq.size() < window) return hits;

  std::array<std::uint16_t, kProtAlphabet> counts{};
  std::size_t valid = 0;
  auto add = [&](std::uint8_t c, int delta) {
    if (c < kProtAlphabet) {
      counts[c] = static_cast<std::uint16_t>(counts[c] + delta);
      valid = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(valid) + delta);
    }
  };
  for (std::size_t i = 0; i < window; ++i) add(seq[i], +1);

  for (std::size_t start = 0;; ++start) {
    if (valid == window) {  // windows touching ambiguity codes are skipped
      double h = 0.0;
      for (const std::uint16_t c : counts) {
        if (c == 0) continue;
        const double p = static_cast<double>(c) / static_cast<double>(window);
        h -= p * std::log2(p);
      }
      if (h < max_entropy) hits.push_back({start, start + window});
    }
    if (start + window >= seq.size()) break;
    add(seq[start], -1);
    add(seq[start + window], +1);
  }
  return merge_ranges(std::move(hits));
}

std::vector<std::uint8_t> apply_mask(std::span<const std::uint8_t> seq,
                                     std::span<const MaskRange> ranges, SeqType type) {
  std::vector<std::uint8_t> out(seq.begin(), seq.end());
  const std::uint8_t ambig = type == SeqType::Dna ? kDnaAmbig : kProtAmbig;
  for (const MaskRange& r : ranges) {
    MRBIO_CHECK(r.end <= out.size(), "mask range out of bounds");
    std::fill(out.begin() + static_cast<std::ptrdiff_t>(r.begin),
              out.begin() + static_cast<std::ptrdiff_t>(r.end), ambig);
  }
  return out;
}

}  // namespace mrbio::blast
