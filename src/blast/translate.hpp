// Genetic-code translation and six-frame translated search (blastx).
//
// Metagenomic pipelines — the paper's driving use case — usually search
// "protein fragments predicted on reads" against protein databases. The
// blastx mode implemented here covers the step before that prediction:
// translating the read in all six frames and searching each frame as a
// protein query, reporting hits mapped back onto the DNA coordinates.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "blast/search.hpp"

namespace mrbio::blast {

/// Translates encoded DNA in the given frame (+1..+3 as 0..2 on the plus
/// strand, -1..-3 as 3..5 on the reverse complement) with the standard
/// genetic code. Stop codons become kProtAmbig (breaking seed words, as in
/// real translated searches); codons containing ambiguous bases also map
/// to kProtAmbig.
std::vector<std::uint8_t> translate(std::span<const std::uint8_t> dna, int frame);

/// Frame labels in blastx convention: +1, +2, +3, -1, -2, -3.
int frame_label(int frame_index);

/// One translated-search hit: a protein-space HSP plus its frame and the
/// corresponding DNA coordinates on the original (plus-strand) query.
struct BlastxHsp {
  Hsp protein;       ///< coordinates in the translated frame
  int frame = 1;     ///< +1..+3 / -1..-3
  std::uint64_t q_dna_start = 0;  ///< half-open, plus-strand DNA coordinates
  std::uint64_t q_dna_end = 0;
};

struct BlastxResult {
  std::string query_id;
  std::vector<BlastxHsp> hsps;  ///< E-value sorted across frames
};

/// Translated search of DNA queries against a protein database volume.
/// `options` must be protein options (make_protein_options()); each of the
/// six frames is searched and results are merged per query.
std::vector<BlastxResult> blastx_search(const std::shared_ptr<const DbVolume>& volume,
                                        const std::vector<Sequence>& dna_queries,
                                        const SearchOptions& options);

}  // namespace mrbio::blast
