// Scoring systems: DNA match/mismatch and BLOSUM62, plus gap penalties.
//
// The score table is indexed by the byte codes of alphabet.hpp over a
// 32x32 grid so ambiguity codes and the sentinel have well-defined rows:
// ambiguity scores like a mismatch (DNA) or -1 (protein X, the BLOSUM62
// convention), and any pairing with the sentinel scores kSentinelScore,
// which is negative enough to stop every extension dead at sequence
// boundaries.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "blast/alphabet.hpp"

namespace mrbio::blast {

inline constexpr int kScoreDim = 32;
inline constexpr int kSentinelScore = -16384;

class Scorer {
 public:
  /// Default-constructed scorers are placeholders; use the factories below.
  Scorer() = default;

  /// DNA scoring: `match` > 0 reward, `mismatch` < 0 penalty. Defaults are
  /// NCBI blastn's reward 2 / penalty -3, gap open 5, gap extend 2.
  static Scorer dna(int match = 2, int mismatch = -3, int gap_open = 5, int gap_extend = 2);

  /// BLOSUM62 with affine gaps; defaults are blastp's 11/1.
  static Scorer blosum62(int gap_open = 11, int gap_extend = 1);

  int score(std::uint8_t a, std::uint8_t b) const {
    return table_[static_cast<std::size_t>(a) * kScoreDim + b];
  }

  /// Score of the best possible residue pairing (used for seed thresholds).
  int max_score() const { return max_score_; }

  /// The raw 32x32 row-major table, for the SIMD extension kernels.
  const int* table() const { return table_.data(); }

  int gap_open() const { return gap_open_; }
  int gap_extend() const { return gap_extend_; }
  SeqType type() const { return type_; }
  int match() const { return match_; }
  int mismatch() const { return mismatch_; }

  /// Background residue frequencies of the alphabet (uniform for DNA,
  /// Robinson & Robinson for protein), used by the statistics module.
  std::span<const double> background() const;

 private:
  std::array<int, kScoreDim * kScoreDim> table_{};
  int max_score_ = 0;
  int gap_open_ = 0;
  int gap_extend_ = 0;
  int match_ = 0;
  int mismatch_ = 0;
  SeqType type_ = SeqType::Dna;
};

/// Raw BLOSUM62 lookup on encoded protein codes (also used by the
/// neighbourhood word generator).
int blosum62_score(std::uint8_t a, std::uint8_t b);

}  // namespace mrbio::blast
