#include "blast/score.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mrbio::blast {

namespace {

// BLOSUM62 in its conventional publication order; remapped to this
// library's alphabetical codes at startup.
constexpr char kBlosumOrder[] = "ARNDCQEGHILKMFPSTWYV";
constexpr int kBlosum62Raw[20][20] = {
    /*A*/ {4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0},
    /*R*/ {-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3},
    /*N*/ {-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3},
    /*D*/ {-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3},
    /*C*/ {0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1},
    /*Q*/ {-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2},
    /*E*/ {-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2},
    /*G*/ {0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3},
    /*H*/ {-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3},
    /*I*/ {-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3},
    /*L*/ {-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1},
    /*K*/ {-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2},
    /*M*/ {-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1},
    /*F*/ {-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1},
    /*P*/ {-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2},
    /*S*/ {1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2},
    /*T*/ {0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0},
    /*W*/ {-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3},
    /*Y*/ {-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -2},
    /*V*/ {0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -2, 4},
};

/// BLOSUM62 remapped to this library's protein codes, built once.
const std::array<int, kProtAlphabet * kProtAlphabet>& blosum_table() {
  static const auto table = [] {
    std::array<int, kProtAlphabet * kProtAlphabet> t{};
    std::array<std::uint8_t, 20> code{};
    for (int i = 0; i < 20; ++i) {
      const auto enc = encode_protein(std::string_view(&kBlosumOrder[i], 1));
      code[static_cast<std::size_t>(i)] = enc[0];
      MRBIO_CHECK(enc[0] < kProtAlphabet, "BLOSUM order letter not in alphabet");
    }
    for (int i = 0; i < 20; ++i) {
      for (int j = 0; j < 20; ++j) {
        t[static_cast<std::size_t>(code[i]) * kProtAlphabet + code[j]] = kBlosum62Raw[i][j];
      }
    }
    return t;
  }();
  return table;
}

// Robinson & Robinson (1991) amino-acid background frequencies, in this
// library's alphabetical residue order ACDEFGHIKLMNPQRSTVWY.
constexpr std::array<double, kProtAlphabet> kRobinsonFreqs = {
    0.07805, /*A*/ 0.01925, /*C*/ 0.05364, /*D*/ 0.06295, /*E*/ 0.03856, /*F*/
    0.07377, /*G*/ 0.02199, /*H*/ 0.05142, /*I*/ 0.05744, /*K*/ 0.09019, /*L*/
    0.02243, /*M*/ 0.04487, /*N*/ 0.05203, /*P*/ 0.04264, /*Q*/ 0.05129, /*R*/
    0.07120, /*S*/ 0.05841, /*T*/ 0.06441, /*V*/ 0.01330, /*W*/ 0.03216, /*Y*/
};

constexpr std::array<double, kDnaAlphabet> kUniformDna = {0.25, 0.25, 0.25, 0.25};

}  // namespace

int blosum62_score(std::uint8_t a, std::uint8_t b) {
  MRBIO_CHECK(a < kProtAlphabet && b < kProtAlphabet, "blosum62_score on non-residue");
  return blosum_table()[static_cast<std::size_t>(a) * kProtAlphabet + b];
}

Scorer Scorer::dna(int match, int mismatch, int gap_open, int gap_extend) {
  MRBIO_REQUIRE(match > 0, "DNA match reward must be positive, got ", match);
  MRBIO_REQUIRE(mismatch < 0, "DNA mismatch penalty must be negative, got ", mismatch);
  MRBIO_REQUIRE(gap_open >= 0 && gap_extend > 0, "bad gap penalties");
  Scorer s;
  s.type_ = SeqType::Dna;
  s.match_ = match;
  s.mismatch_ = mismatch;
  s.gap_open_ = gap_open;
  s.gap_extend_ = gap_extend;
  s.max_score_ = match;
  for (int a = 0; a < kScoreDim; ++a) {
    for (int b = 0; b < kScoreDim; ++b) {
      int v;
      if (a == kSentinel || b == kSentinel) {
        v = kSentinelScore;
      } else if (a < kDnaAlphabet && b < kDnaAlphabet) {
        v = (a == b) ? match : mismatch;
      } else {
        v = mismatch;  // ambiguity scores as mismatch, as in blastn
      }
      s.table_[static_cast<std::size_t>(a) * kScoreDim + b] = v;
    }
  }
  return s;
}

Scorer Scorer::blosum62(int gap_open, int gap_extend) {
  MRBIO_REQUIRE(gap_open >= 0 && gap_extend > 0, "bad gap penalties");
  Scorer s;
  s.type_ = SeqType::Protein;
  s.gap_open_ = gap_open;
  s.gap_extend_ = gap_extend;
  int mx = 0;
  for (int a = 0; a < kScoreDim; ++a) {
    for (int b = 0; b < kScoreDim; ++b) {
      int v;
      if (a == kSentinel || b == kSentinel) {
        v = kSentinelScore;
      } else if (a < kProtAlphabet && b < kProtAlphabet) {
        v = blosum62_score(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b));
        mx = std::max(mx, v);
      } else {
        v = -1;  // X row convention
      }
      s.table_[static_cast<std::size_t>(a) * kScoreDim + b] = v;
    }
  }
  s.max_score_ = mx;
  return s;
}

std::span<const double> Scorer::background() const {
  if (type_ == SeqType::Dna) return kUniformDna;
  return kRobinsonFreqs;
}

}  // namespace mrbio::blast
