// Human-readable pairwise alignment rendering, the classic BLAST report
// block:
//
//   Query  1    ACGTACGTAC-GT  12
//               |||||| ||| ||
//   Sbjct  101  ACGTACTTACAGT  113
//
// DNA match lines use '|' for identities; protein match lines follow the
// BLAST convention of the residue letter for identities, '+' for positive
// BLOSUM scores and space otherwise.
#pragma once

#include <string>

#include "blast/hsp.hpp"
#include "blast/score.hpp"
#include "blast/sequence.hpp"

namespace mrbio::blast {

/// Renders the HSP's alignment between `query` (plus-strand as stored) and
/// `subject`. The HSP must carry its edit script (hsp.ops non-empty unless
/// the alignment is empty). `width` sets residues per block.
std::string render_pairwise(const Sequence& query, const Sequence& subject, const Hsp& hsp,
                            const Scorer& scorer, std::size_t width = 60);

/// Renders a summary header line ("Score = 98.7 bits (200), Expect =
/// 1e-30, Identities = 95/100 (95%), Gaps = 2/100, Strand = Plus/Minus").
std::string render_hsp_header(const Hsp& hsp, SeqType type);

}  // namespace mrbio::blast
