// Sequence composition features: normalized k-mer frequency vectors.
//
// The paper's motivating SOM application is "unsupervised clustering and
// semi-supervised classification of metagenomic sequences in a
// multi-dimensional sequence composition space" -- concretely, the
// tetranucleotide (k=4, 256-D) frequency vectors its authors intended to
// explore. This module turns encoded DNA into those vectors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "blast/alphabet.hpp"

namespace mrbio::blast {

/// Number of dimensions of a k-mer frequency vector (4^k).
std::size_t kmer_dims(int k);

/// Normalized k-mer frequency vector of an encoded DNA sequence. Windows
/// containing ambiguity codes are skipped; the result sums to 1 when any
/// clean window exists, else it is all zeros. k in [1, 8].
std::vector<float> kmer_frequencies(std::span<const std::uint8_t> seq, int k);

/// Convenience for the paper's tetranucleotide space (k=4, 256-D).
inline std::vector<float> tetranucleotide_frequencies(std::span<const std::uint8_t> seq) {
  return kmer_frequencies(seq, 4);
}

}  // namespace mrbio::blast
