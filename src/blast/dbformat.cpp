#include "blast/dbformat.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace mrbio::blast {

namespace {

constexpr std::uint64_t kVolumeMagic = 0x4d52424442563101ULL;  // "MRBDBV1" + 0x01

std::string volume_name(const std::string& base, std::size_t index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), ".%03zu.vol", index);
  return base + buf;
}

void write_file(const std::string& path, std::span<const std::byte> bytes) {
  std::ofstream out(path, std::ios::binary);
  MRBIO_REQUIRE(out.good(), "cannot open for writing: ", path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  MRBIO_REQUIRE(out.good(), "short write to ", path);
}

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  MRBIO_REQUIRE(in.good(), "cannot open: ", path);
  const std::streamsize n = in.tellg();
  MRBIO_REQUIRE(n >= 0, "cannot size ", path, " (not a regular file?)");
  in.seekg(0);
  std::vector<std::byte> out(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(out.data()), n);
  MRBIO_REQUIRE(in.good(), "short read from ", path);
  return out;
}

}  // namespace

DbVolume DbVolume::load(const std::string& path) {
  const std::vector<std::byte> bytes = read_file(path);
  ByteReader r(bytes);
  MRBIO_REQUIRE(bytes.size() >= sizeof(std::uint64_t) &&
                    r.get<std::uint64_t>() == kVolumeMagic,
                "not a mrbio DB volume: ", path);
  DbVolume vol;
  // Decode errors from a truncated or bit-flipped volume surface as
  // ByteReader range errors; rethrow them with the file, byte offset, and
  // record index so the user can tell which volume (and where) is broken.
  std::uint64_t record = 0;
  std::uint64_t nseqs = 0;
  try {
    const auto type_byte = r.get<std::uint8_t>();
    MRBIO_REQUIRE(type_byte <= static_cast<std::uint8_t>(SeqType::Protein),
                  "bad sequence-type byte ", static_cast<int>(type_byte));
    vol.type_ = static_cast<SeqType>(type_byte);
    nseqs = r.get<std::uint64_t>();
    vol.residues_ = r.get<std::uint64_t>();
    MRBIO_REQUIRE(nseqs <= bytes.size(), "implausible sequence count ", nseqs);
    vol.seqs_.reserve(nseqs);
    for (record = 0; record < nseqs; ++record) {
      Sequence s;
      s.id = r.get_string();
      s.description = r.get_string();
      const auto len = r.get<std::uint64_t>();
      if (vol.type_ == SeqType::Dna) {
        const auto packed = r.get_vector<std::uint8_t>();
        s.data = unpack_2bit(packed, len);
        const auto ambig = r.get_vector<std::uint64_t>();
        for (const std::uint64_t pos : ambig) {
          MRBIO_REQUIRE(pos < len, "ambiguity position ", pos, " out of range");
          s.data[pos] = kDnaAmbig;
        }
      } else {
        s.data = r.get_vector<std::uint8_t>();
        MRBIO_REQUIRE(s.data.size() == len, "record length mismatch");
      }
      vol.seqs_.push_back(std::move(s));
    }
    MRBIO_REQUIRE(r.done(), "trailing bytes after last record");
  } catch (const Error& e) {
    throw InputError(format_msg("corrupt DB volume ", path, " at byte offset ",
                                r.position(), " (record ", record, " of ", nseqs,
                                "): ", e.what()));
  }
  return vol;
}

const Sequence& DbVolume::seq(std::size_t i) const {
  MRBIO_CHECK(i < seqs_.size(), "DbVolume::seq index out of range");
  return seqs_[i];
}

DbBuilder::DbBuilder(std::string base_path, SeqType type,
                     std::uint64_t target_volume_residues)
    : base_(std::move(base_path)), type_(type), target_(target_volume_residues) {
  MRBIO_REQUIRE(target_ > 0, "target volume size must be positive");
  info_.type = type;
}

DbBuilder::~DbBuilder() = default;

void DbBuilder::add(Sequence seq) {
  MRBIO_CHECK(!finished_, "DbBuilder::add after finish()");
  MRBIO_REQUIRE(!seq.id.empty(), "database sequence with empty id");
  pending_residues_ += seq.length();
  info_.total_residues += seq.length();
  info_.total_seqs += 1;
  pending_.push_back(std::move(seq));
  if (pending_residues_ >= target_) flush_volume();
}

void DbBuilder::flush_volume() {
  if (pending_.empty()) return;
  ByteWriter w;
  w.put(kVolumeMagic);
  w.put(static_cast<std::uint8_t>(type_));
  w.put<std::uint64_t>(pending_.size());
  w.put<std::uint64_t>(pending_residues_);
  for (const Sequence& s : pending_) {
    w.put_string(s.id);
    w.put_string(s.description);
    w.put<std::uint64_t>(s.length());
    if (type_ == SeqType::Dna) {
      w.put_vector(pack_2bit(s.data));
      std::vector<std::uint64_t> ambig;
      for (std::size_t i = 0; i < s.data.size(); ++i) {
        if (s.data[i] >= kDnaAlphabet) ambig.push_back(i);
      }
      w.put_vector(ambig);
    } else {
      w.put_vector(s.data);
    }
  }
  const std::string path = volume_name(base_, info_.volume_paths.size());
  write_file(path, w.bytes());
  info_.volume_paths.push_back(path);
  pending_.clear();
  pending_residues_ = 0;
}

DbInfo DbBuilder::finish() {
  MRBIO_CHECK(!finished_, "DbBuilder::finish called twice");
  finished_ = true;
  flush_volume();

  ByteWriter w;
  w.put_string("MRBDBAL1");
  w.put(static_cast<std::uint8_t>(type_));
  w.put<std::uint64_t>(info_.total_residues);
  w.put<std::uint64_t>(info_.total_seqs);
  w.put<std::uint64_t>(info_.volume_paths.size());
  for (const std::string& p : info_.volume_paths) w.put_string(p);
  write_file(base_ + ".mal", w.bytes());
  return info_;
}

DbInfo build_db(const std::vector<Sequence>& seqs, const std::string& base_path,
                SeqType type, std::uint64_t target_volume_residues) {
  DbBuilder b(base_path, type, target_volume_residues);
  for (const Sequence& s : seqs) b.add(s);
  return b.finish();
}

DbInfo read_db_info(const std::string& alias_path) {
  const std::vector<std::byte> bytes = read_file(alias_path);
  ByteReader r(bytes);
  DbInfo info;
  try {
    MRBIO_REQUIRE(r.get_string() == "MRBDBAL1", "bad magic");
    const auto type_byte = r.get<std::uint8_t>();
    MRBIO_REQUIRE(type_byte <= static_cast<std::uint8_t>(SeqType::Protein),
                  "bad sequence-type byte ", static_cast<int>(type_byte));
    info.type = static_cast<SeqType>(type_byte);
    info.total_residues = r.get<std::uint64_t>();
    info.total_seqs = r.get<std::uint64_t>();
    const auto nvol = r.get<std::uint64_t>();
    MRBIO_REQUIRE(nvol <= bytes.size(), "implausible volume count ", nvol);
    for (std::uint64_t i = 0; i < nvol; ++i) info.volume_paths.push_back(r.get_string());
    MRBIO_REQUIRE(r.done(), "trailing bytes after volume list");
  } catch (const Error& e) {
    throw InputError(format_msg("not a mrbio DB alias: ", alias_path, " (byte offset ",
                                r.position(), ": ", e.what(), ")"));
  }
  return info;
}

}  // namespace mrbio::blast
