// Low-complexity filters.
//
// BLAST masks low-complexity sequence before seeding ("the low-complexity
// filtering is usually requested", as the paper notes when discussing why
// output-limit overheads rarely matter). Two filters are provided:
//
//   dust_mask: the DUST triplet-statistic filter for nucleotides. Windows
//   whose triplet composition score exceeds `level` are masked. Score of a
//   window with triplet counts c_t over k triplets is
//   sum_t c_t (c_t - 1) / 2 / (k - 1); the default level 2.0 corresponds
//   to NCBI's default of 20 (NCBI scales by 10).
//
//   seg_mask: an entropy filter for proteins in the spirit of SEG: windows
//   whose Shannon entropy falls below `max_entropy` bits are masked.
//
// Masking replaces residues with the alphabet's ambiguity code in a copy
// used for lookup-table construction only (soft masking): seeds never
// start in masked regions, but extensions may run through them, which is
// NCBI's default behaviour.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "blast/alphabet.hpp"

namespace mrbio::blast {

/// Half-open masked interval.
struct MaskRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// DUST-style nucleotide mask; window/step in bases.
std::vector<MaskRange> dust_mask(std::span<const std::uint8_t> seq, double level = 2.0,
                                 std::size_t window = 64, std::size_t step = 32);

/// SEG-style protein mask; entropy threshold in bits.
std::vector<MaskRange> seg_mask(std::span<const std::uint8_t> seq,
                                double max_entropy = 2.2, std::size_t window = 12);

/// Returns a copy of `seq` with masked ranges replaced by the ambiguity
/// code of the sequence type.
std::vector<std::uint8_t> apply_mask(std::span<const std::uint8_t> seq,
                                     std::span<const MaskRange> ranges, SeqType type);

/// Merges overlapping/adjacent ranges (helper shared by both filters).
std::vector<MaskRange> merge_ranges(std::vector<MaskRange> ranges);

}  // namespace mrbio::blast
