// All-vs-all similarity-graph construction over MapReduce-MPI.
//
// The shuffle-heavy companion workload to mrblast: every sequence is
// compared against every other sequence (seed-and-extend, ungapped), and
// each accepted pair emits two edge KVs — one per endpoint — keyed by
// sequence id. collate() then ships every vertex's adjacency list to its
// owning rank, which makes the exchange volume quadratic-ish in the hit
// density and the phase an ideal acceptance benchmark for the combiner /
// staged-exchange / compressed shuffle paths (every vertex id recurs once
// per neighbor, so combined framing collapses the repeated keys).
//
// reduce() canonicalizes each adjacency list (sorted, deduplicated) and
// optionally writes per-rank edge files; the returned checksum is an
// order-independent hash over all edge lines, so it is identical across
// backends, rank counts, map styles, and shuffle modes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blast/sequence.hpp"
#include "mpi/comm.hpp"
#include "mrmpi/mapreduce.hpp"

namespace mrbio::mrgraph {

struct GraphConfig {
  /// Input sequences; every rank must pass an identical vector.
  std::vector<blast::Sequence> sequences;
  /// Sequences per block; one map task compares one block pair (i <= j).
  std::size_t block_size = 16;
  /// Seed word length (exact residue match starts an extension).
  std::size_t word_len = 8;
  /// X-drop parameter of the ungapped extension.
  int xdrop = 20;
  /// Minimum ungapped score for an edge.
  int min_score = 24;
  bool dna = true;  ///< DNA scoring (match/mismatch) vs BLOSUM62
  /// Directory for per-rank edge files ("edges.<rank>.tsv"); "" = none.
  std::string output_dir;
  mrmpi::MapStyle map_style = mrmpi::MapStyle::Chunk;
  /// Scheduling policy override; Auto derives from map_style (see
  /// mrmpi::MapReduceConfig::scheduler). sched::Policy::Steal selects
  /// decentralized work stealing.
  sched::Policy scheduler = sched::Policy::Auto;
  /// Shuffle path under test (combiner / exchange mode / compression).
  mrmpi::ShuffleConfig shuffle;
  /// Virtual seconds charged per alignment cell (|a| x |b| per pair); a
  /// no-op on the native backend. Gives the sim timeline a compute part.
  double virtual_seconds_per_cell = 0.0;
  /// Paging-policy overrides (0 / false keep the library defaults).
  std::uint64_t memsize_bytes = 0;
  bool page_to_disk = false;
  std::uint64_t page_bytes = 0;
  /// Fault tolerance for the map phase: crash/message faults need
  /// ft.enabled plus a remote scheduler (master/master-ft/steal).
  sched::FtConfig ft;
  /// Optional checkpoint/restart of the map phase (kill/corrupt plans).
  ckpt::Checkpointer* checkpointer = nullptr;
};

/// Globally-reduced before return: all ranks see the same totals.
struct GraphStats {
  std::uint64_t vertices = 0;        ///< sequences with at least one edge
  std::uint64_t edges = 0;           ///< directed edges written (2x pairs)
  std::uint64_t pairs_compared = 0;  ///< sequence pairs examined
  /// Order-independent FNV-sum over all "<id>\t<neighbor>\t<score>" edge
  /// lines; equal across backends, rank counts and shuffle modes.
  std::uint64_t edge_checksum = 0;
  std::uint64_t aggregate_bytes_sent = 0;    ///< nominal wire bytes (all ranks)
  std::uint64_t shuffle_combined_bytes = 0;  ///< nominal bytes combiner saved
  std::uint64_t shuffle_stages = 0;          ///< staged-exchange rounds
  std::string output_file;  ///< this rank's edge file ("" if none)
};

/// Collective: every rank of `comm` must call with identical config.
GraphStats build_graph_mr(mpi::Comm& comm, const GraphConfig& config);

}  // namespace mrbio::mrgraph
