#include "mrgraph/mrgraph.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string_view>
#include <unordered_map>

#include "blast/extend.hpp"
#include "blast/score.hpp"
#include "common/error.hpp"
#include "mrmpi/keyvalue.hpp"

namespace mrbio::mrgraph {

namespace {

/// FNV-1a over one edge line; summed (mod 2^64) across lines so the
/// checksum is independent of which rank owns which vertex.
std::uint64_t line_hash(std::string_view line) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : line) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Packs `word_len` residues (k <= 8, one byte each) into a u64 seed key.
bool pack_word(std::span<const std::uint8_t> seq, std::size_t pos, std::size_t k,
               std::uint64_t* out) {
  std::uint64_t w = 0;
  for (std::size_t i = 0; i < k; ++i) {
    w = (w << 8) | seq[pos + i];
  }
  *out = w;
  return true;
}

struct BlockPair {
  std::size_t bi = 0;
  std::size_t bj = 0;
};

/// Best ungapped score between two sequences: exact word seeds from a
/// position index of `a`, each extended with X-drop.
int best_pair_score(const blast::Sequence& a, const blast::Sequence& b,
                    const std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>&
                        index_a,
                    std::size_t word_len, const blast::Scorer& scorer, int xdrop) {
  if (b.length() < word_len) return 0;
  int best = 0;
  for (std::size_t pos = 0; pos + word_len <= b.length(); ++pos) {
    std::uint64_t w = 0;
    pack_word(b.data, pos, word_len, &w);
    const auto it = index_a.find(w);
    if (it == index_a.end()) continue;
    for (const std::uint32_t a_pos : it->second) {
      const blast::UngappedSegment seg = blast::extend_ungapped(
          a.data, b.data, a_pos, pos, word_len, scorer, xdrop);
      best = std::max(best, seg.score);
    }
  }
  return best;
}

}  // namespace

GraphStats build_graph_mr(mpi::Comm& comm, const GraphConfig& config) {
  MRBIO_REQUIRE(config.block_size > 0, "mrgraph block_size must be positive");
  MRBIO_REQUIRE(config.word_len > 0 && config.word_len <= 8,
                "mrgraph word_len must be in [1, 8]");
  const std::vector<blast::Sequence>& seqs = config.sequences;
  const std::size_t nblocks = (seqs.size() + config.block_size - 1) / config.block_size;
  std::vector<BlockPair> tasks;
  for (std::size_t i = 0; i < nblocks; ++i) {
    for (std::size_t j = i; j < nblocks; ++j) tasks.push_back({i, j});
  }
  const blast::Scorer scorer =
      config.dna ? blast::Scorer::dna() : blast::Scorer::blosum62();

  mrmpi::MapReduceConfig mr_config;
  mr_config.map_style = config.map_style;
  mr_config.scheduler = config.scheduler;
  mr_config.shuffle = config.shuffle;
  mr_config.ft = config.ft;
  mr_config.checkpointer = config.checkpointer;
  if (config.memsize_bytes > 0) mr_config.memsize_bytes = config.memsize_bytes;
  if (config.page_to_disk) mr_config.page_to_disk = true;
  if (config.page_bytes > 0) mr_config.page_bytes = config.page_bytes;
  mrmpi::MapReduce mr(comm, mr_config);

  // Per-block word indexes are built lazily per task; sequence data is
  // shared by all ranks so the only exchanged bytes are the edge KVs.
  const auto block_range = [&](std::size_t b) {
    const std::size_t lo = b * config.block_size;
    return std::pair<std::size_t, std::size_t>{
        lo, std::min(seqs.size(), lo + config.block_size)};
  };

  std::uint64_t local_pairs = 0;
  mr.map(tasks.size(), [&](std::uint64_t itask, mrmpi::KeyValue& kv) {
    const BlockPair bp = tasks[static_cast<std::size_t>(itask)];
    const auto [ilo, ihi] = block_range(bp.bi);
    const auto [jlo, jhi] = block_range(bp.bj);
    for (std::size_t ai = ilo; ai < ihi; ++ai) {
      const blast::Sequence& a = seqs[ai];
      if (a.length() < config.word_len) continue;
      std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index_a;
      for (std::size_t pos = 0; pos + config.word_len <= a.length(); ++pos) {
        std::uint64_t w = 0;
        pack_word(a.data, pos, config.word_len, &w);
        index_a[w].push_back(static_cast<std::uint32_t>(pos));
      }
      const std::size_t b_start = (bp.bi == bp.bj) ? ai + 1 : jlo;
      for (std::size_t bi2 = b_start; bi2 < jhi; ++bi2) {
        const blast::Sequence& b = seqs[bi2];
        ++local_pairs;
        if (config.virtual_seconds_per_cell > 0.0) {
          comm.compute(config.virtual_seconds_per_cell *
                       static_cast<double>(a.length()) *
                       static_cast<double>(b.length()));
        }
        const int score = best_pair_score(a, b, index_a, config.word_len, scorer,
                                          config.xdrop);
        if (score < config.min_score) continue;
        const std::string sval = std::to_string(score);
        kv.add(a.id, b.id + "\t" + sval);
        kv.add(b.id, a.id + "\t" + sval);
      }
    }
  });

  // The shuffle under test: ship each vertex's adjacency list to the rank
  // that owns the vertex id, then canonicalize it so output bytes are a
  // pure function of the input. Sorting keys before grouping makes group
  // order — and therefore edge-file line order — independent of KV
  // arrival order, which fault retries and checkpoint restores reshuffle.
  mr.aggregate();
  mr.sort_keys();
  mr.convert();

  std::FILE* out = nullptr;
  std::string output_file;
  if (!config.output_dir.empty()) {
    std::filesystem::create_directories(config.output_dir);
    output_file = config.output_dir + "/edges." + std::to_string(comm.rank()) + ".tsv";
    out = std::fopen(output_file.c_str(), "w");
    MRBIO_CHECK(out != nullptr, "cannot open ", output_file);
  }
  std::uint64_t local_vertices = 0;
  std::uint64_t local_edges = 0;
  std::uint64_t local_checksum = 0;
  mr.reduce([&](const mrmpi::KmvGroup& group, mrmpi::KeyValue&) {
    const std::string key(reinterpret_cast<const char*>(group.key.data()),
                          group.key.size());
    std::vector<std::string> neighbors;
    neighbors.reserve(group.values.size());
    for (const auto& v : group.values) {
      neighbors.emplace_back(reinterpret_cast<const char*>(v.data()), v.size());
    }
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()), neighbors.end());
    ++local_vertices;
    for (const std::string& n : neighbors) {
      const std::string line = key + "\t" + n;
      local_checksum += line_hash(line);
      ++local_edges;
      if (out != nullptr) std::fprintf(out, "%s\n", line.c_str());
    }
  });
  if (out != nullptr) std::fclose(out);

  GraphStats stats;
  stats.vertices = comm.allreduce_scalar(local_vertices, mpi::ReduceOp::Sum);
  stats.edges = comm.allreduce_scalar(local_edges, mpi::ReduceOp::Sum);
  stats.pairs_compared = comm.allreduce_scalar(local_pairs, mpi::ReduceOp::Sum);
  stats.edge_checksum = comm.allreduce_scalar(local_checksum, mpi::ReduceOp::Sum);
  stats.aggregate_bytes_sent =
      comm.allreduce_scalar(mr.stats().aggregate_bytes_sent, mpi::ReduceOp::Sum);
  stats.shuffle_combined_bytes =
      comm.allreduce_scalar(mr.stats().shuffle_combined_bytes, mpi::ReduceOp::Sum);
  stats.shuffle_stages =
      comm.allreduce_scalar(mr.stats().shuffle_stages, mpi::ReduceOp::Sum);
  stats.output_file = std::move(output_file);
  return stats;
}

}  // namespace mrbio::mrgraph
