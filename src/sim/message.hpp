// Message record exchanged between simulated processes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mrbio::sim {

struct Message {
  int source = -1;
  int tag = -1;
  double sent = 0.0;     ///< virtual time the send was issued
  double arrival = 0.0;  ///< virtual time the message reached the receiver
  std::uint64_t nominal_bytes = 0;
  std::vector<std::byte> payload;
};

}  // namespace mrbio::sim
