// Message record exchanged between simulated processes: the shared
// runtime-layer record, in the sim namespace for the DES-facing code.
#pragma once

#include "rt/runtime.hpp"

namespace mrbio::sim {

using Message = rt::Message;

}  // namespace mrbio::sim
