// Deterministic discrete-event simulation of a message-passing machine.
//
// The paper's experiments ran on up to 1024 cores of TACC Ranger. This
// engine substitutes for that cluster: every simulated process (rank) runs
// real application code on its own thread, but threads execute one at a
// time under a conservative scheduler that always resumes the runnable
// process with the smallest (virtual time, rank). Communication advances
// virtual time through an alpha-beta network model. The result is a
// bit-reproducible virtual-time trace for any simulated core count,
// independent of the host's real parallelism.
//
// Timing model
//   send:  the message's arrival time is sender_now + latency +
//          nominal_bytes * byte_time; the sender then advances by
//          send_overhead (eager buffered send, never blocks).
//   recv:  completes at max(post_time, arrival) + recv_overhead.
//   Messages are matched strictly in arrival order (ties broken by sender
//   rank, then send sequence), including MPI_ANY_SOURCE-style wildcards.
//
// Causality: the scheduler interleaves process execution with message
// delivery events in global virtual-time order, so a receive can never
// match a message "from the future" while an earlier one is still unsent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/message.hpp"

namespace mrbio::trace {
class Recorder;
}

namespace mrbio::obs {
class Registry;
class TimeSeries;
class EventLog;
}

namespace mrbio::fault {
class Injector;
}

namespace mrbio::sim {

/// Result of a timed receive (Process::recv_deadline).
enum class RecvStatus : std::uint8_t {
  Ok,       ///< a matching message was received
  Timeout,  ///< the deadline passed with no matching message
  PeerDead, ///< the awaited source finished/failed with nothing in flight
};

/// Observed lifecycle of a simulated rank.
enum class PeerState : std::uint8_t { Active, Finished, Failed };

/// Network cost parameters (seconds). Defaults approximate an Infiniband
/// DDR fabric of the Ranger era: ~2 us latency, ~1 GB/s point-to-point.
struct NetworkModel {
  double latency = 2e-6;        ///< per-message latency (alpha)
  double byte_time = 1e-9;      ///< per-byte transfer time (beta = 1/bandwidth)
  double send_overhead = 5e-7;  ///< CPU time charged to the sender
  double recv_overhead = 5e-7;  ///< CPU time charged to the receiver
};

struct EngineConfig {
  int nprocs = 1;
  NetworkModel net;
  std::size_t stack_bytes = 1 << 20;  ///< stack per simulated process
  /// Optional virtual-time span sink. Null (the default) disables tracing;
  /// the hooks only ever read clocks, so enabling a recorder never changes
  /// simulated times.
  trace::Recorder* recorder = nullptr;
  /// Optional metrics registry. The engine registers message-size and
  /// compute-charge distributions; layers above reach it through
  /// Process::metrics() to register their own. Observation only reads
  /// clocks and sizes, so attaching a registry never changes simulated
  /// times.
  obs::Registry* metrics = nullptr;
  /// Optional fault injector. When set, the engine applies message faults
  /// (drop/duplicate/delay) to user-tag sends and scales compute() charges
  /// on slow ranks; crash triggers are polled by the layers above through
  /// Process::faults(). Null (the default) injects nothing.
  fault::Injector* injector = nullptr;
  /// Optional time-series sampler. The engine feeds per-rank busy_seconds,
  /// sent_bytes and mailbox_depth channels stamped with virtual time;
  /// layers above reach it through Process::timeseries(). Cadence-gated,
  /// so enabling it never changes simulated times.
  obs::TimeSeries* timeseries = nullptr;
  /// Optional structured event log, reachable through Process::eventlog().
  obs::EventLog* eventlog = nullptr;
};

/// Aggregate counters collected over a run.
struct EngineStats {
  std::uint64_t messages = 0;       ///< point-to-point messages delivered
  std::uint64_t payload_bytes = 0;  ///< real payload bytes moved
  std::uint64_t nominal_bytes = 0;  ///< modeled bytes (timing-relevant)
  double total_compute = 0.0;       ///< sum of compute() seconds, all ranks
};

class Engine;

/// Handle through which application code running inside a simulated rank
/// interacts with the virtual machine. Passed by reference to the process
/// body; never stored beyond the body's lifetime.
class Process {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Current virtual time of this rank, in seconds.
  double now() const { return vtime_; }

  /// Advances this rank's clock by `seconds` of modeled computation.
  void compute(double seconds);

  /// Sends `payload` to rank `dst`. `nominal_bytes` is the byte count used
  /// by the timing model; it defaults to the real payload size but may
  /// differ when simulating paper-scale transfers with token payloads.
  void send(int dst, int tag, std::vector<std::byte> payload);
  void send(int dst, int tag, std::vector<std::byte> payload, std::uint64_t nominal_bytes);

  /// Blocking receive. src = kAnySource and tag = kAnyTag act as wildcards.
  /// Messages match in arrival-time order.
  Message recv(int src = kAnySource, int tag = kAnyTag);

  /// Timed receive with a failure-notification path. Blocks until a match
  /// arrives (Ok), the absolute virtual-time `deadline` passes (Timeout,
  /// clock advanced to the deadline), or — for a specific `src` — that
  /// rank terminates with no matching message in flight (PeerDead, clock
  /// advanced to the moment the death became observable). A deadline at or
  /// before now() returns Timeout without advancing the clock.
  RecvStatus recv_deadline(int src, int tag, double deadline, Message* out);

  /// Lifecycle of `peer` as observable from this rank right now.
  PeerState peer_state(int peer) const;

  /// True if a matching message has already arrived (non-blocking probe).
  bool has_message(int src = kAnySource, int tag = kAnyTag) const;

  /// The network cost model of the owning engine.
  const NetworkModel& net() const;

  /// The engine's span recorder, or null when tracing is off. Layers above
  /// the engine (mpi::Comm, mrmpi, drivers) use this to attach their own
  /// spans to the executing rank.
  trace::Recorder* tracer() const;

  /// The engine's metrics registry, or null when metrics are off. Same
  /// layering contract as tracer().
  obs::Registry* metrics() const;

  /// The run's fault injector, or null when no faults are planned.
  fault::Injector* faults() const;

  /// The run's time-series sampler, or null when sampling is off.
  obs::TimeSeries* timeseries() const;

  /// The run's structured event log, or null when not enabled.
  obs::EventLog* eventlog() const;

  static constexpr int kAnySource = -1;
  static constexpr int kAnyTag = -1;
  static constexpr int kAnyUserTag = -2;

 private:
  friend class Engine;
  Engine* engine_ = nullptr;
  int rank_ = -1;
  double vtime_ = 0.0;
};

/// Owns the simulated machine. Construct, call run() once, then read
/// elapsed()/stats(). A fresh Engine is required per run.
class Engine {
 public:
  explicit Engine(EngineConfig config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes `body` on every rank to completion. Rethrows the first
  /// exception (by rank order) raised inside any rank. Throws
  /// mrbio::LogicError on deadlock (all ranks blocked, no events pending).
  void run(const std::function<void(Process&)>& body);

  /// Virtual wall-clock of the run: max over ranks of their final time.
  double elapsed() const;

  /// Per-rank final virtual times.
  const std::vector<double>& final_times() const;

  const EngineStats& stats() const;
  const EngineConfig& config() const { return config_; }

 private:
  friend class Process;
  struct Impl;
  EngineConfig config_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mrbio::sim
