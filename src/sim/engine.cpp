#include "sim/engine.hpp"

#include <pthread.h>

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <queue>
#include <sstream>

#include "common/error.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "trace/trace.hpp"

namespace mrbio::sim {

namespace {

/// Thrown inside rank code when the run is being torn down (another rank
/// failed or a deadlock was detected). Caught by the rank trampoline.
struct SimAborted {};

struct MailboxEntry {
  Message msg;
  std::uint64_t seq = 0;  ///< global send sequence, for deterministic ties
};

bool matches(const MailboxEntry& e, int want_src, int want_tag) {
  if (want_src != Process::kAnySource && e.msg.source != want_src) return false;
  if (want_tag == Process::kAnyTag) return true;
  if (want_tag == Process::kAnyUserTag) return e.msg.tag < fault::kUserTagLimit;
  return e.msg.tag == want_tag;
}

/// Ordering of deliveries and matches: arrival time, then send sequence.
bool earlier(const MailboxEntry& a, const MailboxEntry& b) {
  if (a.msg.arrival != b.msg.arrival) return a.msg.arrival < b.msg.arrival;
  return a.seq < b.seq;
}

struct InFlight {
  double arrival = 0.0;
  std::uint64_t seq = 0;
  int dst = -1;
  Message msg;
};

struct InFlightLater {
  bool operator()(const InFlight& a, const InFlight& b) const {
    if (a.arrival != b.arrival) return a.arrival > b.arrival;
    return a.seq > b.seq;
  }
};

enum class State { NotStarted, Runnable, Running, BlockedRecv, Finished };

}  // namespace

struct Engine::Impl {
  struct Pcb {
    Process proc;
    pthread_t thread{};
    bool thread_started = false;
    State state = State::NotStarted;
    std::condition_variable cv;
    bool run_granted = false;

    // Pending blocking receive, valid while state == BlockedRecv.
    int want_src = Process::kAnySource;
    int want_tag = Process::kAnyTag;
    double recv_post_time = 0.0;
    bool has_deadline = false;  ///< blocked via recv_deadline, not recv
    double deadline = 0.0;      ///< absolute virtual-time timeout
    bool timed_out = false;     ///< woken because the deadline fired
    bool peer_dead = false;     ///< woken because the awaited source died
    std::optional<MailboxEntry> handed;  ///< message handed to a woken receiver

    std::deque<MailboxEntry> mailbox;  ///< delivered, unmatched; arrival-sorted
    std::exception_ptr error;
    double final_time = 0.0;

    // Cumulative per-rank telemetry fed to the optional TimeSeries sampler.
    double busy_seconds = 0.0;
    std::uint64_t sent_bytes = 0;
  };

  explicit Impl(const EngineConfig& config)
      : cfg(config),
        pcbs(config.nprocs),
        channel_last(static_cast<std::size_t>(config.nprocs) *
                     static_cast<std::size_t>(config.nprocs)),
        channel_inflight(static_cast<std::size_t>(config.nprocs) *
                         static_cast<std::size_t>(config.nprocs)) {
    if (cfg.metrics != nullptr) {
      c_messages = &cfg.metrics->counter("sim.messages");
      h_msg_bytes = &cfg.metrics->histogram("sim.message_nominal_bytes");
      h_compute = &cfg.metrics->histogram("sim.compute_seconds");
    }
  }

  EngineConfig cfg;
  std::mutex mutex;
  std::condition_variable sched_cv;
  std::vector<Pcb> pcbs;
  std::priority_queue<InFlight, std::vector<InFlight>, InFlightLater> events;
  /// Last arrival time per (src, dst) channel; enforces FIFO (non-overtaking)
  /// delivery so a small message cannot pass a large one on the same channel.
  std::vector<double> channel_last;
  /// Undelivered message count per (src, dst) channel. A receiver blocked on
  /// a specific source is only declared PeerDead once this drains to zero.
  std::vector<int> channel_inflight;
  std::uint64_t send_seq = 0;
  int finished = 0;
  bool aborted = false;
  bool ran = false;
  const std::function<void(Process&)>* body = nullptr;
  EngineStats stats;
  std::vector<double> final_times;
  // Cached metric handles (null when cfg.metrics is null).
  obs::Counter* c_messages = nullptr;
  obs::Histogram* h_msg_bytes = nullptr;
  obs::Histogram* h_compute = nullptr;

  // ---- helpers, all called with `mutex` held ----

  void insert_mailbox(Pcb& pcb, MailboxEntry entry) {
    // Deliveries already happen in (arrival, seq) order, so append is
    // almost always correct; keep the invariant explicit anyway.
    auto it = std::upper_bound(pcb.mailbox.begin(), pcb.mailbox.end(), entry,
                               [](const MailboxEntry& a, const MailboxEntry& b) {
                                 return earlier(a, b);
                               });
    pcb.mailbox.insert(it, std::move(entry));
  }

  int& inflight(int src, int dst) {
    return channel_inflight[static_cast<std::size_t>(src) *
                                static_cast<std::size_t>(cfg.nprocs) +
                            static_cast<std::size_t>(dst)];
  }

  /// True when `src` has terminated and can never again produce a message
  /// for `dst`: its thread finished and the (src, dst) channel is drained.
  bool source_exhausted(int src, int dst) const {
    const Pcb& p = pcbs[static_cast<std::size_t>(src)];
    return p.state == State::Finished &&
           channel_inflight[static_cast<std::size_t>(src) *
                                static_cast<std::size_t>(cfg.nprocs) +
                            static_cast<std::size_t>(dst)] == 0;
  }

  /// Wakes `pcb` (blocked in recv_deadline on a specific source that just
  /// became exhausted) with PeerDead at the virtual time the death became
  /// observable.
  void wake_peer_dead(Pcb& pcb, double observable_at) {
    pcb.proc.vtime_ = std::max(pcb.recv_post_time, observable_at);
    pcb.peer_dead = true;
    pcb.state = State::Runnable;
  }

  void deliver(InFlight event) {
    Pcb& dst = pcbs[static_cast<std::size_t>(event.dst)];
    stats.messages += 1;
    stats.payload_bytes += event.msg.payload.size();
    stats.nominal_bytes += event.msg.nominal_bytes;
    if (c_messages != nullptr) {
      c_messages->inc();
      h_msg_bytes->observe(static_cast<double>(event.msg.nominal_bytes));
    }
    const int src = event.msg.source;
    --inflight(src, event.dst);
    MailboxEntry entry{std::move(event.msg), event.seq};
    if (dst.state == State::BlockedRecv && matches(entry, dst.want_src, dst.want_tag)) {
      dst.proc.vtime_ = std::max(dst.recv_post_time, entry.msg.arrival) + cfg.net.recv_overhead;
      dst.handed = std::move(entry);
      dst.has_deadline = false;
      dst.state = State::Runnable;
    } else {
      const double arrival = entry.msg.arrival;
      insert_mailbox(dst, std::move(entry));
      if (auto* ts = cfg.timeseries; ts != nullptr) {
        ts->sample(event.dst, "mailbox_depth", arrival,
                   static_cast<double>(dst.mailbox.size()));
      }
      // The non-matching delivery may have been the last thing keeping a
      // timed receive on this source alive.
      if (dst.state == State::BlockedRecv && dst.has_deadline && dst.want_src == src &&
          source_exhausted(src, event.dst)) {
        dst.has_deadline = false;
        wake_peer_dead(dst, std::max(arrival, pcbs[static_cast<std::size_t>(src)].final_time));
      }
    }
  }

  /// Delivers every in-flight message with arrival <= `horizon`.
  void drain_events_until(double horizon) {
    while (!events.empty() && events.top().arrival <= horizon) {
      InFlight ev = events.top();
      events.pop();
      deliver(std::move(ev));
    }
  }

  int pick_runnable() const {
    int best = -1;
    for (int i = 0; i < cfg.nprocs; ++i) {
      const Pcb& p = pcbs[static_cast<std::size_t>(i)];
      if (p.state != State::Runnable && p.state != State::NotStarted) continue;
      if (best < 0 || p.proc.vtime_ < pcbs[static_cast<std::size_t>(best)].proc.vtime_) {
        best = i;
      }
    }
    return best;
  }

  void abort_blocked_ranks() {
    aborted = true;
    for (auto& pcb : pcbs) {
      if (pcb.state == State::BlockedRecv) {
        pcb.state = State::Runnable;  // will observe `aborted` and unwind
      }
    }
  }

  std::string blocked_report() const {
    std::ostringstream os;
    for (int i = 0; i < cfg.nprocs; ++i) {
      const Pcb& p = pcbs[static_cast<std::size_t>(i)];
      if (p.state == State::BlockedRecv) {
        os << " rank " << i << " recv(src=" << p.want_src << ", tag=" << p.want_tag
           << ") since t=" << p.recv_post_time;
        if (p.want_src >= 0 &&
            pcbs[static_cast<std::size_t>(p.want_src)].state == State::Finished) {
          os << (pcbs[static_cast<std::size_t>(p.want_src)].error ? " (peer died)"
                                                                  : " (peer finished)");
        }
        os << ";";
      }
    }
    return os.str();
  }

  /// Rank with the earliest pending recv_deadline timeout, or -1.
  int earliest_deadline() const {
    int best = -1;
    for (int i = 0; i < cfg.nprocs; ++i) {
      const Pcb& p = pcbs[static_cast<std::size_t>(i)];
      if (p.state != State::BlockedRecv || !p.has_deadline) continue;
      if (best < 0 || p.deadline < pcbs[static_cast<std::size_t>(best)].deadline) best = i;
    }
    return best;
  }

  /// Scheduler side: hands the CPU to `pid` and waits for it to yield back.
  void grant(int pid, std::unique_lock<std::mutex>& lock) {
    Pcb& pcb = pcbs[static_cast<std::size_t>(pid)];
    pcb.state = State::Running;
    pcb.run_granted = true;
    pcb.cv.notify_one();
    sched_cv.wait(lock, [&] { return pcb.state != State::Running; });
  }

  /// Process side: yields back to the scheduler and waits to be re-granted.
  /// `state` must already be set to a non-Running value by the caller.
  void yield_and_wait(Pcb& pcb, std::unique_lock<std::mutex>& lock) {
    sched_cv.notify_one();
    pcb.cv.wait(lock, [&] { return pcb.run_granted; });
    pcb.run_granted = false;
  }

  void finish_rank(Pcb& pcb, std::exception_ptr error) {
    std::unique_lock<std::mutex> lock(mutex);
    pcb.state = State::Finished;
    pcb.final_time = pcb.proc.vtime_;
    if (error) pcb.error = error;
    ++finished;
    // Timed receives waiting on this specific rank learn of the death as
    // soon as its channel drains (possibly right now).
    const int me = pcb.proc.rank_;
    for (int d = 0; d < cfg.nprocs; ++d) {
      Pcb& dst = pcbs[static_cast<std::size_t>(d)];
      if (dst.state == State::BlockedRecv && dst.has_deadline && dst.want_src == me &&
          source_exhausted(me, d)) {
        dst.has_deadline = false;
        wake_peer_dead(dst, pcb.final_time);
      }
    }
    sched_cv.notify_one();
  }

  void check_abort(const Pcb& pcb) const {
    if (aborted && pcb.state != State::Finished) throw SimAborted{};
  }

  struct Trampoline {
    Impl* impl;
    Pcb* pcb;
  };

  static void* rank_main(void* arg) {
    std::unique_ptr<Trampoline> t(static_cast<Trampoline*>(arg));
    Impl& impl = *t->impl;
    Pcb& pcb = *t->pcb;
    {
      // Wait for the first grant before touching any shared state.
      std::unique_lock<std::mutex> lock(impl.mutex);
      pcb.cv.wait(lock, [&] { return pcb.run_granted; });
      pcb.run_granted = false;
    }
    std::exception_ptr error;
    try {
      if (impl.aborted) throw SimAborted{};
      (*impl.body)(pcb.proc);
    } catch (const SimAborted&) {
      // Teardown in progress; not this rank's failure.
    } catch (...) {
      error = std::current_exception();
    }
    impl.finish_rank(pcb, error);
    return nullptr;
  }
};

Engine::Engine(EngineConfig config) : config_(config) {
  MRBIO_REQUIRE(config.nprocs >= 1, "Engine needs at least 1 process, got ", config.nprocs);
  MRBIO_REQUIRE(config.net.latency >= 0 && config.net.byte_time >= 0 &&
                    config.net.send_overhead >= 0 && config.net.recv_overhead >= 0,
                "network model times must be non-negative");
  impl_ = std::make_unique<Impl>(config_);
  for (int i = 0; i < config_.nprocs; ++i) {
    auto& pcb = impl_->pcbs[static_cast<std::size_t>(i)];
    pcb.proc.engine_ = this;
    pcb.proc.rank_ = i;
  }
}

Engine::~Engine() {
  // run() joins all threads before returning, including on error paths, so
  // nothing to clean up here beyond member destruction.
}

void Engine::run(const std::function<void(Process&)>& body) {
  MRBIO_CHECK(!impl_->ran, "Engine::run may only be called once");
  impl_->ran = true;
  impl_->body = &body;

  pthread_attr_t attr;
  pthread_attr_init(&attr);
  const std::size_t stack = std::max<std::size_t>(config_.stack_bytes, 128 * 1024);
  pthread_attr_setstacksize(&attr, stack);
  for (int i = 0; i < config_.nprocs; ++i) {
    auto& pcb = impl_->pcbs[static_cast<std::size_t>(i)];
    auto* t = new Impl::Trampoline{impl_.get(), &pcb};
    const int rc = pthread_create(&pcb.thread, &attr, &Impl::rank_main, t);
    if (rc != 0) {
      delete t;
      pthread_attr_destroy(&attr);
      throw Error(format_msg("pthread_create failed for rank ", i, " (rc=", rc, ")"));
    }
    pcb.thread_started = true;
  }
  pthread_attr_destroy(&attr);

  std::string deadlock_msg;
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    while (impl_->finished < config_.nprocs) {
      const int pid = impl_->pick_runnable();
      const bool have_event = !impl_->events.empty();
      const int did = impl_->earliest_deadline();
      if (pid < 0 && !have_event && did < 0) {
        deadlock_msg = impl_->blocked_report();
        impl_->abort_blocked_ranks();
        continue;
      }
      const double proc_time =
          pid >= 0 ? impl_->pcbs[static_cast<std::size_t>(pid)].proc.vtime_ : 0.0;
      const double dl_time =
          did >= 0 ? impl_->pcbs[static_cast<std::size_t>(did)].deadline : 0.0;
      // Global virtual-time order across the three wake sources. An event
      // arriving exactly at a deadline beats the timeout (the receive
      // succeeds); a deadline ties with a runnable process in the
      // deadline's favour so the timed-out rank observes its deadline
      // before later work runs.
      if (have_event &&
          (pid < 0 || impl_->events.top().arrival <= proc_time) &&
          (did < 0 || impl_->events.top().arrival <= dl_time)) {
        InFlight ev = impl_->events.top();
        impl_->events.pop();
        impl_->deliver(std::move(ev));
        continue;
      }
      if (did >= 0 && (pid < 0 || dl_time <= proc_time)) {
        auto& pcb = impl_->pcbs[static_cast<std::size_t>(did)];
        pcb.proc.vtime_ = pcb.deadline;
        pcb.has_deadline = false;
        pcb.timed_out = true;
        pcb.state = State::Runnable;
        continue;
      }
      impl_->grant(pid, lock);
    }
  }

  for (auto& pcb : impl_->pcbs) {
    if (pcb.thread_started) pthread_join(pcb.thread, nullptr);
  }

  impl_->final_times.resize(static_cast<std::size_t>(config_.nprocs));
  for (int i = 0; i < config_.nprocs; ++i) {
    impl_->final_times[static_cast<std::size_t>(i)] =
        impl_->pcbs[static_cast<std::size_t>(i)].final_time;
    if (config_.recorder != nullptr && i < config_.recorder->nranks()) {
      config_.recorder->set_final_time(i, impl_->final_times[static_cast<std::size_t>(i)]);
    }
  }

  for (const auto& pcb : impl_->pcbs) {
    if (pcb.error) std::rethrow_exception(pcb.error);
  }
  if (!deadlock_msg.empty()) {
    throw LogicError("simulation deadlock:" + deadlock_msg);
  }
}

double Engine::elapsed() const {
  double t = 0.0;
  for (double ft : impl_->final_times) t = std::max(t, ft);
  return t;
}

const std::vector<double>& Engine::final_times() const { return impl_->final_times; }

const EngineStats& Engine::stats() const { return impl_->stats; }

// ---- Process methods (run on rank threads) ----

int Process::size() const { return engine_->config().nprocs; }

const NetworkModel& Process::net() const { return engine_->config().net; }

trace::Recorder* Process::tracer() const { return engine_->config().recorder; }

obs::Registry* Process::metrics() const { return engine_->config().metrics; }

fault::Injector* Process::faults() const { return engine_->config().injector; }

obs::TimeSeries* Process::timeseries() const { return engine_->config().timeseries; }

obs::EventLog* Process::eventlog() const { return engine_->config().eventlog; }

void Process::compute(double seconds) {
  MRBIO_REQUIRE(seconds >= 0.0, "compute() needs non-negative time, got ", seconds);
  auto& impl = *engine_->impl_;
  if (auto* inj = impl.cfg.injector; inj != nullptr) {
    seconds *= inj->slow_factor(rank_);
  }
  std::unique_lock<std::mutex> lock(impl.mutex);
  auto& pcb = impl.pcbs[static_cast<std::size_t>(rank_)];
  impl.check_abort(pcb);
  const double t0 = vtime_;
  vtime_ += seconds;
  impl.stats.total_compute += seconds;
  pcb.busy_seconds += seconds;
  if (impl.h_compute != nullptr) impl.h_compute->observe(seconds);
  if (auto* ts = impl.cfg.timeseries; ts != nullptr) {
    ts->sample(rank_, "busy_seconds", vtime_, pcb.busy_seconds);
  }
  if (auto* rec = impl.cfg.recorder; rec != nullptr && rec->full()) {
    rec->add(rank_, trace::Category::Compute, "compute", t0, vtime_);
  }
}

void Process::send(int dst, int tag, std::vector<std::byte> payload) {
  const auto n = static_cast<std::uint64_t>(payload.size());
  send(dst, tag, std::move(payload), n);
}

void Process::send(int dst, int tag, std::vector<std::byte> payload,
                   std::uint64_t nominal_bytes) {
  auto& impl = *engine_->impl_;
  fault::SendAction action;
  if (auto* inj = impl.cfg.injector; inj != nullptr) {
    action = inj->on_send(rank_, dst, tag, fault::kUserTagLimit);
  }
  std::unique_lock<std::mutex> lock(impl.mutex);
  MRBIO_REQUIRE(dst >= 0 && dst < engine_->config().nprocs, "send to invalid rank ", dst);
  auto& pcb = impl.pcbs[static_cast<std::size_t>(rank_)];
  impl.check_abort(pcb);
  const auto& net = impl.cfg.net;
  if (action.kind == fault::SendAction::Kind::Drop) {
    // The sender pays its overhead but nothing enters the network; the
    // channel FIFO clamp is untouched (the message never occupied a slot).
    const double t0 = vtime_;
    vtime_ += net.send_overhead;
    if (auto* rec = impl.cfg.recorder; rec != nullptr && rec->full()) {
      rec->add(rank_, trace::Category::Send, "send_dropped", t0, vtime_, 0, nominal_bytes);
    }
    return;
  }
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.sent = vtime_;
  msg.nominal_bytes = nominal_bytes;
  msg.arrival = vtime_ + net.latency + static_cast<double>(nominal_bytes) * net.byte_time +
                action.delay;
  double& channel = impl.channel_last[static_cast<std::size_t>(rank_) *
                                          static_cast<std::size_t>(engine_->config().nprocs) +
                                      static_cast<std::size_t>(dst)];
  msg.arrival = std::max(msg.arrival, channel);
  channel = msg.arrival;
  msg.payload = std::move(payload);
  const double arrival = msg.arrival;
  const std::uint64_t seq = ++impl.send_seq;
  if (action.kind == fault::SendAction::Kind::Duplicate) {
    InFlight dup{arrival, ++impl.send_seq, dst, msg};
    ++impl.inflight(rank_, dst);
    impl.events.push(std::move(dup));
  }
  ++impl.inflight(rank_, dst);
  impl.events.push(InFlight{msg.arrival, seq, dst, std::move(msg)});
  const double t0 = vtime_;
  vtime_ += net.send_overhead;
  pcb.sent_bytes += nominal_bytes;
  if (auto* ts = impl.cfg.timeseries; ts != nullptr) {
    ts->sample(rank_, "sent_bytes", vtime_, static_cast<double>(pcb.sent_bytes));
  }
  if (auto* rec = impl.cfg.recorder; rec != nullptr && rec->full()) {
    rec->add_edge(rank_, trace::Category::Send, "send", t0, vtime_, nominal_bytes,
                  dst, seq, arrival);
  }
}

Message Process::recv(int src, int tag) {
  auto& impl = *engine_->impl_;
  std::unique_lock<std::mutex> lock(impl.mutex);
  auto& pcb = impl.pcbs[static_cast<std::size_t>(rank_)];
  impl.check_abort(pcb);
  const double post_time = vtime_;

  // Messages already delivered to the mailbox arrived no later than this
  // rank's current time, so the earliest match completes immediately.
  for (auto it = pcb.mailbox.begin(); it != pcb.mailbox.end(); ++it) {
    if (matches(*it, src, tag)) {
      Message out = std::move(it->msg);
      const std::uint64_t seq = it->seq;
      pcb.mailbox.erase(it);
      vtime_ = std::max(vtime_, out.arrival) + impl.cfg.net.recv_overhead;
      if (auto* ts = impl.cfg.timeseries; ts != nullptr) {
        ts->sample(rank_, "mailbox_depth", vtime_,
                   static_cast<double>(pcb.mailbox.size()));
      }
      if (auto* rec = impl.cfg.recorder; rec != nullptr && rec->full()) {
        rec->add_edge(rank_, trace::Category::RecvWait, "recv", post_time, vtime_,
                      out.nominal_bytes, out.source, seq, out.arrival);
      }
      return out;
    }
  }

  pcb.want_src = src;
  pcb.want_tag = tag;
  pcb.recv_post_time = vtime_;
  pcb.state = State::BlockedRecv;
  impl.yield_and_wait(pcb, lock);
  impl.check_abort(pcb);
  MRBIO_CHECK(pcb.handed.has_value(), "rank ", rank_, " woken from recv without a message");
  Message out = std::move(pcb.handed->msg);
  const std::uint64_t seq = pcb.handed->seq;
  pcb.handed.reset();
  if (auto* rec = impl.cfg.recorder; rec != nullptr && rec->full()) {
    rec->add_edge(rank_, trace::Category::RecvWait, "recv", post_time, vtime_,
                  out.nominal_bytes, out.source, seq, out.arrival);
  }
  return out;
}

RecvStatus Process::recv_deadline(int src, int tag, double deadline, Message* out) {
  auto& impl = *engine_->impl_;
  std::unique_lock<std::mutex> lock(impl.mutex);
  auto& pcb = impl.pcbs[static_cast<std::size_t>(rank_)];
  impl.check_abort(pcb);
  const double post_time = vtime_;

  for (auto it = pcb.mailbox.begin(); it != pcb.mailbox.end(); ++it) {
    if (matches(*it, src, tag)) {
      Message msg = std::move(it->msg);
      const std::uint64_t seq = it->seq;
      pcb.mailbox.erase(it);
      vtime_ = std::max(vtime_, msg.arrival) + impl.cfg.net.recv_overhead;
      if (auto* rec = impl.cfg.recorder; rec != nullptr && rec->full()) {
        rec->add_edge(rank_, trace::Category::RecvWait, "recv", post_time, vtime_,
                      msg.nominal_bytes, msg.source, seq, msg.arrival);
      }
      *out = std::move(msg);
      return RecvStatus::Ok;
    }
  }

  // A specific source that already terminated with a drained channel can
  // never satisfy this receive; report the death instead of waiting out
  // the deadline. (The mailbox scan above already ruled out a match.)
  if (src != kAnySource && impl.source_exhausted(src, rank_)) {
    const double died_at = impl.pcbs[static_cast<std::size_t>(src)].final_time;
    vtime_ = std::max(vtime_, died_at);
    if (auto* rec = impl.cfg.recorder; rec != nullptr && rec->full() && vtime_ > post_time) {
      rec->add(rank_, trace::Category::RecvWait, "recv_peer_dead", post_time, vtime_);
    }
    return RecvStatus::PeerDead;
  }

  if (deadline <= vtime_) return RecvStatus::Timeout;

  pcb.want_src = src;
  pcb.want_tag = tag;
  pcb.recv_post_time = vtime_;
  pcb.has_deadline = true;
  pcb.deadline = deadline;
  pcb.timed_out = false;
  pcb.peer_dead = false;
  pcb.state = State::BlockedRecv;
  impl.yield_and_wait(pcb, lock);
  impl.check_abort(pcb);
  if (pcb.timed_out || pcb.peer_dead) {
    const bool dead = pcb.peer_dead;
    pcb.timed_out = false;
    pcb.peer_dead = false;
    if (auto* rec = impl.cfg.recorder; rec != nullptr && rec->full() && vtime_ > post_time) {
      rec->add(rank_, trace::Category::RecvWait, dead ? "recv_peer_dead" : "recv_timeout",
               post_time, vtime_);
    }
    return dead ? RecvStatus::PeerDead : RecvStatus::Timeout;
  }
  MRBIO_CHECK(pcb.handed.has_value(), "rank ", rank_, " woken from recv without a message");
  Message msg = std::move(pcb.handed->msg);
  const std::uint64_t seq = pcb.handed->seq;
  pcb.handed.reset();
  if (auto* rec = impl.cfg.recorder; rec != nullptr && rec->full()) {
    rec->add_edge(rank_, trace::Category::RecvWait, "recv", post_time, vtime_,
                  msg.nominal_bytes, msg.source, seq, msg.arrival);
  }
  *out = std::move(msg);
  return RecvStatus::Ok;
}

PeerState Process::peer_state(int peer) const {
  auto& impl = *engine_->impl_;
  std::unique_lock<std::mutex> lock(impl.mutex);
  MRBIO_REQUIRE(peer >= 0 && peer < engine_->config().nprocs, "peer_state of invalid rank ",
                peer);
  const auto& pcb = impl.pcbs[static_cast<std::size_t>(peer)];
  if (pcb.state != State::Finished) return PeerState::Active;
  return pcb.error ? PeerState::Failed : PeerState::Finished;
}

bool Process::has_message(int src, int tag) const {
  auto& impl = *engine_->impl_;
  std::unique_lock<std::mutex> lock(impl.mutex);
  auto& pcb = impl.pcbs[static_cast<std::size_t>(rank_)];
  impl.check_abort(pcb);
  // Make everything that should have arrived by now visible first.
  impl.drain_events_until(vtime_);
  // The mailbox may hold entries delivered by a peer whose clock runs ahead
  // of ours (drain_events_until is global); a probe must stay causal and
  // only report messages that have arrived by *this* rank's current time.
  for (const auto& entry : pcb.mailbox) {
    if (entry.msg.arrival <= vtime_ && matches(entry, src, tag)) return true;
  }
  return false;
}

}  // namespace mrbio::sim
