#include "obs/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string_view>
#include <unordered_map>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace mrbio::obs {

using trace::Category;
using trace::Event;
using trace::Recorder;

namespace {

// ---------------------------------------------------------------------------
// Interval arithmetic (same shapes as trace.cpp's summarize helpers).

using Interval = std::pair<double, double>;

void merge_intervals(std::vector<Interval>& iv) {
  if (iv.empty()) return;
  std::sort(iv.begin(), iv.end());
  std::size_t out = 0;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first <= iv[out].second) {
      iv[out].second = std::max(iv[out].second, iv[i].second);
    } else {
      iv[++out] = iv[i];
    }
  }
  iv.resize(out + 1);
}

double measure(const std::vector<Interval>& merged) {
  double total = 0.0;
  for (const auto& [a, b] : merged) total += b - a;
  return total;
}

// Total length of `iv` (merged) not covered by `cover` (merged).
double measure_minus(const std::vector<Interval>& iv, const std::vector<Interval>& cover) {
  double total = 0.0;
  std::size_t c = 0;
  for (const auto& [a, b] : iv) {
    double pos = a;
    while (c < cover.size() && cover[c].second <= pos) ++c;
    std::size_t k = c;
    while (pos < b) {
      if (k >= cover.size() || cover[k].first >= b) {
        total += b - pos;
        break;
      }
      if (cover[k].first > pos) total += cover[k].first - pos;
      pos = std::max(pos, cover[k].second);
      ++k;
    }
  }
  return total;
}

std::vector<Interval> merged_union(std::vector<Interval> a, const std::vector<Interval>& b) {
  a.insert(a.end(), b.begin(), b.end());
  merge_intervals(a);
  return a;
}

double clamp0(double v) { return v < 0.0 ? 0.0 : v; }

bool is_busy_cat(Category c) {
  return c == Category::Compute || c == Category::App || c == Category::Io ||
         c == Category::Task;
}

bool is_primitive_cat(Category c) {
  return c == Category::Compute || c == Category::Send || c == Category::RecvWait;
}

bool is_span_cat(Category c) {
  return c == Category::App || c == Category::Io || c == Category::Task ||
         c == Category::Collective || c == Category::Phase;
}

int span_priority(Category c) {
  switch (c) {
    case Category::App: return 5;
    case Category::Io: return 4;
    case Category::Task: return 3;
    case Category::Collective: return 2;
    case Category::Phase: return 1;
    default: return 0;
  }
}

bool is_db_io(const Event& e) {
  return e.cat == Category::Io && std::string_view(e.name) == "db_load";
}

bool is_ckpt_io(const Event& e) {
  // "ckpt_write" (map-log flush, ledger record, snapshot) and
  // "ckpt_restore" (resume replay).
  return e.cat == Category::Io && std::string_view(e.name).substr(0, 4) == "ckpt";
}

bool is_shuffle_io(const Event& e) {
  // "shuffle_spill": post-exchange spill writes that may overlap the
  // alltoall; reported separately so the overlap win is visible.
  return e.cat == Category::Io && std::string_view(e.name).substr(0, 7) == "shuffle";
}

// ---------------------------------------------------------------------------
// Per-rank final time: recorded value when present, else last span end.

double rank_final_time(const Recorder& rec, int rank) {
  double t = 0.0;
  const auto& finals = rec.final_times();
  if (rank < static_cast<int>(finals.size())) t = finals[static_cast<std::size_t>(rank)];
  for (const Event& e : rec.rank_events(rank)) t = std::max(t, e.t1);
  return t;
}

// ---------------------------------------------------------------------------
// Critical-path walk.

struct Walker {
  const Recorder& rec;
  double eps;
  /// Per-rank walk timeline sorted by t0: primitive events at Full level,
  /// span events otherwise (overlap/nesting is fine for the walk).
  std::vector<std::vector<const Event*>> timeline;
  /// Engine send sequence -> the Send event that produced it.
  std::unordered_map<std::uint64_t, const Event*> sends;

  Walker(const Recorder& r, double makespan) : rec(r), eps(makespan * 1e-12 + 1e-15) {
    const int n = rec.nranks();
    timeline.resize(static_cast<std::size_t>(n));
    for (int rank = 0; rank < n; ++rank) {
      const auto& lane = rec.rank_events(rank);
      auto& tl = timeline[static_cast<std::size_t>(rank)];
      bool has_primitive = false;
      for (const Event& e : lane) {
        if (is_primitive_cat(e.cat)) {
          has_primitive = true;
          break;
        }
      }
      for (const Event& e : lane) {
        if (has_primitive ? is_primitive_cat(e.cat) : is_span_cat(e.cat)) {
          tl.push_back(&e);
        }
        if (e.cat == Category::Send && e.seq != 0) sends.emplace(e.seq, &e);
      }
      std::sort(tl.begin(), tl.end(), [](const Event* a, const Event* b) {
        if (a->t0 != b->t0) return a->t0 < b->t0;
        return a->t1 < b->t1;
      });
    }
  }

  /// Last timeline event on `rank` starting strictly before `t`.
  const Event* last_before(int rank, double t) const {
    const auto& tl = timeline[static_cast<std::size_t>(rank)];
    auto it = std::lower_bound(tl.begin(), tl.end(), t - eps,
                               [](const Event* e, double v) { return e->t0 < v; });
    if (it == tl.begin()) return nullptr;
    return *(it - 1);
  }

  /// Name of the innermost, highest-priority span enclosing the midpoint of
  /// [a, b] on `rank`; `fallback` when no span covers it.
  std::string label_for(int rank, double a, double b, const char* fallback) const {
    const double mid = 0.5 * (a + b);
    const Event* best = nullptr;
    for (const Event& e : rec.rank_events(rank)) {
      if (!is_span_cat(e.cat)) continue;
      if (e.t0 > mid + eps || e.t1 < mid - eps) continue;
      if (best == nullptr) {
        best = &e;
        continue;
      }
      const int pe = span_priority(e.cat);
      const int pb = span_priority(best->cat);
      if (pe > pb || (pe == pb && (e.t1 - e.t0) < (best->t1 - best->t0))) best = &e;
    }
    return best != nullptr ? std::string(best->name) : std::string(fallback);
  }
};

CriticalPath walk_critical_path(const Recorder& rec, double makespan,
                                const std::vector<double>& finals) {
  CriticalPath path;
  path.length = 0.0;
  if (makespan <= 0.0) return path;

  Walker w(rec, makespan);
  int rank = 0;
  for (int r = 0; r < rec.nranks(); ++r) {
    if (finals[static_cast<std::size_t>(r)] > finals[static_cast<std::size_t>(rank)]) rank = r;
  }
  double t = makespan;

  std::vector<PathSegment> rev;  // built back-to-front
  auto emit = [&rev](int seg_rank, double a, double b, std::string label) {
    if (b - a <= 0.0) return;
    if (!rev.empty() && rev.back().rank == seg_rank && rev.back().label == label &&
        rev.back().t0 <= b) {
      rev.back().t0 = a;  // extend the adjacent same-label segment
      return;
    }
    rev.push_back(PathSegment{seg_rank, a, b, std::move(label)});
  };

  // Generous iteration bound: each step either consumes one event or hops.
  std::size_t steps_left = 4 * rec.size() + 64;
  while (t > w.eps) {
    if (steps_left-- == 0) {
      emit(rank, 0.0, t, "truncated");  // keeps the tiling invariant
      break;
    }
    const Event* e = w.last_before(rank, t);
    if (e == nullptr) {
      emit(rank, 0.0, t, "idle");
      t = 0.0;
      break;
    }
    if (e->t1 < t - w.eps) {
      // Gap between events on this rank.
      emit(rank, e->t1, t, w.label_for(rank, e->t1, t, "idle"));
      t = e->t1;
      continue;
    }
    // `e` covers t. A sender-bound receive hops to the sending rank: the
    // receiver stretch back to the send completion is network wait, and
    // the walk continues on the sender.
    if (e->cat == Category::RecvWait && e->seq != 0 && e->dep > e->t0 + w.eps) {
      auto it = w.sends.find(e->seq);
      if (it != w.sends.end()) {
        const Event* s = it->second;
        if (s->t1 < t - w.eps) {
          emit(rank, s->t1, t, "net_wait");
          path.hops += 1;
          rank = s->rank;
          t = s->t1;
          continue;
        }
      }
    }
    emit(rank, e->t0, t, w.label_for(rank, e->t0, t, e->name));
    t = e->t0;
  }

  std::reverse(rev.begin(), rev.end());
  path.segments = std::move(rev);
  for (const PathSegment& s : path.segments) path.length += s.seconds();

  std::map<std::string, double> shares;
  for (const PathSegment& s : path.segments) shares[s.label] += s.seconds();
  for (auto& [label, seconds] : shares) path.by_label.push_back({label, seconds});
  std::sort(path.by_label.begin(), path.by_label.end(),
            [](const LabelShare& a, const LabelShare& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.label < b.label;
            });
  return path;
}

// ---------------------------------------------------------------------------
// Idle-time decomposition.

RankBreakdown breakdown_rank(const Recorder& rec, int rank, double final_time) {
  RankBreakdown b;
  b.rank = rank;
  b.final_time = final_time;

  std::vector<Interval> busy, retry, app, io_db, io_ckpt, io_shuffle, io_spill, coll,
      fwait, mwait, comm;
  const bool full = rec.level() == trace::Level::Full;
  for (const Event& e : rec.rank_events(rank)) {
    const Interval iv{e.t0, e.t1};
    if (is_busy_cat(e.cat)) busy.push_back(iv);
    if (e.cat == Category::Task && std::string_view(e.name) == "map_task_retry") {
      retry.push_back(iv);
    }
    switch (e.cat) {
      case Category::App:
        app.push_back(iv);
        break;
      case Category::Io:
        (is_db_io(e)        ? io_db
         : is_ckpt_io(e)    ? io_ckpt
         : is_shuffle_io(e) ? io_shuffle
                            : io_spill)
            .push_back(iv);
        break;
      case Category::Collective:
        coll.push_back(iv);
        break;
      case Category::Fault:
        fwait.push_back(iv);
        break;
      case Category::RecvWait:
        // A worker blocked on the master (rank 0) is master-wait; any
        // other receive is generic communication.
        (rank != 0 && e.peer == 0 ? mwait : comm).push_back(iv);
        break;
      case Category::Send:
        comm.push_back(iv);
        break;
      case Category::Phase:
        // Without per-message events, worker idle inside the map phase is
        // the best available master-wait signal.
        if (!full && rank != 0 && std::string_view(e.name) == "map") mwait.push_back(iv);
        break;
      default:
        break;
    }
  }

  merge_intervals(busy);
  merge_intervals(retry);
  merge_intervals(app);
  merge_intervals(io_db);
  merge_intervals(io_ckpt);
  merge_intervals(io_shuffle);
  merge_intervals(io_spill);
  merge_intervals(coll);
  merge_intervals(fwait);
  merge_intervals(mwait);
  merge_intervals(comm);

  // Busy chain: re-executed task time is carved out first — the App/Io
  // spans nested inside a retried task are recovery cost, not useful work.
  const double busy_total = measure(busy);
  b.retry_compute = measure(retry);
  b.useful = measure_minus(app, retry);
  auto covered = merged_union(retry, app);
  b.db_io = measure_minus(io_db, covered);
  covered = merged_union(std::move(covered), io_db);
  b.checkpoint_io = measure_minus(io_ckpt, covered);
  covered = merged_union(std::move(covered), io_ckpt);
  b.shuffle_io = measure_minus(io_shuffle, covered);
  covered = merged_union(std::move(covered), io_shuffle);
  b.spill_io = measure_minus(io_spill, covered);
  b.other_busy = clamp0(busy_total - b.retry_compute - b.useful - b.db_io -
                        b.checkpoint_io - b.shuffle_io - b.spill_io);

  // Idle chain: Fault spans (reassignment waits, retry-later naps) claim
  // their time ahead of master-wait and generic communication.
  const double idle_total = clamp0(final_time - busy_total);
  b.collective_skew = measure_minus(coll, busy);
  covered = merged_union(std::move(busy), coll);
  b.recovery_wait = measure_minus(fwait, covered);
  covered = merged_union(std::move(covered), fwait);
  b.master_wait = measure_minus(mwait, covered);
  covered = merged_union(std::move(covered), mwait);
  b.comm_overhead = measure_minus(comm, covered);
  b.idle_other = clamp0(idle_total - b.collective_skew - b.recovery_wait -
                        b.master_wait - b.comm_overhead);
  return b;
}

}  // namespace

Report analyze(const Recorder& rec, const AnalyzeOptions& opts) {
  Report rep;
  rep.nranks = rec.nranks();
  rep.level = rec.level();

  std::vector<double> finals(static_cast<std::size_t>(rep.nranks), 0.0);
  for (int r = 0; r < rep.nranks; ++r) {
    finals[static_cast<std::size_t>(r)] = rank_final_time(rec, r);
    rep.makespan = std::max(rep.makespan, finals[static_cast<std::size_t>(r)]);
  }

  rep.path = walk_critical_path(rec, rep.makespan, finals);

  rep.total.rank = -1;
  for (int r = 0; r < rep.nranks; ++r) {
    RankBreakdown b = breakdown_rank(rec, r, finals[static_cast<std::size_t>(r)]);
    rep.total.final_time += b.final_time;
    rep.total.retry_compute += b.retry_compute;
    rep.total.useful += b.useful;
    rep.total.db_io += b.db_io;
    rep.total.checkpoint_io += b.checkpoint_io;
    rep.total.shuffle_io += b.shuffle_io;
    rep.total.spill_io += b.spill_io;
    rep.total.other_busy += b.other_busy;
    rep.total.collective_skew += b.collective_skew;
    rep.total.recovery_wait += b.recovery_wait;
    rep.total.master_wait += b.master_wait;
    rep.total.comm_overhead += b.comm_overhead;
    rep.total.idle_other += b.idle_other;
    rep.ranks.push_back(std::move(b));
  }

  std::vector<double> busys;
  busys.reserve(rep.ranks.size());
  for (const RankBreakdown& b : rep.ranks) busys.push_back(b.busy_total());
  if (!busys.empty()) {
    std::vector<double> sorted = busys;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    rep.median_busy =
        (n % 2 == 1) ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
    if (rep.median_busy > 0.0) {
      for (int r = 0; r < rep.nranks; ++r) {
        const double busy = busys[static_cast<std::size_t>(r)];
        if (busy > opts.straggler_k * rep.median_busy) {
          rep.stragglers.push_back({r, busy, busy / rep.median_busy});
        }
      }
      std::sort(rep.stragglers.begin(), rep.stragglers.end(),
                [](const Straggler& a, const Straggler& b) {
                  if (a.busy_seconds != b.busy_seconds) return a.busy_seconds > b.busy_seconds;
                  return a.rank < b.rank;
                });
    }
  }
  return rep;
}

namespace {

double pct(double part, double whole) { return whole > 0.0 ? 100.0 * part / whole : 0.0; }

struct CatRow {
  const char* name;
  double RankBreakdown::* field;
};

constexpr CatRow kBusyRows[] = {
    {"useful", &RankBreakdown::useful},
    {"retry_compute", &RankBreakdown::retry_compute},
    {"db_io", &RankBreakdown::db_io},
    {"checkpoint_io", &RankBreakdown::checkpoint_io},
    {"shuffle_io", &RankBreakdown::shuffle_io},
    {"spill_io", &RankBreakdown::spill_io},
    {"other_busy", &RankBreakdown::other_busy},
};
constexpr CatRow kIdleRows[] = {
    {"collective_skew", &RankBreakdown::collective_skew},
    {"recovery_wait", &RankBreakdown::recovery_wait},
    {"master_wait", &RankBreakdown::master_wait},
    {"comm_overhead", &RankBreakdown::comm_overhead},
    {"idle_other", &RankBreakdown::idle_other},
};

}  // namespace

void print_report(std::FILE* out, const Report& report, std::size_t max_rank_rows) {
  std::fprintf(out, "== performance report ==\n");
  std::fprintf(out, "ranks %d   makespan %.6f s   trace level %s\n", report.nranks,
               report.makespan, report.level == trace::Level::Full ? "full" : "phases");

  std::fprintf(out, "\n-- critical path: %.6f s, %d rank hop%s, %zu segments --\n",
               report.path.length, report.path.hops, report.path.hops == 1 ? "" : "s",
               report.path.segments.size());
  std::fprintf(out, "%-24s %14s %8s\n", "label", "seconds", "share");
  for (const LabelShare& s : report.path.by_label) {
    std::fprintf(out, "%-24s %14.6f %7.2f%%\n", s.label.c_str(), s.seconds,
                 pct(s.seconds, report.path.length));
  }

  const double rank_seconds = report.total.final_time;
  std::fprintf(out, "\n-- time decomposition (all ranks, %% of %.6f rank-seconds) --\n",
               rank_seconds);
  std::fprintf(out, "%-24s %14s %8s\n", "category", "seconds", "share");
  for (const CatRow& row : kBusyRows) {
    std::fprintf(out, "%-24s %14.6f %7.2f%%\n", row.name, report.total.*row.field,
                 pct(report.total.*row.field, rank_seconds));
  }
  for (const CatRow& row : kIdleRows) {
    std::fprintf(out, "%-24s %14.6f %7.2f%%\n", row.name, report.total.*row.field,
                 pct(report.total.*row.field, rank_seconds));
  }
  std::fprintf(out, "%-24s %14.6f %7.2f%%   (%% of rank-time waiting)\n", "total_idle",
               report.total.idle_total(), pct(report.total.idle_total(), rank_seconds));

  const std::size_t nrows =
      std::min(max_rank_rows, report.ranks.size());
  std::fprintf(out, "\n-- per-rank breakdown (first %zu of %d) --\n", nrows, report.nranks);
  std::fprintf(out, "%5s %11s %11s %9s %9s %9s %9s %9s %9s %9s %9s %9s %9s %9s\n",
               "rank", "final", "useful", "retry", "db_io", "ckpt", "shuf", "spill",
               "obusy", "cskew", "rwait", "mwait", "comm", "idle");
  for (std::size_t i = 0; i < nrows; ++i) {
    const RankBreakdown& b = report.ranks[i];
    std::fprintf(out,
                 "%5d %11.4f %11.4f %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f "
                 "%9.4f %9.4f %9.4f\n",
                 b.rank, b.final_time, b.useful, b.retry_compute, b.db_io,
                 b.checkpoint_io, b.shuffle_io, b.spill_io, b.other_busy,
                 b.collective_skew, b.recovery_wait, b.master_wait, b.comm_overhead,
                 b.idle_other);
  }

  if (report.stragglers.empty()) {
    std::fprintf(out, "\nstragglers: none (median busy %.6f s)\n", report.median_busy);
  } else {
    std::fprintf(out, "\nstragglers (busy > k x median %.6f s):\n", report.median_busy);
    for (const Straggler& s : report.stragglers) {
      std::fprintf(out, "  rank %d: busy %.6f s (%.2fx median)\n", s.rank,
                   s.busy_seconds, s.ratio);
    }
  }
}

namespace {

void json_breakdown(std::FILE* out, const RankBreakdown& b) {
  std::fprintf(out,
               "{\"rank\":%d,\"final_time\":%.17g,\"useful\":%.17g,"
               "\"retry_compute\":%.17g,\"db_io\":%.17g,\"checkpoint_io\":%.17g,"
               "\"shuffle_io\":%.17g,\"spill_io\":%.17g,\"other_busy\":%.17g,"
               "\"collective_skew\":%.17g,\"recovery_wait\":%.17g,"
               "\"master_wait\":%.17g,\"comm_overhead\":%.17g,"
               "\"idle_other\":%.17g}",
               b.rank, b.final_time, b.useful, b.retry_compute, b.db_io, b.checkpoint_io,
               b.shuffle_io, b.spill_io, b.other_busy, b.collective_skew,
               b.recovery_wait, b.master_wait, b.comm_overhead, b.idle_other);
}

void json_string(std::FILE* out, const std::string& s) {
  std::fputc('"', out);
  for (char ch : s) {
    if (ch == '"' || ch == '\\') std::fputc('\\', out);
    std::fputc(ch, out);
  }
  std::fputc('"', out);
}

}  // namespace

void write_report_json(std::FILE* out, const Report& report, const Registry* metrics) {
  std::fprintf(out, "{\"nranks\":%d,\"level\":\"%s\",\"makespan\":%.17g,", report.nranks,
               report.level == trace::Level::Full ? "full" : "phases", report.makespan);
  std::fprintf(out, "\"critical_path\":{\"length\":%.17g,\"hops\":%d,\"by_label\":[",
               report.path.length, report.path.hops);
  for (std::size_t i = 0; i < report.path.by_label.size(); ++i) {
    if (i != 0) std::fputc(',', out);
    std::fputs("{\"label\":", out);
    json_string(out, report.path.by_label[i].label);
    std::fprintf(out, ",\"seconds\":%.17g}", report.path.by_label[i].seconds);
  }
  std::fputs("],\"segments\":[", out);
  for (std::size_t i = 0; i < report.path.segments.size(); ++i) {
    const PathSegment& s = report.path.segments[i];
    if (i != 0) std::fputc(',', out);
    std::fprintf(out, "{\"rank\":%d,\"t0\":%.17g,\"t1\":%.17g,\"label\":", s.rank, s.t0,
                 s.t1);
    json_string(out, s.label);
    std::fputc('}', out);
  }
  std::fputs("]},\"breakdown\":{\"total\":", out);
  json_breakdown(out, report.total);
  std::fputs(",\"ranks\":[", out);
  for (std::size_t i = 0; i < report.ranks.size(); ++i) {
    if (i != 0) std::fputc(',', out);
    json_breakdown(out, report.ranks[i]);
  }
  std::fprintf(out, "]},\"median_busy\":%.17g,\"stragglers\":[", report.median_busy);
  for (std::size_t i = 0; i < report.stragglers.size(); ++i) {
    const Straggler& s = report.stragglers[i];
    if (i != 0) std::fputc(',', out);
    std::fprintf(out, "{\"rank\":%d,\"busy_seconds\":%.17g,\"ratio\":%.17g}", s.rank,
                 s.busy_seconds, s.ratio);
  }
  std::fputs("]", out);
  if (metrics != nullptr) {
    std::fputs(",\"metrics\":", out);
    metrics->write_json(out);
  }
  std::fputs("}", out);
}

}  // namespace mrbio::obs
