#include "obs/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string_view>
#include <unordered_map>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace mrbio::obs {

using trace::Category;
using trace::Event;
using trace::Recorder;

namespace {

// ---------------------------------------------------------------------------
// Interval arithmetic (same shapes as trace.cpp's summarize helpers).

using Interval = std::pair<double, double>;

void merge_intervals(std::vector<Interval>& iv) {
  if (iv.empty()) return;
  std::sort(iv.begin(), iv.end());
  std::size_t out = 0;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first <= iv[out].second) {
      iv[out].second = std::max(iv[out].second, iv[i].second);
    } else {
      iv[++out] = iv[i];
    }
  }
  iv.resize(out + 1);
}

double measure(const std::vector<Interval>& merged) {
  double total = 0.0;
  for (const auto& [a, b] : merged) total += b - a;
  return total;
}

// Total length of `iv` (merged) not covered by `cover` (merged).
double measure_minus(const std::vector<Interval>& iv, const std::vector<Interval>& cover) {
  double total = 0.0;
  std::size_t c = 0;
  for (const auto& [a, b] : iv) {
    double pos = a;
    while (c < cover.size() && cover[c].second <= pos) ++c;
    std::size_t k = c;
    while (pos < b) {
      if (k >= cover.size() || cover[k].first >= b) {
        total += b - pos;
        break;
      }
      if (cover[k].first > pos) total += cover[k].first - pos;
      pos = std::max(pos, cover[k].second);
      ++k;
    }
  }
  return total;
}

std::vector<Interval> merged_union(std::vector<Interval> a, const std::vector<Interval>& b) {
  a.insert(a.end(), b.begin(), b.end());
  merge_intervals(a);
  return a;
}

// Intersection of two merged interval lists (result is merged too).
std::vector<Interval> intersect(const std::vector<Interval>& a,
                                const std::vector<Interval>& b) {
  std::vector<Interval> out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (lo < hi) out.emplace_back(lo, hi);
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

double clamp0(double v) { return v < 0.0 ? 0.0 : v; }

bool is_busy_cat(Category c) {
  return c == Category::Compute || c == Category::App || c == Category::Io ||
         c == Category::Task;
}

bool is_primitive_cat(Category c) {
  return c == Category::Compute || c == Category::Send || c == Category::RecvWait;
}

bool is_span_cat(Category c) {
  return c == Category::App || c == Category::Io || c == Category::Task ||
         c == Category::Collective || c == Category::Phase;
}

int span_priority(Category c) {
  switch (c) {
    case Category::App: return 5;
    case Category::Io: return 4;
    case Category::Task: return 3;
    case Category::Collective: return 2;
    case Category::Phase: return 1;
    default: return 0;
  }
}

bool is_db_io(const Event& e) {
  return e.cat == Category::Io && std::string_view(e.name) == "db_load";
}

bool is_ckpt_io(const Event& e) {
  // "ckpt_write" (map-log flush, ledger record, snapshot) and
  // "ckpt_restore" (resume replay).
  return e.cat == Category::Io && std::string_view(e.name).substr(0, 4) == "ckpt";
}

bool is_shuffle_io(const Event& e) {
  // "shuffle_spill": post-exchange spill writes that may overlap the
  // alltoall; reported separately so the overlap win is visible.
  return e.cat == Category::Io && std::string_view(e.name).substr(0, 7) == "shuffle";
}

// ---------------------------------------------------------------------------
// Per-rank final time: recorded value when present, else last span end.

double rank_final_time(const Recorder& rec, int rank) {
  double t = 0.0;
  const auto& finals = rec.final_times();
  if (rank < static_cast<int>(finals.size())) t = finals[static_cast<std::size_t>(rank)];
  for (const Event& e : rec.rank_events(rank)) t = std::max(t, e.t1);
  return t;
}

// ---------------------------------------------------------------------------
// Critical-path walk.

struct Walker {
  const Recorder& rec;
  double eps;
  /// Per-rank walk timeline sorted by t0: primitive events at Full level,
  /// span events otherwise (overlap/nesting is fine for the walk).
  std::vector<std::vector<const Event*>> timeline;
  /// Engine send sequence -> the Send event that produced it.
  std::unordered_map<std::uint64_t, const Event*> sends;

  Walker(const Recorder& r, double makespan) : rec(r), eps(makespan * 1e-12 + 1e-15) {
    const int n = rec.nranks();
    timeline.resize(static_cast<std::size_t>(n));
    for (int rank = 0; rank < n; ++rank) {
      const auto& lane = rec.rank_events(rank);
      auto& tl = timeline[static_cast<std::size_t>(rank)];
      bool has_primitive = false;
      for (const Event& e : lane) {
        if (is_primitive_cat(e.cat)) {
          has_primitive = true;
          break;
        }
      }
      for (const Event& e : lane) {
        if (has_primitive ? is_primitive_cat(e.cat) : is_span_cat(e.cat)) {
          tl.push_back(&e);
        }
        if (e.cat == Category::Send && e.seq != 0) sends.emplace(e.seq, &e);
      }
      std::sort(tl.begin(), tl.end(), [](const Event* a, const Event* b) {
        if (a->t0 != b->t0) return a->t0 < b->t0;
        return a->t1 < b->t1;
      });
    }
  }

  /// Last timeline event on `rank` starting strictly before `t`.
  const Event* last_before(int rank, double t) const {
    const auto& tl = timeline[static_cast<std::size_t>(rank)];
    auto it = std::lower_bound(tl.begin(), tl.end(), t - eps,
                               [](const Event* e, double v) { return e->t0 < v; });
    if (it == tl.begin()) return nullptr;
    return *(it - 1);
  }

  /// Name of the innermost, highest-priority span enclosing the midpoint of
  /// [a, b] on `rank`; `fallback` when no span covers it.
  std::string label_for(int rank, double a, double b, const char* fallback) const {
    const double mid = 0.5 * (a + b);
    const Event* best = nullptr;
    for (const Event& e : rec.rank_events(rank)) {
      if (!is_span_cat(e.cat)) continue;
      if (e.t0 > mid + eps || e.t1 < mid - eps) continue;
      if (best == nullptr) {
        best = &e;
        continue;
      }
      const int pe = span_priority(e.cat);
      const int pb = span_priority(best->cat);
      if (pe > pb || (pe == pb && (e.t1 - e.t0) < (best->t1 - best->t0))) best = &e;
    }
    return best != nullptr ? std::string(best->name) : std::string(fallback);
  }
};

CriticalPath walk_critical_path(const Recorder& rec, double makespan,
                                const std::vector<double>& finals) {
  CriticalPath path;
  path.length = 0.0;
  if (makespan <= 0.0) return path;

  Walker w(rec, makespan);
  int rank = 0;
  for (int r = 0; r < rec.nranks(); ++r) {
    if (finals[static_cast<std::size_t>(r)] > finals[static_cast<std::size_t>(rank)]) rank = r;
  }
  double t = makespan;

  std::vector<PathSegment> rev;  // built back-to-front
  auto emit = [&rev](int seg_rank, double a, double b, std::string label) {
    if (b - a <= 0.0) return;
    if (!rev.empty() && rev.back().rank == seg_rank && rev.back().label == label &&
        rev.back().t0 <= b) {
      rev.back().t0 = a;  // extend the adjacent same-label segment
      return;
    }
    rev.push_back(PathSegment{seg_rank, a, b, std::move(label)});
  };

  // Generous iteration bound: each step either consumes one event or hops.
  std::size_t steps_left = 4 * rec.size() + 64;
  while (t > w.eps) {
    if (steps_left-- == 0) {
      emit(rank, 0.0, t, "truncated");  // keeps the tiling invariant
      break;
    }
    const Event* e = w.last_before(rank, t);
    if (e == nullptr) {
      emit(rank, 0.0, t, "idle");
      t = 0.0;
      break;
    }
    if (e->t1 < t - w.eps) {
      // Gap between events on this rank.
      emit(rank, e->t1, t, w.label_for(rank, e->t1, t, "idle"));
      t = e->t1;
      continue;
    }
    // `e` covers t. A sender-bound receive hops to the sending rank: the
    // receiver stretch back to the send completion is network wait, and
    // the walk continues on the sender.
    if (e->cat == Category::RecvWait && e->seq != 0 && e->dep > e->t0 + w.eps) {
      auto it = w.sends.find(e->seq);
      if (it != w.sends.end()) {
        const Event* s = it->second;
        if (s->t1 < t - w.eps) {
          emit(rank, s->t1, t, "net_wait");
          path.hops += 1;
          rank = s->rank;
          t = s->t1;
          continue;
        }
      }
    }
    emit(rank, e->t0, t, w.label_for(rank, e->t0, t, e->name));
    t = e->t0;
  }

  std::reverse(rev.begin(), rev.end());
  path.segments = std::move(rev);
  for (const PathSegment& s : path.segments) path.length += s.seconds();

  std::map<std::string, double> shares;
  for (const PathSegment& s : path.segments) shares[s.label] += s.seconds();
  for (auto& [label, seconds] : shares) path.by_label.push_back({label, seconds});
  std::sort(path.by_label.begin(), path.by_label.end(),
            [](const LabelShare& a, const LabelShare& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.label < b.label;
            });
  return path;
}

// ---------------------------------------------------------------------------
// Idle-time decomposition.

// Per-category interval sets of one rank, all merged. Collected once per
// rank and reused for the whole-run breakdown and the phase-restricted
// attribution (via restrict_to).
struct RankIntervals {
  std::vector<Interval> busy, retry, app, io_db, io_ckpt, io_shuffle, io_spill,
      coll, fwait, swait, mwait, comm;
};

RankIntervals collect_intervals(const Recorder& rec, int rank) {
  RankIntervals v;
  const bool full = rec.level() == trace::Level::Full;
  for (const Event& e : rec.rank_events(rank)) {
    const Interval iv{e.t0, e.t1};
    if (is_busy_cat(e.cat)) v.busy.push_back(iv);
    if (e.cat == Category::Task && std::string_view(e.name) == "map_task_retry") {
      v.retry.push_back(iv);
    }
    switch (e.cat) {
      case Category::App:
        v.app.push_back(iv);
        break;
      case Category::Io:
        (is_db_io(e)        ? v.io_db
         : is_ckpt_io(e)    ? v.io_ckpt
         : is_shuffle_io(e) ? v.io_shuffle
                            : v.io_spill)
            .push_back(iv);
        break;
      case Category::Collective:
        v.coll.push_back(iv);
        break;
      case Category::Fault:
        // Steal-scheduler idle episodes (victim probe + backoff nap) share
        // the Fault category lane but are load-imbalance, not recovery.
        (std::string_view(e.name) == "steal_wait" ? v.swait : v.fwait).push_back(iv);
        break;
      case Category::RecvWait:
        // A worker blocked on the master (rank 0) is master-wait; any
        // other receive is generic communication.
        (rank != 0 && e.peer == 0 ? v.mwait : v.comm).push_back(iv);
        break;
      case Category::Send:
        v.comm.push_back(iv);
        break;
      case Category::Phase:
        // Without per-message events, worker idle inside the map phase is
        // the best available master-wait signal.
        if (!full && rank != 0 && std::string_view(e.name) == "map") {
          v.mwait.push_back(iv);
        }
        break;
      default:
        break;
    }
  }
  merge_intervals(v.busy);
  merge_intervals(v.retry);
  merge_intervals(v.app);
  merge_intervals(v.io_db);
  merge_intervals(v.io_ckpt);
  merge_intervals(v.io_shuffle);
  merge_intervals(v.io_spill);
  merge_intervals(v.coll);
  merge_intervals(v.fwait);
  merge_intervals(v.swait);
  merge_intervals(v.mwait);
  merge_intervals(v.comm);
  return v;
}

RankIntervals restrict_to(const RankIntervals& v, const std::vector<Interval>& window) {
  RankIntervals r;
  r.busy = intersect(v.busy, window);
  r.retry = intersect(v.retry, window);
  r.app = intersect(v.app, window);
  r.io_db = intersect(v.io_db, window);
  r.io_ckpt = intersect(v.io_ckpt, window);
  r.io_shuffle = intersect(v.io_shuffle, window);
  r.io_spill = intersect(v.io_spill, window);
  r.coll = intersect(v.coll, window);
  r.fwait = intersect(v.fwait, window);
  r.swait = intersect(v.swait, window);
  r.mwait = intersect(v.mwait, window);
  r.comm = intersect(v.comm, window);
  return r;
}

/// The category chains over a pre-collected interval set. `total_time` is
/// the rank's final time for the whole-run breakdown, or the measure of the
/// restriction window for phase-local attribution.
RankBreakdown breakdown_from(const RankIntervals& v, int rank, double total_time) {
  RankBreakdown b;
  b.rank = rank;
  b.final_time = total_time;

  // Busy chain: re-executed task time is carved out first — the App/Io
  // spans nested inside a retried task are recovery cost, not useful work.
  const double busy_total = measure(v.busy);
  b.retry_compute = measure(v.retry);
  b.useful = measure_minus(v.app, v.retry);
  auto covered = merged_union(v.retry, v.app);
  b.db_io = measure_minus(v.io_db, covered);
  covered = merged_union(std::move(covered), v.io_db);
  b.checkpoint_io = measure_minus(v.io_ckpt, covered);
  covered = merged_union(std::move(covered), v.io_ckpt);
  b.shuffle_io = measure_minus(v.io_shuffle, covered);
  covered = merged_union(std::move(covered), v.io_shuffle);
  b.spill_io = measure_minus(v.io_spill, covered);
  b.other_busy = clamp0(busy_total - b.retry_compute - b.useful - b.db_io -
                        b.checkpoint_io - b.shuffle_io - b.spill_io);

  // Idle chain: Fault spans (reassignment waits, retry-later naps) claim
  // their time ahead of master-wait and generic communication.
  const double idle_total = clamp0(total_time - busy_total);
  b.collective_skew = measure_minus(v.coll, v.busy);
  covered = merged_union(v.busy, v.coll);
  b.recovery_wait = measure_minus(v.fwait, covered);
  covered = merged_union(std::move(covered), v.fwait);
  b.steal_wait = measure_minus(v.swait, covered);
  covered = merged_union(std::move(covered), v.swait);
  b.master_wait = measure_minus(v.mwait, covered);
  covered = merged_union(std::move(covered), v.mwait);
  b.comm_overhead = measure_minus(v.comm, covered);
  b.idle_other = clamp0(idle_total - b.collective_skew - b.recovery_wait -
                        b.steal_wait - b.master_wait - b.comm_overhead);
  return b;
}

/// Collapses a breakdown into the coarse attribution buckets used by the
/// straggler and phase-skew reports; returns the largest (ties favour the
/// earlier bucket, i.e. compute first).
std::pair<std::string, double> dominant_bucket(const RankBreakdown& b) {
  const std::pair<const char*, double> buckets[] = {
      {"compute", b.useful + b.retry_compute + b.other_busy},
      {"db_io", b.db_io},
      {"checkpoint_io", b.checkpoint_io},
      {"shuffle_io", b.shuffle_io},
      {"spill_io", b.spill_io},
      {"collective_skew", b.collective_skew},
      {"recovery_wait", b.recovery_wait},
      {"steal_wait", b.steal_wait},
      {"recv_wait", b.master_wait + b.comm_overhead},
      {"idle", b.idle_other},
  };
  std::pair<std::string, double> best{buckets[0].first, buckets[0].second};
  for (const auto& [name, v] : buckets) {
    if (v > best.second) best = {name, v};
  }
  return best;
}

/// Per-phase imbalance statistics: one entry per Phase-span name, stats
/// over all ranks (absent ranks count as 0 s), top-k slowest ranks with
/// their dominant in-phase category. Sorted by max seconds descending.
std::vector<PhaseSkew> compute_phase_skew(const Recorder& rec,
                                          const std::vector<RankIntervals>& ivs,
                                          std::size_t top_k) {
  const int nranks = rec.nranks();
  // phase name -> per-rank phase windows.
  std::map<std::string, std::vector<std::vector<Interval>>> phases;
  for (int r = 0; r < nranks; ++r) {
    for (const Event& e : rec.rank_events(r)) {
      if (e.cat != Category::Phase) continue;
      auto [it, inserted] = phases.try_emplace(std::string(e.name));
      if (inserted) it->second.resize(static_cast<std::size_t>(nranks));
      it->second[static_cast<std::size_t>(r)].emplace_back(e.t0, e.t1);
    }
  }

  std::vector<PhaseSkew> out;
  out.reserve(phases.size());
  for (auto& [name, windows] : phases) {
    PhaseSkew ps;
    ps.phase = name;
    std::vector<double> seconds(static_cast<std::size_t>(nranks), 0.0);
    for (int r = 0; r < nranks; ++r) {
      auto& w = windows[static_cast<std::size_t>(r)];
      merge_intervals(w);
      seconds[static_cast<std::size_t>(r)] = measure(w);
    }
    double sum = 0.0;
    for (int r = 0; r < nranks; ++r) {
      const double s = seconds[static_cast<std::size_t>(r)];
      sum += s;
      if (s > 0.0) ++ps.ranks_active;
      if (s > ps.max) {
        ps.max = s;
        ps.max_rank = r;
      }
    }
    ps.mean = nranks > 0 ? sum / static_cast<double>(nranks) : 0.0;
    if (ps.mean > 0.0) {
      double var = 0.0;
      for (double s : seconds) var += (s - ps.mean) * (s - ps.mean);
      var /= static_cast<double>(nranks);
      ps.cov = std::sqrt(var) / ps.mean;
    }

    std::vector<int> order(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) order[static_cast<std::size_t>(r)] = r;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double sa = seconds[static_cast<std::size_t>(a)];
      const double sb = seconds[static_cast<std::size_t>(b)];
      if (sa != sb) return sa > sb;
      return a < b;
    });
    for (int r : order) {
      if (ps.top.size() >= top_k) break;
      const double s = seconds[static_cast<std::size_t>(r)];
      if (s <= 0.0) break;
      const RankIntervals local =
          restrict_to(ivs[static_cast<std::size_t>(r)], windows[static_cast<std::size_t>(r)]);
      auto [dom, dom_s] = dominant_bucket(breakdown_from(local, r, s));
      ps.top.push_back({r, s, std::move(dom), dom_s});
    }
    out.push_back(std::move(ps));
  }
  std::sort(out.begin(), out.end(), [](const PhaseSkew& a, const PhaseSkew& b) {
    if (a.max != b.max) return a.max > b.max;
    return a.phase < b.phase;
  });
  return out;
}

}  // namespace

Report analyze(const Recorder& rec, const AnalyzeOptions& opts) {
  Report rep;
  rep.nranks = rec.nranks();
  rep.level = rec.level();

  std::vector<double> finals(static_cast<std::size_t>(rep.nranks), 0.0);
  for (int r = 0; r < rep.nranks; ++r) {
    finals[static_cast<std::size_t>(r)] = rank_final_time(rec, r);
    rep.makespan = std::max(rep.makespan, finals[static_cast<std::size_t>(r)]);
  }

  rep.path = walk_critical_path(rec, rep.makespan, finals);

  std::vector<RankIntervals> ivs;
  ivs.reserve(static_cast<std::size_t>(rep.nranks));
  for (int r = 0; r < rep.nranks; ++r) ivs.push_back(collect_intervals(rec, r));

  rep.total.rank = -1;
  for (int r = 0; r < rep.nranks; ++r) {
    RankBreakdown b = breakdown_from(ivs[static_cast<std::size_t>(r)], r,
                                     finals[static_cast<std::size_t>(r)]);
    rep.total.final_time += b.final_time;
    rep.total.retry_compute += b.retry_compute;
    rep.total.useful += b.useful;
    rep.total.db_io += b.db_io;
    rep.total.checkpoint_io += b.checkpoint_io;
    rep.total.shuffle_io += b.shuffle_io;
    rep.total.spill_io += b.spill_io;
    rep.total.other_busy += b.other_busy;
    rep.total.collective_skew += b.collective_skew;
    rep.total.recovery_wait += b.recovery_wait;
    rep.total.steal_wait += b.steal_wait;
    rep.total.master_wait += b.master_wait;
    rep.total.comm_overhead += b.comm_overhead;
    rep.total.idle_other += b.idle_other;
    rep.ranks.push_back(std::move(b));
  }

  std::vector<double> busys;
  busys.reserve(rep.ranks.size());
  for (const RankBreakdown& b : rep.ranks) busys.push_back(b.busy_total());
  if (!busys.empty()) {
    std::vector<double> sorted = busys;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    rep.median_busy =
        (n % 2 == 1) ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
    if (rep.median_busy > 0.0) {
      for (int r = 0; r < rep.nranks; ++r) {
        const double busy = busys[static_cast<std::size_t>(r)];
        if (busy > opts.straggler_k * rep.median_busy) {
          auto [dom, dom_s] = dominant_bucket(rep.ranks[static_cast<std::size_t>(r)]);
          rep.stragglers.push_back(
              {r, busy, busy / rep.median_busy, std::move(dom), dom_s});
        }
      }
      std::sort(rep.stragglers.begin(), rep.stragglers.end(),
                [](const Straggler& a, const Straggler& b) {
                  if (a.busy_seconds != b.busy_seconds) return a.busy_seconds > b.busy_seconds;
                  return a.rank < b.rank;
                });
    }
  }

  rep.phase_skew = compute_phase_skew(rec, ivs, opts.skew_top_k);
  return rep;
}

namespace {

double pct(double part, double whole) { return whole > 0.0 ? 100.0 * part / whole : 0.0; }

struct CatRow {
  const char* name;
  double RankBreakdown::* field;
};

constexpr CatRow kBusyRows[] = {
    {"useful", &RankBreakdown::useful},
    {"retry_compute", &RankBreakdown::retry_compute},
    {"db_io", &RankBreakdown::db_io},
    {"checkpoint_io", &RankBreakdown::checkpoint_io},
    {"shuffle_io", &RankBreakdown::shuffle_io},
    {"spill_io", &RankBreakdown::spill_io},
    {"other_busy", &RankBreakdown::other_busy},
};
constexpr CatRow kIdleRows[] = {
    {"collective_skew", &RankBreakdown::collective_skew},
    {"recovery_wait", &RankBreakdown::recovery_wait},
    {"steal_wait", &RankBreakdown::steal_wait},
    {"master_wait", &RankBreakdown::master_wait},
    {"comm_overhead", &RankBreakdown::comm_overhead},
    {"idle_other", &RankBreakdown::idle_other},
};

}  // namespace

void print_report(std::FILE* out, const Report& report, std::size_t max_rank_rows) {
  std::fprintf(out, "== performance report ==\n");
  std::fprintf(out, "ranks %d   makespan %.6f s   trace level %s\n", report.nranks,
               report.makespan, report.level == trace::Level::Full ? "full" : "phases");

  std::fprintf(out, "\n-- critical path: %.6f s, %d rank hop%s, %zu segments --\n",
               report.path.length, report.path.hops, report.path.hops == 1 ? "" : "s",
               report.path.segments.size());
  std::fprintf(out, "%-24s %14s %8s\n", "label", "seconds", "share");
  for (const LabelShare& s : report.path.by_label) {
    std::fprintf(out, "%-24s %14.6f %7.2f%%\n", s.label.c_str(), s.seconds,
                 pct(s.seconds, report.path.length));
  }

  const double rank_seconds = report.total.final_time;
  std::fprintf(out, "\n-- time decomposition (all ranks, %% of %.6f rank-seconds) --\n",
               rank_seconds);
  std::fprintf(out, "%-24s %14s %8s\n", "category", "seconds", "share");
  for (const CatRow& row : kBusyRows) {
    std::fprintf(out, "%-24s %14.6f %7.2f%%\n", row.name, report.total.*row.field,
                 pct(report.total.*row.field, rank_seconds));
  }
  for (const CatRow& row : kIdleRows) {
    std::fprintf(out, "%-24s %14.6f %7.2f%%\n", row.name, report.total.*row.field,
                 pct(report.total.*row.field, rank_seconds));
  }
  std::fprintf(out, "%-24s %14.6f %7.2f%%   (%% of rank-time waiting)\n", "total_idle",
               report.total.idle_total(), pct(report.total.idle_total(), rank_seconds));

  const std::size_t nrows =
      std::min(max_rank_rows, report.ranks.size());
  std::fprintf(out, "\n-- per-rank breakdown (first %zu of %d) --\n", nrows, report.nranks);
  std::fprintf(out, "%5s %11s %11s %9s %9s %9s %9s %9s %9s %9s %9s %9s %9s %9s %9s\n",
               "rank", "final", "useful", "retry", "db_io", "ckpt", "shuf", "spill",
               "obusy", "cskew", "rwait", "swait", "mwait", "comm", "idle");
  for (std::size_t i = 0; i < nrows; ++i) {
    const RankBreakdown& b = report.ranks[i];
    std::fprintf(out,
                 "%5d %11.4f %11.4f %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f "
                 "%9.4f %9.4f %9.4f %9.4f\n",
                 b.rank, b.final_time, b.useful, b.retry_compute, b.db_io,
                 b.checkpoint_io, b.shuffle_io, b.spill_io, b.other_busy,
                 b.collective_skew, b.recovery_wait, b.steal_wait, b.master_wait,
                 b.comm_overhead, b.idle_other);
  }

  if (!report.phase_skew.empty()) {
    std::fprintf(out, "\n-- per-phase skew (per-rank seconds, stats over all %d ranks) --\n",
                 report.nranks);
    std::fprintf(out, "%-20s %6s %11s %11s %9s %7s   %s\n", "phase", "active",
                 "mean", "max", "max_rank", "cov", "slowest (dominant)");
    for (const PhaseSkew& ps : report.phase_skew) {
      std::fprintf(out, "%-20s %6d %11.4f %11.4f %9d %7.3f  ", ps.phase.c_str(),
                   ps.ranks_active, ps.mean, ps.max, ps.max_rank, ps.cov);
      for (const RankPhaseTime& t : ps.top) {
        std::fprintf(out, " %d:%s(%.4f)", t.rank, t.dominant.c_str(), t.seconds);
      }
      std::fputc('\n', out);
    }
  }

  if (report.stragglers.empty()) {
    std::fprintf(out, "\nstragglers: none (median busy %.6f s)\n", report.median_busy);
  } else {
    std::fprintf(out, "\nstragglers (busy > k x median %.6f s):\n", report.median_busy);
    for (const Straggler& s : report.stragglers) {
      std::fprintf(out, "  rank %d: busy %.6f s (%.2fx median), dominant %s (%.6f s)\n",
                   s.rank, s.busy_seconds, s.ratio, s.dominant.c_str(),
                   s.dominant_seconds);
    }
  }
}

namespace {

void json_breakdown(std::FILE* out, const RankBreakdown& b) {
  std::fprintf(out,
               "{\"rank\":%d,\"final_time\":%.17g,\"useful\":%.17g,"
               "\"retry_compute\":%.17g,\"db_io\":%.17g,\"checkpoint_io\":%.17g,"
               "\"shuffle_io\":%.17g,\"spill_io\":%.17g,\"other_busy\":%.17g,"
               "\"collective_skew\":%.17g,\"recovery_wait\":%.17g,"
               "\"steal_wait\":%.17g,\"master_wait\":%.17g,\"comm_overhead\":%.17g,"
               "\"idle_other\":%.17g}",
               b.rank, b.final_time, b.useful, b.retry_compute, b.db_io, b.checkpoint_io,
               b.shuffle_io, b.spill_io, b.other_busy, b.collective_skew,
               b.recovery_wait, b.steal_wait, b.master_wait, b.comm_overhead,
               b.idle_other);
}

void json_string(std::FILE* out, const std::string& s) {
  std::fputc('"', out);
  for (char ch : s) {
    if (ch == '"' || ch == '\\') std::fputc('\\', out);
    std::fputc(ch, out);
  }
  std::fputc('"', out);
}

}  // namespace

void write_report_json(std::FILE* out, const Report& report, const Registry* metrics,
                       const TimeSeries* timeseries) {
  std::fprintf(out, "{\"nranks\":%d,\"level\":\"%s\",\"makespan\":%.17g,", report.nranks,
               report.level == trace::Level::Full ? "full" : "phases", report.makespan);
  std::fprintf(out, "\"critical_path\":{\"length\":%.17g,\"hops\":%d,\"by_label\":[",
               report.path.length, report.path.hops);
  for (std::size_t i = 0; i < report.path.by_label.size(); ++i) {
    if (i != 0) std::fputc(',', out);
    std::fputs("{\"label\":", out);
    json_string(out, report.path.by_label[i].label);
    std::fprintf(out, ",\"seconds\":%.17g}", report.path.by_label[i].seconds);
  }
  std::fputs("],\"segments\":[", out);
  for (std::size_t i = 0; i < report.path.segments.size(); ++i) {
    const PathSegment& s = report.path.segments[i];
    if (i != 0) std::fputc(',', out);
    std::fprintf(out, "{\"rank\":%d,\"t0\":%.17g,\"t1\":%.17g,\"label\":", s.rank, s.t0,
                 s.t1);
    json_string(out, s.label);
    std::fputc('}', out);
  }
  std::fputs("]},\"breakdown\":{\"total\":", out);
  json_breakdown(out, report.total);
  std::fputs(",\"ranks\":[", out);
  for (std::size_t i = 0; i < report.ranks.size(); ++i) {
    if (i != 0) std::fputc(',', out);
    json_breakdown(out, report.ranks[i]);
  }
  std::fprintf(out, "]},\"median_busy\":%.17g,\"stragglers\":[", report.median_busy);
  for (std::size_t i = 0; i < report.stragglers.size(); ++i) {
    const Straggler& s = report.stragglers[i];
    if (i != 0) std::fputc(',', out);
    std::fprintf(out, "{\"rank\":%d,\"busy_seconds\":%.17g,\"ratio\":%.17g,\"dominant\":",
                 s.rank, s.busy_seconds, s.ratio);
    json_string(out, s.dominant);
    std::fprintf(out, ",\"dominant_seconds\":%.17g}", s.dominant_seconds);
  }
  std::fputs("],\"phase_skew\":[", out);
  for (std::size_t i = 0; i < report.phase_skew.size(); ++i) {
    const PhaseSkew& ps = report.phase_skew[i];
    if (i != 0) std::fputc(',', out);
    std::fputs("{\"phase\":", out);
    json_string(out, ps.phase);
    std::fprintf(out,
                 ",\"ranks_active\":%d,\"mean\":%.17g,\"max\":%.17g,"
                 "\"max_rank\":%d,\"cov\":%.17g,\"top\":[",
                 ps.ranks_active, ps.mean, ps.max, ps.max_rank, ps.cov);
    for (std::size_t j = 0; j < ps.top.size(); ++j) {
      const RankPhaseTime& t = ps.top[j];
      if (j != 0) std::fputc(',', out);
      std::fprintf(out, "{\"rank\":%d,\"seconds\":%.17g,\"dominant\":", t.rank, t.seconds);
      json_string(out, t.dominant);
      std::fprintf(out, ",\"dominant_seconds\":%.17g}", t.dominant_seconds);
    }
    std::fputs("]}", out);
  }
  std::fputs("]", out);
  if (metrics != nullptr) {
    std::fputs(",\"metrics\":", out);
    metrics->write_json(out);
  }
  if (timeseries != nullptr) {
    std::fputs(",\"timeseries\":", out);
    timeseries->write_json(out);
  }
  std::fputs("}", out);
}

}  // namespace mrbio::obs
