#include "obs/timeseries.hpp"

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace mrbio::obs {

namespace {

void write_json_string(std::FILE* out, std::string_view s) {
  std::fputc('"', out);
  for (char ch : s) {
    switch (ch) {
      case '"': std::fputs("\\\"", out); break;
      case '\\': std::fputs("\\\\", out); break;
      case '\n': std::fputs("\\n", out); break;
      case '\r': std::fputs("\\r", out); break;
      case '\t': std::fputs("\\t", out); break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          std::fprintf(out, "\\u%04x", static_cast<unsigned char>(ch));
        } else {
          std::fputc(ch, out);
        }
    }
  }
  std::fputc('"', out);
}

void write_points(std::FILE* out, const std::vector<TsPoint>& pts) {
  std::fputc('[', out);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i != 0) std::fputc(',', out);
    std::fprintf(out, "[%.17g,%.17g]", pts[i].t, pts[i].v);
  }
  std::fputc(']', out);
}

}  // namespace

TimeSeries::TimeSeries(int nranks, TimeSeriesConfig config) : config_(config) {
  if (nranks < 0) nranks = 0;
  if (config_.capacity == 0) config_.capacity = 1;
  if (config_.cadence < 0.0) config_.cadence = 0.0;
  lanes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) lanes_.push_back(std::make_unique<Lane>());
}

void TimeSeries::push(int rank, std::string_view channel, double t, double v, bool gated) {
  if (rank < 0 || rank >= nranks()) return;
  Lane& lane = *lanes_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(lane.mutex);
  auto it = lane.series.find(channel);
  if (it == lane.series.end()) {
    it = lane.series.emplace(std::string(channel), Series{}).first;
  }
  Series& s = it->second;
  if (gated && t < s.next_t) return;
  s.next_t = t + config_.cadence;
  if (s.ring.size() < config_.capacity) {
    s.ring.push_back({t, v});
  } else {
    s.ring[s.head] = {t, v};
    s.head = (s.head + 1) % config_.capacity;
    s.full = true;
    ++s.overwritten;
    overwritten_.fetch_add(1, std::memory_order_relaxed);
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

void TimeSeries::sample(int rank, std::string_view channel, double t, double v) {
  push(rank, channel, t, v, /*gated=*/true);
}

void TimeSeries::record(int rank, std::string_view channel, double t, double v) {
  push(rank, channel, t, v, /*gated=*/false);
}

std::vector<std::string> TimeSeries::channels(int rank) const {
  std::vector<std::string> out;
  if (rank < 0 || rank >= nranks()) return out;
  Lane& lane = *lanes_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(lane.mutex);
  out.reserve(lane.series.size());
  for (const auto& [name, s] : lane.series) out.push_back(name);
  return out;
}

std::vector<TsPoint> TimeSeries::points(int rank, std::string_view channel) const {
  std::vector<TsPoint> out;
  if (rank < 0 || rank >= nranks()) return out;
  Lane& lane = *lanes_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(lane.mutex);
  auto it = lane.series.find(channel);
  if (it == lane.series.end()) return out;
  const Series& s = it->second;
  out.reserve(s.ring.size());
  if (s.full) {
    for (std::size_t i = s.head; i < s.ring.size(); ++i) out.push_back(s.ring[i]);
    for (std::size_t i = 0; i < s.head; ++i) out.push_back(s.ring[i]);
  } else {
    out = s.ring;
  }
  return out;
}

void TimeSeries::write_json(std::FILE* out) const {
  std::fprintf(out, "{\"cadence\":%.17g,\"capacity\":%zu,\"recorded\":%llu,\"overwritten\":%llu,\"ranks\":[",
               config_.cadence, config_.capacity,
               static_cast<unsigned long long>(total_samples()),
               static_cast<unsigned long long>(dropped_samples()));
  bool first_rank = true;
  for (int r = 0; r < nranks(); ++r) {
    std::vector<std::string> names = channels(r);
    if (names.empty()) continue;
    if (!first_rank) std::fputc(',', out);
    first_rank = false;
    std::fprintf(out, "{\"rank\":%d,\"channels\":{", r);
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i != 0) std::fputc(',', out);
      write_json_string(out, names[i]);
      std::fputc(':', out);
      write_points(out, points(r, names[i]));
    }
    std::fputs("}}", out);
  }
  std::fputs("]}", out);
}

void TimeSeries::write_jsonl(std::FILE* out) const {
  for (int r = 0; r < nranks(); ++r) {
    for (const std::string& name : channels(r)) {
      std::fprintf(out, "{\"rank\":%d,\"channel\":", r);
      write_json_string(out, name);
      std::fputs(",\"points\":", out);
      write_points(out, points(r, name));
      std::fputs("}\n", out);
    }
  }
}

EventLog::EventLog(const std::string& path)
    : path_(path), start_(std::chrono::steady_clock::now()) {
  out_ = std::fopen(path.c_str(), "w");
  if (out_ == nullptr) {
    throw Error("cannot open event log for writing: " + path + ": " + std::strerror(errno));
  }
}

EventLog::~EventLog() {
  if (out_ != nullptr) std::fclose(out_);
}

void EventLog::log(LogLevel severity, int rank, std::string_view component,
                   std::string_view message) {
  const char* sev = "info";
  switch (severity) {
    case LogLevel::Debug: sev = "debug"; break;
    case LogLevel::Info: sev = "info"; break;
    case LogLevel::Warn: sev = "warn"; break;
    case LogLevel::ErrorLevel: sev = "error"; break;
    case LogLevel::Off: sev = "off"; break;
  }
  const double t = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(out_, "{\"t\":%.9f,\"severity\":\"%s\",\"rank\":%d,\"component\":", t, sev, rank);
  write_json_string(out_, component);
  std::fputs(",\"msg\":", out_);
  write_json_string(out_, message);
  std::fputs("}\n", out_);
  std::fflush(out_);
  events_.fetch_add(1, std::memory_order_relaxed);
}

void EventLog::log_sink(void* ctx, LogLevel level, const char* msg) {
  static_cast<EventLog*>(ctx)->log(level, -1, "log", msg);
}

}  // namespace mrbio::obs
