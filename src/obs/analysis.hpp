// Critical-path and idle-time analysis over a trace::Recorder stream.
//
// The trace layer records what each rank did; this layer answers *why the
// run took as long as it did*. Two computations:
//
//  1. Critical path. Send/recv events carry happens-before edges (matching
//     pairs share the engine's send sequence number, and each recv knows
//     the message's arrival time). Walking backward from the last-finishing
//     rank, every instant of [0, makespan] is attributed either to local
//     work on the current rank or — when a receive was sender-bound — to
//     the sending rank, hopping across the DAG. The resulting segments
//     tile the makespan exactly, so the path length always equals the
//     simulated makespan; the per-label shares are the run's blame
//     percentages ("what limited speedup").
//
//  2. Idle-time decomposition. Each rank's timeline is partitioned by
//     interval arithmetic into busy categories (useful app work, DB-reload
//     I/O, spill I/O, other busy) and non-busy categories (collective
//     skew, master-wait, communication overhead, residual idle). The
//     categories of each partition sum to the rank's busy / idle totals
//     exactly (modulo fp rounding), which the report tool asserts.
//
// Both work at trace Level::Full (per-message events) and degrade
// gracefully at Level::Phases, where the path walk falls back to phase and
// task spans and master-wait is inferred from map-phase idle time.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace mrbio::obs {

class Registry;
class TimeSeries;

/// One maximal stretch of the critical path on a single rank.
struct PathSegment {
  int rank = 0;
  double t0 = 0.0;
  double t1 = 0.0;
  std::string label;  ///< enclosing span name, "net_wait", or "idle"
  double seconds() const { return t1 - t0; }
};

struct LabelShare {
  std::string label;
  double seconds = 0.0;
};

struct CriticalPath {
  std::vector<PathSegment> segments;  ///< increasing in time, tiling [0, makespan]
  std::vector<LabelShare> by_label;   ///< aggregated, descending seconds
  double length = 0.0;                ///< sum of segment durations (== makespan)
  int hops = 0;                       ///< rank switches along the path
};

/// Exact partition of one rank's [0, final_time]. The busy categories
/// sum to busy_total(); the wait categories sum to idle_total();
/// busy_total() + idle_total() == final_time.
struct RankBreakdown {
  int rank = 0;
  double final_time = 0.0;
  // Busy partition.
  double retry_compute = 0.0;  ///< re-executed map tasks after a fault
  double useful = 0.0;         ///< App spans (search, accumulate, ...)
  double db_io = 0.0;          ///< Io "db_load" spans not under App
  double checkpoint_io = 0.0;  ///< Io "ckpt_*" spans (durable write/replay)
  double shuffle_io = 0.0;     ///< Io "shuffle_*" spans (exchange-overlapped spill)
  double spill_io = 0.0;       ///< other Io spans (out-of-core spill/merge)
  double other_busy = 0.0;     ///< framework compute, send/recv CPU overhead
  // Non-busy partition.
  double collective_skew = 0.0;  ///< blocked inside a collective
  double recovery_wait = 0.0;    ///< fault recovery: reassignment + retry naps
  double steal_wait = 0.0;       ///< work stealing: victim probes + idle naps
  double master_wait = 0.0;      ///< worker waiting for the master's next task
  double comm_overhead = 0.0;    ///< other send/recv wait time
  double idle_other = 0.0;       ///< residual (startup/teardown imbalance)

  double busy_total() const {
    return retry_compute + useful + db_io + checkpoint_io + shuffle_io + spill_io +
           other_busy;
  }
  double idle_total() const {
    return collective_skew + recovery_wait + steal_wait + master_wait + comm_overhead +
           idle_other;
  }
};

struct Straggler {
  int rank = 0;
  double busy_seconds = 0.0;
  double ratio = 0.0;  ///< busy_seconds / median busy across ranks
  /// Dominant attribution bucket over the rank's whole timeline:
  /// "compute" (useful + retry + framework busy), one of the Io categories,
  /// "collective_skew", "recovery_wait", "steal_wait", "recv_wait" (master-wait +
  /// communication), or "idle".
  std::string dominant;
  double dominant_seconds = 0.0;
};

/// One rank's share of a phase, with its dominant category *within that
/// phase's windows* (same buckets as Straggler::dominant).
struct RankPhaseTime {
  int rank = 0;
  double seconds = 0.0;
  std::string dominant;
  double dominant_seconds = 0.0;
};

/// Imbalance statistics of one Phase-category span name across ranks.
/// Statistics are over ALL ranks (a rank that never entered the phase
/// contributes 0 s), so a master-only phase shows high CoV by design.
struct PhaseSkew {
  std::string phase;
  int ranks_active = 0;  ///< ranks with > 0 s in this phase
  double mean = 0.0;     ///< mean per-rank seconds over all ranks
  double max = 0.0;      ///< slowest rank's seconds
  int max_rank = -1;
  double cov = 0.0;      ///< coefficient of variation: stddev / mean
  std::vector<RankPhaseTime> top;  ///< top-k slowest ranks, descending
};

struct AnalyzeOptions {
  /// Ranks whose busy time exceeds k * median are reported as stragglers.
  double straggler_k = 1.5;
  /// Slowest ranks listed per phase in the skew table.
  std::size_t skew_top_k = 3;
};

struct Report {
  int nranks = 0;
  trace::Level level = trace::Level::Phases;
  double makespan = 0.0;  ///< max per-rank final time
  CriticalPath path;
  std::vector<RankBreakdown> ranks;
  RankBreakdown total;  ///< element-wise sum over ranks (rank = -1)
  std::vector<Straggler> stragglers;
  double median_busy = 0.0;
  std::vector<PhaseSkew> phase_skew;  ///< descending by max rank seconds
};

Report analyze(const trace::Recorder& rec, const AnalyzeOptions& opts = {});

/// Human-readable report: critical-path blame table, idle decomposition,
/// per-rank rows (first `max_rank_rows`), per-phase skew, straggler list.
void print_report(std::FILE* out, const Report& report,
                  std::size_t max_rank_rows = 16);

/// Machine-readable JSON (one object, no trailing newline). When `metrics`
/// is non-null its instruments are embedded under "metrics"; when
/// `timeseries` is non-null its sampled channels are embedded under
/// "timeseries".
void write_report_json(std::FILE* out, const Report& report,
                       const Registry* metrics = nullptr,
                       const TimeSeries* timeseries = nullptr);

}  // namespace mrbio::obs
