// Metrics registry for the runtime stack: counters, gauges, and
// log-bucketed histograms with percentile queries.
//
// Every layer that holds a Rank (or an engine config) can reach the
// registry and register its own instruments: the DES engine records
// message-size and compute-charge distributions, mpi::Comm times each
// collective, mrmpi::MapReduce tracks task service times, master queue
// latency and spill volumes, and the BLAST/SOM drivers add
// application-level distributions (per-block search time, per-epoch
// collective time). Observation only reads clocks and sizes that the
// runtime already computed, so attaching a registry never changes
// simulated times — the same zero-perturbation contract as trace::Recorder.
//
// Thread safety: the native backend runs ranks as preemptive threads that
// share one registry, so every instrument is safe for concurrent updates —
// counters and gauges are atomics, histograms and the name maps take a
// mutex. The map accessors (counters()/gauges()/histograms()) hand out
// references for report generation and must only be used after the run.
//
// Instruments are created on first use and addressed by a flat
// dotted name ("mrmpi.task_seconds"). Lookup is by std::map, so reports
// iterate in deterministic name order; callers on hot paths cache the
// returned reference (std::map nodes never move).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mrbio::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over positive doubles with exponentially growing buckets.
/// Bucket 0 holds every sample <= min_value; bucket i (i >= 1) covers
/// (min_value * 2^(i-1), min_value * 2^i]. Buckets grow lazily as larger
/// samples arrive. Exact count/sum/min/max are tracked alongside, and each
/// bucket remembers its own sum, so quantile() answers with the mean of the
/// bucket containing the nearest-rank sample — exact for a single sample,
/// and never off by more than one octave otherwise.
class Histogram {
 public:
  explicit Histogram(double min_value = 1e-9) : min_value_(min_value) {}

  void observe(double v);

  std::uint64_t count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }
  double sum() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
  }
  double min() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0 ? 0.0 : min_;
  }
  double max() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0 ? 0.0 : max_;
  }
  double mean() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Nearest-rank quantile, q in [0, 1]. Returns 0 when empty; q <= 0
  /// returns min() and q >= 1 returns max() exactly.
  double quantile(double q) const;

 private:
  struct Bucket {
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  /// Index of the bucket containing v (grows `buckets_` as needed).
  /// Caller holds mutex_.
  std::size_t bucket_index(double v);

  mutable std::mutex mutex_;
  double min_value_;
  std::vector<Bucket> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name-addressed instrument store. counter()/gauge()/histogram() create on
/// first use; asking for an existing name with a different kind throws
/// mrbio::LogicError.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, double min_value = 1e-9);

  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  bool empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Whole-map accessors for report generation; use only once concurrent
  // updates have stopped (after the run).
  const std::map<std::string, Counter, std::less<>>& counters() const { return counters_; }
  const std::map<std::string, Gauge, std::less<>>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram, std::less<>>& histograms() const { return histograms_; }

  /// Fixed-width table: counters and gauges first, then one row per
  /// histogram with count/mean/p50/p90/p99/max.
  void print(std::FILE* out) const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Written without trailing newline so callers can embed it.
  void write_json(std::FILE* out) const;

 private:
  /// Caller holds mutex_.
  void check_unique(std::string_view name, const void* owner) const;

  mutable std::mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace mrbio::obs
