#include "obs/metrics.hpp"

#include <cmath>
#include <cinttypes>

#include "common/error.hpp"

namespace mrbio::obs {

// ---------------------------------------------------------------------------
// Histogram

std::size_t Histogram::bucket_index(double v) {
  // Iterative bound doubling instead of log2(): exact boundary behavior
  // (v == min_value * 2^i lands in bucket i, not i+1) with no dependence
  // on libm rounding.
  std::size_t idx = 0;
  double bound = min_value_;
  while (v > bound && std::isfinite(bound)) {
    bound *= 2.0;
    ++idx;
  }
  if (idx >= buckets_.size()) buckets_.resize(idx + 1);
  return idx;
}

void Histogram::observe(double v) {
  MRBIO_CHECK(!std::isnan(v), "histogram observation is NaN");
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  count_ += 1;
  sum_ += v;
  Bucket& b = buckets_[bucket_index(v)];
  b.count += 1;
  b.sum += v;
}

double Histogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Nearest-rank: the k-th smallest sample, k = ceil(q * count).
  std::uint64_t k = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (k < 1) k = 1;
  if (k > count_) k = count_;
  std::uint64_t cum = 0;
  for (const Bucket& b : buckets_) {
    cum += b.count;
    if (cum >= k) {
      double rep = b.sum / static_cast<double>(b.count);
      // The bucket mean can stray outside [min, max] only through fp
      // rounding; clamp so quantiles stay within observed range.
      if (rep < min_) rep = min_;
      if (rep > max_) rep = max_;
      return rep;
    }
  }
  return max_;  // unreachable: bucket counts sum to count_
}

// ---------------------------------------------------------------------------
// Registry

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  check_unique(name, &counters_);
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  check_unique(name, &gauges_);
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& Registry::histogram(std::string_view name, double min_value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  check_unique(name, &histograms_);
  return histograms_.try_emplace(std::string(name), min_value).first->second;
}

const Counter* Registry::find_counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::check_unique(std::string_view name, const void* owner) const {
  MRBIO_CHECK(owner == &counters_ || counters_.find(name) == counters_.end(),
              "metric '", std::string(name), "' already registered as a counter");
  MRBIO_CHECK(owner == &gauges_ || gauges_.find(name) == gauges_.end(),
              "metric '", std::string(name), "' already registered as a gauge");
  MRBIO_CHECK(owner == &histograms_ || histograms_.find(name) == histograms_.end(),
              "metric '", std::string(name), "' already registered as a histogram");
}

void Registry::print(std::FILE* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!counters_.empty() || !gauges_.empty()) {
    std::fprintf(out, "%-36s %18s\n", "counter/gauge", "value");
    for (const auto& [name, c] : counters_) {
      std::fprintf(out, "%-36s %18" PRIu64 "\n", name.c_str(), c.value());
    }
    for (const auto& [name, g] : gauges_) {
      std::fprintf(out, "%-36s %18.6g\n", name.c_str(), g.value());
    }
  }
  if (!histograms_.empty()) {
    std::fprintf(out, "%-36s %10s %12s %12s %12s %12s %12s\n", "histogram",
                 "count", "mean", "p50", "p90", "p99", "max");
    for (const auto& [name, h] : histograms_) {
      std::fprintf(out, "%-36s %10" PRIu64 " %12.6g %12.6g %12.6g %12.6g %12.6g\n",
                   name.c_str(), h.count(), h.mean(), h.quantile(0.5),
                   h.quantile(0.9), h.quantile(0.99), h.max());
    }
  }
}

namespace {

void write_json_string(std::FILE* out, const std::string& s) {
  std::fputc('"', out);
  for (char ch : s) {
    if (ch == '"' || ch == '\\') std::fputc('\\', out);
    std::fputc(ch, out);
  }
  std::fputc('"', out);
}

}  // namespace

void Registry::write_json(std::FILE* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fputs("{\"counters\":{", out);
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) std::fputc(',', out);
    first = false;
    write_json_string(out, name);
    std::fprintf(out, ":%" PRIu64, c.value());
  }
  std::fputs("},\"gauges\":{", out);
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) std::fputc(',', out);
    first = false;
    write_json_string(out, name);
    std::fprintf(out, ":%.17g", g.value());
  }
  std::fputs("},\"histograms\":{", out);
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) std::fputc(',', out);
    first = false;
    write_json_string(out, name);
    std::fprintf(out,
                 ":{\"count\":%" PRIu64
                 ",\"sum\":%.17g,\"min\":%.17g,\"max\":%.17g,\"mean\":%.17g,"
                 "\"p50\":%.17g,\"p90\":%.17g,\"p99\":%.17g}",
                 h.count(), h.sum(), h.min(), h.max(), h.mean(),
                 h.quantile(0.5), h.quantile(0.9), h.quantile(0.99));
  }
  std::fputs("}}", out);
}

}  // namespace mrbio::obs
