// Time-series telemetry: bounded ring-buffer samplers plus a structured
// JSONL event log.
//
// TimeSeries holds one ring buffer per (rank, channel). Producers call
// sample() with the rank's own clock — virtual seconds on the DES, steady
// seconds since run start on the native backend — and the series records at
// most one point per cadence window per channel, so a hot path can call
// sample() on every message without flooding the buffer. record() bypasses
// the cadence gate for sparse, always-interesting points (phase edges,
// final values). When a ring fills, the oldest point is overwritten; the
// overwrite count is reported so truncation is never silent.
//
// Thread safety: each rank owns a lane guarded by its own mutex, so
// concurrent rank threads on the native backend never contend with each
// other, and a background sampler thread may read/write any lane at any
// time. Like Registry and trace::Recorder, attaching a TimeSeries never
// changes simulated times: producers only read clocks and sizes the
// runtime already computed.
//
// EventLog is a mutex-guarded JSONL writer unifying the ad-hoc MRBIO_LOG
// text lines into machine-readable records:
//   {"t":<monotonic s>,"severity":"info","rank":3,"component":"mrmpi","msg":"..."}
// Rank -1 means "no rank context" (driver code, bridged stderr lines).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/log.hpp"

namespace mrbio::obs {

struct TimeSeriesConfig {
  /// Minimum spacing (seconds, in the producer's time base) between
  /// recorded points of one channel. sample() calls inside the window are
  /// dropped; record() ignores the gate.
  double cadence = 0.01;
  /// Ring capacity per (rank, channel). Oldest points are overwritten.
  std::size_t capacity = 512;
};

struct TsPoint {
  double t = 0.0;
  double v = 0.0;
};

class TimeSeries {
 public:
  explicit TimeSeries(int nranks, TimeSeriesConfig config = {});

  int nranks() const { return static_cast<int>(lanes_.size()); }
  const TimeSeriesConfig& config() const { return config_; }

  /// Cadence-gated sample: records (t, v) on `channel` of `rank` unless a
  /// point was already recorded within the last cadence window. Out-of-range
  /// ranks are ignored (defensive; engines never pass one).
  void sample(int rank, std::string_view channel, double t, double v);

  /// Unconditional sample: always records, still ring-bounded.
  void record(int rank, std::string_view channel, double t, double v);

  /// Channel names present on `rank`, in name order.
  std::vector<std::string> channels(int rank) const;

  /// Points of one channel in chronological order (ring unrolled).
  std::vector<TsPoint> points(int rank, std::string_view channel) const;

  /// Points recorded (survived the cadence gate), including overwritten ones.
  std::uint64_t total_samples() const { return recorded_.load(std::memory_order_relaxed); }
  /// Points lost to ring overwrite.
  std::uint64_t dropped_samples() const { return overwritten_.load(std::memory_order_relaxed); }

  /// One JSON object (no trailing newline, embeddable):
  /// {"cadence":..,"capacity":..,"recorded":..,"overwritten":..,
  ///  "ranks":[{"rank":0,"channels":{"busy_seconds":[[t,v],...]}},...]}
  /// Ranks with no channels are omitted.
  void write_json(std::FILE* out) const;

  /// One JSONL line per (rank, channel):
  /// {"rank":0,"channel":"busy_seconds","points":[[t,v],...]}
  void write_jsonl(std::FILE* out) const;

 private:
  struct Series {
    double next_t = -1e300;       ///< earliest time the gate admits
    std::vector<TsPoint> ring;
    std::size_t head = 0;         ///< next write slot once ring is full
    bool full = false;
    std::uint64_t overwritten = 0;
  };

  struct Lane {
    mutable std::mutex mutex;
    std::map<std::string, Series, std::less<>> series;
  };

  void push(int rank, std::string_view channel, double t, double v, bool gated);

  TimeSeriesConfig config_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> overwritten_{0};
};

/// Append-only structured log. One JSON object per line; flushed per event
/// so a crashing run leaves a readable prefix. Timestamps are monotonic
/// seconds since construction (host steady clock).
class EventLog {
 public:
  /// Opens `path` for writing (truncates). Throws mrbio::Error on failure.
  explicit EventLog(const std::string& path);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one event. Thread-safe. `rank` -1 = no rank context.
  void log(LogLevel severity, int rank, std::string_view component,
           std::string_view message);

  std::uint64_t events() const { return events_.load(std::memory_order_relaxed); }
  const std::string& path() const { return path_; }

  /// Adapter with the mrbio::LogSinkFn signature: routes a bridged
  /// MRBIO_LOG line into the EventLog passed as `ctx` (component "log",
  /// rank -1). Install with set_log_sink(&EventLog::log_sink, &elog).
  static void log_sink(void* ctx, LogLevel level, const char* msg);

 private:
  std::string path_;
  std::FILE* out_ = nullptr;
  std::mutex mutex_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> events_{0};
};

}  // namespace mrbio::obs
