// Checkpoint/restart with integrity-checked durable state.
//
// Long BLAST/SOM runs lose every completed (query-block x DB-partition)
// task when the whole job dies; PR 4's fault-tolerant scheduler only
// survives *worker* crashes inside a live run. This layer persists the
// master's commit ledger, completed task outputs (serialized KV pages)
// and the scheduler cursor to a directory, so a killed job restarted
// with --resume replays the ledger, skips committed work and re-executes
// only the tail.
//
// Durability model (everything is a framed record):
//
//   [u32 magic 'RCPK'][u32 crc32(payload)][u64 len][payload bytes]
//
// A torn write leaves a short or CRC-failing tail; a flipped bit fails
// the CRC. Either way the reader reports Corrupt, the caller truncates
// the file back to the last good record and re-runs the affected tasks —
// degraded to recomputation plus a warning, never a crash or a silently
// wrong output.
//
// On-disk layout inside the checkpoint dir:
//
//   MANIFEST              run fingerprint; guards --resume against a
//                         different query/db/rank configuration
//   ledger.log            rank-0 cycle records (driver-defined payload),
//                         appended once per completed superstep
//   map.r<R>.c<C>.log     per-rank, per-cycle map-task output records,
//                         appended as tasks commit
//   snap.<name>.bin       single-record atomic snapshots (tmp + rename)
//   spill/                durable out-of-core KV spill files
//
// The Checkpointer is shared by all ranks of a run (threads on the
// native backend), so every mutating entry point is mutex-guarded.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "fault/fault.hpp"

namespace mrbio::ckpt {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
/// guarding every checkpoint record.
std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed = 0);

struct CheckpointConfig {
  std::string dir;        ///< empty = checkpointing disabled
  double interval = 5.0;  ///< min seconds between map-log flushes (0 = every task)
  bool resume = false;    ///< continue from an existing checkpoint
  /// Virtual seconds charged per checkpoint byte written or replayed, so
  /// the sim timeline (and --report's checkpoint_io category) prices
  /// durability; the native backend measures real time instead.
  double byte_seconds = 2.0e-9;
};

enum class ReadStatus { Ok, Eof, Corrupt };

/// Appends framed records to a log file. Construction truncates the file
/// to `valid_end` (dropping any torn tail found by a previous read pass)
/// and opens it for append.
class RecordWriter {
 public:
  RecordWriter(std::string path, std::uint64_t valid_end);
  ~RecordWriter();
  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  void append(std::span<const std::byte> payload);
  /// Flushes user-space buffers and fsyncs the file descriptor.
  void sync();
  std::uint64_t bytes_written() const { return end_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
  std::uint64_t end_ = 0;  ///< current file offset (all records durable to here)
};

/// Sequentially reads framed records. A missing file reads as empty.
/// After Eof or Corrupt, valid_end() is the offset just past the last
/// good record — the truncation point for reopening with RecordWriter.
class RecordReader {
 public:
  explicit RecordReader(const std::string& path);
  ~RecordReader();
  RecordReader(const RecordReader&) = delete;
  RecordReader& operator=(const RecordReader&) = delete;

  ReadStatus next(std::vector<std::byte>& payload);
  std::uint64_t valid_end() const { return valid_end_; }

 private:
  std::FILE* f_ = nullptr;
  std::uint64_t pos_ = 0;
  std::uint64_t valid_end_ = 0;
};

struct CheckpointStats {
  std::uint64_t records_written = 0;
  std::uint64_t bytes_written = 0;   ///< payload + framing, all files
  std::uint64_t records_replayed = 0;
  std::uint64_t bytes_replayed = 0;
  std::uint64_t corrupt_records = 0;  ///< records dropped by CRC/framing checks
  std::uint64_t snapshots_saved = 0;
};

class Checkpointer {
 public:
  /// `injector` (optional) supplies corrupt-checkpoint faults: after each
  /// durable write the matching target file gets a byte flipped, which the
  /// next read must detect via CRC.
  explicit Checkpointer(CheckpointConfig config, fault::Injector* injector = nullptr);
  ~Checkpointer();
  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Creates the directory tree and validates/creates MANIFEST.
  /// `fingerprint` captures the run configuration (inputs, rank count,
  /// block schedule); resuming with a different fingerprint is an error,
  /// and a populated dir without --resume is an error. Call once from the
  /// driver before launching ranks.
  void open(const std::string& fingerprint);

  bool enabled() const { return !config_.dir.empty(); }
  /// True when open() found a matching checkpoint to continue.
  bool resuming() const { return resuming_; }
  const CheckpointConfig& config() const { return config_; }

  // -- Scheduler cursor. The driver brackets each superstep (BLAST block
  // cycle, SOM epoch) with begin_cycle(); the MapReduce layer reads the
  // current cycle to name its map log.
  void begin_cycle(int rank, std::uint64_t cycle);
  std::uint64_t cycle(int rank) const;

  // -- Commit ledger (written by rank 0, one record per completed cycle).
  // Records found at open() are exposed for the driver's resume replay;
  // a corrupt tail is dropped with a warning (those cycles re-run).
  void append_cycle_record(std::span<const std::byte> payload);
  const std::vector<std::vector<std::byte>>& ledger_records() const {
    return ledger_records_;
  }

  // -- Atomic snapshots (tmp + fsync + rename). load_snapshot returns
  // false — degrading to "start that state from scratch" — when the
  // snapshot is missing or fails its CRC.
  void save_snapshot(const std::string& name, std::span<const std::byte> payload);
  bool load_snapshot(const std::string& name, std::vector<std::byte>& out);

  // -- Per-shard, per-cycle commit journals of the sharded exactly-once
  // ledger (`shard.<S>.c<C>.log`). A shard owner appends each commit
  // decision BEFORE granting it, so a deterministic successor can replay
  // the log after the owner's death; kill->resume reads every shard's
  // journal to decide which map-log records are truly committed.
  // Corruption of one journal degrades only that shard's task range.
  std::string shard_log_path(int shard, std::uint64_t cycle) const;
  std::uint64_t read_shard_log(int shard, std::uint64_t cycle,
                               const std::function<void(std::span<const std::byte>)>& fn);
  std::unique_ptr<RecordWriter> open_shard_log(int shard, std::uint64_t cycle,
                                               std::uint64_t valid_end);
  /// True when any shard journal exists for `cycle` (given `nshards`
  /// possible shards) — i.e. a previous (killed) sharded run got far
  /// enough to journal commits.
  bool any_shard_log(std::uint64_t cycle, int nshards) const;

  // -- Per-rank, per-cycle map-task logs.
  std::string map_log_path(int rank, std::uint64_t cycle) const;
  /// Replays every intact record through `fn`; returns the truncation
  /// offset for open_map_log. Corruption stops the replay with a warning.
  std::uint64_t read_map_log(int rank, std::uint64_t cycle,
                             const std::function<void(std::span<const std::byte>)>& fn);
  std::unique_ptr<RecordWriter> open_map_log(int rank, std::uint64_t cycle,
                                             std::uint64_t valid_end);
  void remove_map_log(int rank, std::uint64_t cycle);

  /// Directory for durable KV spill files (created by open()).
  std::string spill_dir() const;

  /// Removes the checkpoint's own files (MANIFEST, ledger, map logs,
  /// snapshots, spill dir) after a successful run; the directory itself
  /// is removed only if that left it empty.
  void cleanup_on_success();

  CheckpointStats stats() const;
  // Accounting entry points for writers/readers owned by other layers
  // (the MapReduce map log) so one stats block covers the whole run.
  void note_written(std::uint64_t records, std::uint64_t bytes);
  void note_replayed(std::uint64_t records, std::uint64_t bytes);
  void note_corrupt(std::uint64_t records = 1);

  // Fault-injection hooks, called after the matching durable write. Each
  // consumes at most one pending corrupt fault from the injector.
  void after_ledger_write();
  void after_map_log_write(int rank, std::uint64_t cycle);
  void after_shard_log_write(int shard, std::uint64_t cycle);
  void after_snapshot_write(const std::string& name);

 private:
  std::string manifest_path() const;
  std::string ledger_path() const;
  std::string snapshot_path(const std::string& name) const;
  void remove_own_files();
  void maybe_corrupt(const std::string& path, fault::CorruptTarget target);

  CheckpointConfig config_;
  fault::Injector* injector_ = nullptr;
  bool opened_ = false;
  bool resuming_ = false;
  std::vector<std::vector<std::byte>> ledger_records_;
  std::unique_ptr<RecordWriter> ledger_;
  std::vector<std::uint64_t> cycles_;  ///< per-rank current cycle
  CheckpointStats stats_;
  mutable std::mutex mutex_;
};

}  // namespace mrbio::ckpt
