#include "ckpt/ckpt.hpp"

#include <unistd.h>

#include <array>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/error.hpp"
#include "common/log.hpp"

namespace mrbio::ckpt {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x4b504352;  // "RCPK" little-endian
constexpr std::uint64_t kMaxRecordLen = 1ull << 31;
constexpr char kManifestHeader[] = "mrbio-ckpt v1\n";
constexpr std::size_t kFrameBytes = sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t);

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void fsync_stream(std::FILE* f, const std::string& path) {
  MRBIO_CHECK(std::fflush(f) == 0, "checkpoint flush failed: ", path);
  MRBIO_CHECK(::fsync(fileno(f)) == 0, "checkpoint fsync failed: ", path);
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::byte b : data) {
    c = table[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// RecordWriter / RecordReader

RecordWriter::RecordWriter(std::string path, std::uint64_t valid_end)
    : path_(std::move(path)), end_(valid_end) {
  std::error_code ec;
  const auto size = fs::file_size(path_, ec);
  if (!ec && size > valid_end) {
    // Drop the torn/corrupt tail a previous read pass identified.
    fs::resize_file(path_, valid_end, ec);
    MRBIO_CHECK(!ec, "cannot truncate checkpoint log ", path_, ": ", ec.message());
  }
  f_ = std::fopen(path_.c_str(), "ab");
  MRBIO_CHECK(f_ != nullptr, "cannot open checkpoint log for append: ", path_);
}

RecordWriter::~RecordWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

void RecordWriter::append(std::span<const std::byte> payload) {
  MRBIO_CHECK(payload.size() < kMaxRecordLen, "checkpoint record too large: ",
              payload.size(), " bytes");
  const std::uint32_t crc = crc32(payload);
  const std::uint64_t len = payload.size();
  const bool ok = std::fwrite(&kMagic, sizeof(kMagic), 1, f_) == 1 &&
                  std::fwrite(&crc, sizeof(crc), 1, f_) == 1 &&
                  std::fwrite(&len, sizeof(len), 1, f_) == 1 &&
                  (payload.empty() ||
                   std::fwrite(payload.data(), 1, payload.size(), f_) == payload.size());
  MRBIO_CHECK(ok, "checkpoint write failed: ", path_);
  end_ += kFrameBytes + payload.size();
}

void RecordWriter::sync() { fsync_stream(f_, path_); }

RecordReader::RecordReader(const std::string& path) {
  f_ = std::fopen(path.c_str(), "rb");  // nullptr (missing file) reads as empty
}

RecordReader::~RecordReader() {
  if (f_ != nullptr) std::fclose(f_);
}

ReadStatus RecordReader::next(std::vector<std::byte>& payload) {
  if (f_ == nullptr) return ReadStatus::Eof;
  std::uint32_t magic = 0;
  std::uint32_t crc = 0;
  std::uint64_t len = 0;
  const std::size_t got_magic = std::fread(&magic, 1, sizeof(magic), f_);
  if (got_magic == 0) return ReadStatus::Eof;
  if (got_magic != sizeof(magic) ||
      std::fread(&crc, 1, sizeof(crc), f_) != sizeof(crc) ||
      std::fread(&len, 1, sizeof(len), f_) != sizeof(len)) {
    return ReadStatus::Corrupt;  // torn header
  }
  if (magic != kMagic || len >= kMaxRecordLen) return ReadStatus::Corrupt;
  payload.resize(len);
  if (len != 0 && std::fread(payload.data(), 1, len, f_) != len) {
    return ReadStatus::Corrupt;  // torn payload
  }
  if (crc32(payload) != crc) return ReadStatus::Corrupt;  // bit rot
  pos_ += kFrameBytes + len;
  valid_end_ = pos_;
  return ReadStatus::Ok;
}

// ---------------------------------------------------------------------------
// Checkpointer

Checkpointer::Checkpointer(CheckpointConfig config, fault::Injector* injector)
    : config_(std::move(config)), injector_(injector) {}

Checkpointer::~Checkpointer() = default;

std::string Checkpointer::manifest_path() const { return config_.dir + "/MANIFEST"; }
std::string Checkpointer::ledger_path() const { return config_.dir + "/ledger.log"; }

std::string Checkpointer::snapshot_path(const std::string& name) const {
  return config_.dir + "/snap." + name + ".bin";
}

std::string Checkpointer::map_log_path(int rank, std::uint64_t cycle) const {
  return config_.dir + "/map.r" + std::to_string(rank) + ".c" + std::to_string(cycle) +
         ".log";
}

std::string Checkpointer::shard_log_path(int shard, std::uint64_t cycle) const {
  return config_.dir + "/shard." + std::to_string(shard) + ".c" +
         std::to_string(cycle) + ".log";
}

std::string Checkpointer::spill_dir() const { return config_.dir + "/spill"; }

void Checkpointer::remove_own_files() {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    const bool ours = name == "MANIFEST" || name == "ledger.log" ||
                      (name.rfind("snap.", 0) == 0 && name.size() > 9 &&
                       name.compare(name.size() - 4, 4, ".bin") == 0) ||
                      (name.rfind("map.r", 0) == 0 && name.size() > 9 &&
                       name.compare(name.size() - 4, 4, ".log") == 0) ||
                      (name.rfind("shard.", 0) == 0 && name.size() > 10 &&
                       name.compare(name.size() - 4, 4, ".log") == 0);
    if (ours) {
      fs::remove(entry.path(), ec);
    } else if (name == "spill") {
      fs::remove_all(entry.path(), ec);
    }
  }
}

void Checkpointer::open(const std::string& fingerprint) {
  MRBIO_REQUIRE(enabled(), "Checkpointer::open called with no checkpoint dir");
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  MRBIO_REQUIRE(!ec, "cannot create checkpoint dir ", config_.dir, ": ", ec.message());
  const std::string want = std::string(kManifestHeader) + fingerprint + "\n";

  if (fs::exists(manifest_path())) {
    std::string have;
    if (std::FILE* f = std::fopen(manifest_path().c_str(), "rb")) {
      char buf[4096];
      std::size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) have.append(buf, n);
      std::fclose(f);
    }
    MRBIO_REQUIRE(config_.resume, "checkpoint dir ", config_.dir,
                  " already holds a checkpoint; pass --resume to continue it "
                  "or remove the directory to start over");
    MRBIO_REQUIRE(have == want, "checkpoint in ", config_.dir,
                  " was written by a different run configuration; refusing to "
                  "resume (remove the directory to start over)");
    resuming_ = true;
    // Load the commit ledger, stopping at the first torn/corrupt record:
    // later cycles simply re-run.
    RecordReader reader(ledger_path());
    std::vector<std::byte> payload;
    ReadStatus st;
    while ((st = reader.next(payload)) == ReadStatus::Ok) {
      ledger_records_.push_back(payload);
      ++stats_.records_replayed;
      stats_.bytes_replayed += payload.size();
    }
    if (st == ReadStatus::Corrupt) {
      ++stats_.corrupt_records;
      MRBIO_LOG(Warn, "checkpoint ledger ", ledger_path(),
                " has a corrupt record after offset ", reader.valid_end(),
                "; later cycles will re-run");
    }
    ledger_ = std::make_unique<RecordWriter>(ledger_path(), reader.valid_end());
  } else {
    if (config_.resume) {
      MRBIO_LOG(Warn, "--resume: no checkpoint found in ", config_.dir,
                "; starting fresh");
    }
    remove_own_files();  // stale partial state from a dir without a MANIFEST
    std::FILE* f = std::fopen(manifest_path().c_str(), "wb");
    MRBIO_REQUIRE(f != nullptr, "cannot write ", manifest_path());
    MRBIO_CHECK(std::fwrite(want.data(), 1, want.size(), f) == want.size(),
                "manifest write failed: ", manifest_path());
    fsync_stream(f, manifest_path());
    std::fclose(f);
    ledger_ = std::make_unique<RecordWriter>(ledger_path(), 0);
  }
  fs::create_directories(spill_dir(), ec);
  MRBIO_REQUIRE(!ec, "cannot create spill dir ", spill_dir(), ": ", ec.message());
  opened_ = true;
}

void Checkpointer::begin_cycle(int rank, std::uint64_t cycle) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<std::size_t>(rank) >= cycles_.size()) {
    cycles_.resize(static_cast<std::size_t>(rank) + 1, 0);
  }
  cycles_[static_cast<std::size_t>(rank)] = cycle;
}

std::uint64_t Checkpointer::cycle(int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(rank) < cycles_.size()
             ? cycles_[static_cast<std::size_t>(rank)]
             : 0;
}

void Checkpointer::append_cycle_record(std::span<const std::byte> payload) {
  MRBIO_CHECK(opened_, "checkpointer not opened");
  std::lock_guard<std::mutex> lock(mutex_);
  ledger_->append(payload);
  ledger_->sync();
  ++stats_.records_written;
  stats_.bytes_written += kFrameBytes + payload.size();
  maybe_corrupt(ledger_path(), fault::CorruptTarget::Ledger);
}

void Checkpointer::save_snapshot(const std::string& name,
                                 std::span<const std::byte> payload) {
  MRBIO_CHECK(opened_, "checkpointer not opened");
  const std::string final_path = snapshot_path(name);
  const std::string tmp_path = final_path + ".tmp";
  {
    RecordWriter w(tmp_path, 0);
    w.append(payload);
    w.sync();
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  MRBIO_CHECK(!ec, "cannot publish snapshot ", final_path, ": ", ec.message());
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.snapshots_saved;
  ++stats_.records_written;
  stats_.bytes_written += kFrameBytes + payload.size();
  maybe_corrupt(final_path, fault::CorruptTarget::Snapshot);
}

bool Checkpointer::load_snapshot(const std::string& name, std::vector<std::byte>& out) {
  RecordReader reader(snapshot_path(name));
  const ReadStatus st = reader.next(out);
  if (st == ReadStatus::Ok) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.records_replayed;
    stats_.bytes_replayed += out.size();
    return true;
  }
  out.clear();
  if (st == ReadStatus::Corrupt) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.corrupt_records;
    MRBIO_LOG(Warn, "snapshot ", snapshot_path(name),
              " failed its integrity check; recomputing that state from scratch");
  }
  return false;
}

std::uint64_t Checkpointer::read_map_log(
    int rank, std::uint64_t cycle,
    const std::function<void(std::span<const std::byte>)>& fn) {
  RecordReader reader(map_log_path(rank, cycle));
  std::vector<std::byte> payload;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  ReadStatus st;
  while ((st = reader.next(payload)) == ReadStatus::Ok) {
    ++records;
    bytes += payload.size();
    fn(payload);
  }
  if (st == ReadStatus::Corrupt) {
    note_corrupt();
    MRBIO_LOG(Warn, "checkpoint map log ", map_log_path(rank, cycle),
              " has a corrupt record after offset ", reader.valid_end(),
              "; the affected tasks will re-run");
  }
  note_replayed(records, bytes);
  return reader.valid_end();
}

std::unique_ptr<RecordWriter> Checkpointer::open_map_log(int rank, std::uint64_t cycle,
                                                         std::uint64_t valid_end) {
  return std::make_unique<RecordWriter>(map_log_path(rank, cycle), valid_end);
}

std::uint64_t Checkpointer::read_shard_log(
    int shard, std::uint64_t cycle,
    const std::function<void(std::span<const std::byte>)>& fn) {
  RecordReader reader(shard_log_path(shard, cycle));
  std::vector<std::byte> payload;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  ReadStatus st;
  while ((st = reader.next(payload)) == ReadStatus::Ok) {
    ++records;
    bytes += payload.size();
    fn(payload);
  }
  if (st == ReadStatus::Corrupt) {
    note_corrupt();
    MRBIO_LOG(Warn, "checkpoint shard journal ", shard_log_path(shard, cycle),
              " has a corrupt record after offset ", reader.valid_end(),
              "; tasks of shard ", shard, " committed after that point will re-run");
  }
  note_replayed(records, bytes);
  return reader.valid_end();
}

std::unique_ptr<RecordWriter> Checkpointer::open_shard_log(int shard,
                                                           std::uint64_t cycle,
                                                           std::uint64_t valid_end) {
  return std::make_unique<RecordWriter>(shard_log_path(shard, cycle), valid_end);
}

bool Checkpointer::any_shard_log(std::uint64_t cycle, int nshards) const {
  for (int s = 0; s < nshards; ++s) {
    std::error_code ec;
    if (fs::exists(shard_log_path(s, cycle), ec)) return true;
  }
  return false;
}

void Checkpointer::remove_map_log(int rank, std::uint64_t cycle) {
  std::error_code ec;
  fs::remove(map_log_path(rank, cycle), ec);
}

void Checkpointer::cleanup_on_success() {
  if (!opened_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ledger_.reset();
  remove_own_files();
  std::error_code ec;
  fs::remove(config_.dir, ec);  // only succeeds if the dir is now empty
  opened_ = false;
}

CheckpointStats Checkpointer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Checkpointer::note_written(std::uint64_t records, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.records_written += records;
  stats_.bytes_written += bytes;
}

void Checkpointer::note_replayed(std::uint64_t records, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.records_replayed += records;
  stats_.bytes_replayed += bytes;
}

void Checkpointer::note_corrupt(std::uint64_t records) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.corrupt_records += records;
}

void Checkpointer::after_ledger_write() {
  std::lock_guard<std::mutex> lock(mutex_);
  maybe_corrupt(ledger_path(), fault::CorruptTarget::Ledger);
}

void Checkpointer::after_map_log_write(int rank, std::uint64_t cycle) {
  std::lock_guard<std::mutex> lock(mutex_);
  maybe_corrupt(map_log_path(rank, cycle), fault::CorruptTarget::MapLog);
}

void Checkpointer::after_shard_log_write(int shard, std::uint64_t cycle) {
  std::lock_guard<std::mutex> lock(mutex_);
  maybe_corrupt(shard_log_path(shard, cycle), fault::CorruptTarget::Shard);
}

void Checkpointer::after_snapshot_write(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  maybe_corrupt(snapshot_path(name), fault::CorruptTarget::Snapshot);
}

void Checkpointer::maybe_corrupt(const std::string& path, fault::CorruptTarget target) {
  if (injector_ == nullptr) return;
  fault::CorruptFault f;
  if (!injector_->take_corrupt(target, f)) return;
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) return;
  std::error_code ec;
  const auto size = static_cast<long long>(fs::file_size(path, ec));
  if (ec || size == 0) {
    std::fclose(file);
    return;
  }
  long long offset = f.byte >= 0 ? f.byte : size / 2;
  if (offset >= size) offset = size - 1;
  unsigned char b = 0;
  if (std::fseek(file, static_cast<long>(offset), SEEK_SET) == 0 &&
      std::fread(&b, 1, 1, file) == 1) {
    b ^= 0xFFu;
    std::fseek(file, static_cast<long>(offset), SEEK_SET);
    std::fwrite(&b, 1, 1, file);
    std::fflush(file);
    MRBIO_LOG(Info, "fault injection: flipped byte ", offset, " of ", path);
  }
  std::fclose(file);
}

}  // namespace mrbio::ckpt
