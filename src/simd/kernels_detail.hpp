// Shared scalar kernel bodies — the executable spec of simd.hpp's kernel
// contracts. kernels_scalar.cpp wraps these verbatim; the SSE4.1/AVX2
// translation units reuse them for loop tails and for kernels they leave
// scalar, so every variant's edge handling is literally the same code.
//
// FP rule: these bodies spell out the canonical operation sequence
// (striped partials, explicit double<->float casts). Every TU including
// this header is compiled with -ffp-contract=off so no variant fuses a
// multiply-add the others don't.
#pragma once

#include <cstddef>
#include <cstdint>

#include "simd/simd.hpp"

namespace mrbio::simd::detail {

/// Variant tables, defined by their respective translation units. The
/// SSE4.1/AVX2 getters return nullptr when the binary was built without
/// that variant (non-x86 target or compiler lacking the -m flag).
const Kernels& scalar_kernels();
const Kernels* sse41_kernels();
const Kernels* avx2_kernels();

// ---- diag_scan ----

inline DiagScanResult scalar_diag_scan(const std::uint8_t* a, const std::uint8_t* b,
                                       std::size_t n, bool reverse, const int* table,
                                       int run, int best, int xdrop) {
  std::size_t best_len = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (run <= best - xdrop) break;
    const std::uint8_t ac = reverse ? a[-static_cast<std::ptrdiff_t>(k) - 1] : a[k];
    const std::uint8_t bc = reverse ? b[-static_cast<std::ptrdiff_t>(k) - 1] : b[k];
    run += table[static_cast<std::size_t>(ac) * 32 + bc];
    if (run > best) {
      best = run;
      best_len = k + 1;
    }
  }
  return DiagScanResult{best, best_len};
}

// ---- gapped_row_prep ----

inline void scalar_gapped_row_prep(const int* h_prev, const int* f_prev, std::size_t prev_n,
                                   const std::uint8_t* b_lo, const int* score_row,
                                   int open_first, int ext, std::size_t m, int* d_out,
                                   int* f_out, std::uint8_t* fflag_out) {
  for (std::size_t t = 0; t < m; ++t) {
    int f = kNegInf;
    std::uint8_t flag = 0;
    if (t < prev_n) {
      const int from_h = h_prev[t] > kNegInf ? h_prev[t] - open_first : kNegInf;
      const int from_f = f_prev[t] > kNegInf ? f_prev[t] - ext : kNegInf;
      if (from_f > from_h) {
        f = from_f;
        flag = 1;
      } else {
        f = from_h;
      }
    }
    f_out[t] = f;
    fflag_out[t] = flag;
    int d = kNegInf;
    if (t >= 1 && t - 1 < prev_n && h_prev[t - 1] > kNegInf) {
      d = h_prev[t - 1] + score_row[b_lo[t - 1]];
    }
    d_out[t] = d;
  }
}

// ---- word scans ----

/// Protein word codes/validity for positions [begin, end), OR-ing valid
/// bits into *valid (bit i corresponds to position i of the block).
inline void prot_words_range(const std::uint8_t* s, std::size_t begin, std::size_t end,
                             std::uint16_t* codes, std::uint64_t* valid) {
  for (std::size_t i = begin; i < end; ++i) {
    codes[i] = static_cast<std::uint16_t>((s[i] * 20u + s[i + 1]) * 20u + s[i + 2]);
    if (s[i] < 20 && s[i + 1] < 20 && s[i + 2] < 20) *valid |= std::uint64_t{1} << i;
  }
}

inline void scalar_prot_words(const std::uint8_t* s, std::size_t m, std::uint16_t* codes,
                              std::uint64_t* valid) {
  *valid = 0;
  prot_words_range(s, 0, m, codes, valid);
}

/// Rolling-word codes for a block plus the per-byte cleanliness mask
/// (bit i set iff s[i] < 4). Shared by every variant; vector variants
/// only recompute the cleanliness mask with wide compares.
inline std::uint64_t dna_codes_and_clean(const std::uint8_t* s, std::size_t m,
                                         std::uint32_t mask, std::uint32_t* word_io,
                                         std::uint32_t* codes) {
  std::uint64_t clean = 0;
  std::uint32_t word = *word_io;
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint8_t c = s[i];
    word = ((word << 2) | (c & 3u)) & mask;
    codes[i] = word;
    if (c < 4) clean |= std::uint64_t{1} << i;
  }
  *word_io = word;
  return clean;
}

/// Rolling-word codes only, for vector variants that compute the
/// cleanliness mask with wide compares instead.
inline void dna_codes_only(const std::uint8_t* s, std::size_t m, std::uint32_t mask,
                           std::uint32_t* word_io, std::uint32_t* codes) {
  std::uint32_t word = *word_io;
  for (std::size_t i = 0; i < m; ++i) {
    word = ((word << 2) | (s[i] & 3u)) & mask;
    codes[i] = word;
  }
  *word_io = word;
}

/// Turns a block cleanliness mask into the valid-word mask and advances
/// the carried history. E is the cleanliness bitstream, LSB oldest: bits
/// [0, w-1) are the carried history (previous w-1 bytes), bit w-1+i is
/// byte i of the block. A word ending at i is valid iff E bits i..i+w-1
/// are all set.
inline std::uint64_t dna_valid_from_clean(std::uint64_t clean, std::size_t m, int word_size,
                                          std::uint64_t* hist_io) {
  const int w1 = word_size - 1;
  const std::uint64_t e = (clean << w1) | *hist_io;
  std::uint64_t valid = e;
  for (int j = 1; j <= w1; ++j) valid &= e >> j;
  *hist_io = (e >> m) & ((std::uint64_t{1} << w1) - 1);
  if (m < 64) valid &= (std::uint64_t{1} << m) - 1;
  return valid;
}

inline void scalar_dna_words(const std::uint8_t* s, std::size_t m, int word_size,
                             std::uint32_t mask, std::uint32_t* word_io,
                             std::uint64_t* hist_io, std::uint32_t* codes,
                             std::uint64_t* valid_out) {
  const std::uint64_t clean = dna_codes_and_clean(s, m, mask, word_io, codes);
  *valid_out = dna_valid_from_clean(clean, m, word_size, hist_io);
}

// ---- striped floating point ----

/// Accumulates the canonical striped partials over [begin, end): partial
/// l gathers elements with i % 4 == l in ascending i.
inline void dist2_partials(const float* a, const float* b, std::size_t begin, std::size_t end,
                           double p[4]) {
  for (std::size_t i = begin; i < end; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    p[i & 3] += d * d;
  }
}

/// The canonical partial combine; matches the two-stage horizontal
/// reduction of a 4-lane double vector.
inline double combine_partials(const double p[4]) { return (p[0] + p[2]) + (p[1] + p[3]); }

inline double scalar_dist2(const float* a, const float* b, std::size_t n) {
  double p[4] = {0.0, 0.0, 0.0, 0.0};
  dist2_partials(a, b, 0, n, p);
  return combine_partials(p);
}

inline void scaled_accum_range(float* acc, const float* x, std::size_t begin, std::size_t end,
                               double h) {
  for (std::size_t i = begin; i < end; ++i) {
    acc[i] += static_cast<float>(h * static_cast<double>(x[i]));
  }
}

inline void online_update_range(float* w, const float* x, std::size_t begin, std::size_t end,
                                double ah) {
  for (std::size_t i = begin; i < end; ++i) {
    const float diff = x[i] - w[i];
    w[i] += static_cast<float>(ah * static_cast<double>(diff));
  }
}

inline void add_range(float* a, const float* b, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) a[i] += b[i];
}

inline void scale_assign_range(float* w, const float* num, std::size_t begin, std::size_t end,
                               float denom) {
  for (std::size_t i = begin; i < end; ++i) w[i] = num[i] / denom;
}

inline void scalar_scaled_accum(float* acc, const float* x, std::size_t n, double h) {
  scaled_accum_range(acc, x, 0, n, h);
}

inline void scalar_online_update(float* w, const float* x, std::size_t n, double ah) {
  online_update_range(w, x, 0, n, ah);
}

inline void scalar_add(float* a, const float* b, std::size_t n) { add_range(a, b, 0, n); }

inline void scalar_scale_assign(float* w, const float* num, std::size_t n, float denom) {
  scale_assign_range(w, num, 0, n, denom);
}

}  // namespace mrbio::simd::detail
