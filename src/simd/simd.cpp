#include "simd/simd.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <mutex>

#include "common/error.hpp"
#include "simd/kernels_detail.hpp"

namespace mrbio::simd {

namespace {

bool cpu_supports(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Isa::Sse41:
      return __builtin_cpu_supports("sse4.1") != 0;
    case Isa::Avx2:
      return __builtin_cpu_supports("avx2") != 0;
#else
    case Isa::Sse41:
    case Isa::Avx2:
      return false;
#endif
  }
  return false;
}

/// The explicit per-process pin (set_isa); -1 = none.
std::atomic<int> g_override{-1};

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return "scalar";
    case Isa::Sse41:
      return "sse4.1";
    case Isa::Avx2:
      return "avx2";
  }
  return "?";
}

Isa parse_isa(const std::string& name) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "scalar") return Isa::Scalar;
  if (s == "sse" || s == "sse4.1" || s == "sse41") return Isa::Sse41;
  if (s == "avx2") return Isa::Avx2;
  if (s == "auto") return detected_isa();
  throw InputError("unknown SIMD level '" + name +
                   "' (expected scalar, sse4.1, avx2, or auto)");
}

bool isa_compiled(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return true;
    case Isa::Sse41:
      return detail::sse41_kernels() != nullptr;
    case Isa::Avx2:
      return detail::avx2_kernels() != nullptr;
  }
  return false;
}

bool isa_runnable(Isa isa) { return isa_compiled(isa) && cpu_supports(isa); }

Isa detected_isa() {
  static const Isa detected = [] {
    if (isa_runnable(Isa::Avx2)) return Isa::Avx2;
    if (isa_runnable(Isa::Sse41)) return Isa::Sse41;
    return Isa::Scalar;
  }();
  return detected;
}

std::vector<Isa> runnable_isas() {
  std::vector<Isa> out;
  for (const Isa isa : {Isa::Scalar, Isa::Sse41, Isa::Avx2}) {
    if (isa_runnable(isa)) out.push_back(isa);
  }
  return out;
}

Isa resolve_default(const char* env_value) {
  if (env_value == nullptr || *env_value == '\0') return detected_isa();
  const Isa isa = parse_isa(env_value);
  MRBIO_REQUIRE(isa_runnable(isa), "MRBIO_SIMD=", env_value, " requests SIMD level ",
                isa_name(isa), ", which is not available on this machine");
  return isa;
}

Isa active_isa() {
  const int pin = g_override.load(std::memory_order_relaxed);
  if (pin >= 0) return static_cast<Isa>(pin);
  static const Isa env_default = resolve_default(std::getenv("MRBIO_SIMD"));
  return env_default;
}

void set_isa(Isa isa) {
  MRBIO_REQUIRE(isa_runnable(isa), "SIMD level ", isa_name(isa),
                " is not available on this machine (compiled: ", isa_compiled(isa) ? "yes" : "no",
                ")");
  g_override.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void clear_isa_override() { g_override.store(-1, std::memory_order_relaxed); }

const Kernels& kernels(Isa isa) {
  MRBIO_REQUIRE(isa_runnable(isa), "SIMD level ", isa_name(isa),
                " is not available on this machine");
  switch (isa) {
    case Isa::Sse41:
      return *detail::sse41_kernels();
    case Isa::Avx2:
      return *detail::avx2_kernels();
    case Isa::Scalar:
      break;
  }
  return detail::scalar_kernels();
}

const Kernels& kernels() { return kernels(active_isa()); }

namespace {

/// Self-contained match/mismatch table and sequence pair for calibration;
/// identical sequences keep the running score climbing so the X-drop
/// never fires and the scan covers every cell.
struct CalibrationInput {
  std::array<int, 32 * 32> table{};
  std::vector<std::uint8_t> seq;

  CalibrationInput() {
    for (int a = 0; a < 32; ++a) {
      for (int b = 0; b < 32; ++b) table[static_cast<std::size_t>(a) * 32 + b] = a == b ? 1 : -2;
    }
    seq.resize(4096);
    std::uint64_t state = 0x9e3779b97f4a7c15ull;  // deterministic bases
    for (std::uint8_t& c : seq) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      c = static_cast<std::uint8_t>((state >> 60) & 3u);
    }
  }
};

}  // namespace

double calibrated_seconds_per_cell(Isa isa) {
  static std::mutex mu;
  static std::array<double, 3> cache{0.0, 0.0, 0.0};
  const auto slot = static_cast<std::size_t>(isa);
  std::lock_guard<std::mutex> lock(mu);
  if (cache[slot] > 0.0) return cache[slot];

  static const CalibrationInput in;
  const Kernels& k = kernels(isa);
  const int huge_xdrop = 1 << 20;
  using clock = std::chrono::steady_clock;

  // Warm up once, then time enough repetitions to dominate clock noise.
  volatile int sink =
      k.diag_scan(in.seq.data(), in.seq.data(), in.seq.size(), false, in.table.data(), 0, 0,
                  huge_xdrop)
          .best;
  std::size_t cells = 0;
  const auto start = clock::now();
  auto elapsed = clock::duration::zero();
  do {
    for (int rep = 0; rep < 16; ++rep) {
      sink = k.diag_scan(in.seq.data(), in.seq.data(), in.seq.size(), false, in.table.data(),
                         0, 0, huge_xdrop)
                 .best;
      cells += in.seq.size();
    }
    elapsed = clock::now() - start;
  } while (elapsed < std::chrono::milliseconds(2));
  (void)sink;

  const double secs = std::chrono::duration<double>(elapsed).count();
  cache[slot] = secs / static_cast<double>(cells);
  return cache[slot];
}

double calibrated_seconds_per_cell() { return calibrated_seconds_per_cell(active_isa()); }

}  // namespace mrbio::simd
