// Runtime-dispatched SIMD kernel layer for the alignment and SOM hot
// loops (ROADMAP item 2).
//
// Three ISA variants of every kernel are compiled into the binary on
// x86-64 -- scalar, SSE4.1 and AVX2 -- and one is selected at run time:
//
//   explicit set_isa()  >  $MRBIO_SIMD  >  cpuid detection
//
// (drivers expose set_isa as --simd). The scalar variant is the *oracle*:
// every vector kernel is required to be bit-identical to it, which the
// differential suite under tests/simd enforces. Two design rules make
// that possible:
//
//   - integer kernels (extension scans, gapped DP row prep, word packing)
//     replicate the scalar recurrence exactly -- including X-drop
//     stopping points and tie-break directions -- so any evaluation
//     order gives the same bits;
//   - floating-point kernels fix a canonical *striped* reduction order
//     (partial sum l accumulates elements i with i % 4 == l, combined as
//     (p0+p2)+(p1+p3)), which every variant implements with the same
//     per-partial addition sequence and no FMA contraction.
//
// Because of the second rule the scalar fallbacks here are the canonical
// definition of e.g. som::dist2 -- "scalar" does not mean "legacy order".
#pragma once

#include <climits>
#include <cstdint>
#include <string>
#include <vector>

namespace mrbio::simd {

/// Instruction-set levels, ascending. Values are stable (used in logs).
enum class Isa : int { Scalar = 0, Sse41 = 1, Avx2 = 2 };

const char* isa_name(Isa isa);
/// Parses "scalar", "sse"/"sse4.1"/"sse41", "avx2" or "auto" (= detected).
Isa parse_isa(const std::string& name);

/// True when the variant's code is compiled into this binary.
bool isa_compiled(Isa isa);
/// True when the variant is compiled *and* this CPU can execute it.
bool isa_runnable(Isa isa);
/// Best runnable level of this machine (cpuid).
Isa detected_isa();
/// All runnable levels, ascending (Scalar always included).
std::vector<Isa> runnable_isas();

/// The level kernels() dispatches to; see the precedence above.
Isa active_isa();
/// Pin the level explicitly (the drivers' --simd flag). Requires a
/// runnable level; throws InputError otherwise.
void set_isa(Isa isa);
/// Drop the explicit pin, falling back to $MRBIO_SIMD / detection.
void clear_isa_override();
/// Pure resolution helper (exposed for tests): maps an env string
/// (nullptr/"" = unset) to the level the lazy default would pick.
Isa resolve_default(const char* env_value);

/// DP "minus infinity": low enough that any addition of scores or gap
/// penalties stays far below zero, high enough never to underflow int.
inline constexpr int kNegInf = INT_MIN / 4;

/// Result of a diagonal X-drop scan.
struct DiagScanResult {
  int best;              ///< best running score seen (>= best_in)
  std::size_t best_len;  ///< pairs consumed up to and including the best
                         ///< column; 0 when no column improved best_in
};

/// Kernel table of one ISA variant. All function pointers are non-null.
///
/// Exact contracts (the scalar variant is the executable spec):
///
/// diag_scan -- X-drop scan along one diagonal. Pair k is
///   (a[k], b[k]) forward, or (a[-1-k], b[-1-k]) when `reverse` (a/b then
///   point one past the scan start). Starting from running score `run_in`
///   and best-so-far `best_in`, each step first checks
///   `run > best - xdrop` (with the values after the previous step), then
///   adds table[a_k * 32 + b_k]; a strict improvement records best and
///   best_len = k + 1. Stops at the first failed check or after n pairs.
///
/// gapped_row_prep -- per-row precompute of extend_dir's vertical (F) and
///   diagonal (D) candidates for m columns, given the previous row's H/F
///   windows of prev_n entries starting at the same column:
///     t < prev_n:  from_h = h_prev[t] > kNegInf ? h_prev[t]-open_first
///                                               : kNegInf   (F source)
///                  from_f = f_prev[t] > kNegInf ? f_prev[t]-ext : kNegInf
///                  f_out[t] = max, fflag_out[t] = from_f > from_h
///     otherwise    f_out[t] = kNegInf, fflag_out[t] = 0
///     1 <= t <= prev_n and h_prev[t-1] > kNegInf:
///                  d_out[t] = h_prev[t-1] + score_row[b_lo[t-1]]
///     otherwise    d_out[t] = kNegInf
///   (b_lo points at the subject byte of the window's first column; only
///   b_lo[0..m-2] are read.)
///
/// prot_words -- codes_out[i] = (s[i]*20 + s[i+1])*20 + s[i+2] as if all
///   three bytes were residues, valid bit i set iff they are all < 20.
///   m <= 64; s[m+1] must be readable.
///
/// dna_words -- rolling 2-bit word scan of m bytes (m <= 48). word_io
///   carries the packed word across calls (updated as
///   word = ((word << 2) | (c & 3)) & mask for every byte), hist_io the
///   cleanliness of the previous word_size-1 bytes (bit j, j ascending
///   toward older, as maintained by the kernel; start both at 0).
///   codes_out[i] = word after consuming s[i]; valid bit i set iff the
///   word_size bytes ending at i are all < 4.
///
/// dist2_f32 -- canonical striped squared distance: partial l sums
///   (double(a[i]) - double(b[i]))^2 over i % 4 == l in ascending i,
///   result (p0+p2) + (p1+p3).
///
/// scaled_accum_f32  -- acc[i] += float(h * x[i])          (h double)
/// online_update_f32 -- w[i] += float(ah * (x[i] - w[i]))  (float sub,
///                      double multiply, as the expression implies)
/// add_f32           -- a[i] += b[i]
/// scale_assign_f32  -- w[i] = num[i] / denom
struct Kernels {
  DiagScanResult (*diag_scan)(const std::uint8_t* a, const std::uint8_t* b,
                              std::size_t n, bool reverse, const int* table,
                              int run_in, int best_in, int xdrop);
  void (*gapped_row_prep)(const int* h_prev, const int* f_prev, std::size_t prev_n,
                          const std::uint8_t* b_lo, const int* score_row,
                          int open_first, int ext, std::size_t m, int* d_out,
                          int* f_out, std::uint8_t* fflag_out);
  void (*prot_words)(const std::uint8_t* s, std::size_t m, std::uint16_t* codes_out,
                     std::uint64_t* valid_out);
  void (*dna_words)(const std::uint8_t* s, std::size_t m, int word_size,
                    std::uint32_t mask, std::uint32_t* word_io, std::uint64_t* hist_io,
                    std::uint32_t* codes_out, std::uint64_t* valid_out);
  double (*dist2_f32)(const float* a, const float* b, std::size_t n);
  void (*scaled_accum_f32)(float* acc, const float* x, std::size_t n, double h);
  void (*online_update_f32)(float* w, const float* x, std::size_t n, double ah);
  void (*add_f32)(float* a, const float* b, std::size_t n);
  void (*scale_assign_f32)(float* w, const float* num, std::size_t n, float denom);
};

/// Kernel table of a specific level (throws InputError if not runnable).
const Kernels& kernels(Isa isa);
/// Kernel table of the active level.
const Kernels& kernels();

/// Measured wall seconds per alignment cell of the level's diag_scan
/// kernel (a short self-timing run, cached per level per process). Feeds
/// the workload oracle so sim timelines track the real engine speed.
double calibrated_seconds_per_cell(Isa isa);
double calibrated_seconds_per_cell();

}  // namespace mrbio::simd
