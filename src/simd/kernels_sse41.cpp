// SSE4.1 kernel variant (128-bit lanes).
//
// Vectorized here: the word-scan kernels (byte compares + movemask for
// validity, 8-wide 16-bit packing for protein codes) and all the
// floating-point kernels (4 floats / 2+2 doubles per step, in the
// canonical striped order). The diagonal scan and gapped row prep gain
// nothing at 128 bits without a gather instruction, so this table keeps
// the scalar bodies for them — the AVX2 variant vectorizes those.
//
// Compiled with -msse4.1 only for this translation unit; the table is
// reachable solely through the runtime dispatch in simd.cpp, which
// checks cpuid first.
#include "simd/kernels_detail.hpp"

#if defined(__SSE4_1__) && (defined(__x86_64__) || defined(__i386__))

#include <smmintrin.h>

namespace mrbio::simd::detail {
namespace {

void sse41_prot_words(const std::uint8_t* s, std::size_t m, std::uint16_t* codes,
                      std::uint64_t* valid) {
  std::uint64_t v = 0;
  const __m128i c19 = _mm_set1_epi8(19);
  const __m128i m400 = _mm_set1_epi16(400);
  const __m128i m20 = _mm_set1_epi16(20);
  std::size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    // Contract guarantees s[m + 1] is readable, so the +2 load is safe.
    const __m128i b0 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(s + i));
    const __m128i b1 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(s + i + 1));
    const __m128i b2 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(s + i + 2));
    const __m128i w0 = _mm_cvtepu8_epi16(b0);
    const __m128i w1 = _mm_cvtepu8_epi16(b1);
    const __m128i w2 = _mm_cvtepu8_epi16(b2);
    const __m128i code = _mm_add_epi16(
        _mm_add_epi16(_mm_mullo_epi16(w0, m400), _mm_mullo_epi16(w1, m20)), w2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(codes + i), code);
    const __m128i ok =
        _mm_and_si128(_mm_and_si128(_mm_cmpeq_epi8(_mm_min_epu8(b0, c19), b0),
                                    _mm_cmpeq_epi8(_mm_min_epu8(b1, c19), b1)),
                      _mm_cmpeq_epi8(_mm_min_epu8(b2, c19), b2));
    // loadl zeroes bytes 8..15, which compare "clean"; keep the low 8 bits.
    const auto bits = static_cast<std::uint32_t>(_mm_movemask_epi8(ok)) & 0xFFu;
    v |= static_cast<std::uint64_t>(bits) << i;
  }
  prot_words_range(s, i, m, codes, &v);
  *valid = v;
}

void sse41_dna_words(const std::uint8_t* s, std::size_t m, int word_size, std::uint32_t mask,
                     std::uint32_t* word_io, std::uint64_t* hist_io, std::uint32_t* codes,
                     std::uint64_t* valid_out) {
  dna_codes_only(s, m, mask, word_io, codes);
  std::uint64_t clean = 0;
  const __m128i c3 = _mm_set1_epi8(3);
  std::size_t i = 0;
  for (; i + 16 <= m; i += 16) {
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i));
    const __m128i ok = _mm_cmpeq_epi8(_mm_min_epu8(b, c3), b);
    const auto bits = static_cast<std::uint32_t>(_mm_movemask_epi8(ok)) & 0xFFFFu;
    clean |= static_cast<std::uint64_t>(bits) << i;
  }
  for (; i < m; ++i) {
    if (s[i] < 4) clean |= std::uint64_t{1} << i;
  }
  *valid_out = dna_valid_from_clean(clean, m, word_size, hist_io);
}

double sse41_dist2(const float* a, const float* b, std::size_t n) {
  __m128d acc01 = _mm_setzero_pd();  // partials 0, 1
  __m128d acc23 = _mm_setzero_pd();  // partials 2, 3
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 af = _mm_loadu_ps(a + i);
    const __m128 bf = _mm_loadu_ps(b + i);
    const __m128d a01 = _mm_cvtps_pd(af);
    const __m128d a23 = _mm_cvtps_pd(_mm_movehl_ps(af, af));
    const __m128d b01 = _mm_cvtps_pd(bf);
    const __m128d b23 = _mm_cvtps_pd(_mm_movehl_ps(bf, bf));
    const __m128d d01 = _mm_sub_pd(a01, b01);
    const __m128d d23 = _mm_sub_pd(a23, b23);
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
  }
  alignas(16) double p[4];
  _mm_store_pd(p, acc01);
  _mm_store_pd(p + 2, acc23);
  dist2_partials(a, b, i, n, p);
  return combine_partials(p);
}

void sse41_scaled_accum(float* acc, const float* x, std::size_t n, double h) {
  const __m128d vh = _mm_set1_pd(h);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 xf = _mm_loadu_ps(x + i);
    const __m128d lo = _mm_mul_pd(_mm_cvtps_pd(xf), vh);
    const __m128d hi = _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(xf, xf)), vh);
    const __m128 add = _mm_movelh_ps(_mm_cvtpd_ps(lo), _mm_cvtpd_ps(hi));
    _mm_storeu_ps(acc + i, _mm_add_ps(_mm_loadu_ps(acc + i), add));
  }
  scaled_accum_range(acc, x, i, n, h);
}

void sse41_online_update(float* w, const float* x, std::size_t n, double ah) {
  const __m128d vh = _mm_set1_pd(ah);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 wf = _mm_loadu_ps(w + i);
    const __m128 diff = _mm_sub_ps(_mm_loadu_ps(x + i), wf);
    const __m128d lo = _mm_mul_pd(_mm_cvtps_pd(diff), vh);
    const __m128d hi = _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(diff, diff)), vh);
    const __m128 upd = _mm_movelh_ps(_mm_cvtpd_ps(lo), _mm_cvtpd_ps(hi));
    _mm_storeu_ps(w + i, _mm_add_ps(wf, upd));
  }
  online_update_range(w, x, i, n, ah);
}

void sse41_add(float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(a + i, _mm_add_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  }
  add_range(a, b, i, n);
}

void sse41_scale_assign(float* w, const float* num, std::size_t n, float denom) {
  const __m128 vd = _mm_set1_ps(denom);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(w + i, _mm_div_ps(_mm_loadu_ps(num + i), vd));
  }
  scale_assign_range(w, num, i, n, denom);
}

}  // namespace

const Kernels* sse41_kernels() {
  static const Kernels k = {
      &scalar_diag_scan,    &scalar_gapped_row_prep, &sse41_prot_words,
      &sse41_dna_words,     &sse41_dist2,            &sse41_scaled_accum,
      &sse41_online_update, &sse41_add,              &sse41_scale_assign,
  };
  return &k;
}

}  // namespace mrbio::simd::detail

#else  // no SSE4.1 in this build

namespace mrbio::simd::detail {
const Kernels* sse41_kernels() { return nullptr; }
}  // namespace mrbio::simd::detail

#endif
