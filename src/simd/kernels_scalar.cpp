// The scalar kernel variant: thin wrappers over kernels_detail.hpp. This
// table is the oracle the differential suite diffs every vector variant
// against, and the fallback dispatched on machines without SSE4.1/AVX2.
#include "simd/kernels_detail.hpp"

namespace mrbio::simd::detail {

const Kernels& scalar_kernels() {
  static const Kernels k = {
      &scalar_diag_scan,     &scalar_gapped_row_prep, &scalar_prot_words,
      &scalar_dna_words,     &scalar_dist2,           &scalar_scaled_accum,
      &scalar_online_update, &scalar_add,             &scalar_scale_assign,
  };
  return k;
}

}  // namespace mrbio::simd::detail
