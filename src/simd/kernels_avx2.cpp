// AVX2 kernel variant (256-bit lanes).
//
// The diagonal X-drop scan processes 8 residue pairs per step: scores are
// fetched with a 32-bit gather over the 32x32 table, turned into running
// sums with a log-step in-register prefix sum (slli within each 128-bit
// half, then the low half's total broadcast into the high half), and the
// stop/best bookkeeping is finalized over the 8 materialized sums with
// the scalar recurrence — so the X-drop cutoff fires on exactly the pair
// it would in the oracle and best/best_len keep the oracle's strict-'>'
// first-attainment tie-break.
//
// The gapped row prep vectorizes the F/D candidate precompute (compare/
// subtract/blend plus a gather through the score row); the sequential
// E-chain, pruning and traceback stay in the shared scalar DP core, which
// is what makes gapped paths bit-identical by construction.
//
// FP kernels use 4 double lanes in the canonical striped order; -ffp-
// contract=off on this file keeps mul/add sequences unfused, matching
// the scalar oracle operation for operation.
#include "simd/kernels_detail.hpp"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace mrbio::simd::detail {
namespace {

DiagScanResult avx2_diag_scan(const std::uint8_t* a, const std::uint8_t* b, std::size_t n,
                              bool reverse, const int* table, int run, int best, int xdrop) {
  std::size_t best_len = 0;
  std::size_t k = 0;
  alignas(32) int runs[8];
  // Reverses the low 8 bytes (the reverse-scan pairs load back-to-front).
  const __m128i rev8 = _mm_set_epi8(-1, -1, -1, -1, -1, -1, -1, -1, 0, 1, 2, 3, 4, 5, 6, 7);
  while (k + 8 <= n) {
    if (run <= best - xdrop) return DiagScanResult{best, best_len};
    __m128i ab;
    __m128i bb;
    if (reverse) {
      ab = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a - k - 8));
      bb = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b - k - 8));
      ab = _mm_shuffle_epi8(ab, rev8);
      bb = _mm_shuffle_epi8(bb, rev8);
    } else {
      ab = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + k));
      bb = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + k));
    }
    const __m256i av = _mm256_cvtepu8_epi32(ab);
    const __m256i bv = _mm256_cvtepu8_epi32(bb);
    const __m256i idx = _mm256_add_epi32(_mm256_slli_epi32(av, 5), bv);
    __m256i x = _mm256_i32gather_epi32(table, idx, 4);
    // Prefix sums within each 128-bit half, then carry the low half's
    // total (lane 3) into all high-half lanes.
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
    const __m256i lane3 = _mm256_permutevar8x32_epi32(x, _mm256_set1_epi32(3));
    x = _mm256_add_epi32(x, _mm256_blend_epi32(_mm256_setzero_si256(), lane3, 0xF0));
    x = _mm256_add_epi32(x, _mm256_set1_epi32(run));
    _mm256_store_si256(reinterpret_cast<__m256i*>(runs), x);
    for (std::size_t j = 0; j < 8; ++j) {
      if (run <= best - xdrop) return DiagScanResult{best, best_len};
      run = runs[j];
      if (run > best) {
        best = run;
        best_len = k + j + 1;
      }
    }
    k += 8;
  }
  // Fewer than 8 pairs left: shared scalar tail, continuing from (run, best).
  const std::uint8_t* ta = reverse ? a - k : a + k;
  const std::uint8_t* tb = reverse ? b - k : b + k;
  const DiagScanResult tail =
      scalar_diag_scan(ta, tb, n - k, reverse, table, run, best, xdrop);
  if (tail.best > best) return DiagScanResult{tail.best, k + tail.best_len};
  return DiagScanResult{best, best_len};
}

void avx2_gapped_row_prep(const int* h_prev, const int* f_prev, std::size_t prev_n,
                          const std::uint8_t* b_lo, const int* score_row, int open_first,
                          int ext, std::size_t m, int* d_out, int* f_out,
                          std::uint8_t* fflag_out) {
  const __m256i neg = _mm256_set1_epi32(kNegInf);
  const __m256i vopen = _mm256_set1_epi32(open_first);
  const __m256i vext = _mm256_set1_epi32(ext);

  // F candidate and its flag, columns [0, min(m, prev_n)).
  const std::size_t fn = m < prev_n ? m : prev_n;
  std::size_t t = 0;
  for (; t + 8 <= fn; t += 8) {
    const __m256i h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h_prev + t));
    const __m256i f = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(f_prev + t));
    const __m256i from_h =
        _mm256_blendv_epi8(neg, _mm256_sub_epi32(h, vopen), _mm256_cmpgt_epi32(h, neg));
    const __m256i from_f =
        _mm256_blendv_epi8(neg, _mm256_sub_epi32(f, vext), _mm256_cmpgt_epi32(f, neg));
    const __m256i takef = _mm256_cmpgt_epi32(from_f, from_h);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(f_out + t),
                        _mm256_blendv_epi8(from_h, from_f, takef));
    const int bits = _mm256_movemask_ps(_mm256_castsi256_ps(takef));
    for (int j = 0; j < 8; ++j) fflag_out[t + j] = static_cast<std::uint8_t>((bits >> j) & 1);
  }
  for (; t < fn; ++t) {
    const int from_h = h_prev[t] > kNegInf ? h_prev[t] - open_first : kNegInf;
    const int from_f = f_prev[t] > kNegInf ? f_prev[t] - ext : kNegInf;
    if (from_f > from_h) {
      f_out[t] = from_f;
      fflag_out[t] = 1;
    } else {
      f_out[t] = from_h;
      fflag_out[t] = 0;
    }
  }
  for (; t < m; ++t) {
    f_out[t] = kNegInf;
    fflag_out[t] = 0;
  }

  // D candidate: columns [1, min(m, prev_n + 1)).
  d_out[0] = kNegInf;
  const std::size_t dn = m < prev_n + 1 ? m : prev_n + 1;
  t = 1;
  for (; t + 8 <= dn; t += 8) {
    const __m256i h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h_prev + t - 1));
    const __m256i bytes = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b_lo + t - 1)));
    const __m256i sc = _mm256_i32gather_epi32(score_row, bytes, 4);
    const __m256i d =
        _mm256_blendv_epi8(neg, _mm256_add_epi32(h, sc), _mm256_cmpgt_epi32(h, neg));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d_out + t), d);
  }
  for (; t < dn; ++t) {
    d_out[t] = h_prev[t - 1] > kNegInf ? h_prev[t - 1] + score_row[b_lo[t - 1]] : kNegInf;
  }
  for (; t < m; ++t) d_out[t] = kNegInf;
}

void avx2_prot_words(const std::uint8_t* s, std::size_t m, std::uint16_t* codes,
                     std::uint64_t* valid) {
  std::uint64_t v = 0;
  const __m128i c19 = _mm_set1_epi8(19);
  const __m256i m400 = _mm256_set1_epi16(400);
  const __m256i m20 = _mm256_set1_epi16(20);
  std::size_t i = 0;
  for (; i + 16 <= m; i += 16) {
    // Contract guarantees s[m + 1] is readable, so the +2 load is safe.
    const __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i));
    const __m128i b1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i + 1));
    const __m128i b2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i + 2));
    const __m256i code = _mm256_add_epi16(
        _mm256_add_epi16(_mm256_mullo_epi16(_mm256_cvtepu8_epi16(b0), m400),
                         _mm256_mullo_epi16(_mm256_cvtepu8_epi16(b1), m20)),
        _mm256_cvtepu8_epi16(b2));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(codes + i), code);
    const __m128i ok =
        _mm_and_si128(_mm_and_si128(_mm_cmpeq_epi8(_mm_min_epu8(b0, c19), b0),
                                    _mm_cmpeq_epi8(_mm_min_epu8(b1, c19), b1)),
                      _mm_cmpeq_epi8(_mm_min_epu8(b2, c19), b2));
    const auto bits = static_cast<std::uint32_t>(_mm_movemask_epi8(ok)) & 0xFFFFu;
    v |= static_cast<std::uint64_t>(bits) << i;
  }
  prot_words_range(s, i, m, codes, &v);
  *valid = v;
}

void avx2_dna_words(const std::uint8_t* s, std::size_t m, int word_size, std::uint32_t mask,
                    std::uint32_t* word_io, std::uint64_t* hist_io, std::uint32_t* codes,
                    std::uint64_t* valid_out) {
  dna_codes_only(s, m, mask, word_io, codes);
  std::uint64_t clean = 0;
  const __m256i c3 = _mm256_set1_epi8(3);
  std::size_t i = 0;
  for (; i + 32 <= m; i += 32) {
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    const __m256i ok = _mm256_cmpeq_epi8(_mm256_min_epu8(b, c3), b);
    clean |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(_mm256_movemask_epi8(ok)))
             << i;
  }
  for (; i < m; ++i) {
    if (s[i] < 4) clean |= std::uint64_t{1} << i;
  }
  *valid_out = dna_valid_from_clean(clean, m, word_size, hist_io);
}

double avx2_dist2(const float* a, const float* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();  // lanes are the 4 canonical partials
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                                     _mm256_cvtps_pd(_mm_loadu_ps(b + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d0, d0));
    const __m256d d1 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i + 4)),
                                     _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d1, d1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                                    _mm256_cvtps_pd(_mm_loadu_ps(b + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  alignas(32) double p[4];
  _mm256_store_pd(p, acc);
  dist2_partials(a, b, i, n, p);
  return combine_partials(p);
}

void avx2_scaled_accum(float* acc, const float* x, std::size_t n, double h) {
  const __m256d vh = _mm256_set1_pd(h);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xf = _mm256_loadu_ps(x + i);
    const __m128 lo = _mm256_cvtpd_ps(_mm256_mul_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(xf)), vh));
    const __m128 hi = _mm256_cvtpd_ps(_mm256_mul_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(xf, 1)), vh));
    const __m256 add = _mm256_insertf128_ps(_mm256_castps128_ps256(lo), hi, 1);
    _mm256_storeu_ps(acc + i, _mm256_add_ps(_mm256_loadu_ps(acc + i), add));
  }
  scaled_accum_range(acc, x, i, n, h);
}

void avx2_online_update(float* w, const float* x, std::size_t n, double ah) {
  const __m256d vh = _mm256_set1_pd(ah);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 wf = _mm256_loadu_ps(w + i);
    const __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(x + i), wf);
    const __m128 lo = _mm256_cvtpd_ps(_mm256_mul_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(diff)), vh));
    const __m128 hi = _mm256_cvtpd_ps(_mm256_mul_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(diff, 1)), vh));
    const __m256 upd = _mm256_insertf128_ps(_mm256_castps128_ps256(lo), hi, 1);
    _mm256_storeu_ps(w + i, _mm256_add_ps(wf, upd));
  }
  online_update_range(w, x, i, n, ah);
}

void avx2_add(float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(a + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  add_range(a, b, i, n);
}

void avx2_scale_assign(float* w, const float* num, std::size_t n, float denom) {
  const __m256 vd = _mm256_set1_ps(denom);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(w + i, _mm256_div_ps(_mm256_loadu_ps(num + i), vd));
  }
  scale_assign_range(w, num, i, n, denom);
}

}  // namespace

const Kernels* avx2_kernels() {
  static const Kernels k = {
      &avx2_diag_scan,     &avx2_gapped_row_prep, &avx2_prot_words,
      &avx2_dna_words,     &avx2_dist2,           &avx2_scaled_accum,
      &avx2_online_update, &avx2_add,             &avx2_scale_assign,
  };
  return &k;
}

}  // namespace mrbio::simd::detail

#else  // no AVX2 in this build

namespace mrbio::simd::detail {
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace mrbio::simd::detail

#endif
