#include "rt/native.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "trace/trace.hpp"

namespace mrbio::rt {

namespace {

/// Thrown into ranks blocked in recv when another rank failed, so the
/// whole machine unwinds instead of hanging; swallowed by the runner.
struct AbortSignal {};

bool matches(const Message& m, int src, int tag) {
  return (src == kAnySource || m.source == src) && (tag == kAnyTag || m.tag == tag);
}

}  // namespace

struct NativeEngine::Impl {
  struct Entry {
    Message msg;
    std::uint64_t seq = 0;  ///< global send sequence, for trace edges
  };

  /// One mailbox per destination rank. Arrival order == deque order, so
  /// wildcard matching picks the earliest-arrived message, and messages
  /// from one source stay FIFO per (src, dst) channel.
  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<Entry> queue;
  };

  class RankHandle;

  explicit Impl(int n) : nranks(n), mailboxes(static_cast<std::size_t>(n)) {
    for (auto& mb : mailboxes) mb = std::make_unique<Mailbox>();
  }

  double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  }

  /// Wakes every blocked recv so ranks see the abort flag and unwind.
  void abort_all() {
    aborted.store(true, std::memory_order_release);
    for (auto& mb : mailboxes) {
      std::lock_guard<std::mutex> lock(mb->mutex);
      mb->cv.notify_all();
    }
  }

  int nranks;
  std::chrono::steady_clock::time_point start{};
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::atomic<std::uint64_t> send_seq{0};
  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> payload_bytes{0};
  std::atomic<std::uint64_t> nominal_bytes{0};
  std::atomic<bool> aborted{false};
  std::vector<double> final_times;
  double elapsed_seconds = 0.0;
  bool ran = false;
};

class NativeEngine::Impl::RankHandle final : public Rank {
 public:
  RankHandle(Impl& impl, const NativeConfig& config, int rank)
      : impl_(impl), config_(config), rank_(rank) {}

  int rank() const override { return rank_; }
  int size() const override { return impl_.nranks; }

  double now() const override { return impl_.now(); }

  // Real work already takes real time; modeled charges only exist so the
  // DES can advance virtual clocks, so here they are free.
  void compute(double /*seconds*/) override {}

  using Transport::send;
  void send(int dst, int tag, std::vector<std::byte> payload,
            std::uint64_t nominal_bytes) override {
    MRBIO_CHECK(dst >= 0 && dst < impl_.nranks, "send to invalid rank ", dst);
    if (impl_.aborted.load(std::memory_order_acquire)) throw AbortSignal{};
    const double t0 = impl_.now();
    const std::uint64_t real_bytes = payload.size();
    Entry entry;
    entry.msg.source = rank_;
    entry.msg.tag = tag;
    entry.msg.sent = t0;
    entry.msg.nominal_bytes = nominal_bytes;
    entry.msg.payload = std::move(payload);
    double arrival = 0.0;
    std::uint64_t seq = 0;
    Mailbox& mb = *impl_.mailboxes[static_cast<std::size_t>(dst)];
    {
      std::lock_guard<std::mutex> lock(mb.mutex);
      arrival = impl_.now();
      entry.msg.arrival = arrival;
      seq = impl_.send_seq.fetch_add(1, std::memory_order_relaxed) + 1;
      entry.seq = seq;
      mb.queue.push_back(std::move(entry));
      mb.cv.notify_one();
    }
    impl_.messages.fetch_add(1, std::memory_order_relaxed);
    impl_.payload_bytes.fetch_add(real_bytes, std::memory_order_relaxed);
    impl_.nominal_bytes.fetch_add(nominal_bytes, std::memory_order_relaxed);
    if (auto* rec = config_.recorder; rec != nullptr && rec->full()) {
      rec->add_edge(rank_, trace::Category::Send, "send", t0, impl_.now(),
                    nominal_bytes, dst, seq, arrival);
    }
  }

  Message recv(int src, int tag) override {
    const double post_time = impl_.now();
    Mailbox& mb = *impl_.mailboxes[static_cast<std::size_t>(rank_)];
    std::unique_lock<std::mutex> lock(mb.mutex);
    for (;;) {
      for (auto it = mb.queue.begin(); it != mb.queue.end(); ++it) {
        if (!matches(it->msg, src, tag)) continue;
        Entry entry = std::move(*it);
        mb.queue.erase(it);
        lock.unlock();
        if (auto* rec = config_.recorder; rec != nullptr && rec->full()) {
          rec->add_edge(rank_, trace::Category::RecvWait, "recv", post_time,
                        impl_.now(), entry.msg.nominal_bytes, entry.msg.source,
                        entry.seq, entry.msg.arrival);
        }
        return std::move(entry.msg);
      }
      if (impl_.aborted.load(std::memory_order_acquire)) throw AbortSignal{};
      if (config_.recv_timeout > 0.0) {
        const auto wait = std::chrono::duration<double>(config_.recv_timeout);
        if (mb.cv.wait_for(lock, wait) == std::cv_status::timeout) {
          MRBIO_CHECK(impl_.aborted.load(std::memory_order_acquire),
                      "native backend: rank ", rank_, " blocked in recv(src=", src,
                      ", tag=", tag, ") for ", config_.recv_timeout,
                      " s with no matching message (deadlock?)");
          throw AbortSignal{};
        }
      } else {
        mb.cv.wait(lock);
      }
    }
  }

  bool has_message(int src, int tag) const override {
    const Mailbox& mb = *impl_.mailboxes[static_cast<std::size_t>(rank_)];
    std::lock_guard<std::mutex> lock(mb.mutex);
    for (const Entry& e : mb.queue) {
      if (matches(e.msg, src, tag)) return true;
    }
    return false;
  }

  double modeled_byte_time() const override { return 0.0; }

  trace::Recorder* tracer() const override { return config_.recorder; }
  obs::Registry* metrics() const override { return config_.metrics; }

 private:
  Impl& impl_;
  const NativeConfig& config_;
  int rank_;
};

NativeEngine::NativeEngine(NativeConfig config) : config_(config) {
  if (config_.nranks <= 0) config_.nranks = hardware_ranks();
  impl_ = std::make_unique<Impl>(config_.nranks);
}

NativeEngine::~NativeEngine() = default;

int NativeEngine::hardware_ranks() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void NativeEngine::run(const std::function<void(Rank&)>& body) {
  MRBIO_REQUIRE(!impl_->ran, "NativeEngine::run may only be called once");
  impl_->ran = true;
  const int n = impl_->nranks;
  impl_->final_times.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  impl_->start = std::chrono::steady_clock::now();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([this, &body, &errors, r] {
      Impl::RankHandle handle(*impl_, config_, r);
      try {
        body(handle);
      } catch (const AbortSignal&) {
        // Another rank failed first; unwind quietly.
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        impl_->abort_all();
      }
      impl_->final_times[static_cast<std::size_t>(r)] = impl_->now();
    });
  }
  for (std::thread& t : threads) t.join();

  impl_->elapsed_seconds = 0.0;
  for (double ft : impl_->final_times) {
    impl_->elapsed_seconds = std::max(impl_->elapsed_seconds, ft);
  }
  if (config_.recorder != nullptr) {
    for (int r = 0; r < n && r < config_.recorder->nranks(); ++r) {
      config_.recorder->set_final_time(r, impl_->final_times[static_cast<std::size_t>(r)]);
    }
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

double NativeEngine::elapsed() const { return impl_->elapsed_seconds; }

const std::vector<double>& NativeEngine::final_times() const {
  return impl_->final_times;
}

NativeStats NativeEngine::stats() const {
  NativeStats s;
  s.messages = impl_->messages.load(std::memory_order_relaxed);
  s.payload_bytes = impl_->payload_bytes.load(std::memory_order_relaxed);
  s.nominal_bytes = impl_->nominal_bytes.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mrbio::rt
