#include "rt/native.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "trace/trace.hpp"

namespace mrbio::rt {

namespace {

/// Thrown into ranks blocked in recv when another rank failed, so the
/// whole machine unwinds instead of hanging; swallowed by the runner.
struct AbortSignal {};

bool matches(const Message& m, int src, int tag) {
  if (src != kAnySource && m.source != src) return false;
  if (tag == kAnyTag) return true;
  if (tag == kAnyUserTag) return m.tag < fault::kUserTagLimit;
  return m.tag == tag;
}

}  // namespace

struct NativeEngine::Impl {
  struct Entry {
    Message msg;
    std::uint64_t seq = 0;       ///< global send sequence, for trace edges
    double visible_at = 0.0;     ///< injected delay: hidden from matching before this
  };

  /// One mailbox per destination rank. Arrival order == deque order, so
  /// wildcard matching picks the earliest-arrived message, and messages
  /// from one source stay FIFO per (src, dst) channel.
  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<Entry> queue;
  };

  class RankHandle;

  explicit Impl(int n)
      : nranks(n),
        mailboxes(static_cast<std::size_t>(n)),
        rank_state(static_cast<std::size_t>(n)),
        rank_sent_bytes(static_cast<std::size_t>(n)) {
    for (auto& mb : mailboxes) mb = std::make_unique<Mailbox>();
  }

  double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  }

  /// Wakes every blocked recv so ranks see the abort flag and unwind.
  void abort_all() {
    aborted.store(true, std::memory_order_release);
    for (auto& mb : mailboxes) {
      std::lock_guard<std::mutex> lock(mb->mutex);
      mb->cv.notify_all();
    }
  }

  /// Publishes that `rank` terminated. The release store orders every
  /// send the rank ever made before the state change, so a receiver that
  /// observes a terminal state and then finds its mailbox empty knows the
  /// channel is drained for good. Blocked receivers are woken to re-check.
  void mark_terminal(int rank, bool failed) {
    rank_state[static_cast<std::size_t>(rank)].store(
        static_cast<std::uint8_t>(failed ? PeerState::Failed : PeerState::Finished),
        std::memory_order_release);
    for (auto& mb : mailboxes) {
      std::lock_guard<std::mutex> lock(mb->mutex);
      mb->cv.notify_all();
    }
  }

  int nranks;
  std::chrono::steady_clock::time_point start{};
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::atomic<std::uint64_t> send_seq{0};
  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> payload_bytes{0};
  std::atomic<std::uint64_t> nominal_bytes{0};
  std::atomic<bool> aborted{false};
  /// Per-rank lifecycle, values of PeerState. Written once by the owning
  /// thread as it exits (release); read with acquire by peers.
  std::vector<std::atomic<std::uint8_t>> rank_state;
  /// Per-rank cumulative nominal bytes sent, readable by the background
  /// time-series sampler while rank threads are still sending.
  std::vector<std::atomic<std::uint64_t>> rank_sent_bytes;
  std::vector<double> final_times;
  double elapsed_seconds = 0.0;
  bool ran = false;
};

class NativeEngine::Impl::RankHandle final : public Rank {
 public:
  RankHandle(Impl& impl, const NativeConfig& config, int rank)
      : impl_(impl), config_(config), rank_(rank) {}

  int rank() const override { return rank_; }
  int size() const override { return impl_.nranks; }

  double now() const override { return impl_.now(); }

  // Real work already takes real time; modeled charges only exist so the
  // DES can advance virtual clocks. Here they are free — except on an
  // injected slow rank, where the surplus factor becomes real sleep.
  void compute(double seconds) override {
    if (auto* inj = config_.injector; inj != nullptr) {
      const double extra = (inj->slow_factor(rank_) - 1.0) * seconds;
      if (extra > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(extra));
    }
  }

  using Transport::send;
  void send(int dst, int tag, std::vector<std::byte> payload,
            std::uint64_t nominal_bytes) override {
    MRBIO_CHECK(dst >= 0 && dst < impl_.nranks, "send to invalid rank ", dst);
    if (impl_.aborted.load(std::memory_order_acquire)) throw AbortSignal{};
    const double t0 = impl_.now();
    fault::SendAction action;
    if (auto* inj = config_.injector; inj != nullptr) {
      action = inj->on_send(rank_, dst, tag, fault::kUserTagLimit);
    }
    if (action.kind == fault::SendAction::Kind::Drop) {
      if (auto* rec = config_.recorder; rec != nullptr && rec->full()) {
        rec->add(rank_, trace::Category::Send, "send_dropped", t0, impl_.now(), 0,
                 nominal_bytes);
      }
      return;
    }
    const std::uint64_t real_bytes = payload.size();
    Entry entry;
    entry.msg.source = rank_;
    entry.msg.tag = tag;
    entry.msg.sent = t0;
    entry.msg.nominal_bytes = nominal_bytes;
    entry.msg.payload = std::move(payload);
    double arrival = 0.0;
    std::uint64_t seq = 0;
    std::uint64_t pushed = 1;
    Mailbox& mb = *impl_.mailboxes[static_cast<std::size_t>(dst)];
    {
      std::lock_guard<std::mutex> lock(mb.mutex);
      arrival = impl_.now();
      entry.msg.arrival = arrival;
      if (action.delay > 0.0) entry.visible_at = arrival + action.delay;
      seq = impl_.send_seq.fetch_add(1, std::memory_order_relaxed) + 1;
      entry.seq = seq;
      if (action.kind == fault::SendAction::Kind::Duplicate) {
        Entry dup = entry;
        dup.seq = impl_.send_seq.fetch_add(1, std::memory_order_relaxed) + 1;
        mb.queue.push_back(std::move(dup));
        pushed = 2;
      }
      mb.queue.push_back(std::move(entry));
      mb.cv.notify_all();
    }
    impl_.messages.fetch_add(pushed, std::memory_order_relaxed);
    impl_.payload_bytes.fetch_add(real_bytes * pushed, std::memory_order_relaxed);
    impl_.nominal_bytes.fetch_add(nominal_bytes * pushed, std::memory_order_relaxed);
    if (auto* ts = config_.timeseries; ts != nullptr) {
      const std::uint64_t total =
          impl_.rank_sent_bytes[static_cast<std::size_t>(rank_)].fetch_add(
              nominal_bytes * pushed, std::memory_order_relaxed) +
          nominal_bytes * pushed;
      ts->sample(rank_, "sent_bytes", impl_.now(), static_cast<double>(total));
    }
    if (auto* rec = config_.recorder; rec != nullptr && rec->full()) {
      rec->add_edge(rank_, trace::Category::Send, "send", t0, impl_.now(),
                    nominal_bytes, dst, seq, arrival);
    }
  }

  Message recv(int src, int tag) override {
    Message out;
    recv_core(src, tag, /*deadline=*/-1.0, &out);  // untimed: only returns Ok
    return out;
  }

  RecvStatus recv_deadline(int src, int tag, double deadline, Message* out) override {
    return recv_core(src, tag, std::max(deadline, 0.0), out);
  }

  PeerState peer_state(int peer) const override {
    MRBIO_REQUIRE(peer >= 0 && peer < impl_.nranks, "peer_state of invalid rank ", peer);
    return static_cast<PeerState>(
        impl_.rank_state[static_cast<std::size_t>(peer)].load(std::memory_order_acquire));
  }

  /// Shared receive loop. `deadline` < 0 blocks forever (modulo the
  /// deadlock diagnostic) and only ever returns Ok; a non-negative
  /// deadline adds the Timeout and PeerDead return paths.
  RecvStatus recv_core(int src, int tag, double deadline, Message* out) {
    const bool timed = deadline >= 0.0;
    const double post_time = impl_.now();
    Mailbox& mb = *impl_.mailboxes[static_cast<std::size_t>(rank_)];
    std::unique_lock<std::mutex> lock(mb.mutex);
    double diag_at =
        config_.recv_timeout > 0.0 ? post_time + config_.recv_timeout : -1.0;
    for (;;) {
      // Load the peer's state before scanning: a terminal state read here
      // guarantees (release/acquire + the mailbox lock) that the scan
      // below sees every message that peer ever sent.
      const PeerState src_state =
          src == kAnySource ? PeerState::Active : peer_state(src);
      const double now = impl_.now();
      double earliest_hidden = -1.0;
      for (auto it = mb.queue.begin(); it != mb.queue.end(); ++it) {
        if (!matches(it->msg, src, tag)) continue;
        if (it->visible_at > now) {
          if (earliest_hidden < 0.0 || it->visible_at < earliest_hidden) {
            earliest_hidden = it->visible_at;
          }
          continue;
        }
        Entry entry = std::move(*it);
        mb.queue.erase(it);
        if (auto* ts = config_.timeseries; ts != nullptr) {
          ts->sample(rank_, "mailbox_depth", now,
                     static_cast<double>(mb.queue.size()));
        }
        lock.unlock();
        if (auto* rec = config_.recorder; rec != nullptr && rec->full()) {
          rec->add_edge(rank_, trace::Category::RecvWait, "recv", post_time,
                        impl_.now(), entry.msg.nominal_bytes, entry.msg.source,
                        entry.seq, entry.msg.arrival);
        }
        *out = std::move(entry.msg);
        return RecvStatus::Ok;
      }
      if (impl_.aborted.load(std::memory_order_acquire)) throw AbortSignal{};
      if (timed) {
        if (src != kAnySource && src_state != PeerState::Active &&
            earliest_hidden < 0.0) {
          return RecvStatus::PeerDead;
        }
        if (now >= deadline) return RecvStatus::Timeout;
      }
      // Next forced wake-up: the deadline, a hidden message becoming
      // visible, or the deadlock diagnostic — whichever is earliest.
      double wake_at = timed ? deadline : -1.0;
      if (earliest_hidden >= 0.0 && (wake_at < 0.0 || earliest_hidden < wake_at)) {
        wake_at = earliest_hidden;
      }
      if (!timed && diag_at >= 0.0 && (wake_at < 0.0 || diag_at < wake_at)) {
        wake_at = diag_at;
      }
      if (wake_at < 0.0) {
        mb.cv.wait(lock);
      } else {
        const auto wake_tp =
            impl_.start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(wake_at));
        mb.cv.wait_until(lock, wake_tp);
      }
      if (!timed && diag_at >= 0.0 && impl_.now() >= diag_at) {
        if (impl_.aborted.load(std::memory_order_acquire)) throw AbortSignal{};
        MRBIO_CHECK(false, "native backend: rank ", rank_, " blocked in recv(src=", src,
                    ", tag=", tag, ") for ", config_.recv_timeout, " s", peer_note(src),
                    " with no matching message");
      }
    }
  }

  /// One-line cause hint for the blocked-recv diagnostic: did the awaited
  /// peer exit cleanly, die, or is this a genuine deadlock among live
  /// ranks?
  std::string peer_note(int src) const {
    if (src != kAnySource) {
      switch (peer_state(src)) {
        case PeerState::Finished:
          return format_msg("; peer rank ", src,
                            " already finished cleanly — it will never send again");
        case PeerState::Failed:
          return format_msg("; peer rank ", src, " died");
        case PeerState::Active:
          return " (deadlock? peer is still running)";
      }
      return {};
    }
    int alive = 0;
    for (int r = 0; r < impl_.nranks; ++r) {
      if (r != rank_ && peer_state(r) == PeerState::Active) ++alive;
    }
    if (alive == 0) return "; every peer has terminated — nothing more can arrive";
    return format_msg(" (deadlock? ", alive, " peer(s) still running)");
  }

  bool has_message(int src, int tag) const override {
    const Mailbox& mb = *impl_.mailboxes[static_cast<std::size_t>(rank_)];
    std::lock_guard<std::mutex> lock(mb.mutex);
    for (const Entry& e : mb.queue) {
      if (matches(e.msg, src, tag)) return true;
    }
    return false;
  }

  double modeled_byte_time() const override { return 0.0; }

  trace::Recorder* tracer() const override { return config_.recorder; }
  obs::Registry* metrics() const override { return config_.metrics; }
  fault::Injector* faults() const override { return config_.injector; }
  obs::TimeSeries* timeseries() const override { return config_.timeseries; }
  obs::EventLog* eventlog() const override { return config_.eventlog; }

 private:
  Impl& impl_;
  const NativeConfig& config_;
  int rank_;
};

NativeEngine::NativeEngine(NativeConfig config) : config_(config) {
  if (config_.nranks <= 0) config_.nranks = hardware_ranks();
  impl_ = std::make_unique<Impl>(config_.nranks);
}

NativeEngine::~NativeEngine() = default;

int NativeEngine::hardware_ranks() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void NativeEngine::run(const std::function<void(Rank&)>& body) {
  MRBIO_REQUIRE(!impl_->ran, "NativeEngine::run may only be called once");
  impl_->ran = true;
  const int n = impl_->nranks;
  impl_->final_times.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  impl_->start = std::chrono::steady_clock::now();

  // Background sampler: snapshots every rank's queue depth and cumulative
  // sent bytes at the sampler's cadence, concurrently with the rank
  // threads' own event-driven samples (the per-lane locks inside
  // TimeSeries make this safe).
  std::atomic<bool> sampler_stop{false};
  std::thread sampler;
  if (obs::TimeSeries* ts = config_.timeseries; ts != nullptr) {
    sampler = std::thread([this, ts, &sampler_stop] {
      const double cadence = std::max(ts->config().cadence, 1e-3);
      while (!sampler_stop.load(std::memory_order_acquire)) {
        const double t = impl_->now();
        for (int r = 0; r < impl_->nranks; ++r) {
          std::size_t depth = 0;
          {
            Impl::Mailbox& mb = *impl_->mailboxes[static_cast<std::size_t>(r)];
            std::lock_guard<std::mutex> lock(mb.mutex);
            depth = mb.queue.size();
          }
          ts->sample(r, "mailbox_depth", t, static_cast<double>(depth));
          ts->sample(r, "sent_bytes", t,
                     static_cast<double>(impl_->rank_sent_bytes[static_cast<std::size_t>(r)]
                                             .load(std::memory_order_relaxed)));
        }
        std::this_thread::sleep_for(std::chrono::duration<double>(cadence));
      }
    });
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([this, &body, &errors, r] {
      Impl::RankHandle handle(*impl_, config_, r);
      bool failed = false;
      try {
        body(handle);
      } catch (const AbortSignal&) {
        // Another rank failed first; unwind quietly.
        failed = true;
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        failed = true;
        impl_->abort_all();
      }
      impl_->final_times[static_cast<std::size_t>(r)] = impl_->now();
      impl_->mark_terminal(r, failed);
    });
  }
  for (std::thread& t : threads) t.join();
  if (sampler.joinable()) {
    sampler_stop.store(true, std::memory_order_release);
    sampler.join();
  }

  impl_->elapsed_seconds = 0.0;
  for (double ft : impl_->final_times) {
    impl_->elapsed_seconds = std::max(impl_->elapsed_seconds, ft);
  }
  if (config_.recorder != nullptr) {
    for (int r = 0; r < n && r < config_.recorder->nranks(); ++r) {
      config_.recorder->set_final_time(r, impl_->final_times[static_cast<std::size_t>(r)]);
    }
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

double NativeEngine::elapsed() const { return impl_->elapsed_seconds; }

const std::vector<double>& NativeEngine::final_times() const {
  return impl_->final_times;
}

NativeStats NativeEngine::stats() const {
  NativeStats s;
  s.messages = impl_->messages.load(std::memory_order_relaxed);
  s.payload_bytes = impl_->payload_bytes.load(std::memory_order_relaxed);
  s.nominal_bytes = impl_->nominal_bytes.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mrbio::rt
