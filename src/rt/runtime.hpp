// Runtime abstraction: the machine interface the MPI-flavoured stack is
// written against.
//
// Everything above this layer (mpi::Comm, mrmpi::MapReduce, the BLAST and
// SOM drivers) sees a rank only through rt::Rank = Transport + Clock. Two
// implementations exist:
//
//   * the discrete-event simulator (sim::Engine, adapted by rt::SimRank):
//     virtual clocks, an alpha-beta network model, deterministic
//     scheduling — the figure-reproduction and what-if backend;
//   * the native backend (rt::NativeEngine): each rank is a preemptive
//     std::thread, mailboxes are mutex+condvar deques, now() reads the
//     host steady_clock and compute() is free because real work already
//     costs real time.
//
// Transport contract (both backends guarantee it):
//   * per-channel FIFO: two messages from the same source to the same
//     destination are received in send order when matched by the same
//     (src, tag) pattern;
//   * wildcard matching (kAnySource/kAnyTag) picks the earliest-arrived
//     match;
//   * sends are eager and buffered — they never block on the receiver;
//   * nominal_bytes is advisory: it drives the simulator's timing model
//     and is carried (but not charged) by the native backend, so phantom
//     collectives degrade to timed no-ops instead of moving fake bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mrbio::trace {
class Recorder;
}

namespace mrbio::obs {
class Registry;
class TimeSeries;
class EventLog;
}

namespace mrbio::fault {
class Injector;
}

namespace mrbio::rt {

constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;
/// Matches any tag in the application range [0, 1 << 20) but never the
/// transport-internal tags (collectives, sleep timers). Long-serving
/// protocol loops must use this instead of kAnyTag so they cannot swallow
/// collective traffic from ranks that have already left the phase.
constexpr int kAnyUserTag = -2;

/// Result of a timed receive (recv_deadline).
enum class RecvStatus : std::uint8_t {
  Ok,       ///< a matching message was received
  Timeout,  ///< the deadline passed with no matching message
  PeerDead, ///< the awaited peer terminated and can never send a match
};

/// Lifecycle of a peer rank as observed through the transport.
enum class PeerState : std::uint8_t {
  Active,    ///< still running (or state unknown)
  Finished,  ///< returned from its body normally
  Failed,    ///< terminated with an error
};

/// Message record exchanged between ranks. Timestamps are in the owning
/// backend's time base (virtual seconds for the DES, seconds since run
/// start for the native backend).
struct Message {
  int source = -1;
  int tag = -1;
  double sent = 0.0;     ///< time the send was issued
  double arrival = 0.0;  ///< time the message reached the receiver
  std::uint64_t nominal_bytes = 0;
  std::vector<std::byte> payload;
};

/// Time source of a rank. `compute(seconds)` charges modeled work: the DES
/// advances the virtual clock; real backends do nothing because real work
/// already takes real time.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time of this rank, in seconds.
  virtual double now() const = 0;

  /// Charges `seconds` of modeled computation to this rank.
  virtual void compute(double seconds) = 0;
};

/// Point-to-point messaging endpoint of a rank. See the file comment for
/// the FIFO/wildcard/eager-send contract.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Sends `payload` to rank `dst`. `nominal_bytes` is the byte count the
  /// timing model charges; it may differ from the real payload size when
  /// simulating paper-scale transfers with token payloads.
  virtual void send(int dst, int tag, std::vector<std::byte> payload,
                    std::uint64_t nominal_bytes) = 0;

  /// Send with nominal size = real payload size.
  void send(int dst, int tag, std::vector<std::byte> payload) {
    const std::uint64_t nominal = payload.size();
    send(dst, tag, std::move(payload), nominal);
  }

  /// Blocking receive. src = kAnySource and tag = kAnyTag act as
  /// wildcards; messages match in arrival order.
  virtual Message recv(int src = kAnySource, int tag = kAnyTag) = 0;

  /// True if a matching message has already arrived (non-blocking probe).
  virtual bool has_message(int src = kAnySource, int tag = kAnyTag) const = 0;

  /// Receive with a failure-notification path: blocks until a matching
  /// message arrives (Ok, `*out` filled), the absolute `deadline` (in this
  /// backend's time base) passes (Timeout), or — for a specific `src` —
  /// that peer terminates with no matching message in flight (PeerDead).
  /// The base implementation ignores the deadline and blocks forever;
  /// both engines override it.
  virtual RecvStatus recv_deadline(int src, int tag, double deadline, Message* out) {
    (void)deadline;
    *out = recv(src, tag);
    return RecvStatus::Ok;
  }

  /// Observed lifecycle of `peer`. Backends without death tracking report
  /// Active forever.
  virtual PeerState peer_state(int peer) const {
    (void)peer;
    return PeerState::Active;
  }

  /// Per-byte transfer time of the modeled network, or 0 on backends that
  /// move real bytes (there the cost is already paid in wall-clock time).
  /// Pipelined phantom collectives use this for their bandwidth charge.
  virtual double modeled_byte_time() const = 0;
};

/// A rank: transport + clock + the observability sinks of the owning
/// engine. This is the one handle application code receives.
class Rank : public Transport, public Clock {
 public:
  /// The engine's span recorder, or null when tracing is off.
  virtual trace::Recorder* tracer() const { return nullptr; }

  /// The engine's metrics registry, or null when metrics are off.
  virtual obs::Registry* metrics() const { return nullptr; }

  /// The run's fault injector, or null when no faults are planned. The
  /// fault-tolerant scheduler polls it for crash triggers; the engines
  /// consult it themselves for message and slow-rank faults.
  virtual fault::Injector* faults() const { return nullptr; }

  /// The run's time-series sampler, or null when sampling is off. Layers
  /// above the engine sample their own channels (queue depths, tasks done)
  /// stamped with this rank's clock.
  virtual obs::TimeSeries* timeseries() const { return nullptr; }

  /// The run's structured event log, or null when not enabled.
  virtual obs::EventLog* eventlog() const { return nullptr; }
};

}  // namespace mrbio::rt
