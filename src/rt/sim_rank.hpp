// Adapter presenting a DES sim::Process as an rt::Rank, making the
// discrete-event simulator one backend of the runtime abstraction.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "rt/runtime.hpp"
#include "sim/engine.hpp"

namespace mrbio::rt {

class SimRank final : public Rank {
 public:
  explicit SimRank(sim::Process& proc) : proc_(&proc) {}

  int rank() const override { return proc_->rank(); }
  int size() const override { return proc_->size(); }

  double now() const override { return proc_->now(); }
  void compute(double seconds) override { proc_->compute(seconds); }

  using Transport::send;
  void send(int dst, int tag, std::vector<std::byte> payload,
            std::uint64_t nominal_bytes) override {
    proc_->send(dst, tag, std::move(payload), nominal_bytes);
  }

  Message recv(int src, int tag) override { return proc_->recv(src, tag); }

  RecvStatus recv_deadline(int src, int tag, double deadline, Message* out) override {
    switch (proc_->recv_deadline(src, tag, deadline, out)) {
      case sim::RecvStatus::Ok:
        return RecvStatus::Ok;
      case sim::RecvStatus::Timeout:
        return RecvStatus::Timeout;
      case sim::RecvStatus::PeerDead:
        return RecvStatus::PeerDead;
    }
    return RecvStatus::Ok;  // unreachable
  }

  PeerState peer_state(int peer) const override {
    switch (proc_->peer_state(peer)) {
      case sim::PeerState::Active:
        return PeerState::Active;
      case sim::PeerState::Finished:
        return PeerState::Finished;
      case sim::PeerState::Failed:
        return PeerState::Failed;
    }
    return PeerState::Active;  // unreachable
  }

  bool has_message(int src, int tag) const override {
    return proc_->has_message(src, tag);
  }

  double modeled_byte_time() const override { return proc_->net().byte_time; }

  trace::Recorder* tracer() const override { return proc_->tracer(); }
  obs::Registry* metrics() const override { return proc_->metrics(); }
  fault::Injector* faults() const override { return proc_->faults(); }
  obs::TimeSeries* timeseries() const override { return proc_->timeseries(); }
  obs::EventLog* eventlog() const override { return proc_->eventlog(); }

  sim::Process& process() { return *proc_; }

 private:
  sim::Process* proc_;
};

}  // namespace mrbio::rt
