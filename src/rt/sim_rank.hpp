// Adapter presenting a DES sim::Process as an rt::Rank, making the
// discrete-event simulator one backend of the runtime abstraction.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "rt/runtime.hpp"
#include "sim/engine.hpp"

namespace mrbio::rt {

class SimRank final : public Rank {
 public:
  explicit SimRank(sim::Process& proc) : proc_(&proc) {}

  int rank() const override { return proc_->rank(); }
  int size() const override { return proc_->size(); }

  double now() const override { return proc_->now(); }
  void compute(double seconds) override { proc_->compute(seconds); }

  using Transport::send;
  void send(int dst, int tag, std::vector<std::byte> payload,
            std::uint64_t nominal_bytes) override {
    proc_->send(dst, tag, std::move(payload), nominal_bytes);
  }

  Message recv(int src, int tag) override { return proc_->recv(src, tag); }

  bool has_message(int src, int tag) const override {
    return proc_->has_message(src, tag);
  }

  double modeled_byte_time() const override { return proc_->net().byte_time; }

  trace::Recorder* tracer() const override { return proc_->tracer(); }
  obs::Registry* metrics() const override { return proc_->metrics(); }

  sim::Process& process() { return *proc_; }

 private:
  sim::Process* proc_;
};

}  // namespace mrbio::rt
