// Backend launcher: one entry point that runs a rank body on either the
// discrete-event simulator or the native multithreaded backend, so tools
// and tests select the machine with a flag instead of a different code
// path.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "rt/native.hpp"
#include "rt/runtime.hpp"
#include "sim/engine.hpp"

namespace mrbio::rt {

enum class Backend { Sim, Native };

/// Parses "sim" or "native"; throws mrbio::InputError otherwise.
Backend backend_from_name(std::string_view name);

const char* backend_name(Backend backend);

/// Backend-appropriate default rank count: the DES defaults to the
/// harness's traditional 8 virtual ranks; the native backend defaults to
/// the host's hardware concurrency.
int default_ranks(Backend backend);

struct LaunchConfig {
  Backend backend = Backend::Sim;
  int nranks = 0;  ///< 0 = default_ranks(backend)
  sim::NetworkModel net{};            ///< sim only
  std::size_t stack_bytes = 1 << 20;  ///< sim only: stack per virtual rank
  double native_recv_timeout = 300.0;  ///< native only: 0 = wait forever
  trace::Recorder* recorder = nullptr;
  obs::Registry* metrics = nullptr;
  /// Optional fault injector, forwarded to the selected backend. The plan
  /// is validated against the resolved rank count at launch.
  fault::Injector* injector = nullptr;
  /// True when the run has a checkpoint dir configured; corrupt-checkpoint
  /// faults are rejected at launch without it.
  bool checkpointing = false;
  /// True when the selected scheduler survives the loss of rank 0 (the
  /// steal scheduler's sharded ledger elects a successor); rank-0 crash
  /// plans are rejected at launch without it.
  bool master_failover = false;
  /// Optional time-series sampler, forwarded to the selected backend and
  /// reachable via Rank::timeseries().
  obs::TimeSeries* timeseries = nullptr;
  /// Optional structured event log, reachable via Rank::eventlog().
  obs::EventLog* eventlog = nullptr;
};

struct LaunchResult {
  /// Virtual seconds (sim) or wall-clock seconds (native).
  double elapsed = 0.0;
  std::vector<double> final_times;
  std::uint64_t messages = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t nominal_bytes = 0;
};

/// Runs `body` on every rank of the selected backend and returns the
/// run's timing and traffic counters.
LaunchResult launch(const LaunchConfig& config, const std::function<void(Rank&)>& body);

}  // namespace mrbio::rt
