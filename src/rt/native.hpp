// Native multithreaded backend: runs every rank as a preemptive
// std::thread on the host, exchanging messages through mutex+condvar
// mailboxes. now() reads the host steady_clock (seconds since run start),
// compute() is a no-op (real work already costs real time), and phantom
// collectives degrade to empty-payload tree exchanges — timed no-ops.
//
// Scheduling is the host's: ranks genuinely run in parallel, so timings
// are real wall-clock measurements and anything order-sensitive (wildcard
// receive matching, master-worker task assignment) is nondeterministic
// across runs. Application *results* stay deterministic as long as the
// layers above canonicalize ordering, which the bundled drivers do.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "rt/runtime.hpp"

namespace mrbio::trace {
class Recorder;
}

namespace mrbio::obs {
class Registry;
}

namespace mrbio::rt {

struct NativeConfig {
  int nranks = 0;  ///< 0 = hardware concurrency
  /// Optional span sink; at Full level the backend records send/recv
  /// edges so the critical-path analyzer works on native runs too.
  trace::Recorder* recorder = nullptr;
  /// Optional metrics registry, reachable by every layer via
  /// Rank::metrics(). Must be thread-safe (obs::Registry is).
  obs::Registry* metrics = nullptr;
  /// Seconds a blocked recv waits before failing the run with a
  /// deadlock diagnostic. 0 = wait forever.
  double recv_timeout = 300.0;
  /// Optional fault injector shared with the layers above. When set the
  /// backend applies message faults to user-tag sends and converts
  /// slow-rank factors into real sleep; crash triggers are polled by the
  /// fault-tolerant scheduler through Rank::faults().
  fault::Injector* injector = nullptr;
  /// Optional time-series sampler (must be thread-safe; obs::TimeSeries
  /// is). The backend feeds per-rank sent_bytes and mailbox_depth channels
  /// stamped with steady-clock seconds, both event-driven from the rank
  /// threads and from a background sampler thread that runs at the
  /// sampler's cadence for the duration of run().
  obs::TimeSeries* timeseries = nullptr;
  /// Optional structured event log, reachable through Rank::eventlog().
  obs::EventLog* eventlog = nullptr;
};

/// Aggregate counters collected over a run.
struct NativeStats {
  std::uint64_t messages = 0;       ///< point-to-point messages delivered
  std::uint64_t payload_bytes = 0;  ///< real payload bytes moved
  std::uint64_t nominal_bytes = 0;  ///< modeled bytes carried by messages
};

/// Owns the native machine. Construct, call run() once, then read
/// elapsed()/stats(). A fresh NativeEngine is required per run.
class NativeEngine {
 public:
  explicit NativeEngine(NativeConfig config = {});
  ~NativeEngine();

  NativeEngine(const NativeEngine&) = delete;
  NativeEngine& operator=(const NativeEngine&) = delete;

  /// Executes `body` on every rank, one host thread each, to completion.
  /// Rethrows the first exception (by rank order) raised inside any rank;
  /// other ranks blocked in recv are woken and unwound.
  void run(const std::function<void(Rank&)>& body);

  /// Wall-clock of the run: max over ranks of their final time.
  double elapsed() const;

  /// Per-rank final times (seconds since run start).
  const std::vector<double>& final_times() const;

  NativeStats stats() const;
  const NativeConfig& config() const { return config_; }

  /// Hardware concurrency of the host (at least 1).
  static int hardware_ranks();

 private:
  struct Impl;
  NativeConfig config_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mrbio::rt
