#include "rt/backend.hpp"

#include "common/error.hpp"
#include "fault/fault.hpp"
#include "rt/sim_rank.hpp"

namespace mrbio::rt {

Backend backend_from_name(std::string_view name) {
  MRBIO_REQUIRE(name == "sim" || name == "native", "unknown backend '",
                std::string(name), "' (expected sim or native)");
  return name == "sim" ? Backend::Sim : Backend::Native;
}

const char* backend_name(Backend backend) {
  return backend == Backend::Sim ? "sim" : "native";
}

int default_ranks(Backend backend) {
  return backend == Backend::Sim ? 8 : NativeEngine::hardware_ranks();
}

LaunchResult launch(const LaunchConfig& config, const std::function<void(Rank&)>& body) {
  const int nranks = config.nranks > 0 ? config.nranks : default_ranks(config.backend);
  if (config.injector != nullptr) {
    config.injector->plan().validate(nranks, config.checkpointing,
                                     config.master_failover);
  }
  LaunchResult result;
  if (config.backend == Backend::Sim) {
    sim::EngineConfig ec;
    ec.nprocs = nranks;
    ec.net = config.net;
    ec.stack_bytes = config.stack_bytes;
    ec.recorder = config.recorder;
    ec.metrics = config.metrics;
    ec.injector = config.injector;
    ec.timeseries = config.timeseries;
    ec.eventlog = config.eventlog;
    sim::Engine engine(ec);
    engine.run([&](sim::Process& proc) {
      SimRank rank(proc);
      body(rank);
    });
    result.elapsed = engine.elapsed();
    result.final_times = engine.final_times();
    result.messages = engine.stats().messages;
    result.payload_bytes = engine.stats().payload_bytes;
    result.nominal_bytes = engine.stats().nominal_bytes;
  } else {
    NativeConfig nc;
    nc.nranks = nranks;
    nc.recorder = config.recorder;
    nc.metrics = config.metrics;
    nc.recv_timeout = config.native_recv_timeout;
    nc.injector = config.injector;
    nc.timeseries = config.timeseries;
    nc.eventlog = config.eventlog;
    NativeEngine engine(nc);
    engine.run(body);
    result.elapsed = engine.elapsed();
    result.final_times = engine.final_times();
    const NativeStats stats = engine.stats();
    result.messages = stats.messages;
    result.payload_bytes = stats.payload_bytes;
    result.nominal_bytes = stats.nominal_bytes;
  }
  return result;
}

}  // namespace mrbio::rt
